// Command ppescape is the escape-analysis regression gate. It rebuilds
// the packages named in the pinned hot-path config with -gcflags=-m in
// a throwaway build cache, attributes every heap-escape message to its
// enclosing function, and exits non-zero if a pinned function carries
// an escape its baseline does not allow.
//
// Usage:
//
//	ppescape [-config cmd/ppescape/hotpaths.conf] [-keep-cache] [-v]
//
// The throwaway GOCACHE exists because -m diagnostics are only emitted
// when the compiler actually runs; against a warm cache the gate would
// pass vacuously. -keep-cache trades that safety for speed in local
// iteration.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis/escape"
)

func main() {
	configPath := flag.String("config", filepath.Join("cmd", "ppescape", "hotpaths.conf"), "pinned hot-path list")
	keepCache := flag.Bool("keep-cache", false, "reuse the ambient GOCACHE (fast, but may skip compilation and miss escapes)")
	verbose := flag.Bool("v", false, "print every escape attributed to a pinned package, including allowed ones")
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	cfgPath := *configPath
	if !filepath.IsAbs(cfgPath) {
		cfgPath = filepath.Join(root, cfgPath)
	}
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	hot, err := escape.ParseConfig(data)
	if err != nil {
		fatal(err)
	}
	if len(hot) == 0 {
		fatal(fmt.Errorf("%s pins no functions", *configPath))
	}

	out, err := escape.RunBuild(root, escape.Pkgs(hot), !*keepCache)
	if err != nil {
		fatal(err)
	}
	escapes := escape.ParseBuildOutput(out)
	if *verbose {
		for _, e := range escapes {
			fmt.Printf("escape: %s:%d: %s\n", e.File, e.Line, e.Msg)
		}
	}
	violations, err := escape.Attribute(root, escapes, hot)
	if err != nil {
		fatal(err)
	}
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "ppescape: %d new heap escape(s) on pinned hot paths\n", len(violations))
		os.Exit(1)
	}
	fmt.Printf("ppescape: %d pinned function(s) clean (%d escape message(s) inspected)\n", len(hot), len(escapes))
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, mirroring cmd/pplint.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppescape:", err)
	os.Exit(2)
}
