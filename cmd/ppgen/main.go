// Command ppgen generates the synthetic evaluation datasets (§4) and
// writes them in the repository's binary dataset format.
//
// Usage:
//
//	ppgen -dataset mobiletab -users 4000 -out mobiletab.ppds
//	ppgen -dataset mpu -preview
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func main() {
	var (
		name    = flag.String("dataset", "mobiletab", "dataset to generate: mobiletab | timeshift | mpu")
		users   = flag.Int("users", 0, "number of users (0 = dataset default)")
		days    = flag.Int("days", dataset.ObservationDays, "observation window in days")
		seed    = flag.Uint64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output path (default <dataset>.ppds)")
		format  = flag.String("format", "binary", "output format: binary | jsonl")
		preview = flag.Bool("preview", false, "print a Table 1-style sample instead of writing a file")
	)
	flag.Parse()

	var d *dataset.Dataset
	switch *name {
	case "mobiletab":
		cfg := synth.DefaultMobileTab()
		if *users > 0 {
			cfg.Users = *users
		}
		cfg.Days = *days
		cfg.Seed = *seed
		d = synth.GenerateMobileTab(cfg)
	case "timeshift":
		cfg := synth.DefaultTimeshift()
		if *users > 0 {
			cfg.Users = *users
		}
		cfg.Days = *days
		cfg.Seed = *seed
		d = synth.GenerateTimeshift(cfg)
	case "mpu":
		cfg := synth.DefaultMPU()
		if *users > 0 {
			cfg.Users = *users
		}
		cfg.Days = *days
		cfg.Seed = *seed
		d = synth.GenerateMPU(cfg)
	default:
		fmt.Fprintf(os.Stderr, "ppgen: unknown dataset %q\n", *name)
		os.Exit(2)
	}

	if err := d.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "ppgen: generated dataset invalid: %v\n", err)
		os.Exit(1)
	}

	if *preview {
		fmt.Printf("dataset %s: %d users, %d sessions, %d examples, positive rate %.2f%%\n",
			d.Schema.Name, len(d.Users), d.NumSessions(), d.NumExamples(), 100*d.PositiveRate())
		fmt.Printf("%-12s  %-11s  %s\n", "TIMESTAMP", "ACCESS FLAG", "CONTEXT")
		shown := 0
		for _, u := range d.Users {
			for _, s := range u.Sessions {
				flag := 0
				if s.Access {
					flag = 1
				}
				fmt.Printf("%-12d  %-11d  %v\n", s.Timestamp, flag, s.Cat)
				shown++
				if shown >= 10 {
					return
				}
			}
		}
		return
	}

	path := *out
	if path == "" {
		ext := ".ppds"
		if *format == "jsonl" {
			ext = ".jsonl"
		}
		path = *name + ext
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppgen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	switch *format {
	case "binary":
		err = dataset.Write(f, d)
	case "jsonl":
		err = dataset.WriteJSONL(f, d)
	default:
		fmt.Fprintf(os.Stderr, "ppgen: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppgen: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d users, %d sessions, positive rate %.2f%%\n",
		path, len(d.Users), d.NumSessions(), 100*d.PositiveRate())
}
