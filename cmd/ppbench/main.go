// Command ppbench regenerates the paper's tables and figures
// (see DESIGN.md's per-experiment index), and runs the tracked
// machine-readable benchmark suites.
//
// Usage:
//
//	ppbench -exp all                 # every experiment, default scale
//	ppbench -exp table3 -scale quick # one experiment, reduced scale
//	ppbench -list
//	ppbench -bench serving -bench-out BENCH_serving.json
//	ppbench -bench server            # online HTTP tier -> BENCH_server.json
//	ppbench -bench serving -scale quick   # CI short mode
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id or 'all' (see -list)")
		scale    = flag.String("scale", "default", "quick | default")
		users    = flag.Int("users", 0, "override MobileTab/Timeshift user count")
		verbose  = flag.Bool("v", false, "log training progress")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		bench    = flag.String("bench", "", "run a tracked benchmark suite instead of experiments (serving | server)")
		benchOut = flag.String("bench-out", "", "JSON output path for -bench (default BENCH_<suite>.json)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *bench != "" {
		type benchSuite interface {
			Render() string
			WriteJSON(path string) error
		}
		var suite benchSuite
		out := *benchOut
		t0 := time.Now()
		switch *bench {
		case "serving":
			suite = experiments.RunServingBench(*scale == "quick")
			if out == "" {
				out = "BENCH_serving.json"
			}
		case "server":
			suite = experiments.RunServerBench(*scale == "quick")
			if out == "" {
				out = "BENCH_server.json"
			}
		default:
			fmt.Fprintf(os.Stderr, "ppbench: unknown bench suite %q (have: serving, server)\n", *bench)
			os.Exit(2)
		}
		fmt.Println(suite.Render())
		if err := suite.WriteJSON(out); err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: writing %s: %v\n", out, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%v)\n", out, time.Since(t0).Round(time.Second))
		return
	}

	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.QuickScale()
	case "default":
		s = experiments.DefaultScale()
	default:
		fmt.Fprintf(os.Stderr, "ppbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *users > 0 {
		s.MobileTabUsers = *users
		s.TimeshiftUsers = *users
	}

	lab := experiments.NewLab(s)
	lab.Verbose = *verbose

	start := time.Now()
	if *exp == "all" {
		for _, id := range experiments.IDs() {
			runOne(lab, id)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			runOne(lab, strings.TrimSpace(id))
		}
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Second))
}

func runOne(lab *experiments.Lab, id string) {
	t0 := time.Now()
	r := lab.ByID(id)
	if r == nil {
		fmt.Fprintf(os.Stderr, "ppbench: unknown experiment %q (use -list)\n", id)
		os.Exit(2)
	}
	fmt.Println(r.Render())
	fmt.Printf("(%s took %v)\n\n", id, time.Since(t0).Round(time.Millisecond))
}
