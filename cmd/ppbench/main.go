// Command ppbench regenerates the paper's tables and figures
// (see DESIGN.md's per-experiment index).
//
// Usage:
//
//	ppbench -exp all                 # every experiment, default scale
//	ppbench -exp table3 -scale quick # one experiment, reduced scale
//	ppbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id or 'all' (see -list)")
		scale   = flag.String("scale", "default", "quick | default")
		users   = flag.Int("users", 0, "override MobileTab/Timeshift user count")
		verbose = flag.Bool("v", false, "log training progress")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.QuickScale()
	case "default":
		s = experiments.DefaultScale()
	default:
		fmt.Fprintf(os.Stderr, "ppbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *users > 0 {
		s.MobileTabUsers = *users
		s.TimeshiftUsers = *users
	}

	lab := experiments.NewLab(s)
	lab.Verbose = *verbose

	start := time.Now()
	if *exp == "all" {
		for _, id := range experiments.IDs() {
			runOne(lab, id)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			runOne(lab, strings.TrimSpace(id))
		}
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Second))
}

func runOne(lab *experiments.Lab, id string) {
	t0 := time.Now()
	r := lab.ByID(id)
	if r == nil {
		fmt.Fprintf(os.Stderr, "ppbench: unknown experiment %q (use -list)\n", id)
		os.Exit(2)
	}
	fmt.Println(r.Render())
	fmt.Printf("(%s took %v)\n\n", id, time.Since(t0).Round(time.Millisecond))
}
