// Command ppserve runs the production serving simulation of §9 end to end:
// it trains a model, then replays a cohort of users through the prediction
// service (session startup) and the stream processor (session
// finalisation + GRU update), and reports precision/recall of the
// precompute policy together with the KV-store traffic.
//
// Usage:
//
//	ppserve -users 500 -threshold 0.5
package main

import (
	"flag"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/serving"
	"repro/internal/synth"
)

func main() {
	var (
		users     = flag.Int("users", 400, "cohort size")
		epochs    = flag.Int("epochs", 3, "RNN training epochs")
		hidden    = flag.Int("hidden", 32, "hidden dimensionality")
		threshold = flag.Float64("threshold", 0, "precompute threshold (0 = derive from 60% precision target)")
		seed      = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	fmt.Println("== predictive precompute serving simulation ==")
	cfg := synth.DefaultMobileTab()
	cfg.Users = *users * 2 // half for training, half replayed
	cfg.Seed = *seed
	data := synth.GenerateMobileTab(cfg)
	split := dataset.SplitUsers(data, 0.5, *seed)
	fmt.Printf("dataset: %d users, %d sessions, positive rate %.1f%%\n",
		len(data.Users), data.NumSessions(), 100*data.PositiveRate())

	mcfg := core.DefaultConfig()
	mcfg.HiddenDim = *hidden
	mcfg.Seed = *seed
	model := core.New(data.Schema, mcfg)
	tc := core.DefaultTrainConfig()
	tc.Epochs = *epochs
	tc.BatchUsers = 4
	tc.LR = 2e-3
	tc.Seed = *seed
	fmt.Printf("training RNN (d=%d, %d epochs) on %d users...\n", *hidden, *epochs, len(split.Train.Users))
	loss := core.NewTrainer(model, tc).Train(split.Train)
	fmt.Printf("final training loss: %.4f\n", loss)

	thr := *threshold
	if thr == 0 {
		scores, labels := model.EvaluateSessions(split.Train, split.Train.CutoffForLastDays(7))
		recall, t := metrics.RecallAtPrecision(scores, labels, 0.6)
		thr = t
		fmt.Printf("threshold %.4f targets 60%% precision (training recall %.1f%%)\n", thr, 100*recall)
	}

	store := serving.NewKVStore()
	proc := serving.NewStreamProcessor(model, store)
	svc := serving.NewPredictionService(model, store, thr)

	// Replay the held-out cohort in global timestamp order, exactly as
	// production traffic would interleave users.
	type event struct {
		ts     int64
		user   int
		sid    string
		cat    []int
		access bool
	}
	var evs []event
	for _, u := range split.Test.Users {
		for i, s := range u.Sessions {
			evs = append(evs, event{
				ts: s.Timestamp, user: u.ID,
				sid:    fmt.Sprintf("u%d-s%d", u.ID, i),
				cat:    s.Cat,
				access: s.Access,
			})
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].ts < evs[j].ts })

	var tp, fp, fn, tn int
	for _, e := range evs {
		proc.Advance(e.ts)
		dec := svc.OnSessionStart(e.user, e.ts, e.cat)
		switch {
		case dec.Precompute && e.access:
			tp++
		case dec.Precompute && !e.access:
			fp++
		case !dec.Precompute && e.access:
			fn++
		default:
			tn++
		}
		proc.OnSessionStart(e.sid, e.user, e.ts, e.cat)
		if e.access {
			proc.OnAccess(e.sid, e.ts+30)
		}
	}
	proc.Flush()

	fmt.Printf("\nreplayed %d sessions for %d users\n", len(evs), len(split.Test.Users))
	precision := 0.0
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	recall := 0.0
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	fmt.Printf("precompute decisions: %d of %d sessions (%.1f%%)\n",
		tp+fp, len(evs), 100*float64(tp+fp)/float64(len(evs)))
	fmt.Printf("precision %.1f%%  recall (successful prefetches) %.1f%%\n", 100*precision, 100*recall)

	st := store.Stats()
	fmt.Printf("\nKV store: %d keys, %d gets (%d misses), %d puts\n", st.Keys, st.Gets, st.Misses, st.Puts)
	fmt.Printf("bytes: %d stored (%d per user), %d read, %d written\n",
		st.BytesStored, st.BytesStored/int64(maxInt(st.Keys, 1)), st.BytesRead, st.BytesPut)
	fmt.Printf("stream processor: %d hidden updates, %d sessions pending\n", proc.UpdatesRun, proc.Pending())
	fmt.Printf("lookups per prediction: %.2f (the aggregation-based design needs ≈20, §9)\n",
		float64(st.Gets)/float64(svc.Predictions))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
