// Command ppserve runs the production serving path of §9 in two modes.
//
// Replay mode (default) trains a model, then replays a cohort of users
// through the prediction service (session startup) and the stream
// processor (session finalisation + GRU update) in-process, and reports
// precision/recall of the precompute policy together with the KV-store
// traffic.
//
// Server mode (-serve ADDR) trains the same model and then serves live
// traffic over an HTTP/JSON API — POST /event, POST /predict, GET /statz,
// GET /healthz — backed by a dynamic micro-batcher that coalesces
// concurrent finalisations into the batched GEMM path (flush on -max-batch
// or -max-wait). SIGTERM shuts down gracefully: in-flight work drains and
// the statestore takes a final snapshot. Drive it with cmd/ppload.
// -wire-addr ADDR additionally serves the hot event/predict path over the
// binary wire protocol (internal/wire) on a second listener; the HTTP API
// keeps serving everything else.
//
// With -workers > 1 the replay runs through the concurrent serving path:
// a sharded KV store, a worker-pool stream processor (per-user lanes keep
// update order), and batched fan-out predictions sized by -batch.
//
// Lifecycle flags swap in the durable, memory-bounded statestore:
// -persist DIR enables the WAL + snapshot tier (and -restart-after
// simulates a crash mid-replay, recovering from disk), -evict-after bounds
// state idleness (evicted users fall back to h_0 cold start), -mem-budget
// caps resident bytes, and -quant holds warm states int8-quantized.
//
// -precision f32 runs session finalisation through the fused float32
// kernels instead of the f64 reference path (predictions always score in
// f64). With a lifecycle store, the statestore then holds states under the
// f32 codec, so the resident width matches the compute width.
//
// Usage:
//
//	ppserve -users 500 -threshold 0.5
//	ppserve -users 500 -workers 8 -batch 64
//	ppserve -users 500 -precision f32 -workers 8 -batch 64
//	ppserve -users 500 -persist /tmp/pp -restart-after 0.5
//	ppserve -users 500 -serve :8080 -max-batch 32 -max-wait 2ms
//	ppserve -users 500 -digest   # print the replay's state digest (parity)
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/replication"
	"repro/internal/server"
	"repro/internal/serving"
	"repro/internal/statestore"
)

// flagSet carries every ppserve flag through validation.
type flagSet struct {
	users, epochs, hidden   int
	workers, batch, shards  int
	inferBatch              int
	threshold, restartAfter float64
	persist                 string
	evictAfter              time.Duration
	memBudget               int64
	serve                   string
	wireAddr                string
	maxBatch, laneDepth     int
	maxWait                 time.Duration
	replicaOf               string
	follow                  bool
	quant                   bool
	precision               string
	cpuprofile, memprofile  string
	// set records which flags were explicitly passed (flag.Visit), so
	// validation can reject mode-mismatched flags without guessing from
	// default values.
	set map[string]bool
}

// validate rejects nonsensical flag combinations up front with one clear
// error instead of silent misbehaviour mid-run.
func (f flagSet) validate() error {
	var errs []string
	add := func(msg string) { errs = append(errs, msg) }
	if f.users < 1 {
		add("-users must be >= 1")
	}
	if f.epochs < 0 {
		add("-epochs must be >= 0")
	}
	if f.hidden < 1 {
		add("-hidden must be >= 1")
	}
	if f.threshold < 0 || f.threshold > 1 {
		add("-threshold must be in [0,1] (0 derives it from the 60% precision target)")
	}
	if f.workers < 0 {
		add("-workers must be >= 0")
	}
	if f.batch < 1 {
		add("-batch must be >= 1")
	}
	if f.shards < 1 {
		add("-shards must be >= 1")
	}
	if f.inferBatch < 1 {
		add("-infer-batch must be >= 1 (1 = per-session finalisation)")
	}
	if f.evictAfter < 0 {
		add("-evict-after must be >= 0")
	}
	if f.memBudget < 0 {
		add("-mem-budget must be >= 0")
	}
	if f.restartAfter < 0 || f.restartAfter >= 1 {
		if f.restartAfter != 0 {
			add("-restart-after must be in (0,1) — a fraction of the replay")
		}
	}
	if f.restartAfter > 0 && f.persist == "" {
		add("-restart-after requires -persist (a volatile store cannot recover)")
	}
	if f.serve != "" {
		if f.restartAfter > 0 {
			add("-restart-after is a replay-mode flag, incompatible with -serve")
		}
		if f.cpuprofile != "" || f.memprofile != "" {
			add("-cpuprofile/-memprofile profile the replay only, incompatible with -serve")
		}
		if f.inferBatch > 1 {
			add("-infer-batch is a replay-mode flag; in server mode use -max-batch")
		}
		if f.batch > 1 {
			add("-batch is a replay-mode flag; server-mode predict batching uses -max-batch")
		}
	} else {
		for _, name := range []string{"max-batch", "max-wait", "lane-depth", "replica-of", "follow", "wire-addr"} {
			if f.set[name] {
				add("-" + name + " is a server-mode flag; it has no effect without -serve")
			}
		}
	}
	if f.replicaOf != "" && f.follow {
		add("-replica-of already implies follower mode; drop -follow")
	}
	if (f.replicaOf != "" || f.follow) && f.persist == "" {
		add("follower mode requires -persist (replication applies through the durable statestore)")
	}
	if f.maxBatch < 1 {
		add("-max-batch must be >= 1")
	}
	if f.maxWait < 0 {
		add("-max-wait must be >= 0")
	}
	if f.laneDepth < 1 {
		add("-lane-depth must be >= 1")
	}
	if _, err := nn.ParsePrecision(f.precision); err != nil {
		add("-precision: " + err.Error())
	} else if f.precision == "f32" && f.quant {
		// int8 quantization constants are calibrated against f64-computed
		// states; mixing tiers silently shifts the dequantized distribution.
		add("-precision f32 with -quant is not supported until the int8 scale is recalibrated for the f32 tier; pick one")
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("invalid flags: %s", strings.Join(errs, "; "))
}

func main() {
	var (
		users      = flag.Int("users", 400, "cohort size")
		epochs     = flag.Int("epochs", 3, "RNN training epochs")
		hidden     = flag.Int("hidden", 32, "hidden dimensionality")
		threshold  = flag.Float64("threshold", 0, "precompute threshold (0 = derive from 60% precision target)")
		seed       = flag.Uint64("seed", 1, "seed")
		workers    = flag.Int("workers", 1, "serving concurrency (replay: 1 = sequential compatibility path; serve: finalisation lanes, 0 = GOMAXPROCS)")
		batch      = flag.Int("batch", 1, "prediction micro-batch size when workers > 1 (1 = lock-step parity with the sequential path; use >1, e.g. 64, for throughput)")
		shards     = flag.Int("shards", serving.DefaultShards, "KV store shard count (used when workers > 1)")
		inferBatch = flag.Int("infer-batch", 1, "session-finalisation batch size: due sessions are advanced through the batched GEMM cell in groups of up to this size (states stay byte-identical to 1)")
		digest     = flag.Bool("digest", false, "print the SHA-256 digest of the final hidden states (the HTTP parity gate compares it against the server's /digest)")

		serveAddr = flag.String("serve", "", "run as an online HTTP server on this address (e.g. :8080) instead of replaying in-process")
		wireAddr  = flag.String("wire-addr", "", "also serve the binary wire protocol (hot event/predict path) on this address; requires -serve")
		maxBatch  = flag.Int("max-batch", 32, "server micro-batch flush size (finalise and predict)")
		maxWait   = flag.Duration("max-wait", 2*time.Millisecond, "server micro-batch flush deadline (0 = greedy flush, no waiting)")
		laneDepth = flag.Int("lane-depth", 256, "server per-lane finalisation queue bound (full queues shed events with 429)")
		replicaOf = flag.String("replica-of", "", "follow this primary's base URL, replicating its states (requires -serve and -persist)")
		follow    = flag.Bool("follow", false, "start as a standby follower with no primary yet; POST /replicate/follow assigns one (requires -serve and -persist)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the replay to this file")
		memprofile = flag.String("memprofile", "", "write a post-replay heap profile to this file")

		faultsFile   = flag.String("faults", "", "arm a deterministic fault-injection scenario from this JSON file (testing only)")
		persist      = flag.String("persist", "", "statestore durability directory (WAL + snapshots); empty = volatile")
		evictAfter   = flag.Duration("evict-after", 0, "idle eviction horizon in virtual time (0 = never evict)")
		memBudget    = flag.Int64("mem-budget", 0, "resident byte budget for hidden states (0 = unbounded)")
		quant        = flag.Bool("quant", false, "hold warm states int8-quantized (1 byte/dim, §9)")
		restartAfter = flag.Float64("restart-after", 0, "simulate a crash + restart after this fraction of the replay (requires -persist)")
		precisionF   = flag.String("precision", "f64", "session-finalisation compute tier: f64 (bit-exact reference) or f32 (fused kernels, bounded-error vs f64); predictions always run f64")
	)
	flag.Parse()

	fs := flagSet{
		users: *users, epochs: *epochs, hidden: *hidden,
		workers: *workers, batch: *batch, shards: *shards,
		inferBatch: *inferBatch,
		threshold:  *threshold, restartAfter: *restartAfter,
		persist: *persist, evictAfter: *evictAfter, memBudget: *memBudget,
		serve: *serveAddr, wireAddr: *wireAddr,
		maxBatch: *maxBatch, maxWait: *maxWait, laneDepth: *laneDepth,
		replicaOf: *replicaOf, follow: *follow,
		quant: *quant, precision: *precisionF,
		cpuprofile: *cpuprofile, memprofile: *memprofile,
		set: map[string]bool{},
	}
	flag.Visit(func(fl *flag.Flag) { fs.set[fl.Name] = true })
	if err := fs.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "ppserve: %v\n", err)
		os.Exit(2)
	}
	tier, _ := nn.ParsePrecision(fs.precision) // validated above

	// Arm fault injection before any faultable subsystem (statestore,
	// replication, handlers) comes up, so a scenario covers the whole run.
	if *faultsFile != "" {
		plan, err := faults.Load(*faultsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppserve: -faults: %v\n", err)
			os.Exit(2)
		}
		if err := faults.Arm(plan); err != nil {
			fmt.Fprintf(os.Stderr, "ppserve: -faults: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("FAULT INJECTION ARMED: %d rule(s) from %s (seed %d)\n",
			len(plan.Rules), *faultsFile, plan.Seed)
	}

	lifecycle := *persist != "" || *evictAfter > 0 || *memBudget > 0 || *quant

	if *serveAddr != "" {
		fmt.Println("== predictive precompute online server ==")
	} else {
		fmt.Println("== predictive precompute serving simulation ==")
	}
	data, split := server.ReplayCohort(*users, *seed)
	fmt.Printf("dataset: %d users, %d sessions, positive rate %.1f%%\n",
		len(data.Users), data.NumSessions(), 100*data.PositiveRate())

	mcfg := core.DefaultConfig()
	mcfg.HiddenDim = *hidden
	mcfg.Seed = *seed
	model := core.New(data.Schema, mcfg)
	if tier == nn.TierF32 && !model.SupportsF32() {
		fmt.Fprintf(os.Stderr, "ppserve: -precision f32: the %s cell has no f32 inference tier\n", model.Cfg.Cell)
		os.Exit(2)
	}
	tc := core.DefaultTrainConfig()
	tc.Epochs = *epochs
	tc.BatchUsers = 4
	tc.LR = 2e-3
	tc.Seed = *seed
	fmt.Printf("training RNN (d=%d, %d epochs) on %d users...\n", *hidden, *epochs, len(split.Train.Users))
	loss := core.NewTrainer(model, tc).Train(split.Train)
	fmt.Printf("final training loss: %.4f\n", loss)

	thr := *threshold
	if thr == 0 {
		scores, labels := model.EvaluateSessions(split.Train, split.Train.CutoffForLastDays(7))
		recall, t := metrics.RecallAtPrecision(scores, labels, 0.6)
		thr = t
		fmt.Printf("threshold %.4f targets 60%% precision (training recall %.1f%%)\n", thr, 100*recall)
	}

	ssOpts := statestore.Options{
		Dir:        *persist,
		EvictAfter: int64(evictAfter.Seconds()),
		MemBudget:  *memBudget,
		Shards:     *shards,
	}
	if *quant {
		ssOpts.Codec = statestore.CodecInt8
	} else if tier == nn.TierF32 {
		// Match the resident width to the compute width: the f32 tier's
		// records are tagged tagF32 and stored payload-verbatim, so Get/Put
		// never transcode per dimension.
		ssOpts.Codec = statestore.CodecF32
	}

	if *serveAddr != "" {
		runServer(*serveAddr, model, thr, lifecycle, ssOpts, serverConfig{
			lanes:     *workers,
			maxBatch:  *maxBatch,
			maxWait:   *maxWait,
			laneDepth: *laneDepth,
			shards:    *shards,
			digest:    *digest,
			replicaOf: *replicaOf,
			follow:    *follow,
			wireAddr:  *wireAddr,
			precision: tier,
		})
		return
	}

	// Replay the held-out cohort in global timestamp order, exactly as
	// production traffic would interleave users. The log comes from the
	// same builder ppload uses, so the HTTP parity gate replays identical
	// traffic.
	evs := server.LogFromDataset(split.Test)

	// stack is one generation of the serving tier; a simulated restart
	// tears it down and rebuilds it from the persisted state.
	type stack struct {
		store       serving.Store
		ss          *statestore.Store // non-nil when the lifecycle store is in use
		svc         *serving.PredictionService
		advance     func(ts int64)
		onSession   func(sid string, user int, ts int64, cat []int)
		onAccess    func(sid string, ts int64)
		flush       func()
		updatesRun  func() int64
		pendingLeft func() int
	}
	buildStack := func(announce bool) *stack {
		st := &stack{}
		if lifecycle {
			ss, err := statestore.Open(ssOpts)
			if err != nil {
				fmt.Printf("ppserve: opening statestore: %v\n", err)
				return nil
			}
			st.store, st.ss = ss, ss
			if announce {
				fmt.Printf("state store: statestore (persist=%q codec=%s evict-after=%s mem-budget=%d)\n",
					*persist, ssOpts.Codec, *evictAfter, *memBudget)
				if n := ss.Lifecycle().RecoveredKeys; n > 0 {
					fmt.Printf("note: recovered %d states from a previous run in %s\n", n, *persist)
				}
			}
		}
		if *workers > 1 {
			if st.store == nil {
				sh := serving.NewShardedKVStore(*shards)
				st.store = sh
				if announce {
					fmt.Printf("state store: %d-shard in-memory KV\n", sh.NumShards())
				}
			}
			proc, err := serving.NewParallelStreamProcessorTier(model, st.store, *workers, *inferBatch, tier)
			if err != nil {
				fmt.Printf("ppserve: %v\n", err) // unreachable: gated on SupportsF32 above
				return nil
			}
			// Advance+Sync preserves the sequential path's read-your-writes
			// semantics at every prediction point.
			st.advance = func(ts int64) { proc.Advance(ts); proc.Sync() }
			st.onSession = proc.OnSessionStart
			st.onAccess = proc.OnAccess
			st.flush = proc.Close
			st.updatesRun = proc.UpdatesRun
			st.pendingLeft = proc.Pending
			if announce {
				fmt.Printf("serving stack: %d worker lanes, batch %d, infer-batch %d, precision %s\n",
					proc.Workers(), maxInt(*batch, 1), maxInt(*inferBatch, 1), tier)
			}
		} else {
			if st.store == nil {
				st.store = serving.NewKVStore()
				if announce {
					fmt.Println("state store: single-mutex in-memory KV")
				}
			}
			proc := serving.NewStreamProcessor(model, st.store)
			proc.SetInferBatch(*inferBatch)
			if err := proc.SetPrecision(tier); err != nil {
				fmt.Printf("ppserve: %v\n", err) // unreachable: gated on SupportsF32 above
				return nil
			}
			st.advance = proc.Advance
			st.onSession = proc.OnSessionStart
			st.onAccess = proc.OnAccess
			st.flush = proc.Flush
			st.updatesRun = func() int64 { return proc.UpdatesRun }
			st.pendingLeft = proc.Pending
			if announce {
				if *inferBatch > 1 {
					fmt.Printf("serving stack: sequential, infer-batch %d, precision %s\n", *inferBatch, tier)
				} else {
					fmt.Printf("serving stack: sequential (in-line updates), precision %s\n", tier)
				}
			}
		}
		st.svc = serving.NewPredictionService(model, st.store, thr)
		return st
	}

	cur := buildStack(true)
	if cur == nil {
		return
	}
	bsz := *batch
	if bsz < 1 || *workers <= 1 {
		bsz = 1
	}

	// Counters accumulated across stack generations (a restart must not
	// lose the pre-crash half of the report).
	var tp, fp, fn, tn int
	var acc serving.Stats
	var accPred, accCold, accFail, accUpdates int64
	retire := func(s *stack) {
		s.flush()
		st := s.store.Stats()
		acc.Gets += st.Gets
		acc.Puts += st.Puts
		acc.Misses += st.Misses
		acc.BytesRead += st.BytesRead
		acc.BytesPut += st.BytesPut
		accPred += s.svc.Predictions.Load()
		accCold += s.svc.ColdStarts.Load()
		accFail += s.svc.DecodeFailures.Load()
		accUpdates += s.updatesRun()
	}

	score := func(dec serving.Decision, access bool) {
		switch {
		case dec.Precompute && access:
			tp++
		case dec.Precompute && !access:
			fp++
		case !dec.Precompute && access:
			fn++
		default:
			tn++
		}
	}

	restartAt := -1
	if *restartAfter > 0 && *restartAfter < 1 {
		restartAt = int(float64(len(evs)) * *restartAfter)
	}

	// Profiles cover the replay only — training noise would drown the
	// serving hot path future perf PRs need evidence about.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Printf("ppserve: -cpuprofile: %v\n", err)
			return
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Printf("ppserve: starting CPU profile: %v\n", err)
			return
		}
	}

	t0 := time.Now()
	for lo := 0; lo < len(evs); lo += bsz {
		if restartAt >= 0 && lo >= restartAt {
			restartAt = -1
			// Retire (flush) BEFORE snapshotting the keyset: the flush's
			// final Puts can trigger legitimate evictions, which must not
			// be mistaken for recovery losses.
			retire(cur)
			keysBefore := cur.store.Keys()
			if err := cur.ss.Close(); err != nil {
				fmt.Printf("ppserve: closing statestore: %v\n", err)
				return
			}
			cur = buildStack(false)
			if cur == nil {
				return
			}
			lost := missingKeys(keysBefore, cur.store.Keys())
			ls := cur.ss.Lifecycle()
			fmt.Printf("\n-- simulated restart at event %d --\n", lo)
			fmt.Printf("recovered %d states (replayed %d records, %dB torn tail)\n",
				ls.RecoveredKeys, ls.ReplayedRecords, ls.TornTailBytes)
			if lost == 0 {
				fmt.Println("zero unexpected cold starts: every pre-crash state survived")
			} else {
				fmt.Printf("WARNING: %d states lost across restart (unexpected cold starts ahead)\n", lost)
			}
		}
		hi := lo + bsz
		if hi > len(evs) {
			hi = len(evs)
		}
		group := evs[lo:hi]
		// All predictions in a micro-batch observe the store as of the
		// group's first timestamp (the state a real batched tier would
		// serve from), then the group's stream events are ingested.
		cur.advance(group[0].Ts)
		if bsz == 1 {
			score(cur.svc.OnSessionStart(group[0].User, group[0].Ts, group[0].Cat), group[0].Access)
		} else {
			reqs := make([]serving.PredictRequest, len(group))
			for i, e := range group {
				reqs[i] = serving.PredictRequest{UserID: e.User, Ts: e.Ts, Cat: e.Cat}
			}
			for i, dec := range cur.svc.OnSessionStartBatch(reqs, *workers) {
				score(dec, group[i].Access)
			}
		}
		for _, e := range group {
			cur.onSession(e.SID, e.User, e.Ts, e.Cat)
			if e.Access {
				cur.onAccess(e.SID, e.Ts+30)
			}
		}
	}
	pending := cur.pendingLeft
	retire(cur)
	elapsed := time.Since(t0)

	if *cpuprofile != "" {
		pprof.StopCPUProfile()
		fmt.Printf("wrote CPU profile to %s\n", *cpuprofile)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Printf("ppserve: -memprofile: %v\n", err)
			return
		}
		runtime.GC() // materialise the live set before the heap snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Printf("ppserve: writing heap profile: %v\n", err)
		}
		f.Close()
		fmt.Printf("wrote heap profile to %s\n", *memprofile)
	}

	fmt.Printf("\nreplayed %d sessions for %d users in %s (%.0f sessions/s)\n",
		len(evs), len(split.Test.Users), elapsed.Round(time.Millisecond),
		float64(len(evs))/elapsed.Seconds())
	if *digest {
		dg, keys := serving.StateDigest(cur.store)
		fmt.Printf("state digest: %s (%d keys)\n", dg, keys)
	}
	precision := 0.0
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	recall := 0.0
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	fmt.Printf("precompute decisions: %d of %d sessions (%.1f%%)\n",
		tp+fp, len(evs), 100*float64(tp+fp)/float64(len(evs)))
	fmt.Printf("precision %.1f%%  recall (successful prefetches) %.1f%%\n", 100*precision, 100*recall)

	final := cur.store.Stats()
	fmt.Printf("\nKV store: %d keys, %d gets (%d misses), %d puts\n",
		final.Keys, acc.Gets, acc.Misses, acc.Puts)
	fmt.Printf("bytes: %d stored (%d per user), %d read, %d written\n",
		final.BytesStored, final.BytesStored/int64(maxInt(final.Keys, 1)), acc.BytesRead, acc.BytesPut)
	fmt.Printf("prediction service: %d cold starts, %d decode failures\n", accCold, accFail)
	fmt.Printf("stream processor: %d hidden updates, %d sessions pending\n", accUpdates, pending())
	fmt.Printf("lookups per prediction: %.2f (the aggregation-based design needs ≈20, §9)\n",
		float64(acc.Gets)/float64(accPred))
	if cur.ss != nil {
		ls := cur.ss.Lifecycle()
		fmt.Printf("lifecycle: %d idle + %d budget evictions, %d snapshots, %d WAL records (%dB), wal-seq %d (snap-seq %d)\n",
			ls.IdleEvictions, ls.BudgetEvictions, ls.Snapshots, ls.WALRecords, ls.WALBytes, ls.WALSeq, ls.SnapSeq)
		if err := cur.ss.Close(); err != nil {
			fmt.Printf("ppserve: statestore error: %v\n", err)
		}
	}
}

// serverConfig bundles the server-mode knobs.
type serverConfig struct {
	lanes, maxBatch, laneDepth int
	maxWait                    time.Duration
	shards                     int
	digest                     bool
	replicaOf                  string
	follow                     bool
	wireAddr                   string
	precision                  nn.PrecisionTier
}

// runServer builds the store, starts the HTTP tier, and shuts down
// gracefully on SIGTERM/SIGINT: the micro-batcher drains and the
// statestore takes a final snapshot before the process exits.
func runServer(addr string, model *core.Model, thr float64, lifecycle bool, ssOpts statestore.Options, cfg serverConfig) {
	var store serving.Store
	var ss *statestore.Store
	if lifecycle {
		var err error
		ss, err = statestore.Open(ssOpts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppserve: opening statestore: %v\n", err)
			os.Exit(1)
		}
		store = ss
		fmt.Printf("state store: statestore (persist=%q codec=%s)\n", ssOpts.Dir, ssOpts.Codec)
		if n := ss.Lifecycle().RecoveredKeys; n > 0 {
			fmt.Printf("note: recovered %d states from a previous run in %s\n", n, ssOpts.Dir)
		}
	} else {
		store = serving.NewShardedKVStore(cfg.shards)
	}

	wait := cfg.maxWait
	if wait == 0 {
		wait = -1 // ppserve's 0 means "greedy flush"; Options' 0 is the default
	}
	var fol *replication.Follower
	if cfg.replicaOf != "" || cfg.follow {
		fol = replication.NewFollower(ss, cfg.replicaOf)
	}
	srv := server.New(server.Options{
		Model:     model,
		Store:     store,
		State:     ss,
		Threshold: thr,
		Follower:  fol,
		Lanes:     cfg.lanes,
		MaxBatch:  cfg.maxBatch,
		MaxWait:   wait,
		LaneDepth: cfg.laneDepth,
		Precision: cfg.precision,
	})
	if fol != nil {
		fol.Start()
		if cfg.replicaOf != "" {
			fmt.Printf("follower: replicating %s\n", cfg.replicaOf)
		} else {
			fmt.Println("follower: standby (waiting for /replicate/follow)")
		}
	}

	done := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		sig := <-sigCh
		fmt.Printf("\nreceived %s, draining...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "ppserve: shutdown: %v\n", err)
		}
	}()

	if cfg.wireAddr != "" {
		wl, err := net.Listen("tcp", cfg.wireAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppserve: -wire-addr: %v\n", err)
			os.Exit(1)
		}
		go func() {
			if err := srv.ServeWire(wl); err != nil {
				fmt.Fprintf(os.Stderr, "ppserve: wire listener: %v\n", err)
			}
		}()
		fmt.Printf("wire protocol on %s\n", wl.Addr())
	}
	fmt.Printf("serving on %s (lanes=%d max-batch=%d max-wait=%s lane-depth=%d precision=%s)\n",
		addr, cfg.lanes, cfg.maxBatch, cfg.maxWait, cfg.laneDepth, cfg.precision)
	if err := srv.ListenAndServe(addr); err != nil {
		fmt.Fprintf(os.Stderr, "ppserve: %v\n", err)
		os.Exit(1)
	}
	<-done

	st := srv.Stats()
	fmt.Printf("served %d events (%d shed), %d predicts (%d shed)\n",
		st.Events, st.EventsShed, st.Predicts, st.PredictsShed)
	fmt.Printf("micro-batcher: %d updates in %d batches (mean batch %.2f)\n",
		st.UpdatesRun, st.Batches, st.MeanBatch)
	if cfg.digest {
		dg, keys := serving.StateDigest(store)
		fmt.Printf("state digest: %s (%d keys)\n", dg, keys)
	}
	if ss != nil {
		ls := ss.Lifecycle()
		fmt.Printf("lifecycle: %d snapshots, %d WAL records (%dB), wal-seq %d (snap-seq %d)\n",
			ls.Snapshots, ls.WALRecords, ls.WALBytes, ls.WALSeq, ls.SnapSeq)
		if err := ss.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ppserve: statestore error: %v\n", err)
		}
	}
}

// missingKeys counts keys of before absent from after.
func missingKeys(before, after []string) int {
	set := make(map[string]struct{}, len(after))
	for _, k := range after {
		set[k] = struct{}{}
	}
	lost := 0
	for _, k := range before {
		if _, ok := set[k]; !ok {
			lost++
		}
	}
	return lost
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
