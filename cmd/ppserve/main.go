// Command ppserve runs the production serving simulation of §9 end to end:
// it trains a model, then replays a cohort of users through the prediction
// service (session startup) and the stream processor (session
// finalisation + GRU update), and reports precision/recall of the
// precompute policy together with the KV-store traffic.
//
// With -workers > 1 the replay runs through the concurrent serving path:
// a sharded KV store, a worker-pool stream processor (per-user lanes keep
// update order), and batched fan-out predictions sized by -batch.
//
// Usage:
//
//	ppserve -users 500 -threshold 0.5
//	ppserve -users 500 -workers 8 -batch 64
package main

import (
	"flag"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/serving"
	"repro/internal/synth"
)

func main() {
	var (
		users     = flag.Int("users", 400, "cohort size")
		epochs    = flag.Int("epochs", 3, "RNN training epochs")
		hidden    = flag.Int("hidden", 32, "hidden dimensionality")
		threshold = flag.Float64("threshold", 0, "precompute threshold (0 = derive from 60% precision target)")
		seed      = flag.Uint64("seed", 1, "seed")
		workers   = flag.Int("workers", 1, "serving concurrency (1 = sequential compatibility path)")
		batch     = flag.Int("batch", 1, "prediction micro-batch size when workers > 1 (1 = lock-step parity with the sequential path; use >1, e.g. 64, for throughput)")
		shards    = flag.Int("shards", serving.DefaultShards, "KV store shard count (used when workers > 1)")
	)
	flag.Parse()

	fmt.Println("== predictive precompute serving simulation ==")
	cfg := synth.DefaultMobileTab()
	cfg.Users = *users * 2 // half for training, half replayed
	cfg.Seed = *seed
	data := synth.GenerateMobileTab(cfg)
	split := dataset.SplitUsers(data, 0.5, *seed)
	fmt.Printf("dataset: %d users, %d sessions, positive rate %.1f%%\n",
		len(data.Users), data.NumSessions(), 100*data.PositiveRate())

	mcfg := core.DefaultConfig()
	mcfg.HiddenDim = *hidden
	mcfg.Seed = *seed
	model := core.New(data.Schema, mcfg)
	tc := core.DefaultTrainConfig()
	tc.Epochs = *epochs
	tc.BatchUsers = 4
	tc.LR = 2e-3
	tc.Seed = *seed
	fmt.Printf("training RNN (d=%d, %d epochs) on %d users...\n", *hidden, *epochs, len(split.Train.Users))
	loss := core.NewTrainer(model, tc).Train(split.Train)
	fmt.Printf("final training loss: %.4f\n", loss)

	thr := *threshold
	if thr == 0 {
		scores, labels := model.EvaluateSessions(split.Train, split.Train.CutoffForLastDays(7))
		recall, t := metrics.RecallAtPrecision(scores, labels, 0.6)
		thr = t
		fmt.Printf("threshold %.4f targets 60%% precision (training recall %.1f%%)\n", thr, 100*recall)
	}

	// Replay the held-out cohort in global timestamp order, exactly as
	// production traffic would interleave users.
	type event struct {
		ts     int64
		user   int
		sid    string
		cat    []int
		access bool
	}
	var evs []event
	for _, u := range split.Test.Users {
		for i, s := range u.Sessions {
			evs = append(evs, event{
				ts: s.Timestamp, user: u.ID,
				sid:    fmt.Sprintf("u%d-s%d", u.ID, i),
				cat:    s.Cat,
				access: s.Access,
			})
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].ts < evs[j].ts })

	// Pick the serving stack: sequential compatibility path at workers=1,
	// sharded store + worker-pool processor above that.
	var (
		store       serving.Store
		advance     func(ts int64)
		onSession   func(sid string, user int, ts int64, cat []int)
		onAccess    func(sid string, ts int64)
		flush       func()
		updatesRun  func() int64
		pendingLeft func() int
	)
	bsz := *batch
	if bsz < 1 || *workers <= 1 {
		bsz = 1
	}
	if *workers > 1 {
		sh := serving.NewShardedKVStore(*shards)
		proc := serving.NewParallelStreamProcessor(model, sh, *workers)
		store = sh
		// Advance+Sync preserves the sequential path's read-your-writes
		// semantics at every prediction point.
		advance = func(ts int64) { proc.Advance(ts); proc.Sync() }
		onSession = proc.OnSessionStart
		onAccess = proc.OnAccess
		flush = proc.Close
		updatesRun = proc.UpdatesRun
		pendingLeft = proc.Pending
		fmt.Printf("serving stack: %d-shard KV store, %d worker lanes, batch %d\n",
			sh.NumShards(), proc.Workers(), bsz)
	} else {
		kv := serving.NewKVStore()
		proc := serving.NewStreamProcessor(model, kv)
		store = kv
		advance = proc.Advance
		onSession = proc.OnSessionStart
		onAccess = proc.OnAccess
		flush = proc.Flush
		updatesRun = func() int64 { return proc.UpdatesRun }
		pendingLeft = proc.Pending
		fmt.Println("serving stack: sequential (single-mutex store, in-line updates)")
	}
	svc := serving.NewPredictionService(model, store, thr)

	// Scoring runs on the replay goroutine only (batches are scored after
	// OnSessionStartBatch returns), so plain counters suffice.
	var tp, fp, fn, tn int
	score := func(dec serving.Decision, access bool) {
		switch {
		case dec.Precompute && access:
			tp++
		case dec.Precompute && !access:
			fp++
		case !dec.Precompute && access:
			fn++
		default:
			tn++
		}
	}

	t0 := time.Now()
	for lo := 0; lo < len(evs); lo += bsz {
		hi := lo + bsz
		if hi > len(evs) {
			hi = len(evs)
		}
		group := evs[lo:hi]
		// All predictions in a micro-batch observe the store as of the
		// group's first timestamp (the state a real batched tier would
		// serve from), then the group's stream events are ingested.
		advance(group[0].ts)
		if bsz == 1 {
			score(svc.OnSessionStart(group[0].user, group[0].ts, group[0].cat), group[0].access)
		} else {
			reqs := make([]serving.PredictRequest, len(group))
			for i, e := range group {
				reqs[i] = serving.PredictRequest{UserID: e.user, Ts: e.ts, Cat: e.cat}
			}
			for i, dec := range svc.OnSessionStartBatch(reqs, *workers) {
				score(dec, group[i].access)
			}
		}
		for _, e := range group {
			onSession(e.sid, e.user, e.ts, e.cat)
			if e.access {
				onAccess(e.sid, e.ts+30)
			}
		}
	}
	flush()
	elapsed := time.Since(t0)

	fmt.Printf("\nreplayed %d sessions for %d users in %s (%.0f sessions/s)\n",
		len(evs), len(split.Test.Users), elapsed.Round(time.Millisecond),
		float64(len(evs))/elapsed.Seconds())
	precision := 0.0
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	recall := 0.0
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	fmt.Printf("precompute decisions: %d of %d sessions (%.1f%%)\n",
		tp+fp, len(evs), 100*float64(tp+fp)/float64(len(evs)))
	fmt.Printf("precision %.1f%%  recall (successful prefetches) %.1f%%\n", 100*precision, 100*recall)

	st := store.Stats()
	fmt.Printf("\nKV store: %d keys, %d gets (%d misses), %d puts\n", st.Keys, st.Gets, st.Misses, st.Puts)
	fmt.Printf("bytes: %d stored (%d per user), %d read, %d written\n",
		st.BytesStored, st.BytesStored/int64(maxInt(st.Keys, 1)), st.BytesRead, st.BytesPut)
	fmt.Printf("stream processor: %d hidden updates, %d sessions pending\n", updatesRun(), pendingLeft())
	fmt.Printf("lookups per prediction: %.2f (the aggregation-based design needs ≈20, §9)\n",
		float64(st.Gets)/float64(svc.Predictions.Load()))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
