// Command ppload is the load generator for ppserve's online server mode:
// it replays an event log over the HTTP API — closed-loop (a fixed pool of
// connections, each waiting for its responses) or open-loop (a target
// session rate) — interleaves predict requests, and reports throughput and
// latency histograms.
//
// The log is either regenerated deterministically from the same cohort
// flags ppserve trains on (-users/-seed, which is what makes the parity
// gate possible) or read from a ppgen dataset file (-data). Users are
// sharded across connections so each user's events arrive in timestamp
// order, and a session's start/access pair always rides one POST — the
// ordering contract under which the server's stored states are
// byte-identical to sequential in-process replay.
//
// With -wire HOST:PORT the hot path (events, predicts) rides the binary
// wire protocol over persistent pooled connections while the control plane
// (/flush, /digest, /statz) stays on -addr over HTTP — same sharding, same
// ordering contract, so the digest parity gate applies unchanged.
//
// Usage:
//
//	ppload -addr http://127.0.0.1:8080 -users 500 -concurrency 8
//	ppload -addr http://127.0.0.1:8080 -wire 127.0.0.1:9080 -users 500
//	ppload -data mobiletab.ppds -rate 2000 -predict-every 4
//	ppload -users 120 -seed 7 -expect-digest $(ppserve -users 120 -seed 7 -digest | awk '/state digest/{print $3}')
//	ppload -users 500 -out BENCH_server.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", "http://127.0.0.1:8080", "server base URL")
		wireAddr      = flag.String("wire", "", "drive events and predicts over the binary wire protocol at this host:port (control plane stays on -addr)")
		users         = flag.Int("users", 400, "cohort size to regenerate (must match the server's -users)")
		seed          = flag.Uint64("seed", 1, "cohort seed (must match the server's -seed)")
		data          = flag.String("data", "", "replay a ppgen dataset file instead of regenerating the cohort")
		concurrency   = flag.Int("concurrency", 8, "closed-loop connections (users are sharded across them)")
		eventsPerPost = flag.Int("events-per-post", 16, "events coalesced per POST /event")
		predictEvery  = flag.Int("predict-every", 4, "one POST /predict per this many sessions (0 = none)")
		rate          = flag.Float64("rate", 0, "open-loop sessions/s across all connections (0 = closed loop)")
		doFlush       = flag.Bool("flush", true, "POST /flush after the replay (required for digest parity)")
		doDigest      = flag.Bool("digest", false, "print the server's post-flush state digest")
		expectDigest  = flag.String("expect-digest", "", "fail unless the server's post-flush digest equals this hex (parity gate)")
		requireClean  = flag.Bool("require-clean", false, "exit nonzero if any request was shed (429) or errored")
		waitHealthy   = flag.Duration("wait-healthy", 15*time.Second, "wait this long for /healthz before starting")
		out           = flag.String("out", "", "write the machine-readable load report to this JSON path")
		userLo        = flag.Int("user-lo", -1, "replay only users with ID >= this (-1 = no lower bound); phased replays over disjoint ranges compose because the digest is additive over users")
		userHi        = flag.Int("user-hi", -1, "replay only users with ID <= this (-1 = no upper bound)")
		retry         = flag.Int("retry", 0, "re-send a failed (transport error or 5xx) event post up to this many times in place before advancing — preserves per-user order, so digest parity survives transient cluster faults")
		retryBackoff  = flag.Duration("retry-backoff", 50*time.Millisecond, "pause between event-post retries")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ppload: "+format+"\n", args...)
		os.Exit(1)
	}
	if *concurrency < 1 || *eventsPerPost < 1 || *predictEvery < 0 || *rate < 0 || *retry < 0 {
		fmt.Fprintln(os.Stderr, "ppload: invalid flags: -concurrency and -events-per-post must be >= 1, -predict-every, -rate and -retry >= 0")
		os.Exit(2)
	}
	if *expectDigest != "" && !*doFlush {
		fmt.Fprintln(os.Stderr, "ppload: -expect-digest requires -flush (digests of an undrained server are meaningless)")
		os.Exit(2)
	}

	var log []server.ReplayEvent
	if *data != "" {
		f, err := os.Open(*data)
		if err != nil {
			fail("%v", err)
		}
		d, err := dataset.Read(f)
		f.Close()
		if err != nil {
			fail("reading %s: %v", *data, err)
		}
		log = server.LogFromDataset(d)
		fmt.Printf("replaying %s: %d sessions for %d users\n", *data, len(log), len(d.Users))
	} else {
		log = server.ReplayLog(*users, *seed)
		fmt.Printf("replaying regenerated cohort (users=%d seed=%d): %d sessions\n", *users, *seed, len(log))
	}

	if *userLo >= 0 || *userHi >= 0 {
		filtered := log[:0]
		for _, ev := range log {
			if (*userLo >= 0 && ev.User < *userLo) || (*userHi >= 0 && ev.User > *userHi) {
				continue
			}
			filtered = append(filtered, ev)
		}
		log = filtered
		fmt.Printf("user range [%d, %d]: %d sessions kept\n", *userLo, *userHi, len(log))
	}

	if err := server.WaitHealthy(*addr, *waitHealthy); err != nil {
		fail("%v", err)
	}

	opts := server.LoadOptions{
		BaseURL:       *addr,
		Concurrency:   *concurrency,
		EventsPerPost: *eventsPerPost,
		PredictEvery:  *predictEvery,
		RatePerSec:    *rate,
		Flush:         *doFlush,
		RetryFailed:   *retry,
		RetryBackoff:  *retryBackoff,
		WireAddr:      *wireAddr,
	}
	if *wireAddr != "" {
		fmt.Printf("hot path over wire protocol at %s\n", *wireAddr)
	}
	rep, err := server.RunLoad(opts, log)
	if err != nil {
		fail("%v", err)
	}

	fmt.Printf("\n%d sessions (%d events in %d posts, %.1f events/post) in %.0fms — %.0f sessions/s\n",
		rep.Sessions, rep.Events, rep.Posts, rep.EventsPerPostMean, rep.WallMs, rep.SessionsPerSec)
	fmt.Printf("shed: %d events, %d predicts  errors: %d\n", rep.Shed, rep.PredictsShed, rep.Errors)
	if rep.Retries > 0 || rep.DegradedPredicts > 0 {
		fmt.Printf("resilience: %d event-post retries, %d degraded predicts (answered by a non-owner replica)\n",
			rep.Retries, rep.DegradedPredicts)
	}
	printLatency := func(name string, l server.LatencyStats) {
		if l.Count == 0 {
			return
		}
		fmt.Printf("%s latency (ms): p50 %.2f  p90 %.2f  p95 %.2f  p99 %.2f  max %.2f  (n=%d)\n",
			name, l.P50Ms, l.P90Ms, l.P95Ms, l.P99Ms, l.MaxMs, l.Count)
	}
	printLatency("event", rep.EventLatency)
	printLatency("predict", rep.PredictLatency)

	statzBody, err := fetchStatzBody(*addr)
	if err != nil {
		fail("fetching statz: %v", err)
	}
	var statz server.Statz
	if err := json.Unmarshal(statzBody, &statz); err != nil {
		fail("decoding statz: %v", err)
	}
	fmt.Printf("server: %d updates in %d batches (mean batch %.2f), %d events shed, %d predicts shed\n",
		statz.UpdatesRun, statz.Batches, statz.MeanBatch, statz.EventsShed, statz.PredictsShed)
	printReplicaBreakdown(statzBody)

	var keys int
	var dg string
	if *doDigest || *expectDigest != "" {
		keys, dg, err = server.Digest(*addr, nil)
		if err != nil {
			fail("fetching digest: %v", err)
		}
		fmt.Printf("state digest: %s (%d keys)\n", dg, keys)
	}

	if *out != "" {
		doc := struct {
			SchemaVersion int                `json:"schema_version"`
			GeneratedAt   string             `json:"generated_at"`
			Addr          string             `json:"addr"`
			WireAddr      string             `json:"wire_addr,omitempty"`
			Concurrency   int                `json:"concurrency"`
			EventsPerPost int                `json:"events_per_post"`
			PredictEvery  int                `json:"predict_every"`
			RatePerSec    float64            `json:"rate_per_sec"`
			Report        *server.LoadReport `json:"report"`
			MeanBatch     float64            `json:"mean_batch"`
			UpdatesRun    int64              `json:"updates_run"`
			Digest        string             `json:"digest,omitempty"`
			Keys          int                `json:"keys,omitempty"`
		}{
			SchemaVersion: 1,
			GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
			Addr:          *addr,
			WireAddr:      *wireAddr,
			Concurrency:   *concurrency,
			EventsPerPost: *eventsPerPost,
			PredictEvery:  *predictEvery,
			RatePerSec:    *rate,
			Report:        rep,
			MeanBatch:     statz.MeanBatch,
			UpdatesRun:    statz.UpdatesRun,
			Digest:        dg,
			Keys:          keys,
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fail("encoding report: %v", err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fail("writing %s: %v", *out, err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *expectDigest != "" && dg != *expectDigest {
		fail("digest mismatch: server %s, expected %s — HTTP replay is NOT byte-identical to sequential replay", dg, *expectDigest)
	}
	if *expectDigest != "" {
		fmt.Println("digest parity: HTTP replay is byte-identical to sequential replay")
	}
	if *requireClean && (rep.Shed > 0 || rep.PredictsShed > 0 || rep.Errors > 0 || statz.EventsShed > 0 || statz.PredictsShed > 0) {
		fail("run not clean: %d shed, %d errors (server: %d events shed, %d predicts shed)",
			rep.Shed, rep.Errors, statz.EventsShed, statz.PredictsShed)
	}
}

// fetchStatzBody GETs /statz once; the body is decoded twice (aggregate
// shape + optional per-replica breakdown) so a cluster target is not
// fanned out to its replicas a second time.
func fetchStatzBody(addr string) ([]byte, error) {
	resp, err := http.Get(addr + "/statz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("statz: HTTP %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// printReplicaBreakdown shows the per-replica view when the target is a
// pprouter (a single ppserve has no "replicas" field and prints nothing).
// The forwarding taxonomy is decoded structurally rather than through
// the cluster package: ppload is a pure client of the HTTP contract.
func printReplicaBreakdown(statzBody []byte) {
	type fwdStats struct {
		Attempts       int64 `json:"attempts"`
		Retries        int64 `json:"retries"`
		ConnectRefused int64 `json:"connect_refused"`
		Timeouts       int64 `json:"timeouts"`
		Resets         int64 `json:"resets"`
		Server5xx      int64 `json:"server_5xx"`
		BreakerOpen    int64 `json:"breaker_open"`
		OtherErrors    int64 `json:"other_errors"`
		BreakerTrips   int64 `json:"breaker_trips"`
	}
	var cs struct {
		Replicas []struct {
			URL   string       `json:"url"`
			Statz server.Statz `json:"statz"`
		} `json:"replicas"`
		Reshards         int                 `json:"reshards"`
		Moved            int                 `json:"moved_states"`
		DegradedPredicts int64               `json:"degraded_predicts"`
		Forwarding       map[string]fwdStats `json:"forwarding"`
	}
	if json.Unmarshal(statzBody, &cs) != nil || len(cs.Replicas) == 0 {
		return
	}
	fmt.Printf("cluster: %d replicas, %d reshards, %d states moved, %d degraded predicts\n",
		len(cs.Replicas), cs.Reshards, cs.Moved, cs.DegradedPredicts)
	for _, r := range cs.Replicas {
		fmt.Printf("  %s: %d events, %d updates, %d keys, %d shed\n",
			r.URL, r.Statz.Events, r.Statz.UpdatesRun, r.Statz.Store.Keys, r.Statz.EventsShed)
		if f, ok := cs.Forwarding[r.URL]; ok && f.Attempts > 0 {
			fmt.Printf("    forwards: %d attempts, %d retries; errors: %d refused, %d timeout, %d reset, %d 5xx, %d breaker-open, %d other (%d trips)\n",
				f.Attempts, f.Retries, f.ConnectRefused, f.Timeouts, f.Resets, f.Server5xx, f.BreakerOpen, f.OtherErrors, f.BreakerTrips)
		}
	}
}
