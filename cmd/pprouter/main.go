// Command pprouter is the cluster front door: it consistent-hashes users
// across N ppserve replica processes and serves the same HTTP API as a
// single replica — POST /event, /predict, /flush and GET /statz, /healthz,
// /digest — so ppload (or any client) drives a cluster exactly like one
// process. Data-plane requests forward to the owning replica; control-plane
// requests fan out and aggregate (the cluster digest is order-independent
// across replicas and directly comparable to the single-process sequential
// digest).
//
// Resharding is an admin action: POST /admin/reshard with a JSON body
// {"replicas": ["http://...", ...]} drains the affected key ranges from
// their current owners (flush → export → import → drop) and cuts the ring
// over with zero unexpected cold starts. GET /ring describes the current
// assignment.
//
// Usage:
//
//	pprouter -listen 127.0.0.1:8090 \
//	  -replicas http://127.0.0.1:8101,http://127.0.0.1:8102,http://127.0.0.1:8103
//	ppload -addr http://127.0.0.1:8090 -users 500
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:8090", "router listen address")
		replicas    = flag.String("replicas", "", "comma-separated replica base URLs (required)")
		vnodes      = flag.Int("vnodes", 0, "virtual nodes per replica (0 = default)")
		waitHealthy = flag.Duration("wait-healthy", 60*time.Second, "wait this long for every replica's /healthz before serving (0 = don't wait)")
	)
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 || *vnodes < 0 {
		fmt.Fprintln(os.Stderr, "pprouter: -replicas must list at least one URL and -vnodes must be >= 0")
		os.Exit(2)
	}

	router, err := cluster.New(cluster.Options{Replicas: urls, VNodes: *vnodes})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pprouter: %v\n", err)
		os.Exit(2)
	}

	if *waitHealthy > 0 {
		for _, u := range urls {
			if err := server.WaitHealthy(u, *waitHealthy); err != nil {
				fmt.Fprintf(os.Stderr, "pprouter: replica %s: %v\n", u, err)
				os.Exit(1)
			}
		}
	}

	srv := &http.Server{Addr: *listen, Handler: router}
	done := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		sig := <-sigCh
		fmt.Printf("\nreceived %s, shutting down (replicas keep running)...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "pprouter: shutdown: %v\n", err)
		}
	}()

	fmt.Printf("routing %d replicas on %s (vnodes=%d)\n", len(urls), *listen, router.Ring().VNodes())
	for i, u := range urls {
		fmt.Printf("  replica %d: %s\n", i, u)
	}
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "pprouter: %v\n", err)
		os.Exit(1)
	}
	<-done
}
