// Command pprouter is the cluster front door: it consistent-hashes users
// across N ppserve replica processes and serves the same HTTP API as a
// single replica — POST /event, /predict, /flush and GET /statz, /healthz,
// /digest — so ppload (or any client) drives a cluster exactly like one
// process. Data-plane requests forward to the owning replica; control-plane
// requests fan out and aggregate (the cluster digest is order-independent
// across replicas and directly comparable to the single-process sequential
// digest).
//
// Resharding is an admin action: POST /admin/reshard with a JSON body
// {"replicas": ["http://...", ...]} drains the affected key ranges from
// their current owners (flush → export → import → drop) and cuts the ring
// over with zero unexpected cold starts. GET /ring describes the current
// assignment.
//
// With -wire-listen the router also accepts the binary wire protocol on a
// second listener and, for replicas named in -wire-replicas, forwards the
// hot path over pooled wire connections — splicing inbound event batches
// into per-owner byte ranges instead of re-marshalling JSON. Control-plane
// traffic stays on HTTP either way.
//
// Usage:
//
//	pprouter -listen 127.0.0.1:8090 \
//	  -replicas http://127.0.0.1:8101,http://127.0.0.1:8102,http://127.0.0.1:8103
//	pprouter -listen 127.0.0.1:8090 -wire-listen 127.0.0.1:9090 \
//	  -replicas http://127.0.0.1:8101,http://127.0.0.1:8102 \
//	  -wire-replicas 127.0.0.1:9101,127.0.0.1:9102
//	ppload -addr http://127.0.0.1:8090 -users 500
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/server"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:8090", "router listen address")
		replicas     = flag.String("replicas", "", "comma-separated replica base URLs (required)")
		wireListen   = flag.String("wire-listen", "", "also accept the binary wire protocol (hot event/predict path) on this address")
		wireReplicas = flag.String("wire-replicas", "", "comma-separated replica wire addresses aligned with -replicas (empty entries fall back to HTTP); requires -wire-listen")
		vnodes       = flag.Int("vnodes", 0, "virtual nodes per replica (0 = default)")
		waitHealthy  = flag.Duration("wait-healthy", 60*time.Second, "wait this long for every replica's /healthz before serving (0 = don't wait)")
		followers    = flag.String("followers", "", "comma-separated primary=follower base-URL pairs for failover")
		spares       = flag.String("spares", "", "comma-separated standby follower base URLs for re-replication after a failover")
		probeIval    = flag.Duration("probe-interval", 0, "health-probe period; > 0 enables the prober and automatic failover")
		probeTO      = flag.Duration("probe-timeout", time.Second, "per-probe HTTP timeout")
		probeFails   = flag.Int("probe-fails", 3, "consecutive probe failures before a replica is declared dead")

		dataTO     = flag.Duration("data-timeout", 0, "per-forward deadline for /event and /predict (0 = 10s default)")
		controlTO  = flag.Duration("control-timeout", 0, "per-forward deadline for /flush, /export, /import and other control calls (0 = 2m default)")
		predictRet = flag.Int("predict-retries", 0, "retry budget for owner-replica predict forwards (0 = default of 2, negative = no retries)")
		brkFails   = flag.Int("breaker-fails", 0, "consecutive forward failures before a replica's circuit breaker opens (0 = default of 5)")
		brkCool    = flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open trial forward (0 = 1s default)")
		faultsFile = flag.String("faults", "", "arm a deterministic fault-injection scenario from this JSON file (testing only)")
	)
	flag.Parse()

	splitURLs := func(s string) []string {
		var out []string
		for _, u := range strings.Split(s, ",") {
			if u = strings.TrimSpace(u); u != "" {
				out = append(out, strings.TrimRight(u, "/"))
			}
		}
		return out
	}
	urls := splitURLs(*replicas)
	if len(urls) == 0 || *vnodes < 0 {
		fmt.Fprintln(os.Stderr, "pprouter: -replicas must list at least one URL and -vnodes must be >= 0")
		os.Exit(2)
	}
	// -wire-replicas is positional against -replicas so an operator cannot
	// mis-pair a wire address with the wrong replica URL. Entries may be
	// empty ("addr1,,addr3"): that replica is reached over HTTP instead.
	wireAddrs := map[string]string{}
	if *wireReplicas != "" {
		if *wireListen == "" {
			fmt.Fprintln(os.Stderr, "pprouter: -wire-replicas requires -wire-listen")
			os.Exit(2)
		}
		parts := strings.Split(*wireReplicas, ",")
		if len(parts) != len(urls) {
			fmt.Fprintf(os.Stderr, "pprouter: -wire-replicas lists %d addresses for %d replicas\n", len(parts), len(urls))
			os.Exit(2)
		}
		for i, w := range parts {
			if w = strings.TrimSpace(w); w != "" {
				wireAddrs[urls[i]] = w
			}
		}
	}

	followerOf := map[string]string{}
	for _, pair := range splitURLs(*followers) {
		primary, follower, ok := strings.Cut(pair, "=")
		if !ok || primary == "" || follower == "" {
			fmt.Fprintf(os.Stderr, "pprouter: -followers entry %q is not primary=follower\n", pair)
			os.Exit(2)
		}
		followerOf[strings.TrimRight(primary, "/")] = strings.TrimRight(follower, "/")
	}

	if *faultsFile != "" {
		plan, err := faults.Load(*faultsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pprouter: -faults: %v\n", err)
			os.Exit(2)
		}
		if err := faults.Arm(plan); err != nil {
			fmt.Fprintf(os.Stderr, "pprouter: -faults: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("FAULT INJECTION ARMED: %d rule(s) from %s (seed %d)\n",
			len(plan.Rules), *faultsFile, plan.Seed)
	}

	router, err := cluster.New(cluster.Options{
		Replicas:        urls,
		VNodes:          *vnodes,
		Followers:       followerOf,
		Spares:          splitURLs(*spares),
		ProbeInterval:   *probeIval,
		ProbeTimeout:    *probeTO,
		ProbeFails:      *probeFails,
		DataTimeout:     *dataTO,
		ControlTimeout:  *controlTO,
		PredictRetries:  *predictRet,
		BreakerFails:    *brkFails,
		BreakerCooldown: *brkCool,
		WireAddrs:       wireAddrs,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pprouter: %v\n", err)
		os.Exit(2)
	}

	if *waitHealthy > 0 {
		wait := append([]string(nil), urls...)
		for _, f := range followerOf {
			wait = append(wait, f)
		}
		wait = append(wait, splitURLs(*spares)...)
		for _, u := range wait {
			if err := server.WaitHealthy(u, *waitHealthy); err != nil {
				fmt.Fprintf(os.Stderr, "pprouter: replica %s: %v\n", u, err)
				os.Exit(1)
			}
		}
	}
	router.StartProber()

	srv := &http.Server{Addr: *listen, Handler: router}
	done := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		sig := <-sigCh
		fmt.Printf("\nreceived %s, shutting down (replicas keep running)...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "pprouter: shutdown: %v\n", err)
		}
		router.CloseWire()
		router.StopProber()
	}()

	if *wireListen != "" {
		wl, err := net.Listen("tcp", *wireListen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pprouter: -wire-listen: %v\n", err)
			os.Exit(1)
		}
		go func() {
			if err := router.ServeWire(wl); err != nil {
				fmt.Fprintf(os.Stderr, "pprouter: wire listener: %v\n", err)
			}
		}()
		fmt.Printf("wire protocol on %s (%d replicas reachable over wire)\n", wl.Addr(), len(wireAddrs))
	}

	fmt.Printf("routing %d replicas on %s (vnodes=%d)\n", len(urls), *listen, router.Ring().VNodes())
	for i, u := range urls {
		if f := followerOf[u]; f != "" {
			fmt.Printf("  replica %d: %s (follower %s)\n", i, u, f)
		} else {
			fmt.Printf("  replica %d: %s\n", i, u)
		}
	}
	if *probeIval > 0 {
		fmt.Printf("  probing every %s (timeout %s, dead after %d fails)\n", *probeIval, *probeTO, *probeFails)
	}
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "pprouter: %v\n", err)
		os.Exit(1)
	}
	<-done
}
