// Command pplint runs the project-invariant analyzer suite over this
// module: virtualclock, floatorder, lockcheck and walerrcheck (see
// internal/analysis for what each encodes and why). It exits non-zero
// if any finding survives the //pplint:allow seams, making it usable as
// a CI gate:
//
//	pplint ./...             # analyze the whole module
//	pplint ./internal/serving ./internal/statestore
//	pplint -list             # print the suite
//
// Only ./...-style module patterns are supported (the loader is
// stdlib-only and resolves packages inside the enclosing module).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pplint [flags] [./... | ./pkg/dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "pplint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pplint: %v\n", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pplint: %v\n", err)
		os.Exit(2)
	}

	pkgs, err := resolvePatterns(loader, root, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "pplint: %v\n", err)
		os.Exit(2)
	}

	diags := analysis.RunAnalyzers(pkgs, suite)
	for _, d := range diags {
		// Print paths relative to the module root for stable output.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pplint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// resolvePatterns maps command-line package patterns to loaded
// packages. "./..." (or no arguments) loads the whole module; "./dir"
// loads one directory.
func resolvePatterns(loader *analysis.Loader, root string, patterns []string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*analysis.Package
	for _, pat := range patterns {
		if pat == "./..." || pat == "all" {
			all, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, all...)
			continue
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("package %s is outside the module", pat)
		}
		importPath := loader.ModulePath
		if rel != "." {
			importPath = loader.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.Load(importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
