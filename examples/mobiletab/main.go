// MobileTab: the paper's headline comparison on one dataset — percentage
// baseline, logistic regression and GBDT over engineered features, and the
// RNN — reported as PR-AUC and recall at 50% precision (Tables 3-4).
//
//	go run ./examples/mobiletab
package main

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/gbdt"
	"repro/internal/metrics"
	"repro/internal/synth"
)

func main() {
	cfg := synth.DefaultMobileTab()
	cfg.Users = 500
	data := synth.GenerateMobileTab(cfg)
	split := dataset.SplitUsers(data, 0.15, 7)
	cutoff := data.CutoffForLastDays(7)
	fmt.Printf("MobileTab: %d users, %d sessions, positive rate %.1f%%\n\n",
		len(data.Users), data.NumSessions(), 100*data.PositiveRate())

	report := func(name string, scores []float64, labels []bool) {
		auc := metrics.PRAUC(scores, labels)
		recall, _ := metrics.RecallAtPrecision(scores, labels, 0.5)
		fmt.Printf("%-16s PR-AUC %.3f  recall@50%%P %.3f\n", name, auc, recall)
	}

	// Percentage-based model (§5.1): per-user access rate.
	pct := &baselines.PercentageModel{}
	pct.Fit(split.Train)
	s, l := pct.Evaluate(split.Test, cutoff)
	report("PercentageBased", s, l)

	// Engineered features (§5.2) for the traditional models.
	b := features.NewBuilder(data.Schema)
	b.MinTs = cutoff
	var sparse []features.SparseVec
	var dense [][]float64
	var y []bool
	for _, exs := range b.BuildDataset(split.Train) {
		for _, ex := range exs {
			sparse = append(sparse, ex.Sparse)
			dense = append(dense, ex.Dense)
			y = append(y, ex.Label)
		}
	}
	var testSparse []features.SparseVec
	var testDense [][]float64
	var testY []bool
	for _, exs := range b.BuildDataset(split.Test) {
		for _, ex := range exs {
			testSparse = append(testSparse, ex.Sparse)
			testDense = append(testDense, ex.Dense)
			testY = append(testY, ex.Label)
		}
	}

	// Logistic regression (§5.3).
	lr := baselines.NewLogisticRegression(b.SparseDim())
	lr.Fit(sparse, y)
	report("LR", lr.PredictAll(testSparse), testY)

	// GBDT (§5.4) with depth search on a held-out tail.
	nVal := len(dense) / 10
	searchCfg := gbdt.DefaultConfig()
	searchCfg.Rounds = 15
	depth, _ := gbdt.SearchDepth(searchCfg,
		dense[:len(dense)-nVal], y[:len(y)-nVal],
		dense[len(dense)-nVal:], y[len(y)-nVal:],
		[]int{2, 4, 6, 8})
	gcfg := gbdt.DefaultConfig()
	gcfg.MaxDepth = depth
	gcfg.Rounds = 60
	g := gbdt.Fit(gcfg, dense, y)
	report(fmt.Sprintf("GBDT (depth %d)", depth), g.PredictAll(testDense), testY)

	// RNN (§6-7).
	mcfg := core.DefaultConfig()
	mcfg.HiddenDim = 32
	model := core.New(data.Schema, mcfg)
	tcfg := core.DefaultTrainConfig()
	tcfg.Epochs = 4
	tcfg.BatchUsers = 2
	tcfg.LR = 3e-3
	core.NewTrainer(model, tcfg).Train(split.Train)
	s, l = model.EvaluateSessions(split.Test, cutoff)
	report("RNN", s, l)

	fmt.Println("\nexpected ordering (paper Table 3): PercentageBased < LR < GBDT < RNN")
}
