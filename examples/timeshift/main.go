// Timeshift: the §3.2.1 problem — hours before the daily peak window,
// predict which users will need a data-query result during the peak, so
// the computation can run off-peak. No session context exists at prediction
// time; the model relies on history alone (eq. 3).
//
//	go run ./examples/timeshift
package main

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/synth"
)

func main() {
	cfg := synth.DefaultTimeshift()
	cfg.Users = 500
	data := synth.GenerateTimeshift(cfg)
	fmt.Printf("Timeshift: %d users, %d sessions, %d peak windows, window positive rate %.1f%%\n\n",
		len(data.Users), data.NumSessions(), data.NumExamples(), 100*data.PositiveRate())

	split := dataset.SplitUsers(data, 0.2, 11)
	cutoff := data.CutoffForLastDays(7)

	// Percentage baseline over past peak windows (§5.1, PA form).
	pct := &baselines.PercentageModel{}
	pct.Fit(split.Train)
	ps, pl := pct.Evaluate(split.Test, cutoff)

	// Timeshift RNN: session updates as usual, predictions from the latest
	// hidden state older than the 6-hour lead, with only T(start−t_k) as
	// the prediction input.
	mcfg := core.DefaultConfig()
	mcfg.HiddenDim = 32
	mcfg.Timeshift = true
	model := core.New(data.Schema, mcfg)
	tcfg := core.DefaultTrainConfig()
	tcfg.Epochs = 8
	tcfg.BatchUsers = 2
	tcfg.LR = 3e-3
	core.NewTrainer(model, tcfg).Train(split.Train)
	rs, rl := model.EvaluateWindows(split.Test, cutoff, core.DefaultTimeshiftLead)

	fmt.Printf("%-16s PR-AUC %.3f\n", "PercentageBased", metrics.PRAUC(ps, pl))
	fmt.Printf("%-16s PR-AUC %.3f\n", "RNN", metrics.PRAUC(rs, rl))

	// The operational payoff: how much peak-hours computation shifts
	// off-peak at a fixed precision.
	recall, thr := metrics.RecallAtPrecision(rs, rl, 0.5)
	fmt.Printf("\nat 50%% precision (threshold %.3f): %.1f%% of peak accesses precomputed off-peak\n",
		thr, 100*recall)

	// Day-by-day: show one user's predicted probabilities against actual
	// peak usage for the final week.
	for _, u := range split.Test.Users {
		if len(u.Windows) < 10 || u.AccessCount() < 3 {
			continue
		}
		fmt.Printf("\nuser %d, final week:\n", u.ID)
		scores, labels := model.EvaluateWindows(
			&dataset.Dataset{Schema: data.Schema, Start: data.Start, End: data.End, Users: []*dataset.User{u}},
			cutoff, core.DefaultTimeshiftLead)
		for i := range scores {
			fmt.Printf("  day %d: P(peak access)=%.3f actual=%v\n", i, scores[i], labels[i])
		}
		break
	}
}
