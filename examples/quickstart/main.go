// Quickstart: train a small predictive-precompute RNN and use it to decide
// whether to precompute for incoming sessions.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/synth"
)

func main() {
	// 1. Access logs. Production systems log (context, access flag) per
	// session; here a synthetic MobileTab population stands in.
	cfg := synth.DefaultMobileTab()
	cfg.Users = 300
	data := synth.GenerateMobileTab(cfg)
	fmt.Printf("generated %d users, %d sessions (positive rate %.1f%%)\n",
		len(data.Users), data.NumSessions(), 100*data.PositiveRate())

	// 2. Train the paper's model: a GRU that folds each completed session
	// into a per-user hidden state, plus an MLP head that predicts the
	// access probability at session startup.
	split := dataset.SplitUsers(data, 0.2, 42)
	mcfg := core.DefaultConfig()
	mcfg.HiddenDim = 32
	model := core.New(data.Schema, mcfg)

	tcfg := core.DefaultTrainConfig()
	tcfg.Epochs = 3
	tcfg.BatchUsers = 4
	tcfg.LR = 2e-3
	trainer := core.NewTrainer(model, tcfg)
	loss := trainer.Train(split.Train)
	fmt.Printf("trained: final epoch mean log loss %.4f\n", loss)

	// 3. Pick a precompute threshold targeting 50% precision (Table 4's
	// operating point; the production deployment used 60%, §9).
	scores, labels := model.EvaluateSessions(split.Train, split.Train.CutoffForLastDays(7))
	recall, threshold := metrics.RecallAtPrecision(scores, labels, 0.5)
	fmt.Printf("threshold %.3f → 50%% precision at %.1f%% recall (training)\n", threshold, 100*recall)

	// 4. Serve: replay one held-out user the way production would — after
	// each session the hidden state is updated; before each session the
	// model decides whether to precompute.
	user := split.Test.Users[0]
	for _, u := range split.Test.Users {
		if u.AccessCount() > 2 {
			user = u
			break
		}
	}
	state := model.InitialState()
	var lastTS int64
	decisions, hits := 0, 0
	for i, s := range user.Sessions {
		var sinceLast int64
		if lastTS != 0 {
			sinceLast = s.Timestamp - lastTS
		}
		f := model.BuildPredictInput(s.Timestamp, s.Cat, sinceLast, nil)
		p := model.Predict(state[:model.HiddenDim()], f)
		precompute := p >= threshold
		if precompute {
			decisions++
			if s.Access {
				hits++
			}
		}
		if i < 5 {
			fmt.Printf("session %d: P(access)=%.3f precompute=%v actual=%v\n",
				i, p, precompute, s.Access)
		}

		// After the session window closes, the stream processor folds the
		// outcome into the hidden state (eq. 1).
		var dt int64
		if lastTS != 0 {
			dt = s.Timestamp - lastTS
		}
		in := model.BuildUpdateInput(s.Timestamp, s.Cat, s.Access, dt, nil)
		state = model.UpdateState(state, in)
		lastTS = s.Timestamp
	}
	fmt.Printf("user %d: %d sessions, %d precomputes, %d successful\n",
		user.ID, len(user.Sessions), decisions, hits)

	// 5. Offline quality on all held-out users (last 7 days, §8).
	testScores, testLabels := model.EvaluateSessions(split.Test, data.CutoffForLastDays(7))
	fmt.Printf("held-out PR-AUC: %.3f\n", metrics.PRAUC(testScores, testLabels))
}
