// Serving: the §9 production loop in miniature — a KV store holding one
// hidden state per user, a stream processor that joins session events and
// runs the GRU update after the session window closes, and a prediction
// service that decides precompute at session startup. Ends with the §9
// serving-cost comparison.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/gbdt"
	"repro/internal/serving"
	"repro/internal/synth"
)

func main() {
	cfg := synth.DefaultMobileTab()
	cfg.Users = 200
	data := synth.GenerateMobileTab(cfg)
	split := dataset.SplitUsers(data, 0.5, 3)

	// Train a small model for the demo.
	mcfg := core.DefaultConfig()
	mcfg.HiddenDim = 32
	model := core.New(data.Schema, mcfg)
	tcfg := core.DefaultTrainConfig()
	tcfg.Epochs = 2
	tcfg.BatchUsers = 4
	tcfg.LR = 2e-3
	core.NewTrainer(model, tcfg).Train(split.Train)

	store := serving.NewKVStore()
	proc := serving.NewStreamProcessor(model, store)
	svc := serving.NewPredictionService(model, store, 0.25)

	// Replay held-out traffic in timestamp order.
	type ev struct {
		ts     int64
		user   int
		sid    string
		cat    []int
		access bool
	}
	var evs []ev
	for _, u := range split.Test.Users {
		for i, s := range u.Sessions {
			evs = append(evs, ev{s.Timestamp, u.ID, fmt.Sprintf("s%d-%d", u.ID, i), s.Cat, s.Access})
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].ts < evs[j].ts })

	hits, precomputes := 0, 0
	for _, e := range evs {
		proc.Advance(e.ts)
		// Session startup: one KV read + MLP forward → decision.
		dec := svc.OnSessionStart(e.user, e.ts, e.cat)
		if dec.Precompute {
			precomputes++
			if e.access {
				hits++
			}
		}
		// Stream events: context at start, access within the window; the
		// GRU update fires session-length+ε later.
		proc.OnSessionStart(e.sid, e.user, e.ts, e.cat)
		if e.access {
			proc.OnAccess(e.sid, e.ts+45)
		}
	}
	proc.Flush()

	fmt.Printf("replayed %d sessions; %d precomputes, %d successful (precision %.1f%%)\n",
		len(evs), precomputes, hits, 100*float64(hits)/float64(max(precomputes, 1)))
	st := store.Stats()
	fmt.Printf("KV store: %d user states × %d bytes; %d gets, %d puts\n",
		st.Keys, serving.HiddenValueBytes(model.HiddenDim()), st.Gets, st.Puts)
	fmt.Printf("stream processor ran %d hidden updates\n\n", proc.UpdatesRun)

	// The §9 cost comparison at production shape (d=128).
	prodCfg := core.DefaultConfig()
	prodCfg.HiddenDim = 128
	prodCfg.MLPHidden = 128
	prod := core.New(data.Schema, prodCfg)
	gcfg := gbdt.DefaultConfig()
	b := features.NewBuilder(data.Schema)
	b.MinTs = data.CutoffForLastDays(7)
	var X [][]float64
	var y []bool
	for _, exs := range b.BuildDataset(split.Train) {
		for _, ex := range exs {
			X = append(X, ex.Dense)
			y = append(y, ex.Label)
		}
	}
	g := gbdt.Fit(gcfg, X, y)
	rep := serving.CompareCosts(prod, g, data, serving.DefaultCostParams())
	fmt.Printf("serving cost per prediction (§9):\n")
	fmt.Printf("  lookups:       RNN %.0f vs GBDT %.0f\n", rep.RNNLookupsPerPrediction, rep.GBDTLookupsPerPrediction)
	fmt.Printf("  model compute: RNN %.1fµs vs GBDT %.1fµs (%.1fx)\n",
		rep.RNNModelNanos/1000, rep.GBDTModelNanos/1000, rep.ModelComputeRatio)
	fmt.Printf("  end-to-end:    RNN %.0fµs vs GBDT %.0fµs → %.1fx net reduction\n",
		rep.RNNServingNanos/1000, rep.GBDTServingNanos/1000, rep.ServingCostRatio)
	fmt.Printf("  state/user:    RNN %d B vs aggregations %.0f B (%.0f keys)\n",
		rep.RNNStateBytes, rep.AggStateBytesPerUser, rep.AggKeysPerUser)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
