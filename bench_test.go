package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/features"
	"repro/internal/gbdt"
	"repro/internal/metrics"
	"repro/internal/serving"
	"repro/internal/synth"
	"repro/internal/tensor"
)

// The macro benchmarks regenerate each of the paper's tables/figures from a
// shared lab at a reduced scale: the first access trains the models (cost
// excluded from the timed region via the lazy setup below), and each
// iteration then measures regeneration of the artifact. Dedicated training
// benchmarks cover the expensive fitting paths.

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

func getBenchLab() *experiments.Lab {
	benchLabOnce.Do(func() {
		s := experiments.QuickScale()
		s.MobileTabUsers = 150
		s.TimeshiftUsers = 150
		s.MPUUsers = 24
		s.MobileTabEpochs = 2
		s.TimeshiftEpochs = 2
		s.MPUEpochs = 2
		benchLab = experiments.NewLab(s)
	})
	return benchLab
}

// benchReport runs one experiment driver per iteration.
func benchReport(b *testing.B, id string) {
	b.Helper()
	lab := getBenchLab()
	// Warm (train/caches) outside the timed region.
	if r := lab.ByID(id); r == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := lab.ByID(id); r == nil || r.Render() == "" {
			b.Fatalf("experiment %q produced nothing", id)
		}
	}
}

func BenchmarkTable1(b *testing.B)  { benchReport(b, "table1") }
func BenchmarkTable2(b *testing.B)  { benchReport(b, "table2") }
func BenchmarkFigure1(b *testing.B) { benchReport(b, "figure1") }
func BenchmarkTable3(b *testing.B)  { benchReport(b, "table3") }
func BenchmarkTable4(b *testing.B)  { benchReport(b, "table4") }
func BenchmarkTable5(b *testing.B)  { benchReport(b, "table5") }
func BenchmarkFigure4(b *testing.B) { benchReport(b, "figure4") }
func BenchmarkFigure5(b *testing.B) { benchReport(b, "figure5") }
func BenchmarkFigure6(b *testing.B) { benchReport(b, "figure6") }
func BenchmarkFigure7(b *testing.B) { benchReport(b, "figure7") }

func BenchmarkOnlineRecall(b *testing.B) { benchReport(b, "online-recall") }
func BenchmarkServingCost(b *testing.B)  { benchReport(b, "serving") }

// ---- Training benchmarks (the heavy paths the macro benches exclude) ----

func benchTrainData(users int) *dataset.Dataset {
	cfg := synth.DefaultMobileTab()
	cfg.Users = users
	cfg.Seed = 99
	return synth.GenerateMobileTab(cfg)
}

// BenchmarkRNNTrainEpoch measures one §7 training epoch (per-user
// parallelism) over 100 users.
func BenchmarkRNNTrainEpoch(b *testing.B) {
	d := benchTrainData(100)
	cfg := core.DefaultConfig()
	cfg.HiddenDim = 32
	m := core.New(d.Schema, cfg)
	tr := core.NewTrainer(m, core.DefaultTrainConfig())
	b.ReportMetric(float64(d.NumSessions()), "sessions/epoch")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TrainEpoch(d, uint64(i))
	}
}

// BenchmarkRNNTrainEpochPadded measures the same epoch under emulated
// padded batching (§7.1's slower alternative).
func BenchmarkRNNTrainEpochPadded(b *testing.B) {
	d := benchTrainData(100)
	cfg := core.DefaultConfig()
	cfg.HiddenDim = 32
	m := core.New(d.Schema, cfg)
	tr := core.NewTrainer(m, core.DefaultTrainConfig())
	b.ResetTimer()
	var waste float64
	for i := 0; i < b.N; i++ {
		_, stats := tr.TrainEpochPadded(d, uint64(i))
		waste = stats.WasteFactor()
	}
	b.ReportMetric(waste, "step-waste-x")
}

// BenchmarkGBDTFit measures fitting 20 boosting rounds on engineered
// features.
func BenchmarkGBDTFit(b *testing.B) {
	d := benchTrainData(100)
	builder := features.NewBuilder(d.Schema)
	builder.MinTs = d.CutoffForLastDays(7)
	var X [][]float64
	var y []bool
	for _, exs := range builder.BuildDataset(d) {
		for _, ex := range exs {
			X = append(X, ex.Dense)
			y = append(y, ex.Label)
		}
	}
	cfg := gbdt.DefaultConfig()
	cfg.Rounds = 20
	b.ReportMetric(float64(len(X)), "examples")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gbdt.Fit(cfg, X, y)
	}
}

// ---- Serving-path micro benchmarks (the §9 cost comparison, measured) ----

// BenchmarkRNNPredict measures RNNpredict at production shape (d=128).
func BenchmarkRNNPredict(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.HiddenDim = 128
	cfg.MLPHidden = 128
	m := core.New(synth.MobileTabSchema(), cfg)
	h := tensor.NewVector(m.HiddenDim())
	tensor.NewRNG(1).FillNormal(h, 0.3)
	f := m.BuildPredictInput(synth.DefaultStart, []int{5, 10}, 3600, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(h, f)
	}
}

// BenchmarkRNNUpdate measures one GRU hidden update at d=128 (runs once per
// session in the stream processor).
func BenchmarkRNNUpdate(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.HiddenDim = 128
	cfg.MLPHidden = 128
	m := core.New(synth.MobileTabSchema(), cfg)
	state := m.InitialState()
	in := m.BuildUpdateInput(synth.DefaultStart, []int{5, 10}, true, 3600, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state = m.UpdateState(m.InitialState(), in)
	}
	_ = state
}

// BenchmarkGBDTPredict measures one tree-ensemble prediction (100 trees).
func BenchmarkGBDTPredict(b *testing.B) {
	d := benchTrainData(60)
	builder := features.NewBuilder(d.Schema)
	builder.MinTs = d.CutoffForLastDays(7)
	var X [][]float64
	var y []bool
	for _, exs := range builder.BuildDataset(d) {
		for _, ex := range exs {
			X = append(X, ex.Dense)
			y = append(y, ex.Label)
		}
	}
	m := gbdt.Fit(gbdt.DefaultConfig(), X, y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(X[i%len(X)])
	}
}

// BenchmarkAggregationFeatures measures serving one prediction's worth of
// aggregation features — the path §9 found two orders of magnitude more
// expensive than model compute.
func BenchmarkAggregationFeatures(b *testing.B) {
	schema := synth.MobileTabSchema()
	agg := features.NewAggregator(schema)
	rng := tensor.NewRNG(2)
	ts := synth.DefaultStart
	for i := 0; i < 2000; i++ {
		ts += int64(rng.Intn(7200) + 1)
		agg.Observe(ts, []int{rng.Intn(100), rng.Intn(97)}, rng.Bernoulli(0.1))
	}
	dst := make([]float64, agg.NumFeatures())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.Features(ts+int64(i%1000), []int{5, 10}, dst)
	}
}

// BenchmarkServingPrediction measures the full serving path: KV read,
// decode, feature build, MLP forward, decision.
func BenchmarkServingPrediction(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.HiddenDim = 128
	cfg.MLPHidden = 128
	m := core.New(synth.MobileTabSchema(), cfg)
	store := serving.NewKVStore()
	h := tensor.NewVector(m.StateSize())
	tensor.NewRNG(3).FillNormal(h, 0.3)
	store.Put("h:1", serving.EncodeHidden(h, synth.DefaultStart-3600))
	svc := serving.NewPredictionService(m, store, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc.OnSessionStart(1, synth.DefaultStart, []int{5, 10})
	}
}

// BenchmarkStreamUpdate measures the stream-processor finalisation path:
// buffer join, KV read, GRU update, KV write.
func BenchmarkStreamUpdate(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.HiddenDim = 128
	m := core.New(synth.MobileTabSchema(), cfg)
	store := serving.NewKVStore()
	proc := serving.NewStreamProcessor(m, store)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := synth.DefaultStart + int64(i)*3600
		sid := fmt.Sprintf("s%d", i)
		proc.OnSessionStart(sid, 1, ts, []int{3, 7})
		proc.OnAccess(sid, ts+30)
		proc.Advance(ts + m.Schema.SessionLength + proc.Epsilon + 1)
	}
}

// BenchmarkPRAUC measures metric computation over 100k predictions.
func BenchmarkPRAUC(b *testing.B) {
	rng := tensor.NewRNG(4)
	scores := make([]float64, 100000)
	labels := make([]bool, len(scores))
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Bernoulli(0.1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.PRAUC(scores, labels)
	}
}

// BenchmarkDatasetGeneration measures synthesising 100 MobileTab users.
func BenchmarkDatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := synth.DefaultMobileTab()
		cfg.Users = 100
		cfg.Seed = uint64(i)
		synth.GenerateMobileTab(cfg)
	}
}
