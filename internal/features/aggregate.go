package features

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
)

// Window lengths for time-based aggregations (§5.2): 28 days, 7 days,
// 1 day, 1 hour.
var AggWindows = []int64{28 * dataset.Day, 7 * dataset.Day, dataset.Day, 3600}

// Aggregator maintains one user's streaming aggregation state: for every
// subset of the context dimensions and every projected context value it
// tracks the timestamped access history, from which it serves
//
//   - number of sessions, number of accesses and their ratio per time
//     window (4 windows × every context subset), and
//   - time elapsed since the last session and since the last access,
//     conditioned on the same context subsets (§5.2).
//
// This is the "specialized infrastructure" whose serving cost §9 measures
// at roughly two orders of magnitude above the model computation: a
// prediction needs one lookup per (window × subset) group, and the backing
// store must key every combination of context values per user. The
// companion package internal/serving reuses Aggregator to account those
// costs; the RNN replaces all of it with one hidden-state lookup.
type Aggregator struct {
	schema  *dataset.Schema
	subsets [][]int // index subsets of schema.Cat, including the empty subset
	// series maps a (subset, projected values) key to that slice of
	// history.
	series map[uint64]*aggSeries
	// lookups counts key-value reads served, for the §9 cost accounting.
	lookups int64
}

type aggSeries struct {
	ts        []int64 // session timestamps, ascending
	accPrefix []int32 // accPrefix[i] = number of accesses among ts[:i]
	lastAcc   int64   // timestamp of last access, 0 if none
}

// NewAggregator returns an empty aggregation state for one user under the
// given schema. Subsets are every subset of the categorical context
// dimensions (2^|Cat| of them, the paper's "all (time window) × (matching
// subset of context) combinations").
func NewAggregator(schema *dataset.Schema) *Aggregator {
	n := len(schema.Cat)
	if n > 8 {
		panic(fmt.Sprintf("features: %d context dims would enumerate %d subsets", n, 1<<n))
	}
	subsets := make([][]int, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		var sub []int
		for d := 0; d < n; d++ {
			if mask&(1<<d) != 0 {
				sub = append(sub, d)
			}
		}
		subsets = append(subsets, sub)
	}
	return &Aggregator{schema: schema, subsets: subsets, series: make(map[uint64]*aggSeries)}
}

// NumSubsets returns the number of context subsets tracked.
func (a *Aggregator) NumSubsets() int { return len(a.subsets) }

// FeaturesPerSubset is the number of aggregation features emitted per
// context subset: 3 per window (sessions, accesses, ratio) plus 2 elapsed
// times.
func (a *Aggregator) FeaturesPerSubset() int { return 3*len(AggWindows) + 2 }

// NumFeatures returns the total aggregation feature count.
func (a *Aggregator) NumFeatures() int { return a.NumSubsets() * a.FeaturesPerSubset() }

// FeatureNames returns descriptive names aligned with Features output.
func (a *Aggregator) FeatureNames() []string {
	names := make([]string, 0, a.NumFeatures())
	for _, sub := range a.subsets {
		tag := "all"
		if len(sub) > 0 {
			tag = ""
			for i, d := range sub {
				if i > 0 {
					tag += "+"
				}
				tag += a.schema.Cat[d].Name
			}
		}
		for _, w := range AggWindows {
			names = append(names,
				fmt.Sprintf("sessions_%ds_%s", w, tag),
				fmt.Sprintf("accesses_%ds_%s", w, tag),
				fmt.Sprintf("accesspct_%ds_%s", w, tag))
		}
		names = append(names,
			fmt.Sprintf("elapsed_session_%s", tag),
			fmt.Sprintf("elapsed_access_%s", tag))
	}
	return names
}

// key builds the map key for a subset and the current context values.
func (a *Aggregator) key(subsetIdx int, cat []int) uint64 {
	k := uint64(subsetIdx)
	for _, d := range a.subsets[subsetIdx] {
		k = k*131 + uint64(cat[d]) + 1
	}
	return k
}

// maxElapsed caps elapsed-time features at the 30-day observation window.
const maxElapsed = 30 * dataset.Day

// Features computes the aggregation feature vector at time ts for a session
// with context cat, using only previously Observed history. dst must have
// length NumFeatures (or be nil to allocate). Layout per subset:
// [sessions_w, accesses_w, pct_w] for each window, then elapsed-since-
// session, elapsed-since-access (both in seconds, capped at 30 days; the
// cap also stands in for "never").
func (a *Aggregator) Features(ts int64, cat []int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, a.NumFeatures())
	}
	pos := 0
	for si := range a.subsets {
		a.lookups++
		s := a.series[a.key(si, cat)]
		for _, w := range AggWindows {
			var sessions, accesses int
			if s != nil {
				lo := sort.Search(len(s.ts), func(i int) bool { return s.ts[i] >= ts-w })
				hi := sort.Search(len(s.ts), func(i int) bool { return s.ts[i] >= ts })
				sessions = hi - lo
				accesses = int(s.accPrefix[hi] - s.accPrefix[lo])
			}
			dst[pos] = float64(sessions)
			dst[pos+1] = float64(accesses)
			if sessions > 0 {
				dst[pos+2] = float64(accesses) / float64(sessions)
			} else {
				dst[pos+2] = 0
			}
			pos += 3
		}
		elapsedSession := int64(maxElapsed)
		elapsedAccess := int64(maxElapsed)
		if s != nil && len(s.ts) > 0 && s.ts[len(s.ts)-1] < ts {
			elapsedSession = ts - s.ts[len(s.ts)-1]
		}
		if s != nil && s.lastAcc != 0 && s.lastAcc < ts {
			elapsedAccess = ts - s.lastAcc
		}
		if elapsedSession > maxElapsed {
			elapsedSession = maxElapsed
		}
		if elapsedAccess > maxElapsed {
			elapsedAccess = maxElapsed
		}
		dst[pos] = float64(elapsedSession)
		dst[pos+1] = float64(elapsedAccess)
		pos += 2
	}
	return dst
}

// Observe appends a completed session to the history. Sessions must be
// observed in non-decreasing timestamp order.
func (a *Aggregator) Observe(ts int64, cat []int, access bool) {
	for si := range a.subsets {
		k := a.key(si, cat)
		s := a.series[k]
		if s == nil {
			s = &aggSeries{accPrefix: []int32{0}}
			a.series[k] = s
		}
		if n := len(s.ts); n > 0 && ts < s.ts[n-1] {
			panic("features: Aggregator.Observe: timestamps must be non-decreasing")
		}
		s.ts = append(s.ts, ts)
		acc := s.accPrefix[len(s.accPrefix)-1]
		if access {
			acc++
			s.lastAcc = ts
		}
		s.accPrefix = append(s.accPrefix, acc)
	}
}

// Lookups returns the number of key-value reads Features has performed —
// one per context subset per call, the unit the §9 cost comparison counts
// (the paper reports ≈20 aggregation feature lookups per MobileTab
// prediction; here it is NumSubsets keys each bundling its window counts).
func (a *Aggregator) Lookups() int64 { return a.lookups }

// KeyCount returns the number of distinct (subset × context value) keys in
// the backing store — the per-user storage footprint driver of §9
// ("thousands of unique keys per user" in the worst case).
func (a *Aggregator) KeyCount() int { return len(a.series) }

// StateBytes estimates the resident bytes of the aggregation store: per
// key, the timestamp and prefix arrays. Used for the §9 storage-footprint
// comparison against a single 512-byte hidden state.
func (a *Aggregator) StateBytes() int64 {
	var b int64
	for range a.series {
		b += 16 // key + pointer overhead
	}
	for _, s := range a.series {
		b += int64(8*len(s.ts)) + int64(4*len(s.accPrefix)) + 8
	}
	return b
}
