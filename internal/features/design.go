package features

import (
	"math"

	"repro/internal/dataset"
)

// Example is one labelled example for the traditional models, in both the
// dense layout consumed by GBDT (§5.4 skips one-hot encoding) and the
// sparse one-hot layout consumed by logistic regression (§5.3).
type Example struct {
	// Ts is the prediction time (session start, or the prediction point
	// ahead of a peak window for timeshift).
	Ts     int64
	Label  bool
	Dense  []float64
	Sparse SparseVec
}

// FeatureSet selects which engineered feature groups are included,
// mirroring the Table 5 ablation: C = contextual features, E = time-elapsed
// features, A = time-based aggregations.
type FeatureSet struct {
	Context      bool // C
	Elapsed      bool // E
	Aggregations bool // A
}

// FullFeatures is the A+E+C configuration used for the headline baselines.
func FullFeatures() FeatureSet {
	return FeatureSet{Context: true, Elapsed: true, Aggregations: true}
}

// Builder converts user access logs into model-ready examples, replaying
// each user's history through an Aggregator so every example sees exactly
// the features that would have been servable at its prediction time.
type Builder struct {
	Schema *dataset.Schema
	Set    FeatureSet
	// MinTs drops examples before this timestamp (training uses the last
	// 7 days so aggregation features are warmed up, §5.3; evaluation uses
	// the last 7 days of the window, §8).
	MinTs int64
	// TimeshiftLead is how far before the peak-window start the timeshift
	// prediction is made (several hours in §3.2.1; 6h by default here).
	TimeshiftLead int64
	// FeatureDelay is the visibility horizon for history: a session's
	// access flag only exists once its fixed window closes, so features at
	// time t may include only sessions with timestamp < t − FeatureDelay.
	// This is the same δ the RNN's hidden updates obey (§6.1 "Update
	// delays"); the paper serves aggregations through the same stream
	// pipeline, so both model families see equally delayed history.
	FeatureDelay int64
}

// NewBuilder returns a Builder with the full feature set, no time filter,
// and the schema's δ (session length + processing lag) as the feature
// delay.
func NewBuilder(schema *dataset.Schema) *Builder {
	return &Builder{
		Schema:        schema,
		Set:           FullFeatures(),
		TimeshiftLead: 6 * 3600,
		FeatureDelay:  schema.SessionLength + 60,
	}
}

// aggFeaturesPerSubset mirrors Aggregator layout: 3 per window + 2 elapsed.
const perWindowFeats = 3

// DenseDim returns the GBDT feature-vector length for the builder's
// configuration.
func (b *Builder) DenseDim() int {
	if b.Schema.HasPeakWindows {
		return b.timeshiftDenseDim()
	}
	n := 0
	if b.Set.Context {
		n += len(b.Schema.Cat) + 2 // raw category codes + hour + dow
	}
	subsets := 1 << len(b.Schema.Cat)
	if b.Set.Aggregations {
		n += subsets * len(AggWindows) * perWindowFeats
	}
	if b.Set.Elapsed {
		n += subsets * 2
	}
	return n
}

// SparseDim returns the LR feature-space size for the builder's
// configuration.
func (b *Builder) SparseDim() int {
	if b.Schema.HasPeakWindows {
		return b.timeshiftSparseDim()
	}
	n := 0
	if b.Set.Context {
		n += b.Schema.CatDim() + HoursInDay + DaysInWeek
	}
	subsets := 1 << len(b.Schema.Cat)
	if b.Set.Aggregations {
		n += subsets * len(AggWindows) * perWindowFeats
	}
	if b.Set.Elapsed {
		n += subsets * 2 * NumTimeBuckets
	}
	return n
}

// BuildUser replays one user's history and returns the examples whose
// prediction time is ≥ MinTs. For session datasets each example is one
// session; for timeshift datasets each example is one peak window,
// predicted TimeshiftLead seconds before the window opens using session
// history and past window labels only.
func (b *Builder) BuildUser(u *dataset.User) []Example {
	if b.Schema.HasPeakWindows {
		return b.buildTimeshiftUser(u)
	}
	agg := NewAggregator(b.Schema)
	var out []Example
	aggBuf := make([]float64, agg.NumFeatures())
	pending := 0 // next session not yet folded into the aggregation state
	for _, s := range u.Sessions {
		// Fold in sessions whose windows have closed by prediction time.
		for pending < len(u.Sessions) && u.Sessions[pending].Timestamp < s.Timestamp-b.FeatureDelay {
			ps := u.Sessions[pending]
			agg.Observe(ps.Timestamp, ps.Cat, ps.Access)
			pending++
		}
		if s.Timestamp >= b.MinTs {
			agg.Features(s.Timestamp, s.Cat, aggBuf)
			ex := Example{Ts: s.Timestamp, Label: s.Access}
			b.emitSession(&ex, s.Timestamp, s.Cat, aggBuf)
			out = append(out, ex)
		}
	}
	return out
}

// emitSession fills both feature layouts for a session example.
func (b *Builder) emitSession(ex *Example, ts int64, cat []int, agg []float64) {
	subsets := 1 << len(b.Schema.Cat)
	perSubset := len(AggWindows)*perWindowFeats + 2

	dense := make([]float64, 0, b.DenseDim())
	var sp SparseVec
	spOff := 0

	if b.Set.Context {
		for _, v := range cat {
			dense = append(dense, float64(v))
		}
		dense = append(dense, float64(HourOfDay(ts)), float64(DayOfWeek(ts)))

		off := 0
		for i, c := range b.Schema.Cat {
			sp.Append(spOff+off+cat[i], 1)
			off += c.Cardinality
		}
		sp.Append(spOff+off+HourOfDay(ts), 1)
		off += HoursInDay
		sp.Append(spOff+off+DayOfWeek(ts), 1)
		spOff += b.Schema.CatDim() + HoursInDay + DaysInWeek
	}
	if b.Set.Aggregations {
		for si := 0; si < subsets; si++ {
			base := si * perSubset
			for w := 0; w < len(AggWindows); w++ {
				sessions := agg[base+w*perWindowFeats]
				accesses := agg[base+w*perWindowFeats+1]
				pct := agg[base+w*perWindowFeats+2]
				dense = append(dense, sessions, accesses, pct)
				// LR keeps counts on a log scale for conditioning.
				idx := spOff + (si*len(AggWindows)+w)*perWindowFeats
				sp.Append(idx, math.Log1p(sessions))
				sp.Append(idx+1, math.Log1p(accesses))
				sp.Append(idx+2, pct)
			}
		}
		spOff += subsets * len(AggWindows) * perWindowFeats
	}
	if b.Set.Elapsed {
		for si := 0; si < subsets; si++ {
			base := si*perSubset + len(AggWindows)*perWindowFeats
			eSess, eAcc := agg[base], agg[base+1]
			dense = append(dense, eSess, eAcc)
			idx := spOff + si*2*NumTimeBuckets
			sp.Append(idx+TimeBucket(int64(eSess)), 1)
			sp.Append(idx+NumTimeBuckets+TimeBucket(int64(eAcc)), 1)
		}
	}
	ex.Dense = dense
	ex.Sparse = sp
}

// ---- Timeshift feature layout ----
//
// At prediction time there is no session context (§4.2): features are the
// target day-of-week, session aggregations as of the prediction point, and
// the history of past peak-window labels (counts over 28/7/1 days, overall
// rate, and elapsed time since the last accessed window).

const tsWindowFeats = 5 // pastWindows28, accessed28, accessed7, accessed1, rate

func (b *Builder) timeshiftDenseDim() int {
	n := 1 // target day of week
	subsets := 1 << len(b.Schema.Cat)
	if b.Set.Aggregations {
		n += subsets*len(AggWindows)*perWindowFeats + tsWindowFeats
	}
	if b.Set.Elapsed {
		n += subsets*2 + 1 // +1: elapsed since last accessed window
	}
	return n
}

func (b *Builder) timeshiftSparseDim() int {
	n := DaysInWeek
	subsets := 1 << len(b.Schema.Cat)
	if b.Set.Aggregations {
		n += subsets*len(AggWindows)*perWindowFeats + tsWindowFeats
	}
	if b.Set.Elapsed {
		n += subsets*2*NumTimeBuckets + NumTimeBuckets
	}
	return n
}

func (b *Builder) buildTimeshiftUser(u *dataset.User) []Example {
	agg := NewAggregator(b.Schema)
	aggBuf := make([]float64, agg.NumFeatures())
	var out []Example

	si := 0 // next session to fold into history
	var lastAccessed int64
	windows28, accessed28 := 0, 0
	var past []pastWindow // trailing 28 days of windows

	for _, w := range u.Windows {
		predTs := w.Start - b.TimeshiftLead
		// Fold in sessions whose windows closed before the prediction time.
		for si < len(u.Sessions) && u.Sessions[si].Timestamp < predTs-b.FeatureDelay {
			s := u.Sessions[si]
			agg.Observe(s.Timestamp, s.Cat, s.Access)
			si++
		}
		if w.Start >= b.MinTs {
			agg.Features(predTs, []int{1}, aggBuf) // context: the peak flag
			ex := Example{Ts: predTs, Label: w.Accessed}
			b.emitTimeshift(&ex, w.Start, aggBuf, past, lastAccessed, windows28, accessed28)
			out = append(out, ex)
		}
		past = append(past, pastWindow{start: w.Start, accessed: w.Accessed})
		windows28++
		if w.Accessed {
			accessed28++
			lastAccessed = w.Start
		}
		// Trim to 28 days.
		for len(past) > 0 && past[0].start < w.Start-28*dataset.Day {
			if past[0].accessed {
				accessed28--
			}
			windows28--
			past = past[1:]
		}
	}
	return out
}

// pastWindow records one prior peak window for the timeshift label-history
// features.
type pastWindow struct {
	start    int64
	accessed bool
}

func (b *Builder) emitTimeshift(ex *Example, winStart int64, agg []float64,
	past []pastWindow, lastAccessed int64, windows28, accessed28 int) {

	subsets := 1 << len(b.Schema.Cat)
	perSubset := len(AggWindows)*perWindowFeats + 2

	accessed7, accessed1 := 0, 0
	for _, p := range past {
		if !p.accessed {
			continue
		}
		if p.start >= winStart-7*dataset.Day {
			accessed7++
		}
		if p.start >= winStart-dataset.Day {
			accessed1++
		}
	}
	rate := 0.0
	if windows28 > 0 {
		rate = float64(accessed28) / float64(windows28)
	}
	elapsedWin := int64(maxElapsed)
	if lastAccessed != 0 && lastAccessed < winStart {
		elapsedWin = winStart - lastAccessed
	}

	dense := make([]float64, 0, b.timeshiftDenseDim())
	var sp SparseVec
	spOff := 0

	dow := DayOfWeek(winStart)
	dense = append(dense, float64(dow))
	sp.Append(dow, 1)
	spOff += DaysInWeek

	if b.Set.Aggregations {
		for s := 0; s < subsets; s++ {
			base := s * perSubset
			for w := 0; w < len(AggWindows); w++ {
				sessions := agg[base+w*perWindowFeats]
				accesses := agg[base+w*perWindowFeats+1]
				pct := agg[base+w*perWindowFeats+2]
				dense = append(dense, sessions, accesses, pct)
				idx := spOff + (s*len(AggWindows)+w)*perWindowFeats
				sp.Append(idx, math.Log1p(sessions))
				sp.Append(idx+1, math.Log1p(accesses))
				sp.Append(idx+2, pct)
			}
		}
		spOff += subsets * len(AggWindows) * perWindowFeats

		dense = append(dense, float64(windows28), float64(accessed28),
			float64(accessed7), float64(accessed1), rate)
		sp.Append(spOff, math.Log1p(float64(windows28)))
		sp.Append(spOff+1, math.Log1p(float64(accessed28)))
		sp.Append(spOff+2, math.Log1p(float64(accessed7)))
		sp.Append(spOff+3, math.Log1p(float64(accessed1)))
		sp.Append(spOff+4, rate)
		spOff += tsWindowFeats
	}
	if b.Set.Elapsed {
		for s := 0; s < subsets; s++ {
			base := s*perSubset + len(AggWindows)*perWindowFeats
			eSess, eAcc := agg[base], agg[base+1]
			dense = append(dense, eSess, eAcc)
			idx := spOff + s*2*NumTimeBuckets
			sp.Append(idx+TimeBucket(int64(eSess)), 1)
			sp.Append(idx+NumTimeBuckets+TimeBucket(int64(eAcc)), 1)
		}
		spOff += subsets * 2 * NumTimeBuckets
		dense = append(dense, float64(elapsedWin))
		sp.Append(spOff+TimeBucket(elapsedWin), 1)
	}
	ex.Dense = dense
	ex.Sparse = sp
}

// BuildDataset builds examples for every user, returning a parallel slice
// of per-user example slices (user identity is needed by some experiments).
func (b *Builder) BuildDataset(d *dataset.Dataset) [][]Example {
	out := make([][]Example, len(d.Users))
	for i, u := range d.Users {
		out[i] = b.BuildUser(u)
	}
	return out
}

// Flatten concatenates per-user examples into one slice.
func Flatten(perUser [][]Example) []Example {
	n := 0
	for _, ex := range perUser {
		n += len(ex)
	}
	out := make([]Example, 0, n)
	for _, ex := range perUser {
		out = append(out, ex...)
	}
	return out
}
