// Package features implements the feature engineering of §5.2: one-hot
// encoding of categorical context, hour-of-day and day-of-week time
// features, the log-bucketing transform T(·) for elapsed times, and the
// time-windowed aggregation engine ((28d, 7d, 1d, 1h) × every subset of the
// context dimensions) that traditional models depend on — and that the
// paper's RNN hidden state renders obsolete.
package features

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

// NumTimeBuckets is the number of log-scale buckets for elapsed-time
// features (§5.3: 50 buckets).
const NumTimeBuckets = 50

// timeBucketScale is 50/15; the largest representable elapsed time
// (30 days ≈ e^14.76 s) lands in bucket 49.
const timeBucketScale = 50.0 / 15.0

// TimeBucket returns ⌊(50/15)·ln(t)⌋ clamped to [0, NumTimeBuckets),
// the paper's bucketization of elapsed seconds (§5.3, §6.1). Non-positive
// inputs map to bucket 0 (the paper feeds T(0) for the first session).
func TimeBucket(seconds int64) int {
	if seconds <= 1 {
		return 0
	}
	b := int(timeBucketScale * math.Log(float64(seconds)))
	if b < 0 {
		return 0
	}
	if b >= NumTimeBuckets {
		return NumTimeBuckets - 1
	}
	return b
}

// HoursInDay and DaysInWeek size the one-hot time features.
const (
	HoursInDay = 24
	DaysInWeek = 7
)

// HourOfDay returns the UTC hour 0-23 of ts.
func HourOfDay(ts int64) int { return int((ts % dataset.Day) / 3600) }

// DayOfWeek returns 0-6 for ts (arbitrary but fixed phase; only the 7-day
// period matters to the models).
func DayOfWeek(ts int64) int { return int((ts / dataset.Day) % 7) }

// ContextDim returns the length of the dense per-session context vector
// used as the RNN's f_i: one-hot categoricals plus one-hot hour and day
// (§6.1 "Feature extraction").
func ContextDim(schema *dataset.Schema) int {
	return schema.CatDim() + HoursInDay + DaysInWeek
}

// ContextVector writes the dense context vector for a session into dst
// (length ContextDim) and returns it. Pass a nil dst to allocate.
func ContextVector(schema *dataset.Schema, ts int64, cat []int, dst tensor.Vector) tensor.Vector {
	dim := ContextDim(schema)
	if dst == nil {
		dst = tensor.NewVector(dim)
	} else {
		dst.Zero()
	}
	off := 0
	for i, c := range schema.Cat {
		dst[off+cat[i]] = 1
		off += c.Cardinality
	}
	dst[off+HourOfDay(ts)] = 1
	off += HoursInDay
	dst[off+DayOfWeek(ts)] = 1
	return dst
}

// ContextVector32 is ContextVector for the f32 serving tier. The context
// features are pure one-hots, so the f32 vector is exactly equal to the
// f64 one (no rounding is involved).
func ContextVector32(schema *dataset.Schema, ts int64, cat []int, dst tensor.Vector32) tensor.Vector32 {
	dim := ContextDim(schema)
	if dst == nil {
		dst = tensor.NewVector32(dim)
	} else {
		dst.Zero()
	}
	off := 0
	for i, c := range schema.Cat {
		dst[off+cat[i]] = 1
		off += c.Cardinality
	}
	dst[off+HourOfDay(ts)] = 1
	off += HoursInDay
	dst[off+DayOfWeek(ts)] = 1
	return dst
}

// TimeBucketOneHot writes the one-hot encoding of TimeBucket(seconds) into
// dst (length NumTimeBuckets) and returns it. Pass nil to allocate.
func TimeBucketOneHot(seconds int64, dst tensor.Vector) tensor.Vector {
	if dst == nil {
		dst = tensor.NewVector(NumTimeBuckets)
	} else {
		dst.Zero()
	}
	dst[TimeBucket(seconds)] = 1
	return dst
}

// SparseVec is a sparse feature vector for the logistic-regression design
// matrix, whose one-hot blocks would waste memory stored densely.
type SparseVec struct {
	Idx []int32
	Val []float64
}

// Append adds one (index, value) pair.
func (s *SparseVec) Append(idx int, val float64) {
	s.Idx = append(s.Idx, int32(idx))
	s.Val = append(s.Val, val)
}

// Dot returns the inner product with a dense weight vector.
func (s *SparseVec) Dot(w tensor.Vector) float64 {
	var sum float64
	for i, idx := range s.Idx {
		sum += w[idx] * s.Val[i]
	}
	return sum
}

// AddScaled accumulates a·s into the dense vector dst.
func (s *SparseVec) AddScaled(dst tensor.Vector, a float64) {
	for i, idx := range s.Idx {
		dst[idx] += a * s.Val[i]
	}
}
