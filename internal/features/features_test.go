package features

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/synth"
	"repro/internal/tensor"
)

func testSchema() *dataset.Schema {
	return &dataset.Schema{
		Name:          "t",
		SessionLength: 1200,
		Cat: []dataset.CatFeature{
			{Name: "unread", Cardinality: 100},
			{Name: "tab", Cardinality: 97},
		},
	}
}

func TestTimeBucketKnownValues(t *testing.T) {
	if b := TimeBucket(0); b != 0 {
		t.Fatalf("TimeBucket(0) = %d", b)
	}
	if b := TimeBucket(1); b != 0 {
		t.Fatalf("TimeBucket(1) = %d", b)
	}
	if b := TimeBucket(-5); b != 0 {
		t.Fatalf("TimeBucket(-5) = %d", b)
	}
	// 30 days ≈ e^14.76 s → bucket 49 (the paper's largest).
	if b := TimeBucket(30 * dataset.Day); b != 49 {
		t.Fatalf("TimeBucket(30d) = %d, want 49", b)
	}
	// e^3 ≈ 20.09 s → floor(50/15·3) = 10.
	if b := TimeBucket(21); b != 10 {
		t.Fatalf("TimeBucket(21) = %d, want 10", b)
	}
	// Monotone non-decreasing.
	prev := 0
	for s := int64(1); s < 40*dataset.Day; s *= 2 {
		b := TimeBucket(s)
		if b < prev {
			t.Fatalf("TimeBucket not monotone at %d", s)
		}
		prev = b
	}
}

func TestTimeBucketRangeProperty(t *testing.T) {
	f := func(s int64) bool {
		b := TimeBucket(s)
		return b >= 0 && b < NumTimeBuckets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestHourDayHelpers(t *testing.T) {
	// DefaultStart is 07:00 UTC.
	if h := HourOfDay(synth.DefaultStart); h != 7 {
		t.Fatalf("HourOfDay(start) = %d, want 7", h)
	}
	if h := HourOfDay(synth.DefaultStart + 3*3600); h != 10 {
		t.Fatalf("HourOfDay(+3h) = %d", h)
	}
	d0 := DayOfWeek(synth.DefaultStart)
	if d1 := DayOfWeek(synth.DefaultStart + 7*dataset.Day); d1 != d0 {
		t.Fatalf("DayOfWeek must have period 7")
	}
}

func TestContextVector(t *testing.T) {
	schema := testSchema()
	dim := ContextDim(schema)
	if dim != 100+97+24+7 {
		t.Fatalf("ContextDim = %d", dim)
	}
	v := ContextVector(schema, synth.DefaultStart, []int{5, 42}, nil)
	if len(v) != dim {
		t.Fatalf("vector length %d", len(v))
	}
	if v.Sum() != 4 { // 2 cat one-hots + hour + dow
		t.Fatalf("one-hot sum: %v", v.Sum())
	}
	if v[5] != 1 || v[100+42] != 1 {
		t.Fatalf("categorical one-hot misplaced")
	}
	if v[100+97+7] != 1 { // hour 7
		t.Fatalf("hour one-hot misplaced")
	}
	// Reuse path must zero the buffer first.
	v2 := ContextVector(schema, synth.DefaultStart, []int{6, 42}, v)
	if v2[5] != 0 || v2[6] != 1 {
		t.Fatalf("buffer reuse failed")
	}
}

func TestTimeBucketOneHot(t *testing.T) {
	v := TimeBucketOneHot(21, nil)
	if len(v) != NumTimeBuckets || v.Sum() != 1 || v[10] != 1 {
		t.Fatalf("TimeBucketOneHot(21): %v", v)
	}
}

func TestSparseVecOps(t *testing.T) {
	var s SparseVec
	s.Append(0, 2)
	s.Append(3, -1)
	w := tensor.Vector{1, 10, 10, 4}
	if d := s.Dot(w); d != 2-4 {
		t.Fatalf("Dot: %v", d)
	}
	dst := tensor.NewVector(4)
	s.AddScaled(dst, 2)
	if dst[0] != 4 || dst[3] != -2 || dst[1] != 0 {
		t.Fatalf("AddScaled: %v", dst)
	}
}

func TestAggregatorSubsets(t *testing.T) {
	agg := NewAggregator(testSchema())
	if agg.NumSubsets() != 4 {
		t.Fatalf("2 context dims must give 4 subsets, got %d", agg.NumSubsets())
	}
	if agg.FeaturesPerSubset() != 3*4+2 {
		t.Fatalf("FeaturesPerSubset: %d", agg.FeaturesPerSubset())
	}
	if agg.NumFeatures() != 4*14 {
		t.Fatalf("NumFeatures: %d", agg.NumFeatures())
	}
	if len(agg.FeatureNames()) != agg.NumFeatures() {
		t.Fatalf("FeatureNames length mismatch")
	}
}

func TestAggregatorWindowCounts(t *testing.T) {
	agg := NewAggregator(testSchema())
	base := synth.DefaultStart
	// 3 sessions: 2 days ago, 2 hours ago, 30 minutes ago; accesses on the
	// first and last.
	agg.Observe(base-2*dataset.Day, []int{0, 0}, true)
	agg.Observe(base-2*3600, []int{0, 0}, false)
	agg.Observe(base-1800, []int{0, 0}, true)

	f := agg.Features(base, []int{0, 0}, nil)
	// Subset 0 is the empty subset (all history). Layout: windows 28d, 7d,
	// 1d, 1h; each [sessions, accesses, pct].
	if f[0] != 3 || f[1] != 2 {
		t.Fatalf("28d counts: sessions=%v accesses=%v", f[0], f[1])
	}
	if f[3] != 3 || f[4] != 2 {
		t.Fatalf("7d counts: %v %v", f[3], f[4])
	}
	if f[6] != 2 || f[7] != 1 {
		t.Fatalf("1d counts: sessions=%v accesses=%v", f[6], f[7])
	}
	if f[9] != 1 || f[10] != 1 || f[11] != 1 {
		t.Fatalf("1h counts: %v %v %v", f[9], f[10], f[11])
	}
	// Elapsed features: last session 1800 s ago, last access 1800 s ago.
	if f[12] != 1800 || f[13] != 1800 {
		t.Fatalf("elapsed: %v %v", f[12], f[13])
	}
}

func TestAggregatorContextConditioning(t *testing.T) {
	agg := NewAggregator(testSchema())
	base := synth.DefaultStart
	agg.Observe(base-3600, []int{5, 1}, true)  // unread=5, tab=1
	agg.Observe(base-1800, []int{9, 2}, false) // unread=9, tab=2

	// Query with context {unread=5, tab=2}: the unread-subset counts must
	// see only the first session, the tab-subset only the second.
	f := agg.Features(base, []int{5, 2}, nil)
	per := agg.FeaturesPerSubset()
	// Subset order is enumeration of bitmasks: 0={}, 1={unread}, 2={tab},
	// 3={unread, tab}.
	unreadBase := 1 * per
	tabBase := 2 * per
	bothBase := 3 * per
	if f[unreadBase] != 1 || f[unreadBase+1] != 1 {
		t.Fatalf("unread-subset counts wrong: %v %v", f[unreadBase], f[unreadBase+1])
	}
	if f[tabBase] != 1 || f[tabBase+1] != 0 {
		t.Fatalf("tab-subset counts wrong: %v %v", f[tabBase], f[tabBase+1])
	}
	if f[bothBase] != 0 {
		t.Fatalf("both-subset should have no matches: %v", f[bothBase])
	}
	// Elapsed-access for the tab subset: no access with tab=2 → capped.
	if f[tabBase+13] != float64(30*dataset.Day) {
		t.Fatalf("tab-subset elapsed access should be capped: %v", f[tabBase+13])
	}
}

func TestAggregatorExcludesCurrentTimestamp(t *testing.T) {
	// Features at time ts must not include a session observed at exactly
	// ts (no label leakage).
	agg := NewAggregator(testSchema())
	ts := synth.DefaultStart
	agg.Observe(ts, []int{0, 0}, true)
	f := agg.Features(ts, []int{0, 0}, nil)
	if f[0] != 0 || f[1] != 0 {
		t.Fatalf("current-timestamp session leaked into features: %v %v", f[0], f[1])
	}
	if f[12] != float64(30*dataset.Day) {
		t.Fatalf("elapsed must be capped when only concurrent session exists: %v", f[12])
	}
}

func TestAggregatorOrderEnforced(t *testing.T) {
	agg := NewAggregator(testSchema())
	agg.Observe(100, []int{0, 0}, false)
	defer func() {
		if recover() == nil {
			t.Fatalf("out-of-order Observe must panic")
		}
	}()
	agg.Observe(50, []int{0, 0}, false)
}

func TestAggregatorCostCounters(t *testing.T) {
	agg := NewAggregator(testSchema())
	agg.Observe(100, []int{1, 2}, true)
	agg.Observe(200, []int{1, 3}, false)
	if agg.KeyCount() == 0 {
		t.Fatalf("KeyCount must grow with distinct contexts")
	}
	before := agg.Lookups()
	agg.Features(300, []int{1, 2}, nil)
	if agg.Lookups()-before != int64(agg.NumSubsets()) {
		t.Fatalf("one lookup per subset per Features call")
	}
	if agg.StateBytes() <= 0 {
		t.Fatalf("StateBytes must be positive")
	}
}

func TestBuilderSessionExamples(t *testing.T) {
	schema := testSchema()
	b := NewBuilder(schema)
	u := &dataset.User{ID: 1}
	base := synth.DefaultStart
	for i := 0; i < 10; i++ {
		u.Sessions = append(u.Sessions, dataset.Session{
			Timestamp: base + int64(i)*3600,
			Access:    i%3 == 0,
			Cat:       []int{i % 100, (i * 7) % 97},
		})
	}
	exs := b.BuildUser(u)
	if len(exs) != 10 {
		t.Fatalf("example count: %d", len(exs))
	}
	for i, ex := range exs {
		if len(ex.Dense) != b.DenseDim() {
			t.Fatalf("dense dim: got %d want %d", len(ex.Dense), b.DenseDim())
		}
		for _, idx := range ex.Sparse.Idx {
			if int(idx) >= b.SparseDim() || idx < 0 {
				t.Fatalf("sparse index %d out of space %d", idx, b.SparseDim())
			}
		}
		if ex.Label != (i%3 == 0) {
			t.Fatalf("label mismatch at %d", i)
		}
	}
}

func TestBuilderMinTsFilters(t *testing.T) {
	schema := testSchema()
	b := NewBuilder(schema)
	base := synth.DefaultStart
	b.MinTs = base + 5*3600
	u := &dataset.User{ID: 1}
	for i := 0; i < 10; i++ {
		u.Sessions = append(u.Sessions, dataset.Session{
			Timestamp: base + int64(i)*3600,
			Cat:       []int{0, 0},
		})
	}
	exs := b.BuildUser(u)
	if len(exs) != 5 {
		t.Fatalf("MinTs filter: got %d examples", len(exs))
	}
	// But history before MinTs must still inform features: the first
	// emitted example must see 5 prior sessions in its 28d window.
	if exs[0].Dense[len(schema.Cat)+2] != 5 { // first agg feature after context block
		t.Fatalf("warm-up history missing: %v", exs[0].Dense)
	}
}

func TestBuilderAblationDims(t *testing.T) {
	schema := testSchema()
	b := NewBuilder(schema)

	b.Set = FeatureSet{Context: true}
	cOnly := b.DenseDim()
	b.Set = FeatureSet{Context: true, Elapsed: true}
	ec := b.DenseDim()
	b.Set = FullFeatures()
	full := b.DenseDim()
	if !(cOnly < ec && ec < full) {
		t.Fatalf("ablation dims must grow: %d %d %d", cOnly, ec, full)
	}

	// Dims must match emitted vectors in every configuration.
	u := &dataset.User{ID: 1, Sessions: []dataset.Session{
		{Timestamp: synth.DefaultStart, Cat: []int{1, 2}},
		{Timestamp: synth.DefaultStart + 100, Cat: []int{3, 4}, Access: true},
	}}
	for _, set := range []FeatureSet{
		{Context: true},
		{Context: true, Elapsed: true},
		FullFeatures(),
	} {
		b.Set = set
		exs := b.BuildUser(u)
		for _, ex := range exs {
			if len(ex.Dense) != b.DenseDim() {
				t.Fatalf("set %+v: dense %d want %d", set, len(ex.Dense), b.DenseDim())
			}
		}
	}
}

func TestBuilderTimeshift(t *testing.T) {
	cfg := synth.DefaultTimeshift()
	cfg.Users = 50
	d := synth.GenerateTimeshift(cfg)
	b := NewBuilder(d.Schema)
	perUser := b.BuildDataset(d)
	if len(perUser) != 50 {
		t.Fatalf("per-user groups: %d", len(perUser))
	}
	exs := Flatten(perUser)
	if len(exs) == 0 {
		t.Fatalf("no timeshift examples")
	}
	for _, ex := range exs {
		if len(ex.Dense) != b.DenseDim() {
			t.Fatalf("timeshift dense dim: got %d want %d", len(ex.Dense), b.DenseDim())
		}
		for _, idx := range ex.Sparse.Idx {
			if int(idx) >= b.SparseDim() {
				t.Fatalf("timeshift sparse index out of range")
			}
		}
	}
	// Labels must match the generator's windows.
	want := 0
	for _, u := range d.Users {
		for _, w := range u.Windows {
			if w.Accessed {
				want++
			}
		}
	}
	got := 0
	for _, ex := range exs {
		if ex.Label {
			got++
		}
	}
	if got != want {
		t.Fatalf("timeshift labels: got %d positives, want %d", got, want)
	}
}

func TestTimeshiftNoFutureLeakage(t *testing.T) {
	// An accessed window's own sessions must not be visible to its
	// features: verify the 1h-window session count at prediction time is
	// always computed strictly before the peak window opens.
	cfg := synth.DefaultTimeshift()
	cfg.Users = 20
	d := synth.GenerateTimeshift(cfg)
	b := NewBuilder(d.Schema)
	for _, u := range d.Users {
		exs := b.BuildUser(u)
		for _, ex := range exs {
			// Prediction time is TimeshiftLead before window start.
			for _, w := range u.Windows {
				if ex.Ts == w.Start-b.TimeshiftLead && w.Accessed {
					// Feature vector may not reflect sessions at/after
					// prediction time; spot-check via elapsed-session ≥ 0.
					if ex.Ts >= w.Start {
						t.Fatalf("prediction after window start")
					}
				}
			}
		}
	}
}

func TestAggregatorMatchesBruteForce(t *testing.T) {
	// Property: streaming window counts equal a brute-force recount.
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		schema := &dataset.Schema{
			Name: "p", SessionLength: 600,
			Cat: []dataset.CatFeature{{Name: "a", Cardinality: 3}},
		}
		agg := NewAggregator(schema)
		type obs struct {
			ts     int64
			cat    int
			access bool
		}
		var history []obs
		base := synth.DefaultStart
		ts := base
		for i := 0; i < 60; i++ {
			ts += int64(rng.Intn(90000) + 1)
			cat := rng.Intn(3)
			// Compute features and verify against brute force.
			f := agg.Features(ts, []int{cat}, nil)
			for wi, w := range AggWindows {
				var sess, acc int
				for _, h := range history {
					if h.ts >= ts-w && h.ts < ts {
						sess++
						if h.access {
							acc++
						}
					}
				}
				if f[wi*3] != float64(sess) || f[wi*3+1] != float64(acc) {
					return false
				}
				// Subset {a}: conditioned on cat.
				var sessC, accC int
				for _, h := range history {
					if h.cat == cat && h.ts >= ts-w && h.ts < ts {
						sessC++
						if h.access {
							accC++
						}
					}
				}
				per := agg.FeaturesPerSubset()
				if f[per+wi*3] != float64(sessC) || f[per+wi*3+1] != float64(accC) {
					return false
				}
			}
			access := rng.Bernoulli(0.3)
			agg.Observe(ts, []int{cat}, access)
			history = append(history, obs{ts, cat, access})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFlattenCounts(t *testing.T) {
	perUser := [][]Example{
		{{Ts: 1}, {Ts: 2}},
		nil,
		{{Ts: 3}},
	}
	flat := Flatten(perUser)
	if len(flat) != 3 {
		t.Fatalf("Flatten: %d", len(flat))
	}
}

func TestTimeBucketBoundaryMath(t *testing.T) {
	// Bucket boundaries: bucket b covers [e^(15b/50), e^(15(b+1)/50)).
	// Small buckets contain no integers at all; only check buckets whose
	// range includes the candidate integer.
	for b := 1; b < NumTimeBuckets-1; b++ {
		lo := int64(math.Ceil(math.Exp(float64(b) * 15 / 50)))
		hi := math.Exp(float64(b+1) * 15 / 50)
		if float64(lo) >= hi {
			continue // empty integer range
		}
		if got := TimeBucket(lo); got != b {
			t.Fatalf("bucket %d lower bound %d mapped to %d", b, lo, got)
		}
	}
}
