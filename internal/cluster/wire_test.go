package cluster

import (
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/serving"
	"repro/internal/wire"
)

// attachWire adds a wire listener to an already-running replica and
// returns its address. srv.Shutdown closes it.
func attachWire(t *testing.T, r *replica) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go r.srv.ServeWire(l)
	return l.Addr().String()
}

// startWireRouter attaches a wire listener to a router and returns its
// address; cleanup closes the router's wire plane.
func startWireRouter(t *testing.T, router *Router) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go router.ServeWire(l)
	t.Cleanup(router.CloseWire)
	return l.Addr().String()
}

// deadWireAddr returns an address nothing listens on.
func deadWireAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestWireClusterParity is the wire tentpole gate in-process: the same
// log replayed over the binary protocol end to end — loadgen → router
// splice → per-owner wire pools → replicas — stores hidden states
// byte-identical to sequential single-process replay, with the aggregate
// digest agreeing and zero sheds/errors. Predicts ride the wire too.
func TestWireClusterParity(t *testing.T) {
	m := testModel(t, 24)
	log := server.ReplayLog(30, 3)
	seq := seqReplay(m, log)

	reps := make([]*replica, 3)
	urls := make([]string, 3)
	wireAddrs := map[string]string{}
	for i := range reps {
		reps[i] = startReplica(t, m)
		urls[i] = reps[i].ts.URL
		wireAddrs[urls[i]] = attachWire(t, reps[i])
	}
	router := newTestRouter(t, Options{Replicas: urls, WireAddrs: wireAddrs})
	rts := httptest.NewServer(router)
	defer rts.Close()
	routerWire := startWireRouter(t, router)

	rep, err := server.RunLoad(server.LoadOptions{
		BaseURL:       rts.URL,
		WireAddr:      routerWire,
		Concurrency:   4,
		EventsPerPost: 5,
		PredictEvery:  3,
		Flush:         true,
	}, log)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed != 0 || rep.PredictsShed != 0 || rep.Errors != 0 {
		t.Fatalf("parity replay must be clean: %+v", rep)
	}
	if rep.Predicts == 0 {
		t.Fatalf("no predictions rode the wire: %+v", rep)
	}

	keys, dg, err := server.Digest(rts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, wantKeys := serving.StateDigest(seq)
	if dg != wantDigest || keys != wantKeys {
		t.Fatalf("cluster digest %s (%d keys), want %s (%d keys)", dg, keys, wantDigest, wantKeys)
	}
	assertClusterMatchesSequential(t, seq, unionStates(t, reps...))

	for _, r := range reps {
		r.stop(t)
	}
}

// TestWireClusterHTTPFallbackParity: one replica has no wire address, so
// the router re-marshals its sub-batches onto the hardened HTTP path.
// Parity must hold across the mixed transports.
func TestWireClusterHTTPFallbackParity(t *testing.T) {
	m := testModel(t, 16)
	log := server.ReplayLog(24, 4)
	seq := seqReplay(m, log)

	reps := make([]*replica, 3)
	urls := make([]string, 3)
	wireAddrs := map[string]string{}
	for i := range reps {
		reps[i] = startReplica(t, m)
		urls[i] = reps[i].ts.URL
		if i != 2 { // replica 2 is wire-less: HTTP fallback
			wireAddrs[urls[i]] = attachWire(t, reps[i])
		}
	}
	router := newTestRouter(t, Options{Replicas: urls, WireAddrs: wireAddrs})
	rts := httptest.NewServer(router)
	defer rts.Close()
	routerWire := startWireRouter(t, router)

	rep, err := server.RunLoad(server.LoadOptions{
		BaseURL:       rts.URL,
		WireAddr:      routerWire,
		Concurrency:   3,
		EventsPerPost: 4,
		PredictEvery:  4,
		Flush:         true,
	}, log)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed != 0 || rep.Errors != 0 {
		t.Fatalf("fallback replay must be clean: %+v", rep)
	}

	keys, dg, err := server.Digest(rts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, wantKeys := serving.StateDigest(seq)
	if dg != wantDigest || keys != wantKeys {
		t.Fatalf("mixed-transport digest %s (%d keys), want %s (%d keys)", dg, keys, wantDigest, wantKeys)
	}
	assertClusterMatchesSequential(t, seq, unionStates(t, reps...))

	for _, r := range reps {
		r.stop(t)
	}
}

// TestWireDegradedPredict pins degradation over the wire: the owner's
// wire address refuses connections, so the router falls back to another
// replica and marks the reply degraded — not an error.
func TestWireDegradedPredict(t *testing.T) {
	m := testModel(t, 16)
	a, b := startReplica(t, m), startReplica(t, m)
	defer a.stop(t)
	defer b.stop(t)
	router := newTestRouter(t, Options{
		Replicas: []string{a.ts.URL, b.ts.URL},
		WireAddrs: map[string]string{
			a.ts.URL: deadWireAddr(t), // owner's wire plane is down
			b.ts.URL: attachWire(t, b),
		},
		DataTimeout:    2 * time.Second,
		PredictRetries: -1,
	})
	routerWire := startWireRouter(t, router)

	user := -1
	for u := 0; u < 64; u++ {
		if router.Ring().OwnerOfUser(u) == a.ts.URL {
			user = u
			break
		}
	}
	if user < 0 {
		t.Fatal("no user hashed to replica A")
	}

	wcl := wire.NewClient(routerWire, wire.ClientOptions{DialTimeout: 2 * time.Second, CallTimeout: 5 * time.Second})
	defer wcl.Close()
	pr, err := wcl.SendPredict(0, wire.AppendPredict(nil, user, 1000, []int{0, 0}), 0)
	if err != nil {
		t.Fatalf("predict with dead wire owner: %v", err)
	}
	if pr.Status != wire.StatusOK || !pr.Degraded {
		t.Fatalf("predict with dead wire owner: %+v, want OK+degraded", pr)
	}
	if got := router.DegradedPredicts(); got != 1 {
		t.Fatalf("degraded counter = %d, want 1", got)
	}

	// A user owned by the healthy replica answers normally.
	for u := 0; u < 64; u++ {
		if router.Ring().OwnerOfUser(u) == b.ts.URL {
			pr, err := wcl.SendPredict(0, wire.AppendPredict(nil, u, 1000, []int{0, 0}), 0)
			if err != nil {
				t.Fatal(err)
			}
			if pr.Status != wire.StatusOK || pr.Degraded {
				t.Fatalf("healthy-owner predict: %+v", pr)
			}
			break
		}
	}
}
