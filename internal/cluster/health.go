package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Router-driven failover. The router probes every node it knows about —
// ring replicas, their followers, spare standbys — on a fixed interval
// with a short per-probe timeout. A ring replica that fails
// ProbeFails consecutive probes is declared dead and failed over: under
// the same write lock a reshard holds, its follower is promoted
// (POST /replicate/promote — after which no replicated record can land)
// and the ring is swapped with ReplaceReplica, so the follower inherits
// the dead replica's arcs exactly and zero arcs move between survivors.
// Re-replication then restarts in the background: a spare (if any) is
// told to follow the promoted replica, restoring the one-follower
// topology for the next failure.
//
// What the promotion guarantees: every record the follower acknowledged
// is applied; the states it holds are byte-identical to the primary's
// (Import-seam replication). What it cannot guarantee: records the dead
// primary committed but never shipped (the async window) are lost with
// it — the failover experiment and the CI smoke drive that window to
// zero by waiting for lag 0 before the kill, and bound it otherwise.

// ReplicaHealth is one probed node's state in the /healthz breakdown.
type ReplicaHealth struct {
	URL              string `json:"url"`
	Role             string `json:"role"` // "replica", "follower" or "spare"
	Healthy          bool   `json:"healthy"`
	ConsecutiveFails int    `json:"consecutive_fails"`
	LastErr          string `json:"last_err,omitempty"`
}

// healthState is the tracker's per-node record, guarded by healthMu.
type healthState struct {
	fails   int
	probed  bool
	lastErr string
}

// StartProber launches the periodic health probe (no-op unless
// Options.ProbeInterval > 0). Stop with StopProber.
func (r *Router) StartProber() {
	if r.opts.ProbeInterval <= 0 {
		return
	}
	r.proberOnce.Do(func() {
		r.proberWG.Add(1)
		go r.runProber()
	})
}

// StopProber stops the periodic probe and waits for it — and any
// background re-replication POST — to exit.
func (r *Router) StopProber() {
	r.proberStop.Do(func() { close(r.proberStopCh) })
	r.proberWG.Wait()
	r.rereplicateWG.Wait()
}

func (r *Router) runProber() {
	defer r.proberWG.Done()
	tick := time.NewTicker(r.opts.ProbeInterval)
	defer tick.Stop()
	for {
		for _, dead := range r.probeOnce() {
			if err := r.Failover(dead); err != nil {
				r.healthMu.Lock()
				r.lastFailoverErr = fmt.Sprintf("%s: %v", dead, err)
				r.healthMu.Unlock()
			}
		}
		select {
		case <-r.proberStopCh:
			return
		case <-tick.C:
		case <-r.probeNow:
			// A tripped breaker nudges an immediate probe round: replica
			// death detected by the data plane should start the failover
			// clock now, not after the rest of the probe interval.
		}
	}
}

// probeSet snapshots every node the router should probe, with its role.
func (r *Router) probeSet() []ReplicaHealth {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []ReplicaHealth
	for _, u := range r.ring.Replicas() {
		out = append(out, ReplicaHealth{URL: u, Role: "replica"})
	}
	for _, f := range r.followers {
		out = append(out, ReplicaHealth{URL: f, Role: "follower"})
	}
	for _, s := range r.spares {
		out = append(out, ReplicaHealth{URL: s, Role: "spare"})
	}
	return out
}

// probeOnce probes every known node concurrently and returns the ring
// replicas whose consecutive-failure count has crossed the threshold
// (the prober fails those over; /healthz only reports).
func (r *Router) probeOnce() (dead []string) {
	nodes := r.probeSet()
	type result struct {
		idx int
		err error
	}
	results := make(chan result, len(nodes))
	for i, n := range nodes {
		go func(i int, url string) {
			results <- result{i, r.probe(url)}
		}(i, n.URL)
	}
	errs := make([]error, len(nodes))
	for range nodes {
		res := <-results
		errs[res.idx] = res.err
	}
	r.healthMu.Lock()
	defer r.healthMu.Unlock()
	for i, n := range nodes {
		st := r.health[n.URL]
		if st == nil {
			st = &healthState{}
			r.health[n.URL] = st
		}
		st.probed = true
		if errs[i] == nil {
			st.fails = 0
			st.lastErr = ""
			continue
		}
		st.fails++
		st.lastErr = errs[i].Error()
		if n.Role == "replica" && st.fails >= r.probeFails() {
			dead = append(dead, n.URL)
		}
	}
	return dead
}

// probe is one health check against one node.
func (r *Router) probe(url string) error {
	resp, err := r.probeClient.Get(url + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz HTTP %d", resp.StatusCode)
	}
	return nil
}

func (r *Router) probeFails() int {
	if r.opts.ProbeFails <= 0 {
		return 3
	}
	return r.opts.ProbeFails
}

// Failover promotes the follower configured for a dead ring replica and
// swaps the ring under the write lock — the same lock a reshard holds, so
// traffic observes the cutover as a pause, never as disorder. After the
// swap, a spare (when available) is retargeted at the promoted replica in
// the background, restoring the follower topology.
func (r *Router) Failover(dead string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	inRing := false
	for _, u := range r.ring.Replicas() {
		if u == dead {
			inRing = true
			break
		}
	}
	if !inRing {
		return fmt.Errorf("cluster: %s is not a ring replica", dead)
	}
	follower := r.followers[dead]
	if follower == "" {
		return fmt.Errorf("cluster: no follower configured for %s — its arcs have no healthy owner", dead)
	}
	// Promotion is synchronous and must precede the ring swap: once it
	// returns, the follower applies no more replicated records, so the
	// writes the new ring routes to it cannot interleave with the tail of
	// the old primary's stream. Blocking I/O under the write lock is the
	// cutover seam the reshard protocol already established.
	var out struct {
		LastSeq int64 `json:"last_seq"`
	}
	status, err := r.postJSON(context.Background(), follower, "/replicate/promote", nil, &out, r.ctlOpts())
	if err != nil {
		return fmt.Errorf("cluster: promoting %s: %w", follower, err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("cluster: promoting %s: HTTP %d", follower, status)
	}
	newRing, err := r.ring.ReplaceReplica(dead, follower)
	if err != nil {
		return err
	}
	r.ring = newRing
	delete(r.followers, dead)
	r.failovers++
	r.healthMu.Lock()
	delete(r.health, dead)
	r.healthMu.Unlock()
	if len(r.spares) > 0 {
		spare := r.spares[0]
		r.spares = append([]string(nil), r.spares[1:]...)
		r.followers[follower] = spare
		// Re-replication happens off the lock: the POST just retargets the
		// spare; its own client bootstraps from the promoted replica
		// asynchronously.
		r.rereplicateWG.Add(1)
		go r.rereplicate(follower, spare)
	}
	return nil
}

// rereplicate points a spare at a freshly promoted primary.
func (r *Router) rereplicate(primary, spare string) {
	defer r.rereplicateWG.Done()
	status, err := r.postJSON(context.Background(), spare, "/replicate/follow", map[string]string{"primary": primary}, nil, r.ctlOpts())
	if err == nil && status != http.StatusOK {
		err = fmt.Errorf("HTTP %d", status)
	}
	if err != nil {
		r.healthMu.Lock()
		r.lastFailoverErr = fmt.Sprintf("re-replicating %s -> %s: %v", primary, spare, err)
		r.healthMu.Unlock()
	}
}

// Failovers returns how many promotions this router has executed.
func (r *Router) Failovers() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.failovers
}

// healthBreakdown assembles the /healthz payload from the tracker. Nodes
// the prober has not reached yet (or ever) count as healthy-unknown
// rather than failing the endpoint — a router that just started must not
// report 503 before its first probe lands.
func (r *Router) healthBreakdown() (nodes []ReplicaHealth, degraded bool) {
	nodes = r.probeSet()
	r.healthMu.Lock()
	defer r.healthMu.Unlock()
	threshold := r.probeFails()
	for i := range nodes {
		st := r.health[nodes[i].URL]
		if st == nil || !st.probed {
			nodes[i].Healthy = true
			continue
		}
		nodes[i].ConsecutiveFails = st.fails
		nodes[i].LastErr = st.lastErr
		nodes[i].Healthy = st.fails < threshold
		if !nodes[i].Healthy && nodes[i].Role == "replica" {
			// A dead ring replica means its arcs have no healthy owner
			// (a dead follower or spare degrades redundancy, not service).
			degraded = true
		}
	}
	return nodes, degraded
}
