// Binary transport for the router: an inbound wire listener (ServeWire)
// and per-replica outbound connection pools. The hot path never touches
// JSON — an inbound event batch is spliced into per-owner sub-batches by
// copying byte ranges (wire.Splicer) and re-framed onto pooled
// connections, so the fan-out cost is a varint walk plus memcpy instead
// of a decode/re-marshal cycle. Per-user order is preserved by pinning:
// a user rides one client connection (loadgen sharding), each inbound
// connection pins to one outbound pooled connection per replica, and
// event frames on a connection are forwarded synchronously — acked before
// the next frame is read — so frames cannot overtake each other.
//
// The PR 8 hardening carries over unchanged: forwards are gated by the
// same per-replica breaker and counted in the same error taxonomy as HTTP
// forwards, events are never retried here (the double-apply rule: only
// the client can safely re-send a whole ordered batch), and predicts —
// idempotent reads — retry in place and degrade to a non-owner replica
// when the owner is unreachable. A replica with no configured wire
// address (a follower promoted mid-failover, a resharded-in URL) is
// forwarded over HTTP instead; degradation, not refusal.

package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
)

// ServeWire serves the binary event/predict protocol on l until CloseWire.
func (r *Router) ServeWire(l net.Listener) error {
	if !r.registerWireListener(l) {
		l.Close()
		return nil
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			if r.wireClosed.Load() {
				return nil
			}
			return err
		}
		if !r.registerWireConn(conn) {
			conn.Close()
			return nil
		}
		go r.serveWireConn(conn, r.wireConnSeq.Add(1))
	}
}

// CloseWire stops the wire listeners, cuts inbound connections, and
// closes the outbound pools. Idempotent; call after the HTTP server shuts
// down.
func (r *Router) CloseWire() {
	r.wireClosed.Store(true)
	r.wireMu.Lock()
	defer r.wireMu.Unlock()
	for l := range r.wireListeners {
		l.Close()
		delete(r.wireListeners, l)
	}
	for c := range r.wireConnsIn {
		c.Close()
		delete(r.wireConnsIn, c)
	}
	for base, cl := range r.wirePools {
		cl.Close()
		delete(r.wirePools, base)
	}
}

func (r *Router) registerWireListener(l net.Listener) bool {
	r.wireMu.Lock()
	defer r.wireMu.Unlock()
	if r.wireClosed.Load() {
		return false
	}
	r.wireListeners[l] = struct{}{}
	return true
}

func (r *Router) registerWireConn(c net.Conn) bool {
	r.wireMu.Lock()
	defer r.wireMu.Unlock()
	if r.wireClosed.Load() {
		return false
	}
	r.wireConnsIn[c] = struct{}{}
	return true
}

func (r *Router) dropWireConn(c net.Conn) {
	r.wireMu.Lock()
	delete(r.wireConnsIn, c)
	r.wireMu.Unlock()
	c.Close()
}

// wireClientFor returns (lazily building) the outbound pool for a replica,
// or nil when the replica has no configured wire address.
func (r *Router) wireClientFor(base string) *wire.Client {
	r.wireMu.Lock()
	defer r.wireMu.Unlock()
	if cl, ok := r.wirePools[base]; ok {
		return cl
	}
	addr := r.wireAddrs[base]
	if addr == "" || r.wireClosed.Load() {
		return nil
	}
	cl := wire.NewClient(addr, wire.ClientOptions{
		Conns:       r.opts.WireConns,
		Window:      r.opts.WireWindow,
		CallTimeout: r.opts.DataTimeout,
	})
	r.wirePools[base] = cl
	return cl
}

// serveWireConn runs one inbound connection. Event frames are handled
// synchronously — splice, forward, collect acks, reply — which is the
// ordering barrier; predicts are answered out of band so a slow owner
// cannot stall the event stream sharing the connection.
func (r *Router) serveWireConn(conn net.Conn, lane uint64) {
	defer r.dropWireConn(conn)
	var predictWG sync.WaitGroup
	defer predictWG.Wait()

	br := bufio.NewReaderSize(conn, 64<<10)
	fw := wire.NewWriter(bufio.NewWriterSize(conn, 64<<10))
	var wmu sync.Mutex

	typ, p, err := wire.ReadFrame(br, nil)
	if err != nil || wire.CheckHello(typ, p) != nil {
		return
	}
	if err := fw.WriteHello(); err != nil || fw.Flush() != nil {
		return
	}

	buf := p[:cap(p)]
	var spl wire.Splicer
	for {
		typ, p, err := wire.ReadFrame(br, buf)
		if err != nil {
			return
		}
		buf = p[:cap(p)]
		if len(p) < 8 {
			return
		}
		reqID := binary.LittleEndian.Uint64(p)
		switch typ {
		case wire.FEvents:
			if !r.routeWireEvents(fw, &wmu, &spl, lane, reqID, p[8:]) {
				return
			}
		case wire.FPredict:
			// The payload is copied: the reply is written out of band and
			// the read buffer is reused for the next frame meanwhile.
			payload := append([]byte(nil), p[8:]...)
			predictWG.Add(1)
			go func() {
				defer predictWG.Done()
				r.routeWirePredict(fw, &wmu, lane, reqID, payload)
			}()
		default:
			return
		}
	}
}

// wireEventResult is one owner sub-batch outcome.
type wireEventResult struct {
	status   byte
	accepted int
	msg      string
}

// statusRank orders ack statuses for worst-status aggregation, mirroring
// the HTTP handler: OK < shed (429: retriable backpressure) < everything
// else (hard failures override a shed).
func statusRank(s byte) int {
	switch s {
	case wire.StatusOK:
		return 0
	case wire.StatusShed:
		return 1
	default:
		return 2
	}
}

// routeWireEvents splices one inbound batch by ring owner and forwards
// the sub-batches concurrently, answering with the worst ack. Returns
// false when the connection must drop (malformed batch — the stream
// cannot be trusted). Forwarding happens under mu.RLock for the same
// reason as the HTTP handler: a reshard cannot swap the ring while a
// batch split by the old ring is still landing.
func (r *Router) routeWireEvents(fw *wire.Writer, wmu *sync.Mutex, spl *wire.Splicer, lane uint64, reqID uint64, batch []byte) bool {
	r.mu.RLock()
	ring := r.ring
	spl.Reset(ring.NumReplicas())
	if err := spl.Split(batch, ring); err != nil {
		r.mu.RUnlock()
		return false
	}
	owners := 0
	for i := 0; i < spl.Owners(); i++ {
		if n, _ := spl.Batch(i); n > 0 {
			owners++
		}
	}
	results := make(chan wireEventResult, owners)
	for i := 0; i < spl.Owners(); i++ {
		n, events := spl.Batch(i)
		if n == 0 {
			continue
		}
		go func(base string, n int, events []byte) {
			results <- r.sendWireEvents(base, lane, n, events)
		}(ring.Replica(i), n, events)
	}
	worst := wireEventResult{status: wire.StatusOK}
	accepted := 0
	for i := 0; i < owners; i++ {
		// Collecting under RLock is the drain barrier (see above); the
		// splicer's buffers also stay untouched until every goroutine
		// reading them has answered.
		res := <-results //pplint:allow lockcheck
		accepted += res.accepted
		if statusRank(res.status) > statusRank(worst.status) {
			worst = res
		}
	}
	r.mu.RUnlock()
	if worst.status != wire.StatusOK {
		accepted = 0
	}
	wmu.Lock()
	err := fw.WriteAck(reqID, worst.status, accepted, worst.msg)
	if err == nil {
		err = fw.Flush()
	}
	wmu.Unlock()
	return err == nil
}

// sendWireEvents forwards one owner sub-batch with event semantics: one
// attempt, breaker-gated, never retried (only the originating client may
// re-send an ordered batch). Wire acks feed the same taxonomy and breaker
// as HTTP statuses: error/draining acks count as server failures, shed
// and bad-request do not (the replica is healthy, the request was not).
func (r *Router) sendWireEvents(base string, lane uint64, count int, events []byte) wireEventResult {
	cl := r.wireClientFor(base)
	if cl == nil {
		return r.sendEventsHTTP(base, count, events)
	}
	if !r.breakerAllow(base) {
		r.noteForward(base, "breaker-open")
		return wireEventResult{status: wire.StatusError, msg: ErrBreakerOpen.Error() + ": " + base}
	}
	r.noteForward(base, "attempt")
	ack, err := cl.SendEvents(lane, count, events)
	if err != nil {
		r.noteForward(base, classifyErr(err))
		r.breakerResult(base, false)
		return wireEventResult{status: wire.StatusError, msg: "forwarding events: " + err.Error()}
	}
	switch ack.Status {
	case wire.StatusError, wire.StatusDraining:
		r.noteForward(base, "server-5xx")
		r.breakerResult(base, false)
	default:
		r.breakerResult(base, true)
	}
	return wireEventResult{status: ack.Status, accepted: ack.Accepted, msg: ack.Msg}
}

// sendEventsHTTP is the fallback for a replica without a wire address:
// decode the sub-batch into the JSON event shape and forward it through
// the hardened HTTP path. Rare by construction (failover promotion,
// reshard to a wire-less URL), so the re-marshal cost is acceptable.
func (r *Router) sendEventsHTTP(base string, count int, events []byte) wireEventResult {
	evs := make([]server.Event, 0, count)
	var er wire.EventReader
	var ev wire.Event
	// The events slice carries no count prefix; frame one for the reader.
	var head [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(head[:], uint64(count))
	if err := er.Reset(append(head[:n:n], events...)); err != nil {
		return wireEventResult{status: wire.StatusError, msg: err.Error()}
	}
	for er.More() {
		if err := er.Next(&ev); err != nil {
			return wireEventResult{status: wire.StatusError, msg: err.Error()}
		}
		e := server.Event{Session: string(ev.Sid), User: ev.User, Ts: ev.Ts}
		if ev.Start {
			e.Type = "start"
			e.Cat = append([]int(nil), ev.Cat...)
		} else {
			e.Type = "access"
		}
		evs = append(evs, e)
	}
	status, err := r.postJSON(context.Background(), base, "/event", evs, nil, r.dataOpts(0))
	if err != nil {
		return wireEventResult{status: wire.StatusError, msg: "forwarding events: " + err.Error()}
	}
	if status == http.StatusAccepted {
		return wireEventResult{status: wire.StatusOK, accepted: count}
	}
	return wireEventResult{status: statusFromHTTP(status), msg: fmt.Sprintf("replica rejected events (HTTP %d)", status)}
}

func statusFromHTTP(code int) byte {
	switch {
	case code == http.StatusOK || code == http.StatusAccepted:
		return wire.StatusOK
	case code == http.StatusTooManyRequests:
		return wire.StatusShed
	case code == http.StatusServiceUnavailable:
		return wire.StatusDraining
	case code >= 400 && code < 500:
		return wire.StatusBadRequest
	default:
		return wire.StatusError
	}
}

// routeWirePredict forwards one predict to the owner — wire when pooled,
// HTTP otherwise — and degrades to the other replicas when the owner
// cannot answer, exactly like the HTTP handler: the fallback's cold-start
// prior beats an error page.
func (r *Router) routeWirePredict(fw *wire.Writer, wmu *sync.Mutex, lane uint64, reqID uint64, payload []byte) {
	user, err := wire.PredictUser(payload)
	if err != nil {
		r.writeWireReply(fw, wmu, reqID, wire.PredictReply{Status: wire.StatusBadRequest, Msg: "decoding predict: " + err.Error()})
		return
	}
	r.mu.RLock()
	ring := r.ring
	owner := ring.Replica(ring.OwnerIndexOfUser(user))
	reply, err := r.sendWirePredict(owner, lane, payload, r.opts.PredictRetries)
	if err != nil || reply.Status == wire.StatusError || reply.Status == wire.StatusDraining {
		for i := 0; i < ring.NumReplicas(); i++ {
			u := ring.Replica(i)
			if u == owner {
				continue
			}
			fr, ferr := r.sendWirePredict(u, lane, payload, 0)
			if ferr == nil && fr.Status == wire.StatusOK {
				fr.Degraded = true
				reply, err = fr, nil
				r.degradedPredicts.Add(1)
				break
			}
		}
	}
	r.mu.RUnlock()
	if err != nil {
		reply = wire.PredictReply{Status: wire.StatusError, Msg: "forwarding predict: " + err.Error()}
	}
	r.writeWireReply(fw, wmu, reqID, reply)
}

func (r *Router) writeWireReply(fw *wire.Writer, wmu *sync.Mutex, reqID uint64, reply wire.PredictReply) {
	wmu.Lock()
	defer wmu.Unlock()
	// A failed write means the inbound connection died; its read loop
	// notices and tears the connection down, so the error needs no
	// further handling here.
	if err := fw.WritePredictReply(reqID, reply); err != nil {
		return
	}
	if err := fw.Flush(); err != nil {
		return
	}
}

// sendWirePredict forwards one predict to one replica with the HTTP
// forward's semantics: breaker-gated attempts, taxonomy per outcome, and
// a retry budget with jittered linear backoff (predicts are idempotent).
// A reply is returned for any received status — callers decide whether to
// degrade; an error means no reply was received at all.
func (r *Router) sendWirePredict(base string, lane uint64, payload []byte, retries int) (wire.PredictReply, error) {
	var lastErr error
	var reply wire.PredictReply
	got := false
	for attempt := 0; ; attempt++ {
		if !r.breakerAllow(base) {
			r.noteForward(base, "breaker-open")
			return wire.PredictReply{}, fmt.Errorf("%w: %s", ErrBreakerOpen, base)
		}
		r.noteForward(base, "attempt")
		pr, err := r.predictOnce(base, lane, payload)
		if err == nil && pr.Status != wire.StatusError && pr.Status != wire.StatusDraining {
			r.breakerResult(base, true)
			return pr, nil
		}
		if err != nil {
			r.noteForward(base, classifyErr(err))
			lastErr = err
		} else {
			r.noteForward(base, "server-5xx")
			reply, got = pr, true
		}
		r.breakerResult(base, false)
		if attempt >= retries {
			if got {
				return reply, nil
			}
			return wire.PredictReply{}, lastErr
		}
		r.noteForward(base, "retry")
		sleep := time.Duration(attempt+1)*5*time.Millisecond +
			time.Duration(rand.Int63n(int64(5*time.Millisecond)))
		t := time.NewTimer(sleep)
		<-t.C
	}
}

// predictOnce sends one predict over the replica's wire pool, or over
// HTTP when it has none.
func (r *Router) predictOnce(base string, lane uint64, payload []byte) (wire.PredictReply, error) {
	if cl := r.wireClientFor(base); cl != nil {
		// Transport-level retries stay at 0: this loop owns the budget so
		// the breaker sees every attempt.
		return cl.SendPredict(lane, payload, 0)
	}
	pr, _, err := wire.ParsePredict(payload, nil)
	if err != nil {
		return wire.PredictReply{}, err
	}
	in := server.PredictIn{User: pr.User, Ts: pr.Ts, Cat: pr.Cat}
	var out server.PredictOut
	// forwardOnce, not forward: sendWirePredict owns the breaker and
	// taxonomy for this attempt, so the HTTP hop must not double-count.
	body, err := json.Marshal(in)
	if err != nil {
		return wire.PredictReply{}, err
	}
	resp, err := r.forwardOnce(base, body)
	if err != nil {
		return wire.PredictReply{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return wire.PredictReply{}, err
		}
		return wire.PredictReply{Status: wire.StatusOK, Probability: out.Probability, Precompute: out.Precompute, Degraded: out.Degraded}, nil
	}
	io.Copy(io.Discard, resp.Body)
	return wire.PredictReply{Status: statusFromHTTP(resp.StatusCode)}, nil
}

// forwardOnce posts one predict body over HTTP with the data-plane
// deadline and no breaker/taxonomy (the wire caller accounts those).
func (r *Router) forwardOnce(base string, body []byte) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.DataTimeout)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/predict", bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = &cancelBody{rc: resp.Body, cancel: cancel}
	return resp, nil
}
