// Package cluster scales the online serving tier across user-sharded
// replicas: a consistent-hash ring assigns every user (by the hash of their
// hidden-state key) to one ppserve replica process, a router forwards the
// HTTP API onto the replicas and aggregates their control endpoints, and a
// drain-and-handoff protocol reshards key ranges between replicas without
// losing a single hidden state — the cluster-wide digest stays comparable,
// by construction, to the digest of one process replaying the same log
// sequentially.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/server"
	"repro/internal/serving"
)

// Ring is an immutable consistent-hash ring over the 32-bit key-hash space.
// Each replica projects VNodes points onto the ring; a position is owned by
// the first point clockwise at or after it. Replicas are identified by
// their base URL, so two rings sharing a replica agree exactly on the
// points that replica projects — which is what makes MovedArcs well
// defined.
type Ring struct {
	replicas []string
	// ids are the vnode identities the points were projected from. They
	// equal replicas at construction; ReplaceReplica swaps a replica's URL
	// while keeping its identity, so a promoted follower inherits the dead
	// primary's arcs exactly — zero arcs move between survivors.
	ids    []string
	vnodes int
	points []ringPoint // sorted by pos, ties broken by replica index
}

type ringPoint struct {
	pos     uint32
	replica int
}

// DefaultVNodes balances ownership within a few percent for small replica
// counts without making reshard arc lists long.
const DefaultVNodes = 64

// NewRing builds the ring for the given replica base URLs (order is
// irrelevant to ownership; vnodes <= 0 selects DefaultVNodes).
func NewRing(replicas []string, vnodes int) (*Ring, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one replica")
	}
	seen := map[string]bool{}
	for _, u := range replicas {
		if u == "" {
			return nil, fmt.Errorf("cluster: empty replica URL")
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate replica %s", u)
		}
		seen[u] = true
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		replicas: append([]string(nil), replicas...),
		ids:      append([]string(nil), replicas...),
		vnodes:   vnodes,
		points:   make([]ringPoint, 0, len(replicas)*vnodes),
	}
	for i, u := range r.ids {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{pos: vnodeHash(u, v), replica: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].pos != r.points[b].pos {
			return r.points[a].pos < r.points[b].pos
		}
		// A position collision across replicas is resolved by URL order so
		// both rings of a reshard agree on the owner.
		return r.replicas[r.points[a].replica] < r.replicas[r.points[b].replica]
	})
	return r, nil
}

// vnodeHash is the ring projection of one virtual node. The key hash is
// FNV-1a, but FNV-1a clusters the near-identical "url#v" strings into
// narrow bands (measured: 3 replicas × 64 vnodes left one replica owning
// 70% of the ring), so points use SHA-256 — run only at ring construction,
// where throughput is irrelevant and dispersion is everything.
func vnodeHash(url string, v int) uint32 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", url, v)))
	return binary.LittleEndian.Uint32(sum[:4])
}

// Replicas returns the ring's replica base URLs (copy).
func (r *Ring) Replicas() []string { return append([]string(nil), r.replicas...) }

// ReplaceReplica returns a ring that addresses oldURL's arcs at newURL
// instead. The replacement inherits oldURL's vnode identity — the points
// it projected stay where they are — so ownership is bit-identical and a
// failover promotion moves zero arcs between survivors. (A later explicit
// reshard naming newURL re-projects it under its own identity; until
// then, two rings sharing the replaced slot agree on its points because
// identities, not URLs, define them.)
func (r *Ring) ReplaceReplica(oldURL, newURL string) (*Ring, error) {
	if newURL == "" {
		return nil, fmt.Errorf("cluster: empty replacement URL")
	}
	at := -1
	for i, u := range r.replicas {
		if u == newURL {
			return nil, fmt.Errorf("cluster: replacement %s already in the ring", newURL)
		}
		if u == oldURL {
			at = i
		}
	}
	if at < 0 {
		return nil, fmt.Errorf("cluster: replica %s not in the ring", oldURL)
	}
	next := &Ring{
		replicas: append([]string(nil), r.replicas...),
		ids:      r.ids,
		vnodes:   r.vnodes,
		points:   r.points, // immutable; identity-keyed, so still valid
	}
	next.replicas[at] = newURL
	return next, nil
}

// VNodes returns the per-replica virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// ownerAt returns the replica index owning ring position pos.
func (r *Ring) ownerAt(pos uint32) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0 // wrap: positions past the last point belong to the first
	}
	return r.points[i].replica
}

// OwnerOfKey returns the base URL of the replica owning a stored key.
func (r *Ring) OwnerOfKey(key string) string {
	return r.replicas[r.ownerAt(serving.KeyHash(key))]
}

// OwnerOfUser returns the base URL of the replica owning a user. Users are
// placed by the hash of their hidden-state key, so routing a user's events
// and matching their stored state against a handoff arc agree always.
func (r *Ring) OwnerOfUser(userID int) string {
	return r.OwnerOfKey(serving.HiddenKey(userID))
}

// OwnerIndexOfUser returns the replica index owning a user without
// allocating (wire.OwnerIndexer). The splice path calls it once per
// event, so the key hash is computed with no intermediate string.
func (r *Ring) OwnerIndexOfUser(userID int) int {
	return r.ownerAt(serving.UserKeyHash(userID))
}

// NumReplicas returns the replica count.
func (r *Ring) NumReplicas() int { return len(r.replicas) }

// Replica returns the base URL at index i (no copy — the splice fan-out
// resolves an owner index per sub-batch).
func (r *Ring) Replica(i int) string { return r.replicas[i] }

// Move is one directed state transfer of a reshard: the arcs whose
// ownership passes from Src to Dst.
type Move struct {
	Src, Dst string
	Arcs     []server.Arc
}

// MovedArcs computes the hash arcs whose owner differs between two rings,
// grouped into per-(src,dst) moves in deterministic order. Splitting the
// ring at every point of either ring yields elementary arcs with a single
// owner per ring, so each elementary arc either stays put or moves whole.
func MovedArcs(old, next *Ring) []Move {
	bounds := make([]uint32, 0, len(old.points)+len(next.points))
	for _, p := range old.points {
		bounds = append(bounds, p.pos)
	}
	for _, p := range next.points {
		bounds = append(bounds, p.pos)
	}
	sort.Slice(bounds, func(a, b int) bool { return bounds[a] < bounds[b] })
	bounds = dedupeUint32(bounds)

	type pair struct{ src, dst string }
	moves := map[pair][]server.Arc{}
	var order []pair
	add := func(lo, hi uint32) {
		// Every position in [lo, hi] has one old owner and one new owner:
		// sample at hi (arcs are built so no ring point lies strictly
		// inside).
		src := old.replicas[old.ownerAt(hi)]
		dst := next.replicas[next.ownerAt(hi)]
		if src == dst {
			return
		}
		p := pair{src, dst}
		if _, ok := moves[p]; !ok {
			order = append(order, p)
		}
		moves[p] = append(moves[p], server.Arc{Lo: lo, Hi: hi})
	}
	if len(bounds) == 0 {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i-1]+1 <= bounds[i] {
			add(bounds[i-1]+1, bounds[i])
		}
	}
	// The wrapping arc (lastBound, firstBound] becomes two closed arcs.
	last, first := bounds[len(bounds)-1], bounds[0]
	if last != ^uint32(0) {
		add(last+1, ^uint32(0))
	}
	add(0, first)

	out := make([]Move, 0, len(order))
	for _, p := range order {
		out = append(out, Move{Src: p.src, Dst: p.dst, Arcs: moves[p]})
	}
	return out
}

func dedupeUint32(xs []uint32) []uint32 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
