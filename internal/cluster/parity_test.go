package cluster

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/serving"
	"repro/internal/statestore"
	"repro/internal/synth"
)

func testModel(t *testing.T, hidden int) *core.Model {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.HiddenDim = hidden
	cfg.Seed = 7
	return core.New(synth.MobileTabSchema(), cfg)
}

// seqReplay replays the log through the sequential in-process path — the
// parity baseline (identical to the server package's helper).
func seqReplay(m *core.Model, log []server.ReplayEvent) *serving.KVStore {
	st := serving.NewKVStore()
	p := serving.NewStreamProcessor(m, st)
	for _, e := range log {
		p.OnSessionStart(e.SID, e.User, e.Ts, e.Cat)
		if e.Access {
			p.OnAccess(e.SID, e.Ts+30)
		}
	}
	p.Flush()
	return st
}

// replica is one in-process cluster member: a server.Server over its own
// statestore WAL/snapshot directory, mounted on a loopback test server.
type replica struct {
	srv   *server.Server
	state *statestore.Store
	ts    *httptest.Server
	dir   string
}

func startReplica(t *testing.T, m *core.Model) *replica {
	t.Helper()
	dir := t.TempDir()
	ss, err := statestore.Open(statestore.Options{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Options{
		Model: m, Store: ss, State: ss, Threshold: 0.5,
		Lanes: 2, MaxBatch: 8, MaxWait: time.Millisecond, LaneDepth: 256,
	})
	return &replica{srv: srv, state: ss, ts: httptest.NewServer(srv.Handler()), dir: dir}
}

func (r *replica) stop(t *testing.T) {
	t.Helper()
	r.ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.srv.Shutdown(ctx); err != nil {
		t.Fatalf("replica shutdown: %v", err)
	}
	if err := r.state.Close(); err != nil {
		t.Fatalf("replica statestore: %v", err)
	}
}

// unionStates merges the replicas' resident states, failing on overlap —
// after a correct handoff every key lives on exactly one replica.
func unionStates(t *testing.T, replicas ...*replica) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, r := range replicas {
		for _, k := range r.state.Keys() {
			if _, dup := out[k]; dup {
				t.Fatalf("key %s resident on two replicas — handoff failed to drop it", k)
			}
			v, ok := r.state.Get(k)
			if !ok {
				t.Fatalf("key %s unreadable", k)
			}
			out[k] = v
		}
	}
	return out
}

// assertClusterMatchesSequential byte-compares the union of the replicas'
// states against the sequential baseline.
func assertClusterMatchesSequential(t *testing.T, seq *serving.KVStore, got map[string][]byte) {
	t.Helper()
	wantKeys := seq.Keys()
	if len(wantKeys) == 0 {
		t.Fatal("baseline stored no states")
	}
	if len(got) != len(wantKeys) {
		t.Fatalf("cluster holds %d states, sequential %d", len(got), len(wantKeys))
	}
	for _, k := range wantKeys {
		w, _ := seq.Get(k)
		g, ok := got[k]
		if !ok {
			t.Fatalf("state %s missing from the cluster", k)
		}
		if !bytes.Equal(w, g) {
			t.Fatalf("state %s differs between cluster and sequential replay", k)
		}
	}
}

// distinctUsers counts the users in a log (expected store misses: exactly
// one cold first session per user — any more means a state was lost).
func distinctUsers(log []server.ReplayEvent) int {
	seen := map[int]bool{}
	for _, e := range log {
		seen[e.User] = true
	}
	return len(seen)
}

// totalMisses sums store misses across replicas.
func totalMisses(replicas ...*replica) int64 {
	var n int64
	for _, r := range replicas {
		n += r.state.Stats().Misses
	}
	return n
}

// runHalf replays half a log through the router, requiring a clean run.
func runHalf(t *testing.T, base string, half []server.ReplayEvent, flush bool) {
	t.Helper()
	rep, err := server.RunLoad(server.LoadOptions{
		BaseURL:       base,
		Concurrency:   4,
		EventsPerPost: 5,
		Flush:         flush,
	}, half)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed != 0 || rep.Errors != 0 {
		t.Fatalf("parity replay must be clean: %+v", rep)
	}
}

// TestClusterParityWithMidReplayReshard is the tentpole gate: the same
// event log replayed (a) sequentially in one process and (b) over HTTP
// through a 3-replica cluster that reshards to a 4th replica mid-replay
// must store byte-identical hidden states — every byte compared, the
// order-independent aggregate digest agreeing with the single-process
// digest, and zero unexpected cold starts (exactly one store miss per
// distinct user, cluster-wide, reshard included).
func TestClusterParityWithMidReplayReshard(t *testing.T) {
	m := testModel(t, 24)
	log := server.ReplayLog(30, 3)
	if len(log) < 20 {
		t.Fatalf("replay log too small: %d", len(log))
	}
	seq := seqReplay(m, log)

	reps := []*replica{startReplica(t, m), startReplica(t, m), startReplica(t, m)}
	urls := []string{reps[0].ts.URL, reps[1].ts.URL, reps[2].ts.URL}
	router, err := New(Options{Replicas: urls})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(router)
	defer rts.Close()

	half := len(log) / 2
	runHalf(t, rts.URL, log[:half], false)

	// Mid-replay reshard: grow the cluster by a fourth replica. Ranges of
	// every original replica rehome onto it through drain-and-handoff.
	fourth := startReplica(t, m)
	reps = append(reps, fourth)
	moved, err := router.Reshard(append(urls, fourth.ts.URL))
	if err != nil {
		t.Fatalf("reshard: %v", err)
	}
	if moved == 0 {
		t.Fatal("reshard moved no states — the handoff path was not exercised")
	}
	t.Logf("reshard moved %d states onto the new replica", moved)

	runHalf(t, rts.URL, log[half:], true)

	// Aggregate digest must equal the single-process sequential digest.
	keys, dg, err := server.Digest(rts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, wantKeys := serving.StateDigest(seq)
	if dg != wantDigest || keys != wantKeys {
		t.Fatalf("cluster digest %s (%d keys), want %s (%d keys)", dg, keys, wantDigest, wantKeys)
	}

	// Every stored state, byte for byte.
	assertClusterMatchesSequential(t, seq, unionStates(t, reps...))

	// Zero unexpected cold starts: the only misses are each user's first
	// session (no predict traffic in this run, so finalisation reads are
	// the only store reads that can miss).
	if want, got := int64(distinctUsers(log)), totalMisses(reps...); got != want {
		t.Fatalf("store misses %d, want %d — a reshard caused unexpected cold starts", got, want)
	}

	for _, r := range reps {
		r.stop(t)
	}
}

// TestKilledReplicaRehomesWithoutColdStarts covers the failure path: a
// replica dies mid-replay (graceful SIGTERM-style shutdown — timers fire,
// a final snapshot lands), its key range is rehomed to the survivors from
// its statestore directory, and the replay continues. Final states must be
// byte-identical to sequential replay with zero unexpected cold starts.
func TestKilledReplicaRehomesWithoutColdStarts(t *testing.T) {
	m := testModel(t, 16)
	log := server.ReplayLog(24, 5)
	seq := seqReplay(m, log)

	reps := []*replica{startReplica(t, m), startReplica(t, m), startReplica(t, m)}
	urls := []string{reps[0].ts.URL, reps[1].ts.URL, reps[2].ts.URL}
	router, err := New(Options{Replicas: urls})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(router)
	defer rts.Close()

	half := len(log) / 2
	runHalf(t, rts.URL, log[:half], false)

	// Kill replica 2: graceful shutdown drains its pipeline and snapshots
	// its statestore; the router then rehomes its range from disk.
	victim := reps[2]
	preKeys := len(victim.state.Keys())
	if preKeys == 0 {
		t.Fatal("victim held no states — test is vacuous")
	}
	victim.stop(t)
	moved, err := router.RecoverFromDir(victim.dir, victim.ts.URL, urls[:2])
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if moved < preKeys {
		t.Fatalf("rehomed %d states, want >= %d (everything the dead replica held)", moved, preKeys)
	}
	t.Logf("rehomed %d states from the dead replica's directory", moved)

	runHalf(t, rts.URL, log[half:], true)

	keys, dg, err := server.Digest(rts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, wantKeys := serving.StateDigest(seq)
	if dg != wantDigest || keys != wantKeys {
		t.Fatalf("cluster digest %s (%d keys), want %s (%d keys)", dg, keys, wantDigest, wantKeys)
	}
	survivors := reps[:2]
	assertClusterMatchesSequential(t, seq, unionStates(t, survivors...))

	// The survivors' misses plus the dead replica's pre-kill misses must
	// still be exactly one per distinct user. The dead store is closed;
	// count its misses through the reopened recovery handle? No — its
	// misses happened before the kill and are part of its final counters,
	// which died with it. So bound instead: survivors alone must not exceed
	// one miss per user they ever served, i.e. total misses across the
	// cluster lifetime <= distinct users. Misses after the rehome would
	// push the survivors over their own first-session budget, so assert
	// the sum of survivor misses + users originally owned by the victim
	// equals the distinct-user count.
	victimFirstSessions := 0
	seen := map[int]bool{}
	oldRing := mustRing(t, urls, 0)
	for i, e := range log {
		if seen[e.User] {
			continue
		}
		seen[e.User] = true
		if i < half && oldRing.OwnerOfUser(e.User) == urls[2] {
			victimFirstSessions++
		}
	}
	want := int64(distinctUsers(log) - victimFirstSessions)
	if got := totalMisses(survivors...); got != want {
		t.Fatalf("survivor misses %d, want %d — rehoming caused unexpected cold starts", got, want)
	}

	for _, r := range survivors {
		r.stop(t)
	}
}

// TestKilledReplicaReplacedByFreshNode covers the replace-a-dead-node
// recovery: replica C dies and a fresh replica D joins in the same
// RecoverFromDir call. The new ring moves arcs from the *survivors* to D
// as well as C's own range, so recovery must run live drain-and-handoff
// for the survivor arcs — without it those users would cold-start on D
// while A/B kept stale copies, double-counting the digest.
func TestKilledReplicaReplacedByFreshNode(t *testing.T) {
	m := testModel(t, 16)
	log := server.ReplayLog(24, 9)
	seq := seqReplay(m, log)

	reps := []*replica{startReplica(t, m), startReplica(t, m), startReplica(t, m)}
	urls := []string{reps[0].ts.URL, reps[1].ts.URL, reps[2].ts.URL}
	router, err := New(Options{Replicas: urls})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(router)
	defer rts.Close()

	half := len(log) / 2
	runHalf(t, rts.URL, log[:half], false)

	victim := reps[2]
	victim.stop(t)
	fresh := startReplica(t, m)
	newSet := []string{urls[0], urls[1], fresh.ts.URL}
	moved, err := router.RecoverFromDir(victim.dir, victim.ts.URL, newSet)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	t.Logf("recovery moved %d states (dead-replica rehome + survivor handoffs)", moved)

	runHalf(t, rts.URL, log[half:], true)

	keys, dg, err := server.Digest(rts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, wantKeys := serving.StateDigest(seq)
	if dg != wantDigest || keys != wantKeys {
		t.Fatalf("cluster digest %s (%d keys), want %s (%d keys) — stale copies or cold starts after replacement", dg, keys, wantDigest, wantKeys)
	}
	// unionStates fails on any key resident on two replicas, which is
	// exactly the stale-copy bug this test exists to catch.
	assertClusterMatchesSequential(t, seq, unionStates(t, reps[0], reps[1], fresh))

	// Passing a replica set that still contains the dead URL must refuse.
	if _, err := router.RecoverFromDir(victim.dir, victim.ts.URL, append([]string{victim.ts.URL}, newSet...)); err == nil {
		t.Fatal("RecoverFromDir accepted a replica set containing the dead replica")
	}

	for _, r := range []*replica{reps[0], reps[1], fresh} {
		r.stop(t)
	}
}
