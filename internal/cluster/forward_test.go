package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// stubReplica is a bare HTTP stand-in for a replica, programmable per
// request — the forwarding layer's behavior (taxonomy, breaker, retries,
// deadlines) is independent of what a real server would compute.
func stubReplica(handler http.HandlerFunc) *httptest.Server {
	return httptest.NewServer(handler)
}

func newTestRouter(t *testing.T, opts Options) *Router {
	t.Helper()
	r, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestForwardTaxonomy pins the error classification: a refused connection,
// a replica 5xx, and a timeout land in distinct per-replica counters.
func TestForwardTaxonomy(t *testing.T) {
	fiver := stubReplica(func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	defer fiver.Close()
	staller := stubReplica(func(w http.ResponseWriter, req *http.Request) {
		time.Sleep(2 * time.Second)
	})
	defer staller.Close()
	dead := stubReplica(func(w http.ResponseWriter, req *http.Request) {})
	deadURL := dead.URL
	dead.Close()

	r := newTestRouter(t, Options{
		Replicas:    []string{fiver.URL},
		DataTimeout: 50 * time.Millisecond,
	})
	ctx := context.Background()

	if _, err := r.forward(ctx, http.MethodPost, deadURL, "/event", nil, r.dataOpts(0)); err == nil {
		t.Fatal("forward to a closed listener succeeded")
	}
	resp, err := r.forward(ctx, http.MethodPost, fiver.URL, "/event", nil, r.dataOpts(0))
	if err != nil {
		t.Fatalf("5xx must come back as a response, got error %v", err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d", resp.StatusCode)
	}
	resp.Body.Close()
	t0 := time.Now()
	if _, err := r.forward(ctx, http.MethodPost, staller.URL, "/event", nil, r.dataOpts(0)); err == nil {
		t.Fatal("stalled forward did not time out")
	}
	if elapsed := time.Since(t0); elapsed > time.Second {
		t.Fatalf("per-route deadline not enforced: took %v", elapsed)
	}

	stats := r.ForwardingStats()
	if stats[deadURL].ConnectRefused == 0 {
		t.Fatalf("refused connection not classified: %+v", stats[deadURL])
	}
	if stats[fiver.URL].Server5xx != 1 {
		t.Fatalf("5xx not classified: %+v", stats[fiver.URL])
	}
	if stats[staller.URL].Timeouts != 1 {
		t.Fatalf("timeout not classified: %+v", stats[staller.URL])
	}
}

// TestForwardRetriesIdempotent pins the retry budget: transient 5xx
// responses retry in place and the eventual success is returned, with the
// attempts and retries accounted.
func TestForwardRetriesIdempotent(t *testing.T) {
	var calls atomic.Int64
	flaky := stubReplica(func(w http.ResponseWriter, req *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	defer flaky.Close()

	r := newTestRouter(t, Options{Replicas: []string{flaky.URL}})
	resp, err := r.forward(context.Background(), http.MethodPost, flaky.URL, "/predict", nil, r.dataOpts(2))
	if err != nil {
		t.Fatalf("retry budget did not absorb transient 5xx: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after retries", resp.StatusCode)
	}
	resp.Body.Close()
	st := r.ForwardingStats()[flaky.URL]
	if st.Attempts != 3 || st.Retries != 2 || st.Server5xx != 2 {
		t.Fatalf("accounting off: %+v", st)
	}
}

// TestBreakerTripAndRecovery pins the breaker lifecycle: consecutive
// failures trip it, open forwards fail fast without a connection attempt,
// and a half-open trial after the cooldown closes it on success.
func TestBreakerTripAndRecovery(t *testing.T) {
	var healthy atomic.Bool
	flappy := stubReplica(func(w http.ResponseWriter, req *http.Request) {
		if healthy.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
	})
	defer flappy.Close()

	r := newTestRouter(t, Options{
		Replicas:        []string{flappy.URL},
		BreakerFails:    3,
		BreakerCooldown: 30 * time.Millisecond,
	})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		resp, err := r.forward(ctx, http.MethodPost, flappy.URL, "/event", nil, r.dataOpts(0))
		if err != nil {
			t.Fatalf("attempt %d: %v", i, err)
		}
		resp.Body.Close()
	}
	if _, err := r.forward(ctx, http.MethodPost, flappy.URL, "/event", nil, r.dataOpts(0)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("breaker did not trip after 3 consecutive failures: %v", err)
	}
	st := r.ForwardingStats()[flappy.URL]
	if st.BreakerTrips != 1 || st.BreakerOpen == 0 {
		t.Fatalf("breaker accounting off: %+v", st)
	}
	// The trip nudged the prober channel.
	select {
	case <-r.probeNow:
	default:
		t.Fatal("breaker trip did not nudge the prober")
	}

	// Replica recovers; after the cooldown a half-open trial closes the
	// breaker again.
	healthy.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		resp, err := r.forward(ctx, http.MethodPost, flappy.URL, "/event", nil, r.dataOpts(0))
		if err == nil && resp.StatusCode == http.StatusOK {
			resp.Body.Close()
			recovered = true
			break
		}
		if resp != nil {
			resp.Body.Close()
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("breaker never recovered after the replica came back")
	}
	if _, err := r.forward(ctx, http.MethodPost, flappy.URL, "/event", nil, r.dataOpts(0)); err != nil {
		t.Fatalf("closed breaker still failing: %v", err)
	}
}

// TestDegradedPredict pins graceful degradation: when the owning replica
// is down, a predict comes back 200 from a fallback replica with the
// degraded flag set and the router's counter advanced — not 502.
func TestDegradedPredict(t *testing.T) {
	m := testModel(t, 16)
	a, b := startReplica(t, m), startReplica(t, m)
	defer b.stop(t)
	router := newTestRouter(t, Options{
		Replicas:    []string{a.ts.URL, b.ts.URL},
		DataTimeout: 2 * time.Second,
	})
	rts := httptest.NewServer(router)
	defer rts.Close()

	// Find a user owned by replica A, then kill A.
	user := -1
	for u := 0; u < 64; u++ {
		if router.Ring().OwnerOfUser(u) == a.ts.URL {
			user = u
			break
		}
	}
	if user < 0 {
		t.Fatal("no user hashed to replica A")
	}
	kill(a)

	body, _ := json.Marshal(server.PredictIn{User: user, Ts: 1000, Cat: []int{0, 0}})
	resp, err := http.Post(rts.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		t.Fatalf("predict with dead owner: HTTP %d (%s), want 200 degraded", resp.StatusCode, msg.String())
	}
	var out server.PredictOut
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded {
		t.Fatalf("degraded flag not set: %+v", out)
	}
	if got := router.DegradedPredicts(); got != 1 {
		t.Fatalf("degraded counter = %d, want 1", got)
	}

	// A user owned by the healthy replica still gets a normal answer.
	for u := 0; u < 64; u++ {
		if router.Ring().OwnerOfUser(u) == b.ts.URL {
			body, _ := json.Marshal(server.PredictIn{User: u, Ts: 1000, Cat: []int{0, 0}})
			resp2, err := http.Post(rts.URL+"/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			var out2 server.PredictOut
			if err := json.NewDecoder(resp2.Body).Decode(&out2); err != nil {
				t.Fatal(err)
			}
			resp2.Body.Close()
			if resp2.StatusCode != http.StatusOK || out2.Degraded {
				t.Fatalf("healthy-owner predict degraded: HTTP %d %+v", resp2.StatusCode, out2)
			}
			break
		}
	}

	// The dead replica's failures landed in the taxonomy (the /statz
	// payload carries the same map via ForwardingStats).
	fs := router.ForwardingStats()[a.ts.URL]
	if fs.ConnectRefused == 0 && fs.Timeouts == 0 && fs.Resets == 0 && fs.OtherErrors == 0 {
		t.Fatalf("dead replica's failures missing from the taxonomy: %+v", fs)
	}

	shutdownKilled(t, a)
}

// countingPayload counts its own MarshalJSON calls — the probe for the
// single-marshal invariant below.
type countingPayload struct{ calls *int32 }

func (p countingPayload) MarshalJSON() ([]byte, error) {
	atomic.AddInt32(p.calls, 1)
	return []byte(`{"n":42}`), nil
}

// TestPostJSONMarshalsOncePerForward pins that the request body is
// marshalled once, outside forward()'s retry loop: every retry re-reads
// the same byte slice (bytes.NewReader over the hoisted buffer), so a
// 3-attempt forward costs one JSON encode and sends identical bytes
// each time.
func TestPostJSONMarshalsOncePerForward(t *testing.T) {
	var calls int32
	var mu sync.Mutex
	var bodies [][]byte
	attempts := 0
	stub := stubReplica(func(w http.ResponseWriter, req *http.Request) {
		b, _ := io.ReadAll(req.Body)
		mu.Lock()
		bodies = append(bodies, b)
		attempts++
		n := attempts
		mu.Unlock()
		if n <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	defer stub.Close()

	router := newTestRouter(t, Options{Replicas: []string{stub.URL}, DataTimeout: 2 * time.Second})
	status, err := router.postJSON(context.Background(), stub.URL, "/event", countingPayload{&calls}, nil, router.dataOpts(3))
	if err != nil || status != http.StatusOK {
		t.Fatalf("postJSON: status %d, err %v", status, err)
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("MarshalJSON ran %d times across retries, want exactly 1", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 3 {
		t.Fatalf("stub saw %d attempts, want 3", len(bodies))
	}
	for i, b := range bodies {
		if !bytes.Equal(b, bodies[0]) {
			t.Fatalf("attempt %d sent different bytes: %q vs %q", i, b, bodies[0])
		}
	}
}
