package cluster

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if any test leaks a goroutine: router
// fan-out workers and reshard transfers must all be drained once the
// owning node shuts down.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
