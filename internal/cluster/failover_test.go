package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/replication"
	"repro/internal/server"
	"repro/internal/serving"
	"repro/internal/statestore"
	"repro/internal/tensor"
)

// wireHidden builds a wire-format hidden state with deterministic contents
// (the prober test writes states directly; no replay is involved).
func wireHidden(dim int, seed uint64, ts int64) []byte {
	rng := tensor.NewRNG(seed)
	h := tensor.NewVector(dim)
	rng.FillUniform(h, -1, 1)
	return serving.EncodeHidden(h, ts)
}

// shutdownKilled releases a replica whose listener was already torn down
// by kill: the server and store still need a graceful stop so leakcheck
// sees no stragglers.
func shutdownKilled(t *testing.T, r *replica) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.srv.Shutdown(ctx); err != nil {
		t.Fatalf("killed replica shutdown: %v", err)
	}
	if err := r.state.Close(); err != nil {
		t.Fatal(err)
	}
}

// followerReplica is a replica running in follower mode: its server mounts
// the /replicate admin endpoints over a started replication client.
type followerReplica struct {
	*replica
	fol *replication.Follower
}

// startFollower brings up a ppserve-shaped follower: -replica-of primary
// (or a bare -follow standby when primary is "").
func startFollower(t *testing.T, m *core.Model, primary string) *followerReplica {
	t.Helper()
	dir := t.TempDir()
	ss, err := statestore.Open(statestore.Options{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	fol := replication.NewFollower(ss, primary)
	srv := server.New(server.Options{
		Model: m, Store: ss, State: ss, Threshold: 0.5,
		Follower: fol,
		Lanes:    2, MaxBatch: 8, MaxWait: time.Millisecond, LaneDepth: 256,
	})
	fol.Start()
	return &followerReplica{
		replica: &replica{srv: srv, state: ss, ts: httptest.NewServer(srv.Handler()), dir: dir},
		fol:     fol,
	}
}

// waitReplicated polls until the follower has applied everything the
// primary has committed (replication lag zero).
func waitReplicated(t *testing.T, f *followerReplica, primary *replica) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := f.fol.Status(); st.Connected && st.LastSeq >= primary.state.WALSeq() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower never reached the primary's position: %+v vs wal-seq %d",
		f.fol.Status(), primary.state.WALSeq())
}

// kill severs a replica abruptly: the listener closes and every live
// connection (including the hijacked replication session) is torn down,
// so probes fail and the follower sees a dropped link — the in-process
// stand-in for kill -9 (the CI smoke covers the real signal).
func kill(r *replica) {
	r.ts.CloseClientConnections()
	r.ts.Close()
}

// TestRouterFailoverParity is the failover correctness gate: a primary
// dies at replication lag zero, the router promotes its follower under the
// write lock, and the replay finishes through the new topology — final
// states byte-identical to sequential replay, zero unexpected cold starts,
// zero errors after cutover.
func TestRouterFailoverParity(t *testing.T) {
	m := testModel(t, 16)
	log := server.ReplayLog(24, 5)
	seq := seqReplay(m, log)

	a, b := startReplica(t, m), startReplica(t, m)
	fa := startFollower(t, m, a.ts.URL)
	router, err := New(Options{
		Replicas:  []string{a.ts.URL, b.ts.URL},
		Followers: map[string]string{a.ts.URL: fa.ts.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(router)
	defer rts.Close()

	// Phase 1 flushes, so every state is committed; then drive lag to 0
	// before the kill — the promotion guarantee covers acknowledged
	// records, not the dead primary's unshipped window.
	half := len(log) / 2
	runHalf(t, rts.URL, log[:half], true)
	waitReplicated(t, fa, a)

	kill(a)
	if err := router.Failover(a.ts.URL); err != nil {
		t.Fatalf("failover: %v", err)
	}
	if got := router.Failovers(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	for _, u := range router.Ring().Replicas() {
		if u == a.ts.URL {
			t.Fatal("dead replica still in the ring")
		}
	}
	if st := fa.fol.Status(); !st.Promoted {
		t.Fatal("follower not promoted")
	}

	// Phase 2 runs entirely on the new topology and must be clean.
	runHalf(t, rts.URL, log[half:], true)

	keys, dg, err := server.Digest(rts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, wantKeys := serving.StateDigest(seq)
	if dg != wantDigest || keys != wantKeys {
		t.Fatalf("post-failover digest %s (%d keys), want %s (%d keys)", dg, keys, wantDigest, wantKeys)
	}
	assertClusterMatchesSequential(t, seq, unionStates(t, b, fa.replica))

	// Zero unexpected cold starts across the failover: the promoted
	// follower held every state the dead primary had acknowledged, so the
	// only misses are each user's first session.
	if want, got := int64(distinctUsers(log)), totalMisses(a, b, fa.replica); got != want {
		t.Fatalf("store misses %d, want %d — the failover caused cold starts", got, want)
	}

	b.stop(t)
	fa.stop(t)
	shutdownKilled(t, a)
}

// TestProberAutoFailoverAndRereplication covers the automatic path: the
// prober declares the dead primary, fails it over without operator action,
// and retargets a spare at the promoted replica to restore redundancy.
func TestProberAutoFailoverAndRereplication(t *testing.T) {
	m := testModel(t, 16)
	a, b := startReplica(t, m), startReplica(t, m)
	fa := startFollower(t, m, a.ts.URL)
	spare := startFollower(t, m, "") // standby: no primary until re-replication
	router, err := New(Options{
		Replicas:      []string{a.ts.URL, b.ts.URL},
		Followers:     map[string]string{a.ts.URL: fa.ts.URL},
		Spares:        []string{spare.ts.URL},
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  time.Second,
		ProbeFails:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.StopProber()

	for i := 0; i < 10; i++ {
		a.state.Put(fmt.Sprintf("h:%d", i), wireHidden(16, uint64(i)+1, int64(1000+i)))
	}
	waitReplicated(t, fa, a)
	router.StartProber()

	kill(a)
	deadline := time.Now().Add(10 * time.Second)
	for router.Failovers() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if router.Failovers() != 1 {
		t.Fatal("prober never failed the dead replica over")
	}

	// Re-replication: the spare must now be following the promoted
	// replica and converge to its states.
	for time.Now().Before(deadline) {
		st := spare.fol.Status()
		if st.Primary == fa.ts.URL && st.Connected && st.LastSeq >= fa.state.WALSeq() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := spare.fol.Status(); st.Primary != fa.ts.URL {
		t.Fatalf("spare follows %q, want the promoted replica %q", st.Primary, fa.ts.URL)
	}
	if got, want := len(spare.state.Keys()), len(fa.state.Keys()); got != want {
		t.Fatalf("spare replicated %d states, want %d", got, want)
	}

	router.StopProber()
	b.stop(t)
	fa.stop(t)
	spare.stop(t)
	shutdownKilled(t, a)
}

// TestHealthzBreakdown covers satellite observability: /healthz aggregates
// per-node probe results and flips to 503 with a JSON breakdown when a
// ring replica has no healthy owner for its arcs.
func TestHealthzBreakdown(t *testing.T) {
	m := testModel(t, 16)
	a, b := startReplica(t, m), startReplica(t, m)
	router, err := New(Options{
		Replicas:   []string{a.ts.URL, b.ts.URL},
		ProbeFails: 1, // prober disabled: /healthz probes synchronously
	})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(router)
	defer rts.Close()

	type healthDoc struct {
		Status   string          `json:"status"`
		Replicas []ReplicaHealth `json:"replicas"`
	}
	get := func() (int, healthDoc) {
		t.Helper()
		resp, err := http.Get(rts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc healthDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, doc
	}

	code, doc := get()
	if code != http.StatusOK || doc.Status != "ok" || len(doc.Replicas) != 2 {
		t.Fatalf("healthy cluster: HTTP %d, %+v", code, doc)
	}

	kill(b)
	code, doc = get()
	if code != http.StatusServiceUnavailable || doc.Status != "degraded" {
		t.Fatalf("dead replica: HTTP %d status %q, want 503 degraded", code, doc.Status)
	}
	var foundDead bool
	for _, n := range doc.Replicas {
		if n.URL == b.ts.URL && !n.Healthy && n.LastErr != "" {
			foundDead = true
		}
	}
	if !foundDead {
		t.Fatalf("breakdown does not name the dead replica: %+v", doc.Replicas)
	}

	a.stop(t)
	shutdownKilled(t, b)
}
