package cluster

import (
	"context"
	"fmt"
	"net/http"

	"repro/internal/server"
	"repro/internal/statestore"
)

// Drain-and-handoff: moving a key range between replicas without a single
// unexpected cold start. The router holds its write lock for the duration,
// so no event or predict can race the transfer:
//
//  1. flush every source replica (fires outstanding session timers and
//     drains its micro-batcher — afterwards the source is quiescent and its
//     store holds a consistent final state for every key it owns)
//  2. export each moved arc from its source (tagged stored bytes through
//     the statestore seam — no transcoding)
//  3. import the entries into the destination (verbatim install)
//  4. drop the moved arcs from the source (so cluster-wide digests count
//     every state exactly once)
//  5. swap the ring and release the lock
//
// A failure aborts with the old ring still in place. Steps 3-4 may then
// have left copies on the destination; the next successful reshard
// overwrites them (imports are idempotent absolute values), but the
// operator should re-run the reshard before trusting a cluster digest.

// Reshard cuts the cluster over to a new replica set, moving exactly the
// key ranges whose ring ownership changes. It returns the number of moved
// states.
func (r *Router) Reshard(newReplicas []string) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	newRing, err := NewRing(newReplicas, r.opts.VNodes)
	if err != nil {
		return 0, err
	}
	moves := MovedArcs(r.ring, newRing)
	moved := 0
	if len(moves) > 0 {
		sources := map[string]bool{}
		for _, m := range moves {
			sources[m.Src] = true
		}
		for src := range sources {
			if err := r.flushReplica(src); err != nil {
				return 0, fmt.Errorf("cluster: draining %s: %w", src, err)
			}
		}
		for _, m := range moves {
			n, err := r.transfer(m)
			if err != nil {
				return moved, fmt.Errorf("cluster: handoff %s -> %s: %w", m.Src, m.Dst, err)
			}
			moved += n
		}
	}
	r.ring = newRing
	r.reshards++
	r.moved += moved
	return moved, nil
}

// flushReplica drains one replica's pipeline (outstanding timers fire, the
// micro-batcher empties) so its store is consistent for export.
func (r *Router) flushReplica(url string) error {
	status, err := r.postJSON(context.Background(), url, "/flush", nil, nil, r.ctlOpts())
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("flush HTTP %d", status)
	}
	return nil
}

// transfer runs export → import → drop for one move.
func (r *Router) transfer(m Move) (int, error) {
	req := server.ArcsRequest{Arcs: m.Arcs}
	var payload server.TransferPayload
	status, err := r.postJSON(context.Background(), m.Src, "/export", req, &payload, r.ctlOpts())
	if err != nil {
		return 0, fmt.Errorf("export: %w", err)
	}
	if status != http.StatusOK {
		return 0, fmt.Errorf("export HTTP %d", status)
	}
	if err := r.importEntries(m.Dst, payload.Entries); err != nil {
		return 0, err
	}
	if len(payload.Entries) > 0 {
		status, err = r.postJSON(context.Background(), m.Src, "/drop", req, nil, r.ctlOpts())
		if err != nil {
			return 0, fmt.Errorf("drop: %w", err)
		}
		if status != http.StatusOK {
			return 0, fmt.Errorf("drop HTTP %d", status)
		}
	}
	return len(payload.Entries), nil
}

// importEntries installs entries on a replica in body-cap-sized chunks.
func (r *Router) importEntries(url string, entries []server.TransferEntry) error {
	for lo := 0; lo < len(entries); lo += r.opts.ImportChunk {
		hi := lo + r.opts.ImportChunk
		if hi > len(entries) {
			hi = len(entries)
		}
		status, err := r.postJSON(context.Background(), url, "/import", server.TransferPayload{Entries: entries[lo:hi]}, nil, r.ctlOpts())
		if err != nil {
			return fmt.Errorf("import: %w", err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("import HTTP %d", status)
		}
	}
	return nil
}

// RecoverFromDir rehomes a dead replica's states: it opens the replica's
// statestore directory directly (the replica shut down or crashed; a
// graceful shutdown snapshot — or WAL replay after a crash — holds every
// finalised state), routes each state to its owner under the new ring, and
// imports it there. The new replica set need not be "old minus dead": when
// it implies further ownership changes between *surviving* replicas (e.g.
// a fresh node replaces the dead one and takes arcs from survivors too),
// those ranges move through the ordinary live drain-and-handoff before the
// ring cuts over — otherwise they would silently cold-start on their new
// owner while the old one kept stale copies. Returns the number of moved
// states (rehomed + live transfers). dead is the dead replica's base URL;
// the directory must no longer be appended to.
func (r *Router) RecoverFromDir(dir, dead string, newReplicas []string) (moved int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, u := range newReplicas {
		if u == dead {
			return 0, fmt.Errorf("cluster: new replica set still contains the dead replica %s", dead)
		}
	}
	newRing, err := NewRing(newReplicas, r.opts.VNodes)
	if err != nil {
		return 0, err
	}

	// Live-to-live moves first: arcs the new ring takes from a *survivor*
	// drain through the normal protocol. Moves whose source is the dead
	// replica are covered by the directory export below (it routes every
	// key by its new-ring owner); moves TO the dead replica cannot exist
	// (it is not in the new ring).
	liveSources := map[string]bool{}
	var liveMoves []Move
	for _, m := range MovedArcs(r.ring, newRing) {
		if m.Src == dead {
			continue
		}
		liveMoves = append(liveMoves, m)
		liveSources[m.Src] = true
	}
	for src := range liveSources {
		if err := r.flushReplica(src); err != nil {
			return 0, fmt.Errorf("cluster: draining %s: %w", src, err)
		}
	}
	for _, m := range liveMoves {
		n, err := r.transfer(m)
		if err != nil {
			return moved, fmt.Errorf("cluster: handoff %s -> %s: %w", m.Src, m.Dst, err)
		}
		moved += n
	}

	ss, err := statestore.Open(statestore.Options{Dir: dir})
	if err != nil {
		return moved, fmt.Errorf("cluster: opening dead replica's store: %w", err)
	}
	// A close failure on the dead replica's store is surfaced (unless a
	// more specific error already is): it can mean the recovery source
	// directory is unhealthy, which the operator should know about even
	// though the exported entries have already landed on their new owners.
	defer func() {
		if cerr := ss.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("cluster: closing dead replica's store: %w", cerr)
		}
	}()
	perDst := map[string][]server.TransferEntry{}
	err = ss.Export(func(string) bool { return true }, func(key string, stored []byte) error {
		dst := newRing.OwnerOfKey(key)
		perDst[dst] = append(perDst[dst], server.TransferEntry{
			Key: key, Val: append([]byte(nil), stored...), Stored: true,
		})
		return nil
	})
	if err != nil {
		return moved, err
	}
	for dst, entries := range perDst {
		if err := r.importEntries(dst, entries); err != nil {
			return moved, fmt.Errorf("cluster: rehoming to %s: %w", dst, err)
		}
		moved += len(entries)
	}
	r.ring = newRing
	r.reshards++
	r.moved += moved
	return moved, nil
}
