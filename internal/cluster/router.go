package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/server"
	"repro/internal/serving"
	"repro/internal/wire"
)

// The router is the cluster's front door: it speaks the same HTTP API as a
// single ppserve replica — POST /event, /predict, /flush and GET /statz,
// /healthz, /digest — so load generators and clients are agnostic to
// whether they face one process or a cluster. Data-plane requests are
// forwarded to the owning replica (users consistent-hash to exactly one);
// control-plane requests fan out to every replica and aggregate.
//
// Ordering: the router preserves the serving tier's parity contract. A
// user's events arrive on one client connection in timestamp order, each
// POST is forwarded synchronously before its response is returned, and a
// user maps to one replica — so per-user event order is preserved
// end-to-end. A session's start+access pair rides one POST and is grouped
// into one sub-POST. Access events whose start is not in the same POST are
// broadcast: only the owning replica can have the session buffered, and the
// stream processor drops accesses for unknown sessions, so a broadcast is
// semantically exact (it merely advances the other replicas' virtual
// clocks, which global timestamp order advances anyway).
//
// Resharding holds the router's write lock, so clients observe a reshard as
// a pause, never as disorder: drain the sources (flush → quiesce), move
// the affected key ranges through the statestore export/import seam, drop
// them from the old owners, and only then swap the ring.

// Options configures a Router.
type Options struct {
	// Replicas are the ppserve replica base URLs (e.g. "http://127.0.0.1:8101").
	Replicas []string
	// VNodes is the per-replica virtual-node count (<=0 selects
	// DefaultVNodes). Every ring this router builds uses the same value.
	VNodes int
	// Client overrides the forwarding HTTP client (nil selects a pooled
	// default with no client-level timeout: deadlines are per-route via
	// DataTimeout/ControlTimeout, threaded through each request context).
	Client *http.Client
	// ImportChunk bounds entries per /import POST during a handoff (<=0
	// selects 512), keeping transfer bodies under the replicas' body cap.
	ImportChunk int

	// DataTimeout bounds one data-plane forward (/event, /predict;
	// <=0 selects 10s). Replacing the old client-wide 120s catch-all:
	// an event post should never wait two minutes on a wedged replica.
	DataTimeout time.Duration
	// ControlTimeout bounds one control-plane request — flush, digest,
	// statz, transfers, promote (<=0 selects 2m; replica flushes and
	// bootstrap imports legitimately take a while).
	ControlTimeout time.Duration
	// PredictRetries is the retry budget for one predict forward (<0
	// disables; 0 selects 2). Predicts are idempotent reads, so a
	// transient transport failure retries in place with jittered backoff;
	// event posts never retry here (the client owns event replay).
	PredictRetries int
	// BreakerFails is how many consecutive forward failures trip a
	// replica's circuit breaker (<=0 selects 5); BreakerCooldown is how
	// long it stays open before a half-open trial (<=0 selects 1s).
	BreakerFails    int
	BreakerCooldown time.Duration

	// WireAddrs maps a replica base URL to its binary-protocol listen
	// address (ppserve -wire-addr). Replicas listed here are forwarded
	// events and predicts over persistent wire connections (the splice
	// fast path); absent replicas — e.g. a follower promoted by failover
	// without a configured wire listener — fall back to HTTP forwarding.
	WireAddrs map[string]string
	// WireConns is the per-replica wire connection pool size (<=0 selects
	// 4). Inbound wire connections pin to one pooled connection, which is
	// what preserves per-user request order across the hop.
	WireConns int
	// WireWindow caps in-flight requests per pooled connection (<=0
	// selects 64).
	WireWindow int

	// Followers maps a ring replica's URL to the follower replicating it
	// (ppserve -replica-of). When the replica dies, Failover promotes the
	// follower into its arcs.
	Followers map[string]string
	// Spares are standby followers (ppserve -follow) available for
	// re-replication after a failover consumes a follower.
	Spares []string
	// ProbeInterval enables the health prober: every interval, each known
	// node is probed; ProbeFails consecutive failures (<=0 selects 3)
	// declare a ring replica dead and trigger its failover. 0 disables
	// the prober (then /healthz probes synchronously on demand).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (<=0 selects 1s).
	ProbeTimeout time.Duration
	ProbeFails   int
}

// Router implements http.Handler for the cluster API.
type Router struct {
	opts   Options
	client *http.Client

	// mu orders traffic against resharding and failover: handlers forward
	// under RLock, Reshard/RecoverFromDir/Failover hold the write lock
	// across drain, transfer and ring cutover. The ring pointer (and the
	// follower/spare topology) only change under the write lock.
	mu        sync.RWMutex
	ring      *Ring
	followers map[string]string
	spares    []string
	failovers int

	// Health tracker (health.go): per-node probe state under healthMu,
	// which is a leaf below mu.
	probeClient     *http.Client
	healthMu        sync.Mutex
	health          map[string]*healthState
	lastFailoverErr string
	proberOnce      sync.Once
	proberStop      sync.Once
	proberStopCh    chan struct{}
	proberWG        sync.WaitGroup
	rereplicateWG   sync.WaitGroup
	// probeNow nudges the prober out of its tick wait (a tripped breaker
	// should not wait out a probe interval to start the failover clock).
	probeNow chan struct{}

	// Forwarding taxonomy and breakers (forward.go), under the fwdMu
	// leaf lock.
	fwdMu            sync.Mutex
	fwd              map[string]*replicaFwd
	degradedPredicts atomic.Int64

	// Binary transport (wire.go): outbound per-replica client pools and
	// the inbound listener registry, under the wireMu leaf lock.
	wireMu        sync.Mutex
	wireAddrs     map[string]string
	wirePools     map[string]*wire.Client
	wireListeners map[net.Listener]struct{}
	wireConnsIn   map[net.Conn]struct{}
	wireClosed    atomic.Bool
	wireConnSeq   atomic.Uint64

	start    time.Time
	reshards int
	moved    int
	mux      *http.ServeMux
}

// ReplicaStatz is one replica's /statz snapshot, tagged with its URL.
type ReplicaStatz struct {
	URL   string       `json:"url"`
	Statz server.Statz `json:"statz"`
}

// Statz is the router's /statz payload: the aggregate (summed) view in the
// exact shape of a single replica's Statz — so single-process clients like
// ppload decode it unchanged — plus the per-replica breakdown, the
// forwarding-error taxonomy, and the degraded-predict count.
type Statz struct {
	server.Statz
	Replicas         []ReplicaStatz          `json:"replicas"`
	Reshards         int                     `json:"reshards"`
	Moved            int                     `json:"moved_states"`
	Failovers        int                     `json:"failovers"`
	DegradedPredicts int64                   `json:"degraded_predicts"`
	Forwarding       map[string]ForwardStats `json:"forwarding,omitempty"`
}

// New builds a router over the given replicas.
func New(opts Options) (*Router, error) {
	ring, err := NewRing(opts.Replicas, opts.VNodes)
	if err != nil {
		return nil, err
	}
	if opts.ImportChunk <= 0 {
		opts.ImportChunk = 512
	}
	if opts.DataTimeout <= 0 {
		opts.DataTimeout = 10 * time.Second
	}
	if opts.ControlTimeout <= 0 {
		opts.ControlTimeout = 2 * time.Minute
	}
	if opts.PredictRetries == 0 {
		opts.PredictRetries = 2
	}
	if opts.PredictRetries < 0 {
		opts.PredictRetries = 0
	}
	client := opts.Client
	if client == nil {
		// No client-level timeout: every forward carries its own per-route
		// context deadline (forward.go), so a long control-plane flush and a
		// short data-plane post stop sharing one catch-all budget. The fault
		// layer wraps the transport so chaos scenarios can shape this path.
		client = &http.Client{
			Transport: faults.WrapTransport("router.forward",
				&http.Transport{MaxIdleConnsPerHost: 64}),
		}
	}
	probeTimeout := opts.ProbeTimeout
	if probeTimeout <= 0 {
		probeTimeout = time.Second
	}
	// Wall-clock seam: start only feeds the /statz uptime gauge, never a
	// routing or replay decision.
	r := &Router{opts: opts, client: client, ring: ring, start: time.Now()} //pplint:allow virtualclock
	r.followers = make(map[string]string, len(opts.Followers))
	for primary, follower := range opts.Followers {
		r.followers[primary] = follower
	}
	r.spares = append([]string(nil), opts.Spares...)
	r.probeClient = &http.Client{
		Timeout:   probeTimeout,
		Transport: faults.WrapTransport("router.probe", nil),
	}
	r.health = make(map[string]*healthState)
	r.proberStopCh = make(chan struct{})
	r.probeNow = make(chan struct{}, 1)
	r.fwd = make(map[string]*replicaFwd)
	r.wireAddrs = make(map[string]string, len(opts.WireAddrs))
	for base, addr := range opts.WireAddrs {
		r.wireAddrs[strings.TrimRight(base, "/")] = addr
	}
	r.wirePools = make(map[string]*wire.Client)
	r.wireListeners = make(map[net.Listener]struct{})
	r.wireConnsIn = make(map[net.Conn]struct{})
	r.mux = http.NewServeMux()
	r.mux.HandleFunc("/event", r.handleEvent)
	r.mux.HandleFunc("/predict", r.handlePredict)
	r.mux.HandleFunc("/flush", r.handleFlush)
	r.mux.HandleFunc("/statz", r.handleStatz)
	r.mux.HandleFunc("/healthz", r.handleHealthz)
	r.mux.HandleFunc("/digest", r.handleDigest)
	r.mux.HandleFunc("/ring", r.handleRing)
	r.mux.HandleFunc("/admin/reshard", r.handleReshard)
	return r, nil
}

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) { r.mux.ServeHTTP(w, req) }

// Ring returns the current ring (immutable; safe to use after return).
func (r *Router) Ring() *Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// postJSON posts v to base+path through the hardened forward path and
// decodes the response into out (unless nil), returning the status code.
func (r *Router) postJSON(ctx context.Context, base, path string, v any, out any, o fwdOpts) (int, error) {
	var body []byte
	if v != nil {
		buf, err := json.Marshal(v)
		if err != nil {
			return 0, err
		}
		body = buf
	}
	resp, err := r.forward(ctx, http.MethodPost, base, path, body, o)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
		return resp.StatusCode, nil
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// getJSON fetches base+path through the forward path into out.
func (r *Router) getJSON(ctx context.Context, base, path string, out any, o fwdOpts) (int, error) {
	resp, err := r.forward(ctx, http.MethodGet, base, path, nil, o)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
		return resp.StatusCode, nil
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// ---- data plane ----

// handleEvent splits a post by owning replica (preserving in-post order)
// and forwards the sub-posts concurrently, waiting for every response
// before answering — which is what keeps per-user order intact across
// consecutive posts on one connection.
func (r *Router) handleEvent(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 8<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	var evs []server.Event
	if trimmed := bytes.TrimLeft(body, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '[' {
		err = json.Unmarshal(trimmed, &evs)
	} else {
		var ev server.Event
		err = json.Unmarshal(body, &ev)
		evs = []server.Event{ev}
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, "decoding events: "+err.Error())
		return
	}

	r.mu.RLock()
	ring := r.ring
	groups := map[string][]server.Event{}
	sessionOwner := map[string]string{}
	for _, ev := range evs {
		switch ev.Type {
		case "start":
			owner := ring.OwnerOfUser(ev.User)
			sessionOwner[ev.Session] = owner
			groups[owner] = append(groups[owner], ev)
		default:
			// Accesses ride the same POST as their start (the parity
			// contract); orphans broadcast — exact, because only the owner
			// can hold the session buffer.
			if owner, ok := sessionOwner[ev.Session]; ok {
				groups[owner] = append(groups[owner], ev)
			} else {
				for _, u := range ring.Replicas() {
					groups[u] = append(groups[u], ev)
				}
			}
		}
	}

	type result struct {
		status int
		err    error
	}
	results := make(chan result, len(groups))
	for url, group := range groups {
		go func(url string, group []server.Event) {
			// Events forward with the data-plane deadline and breaker but a
			// zero retry budget: replaying an event post is only safe when
			// the client re-sends the whole ordered post, so retries belong
			// to the load generator, not the router.
			status, err := r.postJSON(req.Context(), url, "/event", group, nil, r.dataOpts(0))
			results <- result{status, err}
		}(url, group)
	}
	worst := http.StatusAccepted
	var ferr error
	for range groups {
		// Collecting under r.mu.RLock is the drain mechanism: reshard
		// takes the write lock, so it cannot swap the ring while a POST
		// split by the old ring is still landing on replicas.
		res := <-results //pplint:allow lockcheck
		switch {
		case res.err != nil:
			worst, ferr = http.StatusBadGateway, res.err
		case res.status == http.StatusAccepted:
		case res.status == http.StatusTooManyRequests && worst == http.StatusAccepted:
			worst = res.status
		case res.status != http.StatusTooManyRequests:
			if worst == http.StatusAccepted || worst == http.StatusTooManyRequests {
				worst = res.status
			}
		}
	}
	r.mu.RUnlock()

	switch {
	case ferr != nil:
		writeErr(w, http.StatusBadGateway, "forwarding events: "+ferr.Error())
	case worst == http.StatusAccepted:
		writeJSON(w, http.StatusAccepted, map[string]int{"accepted": len(evs)})
	case worst == http.StatusTooManyRequests:
		writeErr(w, worst, "replica backlog full, event shed")
	default:
		writeErr(w, worst, fmt.Sprintf("replica rejected events (HTTP %d)", worst))
	}
}

// handlePredict forwards the prediction to the owning replica (with the
// per-route deadline and retry budget) and relays its response verbatim.
// When the owner is unreachable — transport failure, open breaker, or a
// 5xx after retries — it degrades instead of failing: the other ring
// replicas are tried in order, and the first 200 is relayed with the
// degraded flag set. The fallback replica has no state for this user, so
// its answer is the cold-start (h0) prediction — the paper's degradation
// contract: a usable answer from the prior beats an error page.
func (r *Router) handlePredict(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	var in server.PredictIn
	if err := json.Unmarshal(body, &in); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}

	ctx := req.Context()
	r.mu.RLock()
	ring := r.ring
	owner := ring.OwnerOfUser(in.User)
	// Forwarding under r.mu.RLock is deliberate: a reshard (write lock)
	// must not rehome this user while the predict is in flight on the
	// replica the old ring chose.
	resp, err := r.forward(ctx, http.MethodPost, owner, "/predict", body, r.dataOpts(r.opts.PredictRetries))
	if err == nil && resp.StatusCode < http.StatusInternalServerError {
		r.mu.RUnlock()
		defer resp.Body.Close()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	var out server.PredictOut
	degraded := false
	for _, u := range ring.Replicas() {
		if u == owner {
			continue
		}
		fresp, ferr := r.forward(ctx, http.MethodPost, u, "/predict", body, r.dataOpts(0))
		if ferr != nil {
			continue
		}
		if fresp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, fresp.Body)
			fresp.Body.Close()
			continue
		}
		derr := json.NewDecoder(fresp.Body).Decode(&out)
		fresp.Body.Close()
		if derr == nil {
			degraded = true
			break
		}
	}
	r.mu.RUnlock()
	if degraded {
		out.Degraded = true
		r.degradedPredicts.Add(1)
		writeJSON(w, http.StatusOK, out)
		return
	}
	if err != nil {
		writeErr(w, http.StatusBadGateway, "forwarding predict: "+err.Error())
		return
	}
	writeErr(w, http.StatusBadGateway, fmt.Sprintf("owner replied HTTP %d and no fallback replica answered", resp.StatusCode))
}

// ---- control plane ----

// eachReplica runs fn against every replica URL concurrently and collects
// the first error.
func eachReplica(urls []string, fn func(url string) error) error {
	errs := make(chan error, len(urls))
	for _, u := range urls {
		go func(u string) { errs <- fn(u) }(u)
	}
	var first error
	for range urls {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// handleFlush fans the flush to every replica and sums the results.
func (r *Router) handleFlush(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	r.mu.RLock()
	urls := r.ring.Replicas()
	var mu sync.Mutex
	var updates, pending int64
	err := eachReplica(urls, func(u string) error {
		var out struct {
			UpdatesRun int64 `json:"updates_run"`
			Pending    int64 `json:"pending"`
		}
		status, err := r.postJSON(req.Context(), u, "/flush", nil, &out, r.ctlOpts())
		if err != nil {
			return fmt.Errorf("%s: %w", u, err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("%s: flush HTTP %d", u, status)
		}
		mu.Lock()
		updates += out.UpdatesRun
		pending += out.Pending
		mu.Unlock()
		return nil
	})
	r.mu.RUnlock()
	if err != nil {
		writeErr(w, http.StatusBadGateway, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"updates_run": updates, "pending": pending})
}

// handleDigest aggregates the replicas' digests. StateDigest is additive
// over disjoint key sets, so the combination is independent of replica
// order and equals what a single process holding every state would report.
func (r *Router) handleDigest(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	r.mu.RLock()
	urls := r.ring.Replicas()
	var mu sync.Mutex
	keys := 0
	digests := make([]string, 0, len(urls))
	conflict := false
	err := eachReplica(urls, func(u string) error {
		resp, err := r.forward(req.Context(), http.MethodGet, u, "/digest", nil, r.ctlOpts())
		if err != nil {
			// Transport failure: the replica is unreachable, not busy —
			// surface 502, never the retryable 409.
			return fmt.Errorf("%s: %w", u, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			if resp.StatusCode == http.StatusConflict {
				mu.Lock()
				conflict = true
				mu.Unlock()
			}
			io.Copy(io.Discard, resp.Body)
			return fmt.Errorf("%s: digest HTTP %d", u, resp.StatusCode)
		}
		var out struct {
			Keys   int    `json:"keys"`
			Digest string `json:"digest"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return fmt.Errorf("%s: %w", u, err)
		}
		mu.Lock()
		keys += out.Keys
		digests = append(digests, out.Digest)
		mu.Unlock()
		return nil
	})
	r.mu.RUnlock()
	if err != nil {
		code := http.StatusBadGateway
		if conflict {
			// Only a genuine replica 409 (sessions pending — flush first)
			// maps back to 409.
			code = http.StatusConflict
		}
		writeErr(w, code, err.Error())
		return
	}
	combined, err := serving.CombineDigests(digests...)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"keys": keys, "digest": combined})
}

// handleHealthz aggregates per-node probe results: 200 with the breakdown
// while every arc has a healthy owner, 503 with the same breakdown once
// any ring replica is past the failure threshold. Without a running
// prober (ProbeInterval 0) it runs one synchronous probe round first, so
// the answer is always grounded in a real probe.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if r.opts.ProbeInterval <= 0 {
		r.probeOnce()
	}
	nodes, degraded := r.healthBreakdown()
	r.healthMu.Lock()
	lastErr := r.lastFailoverErr
	r.healthMu.Unlock()
	status := "ok"
	code := http.StatusOK
	if degraded {
		status = "degraded"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":            status,
		"replicas":          nodes,
		"failovers":         r.Failovers(),
		"last_failover_err": lastErr,
	})
}

// handleStatz sums the replicas' counters into one single-replica-shaped
// aggregate plus the per-replica breakdown.
func (r *Router) handleStatz(w http.ResponseWriter, req *http.Request) {
	r.mu.RLock()
	urls := r.ring.Replicas()
	reshards, moved, failovers := r.reshards, r.moved, r.failovers
	r.mu.RUnlock()
	var mu sync.Mutex
	out := Statz{Reshards: reshards, Moved: moved, Failovers: failovers}
	out.UptimeSec = time.Since(r.start).Seconds() //pplint:allow virtualclock (uptime gauge only)
	out.DegradedPredicts = r.degradedPredicts.Load()
	out.Forwarding = r.ForwardingStats()
	err := eachReplica(urls, func(u string) error {
		var st server.Statz
		status, err := r.getJSON(req.Context(), u, "/statz", &st, r.ctlOpts())
		if err != nil {
			return fmt.Errorf("%s: %w", u, err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("%s: statz HTTP %d", u, status)
		}
		mu.Lock()
		defer mu.Unlock()
		out.Replicas = append(out.Replicas, ReplicaStatz{URL: u, Statz: st})
		out.Events += st.Events
		out.EventsShed += st.EventsShed
		out.Predicts += st.Predicts
		out.PredictsShed += st.PredictsShed
		out.Precomputes += st.Precomputes
		out.ColdStarts += st.ColdStarts
		out.DecodeFailures += st.DecodeFailures
		out.UpdatesRun += st.UpdatesRun
		out.PendingSessions += st.PendingSessions
		out.Inflight += st.Inflight
		out.Batches += st.Batches
		out.Store.Keys += st.Store.Keys
		out.Store.Gets += st.Store.Gets
		out.Store.Puts += st.Store.Puts
		out.Store.Misses += st.Store.Misses
		out.Store.BytesRead += st.Store.BytesRead
		out.Store.BytesPut += st.Store.BytesPut
		out.Store.BytesStored += st.Store.BytesStored
		// Sequence numbers are per-replica positions, not volumes: the
		// aggregate carries the maximum (the breakdown has the rest).
		if st.Store.WALSeq > out.Store.WALSeq {
			out.Store.WALSeq = st.Store.WALSeq
		}
		if st.Store.SnapSeq > out.Store.SnapSeq {
			out.Store.SnapSeq = st.Store.SnapSeq
		}
		return nil
	})
	if err != nil {
		writeErr(w, http.StatusBadGateway, err.Error())
		return
	}
	if out.Batches > 0 {
		out.MeanBatch = float64(out.UpdatesRun) / float64(out.Batches)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleRing describes the current ring.
func (r *Router) handleRing(w http.ResponseWriter, req *http.Request) {
	r.mu.RLock()
	ring := r.ring
	r.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"replicas": ring.Replicas(),
		"vnodes":   ring.VNodes(),
	})
}

// handleReshard is the admin trigger: POST {"replicas": [...]} cuts the
// cluster over to the new replica set via drain-and-handoff.
func (r *Router) handleReshard(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var in struct {
		Replicas []string `json:"replicas"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20)).Decode(&in); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding reshard: "+err.Error())
		return
	}
	moved, err := r.Reshard(in.Replicas)
	if err != nil {
		writeErr(w, http.StatusBadGateway, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"replicas": in.Replicas, "moved": moved})
}
