package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"syscall"
	"time"
)

// The hardened forwarding path. Every router→replica request flows through
// forward(): a per-route deadline (derived from the client's own request
// context, so a disconnected client cancels the forward), a per-replica
// circuit breaker on the data plane, bounded jittered retries for
// idempotent requests, and a structured error taxonomy counted per
// replica. Event posts are never retried here — the load generator owns
// event retries, because a replayed event post is only safe when the
// client re-sends the whole ordered post — while predict forwards and
// control-plane fan-outs are idempotent and retry in place.
//
// The breaker exists to make a dead replica cheap before the prober
// declares it dead: after BreakerFails consecutive transport failures the
// replica's forwards fail fast (counted as breaker-open, no connection
// attempt), a probe round is nudged immediately, and after
// BreakerCooldown one trial request per cooldown is let through
// (half-open) until a success closes it again.

// ErrBreakerOpen fails a forward without a connection attempt because the
// target replica's breaker is open.
var ErrBreakerOpen = errors.New("cluster: replica breaker open")

// ForwardStats is one replica's forwarding taxonomy in /statz: every
// outcome a forward can have, so an operator can tell a refused connection
// (process down) from a timeout (stalled), a reset (died mid-request), a
// replica-side 5xx, and breaker fast-failures.
type ForwardStats struct {
	Attempts       int64 `json:"attempts"`
	Retries        int64 `json:"retries"`
	ConnectRefused int64 `json:"connect_refused,omitempty"`
	Timeouts       int64 `json:"timeouts,omitempty"`
	Resets         int64 `json:"resets,omitempty"`
	Server5xx      int64 `json:"server_5xx,omitempty"`
	BreakerOpen    int64 `json:"breaker_open,omitempty"`
	OtherErrors    int64 `json:"other_errors,omitempty"`
	BreakerTrips   int64 `json:"breaker_trips,omitempty"`
}

// replicaFwd is one replica's forwarding state: taxonomy counters plus the
// breaker, all under fwdMu (a leaf lock below mu and independent of
// healthMu).
type replicaFwd struct {
	stats       ForwardStats
	consecFails int
	open        bool
	halfOpen    bool // cooldown elapsed; one trial may pass
}

// fwdOpts shapes one forward: the per-route deadline, how many retries the
// route allows (0 for events), and whether the data-plane breaker gates it
// (control-plane requests — promote, reshard transfers — must reach a
// replica the data plane has written off).
type fwdOpts struct {
	timeout time.Duration
	retries int
	breaker bool
}

func (r *Router) dataOpts(retries int) fwdOpts {
	return fwdOpts{timeout: r.opts.DataTimeout, retries: retries, breaker: true}
}

func (r *Router) ctlOpts() fwdOpts {
	return fwdOpts{timeout: r.opts.ControlTimeout}
}

// replicaFwdState returns (creating if needed) the per-replica record.
// Callers must hold fwdMu.
func (r *Router) replicaFwdState(base string) *replicaFwd {
	s := r.fwd[base]
	if s == nil {
		s = &replicaFwd{}
		r.fwd[base] = s
	}
	return s
}

// classifyErr buckets one transport error for the taxonomy.
func classifyErr(err error) string {
	var nerr net.Error
	switch {
	case errors.Is(err, syscall.ECONNREFUSED):
		return "connect-refused"
	case errors.Is(err, context.DeadlineExceeded),
		errors.As(err, &nerr) && nerr.Timeout():
		return "timeout"
	case errors.Is(err, syscall.ECONNRESET), errors.Is(err, io.ErrUnexpectedEOF):
		return "reset"
	default:
		return "other"
	}
}

// noteForward bumps one taxonomy counter for a replica.
func (r *Router) noteForward(base, kind string) {
	r.fwdMu.Lock()
	defer r.fwdMu.Unlock()
	s := r.replicaFwdState(base)
	switch kind {
	case "attempt":
		s.stats.Attempts++
	case "retry":
		s.stats.Retries++
	case "connect-refused":
		s.stats.ConnectRefused++
	case "timeout":
		s.stats.Timeouts++
	case "reset":
		s.stats.Resets++
	case "server-5xx":
		s.stats.Server5xx++
	case "breaker-open":
		s.stats.BreakerOpen++
	default:
		s.stats.OtherErrors++
	}
}

// breakerAllow reports whether a data-plane forward to base may proceed:
// true while closed, and exactly one trial per cooldown while half-open.
func (r *Router) breakerAllow(base string) bool {
	r.fwdMu.Lock()
	defer r.fwdMu.Unlock()
	s := r.replicaFwdState(base)
	if !s.open {
		return true
	}
	if s.halfOpen {
		s.halfOpen = false
		return true
	}
	return false
}

// breakerResult feeds one forward outcome into the breaker. A success
// closes it; BreakerFails consecutive failures trip it (nudging the
// prober, so failover detection does not wait out a full probe interval),
// and a failed half-open trial re-arms the cooldown.
func (r *Router) breakerResult(base string, ok bool) {
	r.fwdMu.Lock()
	defer r.fwdMu.Unlock()
	s := r.replicaFwdState(base)
	if ok {
		s.consecFails = 0
		s.open = false
		s.halfOpen = false
		return
	}
	s.consecFails++
	switch {
	case s.open:
		// A failed trial: stay open, wait out another cooldown.
		r.scheduleHalfOpen(s)
	case s.consecFails >= r.breakerFails():
		s.open = true
		s.stats.BreakerTrips++
		r.scheduleHalfOpen(s)
		select {
		case r.probeNow <- struct{}{}:
		default:
		}
	}
}

// scheduleHalfOpen lets one trial through after the cooldown. AfterFunc
// (not a wall-clock read) keeps the cluster package off the real clock.
// Callers hold fwdMu; the callback re-acquires it.
func (r *Router) scheduleHalfOpen(s *replicaFwd) {
	time.AfterFunc(r.breakerCooldown(), func() {
		r.fwdMu.Lock()
		if s.open {
			s.halfOpen = true
		}
		r.fwdMu.Unlock()
	})
}

func (r *Router) breakerFails() int {
	if r.opts.BreakerFails <= 0 {
		return 5
	}
	return r.opts.BreakerFails
}

func (r *Router) breakerCooldown() time.Duration {
	if r.opts.BreakerCooldown <= 0 {
		return time.Second
	}
	return r.opts.BreakerCooldown
}

// ForwardingStats snapshots the per-replica taxonomy for /statz.
func (r *Router) ForwardingStats() map[string]ForwardStats {
	r.fwdMu.Lock()
	defer r.fwdMu.Unlock()
	out := make(map[string]ForwardStats, len(r.fwd))
	for base, s := range r.fwd {
		out[base] = s.stats
	}
	return out
}

// DegradedPredicts returns how many predictions this router answered from
// a non-owning replica.
func (r *Router) DegradedPredicts() int64 { return r.degradedPredicts.Load() }

// cancelBody ties a response body to its request's context cancel func,
// so the per-forward context lives exactly as long as the body is read.
type cancelBody struct {
	rc     io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Read(p []byte) (int, error) { return b.rc.Read(p) }
func (b *cancelBody) Close() error {
	b.cancel()
	return b.rc.Close()
}

// forward runs one request against one replica under the route's deadline,
// the replica's breaker, and the route's retry budget. It returns a
// response for ANY received status — callers relay replica statuses (429
// shed, 503 draining) unchanged — and an error only when no response was
// received (transport failure, breaker open, context cancelled). A 5xx
// counts as a failure for the breaker and taxonomy, and is retried while
// the budget lasts, but the final 5xx is returned as a response so its
// status reaches the client.
func (r *Router) forward(ctx context.Context, method, base, path string, body []byte, o fwdOpts) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if o.breaker && !r.breakerAllow(base) {
			r.noteForward(base, "breaker-open")
			return nil, fmt.Errorf("%w: %s", ErrBreakerOpen, base)
		}
		r.noteForward(base, "attempt")
		fctx, cancel := context.WithTimeout(ctx, o.timeout)
		var reqBody io.Reader
		if body != nil {
			reqBody = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(fctx, method, base+path, reqBody)
		if err != nil {
			cancel()
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := r.client.Do(req)
		if err == nil && resp.StatusCode < http.StatusInternalServerError {
			if o.breaker {
				r.breakerResult(base, true)
			}
			resp.Body = &cancelBody{rc: resp.Body, cancel: cancel}
			return resp, nil
		}
		if err != nil {
			r.noteForward(base, classifyErr(err))
			lastErr = err
		} else {
			r.noteForward(base, "server-5xx")
			lastErr = fmt.Errorf("%s%s: HTTP %d", base, path, resp.StatusCode)
		}
		if o.breaker {
			r.breakerResult(base, false)
		}
		if attempt >= o.retries || ctx.Err() != nil {
			if err != nil {
				cancel()
				return nil, lastErr
			}
			resp.Body = &cancelBody{rc: resp.Body, cancel: cancel}
			return resp, nil
		}
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
		r.noteForward(base, "retry")
		// Jittered linear backoff keeps a retry burst from landing on a
		// recovering replica in lockstep with every other retrier.
		sleep := time.Duration(attempt+1)*5*time.Millisecond +
			time.Duration(rand.Int63n(int64(5*time.Millisecond)))
		t := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}
