package cluster

import (
	"fmt"
	"testing"

	"repro/internal/server"
	"repro/internal/serving"
)

func mustRing(t *testing.T, replicas []string, vnodes int) *Ring {
	t.Helper()
	r, err := NewRing(replicas, vnodes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Fatal("empty replica set must error")
	}
	if _, err := NewRing([]string{"a", "a"}, 8); err == nil {
		t.Fatal("duplicate replica must error")
	}
	if _, err := NewRing([]string{"a", ""}, 8); err == nil {
		t.Fatal("empty URL must error")
	}
}

// TestRingBalanceAndDeterminism pins that ownership is deterministic,
// independent of declaration order, and roughly balanced at the default
// virtual-node count.
func TestRingBalanceAndDeterminism(t *testing.T) {
	urls := []string{"http://a", "http://b", "http://c"}
	r1 := mustRing(t, urls, 0)
	r2 := mustRing(t, []string{urls[2], urls[0], urls[1]}, 0)
	counts := map[string]int{}
	const users = 30000
	for u := 0; u < users; u++ {
		o1, o2 := r1.OwnerOfUser(u), r2.OwnerOfUser(u)
		if o1 != o2 {
			t.Fatalf("user %d: owner depends on declaration order (%s vs %s)", u, o1, o2)
		}
		counts[o1]++
	}
	for _, u := range urls {
		if frac := float64(counts[u]) / users; frac < 0.15 || frac > 0.55 {
			t.Fatalf("replica %s owns %.1f%% of users — ring badly unbalanced (%v)", u, 100*frac, counts)
		}
	}
	// A user's ring position is the hash of their hidden-state key: routing
	// and key-range matching must agree.
	for u := 0; u < 100; u++ {
		if r1.OwnerOfUser(u) != r1.OwnerOfKey(serving.HiddenKey(u)) {
			t.Fatalf("user %d: OwnerOfUser and OwnerOfKey disagree", u)
		}
	}
}

// TestRingConsistency pins the consistent-hashing property: removing one
// replica only rehomes keys that replica owned — every other key keeps its
// owner.
func TestRingConsistency(t *testing.T) {
	old := mustRing(t, []string{"http://a", "http://b", "http://c"}, 0)
	next := mustRing(t, []string{"http://a", "http://b"}, 0)
	movedAway := 0
	for u := 0; u < 20000; u++ {
		was, is := old.OwnerOfUser(u), next.OwnerOfUser(u)
		if was == "http://c" {
			movedAway++
			continue
		}
		if was != is {
			t.Fatalf("user %d moved %s -> %s though its replica survived", u, was, is)
		}
	}
	if movedAway == 0 {
		t.Fatal("removed replica owned nothing — test is vacuous")
	}
}

// TestMovedArcsExactlyCoverOwnershipChanges is the property the handoff
// protocol rests on: a key changes owner between two rings iff its hash
// falls inside exactly the arcs of the (oldOwner -> newOwner) move. Checked
// by sampling the key space densely across both directions of a reshard
// (replica removed, replica added).
func TestMovedArcsExactlyCoverOwnershipChanges(t *testing.T) {
	three := []string{"http://a", "http://b", "http://c"}
	two := []string{"http://a", "http://b"}
	four := []string{"http://a", "http://b", "http://c", "http://d"}
	for _, tc := range []struct {
		name     string
		from, to []string
	}{
		{"remove", three, two},
		{"add", three, four},
		{"same", three, three},
	} {
		t.Run(tc.name, func(t *testing.T) {
			old := mustRing(t, tc.from, 16)
			next := mustRing(t, tc.to, 16)
			moves := MovedArcs(old, next)
			if tc.name == "same" {
				if len(moves) != 0 {
					t.Fatalf("identical rings produced %d moves", len(moves))
				}
				return
			}
			arcsBySrcDst := map[[2]string][]server.Arc{}
			for _, m := range moves {
				arcsBySrcDst[[2]string{m.Src, m.Dst}] = append(arcsBySrcDst[[2]string{m.Src, m.Dst}], m.Arcs...)
			}
			checked, moved := 0, 0
			for u := 0; u < 50000; u++ {
				key := fmt.Sprintf("h:%d", u)
				pos := serving.KeyHash(key)
				was, is := old.OwnerOfKey(key), next.OwnerOfKey(key)
				checked++
				if was != is {
					moved++
					if !server.ArcsContain(arcsBySrcDst[[2]string{was, is}], pos) {
						t.Fatalf("key %s moved %s->%s but no arc covers pos %d", key, was, is, pos)
					}
				}
				// ...and no move's arcs may cover a key it doesn't move.
				for sd, arcs := range arcsBySrcDst {
					if server.ArcsContain(arcs, pos) && (sd[0] != was || sd[1] != is) {
						t.Fatalf("key %s (owner %s->%s) wrongly covered by move %v", key, was, is, sd)
					}
				}
			}
			if moved == 0 {
				t.Fatalf("reshard moved nothing across %d sampled keys", checked)
			}
		})
	}
}
