package baselines

import (
	"math"

	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// LogisticRegression is the §5.3 baseline: a linear model over the sparse
// engineered feature space (one-hot context, one-hot bucketized elapsed
// times, aggregation counts). The paper trains it with scikit-learn's saga
// solver; saga and mini-batch Adam converge to the same optimum of this
// convex objective, so Adam is used here to stay within the standard
// library.
type LogisticRegression struct {
	// Dim is the feature-space size.
	Dim int
	// L2 is the ridge penalty; scikit-learn's default C=1 corresponds to
	// λ = 1/n, approximated here as a small constant.
	L2 float64
	// Epochs and BatchSize control the Adam loop.
	Epochs    int
	BatchSize int
	LR        float64
	Seed      uint64

	W    tensor.Vector
	Bias float64
}

// NewLogisticRegression returns a model for the given feature dimension
// with training defaults that converge on all three datasets.
func NewLogisticRegression(dim int) *LogisticRegression {
	return &LogisticRegression{
		Dim:       dim,
		L2:        1e-6,
		Epochs:    4,
		BatchSize: 256,
		LR:        0.05,
		Seed:      1,
	}
}

// Fit trains on sparse examples with binary labels.
func (m *LogisticRegression) Fit(xs []features.SparseVec, ys []bool) {
	if len(xs) != len(ys) {
		panic("baselines: LogisticRegression.Fit: length mismatch")
	}
	m.W = tensor.NewVector(m.Dim)
	m.Bias = 0
	if len(xs) == 0 {
		return
	}
	// Adam state for the dense weight vector plus bias.
	mW := tensor.NewVector(m.Dim)
	vW := tensor.NewVector(m.Dim)
	var mB, vB float64
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	t := 0
	grad := tensor.NewVector(m.Dim)
	touched := make([]int32, 0, 1024)

	rng := tensor.NewRNG(m.Seed)
	for epoch := 0; epoch < m.Epochs; epoch++ {
		perm := rng.Perm(len(xs))
		for start := 0; start < len(perm); start += m.BatchSize {
			end := start + m.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			batch := perm[start:end]
			// Accumulate sparse gradient.
			touched = touched[:0]
			var gBias float64
			for _, i := range batch {
				x := &xs[i]
				logit := m.Bias + x.Dot(m.W)
				p := nn.Sigmoid(logit)
				y := 0.0
				if ys[i] {
					y = 1
				}
				g := (p - y) / float64(len(batch))
				for k, idx := range x.Idx {
					if grad[idx] == 0 {
						touched = append(touched, idx)
					}
					grad[idx] += g * x.Val[k]
				}
				gBias += g
			}
			// Adam update on touched coordinates (lazy update keeps the
			// step sparse; L2 applies only to touched weights, a standard
			// sparse-training approximation).
			t++
			bc1 := 1 - math.Pow(beta1, float64(t))
			bc2 := 1 - math.Pow(beta2, float64(t))
			for _, idx := range touched {
				g := grad[idx] + m.L2*m.W[idx]
				mW[idx] = beta1*mW[idx] + (1-beta1)*g
				vW[idx] = beta2*vW[idx] + (1-beta2)*g*g
				m.W[idx] -= m.LR * (mW[idx] / bc1) / (math.Sqrt(vW[idx]/bc2) + eps)
				grad[idx] = 0
			}
			mB = beta1*mB + (1-beta1)*gBias
			vB = beta2*vB + (1-beta2)*gBias*gBias
			m.Bias -= m.LR * (mB / bc1) / (math.Sqrt(vB/bc2) + eps)
		}
	}
}

// Predict returns P(access) for one sparse feature vector.
func (m *LogisticRegression) Predict(x *features.SparseVec) float64 {
	return nn.Sigmoid(m.Bias + x.Dot(m.W))
}

// PredictAll returns predictions for a batch.
func (m *LogisticRegression) PredictAll(xs []features.SparseVec) []float64 {
	out := make([]float64, len(xs))
	for i := range xs {
		out[i] = m.Predict(&xs[i])
	}
	return out
}
