package baselines

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/metrics"
	"repro/internal/synth"
	"repro/internal/tensor"
)

func TestPercentagePredictions(t *testing.T) {
	m := &PercentageModel{Alpha: 0.1}
	var st PercentageState
	// First prediction: α/1.
	if p := m.Predict(st); math.Abs(p-0.1) > 1e-12 {
		t.Fatalf("cold prediction: %v", p)
	}
	st.Update(true)
	if p := m.Predict(st); math.Abs(p-(0.1+1)/2) > 1e-12 {
		t.Fatalf("after one access: %v", p)
	}
	st.Update(false)
	st.Update(false)
	if p := m.Predict(st); math.Abs(p-(0.1+1)/4) > 1e-12 {
		t.Fatalf("after 3 events: %v", p)
	}
}

func TestPercentageFitAlpha(t *testing.T) {
	cfg := synth.DefaultMobileTab()
	cfg.Users = 200
	d := synth.GenerateMobileTab(cfg)
	m := &PercentageModel{}
	m.Fit(d)
	if math.Abs(m.Alpha-d.PositiveRate()) > 1e-12 {
		t.Fatalf("Alpha must equal the global positive rate")
	}

	// Degenerate data keeps α in (0,1).
	empty := &dataset.Dataset{Schema: d.Schema, Start: d.Start, End: d.End}
	m2 := &PercentageModel{}
	m2.Fit(empty)
	if m2.Alpha <= 0 || m2.Alpha >= 1 {
		t.Fatalf("degenerate alpha: %v", m2.Alpha)
	}
}

func TestPercentageEvaluateFiltersAndWarms(t *testing.T) {
	schema := synth.MobileTabSchema()
	d := &dataset.Dataset{Schema: schema, Start: 0, End: 30 * dataset.Day}
	u := &dataset.User{ID: 0}
	// 10 early accesses, then 5 late non-accesses.
	for i := 0; i < 10; i++ {
		u.Sessions = append(u.Sessions, dataset.Session{Timestamp: int64(i) * 1000, Access: true, Cat: []int{0, 0}})
	}
	for i := 0; i < 5; i++ {
		u.Sessions = append(u.Sessions, dataset.Session{Timestamp: 29*dataset.Day + int64(i)*1000, Access: false, Cat: []int{0, 0}})
	}
	d.Users = []*dataset.User{u}
	m := &PercentageModel{Alpha: 0.5}
	scores, labels := m.Evaluate(d, 29*dataset.Day)
	if len(scores) != 5 {
		t.Fatalf("filtered count: %d", len(scores))
	}
	// First late prediction must reflect the 10 warm-up accesses.
	if scores[0] < 0.9 {
		t.Fatalf("warm-up ignored: %v", scores[0])
	}
	for _, l := range labels {
		if l {
			t.Fatalf("labels should all be false")
		}
	}
}

func TestPercentageOnTimeshiftUsesWindows(t *testing.T) {
	cfg := synth.DefaultTimeshift()
	cfg.Users = 100
	d := synth.GenerateTimeshift(cfg)
	m := &PercentageModel{}
	m.Fit(d)
	scores, labels := m.Evaluate(d, d.CutoffForLastDays(7))
	if len(scores) == 0 || len(scores) != len(labels) {
		t.Fatalf("no window predictions")
	}
	// Roughly one window per user per day over 7 days.
	if len(scores) < 500 || len(scores) > 800 {
		t.Fatalf("window prediction count: %d", len(scores))
	}
}

func TestPercentageBeatsCoinFlipOnSynthetic(t *testing.T) {
	cfg := synth.DefaultMobileTab()
	cfg.Users = 300
	d := synth.GenerateMobileTab(cfg)
	m := &PercentageModel{}
	m.Fit(d)
	scores, labels := m.Evaluate(d, d.CutoffForLastDays(7))
	auc := metrics.PRAUC(scores, labels)
	base := d.PositiveRate()
	if auc < base*1.5 {
		t.Fatalf("percentage model should beat the base rate: AUC %v, base %v", auc, base)
	}
}

func makeBlobs(n, dim int, seed uint64) ([]features.SparseVec, []bool) {
	// Linearly separable-ish sparse data: label depends on two indicator
	// features plus noise.
	rng := tensor.NewRNG(seed)
	xs := make([]features.SparseVec, n)
	ys := make([]bool, n)
	for i := range xs {
		a := rng.Intn(dim / 2)
		b := dim/2 + rng.Intn(dim/2)
		xs[i].Append(a, 1)
		xs[i].Append(b, 1)
		logit := -1.0
		if a%3 == 0 {
			logit += 2.5
		}
		if b%5 == 0 {
			logit += 1.5
		}
		ys[i] = rng.Bernoulli(1 / (1 + math.Exp(-logit)))
	}
	return xs, ys
}

func TestLogisticRegressionLearns(t *testing.T) {
	xs, ys := makeBlobs(6000, 40, 1)
	m := NewLogisticRegression(40)
	m.Fit(xs, ys)
	preds := m.PredictAll(xs)
	ll := metrics.LogLoss(preds, ys)

	// Compare against the best constant predictor.
	pos := 0
	for _, y := range ys {
		if y {
			pos++
		}
	}
	rate := float64(pos) / float64(len(ys))
	constLL := 0.0
	for _, y := range ys {
		if y {
			constLL -= math.Log(rate)
		} else {
			constLL -= math.Log(1 - rate)
		}
	}
	constLL /= float64(len(ys))
	if ll >= constLL-0.02 {
		t.Fatalf("LR failed to beat constant: %v vs %v", ll, constLL)
	}
}

func TestLogisticRegressionCalibrated(t *testing.T) {
	// Predicted mean must track the empirical positive rate.
	xs, ys := makeBlobs(6000, 40, 2)
	m := NewLogisticRegression(40)
	m.Fit(xs, ys)
	preds := m.PredictAll(xs)
	pos := 0
	for _, y := range ys {
		if y {
			pos++
		}
	}
	rate := float64(pos) / float64(len(ys))
	if math.Abs(metrics.Mean(preds)-rate) > 0.03 {
		t.Fatalf("calibration off: mean pred %v, rate %v", metrics.Mean(preds), rate)
	}
}

func TestLogisticRegressionDeterministic(t *testing.T) {
	xs, ys := makeBlobs(1000, 20, 3)
	m1 := NewLogisticRegression(20)
	m1.Fit(xs, ys)
	m2 := NewLogisticRegression(20)
	m2.Fit(xs, ys)
	for i := range m1.W {
		if m1.W[i] != m2.W[i] {
			t.Fatalf("training must be deterministic")
		}
	}
}

func TestLogisticRegressionEmptyFit(t *testing.T) {
	m := NewLogisticRegression(10)
	m.Fit(nil, nil)
	var x features.SparseVec
	x.Append(3, 1)
	if p := m.Predict(&x); p != 0.5 {
		t.Fatalf("untrained model must predict 0.5: %v", p)
	}
}

func TestLogisticRegressionMismatchPanics(t *testing.T) {
	m := NewLogisticRegression(10)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	m.Fit(make([]features.SparseVec, 2), make([]bool, 3))
}

func TestLRBeatsPercentageOnContextualData(t *testing.T) {
	// End-to-end sanity on synthetic MobileTab: LR with engineered
	// features must beat the percentage model (the paper's Table 3
	// ordering: %Based < LR).
	cfg := synth.DefaultMobileTab()
	cfg.Users = 300
	d := synth.GenerateMobileTab(cfg)
	split := dataset.SplitUsers(d, 0.3, 5)

	pm := &PercentageModel{}
	pm.Fit(split.Train)
	pmScores, pmLabels := pm.Evaluate(split.Test, d.CutoffForLastDays(7))

	b := features.NewBuilder(d.Schema)
	b.MinTs = d.CutoffForLastDays(7)
	var trainX []features.SparseVec
	var trainY []bool
	for _, exs := range b.BuildDataset(split.Train) {
		for _, ex := range exs {
			trainX = append(trainX, ex.Sparse)
			trainY = append(trainY, ex.Label)
		}
	}
	lr := NewLogisticRegression(b.SparseDim())
	lr.Fit(trainX, trainY)

	var testX []features.SparseVec
	var testY []bool
	for _, exs := range b.BuildDataset(split.Test) {
		for _, ex := range exs {
			testX = append(testX, ex.Sparse)
			testY = append(testY, ex.Label)
		}
	}
	lrScores := lr.PredictAll(testX)

	pmAUC := metrics.PRAUC(pmScores, pmLabels)
	lrAUC := metrics.PRAUC(lrScores, testY)
	if lrAUC <= pmAUC {
		t.Fatalf("LR (%v) should beat percentage model (%v)", lrAUC, pmAUC)
	}
}
