// Package baselines implements the paper's traditional comparison models:
// the percentage-based model (§5.1) and logistic regression over the
// engineered feature space (§5.3). The GBDT baseline (§5.4) lives in
// internal/gbdt.
package baselines

import (
	"repro/internal/dataset"
)

// PercentageModel is the §5.1 baseline: the predicted probability is the
// user's historical access percentage, seeded with the global average
// access percentage α so new users start at the population prior:
//
//	P(A_n) = (α + Σ A_i) / n
//
// For timeshift the average runs over past peak windows instead of
// sessions.
type PercentageModel struct {
	// Alpha is the smoothing prior in (0, 1); Fit sets it to the global
	// positive rate of the training data.
	Alpha float64
}

// Fit estimates α from the training dataset's global positive rate.
func (m *PercentageModel) Fit(train *dataset.Dataset) {
	m.Alpha = train.PositiveRate()
	if m.Alpha <= 0 {
		m.Alpha = 1e-3 // degenerate training data; keep predictions proper
	}
	if m.Alpha >= 1 {
		m.Alpha = 1 - 1e-3
	}
}

// PercentageState is the per-user streaming state: counts only — the §5.1
// model needs nothing else, which is why the paper calls it a near-
// universal zero-training baseline (§10.1).
type PercentageState struct {
	Accesses int
	Events   int
}

// Predict returns the access probability for the user's next event.
func (m *PercentageModel) Predict(st PercentageState) float64 {
	return (m.Alpha + float64(st.Accesses)) / float64(st.Events+1)
}

// Update folds one observed label into the state.
func (st *PercentageState) Update(access bool) {
	st.Events++
	if access {
		st.Accesses++
	}
}

// EvaluateSessions replays each user and returns the model's predictions
// for sessions at/after minTs, with matching labels. History before minTs
// warms the per-user counters. A session's outcome becomes visible to the
// counters only after its window closes (the same δ = session length + ε
// that delays the RNN's hidden updates, §6.1).
func (m *PercentageModel) EvaluateSessions(d *dataset.Dataset, minTs int64) (scores []float64, labels []bool) {
	delay := d.Schema.SessionLength + 60
	for _, u := range d.Users {
		var st PercentageState
		pending := 0
		for _, s := range u.Sessions {
			for pending < len(u.Sessions) && u.Sessions[pending].Timestamp < s.Timestamp-delay {
				st.Update(u.Sessions[pending].Access)
				pending++
			}
			if s.Timestamp >= minTs {
				scores = append(scores, m.Predict(st))
				labels = append(labels, s.Access)
			}
		}
	}
	return scores, labels
}

// EvaluateWindows is the timeshift variant: one prediction per peak window,
// averaging over past windows (§5.1's PA formulation).
func (m *PercentageModel) EvaluateWindows(d *dataset.Dataset, minTs int64) (scores []float64, labels []bool) {
	for _, u := range d.Users {
		var st PercentageState
		for _, w := range u.Windows {
			if w.Start >= minTs {
				scores = append(scores, m.Predict(st))
				labels = append(labels, w.Accessed)
			}
			st.Update(w.Accessed)
		}
	}
	return scores, labels
}

// Evaluate dispatches to sessions or windows according to the schema.
func (m *PercentageModel) Evaluate(d *dataset.Dataset, minTs int64) (scores []float64, labels []bool) {
	if d.Schema.HasPeakWindows {
		return m.EvaluateWindows(d, minTs)
	}
	return m.EvaluateSessions(d, minTs)
}
