package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/tensor"
)

func TestMinimalModelDims(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HiddenDim = 8
	cfg.Minimal = true
	m := tinyModel(cfg)
	if m.UpdateDim() != 1+features.NumTimeBuckets {
		t.Fatalf("minimal UpdateDim: %d", m.UpdateDim())
	}
	if m.PredictDim() != features.NumTimeBuckets {
		t.Fatalf("minimal PredictDim: %d", m.PredictDim())
	}
	// Inputs ignore context entirely.
	in := m.BuildUpdateInput(synth.DefaultStart, []int{2}, true, 3600, nil)
	if in.Sum() != 2 { // access flag + T one-hot
		t.Fatalf("minimal update input: %v ones", in.Sum())
	}
	f := m.BuildPredictInput(synth.DefaultStart, []int{2}, 60, nil)
	if f.Sum() != 1 {
		t.Fatalf("minimal predict input: %v ones", f.Sum())
	}
}

func TestMinimalModelCrossSchema(t *testing.T) {
	// A minimal model trained against one schema must evaluate cleanly on
	// a dataset with a different schema (the §10.1 reusable-model point).
	cfg := DefaultConfig()
	cfg.HiddenDim = 8
	cfg.MLPHidden = 8
	cfg.Minimal = true
	m := New(synth.MobileTabSchema(), cfg)

	mpuCfg := synth.DefaultMPU()
	mpuCfg.Users = 5
	mpuCfg.MeanEventsPerDay = 10
	mpu := synth.GenerateMPU(mpuCfg)
	scores, labels := m.EvaluateSessions(mpu, 0)
	if len(scores) == 0 || len(scores) != len(labels) {
		t.Fatalf("cross-schema evaluation failed")
	}
	for _, s := range scores {
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("bad score %v", s)
		}
	}
}

func TestMinimalGradCheck(t *testing.T) {
	cfg := Config{
		Cell: nn.CellGRU, HiddenDim: 4, MLPHidden: 5,
		DropoutRate: 0, LatentCross: true, Minimal: true, Seed: 3,
	}
	m := tinyModel(cfg)
	u, d := tinyUser(5, 21)
	rng := tensor.NewRNG(1)
	loss := func() float64 {
		l, _ := m.lossOnly(u, d)
		return l
	}
	compute := func() {
		m.Params().ZeroGrad()
		m.backpropUser(u, d, 0, DefaultTimeshiftLead, rng, false)
	}
	if err := nn.GradCheck(m.Params(), loss, compute, 1e-6, 5e-5); err != nil {
		t.Fatal(err)
	}
}

func TestStackedModelTrains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HiddenDim = 8
	cfg.MLPHidden = 8
	cfg.Layers = 2
	mtCfg := synth.DefaultMobileTab()
	mtCfg.Users = 30
	mtCfg.Days = 6
	d := synth.GenerateMobileTab(mtCfg)
	m := New(d.Schema, cfg)
	if m.StateSize() != 16 {
		t.Fatalf("2-layer state size: %d", m.StateSize())
	}
	tc := DefaultTrainConfig()
	tc.LossLastDays = 0
	tc.BatchUsers = 4
	tr := NewTrainer(m, tc)
	first := tr.TrainEpoch(d, 0)
	var last float64
	for e := uint64(1); e < 4; e++ {
		last = tr.TrainEpoch(d, e)
	}
	if !(last < first) {
		t.Fatalf("stacked model failed to learn: %v → %v", first, last)
	}
}

func TestStackedModelGradCheck(t *testing.T) {
	cfg := Config{
		Cell: nn.CellGRU, HiddenDim: 3, MLPHidden: 4,
		DropoutRate: 0, LatentCross: true, Layers: 2, Seed: 5,
	}
	m := tinyModel(cfg)
	u, d := tinyUser(4, 31)
	rng := tensor.NewRNG(2)
	loss := func() float64 {
		l, _ := m.lossOnly(u, d)
		return l
	}
	compute := func() {
		m.Params().ZeroGrad()
		m.backpropUser(u, d, 0, DefaultTimeshiftLead, rng, false)
	}
	if err := nn.GradCheck(m.Params(), loss, compute, 1e-6, 5e-5); err != nil {
		t.Fatal(err)
	}
}

func TestFreezeCellLeavesCellUntouched(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HiddenDim = 8
	cfg.MLPHidden = 8
	mtCfg := synth.DefaultMobileTab()
	mtCfg.Users = 20
	mtCfg.Days = 5
	d := synth.GenerateMobileTab(mtCfg)
	m := New(d.Schema, cfg)

	cellBefore := m.cell.Params().Flatten()
	headBefore := append(append(m.l.Params(), m.w1.Params()...), m.w2.Params()...).Flatten()

	tc := DefaultTrainConfig()
	tc.LossLastDays = 0
	tc.FreezeCell = true
	NewTrainer(m, tc).TrainEpoch(d, 0)

	cellAfter := m.cell.Params().Flatten()
	for i := range cellBefore {
		if cellBefore[i] != cellAfter[i] {
			t.Fatalf("FreezeCell must not move cell parameters")
		}
	}
	headAfter := append(append(m.l.Params(), m.w1.Params()...), m.w2.Params()...).Flatten()
	moved := false
	for i := range headBefore {
		if headBefore[i] != headAfter[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatalf("FreezeCell must still train the head")
	}
}

func TestFreezeCellRetrainRecoversQuality(t *testing.T) {
	// Train a base model, re-initialise the head, retrain head-only: the
	// frozen-cell model must recover most of the base quality (§9).
	mtCfg := synth.DefaultMobileTab()
	mtCfg.Users = 120
	d := synth.GenerateMobileTab(mtCfg)
	split := dataset.SplitUsers(d, 0.25, 13)
	cutoff := d.CutoffForLastDays(7)

	cfg := DefaultConfig()
	cfg.HiddenDim = 16
	cfg.MLPHidden = 16
	base := New(d.Schema, cfg)
	tc := DefaultTrainConfig()
	tc.Epochs = 3
	tc.BatchUsers = 2
	tc.LR = 3e-3
	NewTrainer(base, tc).Train(split.Train)
	bs, bl := base.EvaluateSessions(split.Test, cutoff)
	baseAUC := metrics.PRAUC(bs, bl)

	cfg2 := cfg
	cfg2.Seed = 99
	head := New(d.Schema, cfg2)
	base.CopyCellTo(head)
	tcH := tc
	tcH.FreezeCell = true
	NewTrainer(head, tcH).Train(split.Train)
	hs, hl := head.EvaluateSessions(split.Test, cutoff)
	headAUC := metrics.PRAUC(hs, hl)

	if headAUC < 0.75*baseAUC {
		t.Fatalf("head-only retrain too weak: %v vs base %v", headAUC, baseAUC)
	}
	t.Logf("base %.3f, head-only retrain %.3f", baseAUC, headAUC)
}

func TestCopyCellTo(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HiddenDim = 4
	cfg.MLPHidden = 4
	a := tinyModel(cfg)
	cfg.Seed = 7
	b := tinyModel(cfg)
	a.CopyCellTo(b)
	fa, fb := a.cell.Params().Flatten(), b.cell.Params().Flatten()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("CopyCellTo mismatch")
		}
	}
	// Heads remain different (different seeds).
	ha, hb := a.w1.Params().Flatten(), b.w1.Params().Flatten()
	same := true
	for i := range ha {
		if ha[i] != hb[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("CopyCellTo must not copy the head")
	}
}

func TestEvaluateSessionsTransformedIdentity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HiddenDim = 8
	cfg.MLPHidden = 8
	m := tinyModel(cfg)
	u, d := tinyUser(10, 41)
	_ = u
	a, _ := m.EvaluateSessions(d, 0)
	b, _ := m.EvaluateSessionsTransformed(d, 0, func(h tensor.Vector) tensor.Vector { return h })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("identity transform must not change predictions")
		}
	}
}
