// Package core implements the paper's primary contribution: the recurrent
// predictive-precompute model of §6 and its training procedure of §7.
//
// The model is split exactly as the paper requires (§6.1 "Functions for
// hidden updates and predictions"):
//
//   - RNNupdate — a recurrent cell (GRU by default) that folds one
//     completed session [f_i; A_i; T(Δt_i)] into the user's hidden state
//     (eq. 1). In production this runs in the stream processor after the
//     session window closes.
//   - RNNpredict — a feed-forward head that turns (h_k, current context)
//     into an access probability (eq. 2), where h_k is the latest hidden
//     state whose session ended before the update-delay horizon t_i − δ.
//     In production this runs at session startup in the serving tier.
//
// The prediction head uses the latent-cross formulation of §6.2,
// h' = h_k ∘ (1 + L·f), followed by a single 128-unit ReLU MLP with 20%
// dropout and a sigmoid output — a line-for-line port of the paper's
// Figure 3 PyTorch reference code.
package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Config holds the model hyperparameters of §6.2.
type Config struct {
	// Cell selects the recurrent unit (§6.2 evaluates tanh/GRU/LSTM and
	// selects GRU).
	Cell nn.CellKind
	// HiddenDim is the hidden-state dimensionality (128 in the paper;
	// §9 notes it is the lever for trading quality against per-user
	// storage).
	HiddenDim int
	// MLPHidden is the prediction MLP width (128 in the paper).
	MLPHidden int
	// DropoutRate is applied inside the MLP during training (0.2).
	DropoutRate float64
	// LatentCross toggles the h ∘ (1 + L·f) term (§6.2; ablation A2).
	LatentCross bool
	// Layers stacks multiple recurrent units vertically (§6.2 reports no
	// meaningful gain from stacking; 0/1 = single unit).
	Layers int
	// Timeshift marks the eq. 3 variant: predictions receive only
	// T(start_d − t_k), no session context.
	Timeshift bool
	// Minimal builds the §10.1 "reusable model": the update input is only
	// [A_i; T(Δt_i)] and the prediction input only [T(t − t_k)] — no
	// context features at all, so one trained model applies to any access
	// log regardless of schema.
	Minimal bool
	Seed    uint64
}

// DefaultConfig returns the paper's settings with a hidden size scaled for
// this repository's single-core experiment defaults (the paper's 128 is
// supported and swept in the hidden-dim ablation).
func DefaultConfig() Config {
	return Config{
		Cell:        nn.CellGRU,
		HiddenDim:   64,
		MLPHidden:   128,
		DropoutRate: 0.2,
		LatentCross: true,
		Seed:        1,
	}
}

// Model is the RNNupdate/RNNpredict pair.
type Model struct {
	Schema *dataset.Schema
	Cfg    Config

	cell nn.Cell
	// l is the latent-cross projection L (predict-input → hidden).
	l *nn.Linear
	// w1, w2 are the MLP layers.
	w1, w2  *nn.Linear
	dropout nn.Dropout

	updateDim  int // cell input: context + access flag + T(Δt)
	predictDim int // predict input: context + T(t−t_k), or T only for timeshift
}

// New constructs a model for the given dataset schema.
func New(schema *dataset.Schema, cfg Config) *Model {
	if cfg.HiddenDim <= 0 || cfg.MLPHidden <= 0 {
		panic(fmt.Sprintf("core: invalid dims %d/%d", cfg.HiddenDim, cfg.MLPHidden))
	}
	ctxDim := features.ContextDim(schema)
	m := &Model{
		Schema:     schema,
		Cfg:        cfg,
		updateDim:  ctxDim + 1 + features.NumTimeBuckets,
		predictDim: ctxDim + features.NumTimeBuckets,
		dropout:    nn.Dropout{Rate: cfg.DropoutRate},
	}
	if cfg.Minimal {
		m.updateDim = 1 + features.NumTimeBuckets
		m.predictDim = features.NumTimeBuckets
	}
	if cfg.Timeshift {
		m.predictDim = features.NumTimeBuckets
	}
	rng := tensor.NewRNG(cfg.Seed)
	if cfg.Layers > 1 {
		m.cell = nn.NewStackedCell(cfg.Cell, m.updateDim, cfg.HiddenDim, cfg.Layers, rng)
	} else {
		m.cell = nn.NewCell(cfg.Cell, m.updateDim, cfg.HiddenDim, rng)
	}
	m.l = nn.NewLinear("latentcross.L", m.predictDim, cfg.HiddenDim, rng)
	m.w1 = nn.NewLinear("mlp.W1", cfg.HiddenDim+m.predictDim, cfg.MLPHidden, rng)
	m.w2 = nn.NewLinear("mlp.W2", cfg.MLPHidden, 1, rng)
	return m
}

// Params returns all learnable parameters.
func (m *Model) Params() nn.Params {
	ps := m.cell.Params()
	ps = append(ps, m.l.Params()...)
	ps = append(ps, m.w1.Params()...)
	ps = append(ps, m.w2.Params()...)
	return ps
}

// UpdateDim returns the RNNupdate input width.
func (m *Model) UpdateDim() int { return m.updateDim }

// PredictDim returns the RNNpredict input width.
func (m *Model) PredictDim() int { return m.predictDim }

// StateSize returns the full recurrent state length (HiddenDim for GRU).
func (m *Model) StateSize() int { return m.cell.StateSize() }

// HiddenDim returns the externally visible hidden-vector length — the
// per-user value the serving tier stores (512 bytes at d=128, §9).
func (m *Model) HiddenDim() int { return m.cell.HiddenSize() }

// InitialState returns h_0, the all-zero state every user starts from
// (§6.1).
func (m *Model) InitialState() tensor.Vector {
	return tensor.NewVector(m.cell.StateSize())
}

// CopyCellTo copies this model's recurrent-cell parameters into dst, which
// must share the cell architecture. Together with TrainConfig.FreezeCell
// this implements the §9 retraining path: the new model keeps the exact GRU
// that produced the hidden states already in the serving store.
func (m *Model) CopyCellTo(dst *Model) {
	m.cell.Params().CopyValuesTo(dst.cell.Params())
}

// gradClone returns a worker replica sharing this model's parameter
// *values* but owning fresh gradient buffers, so per-user workers can
// backpropagate concurrently and the trainer can merge gradients
// afterwards (§7.1 custom parallelism).
func (m *Model) gradClone() *Model {
	clone := New(m.Schema, m.Cfg)
	src, dst := m.Params(), clone.Params()
	for i := range src {
		dst[i].Value = src[i].Value // alias values, keep own Grad
	}
	return clone
}

// BuildUpdateInput assembles the RNNupdate input [f_i; A_i; T(Δt_i)] for a
// completed session. dst must have length UpdateDim (nil allocates).
func (m *Model) BuildUpdateInput(ts int64, cat []int, access bool, deltaT int64, dst tensor.Vector) tensor.Vector {
	if dst == nil {
		dst = tensor.NewVector(m.updateDim)
	} else {
		dst.Zero()
	}
	ctxDim := 0
	if !m.Cfg.Minimal {
		ctxDim = features.ContextDim(m.Schema)
		features.ContextVector(m.Schema, ts, cat, dst[:ctxDim])
	}
	if access {
		dst[ctxDim] = 1
	}
	dst[ctxDim+1+features.TimeBucket(deltaT)] = 1
	return dst
}

// BuildPredictInput assembles the RNNpredict input [f_i; T(t_i − t_k)]
// (eq. 2). dst must have length PredictDim (nil allocates).
func (m *Model) BuildPredictInput(ts int64, cat []int, sinceK int64, dst tensor.Vector) tensor.Vector {
	if m.Cfg.Timeshift {
		panic("core: BuildPredictInput on a timeshift model; use BuildTimeshiftPredictInput")
	}
	if dst == nil {
		dst = tensor.NewVector(m.predictDim)
	} else {
		dst.Zero()
	}
	ctxDim := 0
	if !m.Cfg.Minimal {
		ctxDim = features.ContextDim(m.Schema)
		features.ContextVector(m.Schema, ts, cat, dst[:ctxDim])
	}
	dst[ctxDim+features.TimeBucket(sinceK)] = 1
	return dst
}

// BuildTimeshiftPredictInput assembles the eq. 3 input [T(start_d − t_k)].
func (m *Model) BuildTimeshiftPredictInput(sinceK int64, dst tensor.Vector) tensor.Vector {
	if !m.Cfg.Timeshift {
		panic("core: BuildTimeshiftPredictInput on a session model")
	}
	if dst == nil {
		dst = tensor.NewVector(m.predictDim)
	} else {
		dst.Zero()
	}
	dst[features.TimeBucket(sinceK)] = 1
	return dst
}

// UpdateState runs RNNupdate: folds one completed session into the state,
// returning the new state (the inputs are not mutated). This is the
// operation the production stream processor executes at t_i + δ.
func (m *Model) UpdateState(state, updateInput tensor.Vector) tensor.Vector {
	next, _ := m.cell.Step(state, updateInput)
	return next
}

// UpdateScratchSize returns the scratch length UpdateStateInto needs (0
// when the cell has no allocation-free inference step).
func (m *Model) UpdateScratchSize() int {
	if ic, ok := m.cell.(nn.InferenceCell); ok {
		return ic.ScratchSize()
	}
	return 0
}

// UpdateStateInto is the allocation-lean UpdateState for the serving hot
// path: it writes the next state into dst (length StateSize) using scratch
// (length UpdateScratchSize), producing bit-identical states to
// UpdateState. Cells without an inference step fall back to Step, losing
// only the allocation savings. dst must not alias state or updateInput.
func (m *Model) UpdateStateInto(dst, state, updateInput, scratch tensor.Vector) {
	if ic, ok := m.cell.(nn.InferenceCell); ok {
		ic.StepInfer(dst, state, updateInput, scratch)
		return
	}
	next, _ := m.cell.Step(state, updateInput)
	copy(dst, next)
}

// SupportsBatchUpdate reports whether the recurrent cell has a batched
// GEMM inference path (nn.BatchInferenceCell). Without it,
// UpdateStatesInto falls back to row-by-row updates, losing only the
// weight-reuse speedup.
func (m *Model) SupportsBatchUpdate() bool {
	_, ok := m.cell.(nn.BatchInferenceCell)
	return ok
}

// BatchUpdateScratchSize returns the arena demand (float64s) of one
// UpdateStatesInto call at batch size B, so callers can presize their
// arenas and keep the batched hot path allocation-free from the first
// call.
func (m *Model) BatchUpdateScratchSize(B int) int {
	if bc, ok := m.cell.(nn.BatchInferenceCell); ok {
		return bc.BatchScratchSize(B)
	}
	return m.UpdateScratchSize()
}

// UpdateStatesInto is the batched UpdateStateInto: it advances the B
// packed session states in the rows of states by the update inputs in the
// rows of xs, writing row-aligned results into dst (all matrices B ×
// StateSize / UpdateDim). Intermediates come from arena; the caller resets
// it between batches. Row b of dst is bit-identical to UpdateStateInto on
// row b — the serving tier's batched finaliser depends on that to keep
// stored states byte-identical to the sequential path.
func (m *Model) UpdateStatesInto(dst, states, xs *tensor.Matrix, arena *tensor.Arena) {
	if bc, ok := m.cell.(nn.BatchInferenceCell); ok {
		bc.StepInferBatch(dst, states, xs, arena)
		return
	}
	scratch := arena.Vector(m.UpdateScratchSize())
	for b := 0; b < xs.Rows; b++ {
		m.UpdateStateInto(dst.Row(b), states.Row(b), xs.Row(b), scratch)
	}
}

// predCache holds the intermediates of one training-time prediction for
// backprop.
type predCache struct {
	k       int // hidden-state index used (0 = initial state)
	f       tensor.Vector
	lf      tensor.Vector // L·f (nil when latent cross disabled)
	hPrime  tensor.Vector // h_k ∘ (1+lf), or h_k when disabled
	mlpIn   tensor.Vector
	r       tensor.Vector // post-ReLU activations
	mask    tensor.Vector // dropout mask
	dLogit  float64       // set during loss computation
	predIdx int           // position in the emitted score slice
}

// predictForward runs RNNpredict given the visible hidden vector h (length
// HiddenDim) and predict-input f. In training mode it records the
// intermediates into cache and uses dropout driven by rng.
func (m *Model) predictForward(h, f tensor.Vector, train bool, rng *tensor.RNG, cache *predCache) float64 {
	hp := h.Clone()
	var lf tensor.Vector
	if m.Cfg.LatentCross {
		lf = tensor.NewVector(m.Cfg.HiddenDim)
		m.l.Forward(lf, f)
		for i := range hp {
			hp[i] *= 1 + lf[i]
		}
	}
	mlpIn := tensor.Concat(hp, f)
	z := tensor.NewVector(m.Cfg.MLPHidden)
	m.w1.Forward(z, mlpIn)
	mask := tensor.NewVector(m.Cfg.MLPHidden)
	m.dropout.Forward(z, mask, train, rng)
	nn.ReLUVec(z, z)
	out := tensor.NewVector(1)
	m.w2.Forward(out, z)
	logit := out[0]
	if cache != nil {
		cache.f = f
		cache.lf = lf
		cache.hPrime = hp
		cache.mlpIn = mlpIn
		cache.r = z
		cache.mask = mask
	}
	return logit
}

// Predict runs RNNpredict in inference mode and returns P(access).
func (m *Model) Predict(h, f tensor.Vector) float64 {
	return nn.Sigmoid(m.predictForward(h, f, false, nil, nil))
}

// predictBackward propagates dLogit through RNNpredict, accumulating
// parameter gradients and returning the gradient w.r.t. the visible hidden
// vector h_k.
func (m *Model) predictBackward(c *predCache, hK tensor.Vector) tensor.Vector {
	// Output layer.
	dOut := tensor.Vector{c.dLogit}
	dr := tensor.NewVector(m.Cfg.MLPHidden)
	m.w2.Backward(dr, c.r, dOut)
	// ReLU (using output) then dropout mask.
	dz := tensor.NewVector(m.Cfg.MLPHidden)
	nn.ReLUBackward(dz, c.r, dr)
	for i := range dz {
		dz[i] *= c.mask[i]
	}
	// W1: accumulate weight gradients, but backpropagate only into the
	// hidden slice of the MLP input — the context part f is an input, so
	// its gradient is never consumed (saves a dense Cols-wide transpose
	// product per prediction).
	m.w1.W.GradMatrix().RankOneAdd(1, dz, c.mlpIn)
	m.w1.B.Grad.Add(dz)
	hid := m.Cfg.HiddenDim
	dhPrime := tensor.NewVector(hid)
	w1m := m.w1.W.Matrix()
	for i, dzi := range dz {
		if dzi == 0 {
			continue
		}
		row := w1m.Data[i*w1m.Cols : i*w1m.Cols+hid]
		for j, w := range row {
			dhPrime[j] += dzi * w
		}
	}
	// Latent cross.
	dh := tensor.NewVector(m.Cfg.HiddenDim)
	if m.Cfg.LatentCross {
		dlf := tensor.NewVector(m.Cfg.HiddenDim)
		for i := range dh {
			dh[i] = dhPrime[i] * (1 + c.lf[i])
			dlf[i] = dhPrime[i] * hK[i]
		}
		m.l.Backward(nil, c.f, dlf)
	} else {
		copy(dh, dhPrime)
	}
	return dh
}
