package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/tensor"
)

func tinySchema() *dataset.Schema {
	return &dataset.Schema{
		Name:          "tiny",
		SessionLength: 1200,
		Cat:           []dataset.CatFeature{{Name: "c", Cardinality: 3}},
	}
}

func tinyModel(cfg Config) *Model { return New(tinySchema(), cfg) }

func tinyUser(nSessions int, seed uint64) (*dataset.User, *dataset.Dataset) {
	rng := tensor.NewRNG(seed)
	schema := tinySchema()
	start := synth.DefaultStart
	d := &dataset.Dataset{Schema: schema, Start: start, End: start + 30*dataset.Day}
	u := &dataset.User{ID: 0}
	ts := start
	for i := 0; i < nSessions; i++ {
		ts += int64(rng.Intn(2*86400) + 100)
		if ts >= d.End {
			ts = d.End - 1
		}
		u.Sessions = append(u.Sessions, dataset.Session{
			Timestamp: ts,
			Access:    rng.Bernoulli(0.4),
			Cat:       []int{rng.Intn(3)},
		})
	}
	u.SortSessions()
	d.Users = []*dataset.User{u}
	return u, d
}

func TestModelDims(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HiddenDim = 8
	cfg.MLPHidden = 16
	m := tinyModel(cfg)
	ctxDim := 3 + 24 + 7
	if m.UpdateDim() != ctxDim+1+50 {
		t.Fatalf("UpdateDim: %d", m.UpdateDim())
	}
	if m.PredictDim() != ctxDim+50 {
		t.Fatalf("PredictDim: %d", m.PredictDim())
	}
	if m.HiddenDim() != 8 || m.StateSize() != 8 {
		t.Fatalf("hidden dims wrong")
	}

	cfg.Timeshift = true
	mt := tinyModel(cfg)
	if mt.PredictDim() != 50 {
		t.Fatalf("timeshift PredictDim: %d", mt.PredictDim())
	}
}

func TestBuildInputs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HiddenDim = 4
	m := tinyModel(cfg)
	in := m.BuildUpdateInput(synth.DefaultStart, []int{2}, true, 3600, nil)
	// Exactly five ones: category, hour, day-of-week, access flag, T(Δt).
	if in.Sum() != 5 {
		t.Fatalf("update input one-hot count: %v", in.Sum())
	}
	inNoAccess := m.BuildUpdateInput(synth.DefaultStart, []int{2}, false, 3600, nil)
	if inNoAccess.Sum() != 4 {
		t.Fatalf("no-access input count: %v", inNoAccess.Sum())
	}

	f := m.BuildPredictInput(synth.DefaultStart, []int{1}, 60, nil)
	if f.Sum() != 4 {
		t.Fatalf("predict input count: %v", f.Sum())
	}
}

func TestTimeshiftInputGuards(t *testing.T) {
	cfg := DefaultConfig()
	m := tinyModel(cfg)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("timeshift builder on session model must panic")
			}
		}()
		m.BuildTimeshiftPredictInput(10, nil)
	}()
	cfg.Timeshift = true
	mt := tinyModel(cfg)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("session builder on timeshift model must panic")
			}
		}()
		mt.BuildPredictInput(0, []int{0}, 0, nil)
	}()
}

func TestLagIndexer(t *testing.T) {
	times := []int64{100, 200, 300, 1000}
	lag := lagIndexer{times: times, delta: 50}
	// pt=120: need t_k < 70 → none.
	if k, tk := lag.next(120); k != 0 || tk != 0 {
		t.Fatalf("k at 120: %d %d", k, tk)
	}
	// pt=260: t_k < 210 → sessions 100, 200 → k=2, tk=200.
	if k, tk := lag.next(260); k != 2 || tk != 200 {
		t.Fatalf("k at 260: %d %d", k, tk)
	}
	// pt=310: t_k < 260 → still k=2.
	if k, _ := lag.next(310); k != 2 {
		t.Fatalf("k at 310: %d", k)
	}
	// pt=2000: all 4.
	if k, tk := lag.next(2000); k != 4 || tk != 1000 {
		t.Fatalf("k at 2000: %d %d", k, tk)
	}
}

func TestDeltaLagRespectedInEvaluation(t *testing.T) {
	// Two sessions 1 second apart: the second's prediction may not use the
	// first's hidden update (δ = 20 min + ε). With 1 session far in the
	// past, predictions differ.
	cfg := DefaultConfig()
	cfg.HiddenDim = 8
	cfg.MLPHidden = 8
	cfg.Seed = 3
	m := tinyModel(cfg)
	schema := tinySchema()
	start := synth.DefaultStart
	d := &dataset.Dataset{Schema: schema, Start: start, End: start + 30*dataset.Day}
	u := &dataset.User{ID: 0, Sessions: []dataset.Session{
		{Timestamp: start + 1000, Access: true, Cat: []int{0}},
		{Timestamp: start + 1001, Access: true, Cat: []int{0}},
	}}
	d.Users = []*dataset.User{u}
	scores, _ := m.EvaluateSessions(d, 0)
	// Both predictions must come from h_0 (no update visible within δ),
	// and with identical context the scores are identical.
	if len(scores) != 2 {
		t.Fatalf("want 2 scores")
	}
	if scores[0] != scores[1] {
		t.Fatalf("δ-lag violated: %v vs %v", scores[0], scores[1])
	}
}

func TestUpdateStateChangesWithAccess(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HiddenDim = 8
	m := tinyModel(cfg)
	h0 := m.InitialState()
	inA := m.BuildUpdateInput(synth.DefaultStart, []int{0}, true, 0, nil)
	inB := m.BuildUpdateInput(synth.DefaultStart, []int{0}, false, 0, nil)
	hA := m.UpdateState(h0, inA)
	hB := m.UpdateState(h0, inB)
	diff := 0.0
	for i := range hA {
		diff += math.Abs(hA[i] - hB[i])
	}
	if diff < 1e-6 {
		t.Fatalf("access flag must affect the hidden update")
	}
	// h0 unchanged.
	if h0.Norm2() != 0 {
		t.Fatalf("UpdateState must not mutate input state")
	}
}

// Full-model gradient check: BPTT through the GRU chain, δ-lag prediction
// heads, latent cross, dropout (disabled for determinism) and the MLP.
func TestFullModelGradCheck(t *testing.T) {
	cfg := Config{
		Cell: nn.CellGRU, HiddenDim: 5, MLPHidden: 6,
		DropoutRate: 0, LatentCross: true, Seed: 7,
	}
	m := tinyModel(cfg)
	u, d := tinyUser(6, 11)
	rng := tensor.NewRNG(1)

	loss := func() float64 {
		l, n := m.cloneForLoss().lossOnly(u, d)
		if n == 0 {
			t.Fatalf("no predictions generated")
		}
		return l
	}
	compute := func() {
		m.Params().ZeroGrad()
		m.backpropUser(u, d, 0, DefaultTimeshiftLead, rng, false)
	}
	if err := nn.GradCheck(m.Params(), loss, compute, 1e-6, 5e-5); err != nil {
		t.Fatal(err)
	}
}

// cloneForLoss lets the grad check evaluate the loss with the *current*
// parameter values without touching gradients.
func (m *Model) cloneForLoss() *Model { return m }

// lossOnly computes the summed training loss without backprop.
func (m *Model) lossOnly(u *dataset.User, d *dataset.Dataset) (float64, int) {
	states, _ := m.runUpdates(u, false)
	times := sessionTimes(u)
	lag := lagIndexer{times: times, delta: Delta(d.Schema)}
	var sum float64
	n := 0
	for _, s := range u.Sessions {
		k, tk := lag.next(s.Timestamp)
		var sinceK int64
		if k > 0 {
			sinceK = s.Timestamp - tk
		}
		f := m.BuildPredictInput(s.Timestamp, s.Cat, sinceK, nil)
		logit := m.predictForward(states[k][:m.HiddenDim()], f, false, nil, nil)
		y := 0.0
		if s.Access {
			y = 1
		}
		loss, _ := nn.BCEWithLogits(logit, y)
		sum += loss
		n++
	}
	return sum, n
}

// Timeshift-mode gradient check (eq. 3 path).
func TestTimeshiftGradCheck(t *testing.T) {
	cfg := Config{
		Cell: nn.CellGRU, HiddenDim: 4, MLPHidden: 5,
		DropoutRate: 0, LatentCross: true, Timeshift: true, Seed: 9,
	}
	schema := synth.TimeshiftSchema(17, 21)
	m := New(schema, cfg)

	tsCfg := synth.DefaultTimeshift()
	tsCfg.Users = 1
	tsCfg.Seed = 5
	d := synth.GenerateTimeshift(tsCfg)
	u := d.Users[0]
	rng := tensor.NewRNG(2)

	loss := func() float64 {
		states, _ := m.runUpdates(u, false)
		lag := lagIndexer{times: sessionTimes(u), delta: DefaultTimeshiftLead}
		var sum float64
		for _, w := range u.Windows {
			k, tk := lag.next(w.Start)
			var sinceK int64
			if k > 0 {
				sinceK = w.Start - tk
			}
			f := m.BuildTimeshiftPredictInput(sinceK, nil)
			logit := m.predictForward(states[k][:m.HiddenDim()], f, false, nil, nil)
			y := 0.0
			if w.Accessed {
				y = 1
			}
			l, _ := nn.BCEWithLogits(logit, y)
			sum += l
		}
		return sum
	}
	compute := func() {
		m.Params().ZeroGrad()
		m.backpropUser(u, d, 0, DefaultTimeshiftLead, rng, false)
	}
	if err := nn.GradCheck(m.Params(), loss, compute, 1e-6, 5e-5); err != nil {
		t.Fatal(err)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HiddenDim = 16
	cfg.MLPHidden = 16
	mtCfg := synth.DefaultMobileTab()
	mtCfg.Users = 60
	mtCfg.Days = 10
	d := synth.GenerateMobileTab(mtCfg)
	m := New(d.Schema, cfg)

	tc := DefaultTrainConfig()
	tc.LossLastDays = 0 // use everything on this short window
	tr := NewTrainer(m, tc)

	first := tr.TrainEpoch(d, 0)
	var last float64
	for e := uint64(1); e < 4; e++ {
		last = tr.TrainEpoch(d, e)
	}
	if last >= first {
		t.Fatalf("training loss should decrease: first %v, last %v", first, last)
	}
}

func TestTrainingDeterministic(t *testing.T) {
	run := func() []float64 {
		cfg := DefaultConfig()
		cfg.HiddenDim = 8
		cfg.MLPHidden = 8
		mtCfg := synth.DefaultMobileTab()
		mtCfg.Users = 20
		mtCfg.Days = 5
		d := synth.GenerateMobileTab(mtCfg)
		m := New(d.Schema, cfg)
		tc := DefaultTrainConfig()
		tc.LossLastDays = 0
		tc.Workers = 4 // parallel merge must still be deterministic
		tr := NewTrainer(m, tc)
		tr.TrainEpoch(d, 0)
		scores, _ := m.EvaluateSessions(d, 0)
		return scores
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("score count differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("training must be deterministic under parallelism (idx %d: %v vs %v)", i, a[i], b[i])
		}
	}
}

func TestRNNLearnsEngagementSignal(t *testing.T) {
	// End-to-end: on synthetic MobileTab the trained RNN must beat the
	// percentage-style constant-per-user predictor by a clear margin.
	mtCfg := synth.DefaultMobileTab()
	mtCfg.Users = 150
	d := synth.GenerateMobileTab(mtCfg)
	split := dataset.SplitUsers(d, 0.25, 3)

	cfg := DefaultConfig()
	cfg.HiddenDim = 24
	cfg.MLPHidden = 32
	m := New(d.Schema, cfg)
	tc := DefaultTrainConfig()
	// At this miniature scale one epoch is only ~14 optimizer steps with
	// the paper's 10-user batches; shrink batches and add epochs so Adam
	// takes enough steps to converge.
	tc.BatchUsers = 2
	tc.Epochs = 5
	tr := NewTrainer(m, tc)
	tr.Train(split.Train)

	minTs := d.CutoffForLastDays(7)
	scores, labels := m.EvaluateSessions(split.Test, minTs)
	rnnAUC := metrics.PRAUC(scores, labels)

	// Percentage-equivalent scores: per-user running mean.
	var pScores []float64
	var pLabels []bool
	alpha := split.Train.PositiveRate()
	for _, u := range split.Test.Users {
		acc, n := 0.0, 0
		for _, s := range u.Sessions {
			if s.Timestamp >= minTs {
				pScores = append(pScores, (alpha+acc)/float64(n+1))
				pLabels = append(pLabels, s.Access)
			}
			n++
			if s.Access {
				acc++
			}
		}
	}
	pctAUC := metrics.PRAUC(pScores, pLabels)
	if !(rnnAUC > pctAUC) {
		t.Fatalf("RNN (%v) must beat percentage baseline (%v)", rnnAUC, pctAUC)
	}
	t.Logf("RNN PR-AUC %.4f vs percentage %.4f", rnnAUC, pctAUC)
}

func TestLossCurveRecorded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HiddenDim = 8
	cfg.MLPHidden = 8
	mtCfg := synth.DefaultMobileTab()
	mtCfg.Users = 30
	mtCfg.Days = 5
	d := synth.GenerateMobileTab(mtCfg)
	m := New(d.Schema, cfg)
	tc := DefaultTrainConfig()
	tc.LossLastDays = 0
	tr := NewTrainer(m, tc)
	tr.TrainEpoch(d, 0)
	if len(tr.Curve) == 0 {
		t.Fatalf("loss curve must be recorded")
	}
	prev := 0
	for _, p := range tr.Curve {
		if p.ExamplesProcessed <= prev {
			t.Fatalf("examples processed must increase")
		}
		if p.Loss < 0 || math.IsNaN(p.Loss) {
			t.Fatalf("bad loss point: %+v", p)
		}
		prev = p.ExamplesProcessed
	}
}

func TestPaddedStatsWaste(t *testing.T) {
	mtCfg := synth.DefaultMobileTab()
	mtCfg.Users = 100
	d := synth.GenerateMobileTab(mtCfg)
	st := PaddedBatchStats(d, 10, 1)
	if st.RealSteps != d.NumSessions() {
		t.Fatalf("real steps must equal session count")
	}
	if st.PaddedSteps < st.RealSteps {
		t.Fatalf("padding can only add steps")
	}
	if st.WasteFactor() < 1.2 {
		t.Fatalf("long-tailed histories should waste >20%%: factor %v", st.WasteFactor())
	}
}

func TestPaddedTrainingMatchesUnpaddedGradients(t *testing.T) {
	// Same seed, same order → padded and per-user training must produce
	// identical parameters (padding only adds discarded compute).
	build := func() (*Model, *dataset.Dataset) {
		cfg := DefaultConfig()
		cfg.HiddenDim = 8
		cfg.MLPHidden = 8
		mtCfg := synth.DefaultMobileTab()
		mtCfg.Users = 15
		mtCfg.Days = 5
		d := synth.GenerateMobileTab(mtCfg)
		return New(d.Schema, cfg), d
	}
	mA, d := build()
	tcA := DefaultTrainConfig()
	tcA.LossLastDays = 0
	trA := NewTrainer(mA, tcA)
	trA.TrainEpoch(d, 0)

	mB, _ := build()
	tcB := DefaultTrainConfig()
	tcB.LossLastDays = 0
	trB := NewTrainer(mB, tcB)
	trB.TrainEpochPadded(d, 0)

	fa, fb := mA.Params().Flatten(), mB.Params().Flatten()
	for i := range fa {
		if math.Abs(fa[i]-fb[i]) > 1e-9 {
			t.Fatalf("padded vs per-user training diverged at %d: %v vs %v", i, fa[i], fb[i])
		}
	}
}

func TestGradCloneSharesValuesNotGrads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HiddenDim = 4
	cfg.MLPHidden = 4
	m := tinyModel(cfg)
	c := m.gradClone()
	mp, cp := m.Params(), c.Params()
	// Values alias.
	mp[0].Value[0] = 123
	if cp[0].Value[0] != 123 {
		t.Fatalf("clone must share parameter values")
	}
	// Grads do not.
	cp[0].Grad[0] = 7
	if mp[0].Grad[0] == 7 {
		t.Fatalf("clone must own its gradients")
	}
}

func TestMaxHistoryTruncationInTraining(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HiddenDim = 8
	cfg.MLPHidden = 8
	mtCfg := synth.DefaultMobileTab()
	mtCfg.Users = 10
	mtCfg.Days = 10
	d := synth.GenerateMobileTab(mtCfg)
	m := New(d.Schema, cfg)
	tc := DefaultTrainConfig()
	tc.LossLastDays = 0
	tc.MaxHistory = 3
	tr := NewTrainer(m, tc)
	// Must run without touching more than 3 sessions per user; just verify
	// it completes and records a curve bounded by 3×users examples.
	tr.TrainEpoch(d, 0)
	if tr.processed > 3*len(d.Users) {
		t.Fatalf("truncation ignored: processed %d", tr.processed)
	}
}

func TestEvaluateEmptyUser(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HiddenDim = 4
	cfg.MLPHidden = 4
	m := tinyModel(cfg)
	d := &dataset.Dataset{Schema: tinySchema(), Start: 0, End: 30 * dataset.Day,
		Users: []*dataset.User{{ID: 0}}}
	scores, labels := m.EvaluateSessions(d, 0)
	if len(scores) != 0 || len(labels) != 0 {
		t.Fatalf("empty user must yield no predictions")
	}
}
