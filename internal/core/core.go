package core
