package core

import (
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// DefaultEpsilon is the hidden-update processing lag ε added to the session
// length to form δ (§6.1 "Update delays": δ = session length + ε).
const DefaultEpsilon int64 = 60

// Delta returns the update-delay horizon δ for a schema.
func Delta(schema *dataset.Schema) int64 {
	return schema.SessionLength + DefaultEpsilon
}

// DefaultTimeshiftLead is how far before the peak window the timeshift
// prediction is made (§3.2.1 precomputes "several hours in advance").
const DefaultTimeshiftLead int64 = 6 * 3600

// lagIndexer computes k(i) = max k such that t_k < pt − δ via a two-pointer
// sweep over ascending prediction times (§6.1, eq. 2). Index k is 1-based
// over sessions; k = 0 means only the initial state h_0 is available.
type lagIndexer struct {
	times []int64
	delta int64
	k     int
}

// next returns (k, t_k) for prediction time pt; pt values must be
// non-decreasing across calls. t_k is 0 when k == 0 (the paper then sets
// t_i − t_k = 0).
func (l *lagIndexer) next(pt int64) (int, int64) {
	for l.k < len(l.times) && l.times[l.k] < pt-l.delta {
		l.k++
	}
	if l.k == 0 {
		return 0, 0
	}
	return l.k, l.times[l.k-1]
}

// runUpdates folds every session of u into the hidden state, returning
// states[0..n] (states[0] = h_0 = 0, states[i] = state after session i) and
// per-step caches when keepCaches is set (needed for BPTT; evaluation skips
// them to save memory).
func (m *Model) runUpdates(u *dataset.User, keepCaches bool) (states []tensor.Vector, caches []nn.StepCache) {
	n := len(u.Sessions)
	states = make([]tensor.Vector, n+1)
	states[0] = m.InitialState()
	if keepCaches {
		caches = make([]nn.StepCache, n)
	}
	in := tensor.NewVector(m.updateDim)
	var prevTS int64
	for i, s := range u.Sessions {
		var dt int64
		if i > 0 {
			dt = s.Timestamp - prevTS
		}
		m.BuildUpdateInput(s.Timestamp, s.Cat, s.Access, dt, in)
		next, cache := m.cell.Step(states[i], in)
		states[i+1] = next
		if keepCaches {
			caches[i] = cache
		}
		prevTS = s.Timestamp
	}
	return states, caches
}

// sessionTimes extracts the timestamp slice of a user's sessions.
func sessionTimes(u *dataset.User) []int64 {
	ts := make([]int64, len(u.Sessions))
	for i, s := range u.Sessions {
		ts[i] = s.Timestamp
	}
	return ts
}

// EvaluateSessions replays the test users and returns inference-mode
// predictions and labels for sessions at/after minTs, honouring the δ lag:
// the prediction for session i reads the newest hidden state h_k with
// t_k < t_i − δ, exactly as the serving tier would (§8 evaluates the last 7
// days).
func (m *Model) EvaluateSessions(d *dataset.Dataset, minTs int64) (scores []float64, labels []bool) {
	return m.EvaluateSessionsTransformed(d, minTs, nil)
}

// EvaluateSessionsTransformed is EvaluateSessions with a hook applied to
// the visible hidden vector before each prediction — the storage layer's
// view of the state. Passing a quantise/dequantise round-trip measures the
// quality cost of compressed hidden states (§9 suggests single-byte
// quantization to shrink the per-user footprint 4×). A nil transform is the
// identity.
func (m *Model) EvaluateSessionsTransformed(d *dataset.Dataset, minTs int64,
	transform func(tensor.Vector) tensor.Vector) (scores []float64, labels []bool) {

	delta := Delta(d.Schema)
	f := tensor.NewVector(m.predictDim)
	for _, u := range d.Users {
		states, _ := m.runUpdates(u, false)
		lag := lagIndexer{times: sessionTimes(u), delta: delta}
		for _, s := range u.Sessions {
			k, tk := lag.next(s.Timestamp)
			if s.Timestamp < minTs {
				continue
			}
			var sinceK int64
			if k > 0 {
				sinceK = s.Timestamp - tk
			}
			m.BuildPredictInput(s.Timestamp, s.Cat, sinceK, f)
			h := states[k][:m.HiddenDim()]
			if transform != nil {
				h = transform(h)
			}
			scores = append(scores, m.Predict(h, f))
			labels = append(labels, s.Access)
		}
	}
	return scores, labels
}

// EvaluateWindows is the timeshift variant (eq. 3): one prediction per peak
// window from the newest hidden state older than start_d − lead.
func (m *Model) EvaluateWindows(d *dataset.Dataset, minTs int64, lead int64) (scores []float64, labels []bool) {
	if lead <= 0 {
		lead = DefaultTimeshiftLead
	}
	f := tensor.NewVector(m.predictDim)
	for _, u := range d.Users {
		states, _ := m.runUpdates(u, false)
		lag := lagIndexer{times: sessionTimes(u), delta: lead}
		for _, w := range u.Windows {
			k, tk := lag.next(w.Start)
			if w.Start < minTs {
				continue
			}
			var sinceK int64
			if k > 0 {
				sinceK = w.Start - tk
			}
			m.BuildTimeshiftPredictInput(sinceK, f)
			h := states[k][:m.HiddenDim()]
			scores = append(scores, m.Predict(h, f))
			labels = append(labels, w.Accessed)
		}
	}
	return scores, labels
}

// Evaluate dispatches on the schema: sessions or peak windows.
func (m *Model) Evaluate(d *dataset.Dataset, minTs int64) (scores []float64, labels []bool) {
	if d.Schema.HasPeakWindows {
		return m.EvaluateWindows(d, minTs, DefaultTimeshiftLead)
	}
	return m.EvaluateSessions(d, minTs)
}
