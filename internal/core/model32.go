package core

import (
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Float32 fast-tier surface of the Model: the same RNNupdate operations as
// model.go, threaded through the nn package's f32 fused kernels. The f64
// methods stay the reference tier (bit-identical to training); these are
// the serving fast path, with bounded-error agreement across tiers and
// bit-exact agreement among all f32 paths (scalar, batched, any platform).
//
// Only RNNupdate has an f32 tier: it is the wave-partitioned finaliser's
// inner loop, executed once per session per user at scale. RNNpredict
// stays f64 — it runs once per arriving request, is dominated by the MLP,
// and its hidden input widens exactly from the stored f32 wire state.

// SupportsF32 reports whether the recurrent cell implements the f32
// inference tier (scalar and batched). The GRU — the paper's selected cell
// — does; stacked, LSTM, and tanh cells fall back to the f64 tier.
func (m *Model) SupportsF32() bool {
	if _, ok := m.cell.(nn.InferenceCell32); !ok {
		return false
	}
	_, ok := m.cell.(nn.BatchInferenceCell32)
	return ok
}

// cell32 returns the cell's f32 interface or panics: callers gate on
// SupportsF32 before selecting the tier.
func (m *Model) cell32() nn.InferenceCell32 {
	ic, ok := m.cell.(nn.InferenceCell32)
	if !ok {
		panic("core: f32 tier on a cell without InferenceCell32 (gate on SupportsF32)")
	}
	return ic
}

// UpdateDim32 returns the padded RNNupdate input width of the f32 tier:
// UpdateDim rounded up to the packed-kernel reduction width, with zero
// tail columns.
func (m *Model) UpdateDim32() int { return m.cell32().InputSize32() }

// BuildUpdateInput32 is BuildUpdateInput for the f32 tier: the same
// [f_i; A_i; T(Δt_i)] layout written into a padded float32 vector. Every
// feature is a 0/1 one-hot, so the vector equals the f64 one exactly. dst
// must have length UpdateDim32 (nil allocates).
func (m *Model) BuildUpdateInput32(ts int64, cat []int, access bool, deltaT int64, dst tensor.Vector32) tensor.Vector32 {
	if dst == nil {
		dst = tensor.NewVector32(m.UpdateDim32())
	} else {
		dst.Zero()
	}
	ctxDim := 0
	if !m.Cfg.Minimal {
		ctxDim = features.ContextDim(m.Schema)
		features.ContextVector32(m.Schema, ts, cat, dst[:ctxDim])
	}
	if access {
		dst[ctxDim] = 1
	}
	dst[ctxDim+1+features.TimeBucket(deltaT)] = 1
	return dst
}

// UpdateScratchSize32 returns the scratch length UpdateStateInto32 needs.
func (m *Model) UpdateScratchSize32() int { return m.cell32().ScratchSize32() }

// UpdateStateInto32 is the f32 UpdateStateInto: it advances state by the
// padded update input, writing into dst (length StateSize) using scratch
// (length UpdateScratchSize32). Bit-identical to every other f32 path over
// the same inputs; bounded-error against the f64 tier. dst must not alias
// state or updateInput.
func (m *Model) UpdateStateInto32(dst, state, updateInput, scratch tensor.Vector32) {
	m.cell32().StepInfer32(dst, state, updateInput, scratch)
}

// BatchUpdateScratchSize32 returns the arena demand (float32s) of one
// UpdateStatesInto32 call at batch size B.
func (m *Model) BatchUpdateScratchSize32(B int) int {
	bc, ok := m.cell.(nn.BatchInferenceCell32)
	if !ok {
		panic("core: f32 tier on a cell without BatchInferenceCell32 (gate on SupportsF32)")
	}
	return bc.BatchScratchSize32(B)
}

// UpdateStatesInto32 is the batched f32 RNNupdate: it advances the B packed
// states by the padded update inputs in the rows of xs (B × UpdateDim32),
// writing row-aligned results into dst. Row b of dst is bit-identical to
// UpdateStateInto32 on row b — the f32 finaliser's replay equivalence
// depends on that exactly as the f64 tier's does on UpdateStateInto.
func (m *Model) UpdateStatesInto32(dst, states, xs *tensor.Matrix32, arena *tensor.Arena32) {
	bc, ok := m.cell.(nn.BatchInferenceCell32)
	if !ok {
		panic("core: f32 tier on a cell without BatchInferenceCell32 (gate on SupportsF32)")
	}
	bc.StepInferBatch32(dst, states, xs, arena)
}

// InitialState32 returns the all-zero f32 state (exactly equal to the f64
// h_0 — the zero state is representable in both tiers).
func (m *Model) InitialState32() tensor.Vector32 {
	return tensor.NewVector32(m.cell.StateSize())
}
