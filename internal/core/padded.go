package core

import (
	"repro/internal/dataset"
	"repro/internal/tensor"
)

// PaddedStats reports the §7.1 batching comparison: the paper found that
// padding user histories to a uniform batch length wastes an excessive
// number of operations because history lengths are heavily long-tailed
// (Figure 5), and that evaluating users independently ("custom
// parallelism") trains models twice as fast.
type PaddedStats struct {
	// RealSteps is the number of recurrent steps carrying actual sessions.
	RealSteps int
	// PaddedSteps is the number of steps a padded batch evaluates:
	// Σ_batches batchSize × maxLen(batch).
	PaddedSteps int
}

// WasteFactor returns PaddedSteps/RealSteps — the compute multiplier
// padding imposes (≈2× on the paper's data).
func (s PaddedStats) WasteFactor() float64 {
	if s.RealSteps == 0 {
		return 1
	}
	return float64(s.PaddedSteps) / float64(s.RealSteps)
}

// PaddedBatchStats computes, without training, how many recurrent steps a
// padded-batch evaluation of d would execute versus per-user evaluation,
// for the given batch size and deterministic shuffle seed.
func PaddedBatchStats(d *dataset.Dataset, batchUsers int, seed uint64) PaddedStats {
	order := tensor.NewRNG(seed).Perm(len(d.Users))
	var st PaddedStats
	for start := 0; start < len(order); start += batchUsers {
		end := start + batchUsers
		if end > len(order) {
			end = len(order)
		}
		maxLen := 0
		for _, ui := range order[start:end] {
			n := len(d.Users[ui].Sessions)
			st.RealSteps += n
			if n > maxLen {
				maxLen = n
			}
		}
		st.PaddedSteps += maxLen * (end - start)
	}
	return st
}

// TrainEpochPadded runs one training epoch exactly like Trainer.TrainEpoch
// but emulates the cost of padded-batch evaluation: after processing each
// user it executes the padding steps (recurrent steps over zero inputs,
// discarded) that a uniform-length batch would have computed. Gradients and
// model updates are identical to the per-user path — only the wall-clock
// cost differs — so benchmarks can compare the two schemes' throughput on
// the same convergence trajectory.
func (t *Trainer) TrainEpochPadded(d *dataset.Dataset, epoch uint64) (meanLoss float64, stats PaddedStats) {
	users := d.Users
	if t.Cfg.MaxHistory > 0 {
		users = dataset.TruncateHistories(d, t.Cfg.MaxHistory).Users
	}
	order := tensor.NewRNG(t.Cfg.Seed ^ (epoch * 0x9e37)).Perm(len(users))

	lossMinTs := d.Start
	if t.Cfg.LossLastDays > 0 {
		lossMinTs = d.CutoffForLastDays(t.Cfg.LossLastDays)
	}

	zeroIn := tensor.NewVector(t.Model.updateDim)
	zeroState := t.Model.InitialState()

	var epochLoss float64
	var epochN int
	for start := 0; start < len(order); start += t.Cfg.BatchUsers {
		end := start + t.Cfg.BatchUsers
		if end > len(order) {
			end = len(order)
		}
		batch := order[start:end]
		maxLen := 0
		for _, ui := range batch {
			if n := len(users[ui].Sessions); n > maxLen {
				maxLen = n
			}
		}

		t.Model.Params().ZeroGrad()
		var batchLoss float64
		var batchN int
		for _, ui := range batch {
			u := users[ui]
			rng := tensor.NewRNG(t.Cfg.Seed ^ uint64(ui)*0x9e3779b97f4a7c15 ^ epoch)
			loss, n := t.Model.backpropUser(u, d, lossMinTs, t.Cfg.TimeshiftLead, rng, t.Cfg.FreezeCell)
			batchLoss += loss
			batchN += n
			stats.RealSteps += len(u.Sessions)
			// Padding: evaluate the wasted steps a uniform-length batch
			// would compute (forward only, as frameworks mask the loss but
			// still execute the cell).
			for p := len(u.Sessions); p < maxLen; p++ {
				t.Model.cell.Step(zeroState, zeroIn)
			}
		}
		stats.PaddedSteps += maxLen * len(batch)
		if batchN == 0 {
			continue
		}
		t.Model.Params().ScaleGrads(1 / float64(batchN))
		t.adam.Step()
		epochLoss += batchLoss
		epochN += batchN
	}
	if epochN > 0 {
		meanLoss = epochLoss / float64(epochN)
	}
	return meanLoss, stats
}
