package core

import (
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// TrainConfig holds the §7 training procedure settings.
type TrainConfig struct {
	// LR is the Adam learning rate (1e-3 in the paper).
	LR float64
	// Epochs: 1 suffices for the large datasets, 8 for MPU (§7.1).
	Epochs int
	// BatchUsers is the minibatch size in users (10 in the paper).
	BatchUsers int
	// LossLastDays restricts the training loss to predictions in the final
	// N days of the window (21 in §6.3; ablation A4 sweeps it; 0 = all).
	LossLastDays int
	// MaxHistory truncates user histories to the most recent N sessions
	// (10,000 for MPU in §7.1; 0 = unlimited).
	MaxHistory int
	// Workers bounds the per-user parallel evaluation goroutines (§7.1);
	// 0 = GOMAXPROCS.
	Workers int
	// ClipNorm caps the global gradient norm per step (0 disables); long
	// sequences occasionally spike gradients (§6.3 footnote on stability).
	ClipNorm float64
	// TimeshiftLead is the prediction lead for timeshift models.
	TimeshiftLead int64
	// FreezeCell trains only the prediction head (latent cross + MLP),
	// leaving the recurrent cell untouched. §9 "Retraining the model"
	// proposes this as the fast path to shipping a new model version
	// without invalidating the hidden states already in the serving store:
	// frozen GRU parameters keep every stored state valid, and skipping
	// backpropagation through time makes retraining significantly faster.
	FreezeCell bool
	Seed       uint64
}

// DefaultTrainConfig returns the paper's settings.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		LR:            1e-3,
		Epochs:        1,
		BatchUsers:    10,
		LossLastDays:  21,
		MaxHistory:    10000,
		ClipNorm:      5,
		TimeshiftLead: DefaultTimeshiftLead,
		Seed:          1,
	}
}

// LossPoint is one point of the Figure 4 training curve: cumulative
// labelled examples processed and the average log loss of the minibatch
// that ended there.
type LossPoint struct {
	ExamplesProcessed int
	Loss              float64
}

// Trainer runs minibatch BPTT over users.
type Trainer struct {
	Model *Model
	Cfg   TrainConfig
	adam  *opt.Adam
	// Curve accumulates the Figure 4 loss curve across epochs.
	Curve []LossPoint
	// processed counts labelled examples consumed so far.
	processed int
	// replicas are reusable per-worker gradient buffers (values aliased to
	// Model, gradients owned), so the per-user scheme allocates no
	// parameter-sized buffers per user.
	replicas []*Model
}

// NewTrainer wires a model to Adam with the configured learning rate.
func NewTrainer(m *Model, cfg TrainConfig) *Trainer {
	a := opt.NewAdam(m.Params(), cfg.LR)
	a.ClipNorm = cfg.ClipNorm
	return &Trainer{Model: m, Cfg: cfg, adam: a}
}

// Train runs the configured number of epochs over the training users and
// returns the final epoch's mean loss.
func (t *Trainer) Train(d *dataset.Dataset) float64 {
	var last float64
	for e := 0; e < t.Cfg.Epochs; e++ {
		last = t.TrainEpoch(d, uint64(e))
	}
	return last
}

// TrainEpoch runs one pass over d's users in minibatches of BatchUsers,
// using the §7.1 "custom parallelism": each user's forward/backward runs
// independently (on its own goroutine, with gradients in a worker replica),
// and gradients are merged in deterministic user order before the Adam
// step. Returns the epoch's example-weighted mean loss.
func (t *Trainer) TrainEpoch(d *dataset.Dataset, epoch uint64) float64 {
	users := d.Users
	if t.Cfg.MaxHistory > 0 {
		users = dataset.TruncateHistories(d, t.Cfg.MaxHistory).Users
	}
	order := tensor.NewRNG(t.Cfg.Seed ^ (epoch * 0x9e37)).Perm(len(users))

	workers := t.Cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for len(t.replicas) < workers {
		t.replicas = append(t.replicas, t.Model.gradClone())
	}

	lossMinTs := d.Start
	if t.Cfg.LossLastDays > 0 {
		lossMinTs = d.CutoffForLastDays(t.Cfg.LossLastDays)
	}

	var epochLoss float64
	var epochN int
	for start := 0; start < len(order); start += t.Cfg.BatchUsers {
		end := start + t.Cfg.BatchUsers
		if end > len(order) {
			end = len(order)
		}
		batch := order[start:end]

		type result struct {
			loss float64
			n    int
		}
		results := make([]result, len(batch))
		nw := workers
		if nw > len(batch) {
			nw = len(batch)
		}
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				replica := t.replicas[w]
				replica.Params().ZeroGrad()
				// Strided assignment keeps work deterministic per worker.
				for bi := w; bi < len(batch); bi += nw {
					ui := batch[bi]
					rng := tensor.NewRNG(t.Cfg.Seed ^ uint64(ui)*0x9e3779b97f4a7c15 ^ epoch)
					loss, n := replica.backpropUser(users[ui], d, lossMinTs, t.Cfg.TimeshiftLead, rng, t.Cfg.FreezeCell)
					results[bi] = result{loss: loss, n: n}
				}
			}(w)
		}
		wg.Wait()

		t.Model.Params().ZeroGrad()
		var batchLoss float64
		var batchN int
		// Merge worker gradients in worker order (deterministic).
		for w := 0; w < nw; w++ {
			t.Model.Params().AddGrads(t.replicas[w].Params())
		}
		for _, r := range results {
			batchLoss += r.loss
			batchN += r.n
		}
		if batchN == 0 {
			continue
		}
		// Average log loss over all prediction/label pairs in the batch
		// (§7.1).
		t.Model.Params().ScaleGrads(1 / float64(batchN))
		t.adam.Step()

		epochLoss += batchLoss
		epochN += batchN
		t.processed += batchN
		t.Curve = append(t.Curve, LossPoint{
			ExamplesProcessed: t.processed,
			Loss:              batchLoss / float64(batchN),
		})
	}
	if epochN == 0 {
		return 0
	}
	return epochLoss / float64(epochN)
}

// backpropUser runs the full forward pass over one user, computes the
// training loss on the labelled examples at/after lossMinTs, then
// backpropagates through time. Gradients accumulate (unscaled) into the
// model's parameters; the caller averages over the batch. Returns the
// summed loss and the number of labelled examples.
//
// With freezeCell set, only the prediction head receives gradients: the
// chain backward is skipped entirely (no per-step caches are even kept), the
// §9 fast-retraining path.
func (m *Model) backpropUser(u *dataset.User, d *dataset.Dataset, lossMinTs int64, lead int64, rng *tensor.RNG, freezeCell bool) (float64, int) {
	if len(u.Sessions) == 0 && !m.Cfg.Timeshift {
		return 0, 0
	}
	states, caches := m.runUpdates(u, !freezeCell)
	times := sessionTimes(u)

	var preds []*predCache
	var sumLoss float64

	if m.Cfg.Timeshift {
		lag := lagIndexer{times: times, delta: lead}
		for _, w := range u.Windows {
			k, tk := lag.next(w.Start)
			if w.Start < lossMinTs {
				continue
			}
			var sinceK int64
			if k > 0 {
				sinceK = w.Start - tk
			}
			f := m.BuildTimeshiftPredictInput(sinceK, nil)
			c := &predCache{k: k}
			logit := m.predictForward(states[k][:m.HiddenDim()], f, true, rng, c)
			y := 0.0
			if w.Accessed {
				y = 1
			}
			loss, dLogit := nn.BCEWithLogits(logit, y)
			c.dLogit = dLogit
			sumLoss += loss
			preds = append(preds, c)
		}
	} else {
		lag := lagIndexer{times: times, delta: Delta(d.Schema)}
		for _, s := range u.Sessions {
			k, tk := lag.next(s.Timestamp)
			if s.Timestamp < lossMinTs {
				continue
			}
			var sinceK int64
			if k > 0 {
				sinceK = s.Timestamp - tk
			}
			f := m.BuildPredictInput(s.Timestamp, s.Cat, sinceK, nil)
			c := &predCache{k: k}
			logit := m.predictForward(states[k][:m.HiddenDim()], f, true, rng, c)
			y := 0.0
			if s.Access {
				y = 1
			}
			loss, dLogit := nn.BCEWithLogits(logit, y)
			c.dLogit = dLogit
			sumLoss += loss
			preds = append(preds, c)
		}
	}
	if len(preds) == 0 {
		return 0, 0
	}

	// Backward: prediction heads first (they deposit gradient at their
	// hidden index k), then backpropagation through time over the chain.
	n := len(u.Sessions)
	dStates := make([]tensor.Vector, n+1)
	hid := m.HiddenDim()
	for _, c := range preds {
		dh := m.predictBackward(c, states[c.k][:hid])
		if freezeCell {
			continue
		}
		if dStates[c.k] == nil {
			dStates[c.k] = tensor.NewVector(m.cell.StateSize())
		}
		dStates[c.k][:hid].Add(dh)
	}
	if freezeCell {
		return sumLoss, len(preds)
	}
	for i := n - 1; i >= 0; i-- {
		if dStates[i+1] == nil {
			continue
		}
		if dStates[i] == nil {
			dStates[i] = tensor.NewVector(m.cell.StateSize())
		}
		m.cell.Backward(caches[i], dStates[i+1], nil, dStates[i])
	}
	return sumLoss, len(preds)
}
