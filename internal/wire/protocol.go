// Package wire is the binary transport for the hot event/predict path.
//
// HTTP/JSON carried every request until PR 8, and BENCH_server.json showed
// the cost: a 3-replica router delivered less throughput than a single
// replica because each hop decoded JSON, re-marshalled it, and paid a
// fresh net/http request cycle. This package replaces that hop with
// persistent connections carrying length-prefixed binary frames — the same
// [1B type][4B little-endian payload length][payload][4B little-endian
// CRC-32 (IEEE) over type+length+payload] layout the replication link
// uses — so a router can forward an event batch by splicing byte ranges
// instead of materializing structs. HTTP/JSON remains the contract for
// everything cold: admin, statz, digest, reshard, flush, replication
// control.
//
// An event batch is a varint count followed by that many self-delimiting
// events. Every event — access as well as start — carries its user ID, so
// a router can route each event by walking [kind][uvarint user] and
// skipping the rest, with no session→owner table and no broadcast for
// orphan accesses. Requests are correlated to replies by an explicit
// request ID (first 8 bytes of every request and reply payload), which is
// what lets one connection carry many requests in flight.
//
// Corruption and truncation are connection-fatal by design: a CRC
// mismatch, an oversized length prefix, or a short read surfaces as an
// error before any payload is interpreted, the connection drops, and the
// client reconnects. Nothing is ever applied from a frame that did not
// arrive whole.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Version is the protocol version exchanged in the Hello frame. A peer
// speaking a different version is rejected at handshake, never mid-stream.
const Version = 1

// Frame types. Requests (client→server) and replies (server→client) both
// start their payload with an 8-byte little-endian request ID; replies
// echo the ID of the request they answer.
const (
	// FHello opens a connection in both directions: [1B version].
	FHello byte = 1
	// FEvents carries an event batch: [8B reqID][uvarint count][events].
	FEvents byte = 2
	// FPredict carries one predict request:
	// [8B reqID][uvarint user][uvarint ts][uvarint nCat][uvarint cat]...
	FPredict byte = 3
	// FAck answers FEvents: [8B reqID][1B status][uvarint accepted][msg].
	FAck byte = 4
	// FPredictReply answers FPredict:
	// [8B reqID][1B status][1B flags][8B float64 bits][msg].
	FPredictReply byte = 5
)

// Event kinds inside an FEvents batch.
const (
	// KindStart is a session start:
	// [1B kind][uvarint user][uvarint ts][uvarint sidLen][sid]
	// [uvarint nCat][uvarint cat]...
	KindStart byte = 0
	// KindAccess is a session access:
	// [1B kind][uvarint user][uvarint ts][uvarint sidLen][sid].
	KindAccess byte = 1
)

// Statuses carried in FAck and FPredictReply. They mirror the HTTP
// contract so the two transports degrade identically: Shed is the wire
// spelling of 429, Draining of 503, BadRequest of 400, Error of 500.
const (
	StatusOK         byte = 0
	StatusShed       byte = 1
	StatusDraining   byte = 2
	StatusBadRequest byte = 3
	StatusError      byte = 4
)

// PredictReply flag bits.
const (
	flagPrecompute byte = 1 << 0
	flagDegraded   byte = 1 << 1
)

// MaxFramePayload bounds a frame so a corrupt length prefix cannot ask
// either side to allocate unbounded memory. It is comfortably above the
// HTTP body limit (8 MiB) so any batch the JSON path accepts fits.
const MaxFramePayload = 16 << 20

var (
	errFrameTooLarge = errors.New("wire: frame exceeds size limit")

	// ErrFrameCorrupt reports a frame whose CRC trailer does not match
	// its bytes. The stream position cannot be trusted past this point,
	// so the connection must be dropped.
	ErrFrameCorrupt = errors.New("wire: frame CRC mismatch")

	// ErrTruncated reports an event batch or request payload that ends
	// mid-field. Like corruption it is connection-fatal: a well-formed
	// peer never produces it, so the stream is not trustworthy.
	ErrTruncated = errors.New("wire: truncated payload")

	// ErrVersionMismatch reports a Hello naming a different protocol
	// version.
	ErrVersionMismatch = errors.New("wire: protocol version mismatch")
)

var crcTable = crc32.IEEETable

// Writer frames outbound messages onto one buffered writer, keeping a
// running CRC from the frame header through the payload so the trailer
// costs no extra pass over the bytes. Callers serialize access and decide
// when to Flush.
type Writer struct {
	w   *bufio.Writer
	crc uint32
}

// NewWriter wraps a buffered writer.
func NewWriter(w *bufio.Writer) *Writer { return &Writer{w: w} }

// Frame starts a frame of the given type and payload length.
func (fw *Writer) Frame(typ byte, payloadLen int) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(payloadLen))
	fw.crc = crc32.Update(0, crcTable, hdr[:])
	_, err := fw.w.Write(hdr[:])
	return err
}

// Body writes payload bytes, folding them into the frame's CRC.
func (fw *Writer) Body(p []byte) error {
	fw.crc = crc32.Update(fw.crc, crcTable, p)
	_, err := fw.w.Write(p)
	return err
}

// Trailer closes the frame with the accumulated CRC.
func (fw *Writer) Trailer() error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], fw.crc)
	_, err := fw.w.Write(b[:])
	return err
}

// Flush flushes the underlying buffered writer.
func (fw *Writer) Flush() error { return fw.w.Flush() }

// WriteRequest frames [8B reqID][rest] under typ.
func (fw *Writer) WriteRequest(typ byte, reqID uint64, rest []byte) error {
	if err := fw.Frame(typ, 8+len(rest)); err != nil {
		return err
	}
	var id [8]byte
	binary.LittleEndian.PutUint64(id[:], reqID)
	if err := fw.Body(id[:]); err != nil {
		return err
	}
	if err := fw.Body(rest); err != nil {
		return err
	}
	return fw.Trailer()
}

// WriteHello frames the version handshake.
func (fw *Writer) WriteHello() error {
	if err := fw.Frame(FHello, 1); err != nil {
		return err
	}
	if err := fw.Body([]byte{Version}); err != nil {
		return err
	}
	return fw.Trailer()
}

// ReadFrame reads one frame, reusing buf when it is large enough, and
// verifies the CRC trailer before handing the payload back. The payload
// aliases (a possibly regrown) buf; callers keep `buf = payload[:cap(payload)]`
// across calls to amortize the allocation.
func ReadFrame(r *bufio.Reader, buf []byte) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxFramePayload {
		return 0, nil, errFrameTooLarge
	}
	if int(n) > cap(buf) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	var tb [4]byte
	if _, err := io.ReadFull(r, tb[:]); err != nil {
		return 0, nil, err
	}
	crc := crc32.Update(0, crcTable, hdr[:])
	crc = crc32.Update(crc, crcTable, buf)
	if binary.LittleEndian.Uint32(tb[:]) != crc {
		return 0, nil, fmt.Errorf("%w (type %d, %d bytes)", ErrFrameCorrupt, hdr[0], n)
	}
	return hdr[0], buf, nil
}

// CheckHello validates a handshake frame read by ReadFrame.
func CheckHello(typ byte, payload []byte) error {
	if typ != FHello || len(payload) != 1 {
		return fmt.Errorf("wire: expected hello frame, got type %d (%d bytes)", typ, len(payload))
	}
	if payload[0] != Version {
		return fmt.Errorf("%w: peer speaks %d, this side %d", ErrVersionMismatch, payload[0], Version)
	}
	return nil
}

// AppendStart appends one encoded session-start event.
func AppendStart(dst []byte, user int, ts int64, sid string, cat []int) []byte {
	dst = append(dst, KindStart)
	dst = binary.AppendUvarint(dst, uint64(user))
	dst = binary.AppendUvarint(dst, uint64(ts))
	dst = binary.AppendUvarint(dst, uint64(len(sid)))
	dst = append(dst, sid...)
	dst = binary.AppendUvarint(dst, uint64(len(cat)))
	for _, c := range cat {
		dst = binary.AppendUvarint(dst, uint64(c))
	}
	return dst
}

// AppendAccess appends one encoded session-access event.
func AppendAccess(dst []byte, user int, ts int64, sid string) []byte {
	dst = append(dst, KindAccess)
	dst = binary.AppendUvarint(dst, uint64(user))
	dst = binary.AppendUvarint(dst, uint64(ts))
	dst = binary.AppendUvarint(dst, uint64(len(sid)))
	dst = append(dst, sid...)
	return dst
}

// AppendPredict appends an encoded predict request (the payload after the
// request ID).
func AppendPredict(dst []byte, user int, ts int64, cat []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(user))
	dst = binary.AppendUvarint(dst, uint64(ts))
	dst = binary.AppendUvarint(dst, uint64(len(cat)))
	for _, c := range cat {
		dst = binary.AppendUvarint(dst, uint64(c))
	}
	return dst
}

// uvarint decodes one varint at off, rejecting values that do not fit an
// int64 and reads that run off the buffer.
func uvarint(p []byte, off int) (v uint64, end int, err error) {
	v, n := binary.Uvarint(p[off:])
	if n <= 0 || v > 1<<63-1 {
		return 0, 0, ErrTruncated
	}
	return v, off + n, nil
}

// eventSpan decodes the routing prefix of the event starting at off and
// returns its user ID and end offset without touching the rest of the
// event. This is the splice fast path: one byte for the kind, one varint
// for the user, then length-skips.
func eventSpan(p []byte, off int) (user int, end int, err error) {
	if off >= len(p) {
		return 0, 0, ErrTruncated
	}
	kind := p[off]
	if kind != KindStart && kind != KindAccess {
		return 0, 0, ErrTruncated
	}
	u, off, err := uvarint(p, off+1)
	if err != nil {
		return 0, 0, err
	}
	if _, off, err = uvarint(p, off); err != nil { // ts
		return 0, 0, err
	}
	sidLen, off, err := uvarint(p, off)
	if err != nil {
		return 0, 0, err
	}
	if sidLen > uint64(len(p)-off) {
		return 0, 0, ErrTruncated
	}
	off += int(sidLen)
	if kind == KindStart {
		nCat, o, err := uvarint(p, off)
		if err != nil {
			return 0, 0, err
		}
		off = o
		for i := uint64(0); i < nCat; i++ {
			if _, off, err = uvarint(p, off); err != nil {
				return 0, 0, err
			}
		}
	}
	return int(u), off, nil
}

// Event is one decoded wire event. Sid aliases the batch buffer and Cat
// aliases the reader's scratch; both are only valid until the next call
// to Next — copy what you retain.
type Event struct {
	Start bool
	User  int
	Ts    int64
	Sid   []byte
	Cat   []int
}

// EventReader walks a varint-prefixed event batch.
type EventReader struct {
	p    []byte
	off  int
	left int
	cat  []int
}

// Reset points the reader at a batch ([uvarint count][events]).
func (er *EventReader) Reset(batch []byte) error {
	n, off, err := uvarint(batch, 0)
	if err != nil {
		return err
	}
	// Each event is at least 4 bytes (kind + three 1-byte varints), so a
	// count wildly larger than the batch is rejected before any loop.
	if n > uint64(len(batch)) {
		return ErrTruncated
	}
	er.p, er.off, er.left = batch, off, int(n)
	return nil
}

// More reports whether events remain.
func (er *EventReader) More() bool { return er.left > 0 }

// Next decodes the next event into ev, reusing ev-independent scratch for
// the category slice. After the last event it verifies the batch has no
// trailing garbage.
func (er *EventReader) Next(ev *Event) error {
	if er.left <= 0 {
		return ErrTruncated
	}
	p, off := er.p, er.off
	if off >= len(p) {
		return ErrTruncated
	}
	kind := p[off]
	if kind != KindStart && kind != KindAccess {
		return ErrTruncated
	}
	u, off, err := uvarint(p, off+1)
	if err != nil {
		return err
	}
	ts, off, err := uvarint(p, off)
	if err != nil {
		return err
	}
	sidLen, off, err := uvarint(p, off)
	if err != nil {
		return err
	}
	if sidLen > uint64(len(p)-off) {
		return ErrTruncated
	}
	ev.Start = kind == KindStart
	ev.User = int(u)
	ev.Ts = int64(ts)
	ev.Sid = p[off : off+int(sidLen)]
	ev.Cat = nil
	off += int(sidLen)
	if kind == KindStart {
		nCat, o, err := uvarint(p, off)
		if err != nil {
			return err
		}
		off = o
		if nCat > uint64(len(p)-off) {
			return ErrTruncated
		}
		cat := er.cat[:0]
		for i := uint64(0); i < nCat; i++ {
			var c uint64
			if c, off, err = uvarint(p, off); err != nil {
				return err
			}
			cat = append(cat, int(c))
		}
		er.cat = cat
		ev.Cat = cat
	}
	er.off = off
	er.left--
	if er.left == 0 && off != len(p) {
		return ErrTruncated
	}
	return nil
}

// PredictRequest is a decoded FPredict payload. Cat aliases the scratch
// passed to ParsePredict.
type PredictRequest struct {
	User int
	Ts   int64
	Cat  []int
}

// ParsePredict decodes a predict payload (after the request ID), appending
// categories to catScratch's backing array.
func ParsePredict(p []byte, catScratch []int) (PredictRequest, []int, error) {
	u, off, err := uvarint(p, 0)
	if err != nil {
		return PredictRequest{}, catScratch, err
	}
	ts, off, err := uvarint(p, off)
	if err != nil {
		return PredictRequest{}, catScratch, err
	}
	nCat, off, err := uvarint(p, off)
	if err != nil {
		return PredictRequest{}, catScratch, err
	}
	if nCat > uint64(len(p)-off) {
		return PredictRequest{}, catScratch, ErrTruncated
	}
	cat := catScratch[:0]
	for i := uint64(0); i < nCat; i++ {
		var c uint64
		if c, off, err = uvarint(p, off); err != nil {
			return PredictRequest{}, cat, err
		}
		cat = append(cat, int(c))
	}
	if off != len(p) {
		return PredictRequest{}, cat, ErrTruncated
	}
	return PredictRequest{User: int(u), Ts: int64(ts), Cat: cat}, cat, nil
}

// PredictUser decodes only the user ID from a predict payload — the
// router's routing fast path.
func PredictUser(p []byte) (int, error) {
	u, _, err := uvarint(p, 0)
	return int(u), err
}

// Ack is a decoded FAck payload.
type Ack struct {
	Status   byte
	Accepted int
	Msg      string
}

// WriteAck frames an event-batch acknowledgement.
func (fw *Writer) WriteAck(reqID uint64, status byte, accepted int, msg string) error {
	var b [8 + 1 + binary.MaxVarintLen64]byte
	binary.LittleEndian.PutUint64(b[:8], reqID)
	b[8] = status
	n := 9 + binary.PutUvarint(b[9:], uint64(accepted))
	if err := fw.Frame(FAck, n+len(msg)); err != nil {
		return err
	}
	if err := fw.Body(b[:n]); err != nil {
		return err
	}
	if len(msg) > 0 {
		if err := fw.Body([]byte(msg)); err != nil {
			return err
		}
	}
	return fw.Trailer()
}

// ParseAck decodes an FAck payload.
func ParseAck(p []byte) (reqID uint64, a Ack, err error) {
	if len(p) < 9 {
		return 0, Ack{}, ErrTruncated
	}
	reqID = binary.LittleEndian.Uint64(p)
	a.Status = p[8]
	acc, off, err := uvarint(p, 9)
	if err != nil {
		return 0, Ack{}, err
	}
	a.Accepted = int(acc)
	if off < len(p) {
		a.Msg = string(p[off:])
	}
	return reqID, a, nil
}

// PredictReply is a decoded FPredictReply payload.
type PredictReply struct {
	Status      byte
	Probability float64
	Precompute  bool
	Degraded    bool
	Msg         string
}

// WritePredictReply frames a predict answer.
func (fw *Writer) WritePredictReply(reqID uint64, pr PredictReply) error {
	var b [18]byte
	binary.LittleEndian.PutUint64(b[:8], reqID)
	b[8] = pr.Status
	if pr.Precompute {
		b[9] |= flagPrecompute
	}
	if pr.Degraded {
		b[9] |= flagDegraded
	}
	binary.LittleEndian.PutUint64(b[10:], math.Float64bits(pr.Probability))
	if err := fw.Frame(FPredictReply, len(b)+len(pr.Msg)); err != nil {
		return err
	}
	if err := fw.Body(b[:]); err != nil {
		return err
	}
	if len(pr.Msg) > 0 {
		if err := fw.Body([]byte(pr.Msg)); err != nil {
			return err
		}
	}
	return fw.Trailer()
}

// ParsePredictReply decodes an FPredictReply payload.
func ParsePredictReply(p []byte) (reqID uint64, pr PredictReply, err error) {
	if len(p) < 18 {
		return 0, PredictReply{}, ErrTruncated
	}
	reqID = binary.LittleEndian.Uint64(p)
	pr.Status = p[8]
	pr.Precompute = p[9]&flagPrecompute != 0
	pr.Degraded = p[9]&flagDegraded != 0
	pr.Probability = math.Float64frombits(binary.LittleEndian.Uint64(p[10:]))
	if len(p) > 18 {
		pr.Msg = string(p[18:])
	}
	return reqID, pr, nil
}

// StatusText names a wire status for error messages.
func StatusText(s byte) string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusShed:
		return "shed"
	case StatusDraining:
		return "draining"
	case StatusBadRequest:
		return "bad request"
	case StatusError:
		return "error"
	}
	return fmt.Sprintf("status %d", s)
}
