package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// modIndexer assigns users round-robin; deterministic and collision-heavy,
// which is what a splice test wants.
type modIndexer int

func (m modIndexer) OwnerIndexOfUser(user int) int { return user % int(m) }

// randomBatch builds count random events over nUsers users, returning the
// encoded batch and the decoded originals.
func randomBatch(rng *rand.Rand, count, nUsers int) ([]byte, []Event) {
	evs := make([]Event, count)
	for i := range evs {
		ev := Event{
			User: rng.Intn(nUsers),
			Ts:   int64(1 + rng.Intn(1_000_000)),
			Sid:  []byte{byte('a' + rng.Intn(26)), byte('0' + rng.Intn(10))},
		}
		if rng.Intn(2) == 0 {
			ev.Start = true
			for c := rng.Intn(4); c > 0; c-- {
				ev.Cat = append(ev.Cat, rng.Intn(100))
			}
		}
		evs[i] = ev
	}
	return buildBatch(evs), evs
}

// TestSplicerParity drives random batches through Split and checks the
// sub-batches against a reference grouping of the decoded events: every
// event lands at its owner, in-batch order is preserved per owner, and the
// sub-batch bytes re-decode to exactly the original events (zero-copy must
// also mean zero corruption).
func TestSplicerParity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var spl Splicer
	for round := 0; round < 50; round++ {
		owners := 1 + rng.Intn(5)
		batch, evs := randomBatch(rng, rng.Intn(40), 1000)
		spl.Reset(owners)
		if err := spl.Split(batch, modIndexer(owners)); err != nil {
			t.Fatalf("round %d: Split: %v", round, err)
		}

		// Reference grouping from the decoded events.
		wantByOwner := make([][]Event, owners)
		for _, ev := range evs {
			o := ev.User % owners
			wantByOwner[o] = append(wantByOwner[o], ev)
		}
		total := 0
		for o := 0; o < owners; o++ {
			n, events := spl.Batch(o)
			total += n
			if n != len(wantByOwner[o]) {
				t.Fatalf("round %d owner %d: %d events, want %d", round, o, n, len(wantByOwner[o]))
			}
			// Re-frame the sub-batch the way the router forwards it and
			// decode it back.
			head := binary.AppendUvarint(nil, uint64(n))
			var er EventReader
			if err := er.Reset(append(head, events...)); err != nil {
				t.Fatalf("round %d owner %d: Reset: %v", round, o, err)
			}
			var ev Event
			for i := 0; er.More(); i++ {
				if err := er.Next(&ev); err != nil {
					t.Fatalf("round %d owner %d event %d: %v", round, o, i, err)
				}
				w := wantByOwner[o][i]
				if ev.Start != w.Start || ev.User != w.User || ev.Ts != w.Ts || !bytes.Equal(ev.Sid, w.Sid) || len(ev.Cat) != len(w.Cat) {
					t.Fatalf("round %d owner %d event %d: got %+v, want %+v", round, o, i, ev, w)
				}
				for j := range w.Cat {
					if ev.Cat[j] != w.Cat[j] {
						t.Fatalf("round %d owner %d event %d: cat %v, want %v", round, o, i, ev.Cat, w.Cat)
					}
				}
			}
		}
		if total != len(evs) {
			t.Fatalf("round %d: spliced %d events, want %d", round, total, len(evs))
		}
	}
}

func TestSplicerRejectsMalformed(t *testing.T) {
	var spl Splicer
	batch := buildBatch(sampleEvents())
	for cut := 0; cut < len(batch); cut++ {
		spl.Reset(3)
		if err := spl.Split(batch[:cut], modIndexer(3)); err == nil {
			t.Fatalf("cut at %d of %d spliced cleanly", cut, len(batch))
		}
	}
	spl.Reset(3)
	if err := spl.Split(append(batch, 0), modIndexer(3)); err == nil {
		t.Fatal("trailing garbage spliced cleanly")
	}
}

// badIndexer returns an out-of-range owner.
type badIndexer struct{}

func (badIndexer) OwnerIndexOfUser(int) int { return 99 }

func TestSplicerRejectsBadOwner(t *testing.T) {
	var spl Splicer
	spl.Reset(2)
	if err := spl.Split(buildBatch(sampleEvents()), badIndexer{}); err == nil {
		t.Fatal("out-of-range owner accepted")
	}
}

// TestSplicerAllocs pins the zero-copy promise: after warm-up, a
// Reset+Split cycle over the same shape allocates nothing — fan-out cost
// is a varint walk plus memcpy into reused buffers.
func TestSplicerAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	batch, _ := randomBatch(rng, 64, 1000)
	var spl Splicer
	ring := modIndexer(3)
	spl.Reset(3)
	if err := spl.Split(batch, ring); err != nil { // warm the buffers
		t.Fatalf("Split: %v", err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		spl.Reset(3)
		if err := spl.Split(batch, ring); err != nil {
			panic(err)
		}
	}); allocs != 0 {
		t.Fatalf("Split steady state: %v allocs/op, want 0", allocs)
	}
}
