package wire

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func TestGenCorpus(t *testing.T) {
	if os.Getenv("WIRE_GEN_CORPUS") == "" {
		t.Skip("set WIRE_GEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	write := func(fuzz, name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", fuzz)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, _, err := frameStreamFuzzSeed()
	if err != nil {
		t.Fatal(err)
	}
	write("FuzzReadFrame", "frame-stream", raw)
	write("FuzzReadFrame", "hello", []byte{FHello, 1, 0, 0, 0, Version})
	write("FuzzEventReader", "sample-batch", buildBatch(sampleEvents()))
	write("FuzzEventReader", "empty-batch", binary.AppendUvarint(nil, 0))
}
