package wire

import (
	"encoding/binary"
	"errors"
)

var errBadOwner = errors.New("wire: splice owner index out of range")

// OwnerIndexer maps a user ID to a replica index. The cluster ring
// implements it; tests substitute anything deterministic.
type OwnerIndexer interface {
	OwnerIndexOfUser(user int) int
}

// Splicer splits an inbound event batch into per-owner sub-batches by
// copying byte ranges — the router's zero-re-marshal fan-out. Events stay
// encoded end to end: the splicer reads only each event's kind byte and
// user varint, length-skips the rest, and appends the event's raw bytes
// to its owner's buffer, so in-frame order is preserved per owner and no
// struct is ever materialized on the forwarding path.
//
// Steady state it allocates nothing: owner buffers and counts are reused
// across calls (Reset truncates, Split appends). A Splicer is not safe
// for concurrent use; pin one per connection.
type Splicer struct {
	bufs   [][]byte
	counts []int
}

// Reset prepares the splicer for n owners, truncating reused buffers.
func (s *Splicer) Reset(n int) {
	if cap(s.bufs) < n {
		grown := make([][]byte, n)
		copy(grown, s.bufs[:cap(s.bufs)])
		s.bufs = grown
		s.counts = make([]int, n)
	}
	s.bufs = s.bufs[:n]
	s.counts = s.counts[:n]
	for i := range s.bufs {
		s.bufs[i] = s.bufs[i][:0]
		s.counts[i] = 0
	}
}

// Split walks batch ([uvarint count][events]) and appends each event's
// bytes to its owner's sub-batch. Any decode error poisons the whole
// batch — nothing partial is exposed — and, because a well-formed client
// never produces one, the caller treats it as connection-fatal.
func (s *Splicer) Split(batch []byte, ring OwnerIndexer) error {
	n, off, err := uvarint(batch, 0)
	if err != nil {
		return err
	}
	if n > uint64(len(batch)) {
		return ErrTruncated
	}
	for i := uint64(0); i < n; i++ {
		user, end, err := eventSpan(batch, off)
		if err != nil {
			return err
		}
		owner := ring.OwnerIndexOfUser(user)
		if owner < 0 || owner >= len(s.bufs) {
			return errBadOwner
		}
		s.bufs[owner] = append(s.bufs[owner], batch[off:end]...)
		s.counts[owner]++
		off = end
	}
	if off != len(batch) {
		return ErrTruncated
	}
	return nil
}

// Owners returns the number of owner slots prepared by Reset.
func (s *Splicer) Owners() int { return len(s.bufs) }

// Batch returns owner i's sub-batch: its event count and concatenated
// event bytes (no count prefix — WriteEvents frames the count). The bytes
// alias the splicer's reused buffer and are valid until the next Reset.
func (s *Splicer) Batch(i int) (count int, events []byte) {
	return s.counts[i], s.bufs[i]
}

// WriteEvents frames an event batch from its parts:
// [8B reqID][uvarint count][events].
func (fw *Writer) WriteEvents(reqID uint64, count int, events []byte) error {
	var b [8 + binary.MaxVarintLen64]byte
	binary.LittleEndian.PutUint64(b[:8], reqID)
	n := 8 + binary.PutUvarint(b[8:], uint64(count))
	if err := fw.Frame(FEvents, n+len(events)); err != nil {
		return err
	}
	if err := fw.Body(b[:n]); err != nil {
		return err
	}
	if err := fw.Body(events); err != nil {
		return err
	}
	return fw.Trailer()
}
