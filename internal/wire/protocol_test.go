package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// buildBatch encodes a canonical event batch: [uvarint count][events].
func buildBatch(evs []Event) []byte {
	b := binary.AppendUvarint(nil, uint64(len(evs)))
	for _, ev := range evs {
		if ev.Start {
			b = AppendStart(b, ev.User, ev.Ts, string(ev.Sid), ev.Cat)
		} else {
			b = AppendAccess(b, ev.User, ev.Ts, string(ev.Sid))
		}
	}
	return b
}

func sampleEvents() []Event {
	return []Event{
		{Start: true, User: 7, Ts: 100, Sid: []byte("u7-s0"), Cat: []int{1, 2, 3}},
		{Start: false, User: 7, Ts: 130, Sid: []byte("u7-s0")},
		{Start: true, User: 4095, Ts: 101, Sid: []byte("u4095-s0"), Cat: nil},
		{Start: true, User: 0, Ts: 1, Sid: []byte("x"), Cat: []int{0}},
		{Start: false, User: 1 << 30, Ts: 1 << 40, Sid: []byte("big-user")},
	}
}

func TestEventBatchRoundTrip(t *testing.T) {
	want := sampleEvents()
	batch := buildBatch(want)

	var er EventReader
	if err := er.Reset(batch); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	var got []Event
	var ev Event
	for er.More() {
		if err := er.Next(&ev); err != nil {
			t.Fatalf("Next: %v", err)
		}
		// Sid and Cat alias reader state; copy like real consumers do.
		got = append(got, Event{
			Start: ev.Start, User: ev.User, Ts: ev.Ts,
			Sid: append([]byte(nil), ev.Sid...),
			Cat: append([]int(nil), ev.Cat...),
		})
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Start != w.Start || g.User != w.User || g.Ts != w.Ts || string(g.Sid) != string(w.Sid) {
			t.Fatalf("event %d: got %+v, want %+v", i, g, w)
		}
		if w.Start && len(w.Cat) != len(g.Cat) {
			t.Fatalf("event %d: cat %v, want %v", i, g.Cat, w.Cat)
		}
		for j := range w.Cat {
			if g.Cat[j] != w.Cat[j] {
				t.Fatalf("event %d: cat %v, want %v", i, g.Cat, w.Cat)
			}
		}
	}
}

// TestEventSpanAgreesWithReader pins the splice fast path against the full
// decoder: both walks must see the same users at the same boundaries —
// the invariant that makes routing-by-span and applying-by-decode agree.
func TestEventSpanAgreesWithReader(t *testing.T) {
	batch := buildBatch(sampleEvents())
	n, off, err := uvarint(batch, 0)
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	var er EventReader
	if err := er.Reset(batch); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	var ev Event
	for i := uint64(0); i < n; i++ {
		user, end, err := eventSpan(batch, off)
		if err != nil {
			t.Fatalf("eventSpan at %d: %v", off, err)
		}
		if err := er.Next(&ev); err != nil {
			t.Fatalf("Next: %v", err)
		}
		if user != ev.User {
			t.Fatalf("event %d: span user %d, reader user %d", i, user, ev.User)
		}
		if end != er.off {
			t.Fatalf("event %d: span end %d, reader offset %d", i, end, er.off)
		}
		off = end
	}
	if off != len(batch) {
		t.Fatalf("span walk ended at %d of %d", off, len(batch))
	}
}

func TestEventBatchTruncationEveryByte(t *testing.T) {
	batch := buildBatch(sampleEvents())
	for cut := 0; cut < len(batch); cut++ {
		var er EventReader
		var ev Event
		err := er.Reset(batch[:cut])
		for err == nil && er.More() {
			err = er.Next(&ev)
		}
		// A batch cut anywhere must surface an error: the count promises
		// more events than the bytes deliver, so a clean finish would mean
		// the decoder invented data.
		if err == nil {
			t.Fatalf("cut at %d of %d decoded cleanly", cut, len(batch))
		}
	}
}

func TestAckRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewWriter(bufio.NewWriter(&buf))
	if err := fw.WriteAck(42, StatusShed, 0, "busy"); err != nil {
		t.Fatalf("WriteAck: %v", err)
	}
	if err := fw.WriteAck(43, StatusOK, 17, ""); err != nil {
		t.Fatalf("WriteAck: %v", err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	br := bufio.NewReader(&buf)
	typ, p, err := ReadFrame(br, nil)
	if err != nil || typ != FAck {
		t.Fatalf("frame 1: type %d err %v", typ, err)
	}
	id, a, err := ParseAck(p)
	if err != nil || id != 42 || a.Status != StatusShed || a.Accepted != 0 || a.Msg != "busy" {
		t.Fatalf("ack 1: id %d %+v err %v", id, a, err)
	}
	typ, p, err = ReadFrame(br, p[:cap(p)])
	if err != nil || typ != FAck {
		t.Fatalf("frame 2: type %d err %v", typ, err)
	}
	id, a, err = ParseAck(p)
	if err != nil || id != 43 || a.Status != StatusOK || a.Accepted != 17 || a.Msg != "" {
		t.Fatalf("ack 2: id %d %+v err %v", id, a, err)
	}
}

func TestPredictReplyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewWriter(bufio.NewWriter(&buf))
	in := PredictReply{Status: StatusOK, Probability: 0.731, Precompute: true, Degraded: true, Msg: "m"}
	if err := fw.WritePredictReply(99, in); err != nil {
		t.Fatalf("WritePredictReply: %v", err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	typ, p, err := ReadFrame(bufio.NewReader(&buf), nil)
	if err != nil || typ != FPredictReply {
		t.Fatalf("frame: type %d err %v", typ, err)
	}
	id, out, err := ParsePredictReply(p)
	if err != nil || id != 99 {
		t.Fatalf("reply: id %d err %v", id, err)
	}
	if out != in {
		t.Fatalf("reply: got %+v, want %+v", out, in)
	}
	if math.Float64bits(out.Probability) != math.Float64bits(in.Probability) {
		t.Fatalf("probability bits differ")
	}
}

func TestPredictRoundTrip(t *testing.T) {
	payload := AppendPredict(nil, 123, 456, []int{9, 8, 7})
	pr, _, err := ParsePredict(payload, nil)
	if err != nil {
		t.Fatalf("ParsePredict: %v", err)
	}
	if pr.User != 123 || pr.Ts != 456 || len(pr.Cat) != 3 || pr.Cat[0] != 9 || pr.Cat[2] != 7 {
		t.Fatalf("got %+v", pr)
	}
	if u, err := PredictUser(payload); err != nil || u != 123 {
		t.Fatalf("PredictUser: %d %v", u, err)
	}
	if _, _, err := ParsePredict(payload[:len(payload)-1], nil); err == nil {
		t.Fatal("truncated predict decoded cleanly")
	}
	if _, _, err := ParsePredict(append(payload, 0), nil); err == nil {
		t.Fatal("predict with trailing garbage decoded cleanly")
	}
}

func TestHelloHandshake(t *testing.T) {
	var buf bytes.Buffer
	fw := NewWriter(bufio.NewWriter(&buf))
	if err := fw.WriteHello(); err != nil {
		t.Fatalf("WriteHello: %v", err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	typ, p, err := ReadFrame(bufio.NewReader(&buf), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if err := CheckHello(typ, p); err != nil {
		t.Fatalf("CheckHello: %v", err)
	}
	if err := CheckHello(typ, []byte{Version + 1}); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("version mismatch not detected: %v", err)
	}
	if err := CheckHello(FAck, p); err == nil {
		t.Fatal("wrong frame type accepted as hello")
	}
}

// frameStream writes a representative frame sequence and returns the raw
// bytes plus the expected (type, payload) sequence.
func frameStream(t *testing.T) ([]byte, []byte, [][2][]byte) {
	t.Helper()
	var buf bytes.Buffer
	fw := NewWriter(bufio.NewWriter(&buf))
	batch := buildBatch(sampleEvents())
	write := func(err error) {
		if err != nil {
			t.Fatalf("writing stream: %v", err)
		}
	}
	write(fw.WriteHello())
	write(fw.WriteRequest(FEvents, 1, batch))
	write(fw.WriteRequest(FPredict, 2, AppendPredict(nil, 7, 100, []int{1})))
	write(fw.WriteAck(1, StatusOK, len(sampleEvents()), ""))
	write(fw.WritePredictReply(2, PredictReply{Status: StatusOK, Probability: 0.5}))
	write(fw.Flush())
	raw := append([]byte(nil), buf.Bytes()...)

	var frames [][2][]byte
	br := bufio.NewReader(bytes.NewReader(raw))
	for {
		typ, p, err := ReadFrame(br, nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("reading back stream: %v", err)
		}
		frames = append(frames, [2][]byte{{typ}, append([]byte(nil), p...)})
	}
	return raw, batch, frames
}

// TestWireEveryTruncationBoundary cuts a valid frame stream at every byte
// offset and asserts the reader never misparses: every frame that comes
// out before the error must be byte-identical to a frame that was written,
// and the cut always surfaces as an error — the clean connection-drop
// signal the client's reconnect path keys on. No prefix may decode to a
// frame that was never sent.
func TestWireEveryTruncationBoundary(t *testing.T) {
	raw, _, want := frameStream(t)
	for cut := 0; cut < len(raw); cut++ {
		br := bufio.NewReader(bytes.NewReader(raw[:cut]))
		var buf []byte
		n := 0
		for {
			typ, p, err := ReadFrame(br, buf)
			if err != nil {
				// Any error is a clean drop; what must never happen is a
				// frame beyond the fully-delivered prefix.
				break
			}
			buf = p[:cap(p)]
			if n >= len(want) {
				t.Fatalf("cut %d: decoded %d frames, only %d were sent", cut, n+1, len(want))
			}
			if typ != want[n][0][0] || !bytes.Equal(p, want[n][1]) {
				t.Fatalf("cut %d: frame %d misparsed", cut, n)
			}
			n++
		}
		// A cut strictly inside frame k must deliver exactly frames 0..k-1.
		// Verify monotonicity: the number of whole frames the prefix holds.
		whole := wholeFrames(raw[:cut], want)
		if n != whole {
			t.Fatalf("cut %d: decoded %d frames, prefix holds %d whole frames", cut, n, whole)
		}
	}
}

// wholeFrames counts how many of the expected frames fit entirely within
// prefix, from the framed sizes (5-byte header + payload + 4-byte CRC).
func wholeFrames(prefix []byte, frames [][2][]byte) int {
	off, n := 0, 0
	for _, f := range frames {
		off += 5 + len(f[1]) + 4
		if off > len(prefix) {
			break
		}
		n++
	}
	return n
}

// TestWireEveryBitFlip flips one bit at every byte offset of a framed
// message and asserts the CRC (or a length/short-read check) rejects it —
// corruption is connection-fatal, never silently applied.
func TestWireEveryBitFlip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewWriter(bufio.NewWriter(&buf))
	if err := fw.WriteRequest(FEvents, 7, buildBatch(sampleEvents())); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	raw := buf.Bytes()
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 1 << (i % 8)
		_, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(mut)), nil)
		if err == nil {
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	hdr := make([]byte, 5)
	hdr[0] = FEvents
	binary.LittleEndian.PutUint32(hdr[1:], MaxFramePayload+1)
	_, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(hdr)), nil)
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("oversize frame not rejected before the read: %v", err)
	}
}

func FuzzReadFrame(f *testing.F) {
	raw, _, _ := frameStreamFuzzSeed()
	f.Add(raw)
	f.Add([]byte{})
	f.Add([]byte{FHello, 1, 0, 0, 0, Version})
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		typ, p, err := ReadFrame(br, nil)
		if err != nil {
			return
		}
		// Anything accepted must survive a write/read round trip intact.
		var buf bytes.Buffer
		fw := NewWriter(bufio.NewWriter(&buf))
		if err := fw.Frame(typ, len(p)); err != nil {
			t.Fatalf("re-frame: %v", err)
		}
		if err := fw.Body(p); err != nil {
			t.Fatalf("re-body: %v", err)
		}
		if err := fw.Trailer(); err != nil {
			t.Fatalf("re-trailer: %v", err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatalf("re-flush: %v", err)
		}
		typ2, p2, err := ReadFrame(bufio.NewReader(&buf), nil)
		if err != nil || typ2 != typ || !bytes.Equal(p2, p) {
			t.Fatalf("round trip diverged: %v", err)
		}
	})
}

func FuzzEventReader(f *testing.F) {
	f.Add(buildBatch(sampleEvents()))
	f.Add(binary.AppendUvarint(nil, 0))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, batch []byte) {
		var er EventReader
		var ev Event
		if err := er.Reset(batch); err != nil {
			return
		}
		// The full decoder and the splice fast path must agree on every
		// boundary and user — the invariant routing correctness rides on.
		_, off, err := uvarint(batch, 0)
		if err != nil {
			t.Fatalf("Reset accepted a batch uvarint rejects: %v", err)
		}
		for er.More() {
			if err := er.Next(&ev); err != nil {
				if _, _, serr := eventSpan(batch, off); serr == nil {
					// eventSpan may accept an event whose tail the full
					// decoder rejects only if the error is elsewhere
					// (trailing garbage after the last event).
					if er.left != 0 {
						t.Fatalf("reader rejected (%v) what eventSpan accepted at %d", err, off)
					}
				}
				return
			}
			user, end, serr := eventSpan(batch, off)
			if serr != nil {
				t.Fatalf("eventSpan rejected (%v) what reader accepted at %d", serr, off)
			}
			if user != ev.User || end != er.off {
				t.Fatalf("span (%d,%d) disagrees with reader (%d,%d)", user, end, ev.User, er.off)
			}
			off = end
		}
	})
}

// frameStreamFuzzSeed is frameStream without the testing.T, for f.Add.
func frameStreamFuzzSeed() ([]byte, []byte, error) {
	var buf bytes.Buffer
	fw := NewWriter(bufio.NewWriter(&buf))
	batch := buildBatch(sampleEvents())
	var err error
	if e := fw.WriteHello(); e != nil {
		err = e
	}
	if e := fw.WriteRequest(FEvents, 1, batch); e != nil {
		err = e
	}
	if e := fw.Flush(); e != nil {
		err = e
	}
	return buf.Bytes(), batch, err
}
