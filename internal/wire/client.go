package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
)

var (
	// ErrClientClosed reports a call on a closed client.
	ErrClientClosed = errors.New("wire: client closed")
	// ErrCallTimeout reports a request that got no reply within the call
	// timeout. The request may still execute — callers retry only
	// idempotent work (predicts, never events).
	ErrCallTimeout = errors.New("wire: call timeout")
)

// ClientOptions configure a pooled wire client.
type ClientOptions struct {
	// Conns is the pool size (default 1). Callers pin a lane — a user
	// shard, an inbound connection — to one pooled connection so
	// per-lane request order is preserved end to end.
	Conns int
	// Window caps requests in flight per connection (default 64).
	Window int
	// DialTimeout bounds connection establishment including the version
	// handshake (default 5s).
	DialTimeout time.Duration
	// CallTimeout bounds one request round trip, queueing included
	// (default 30s).
	CallTimeout time.Duration
}

func (o *ClientOptions) fill() {
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 30 * time.Second
	}
}

// Client is a pooled, pipelined wire client for one server address.
// Each pooled connection carries up to Window requests in flight,
// correlated by request ID; replies are dispatched by a per-connection
// reader goroutine. A broken connection fails its in-flight requests and
// is redialed transparently on next use — callers decide what is safe to
// re-send (predicts yes, events no).
type Client struct {
	addr   string
	opts   ClientOptions
	conns  []*clientConn
	closed atomic.Bool
}

// NewClient builds a client for addr. It does not dial — connections are
// established lazily on first use.
func NewClient(addr string, opts ClientOptions) *Client {
	opts.fill()
	c := &Client{addr: addr, opts: opts}
	c.conns = make([]*clientConn, opts.Conns)
	for i := range c.conns {
		c.conns[i] = &clientConn{
			cl:      c,
			window:  make(chan struct{}, opts.Window),
			pending: map[uint64]chan reply{},
		}
	}
	return c
}

// Addr returns the server address the client dials.
func (c *Client) Addr() string { return c.addr }

// Close tears down every pooled connection and fails in-flight requests.
// It cannot fail: closing is a state flip plus best-effort socket closes.
func (c *Client) Close() {
	c.closed.Store(true)
	for _, cc := range c.conns {
		cc.fail(0, ErrClientClosed)
	}
}

// SendEvents sends one event batch (count + pre-encoded events) on the
// lane's pinned connection and waits for the server's ack. A transport
// error leaves delivery unknown; events are never retried here — the
// caller owns that policy (the double-apply rule).
func (c *Client) SendEvents(lane uint64, count int, events []byte) (Ack, error) {
	var head [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(head[:], uint64(count))
	r, err := c.lane(lane).roundTrip(FEvents, head[:n], events)
	if err != nil {
		return Ack{}, err
	}
	return r.ack, nil
}

// SendPredict sends one pre-encoded predict payload (after the request
// ID) and waits for the reply. Predicts are idempotent, so a transport
// error is transparently retried on a fresh connection up to `retries`
// times before surfacing.
func (c *Client) SendPredict(lane uint64, payload []byte, retries int) (PredictReply, error) {
	cc := c.lane(lane)
	for attempt := 0; ; attempt++ {
		r, err := cc.roundTrip(FPredict, payload, nil)
		if err == nil {
			return r.pr, nil
		}
		if attempt >= retries || errors.Is(err, ErrClientClosed) {
			return PredictReply{}, err
		}
	}
}

func (c *Client) lane(lane uint64) *clientConn {
	return c.conns[lane%uint64(len(c.conns))]
}

// reply carries one correlated server response (or the transport error
// that killed the connection it rode).
type reply struct {
	ack Ack
	pr  PredictReply
	err error
}

// clientConn is one pooled connection. Locks are leaf-ordered and never
// held across blocking I/O: mu guards (re)dial state swaps, writeMu
// serializes frame writes, pendMu guards the correlation map. Dialing,
// reading, and reply delivery all happen outside every lock.
type clientConn struct {
	cl *Client

	mu   sync.Mutex // guards conn/fw/gen swaps; never held while dialing or reading
	conn net.Conn
	fw   *Writer
	gen  uint64

	writeMu sync.Mutex // serializes frame write + flush

	pendMu  sync.Mutex
	pending map[uint64]chan reply

	nextID atomic.Uint64
	window chan struct{}
}

func (cc *clientConn) roundTrip(typ byte, head, rest []byte) (reply, error) {
	timer := time.NewTimer(cc.cl.opts.CallTimeout)
	defer timer.Stop()

	// One window slot per request bounds pipelining depth and applies
	// backpressure before the write, sharing the call's timeout budget.
	select {
	case cc.window <- struct{}{}:
	case <-timer.C:
		return reply{}, fmt.Errorf("%w: no window slot to %s", ErrCallTimeout, cc.cl.addr)
	}
	defer func() { <-cc.window }()

	fw, gen, err := cc.ensure()
	if err != nil {
		return reply{}, err
	}

	id := cc.nextID.Add(1)
	ch := make(chan reply, 1)
	cc.pendMu.Lock()
	cc.pending[id] = ch
	cc.pendMu.Unlock()

	cc.writeMu.Lock()
	err = fw.Frame(typ, 8+len(head)+len(rest))
	if err == nil {
		var idb [8]byte
		binary.LittleEndian.PutUint64(idb[:], id)
		err = fw.Body(idb[:])
	}
	if err == nil {
		err = fw.Body(head)
	}
	if err == nil && len(rest) > 0 {
		err = fw.Body(rest)
	}
	if err == nil {
		err = fw.Trailer()
	}
	if err == nil {
		err = fw.Flush()
	}
	cc.writeMu.Unlock()
	if err != nil {
		cc.unregister(id)
		cc.fail(gen, err)
		return reply{}, fmt.Errorf("wire: write to %s: %w", cc.cl.addr, err)
	}

	select {
	case r := <-ch:
		return r, r.err
	case <-timer.C:
		// The reply may still arrive; the reader drops unknown IDs.
		cc.unregister(id)
		return reply{}, fmt.Errorf("%w waiting on %s", ErrCallTimeout, cc.cl.addr)
	}
}

// ensure returns the live connection's writer, dialing outside all locks
// when there is none. Two racing dials are resolved under mu: the loser
// closes its fresh connection.
func (cc *clientConn) ensure() (*Writer, uint64, error) {
	cc.mu.Lock()
	if cc.cl.closed.Load() {
		cc.mu.Unlock()
		return nil, 0, ErrClientClosed
	}
	if cc.conn != nil {
		fw, gen := cc.fw, cc.gen
		cc.mu.Unlock()
		return fw, gen, nil
	}
	cc.mu.Unlock()

	conn, br, fw, err := dial(cc.cl.addr, cc.cl.opts.DialTimeout)
	if err != nil {
		return nil, 0, err
	}

	cc.mu.Lock()
	if cc.cl.closed.Load() {
		cc.mu.Unlock()
		conn.Close()
		return nil, 0, ErrClientClosed
	}
	if cc.conn != nil { // lost a dial race; use the winner
		fw, gen := cc.fw, cc.gen
		cc.mu.Unlock()
		conn.Close()
		return fw, gen, nil
	}
	cc.conn, cc.fw = conn, fw
	cc.gen++
	gen := cc.gen
	cc.mu.Unlock()

	go cc.readLoop(br, gen)
	return fw, gen, nil
}

// dial connects, threads the wire.read/wire.write fault points through
// the connection, and exchanges the version handshake. A watchdog timer
// bounds the handshake read without holding any lock.
func dial(addr string, timeout time.Duration) (net.Conn, *bufio.Reader, *Writer, error) {
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, nil, nil, err
	}
	conn := faults.WrapConn("wire", addr, raw)
	watchdog := time.AfterFunc(timeout, func() { conn.Close() })
	defer watchdog.Stop()

	fw := NewWriter(bufio.NewWriterSize(conn, 32<<10))
	br := bufio.NewReaderSize(conn, 32<<10)
	if err := fw.WriteHello(); err == nil {
		err = fw.Flush()
	}
	if err != nil {
		conn.Close()
		return nil, nil, nil, fmt.Errorf("wire: handshake write to %s: %w", addr, err)
	}
	typ, p, err := ReadFrame(br, nil)
	if err != nil {
		conn.Close()
		return nil, nil, nil, fmt.Errorf("wire: handshake read from %s: %w", addr, err)
	}
	if err := CheckHello(typ, p); err != nil {
		conn.Close()
		return nil, nil, nil, err
	}
	return conn, br, fw, nil
}

// readLoop dispatches replies by request ID until the connection dies.
func (cc *clientConn) readLoop(br *bufio.Reader, gen uint64) {
	var buf []byte
	for {
		typ, p, err := ReadFrame(br, buf)
		if err != nil {
			cc.fail(gen, err)
			return
		}
		buf = p[:cap(p)]
		var id uint64
		var r reply
		switch typ {
		case FAck:
			id, r.ack, err = ParseAck(p)
		case FPredictReply:
			id, r.pr, err = ParsePredictReply(p)
		default:
			err = fmt.Errorf("wire: unexpected frame type %d from %s", typ, cc.cl.addr)
		}
		if err != nil {
			cc.fail(gen, err)
			return
		}
		cc.pendMu.Lock()
		ch := cc.pending[id]
		delete(cc.pending, id)
		cc.pendMu.Unlock()
		if ch != nil {
			ch <- r // buffered(1), sole sender after delete — never blocks
		}
	}
}

func (cc *clientConn) unregister(id uint64) {
	cc.pendMu.Lock()
	delete(cc.pending, id)
	cc.pendMu.Unlock()
}

// fail tears down generation gen (0 = whatever is live) and errors every
// in-flight request: their writes rode the dead connection, so no reply
// will come. Delivery happens outside pendMu.
func (cc *clientConn) fail(gen uint64, cause error) {
	cc.mu.Lock()
	if cc.conn == nil || (gen != 0 && cc.gen != gen) {
		cc.mu.Unlock()
		return
	}
	conn := cc.conn
	cc.conn, cc.fw = nil, nil
	cc.mu.Unlock()
	conn.Close()

	cc.pendMu.Lock()
	chans := make([]chan reply, 0, len(cc.pending))
	for id, ch := range cc.pending {
		delete(cc.pending, id)
		chans = append(chans, ch)
	}
	cc.pendMu.Unlock()
	err := fmt.Errorf("wire: connection to %s lost: %w", cc.cl.addr, cause)
	for _, ch := range chans {
		ch <- reply{err: err}
	}
}
