package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// testWireServer is a minimal protocol peer for client tests: handshake,
// then a per-connection frame loop delegating to a pluggable handler.
type testWireServer struct {
	t *testing.T
	l net.Listener

	mu           sync.Mutex
	conns        int
	eventsFrames int

	// handle processes one request frame; returning false drops the
	// connection (the misbehaving-server lever reconnect tests pull).
	handle func(s *testWireServer, connNo int, fw *Writer, typ byte, p []byte) bool
}

func newTestWireServer(t *testing.T, handle func(*testWireServer, int, *Writer, byte, []byte) bool) *testWireServer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &testWireServer{t: t, l: l, handle: handle}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns++
			n := s.conns
			s.mu.Unlock()
			go s.serve(conn, n)
		}
	}()
	return s
}

func (s *testWireServer) addr() string { return s.l.Addr().String() }

func (s *testWireServer) connCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conns
}

func (s *testWireServer) eventsSeen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eventsFrames
}

func (s *testWireServer) serve(conn net.Conn, connNo int) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	fw := NewWriter(bufio.NewWriter(conn))
	typ, p, err := ReadFrame(br, nil)
	if err != nil || CheckHello(typ, p) != nil {
		return
	}
	if err := fw.WriteHello(); err != nil || fw.Flush() != nil {
		return
	}
	buf := p[:cap(p)]
	for {
		typ, p, err := ReadFrame(br, buf)
		if err != nil {
			return
		}
		buf = p[:cap(p)]
		if typ == FEvents {
			s.mu.Lock()
			s.eventsFrames++
			s.mu.Unlock()
		}
		if !s.handle(s, connNo, fw, typ, p) {
			return
		}
	}
}

// echoHandler answers events with an OK ack and predicts with the user ID
// as the probability — enough structure to verify correlation end to end.
func echoHandler(_ *testWireServer, _ int, fw *Writer, typ byte, p []byte) bool {
	reqID := binary.LittleEndian.Uint64(p)
	switch typ {
	case FEvents:
		cnt, _, err := uvarint(p, 8)
		if err != nil {
			return false
		}
		if fw.WriteAck(reqID, StatusOK, int(cnt), "") != nil {
			return false
		}
	case FPredict:
		pr, _, err := ParsePredict(p[8:], nil)
		if err != nil {
			return false
		}
		if fw.WritePredictReply(reqID, PredictReply{Status: StatusOK, Probability: float64(pr.User)}) != nil {
			return false
		}
	default:
		return false
	}
	return fw.Flush() == nil
}

func testClientOptions() ClientOptions {
	return ClientOptions{DialTimeout: 5 * time.Second, CallTimeout: 5 * time.Second}
}

func TestClientRoundTrip(t *testing.T) {
	s := newTestWireServer(t, echoHandler)
	cl := NewClient(s.addr(), testClientOptions())
	defer cl.Close()

	batch := buildBatch(sampleEvents())
	// SendEvents takes the events without the count prefix.
	_, off, err := uvarint(batch, 0)
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	ack, err := cl.SendEvents(0, len(sampleEvents()), batch[off:])
	if err != nil {
		t.Fatalf("SendEvents: %v", err)
	}
	if ack.Status != StatusOK || ack.Accepted != len(sampleEvents()) {
		t.Fatalf("ack: %+v", ack)
	}
	pr, err := cl.SendPredict(0, AppendPredict(nil, 31, 100, nil), 0)
	if err != nil {
		t.Fatalf("SendPredict: %v", err)
	}
	if pr.Status != StatusOK || pr.Probability != 31 {
		t.Fatalf("reply: %+v", pr)
	}
}

// TestClientPipeliningOutOfOrder holds a window of requests server-side
// and answers them in reverse: correlation by request ID must route every
// reply to its caller even when the server reorders.
func TestClientPipeliningOutOfOrder(t *testing.T) {
	const k = 8
	const warmUser = 1 << 20
	var held []struct {
		id   uint64
		user int
	}
	handle := func(_ *testWireServer, _ int, fw *Writer, typ byte, p []byte) bool {
		if typ != FPredict {
			return false
		}
		pr, _, err := ParsePredict(p[8:], nil)
		if err != nil {
			return false
		}
		if pr.User == warmUser { // connection warm-up: answer immediately
			if fw.WritePredictReply(binary.LittleEndian.Uint64(p), PredictReply{Status: StatusOK}) != nil {
				return false
			}
			return fw.Flush() == nil
		}
		held = append(held, struct {
			id   uint64
			user int
		}{binary.LittleEndian.Uint64(p), pr.User})
		if len(held) < k {
			return true
		}
		for i := len(held) - 1; i >= 0; i-- {
			if fw.WritePredictReply(held[i].id, PredictReply{Status: StatusOK, Probability: float64(held[i].user)}) != nil {
				return false
			}
		}
		held = held[:0]
		return fw.Flush() == nil
	}
	s := newTestWireServer(t, handle)
	opts := testClientOptions()
	opts.Window = k
	cl := NewClient(s.addr(), opts)
	defer cl.Close()

	// Dial once before fanning out, so the k goroutines below share one
	// established connection instead of racing the first dial.
	if _, err := cl.SendPredict(0, AppendPredict(nil, warmUser, 1, nil), 0); err != nil {
		t.Fatalf("warm-up: %v", err)
	}

	var wg sync.WaitGroup
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(user int) {
			defer wg.Done()
			pr, err := cl.SendPredict(0, AppendPredict(nil, user, 100, nil), 0)
			if err != nil {
				errs[user] = err
				return
			}
			if pr.Probability != float64(user) {
				errs[user] = errors.New("reply correlated to the wrong request")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if s.connCount() != 1 {
		t.Fatalf("pipelined requests used %d connections, want 1", s.connCount())
	}
}

// TestClientReconnect kills the first connection after one unanswered
// request: the failed call surfaces an error, the retry redials
// transparently, and the second connection answers.
func TestClientReconnect(t *testing.T) {
	handle := func(s *testWireServer, connNo int, fw *Writer, typ byte, p []byte) bool {
		if connNo == 1 {
			return false // drop without replying
		}
		return echoHandler(s, connNo, fw, typ, p)
	}
	s := newTestWireServer(t, handle)
	cl := NewClient(s.addr(), testClientOptions())
	defer cl.Close()

	pr, err := cl.SendPredict(0, AppendPredict(nil, 5, 100, nil), 3)
	if err != nil {
		t.Fatalf("SendPredict with retries: %v", err)
	}
	if pr.Probability != 5 {
		t.Fatalf("reply: %+v", pr)
	}
	if s.connCount() < 2 {
		t.Fatalf("reconnect used %d connections, want >= 2", s.connCount())
	}
}

// TestClientEventsNeverRetried pins the double-apply rule at the transport
// layer: a dead connection fails SendEvents — exactly one events frame
// reaches the server, because delivery is unknown and only the caller may
// re-send an ordered batch.
func TestClientEventsNeverRetried(t *testing.T) {
	handle := func(s *testWireServer, connNo int, fw *Writer, typ byte, p []byte) bool {
		if connNo == 1 {
			return false
		}
		return echoHandler(s, connNo, fw, typ, p)
	}
	s := newTestWireServer(t, handle)
	cl := NewClient(s.addr(), testClientOptions())
	defer cl.Close()

	batch := buildBatch(sampleEvents())
	_, off, _ := uvarint(batch, 0)
	if _, err := cl.SendEvents(0, len(sampleEvents()), batch[off:]); err == nil {
		t.Fatal("SendEvents on a dying connection reported success")
	}
	if got := s.eventsSeen(); got != 1 {
		t.Fatalf("server saw %d events frames, want exactly 1 (no transport retry)", got)
	}
}

func TestClientClose(t *testing.T) {
	s := newTestWireServer(t, echoHandler)
	cl := NewClient(s.addr(), testClientOptions())
	if _, err := cl.SendPredict(0, AppendPredict(nil, 1, 1, nil), 0); err != nil {
		t.Fatalf("SendPredict: %v", err)
	}
	cl.Close()
	if _, err := cl.SendPredict(0, AppendPredict(nil, 1, 1, nil), 5); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("call after Close: %v, want ErrClientClosed", err)
	}
}

// TestClientLanePinning: distinct lanes land on distinct pooled
// connections (lane % conns), the property per-user ordering rides on.
func TestClientLanePinning(t *testing.T) {
	s := newTestWireServer(t, echoHandler)
	opts := testClientOptions()
	opts.Conns = 2
	cl := NewClient(s.addr(), opts)
	defer cl.Close()

	if _, err := cl.SendPredict(0, AppendPredict(nil, 1, 1, nil), 0); err != nil {
		t.Fatalf("lane 0: %v", err)
	}
	if _, err := cl.SendPredict(1, AppendPredict(nil, 2, 1, nil), 0); err != nil {
		t.Fatalf("lane 1: %v", err)
	}
	if s.connCount() != 2 {
		t.Fatalf("two lanes used %d connections, want 2", s.connCount())
	}
	// Same lane again: no new dial.
	if _, err := cl.SendPredict(2, AppendPredict(nil, 3, 1, nil), 0); err != nil {
		t.Fatalf("lane 2: %v", err)
	}
	if s.connCount() != 2 {
		t.Fatalf("lane reuse dialed a new connection (%d total)", s.connCount())
	}
}
