package experiments

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/serving"
	"repro/internal/statestore"
)

// Lifecycle measures what the bounded, durable statestore costs in
// prediction quality: the §9 replay runs over the exact unbounded store,
// then under idle-eviction horizons, the int8 tier, and a resident-byte
// budget. Evicted users fall back to h_0 cold start, so recall at the 60%
// precision threshold degrades gracefully as the horizon tightens — this
// table quantifies the memory-for-recall trade the paper's deployment
// section implies but never measures.
func (l *Lab) Lifecycle() *Report {
	set := l.Models(DataMobileTab)
	model := set.RNN

	// The production threshold targets 60% precision on the training side
	// (§9), shared by every store variant.
	scores, labels := model.EvaluateSessions(set.Split.Train, set.Split.Train.CutoffForLastDays(7))
	_, thr := metrics.RecallAtPrecision(scores, labels, 0.6)

	// The replayed cohort in global timestamp order.
	type event struct {
		ts     int64
		user   int
		sid    string
		cat    []int
		access bool
	}
	var evs []event
	for _, u := range set.Split.Test.Users {
		for i, s := range u.Sessions {
			evs = append(evs, event{
				ts: s.Timestamp, user: u.ID,
				sid: fmt.Sprintf("u%d-s%d", u.ID, i), cat: s.Cat, access: s.Access,
			})
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].ts < evs[j].ts })

	type outcome struct {
		precision, recall float64
		coldStarts        int64
		resident          int64
		evictions         int64
	}
	replay := func(opts statestore.Options, tier nn.PrecisionTier) outcome {
		opts.SweepEvery = 256 // sweep often enough for horizons to bite mid-replay
		store, err := statestore.Open(opts)
		if err != nil {
			panic("experiments: " + err.Error())
		}
		// A close error means the WAL tail may not have synced; the
		// lifecycle numbers would then describe state a crash could lose.
		defer func() {
			if cerr := store.Close(); cerr != nil {
				panic("experiments: closing lifecycle store: " + cerr.Error())
			}
		}()
		proc := serving.NewStreamProcessor(model, store)
		if err := proc.SetPrecision(tier); err != nil {
			panic("experiments: " + err.Error())
		}
		svc := serving.NewPredictionService(model, store, thr)
		var tp, fp, fn int
		for _, e := range evs {
			proc.Advance(e.ts)
			dec := svc.OnSessionStart(e.user, e.ts, e.cat)
			switch {
			case dec.Precompute && e.access:
				tp++
			case dec.Precompute && !e.access:
				fp++
			case !dec.Precompute && e.access:
				fn++
			}
			proc.OnSessionStart(e.sid, e.user, e.ts, e.cat)
			if e.access {
				proc.OnAccess(e.sid, e.ts+30)
			}
		}
		proc.Flush()
		var o outcome
		if tp+fp > 0 {
			o.precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			o.recall = float64(tp) / float64(tp+fn)
		}
		o.coldStarts = svc.ColdStarts.Load()
		o.resident = store.Stats().BytesStored
		ls := store.Lifecycle()
		o.evictions = ls.IdleEvictions + ls.BudgetEvictions
		return o
	}

	const day = int64(86400)
	exact := replay(statestore.Options{}, nn.TierF64)
	// The budget variant keeps ~40% of the exact footprint resident.
	budget := exact.resident * 2 / 5
	configs := []struct {
		name string
		opts statestore.Options
		tier nn.PrecisionTier
	}{
		{"evict 7d", statestore.Options{EvictAfter: 7 * day}, nn.TierF64},
		{"evict 2d", statestore.Options{EvictAfter: 2 * day}, nn.TierF64},
		{"evict 12h", statestore.Options{EvictAfter: day / 2}, nn.TierF64},
		{"int8 tier", statestore.Options{Codec: statestore.CodecInt8}, nn.TierF64},
		{"int8 + evict 2d", statestore.Options{Codec: statestore.CodecInt8, EvictAfter: 2 * day}, nn.TierF64},
		// The f32 compute tier finalises sessions through the fused float32
		// kernels and keeps states under the tagF32 codec; its recall shift
		// must stay inside the tolerance the int8 tier established.
		{"f32 tier", statestore.Options{Codec: statestore.CodecF32}, nn.TierF32},
		{fmt.Sprintf("budget %dB", budget), statestore.Options{MemBudget: budget}, nn.TierF64},
	}

	r := &Report{
		ID:     "lifecycle",
		Title:  "Bounded statestore vs exact store (threshold targets 60% precision)",
		Header: []string{"STORE", "PRECISION", "RECALL", "dRECALL", "COLD", "RESIDENT B", "EVICTED"},
	}
	row := func(name string, o outcome) {
		r.Rows = append(r.Rows, []string{
			name, f3(o.precision), f3(o.recall),
			fmt.Sprintf("%+.3f", o.recall-exact.recall),
			fint(int(o.coldStarts)), fint(int(o.resident)), fint(int(o.evictions)),
		})
	}
	row("exact", exact)
	for _, c := range configs {
		row(c.name, replay(c.opts, c.tier))
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("replayed %d sessions; evicted users serve h_0 cold starts (§9), so tighter horizons trade recall for a hard memory ceiling", len(evs)),
		"the int8 tier shrinks the per-state vector 4x; its recall shift reflects a precompute threshold tuned on float32 scores (PR-AUC itself moves <0.02, see quantization tests)",
		"the f32 tier changes the compute width, not the stored width: states are bounded-error vs the f64 reference (<=2e-3 per dim), so its dRECALL should sit well inside the int8 tolerance")
	return r
}
