package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/serving"
	"repro/internal/synth"
)

// TestServingBenchSuiteRoundTrip checks the JSON document and table
// renderer over a hand-built suite (running the actual benchmarks is the
// CI bench step's job, not a unit test's).
func TestServingBenchSuiteRoundTrip(t *testing.T) {
	s := &ServingBenchSuite{
		SchemaVersion: 1,
		GeneratedAt:   "2026-07-29T00:00:00Z",
		GoVersion:     "go1.24.0",
		GOOS:          "linux",
		GOARCH:        "amd64",
		GOMAXPROCS:    2,
		Results: []ServingBenchResult{
			{Config: "sequential", HiddenDim: 64, InferBatch: 1, Sessions: 1600,
				NsPerSession: 20000, SessionsPerSec: 50000, AllocsPerSession: 9, SpeedupVsScalar: 1},
			{Config: "sequential-batch32", HiddenDim: 64, InferBatch: 32, Sessions: 1600,
				NsPerSession: 15000, SessionsPerSec: 66666, AllocsPerSession: 9, SpeedupVsScalar: 1.33},
		},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := s.WriteJSON(path); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	var got ServingBenchSuite
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.SchemaVersion != 1 || len(got.Results) != 2 || got.Results[1].SpeedupVsScalar != 1.33 {
		t.Fatalf("round trip mangled the suite: %+v", got)
	}
	out := s.Render()
	for _, want := range []string{"sequential-batch32", "1.33x", "bench-serving"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// TestServingBenchRunnerRounds checks the round driver arms and drains
// every session (cheap smoke: 2 rounds at a tiny dim through the real
// processors, no timing).
func TestServingBenchRunnerRounds(t *testing.T) {
	suiteSmokeRounds(t, 0, 1, nn.TierF64) // sequential scalar
	suiteSmokeRounds(t, 0, 4, nn.TierF64) // sequential batched
	suiteSmokeRounds(t, 2, 4, nn.TierF64) // parallel batched
	suiteSmokeRounds(t, 0, 4, nn.TierF32) // sequential batched, f32 tier
	suiteSmokeRounds(t, 2, 4, nn.TierF32) // parallel batched, f32 tier
}

func suiteSmokeRounds(t *testing.T, workers, inferBatch int, tier nn.PrecisionTier) {
	t.Helper()
	mcfg := core.DefaultConfig()
	mcfg.HiddenDim = 8
	mcfg.MLPHidden = 8
	m := core.New(synth.MobileTabSchema(), mcfg)
	runner := &servingBenchRunner{users: 6, window: m.Schema.SessionLength + core.DefaultEpsilon}
	var updates func() int64
	var closeProc func()
	if workers > 0 {
		p, err := serving.NewParallelStreamProcessorTier(m, serving.NewShardedKVStore(4), workers, inferBatch, tier)
		if err != nil {
			t.Fatal(err)
		}
		runner.onSession = p.OnSessionStart
		runner.onAccess = p.OnAccess
		runner.advance = func(ts int64) { p.Advance(ts); p.Sync() }
		updates = p.UpdatesRun
		closeProc = p.Close
	} else {
		p := serving.NewStreamProcessor(m, serving.NewKVStore())
		p.SetInferBatch(inferBatch)
		if err := p.SetPrecision(tier); err != nil {
			t.Fatal(err)
		}
		runner.onSession = p.OnSessionStart
		runner.onAccess = p.OnAccess
		runner.advance = p.Advance
		updates = func() int64 { return p.UpdatesRun }
		closeProc = p.Flush
	}
	runner.runRound()
	runner.runRound()
	closeProc()
	if got := updates(); got != 12 {
		t.Fatalf("workers=%d batch=%d: %d updates after 2 rounds of 6, want 12", workers, inferBatch, got)
	}
}
