package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/serving"
)

// Stacked reproduces the §6.2 stacking note: adding a second GRU layer does
// not provide a meaningful improvement over a single unit.
func (l *Lab) Stacked() *Report {
	r := &Report{
		ID:     "stacked",
		Title:  "Stacked GRU ablation (§6.2: no meaningful gain from stacking)",
		Header: []string{"GRU LAYERS", "PR-AUC"},
	}
	for _, layers := range []int{1, 2} {
		cfg := l.baseAblationConfig()
		cfg.Layers = layers
		r.Rows = append(r.Rows, []string{fint(layers), f3(l.trainVariant(cfg, nil))})
	}
	return r
}

// Universal reproduces the §10.1 "reusable models" direction: a model whose
// inputs are only past access labels and timestamps ([A; T(Δt)] updates,
// [T(t−t_k)] predictions) has no schema dependence at all, so one trained
// model can serve any activity. It is evaluated both on its training
// distribution (MobileTab) and zero-shot on MPU.
func (l *Lab) Universal() *Report {
	d := l.ablationDataset()
	split := dataset.SplitUsers(d, 0.2, l.Scale.Seed*31+7)
	cfg := l.baseAblationConfig()
	cfg.Minimal = true
	m := core.New(d.Schema, cfg)
	tc := core.DefaultTrainConfig()
	tc.BatchUsers = l.Scale.BatchUsers
	tc.Epochs = l.Scale.AblationEpochs
	tc.Seed = l.Scale.Seed
	if l.Scale.RNNLR > 0 {
		tc.LR = l.Scale.RNNLR
	}
	core.NewTrainer(m, tc).Train(split.Train)

	r := &Report{
		ID:     "universal",
		Title:  "Context-free reusable model (§10.1): labels+timestamps only, applied across datasets",
		Header: []string{"EVALUATION", "UNIVERSAL RNN", "PERCENTAGE BASELINE"},
	}
	evalOn := func(name string, eval *dataset.Dataset) {
		cutoff := eval.CutoffForLastDays(EvalLastDays)
		s, lb := m.EvaluateSessions(eval, cutoff)
		// Percentage reference on the same examples.
		var ps []float64
		var pl []bool
		alpha := eval.PositiveRate()
		delay := eval.Schema.SessionLength + 60
		for _, u := range eval.Users {
			acc, n := 0.0, 0
			pending := 0
			for _, sess := range u.Sessions {
				for pending < len(u.Sessions) && u.Sessions[pending].Timestamp < sess.Timestamp-delay {
					n++
					if u.Sessions[pending].Access {
						acc++
					}
					pending++
				}
				if sess.Timestamp >= cutoff {
					ps = append(ps, (alpha+acc)/float64(n+1))
					pl = append(pl, sess.Access)
				}
			}
		}
		r.Rows = append(r.Rows, []string{name, f3(metrics.PRAUC(s, lb)), f3(metrics.PRAUC(ps, pl))})
	}
	evalOn("MobileTab (in-distribution)", split.Test)
	// Zero-shot transfer: a context-free model is schema-independent.
	mpu := l.Dataset(DataMPU)
	sub := &dataset.Dataset{Schema: mpu.Schema, Start: mpu.Start, End: mpu.End, Users: mpu.Users}
	if len(sub.Users) > 40 {
		sub.Users = sub.Users[:40]
	}
	evalOn("MPU (zero-shot transfer)", sub)
	r.Notes = append(r.Notes, "the universal model never sees context features, so the same weights apply to any access log")
	return r
}

// Retrain reproduces the §9 "Retraining the model" proposal: keep the GRU
// parameters (and therefore every stored hidden state) and retrain only the
// MLP head, which is significantly faster than a full retrain.
func (l *Lab) Retrain() *Report {
	d := l.ablationDataset()
	split := dataset.SplitUsers(d, 0.2, l.Scale.Seed*31+7)
	cutoff := evalCutoff(d)
	baseCfg := l.baseAblationConfig()

	makeTC := func() core.TrainConfig {
		tc := core.DefaultTrainConfig()
		tc.BatchUsers = l.Scale.BatchUsers
		tc.Epochs = l.Scale.AblationEpochs
		tc.Seed = l.Scale.Seed
		if l.Scale.RNNLR > 0 {
			tc.LR = l.Scale.RNNLR
		}
		return tc
	}

	// Base production model.
	base := core.New(d.Schema, baseCfg)
	core.NewTrainer(base, makeTC()).Train(split.Train)
	bs, bl := base.EvaluateSessions(split.Test, cutoff)
	baseAUC := metrics.PRAUC(bs, bl)

	// Head-only retrain: new model inherits the frozen cell, reinitialises
	// the head, trains with FreezeCell (no BPTT).
	headCfg := baseCfg
	headCfg.Seed = baseCfg.Seed + 101 // fresh head initialisation
	head := core.New(d.Schema, headCfg)
	base.CopyCellTo(head)
	tcHead := makeTC()
	tcHead.FreezeCell = true
	t0 := time.Now()
	core.NewTrainer(head, tcHead).Train(split.Train)
	headTime := time.Since(t0)
	hs, hl := head.EvaluateSessions(split.Test, cutoff)
	headAUC := metrics.PRAUC(hs, hl)

	// Full retrain from scratch, same budget.
	fullCfg := baseCfg
	fullCfg.Seed = baseCfg.Seed + 202
	full := core.New(d.Schema, fullCfg)
	t0 = time.Now()
	core.NewTrainer(full, makeTC()).Train(split.Train)
	fullTime := time.Since(t0)
	fs, fl := full.EvaluateSessions(split.Test, cutoff)
	fullAUC := metrics.PRAUC(fs, fl)

	r := &Report{
		ID:     "retrain",
		Title:  "Model retraining paths (§9: retrain only the MLP, keep hidden states valid)",
		Header: []string{"VARIANT", "PR-AUC", "RETRAIN TIME", "STORED STATES"},
	}
	r.Rows = append(r.Rows,
		[]string{"base model", f3(baseAUC), "-", "-"},
		[]string{"head-only retrain (frozen GRU)", f3(headAUC), headTime.Round(time.Millisecond).String(), "remain valid"},
		[]string{"full retrain", f3(fullAUC), fullTime.Round(time.Millisecond).String(), "all invalidated"},
	)
	if headTime < fullTime {
		r.Notes = append(r.Notes, fmt.Sprintf("head-only retraining is %.1fx faster and preserves every stored hidden state",
			float64(fullTime)/float64(headTime)))
	}
	return r
}

// Quantization reproduces the §9 note that hidden states can be stored at
// one byte per dimension: it measures the PR-AUC cost of an int8
// store/load round-trip against the 4x storage saving.
func (l *Lab) Quantization() *Report {
	set := l.Models(DataMobileTab)
	d := l.Dataset(DataMobileTab)
	cutoff := evalCutoff(d)

	s32, l32 := set.RNN.EvaluateSessions(set.Split.Test, cutoff)
	s8, l8 := set.RNN.EvaluateSessionsTransformed(set.Split.Test, cutoff, serving.QuantizeRoundTrip)

	dim := set.RNN.HiddenDim()
	r := &Report{
		ID:     "quantization",
		Title:  "Hidden-state quantization (§9: single bytes per dimension)",
		Header: []string{"STATE ENCODING", "PR-AUC", "BYTES/USER"},
	}
	r.Rows = append(r.Rows,
		[]string{"float32", f3(metrics.PRAUC(s32, l32)), fint(serving.HiddenValueBytes(dim))},
		[]string{"int8", f3(metrics.PRAUC(s8, l8)), fint(serving.QuantizedValueBytes(dim))},
	)
	return r
}
