package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/replication"
	"repro/internal/server"
	"repro/internal/serving"
	"repro/internal/statestore"
	"repro/internal/synth"
)

// The failover experiment measures what a primary's death costs the
// cluster's tail latency — and proves it costs zero states. Topology:
// two durable replicas A and B, a follower F shipping A's WAL, a router
// fronting the ring. The cohort log replays in thirds:
//
//  1. steady state — the full cohort through the healthy topology;
//  2. failover window — only B-owned users keep flowing while A is
//     killed at replication lag zero and the router promotes F under the
//     ring-swap write lock (the survivors' p99 absorbs the cutover
//     pause; A-owned traffic from this third is deferred, the way real
//     clients would retry it after the outage);
//  3. recovered — the deferred third plus the final third, with A-owned
//     users now landing on the promoted follower.
//
// The final aggregate digest must equal the single-process sequential
// digest: promotion at lag zero hands every acknowledged state over
// byte-identically, so the kill loses nothing.

// Failover replays the cohort across a mid-replay primary kill and
// promotion, reporting per-phase latency and the parity outcome.
func (l *Lab) Failover() *Report {
	users := l.Scale.MobileTabUsers / 10
	if users < 20 {
		users = 20
	}
	mcfg := core.DefaultConfig()
	mcfg.HiddenDim = 24
	mcfg.Seed = l.Scale.Seed
	m := core.New(synth.MobileTabSchema(), mcfg)
	log := server.ReplayLog(users, l.Scale.Seed)

	// Sequential baseline.
	seqStore := serving.NewKVStore()
	proc := serving.NewStreamProcessor(m, seqStore)
	for _, e := range log {
		proc.OnSessionStart(e.SID, e.User, e.Ts, e.Cat)
		if e.Access {
			proc.OnAccess(e.SID, e.Ts+30)
		}
	}
	proc.Flush()
	wantDigest, wantKeys := serving.StateDigest(seqStore)

	// Durable replicas (replication requires the statestore tier).
	type member struct {
		srv   *server.Server
		state *statestore.Store
		ts    *httptest.Server
		dir   string
	}
	openState := func() (*statestore.Store, string) {
		dir, err := os.MkdirTemp("", "pp-failover-*")
		if err != nil {
			panic(fmt.Sprintf("failover experiment: %v", err))
		}
		ss, err := statestore.Open(statestore.Options{Dir: dir, Shards: 4})
		if err != nil {
			panic(fmt.Sprintf("failover experiment: %v", err))
		}
		return ss, dir
	}
	start := func(follower *replication.Follower, ss *statestore.Store, dir string) member {
		srv := server.New(server.Options{
			Model: m, Store: ss, State: ss, Threshold: 0.5, Follower: follower,
			Lanes: 2, MaxBatch: 16, MaxWait: time.Millisecond, LaneDepth: 1024,
		})
		if follower != nil {
			follower.Start()
		}
		return member{srv, ss, httptest.NewServer(srv.Handler()), dir}
	}
	assA, dirA := openState()
	assB, dirB := openState()
	a, b := start(nil, assA, dirA), start(nil, assB, dirB)
	folState, folDir := openState()
	f := replication.NewFollower(folState, a.ts.URL)
	fm := start(f, folState, folDir)
	fts := fm.ts
	members := []member{a, b, fm}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, mem := range members {
			mem.srv.Shutdown(ctx)
			mem.ts.Close()
			// Best-effort teardown of throwaway temp-dir stores: the digest
			// has already been verified, and the directory is removed next.
			mem.state.Close() //pplint:allow walerrcheck
			os.RemoveAll(mem.dir)
		}
	}()

	router, err := cluster.New(cluster.Options{
		Replicas:  []string{a.ts.URL, b.ts.URL},
		Followers: map[string]string{a.ts.URL: fts.URL},
	})
	if err != nil {
		panic(fmt.Sprintf("failover experiment: %v", err))
	}
	rts := httptest.NewServer(router)
	defer rts.Close()

	run := func(part []server.ReplayEvent, flush bool) *server.LoadReport {
		rep, err := server.RunLoad(server.LoadOptions{
			BaseURL: rts.URL, Concurrency: 4, EventsPerPost: 16, Flush: flush,
		}, part)
		if err != nil {
			panic(fmt.Sprintf("failover experiment: %v", err))
		}
		return rep
	}

	third := len(log) / 3
	rep1 := run(log[:third], true)

	// Drive replication lag to zero: the promotion guarantee covers
	// acknowledged records, and we are measuring latency, not data loss.
	lagDeadline := time.Now().Add(30 * time.Second)
	for f.Status().LastSeq < a.state.WALSeq() && time.Now().Before(lagDeadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if f.Status().LastSeq < a.state.WALSeq() {
		panic("failover experiment: follower never reached lag zero")
	}

	// Failover window: survivors' traffic only. A-owned sessions from this
	// third are deferred to the recovered phase.
	ring := router.Ring()
	var window, deferred []server.ReplayEvent
	for _, e := range log[third : 2*third] {
		if ring.OwnerOfUser(e.User) == b.ts.URL {
			window = append(window, e)
		} else {
			deferred = append(deferred, e)
		}
	}
	killed := make(chan time.Duration, 1)
	go func() {
		time.Sleep(50 * time.Millisecond) // let the window load get going
		a.ts.CloseClientConnections()
		a.ts.Close()
		t0 := time.Now()
		if err := router.Failover(a.ts.URL); err != nil {
			panic(fmt.Sprintf("failover experiment: %v", err))
		}
		killed <- time.Since(t0)
	}()
	rep2 := run(window, false)
	cutover := <-killed

	rep3 := run(append(append([]server.ReplayEvent(nil), deferred...), log[2*third:]...), true)

	_, gotDigest, err := server.Digest(rts.URL, nil)
	if err != nil {
		panic(fmt.Sprintf("failover experiment digest: %v", err))
	}
	parity := "MATCH"
	if gotDigest != wantDigest {
		parity = "MISMATCH"
	}

	r := &Report{
		ID:     "failover",
		Title:  "Router-driven failover: primary killed mid-replay, follower promoted, p99 across the cutover",
		Header: []string{"PHASE", "SESSIONS", "EVENT p50 (ms)", "EVENT p99 (ms)", "SHED", "ERRORS"},
	}
	for _, row := range []struct {
		name string
		rep  *server.LoadReport
	}{
		{"steady state", rep1},
		{"failover window", rep2},
		{"recovered", rep3},
	} {
		r.Rows = append(r.Rows, []string{
			row.name, fmt.Sprintf("%d", row.rep.Sessions),
			fmt.Sprintf("%.2f", row.rep.EventLatency.P50Ms),
			fmt.Sprintf("%.2f", row.rep.EventLatency.P99Ms),
			fmt.Sprintf("%d", row.rep.Shed), fmt.Sprintf("%d", row.rep.Errors),
		})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("primary killed at replication lag 0; promotion + ring swap took %s under the router's write lock", cutover.Round(time.Microsecond)),
		fmt.Sprintf("promoted follower now owns the dead primary's arcs with %d states resident", len(folState.Keys())),
		fmt.Sprintf("final cluster digest vs single-process sequential digest: %s (%d keys) — the kill lost zero acknowledged states", parity, wantKeys),
	)
	return r
}
