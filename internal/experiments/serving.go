package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/serving"
)

// Figure7 reproduces the online experiment: daily PR-AUC for cold-start
// users served by the RNN vs the GBDT over 30 days. The paper observes the
// RNN stabilising after ≈14 days and staying consistently ahead.
func (l *Lab) Figure7() *Report {
	res := l.onlineResult()
	r := &Report{
		ID:     "figure7",
		Title:  "Online PR-AUC for MobileTab (cold-start cohort)",
		Header: []string{"DAY", "RNN", "GBDT"},
	}
	fmtAUC := func(x float64) string {
		if math.IsNaN(x) {
			return "-"
		}
		return f3(x)
	}
	for day := 0; day < len(res.RNNDaily); day++ {
		r.Rows = append(r.Rows, []string{
			fint(day + 1), fmtAUC(res.RNNDaily[day]), fmtAUC(res.GBDTDaily[day]),
		})
	}
	var rnnLate, gbLate float64
	n := 0
	for day := 14; day < len(res.RNNDaily); day++ {
		if !math.IsNaN(res.RNNDaily[day]) && !math.IsNaN(res.GBDTDaily[day]) {
			rnnLate += res.RNNDaily[day]
			gbLate += res.GBDTDaily[day]
			n++
		}
	}
	if n > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf("mean PR-AUC after day 14: RNN %.3f vs GBDT %.3f (paper: RNN consistently superior after stabilising)",
			rnnLate/float64(n), gbLate/float64(n)))
	}
	return r
}

// OnlineRecall reproduces the §9 production threshold comparison: recall at
// the threshold targeting 60% precision, and the relative lift in
// successful prefetches (paper: 51.1% vs 47.4% recall, +7.81% successful
// prefetches).
func (l *Lab) OnlineRecall() *Report {
	res := l.onlineResult()
	r := &Report{
		ID:     "online-recall",
		Title:  "Production threshold targeting 60% precision (paper: RNN 51.1% vs GBDT 47.4% recall, +7.81%)",
		Header: []string{"MODEL", "PRECISION", "RECALL"},
	}
	r.Rows = append(r.Rows,
		[]string{"RNN", f3(res.RNNPrecision), f3(res.RNNRecall)},
		[]string{"GBDT", f3(res.GBDTPrecision), f3(res.GBDTRecall)},
		[]string{"SUCCESSFUL PREFETCH GAIN", "", f1pc(res.SuccessfulPrefetchGain)},
	)
	return r
}

// onlineCache memoises the (expensive) online replay.
func (l *Lab) onlineResult() serving.OnlineResult {
	if l.online != nil {
		return *l.online
	}
	set := l.Models(DataMobileTab)
	builder := features.NewBuilder(l.Dataset(DataMobileTab).Schema) // MinTs 0: cold start
	res := serving.RunOnlineExperiment(set.RNN, set.GBDT, builder, set.Split.Test, serving.DefaultOnlineConfig())
	l.online = &res
	return res
}

// Parallelism measures the concurrent serving subsystem against the
// sequential baseline: session-finalisation throughput for the worker-pool
// stream processor over the sharded KV store at 1/4/8 lanes, and batched
// session-startup prediction throughput at the same fan-outs. The paper's
// production deployment partitions both tiers by user (§9); this driver
// quantifies what that buys on the local replay.
func (l *Lab) Parallelism() *Report {
	d := l.Dataset(DataMobileTab)

	// Throughput does not depend on the weights, so an untrained model at
	// the lab's shape keeps this driver train-free (like ServingCost).
	cfg := core.DefaultConfig()
	cfg.HiddenDim = l.Scale.HiddenDim
	cfg.MLPHidden = l.Scale.MLPHidden
	m := core.New(d.Schema, cfg)

	type ev struct {
		sid    string
		user   int
		ts     int64
		cat    []int
		access bool
	}
	var evs []ev
	const maxSessions = 4000
	for _, u := range d.Users {
		for i, s := range u.Sessions {
			evs = append(evs, ev{
				sid: fmt.Sprintf("u%d-s%d", u.ID, i), user: u.ID,
				ts: s.Timestamp, cat: s.Cat, access: s.Access,
			})
		}
		if len(evs) >= maxSessions {
			break
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].ts < evs[j].ts })

	replaySeq := func() time.Duration {
		p := serving.NewStreamProcessor(m, serving.NewKVStore())
		t0 := time.Now()
		for _, e := range evs {
			p.OnSessionStart(e.sid, e.user, e.ts, e.cat)
			if e.access {
				p.OnAccess(e.sid, e.ts+30)
			}
		}
		p.Flush()
		return time.Since(t0)
	}
	replaySeqBatched := func(batch int) time.Duration {
		p := serving.NewStreamProcessor(m, serving.NewKVStore())
		p.SetInferBatch(batch)
		t0 := time.Now()
		for _, e := range evs {
			p.OnSessionStart(e.sid, e.user, e.ts, e.cat)
			if e.access {
				p.OnAccess(e.sid, e.ts+30)
			}
		}
		p.Flush()
		return time.Since(t0)
	}
	replayPar := func(workers, batch int) time.Duration {
		p := serving.NewParallelStreamProcessorBatch(m, serving.NewShardedKVStore(0), workers, batch)
		t0 := time.Now()
		for _, e := range evs {
			p.OnSessionStart(e.sid, e.user, e.ts, e.cat)
			if e.access {
				p.OnAccess(e.sid, e.ts+30)
			}
		}
		p.Close()
		return time.Since(t0)
	}

	r := &Report{
		ID:     "parallel",
		Title:  "Concurrent serving path vs sequential baseline (sharded KV + worker lanes)",
		Header: []string{"CONFIG", "WALL", "SESSIONS/S", "SPEEDUP"},
	}
	base := replaySeq()
	row := func(name string, dur time.Duration) {
		r.Rows = append(r.Rows, []string{
			name, dur.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(len(evs))/dur.Seconds()),
			fmt.Sprintf("%.2fx", float64(base)/float64(dur)),
		})
	}
	row("stream sequential", base)
	for _, bsz := range []int{8, 32} {
		row(fmt.Sprintf("stream sequential batch-%d", bsz), replaySeqBatched(bsz))
	}
	for _, w := range []int{1, 4, 8} {
		row(fmt.Sprintf("stream %d-lane", w), replayPar(w, 1))
	}
	for _, w := range []int{4, 8} {
		row(fmt.Sprintf("stream %d-lane batch-32", w), replayPar(w, 32))
	}

	// Batched session-startup predictions over a warmed store.
	store := serving.NewShardedKVStore(0)
	warm := serving.NewStreamProcessor(m, store)
	reqs := make([]serving.PredictRequest, 0, len(evs))
	for _, e := range evs {
		reqs = append(reqs, serving.PredictRequest{UserID: e.user, Ts: e.ts, Cat: e.cat})
	}
	for _, e := range evs[:len(evs)/4] {
		warm.OnSessionStart(e.sid, e.user, e.ts, e.cat)
	}
	warm.Flush()
	svc := serving.NewPredictionService(m, store, 0.5)
	var predBase time.Duration
	for _, w := range []int{1, 4, 8} {
		t0 := time.Now()
		svc.OnSessionStartBatch(reqs, w)
		dur := time.Since(t0)
		if w == 1 {
			predBase = dur
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("predict batch x%d", w), dur.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(len(reqs))/dur.Seconds()),
			fmt.Sprintf("%.2fx", float64(predBase)/float64(dur)),
		})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("replayed %d sessions; per-user lanes keep update order, so parallel hidden states are byte-identical to sequential (see serving race/equivalence tests)", len(evs)))
	return r
}

// ServingCost reproduces the §9 serving-cost comparison at the paper's
// production configuration (128-dim hidden state).
func (l *Lab) ServingCost() *Report {
	set := l.Models(DataMobileTab)
	d := l.Dataset(DataMobileTab)

	// Cost accounting is about the production shape: hidden 128, MLP 128.
	cfg := core.DefaultConfig()
	cfg.HiddenDim = 128
	cfg.MLPHidden = 128
	prod := core.New(d.Schema, cfg)

	rep := serving.CompareCosts(prod, set.GBDT, d, serving.DefaultCostParams())
	r := &Report{
		ID:     "serving",
		Title:  "Serving cost per prediction (paper: ≈9.5× model compute, ≈20 vs 1 lookups, ≈10× net reduction)",
		Header: []string{"QUANTITY", "RNN", "GBDT"},
	}
	r.Rows = append(r.Rows,
		[]string{"KV lookups / prediction", fmt.Sprintf("%.0f", rep.RNNLookupsPerPrediction), fmt.Sprintf("%.0f", rep.GBDTLookupsPerPrediction)},
		[]string{"model compute (µs)", fmt.Sprintf("%.1f", rep.RNNModelNanos/1000), fmt.Sprintf("%.1f", rep.GBDTModelNanos/1000)},
		[]string{"model compute ratio (RNN/GBDT)", fmt.Sprintf("%.1fx", rep.ModelComputeRatio), ""},
		[]string{"serving cost (µs, incl. lookups)", fmt.Sprintf("%.0f", rep.RNNServingNanos/1000), fmt.Sprintf("%.0f", rep.GBDTServingNanos/1000)},
		[]string{"net serving reduction (GBDT/RNN)", fmt.Sprintf("%.1fx", rep.ServingCostRatio), ""},
		[]string{"state bytes / user", fint(rep.RNNStateBytes), fmt.Sprintf("%.0f (%.0f keys)", rep.AggStateBytesPerUser, rep.AggKeysPerUser)},
	)
	return r
}

// Batching reproduces the §7.1 claim: per-user parallel evaluation trains
// about twice as fast as padded batching on long-tailed histories.
func (l *Lab) Batching() *Report {
	d := l.ablationDataset()
	stats := core.PaddedBatchStats(d, l.Scale.BatchUsers, l.Scale.Seed)

	build := func() (*core.Model, *core.Trainer) {
		cfg := core.DefaultConfig()
		cfg.HiddenDim = l.Scale.HiddenDim
		cfg.MLPHidden = l.Scale.MLPHidden
		cfg.Seed = l.Scale.Seed
		m := core.New(d.Schema, cfg)
		tc := core.DefaultTrainConfig()
		tc.BatchUsers = l.Scale.BatchUsers
		tc.Seed = l.Scale.Seed
		return m, core.NewTrainer(m, tc)
	}

	_, trA := build()
	t0 := time.Now()
	trA.TrainEpoch(d, 0)
	perUser := time.Since(t0)

	_, trB := build()
	t0 = time.Now()
	_, padStats := trB.TrainEpochPadded(d, 0)
	padded := time.Since(t0)

	r := &Report{
		ID:     "batching",
		Title:  "Per-user parallelism vs padded batching (paper: 2× faster training)",
		Header: []string{"QUANTITY", "PER-USER", "PADDED"},
	}
	r.Rows = append(r.Rows,
		[]string{"recurrent steps", fint(stats.RealSteps), fint(stats.PaddedSteps)},
		[]string{"step waste factor", "1.00x", fmt.Sprintf("%.2fx", padStats.WasteFactor())},
		[]string{"epoch wall time", perUser.Round(time.Millisecond).String(), padded.Round(time.Millisecond).String()},
		[]string{"speedup", fmt.Sprintf("%.2fx", float64(padded)/float64(perUser)), ""},
	)
	r.Notes = append(r.Notes, "wall-time gap is below the step-waste factor because prediction/backprop work is not padded; the paper's 2x includes batch-framework overheads")
	return r
}

// ablationDataset is a reduced MobileTab population reused by the ablation
// experiments.
func (l *Lab) ablationDataset() *dataset.Dataset {
	if l.ablation == nil {
		d := l.Dataset(DataMobileTab)
		n := l.Scale.AblationUsers
		if n > len(d.Users) {
			n = len(d.Users)
		}
		l.ablation = &dataset.Dataset{Schema: d.Schema, Start: d.Start, End: d.End, Users: d.Users[:n]}
	}
	return l.ablation
}
