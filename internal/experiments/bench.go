package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/serving"
	"repro/internal/synth"
)

// The serving benchmark suite is the tracked perf baseline: it replays a
// fixed synthetic session log through the finalisation path in each
// configuration and emits machine-readable JSON (BENCH_serving.json), so
// every perf PR from here on records its before/after trajectory. CI runs
// the quick shape on every push; the full shape produces the numbers in
// EXPERIMENTS.md.

// ServingBenchResult is one (hidden-dim, configuration) measurement.
type ServingBenchResult struct {
	Config           string  `json:"config"`
	HiddenDim        int     `json:"hidden_dim"`
	Workers          int     `json:"workers"`
	InferBatch       int     `json:"infer_batch"`
	Precision        string  `json:"precision"`
	Sessions         int     `json:"sessions"`
	NsPerSession     float64 `json:"ns_per_session"`
	SessionsPerSec   float64 `json:"sessions_per_sec"`
	AllocsPerSession float64 `json:"allocs_per_session"`
	BytesPerSession  float64 `json:"bytes_per_session"`
	// SpeedupVsScalar is relative to the sequential per-session path at the
	// same hidden dim (the PR 1 baseline).
	SpeedupVsScalar float64 `json:"speedup_vs_scalar"`
}

// ServingBenchSuite is the JSON document written to BENCH_serving.json.
type ServingBenchSuite struct {
	SchemaVersion int                  `json:"schema_version"`
	GeneratedAt   string               `json:"generated_at"`
	GoVersion     string               `json:"go_version"`
	GOOS          string               `json:"goos"`
	GOARCH        string               `json:"goarch"`
	GOMAXPROCS    int                  `json:"gomaxprocs"`
	Quick         bool                 `json:"quick"`
	Results       []ServingBenchResult `json:"results"`
}

// servingBenchRunner drives one warm processor through rounds of `users`
// concurrent sessions: each round ingests every session (plus access
// events) and advances the clock past their finalisation timers, so the
// timed region is ingest + a full drain — the production steady state.
// The processor (and its scratch/arena) is constructed once, outside the
// timed region, exactly as a long-lived stream processor would run.
type servingBenchRunner struct {
	users     int
	round     int64
	onSession func(sid string, userID int, ts int64, cat []int)
	onAccess  func(sid string, ts int64)
	advance   func(ts int64)
	window    int64 // session length + epsilon
}

func (r *servingBenchRunner) runRound() {
	base := synth.DefaultStart + r.round*7200
	r.round++
	for u := 0; u < r.users; u++ {
		ts := base + int64(u)*11
		sid := fmt.Sprintf("u%d-s%d", u, r.round)
		r.onSession(sid, u, ts, []int{u % 4, u % 3})
		if (u+int(r.round))%3 == 0 {
			r.onAccess(sid, ts+30)
		}
	}
	r.advance(base + int64(r.users)*11 + r.window + 1)
}

// RunServingBench measures steady-state session-finalisation throughput
// across hidden dims and batch/worker configurations. quick shrinks the
// iteration budget for the CI short mode; the configurations are identical
// either way so the JSON stays comparable across runs of the same mode.
// Each configuration takes the fastest of three measurements — on small
// shared boxes the minimum is the noise-robust estimator (see the
// 2-core benchmarking notes in EXPERIMENTS.md).
func RunServingBench(quick bool) *ServingBenchSuite {
	// Many short fixed-count windows, keeping the minimum: on small shared
	// boxes the throttle/noise windows last seconds, so a single long
	// measurement averages noise in while the min of many short windows
	// lands inside clean periods.
	const users = 64
	iters, reps := 25, 12
	if quick {
		iters, reps = 10, 5
	}

	suite := &ServingBenchSuite{
		SchemaVersion: 1,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Quick:         quick,
	}

	type cfg struct {
		name       string
		workers    int // 0 = sequential processor
		inferBatch int
		precision  nn.PrecisionTier
	}
	cfgs := []cfg{
		{"sequential", 0, 1, nn.TierF64},
		{"sequential-batch8", 0, 8, nn.TierF64},
		{"sequential-batch32", 0, 32, nn.TierF64},
		{"sequential-batch64", 0, 64, nn.TierF64},
		{"parallel-4", 4, 1, nn.TierF64},
		{"parallel-4-batch32", 4, 32, nn.TierF64},
		// f32 compute tier over the same shapes: the scalar fused path, the
		// batched GEMM finaliser the ≥2× gate tracks, and the worker pool.
		{"sequential-f32", 0, 1, nn.TierF32},
		{"sequential-batch64-f32", 0, 64, nn.TierF32},
		{"parallel-4-batch32-f32", 4, 32, nn.TierF32},
	}

	for _, d := range []int{32, 64, 128} {
		mcfg := core.DefaultConfig()
		mcfg.HiddenDim = d
		mcfg.MLPHidden = 64
		m := core.New(synth.MobileTabSchema(), mcfg)

		var scalarNs float64
		for _, c := range cfgs {
			runner := &servingBenchRunner{users: users, window: m.Schema.SessionLength + core.DefaultEpsilon}
			var closeProc func()
			if c.workers > 0 {
				p, err := serving.NewParallelStreamProcessorTier(m, serving.NewShardedKVStore(16), c.workers, c.inferBatch, c.precision)
				if err != nil {
					panic(err) // the bench model is a single GRU; every tier applies
				}
				runner.onSession = p.OnSessionStart
				runner.onAccess = p.OnAccess
				runner.advance = func(ts int64) { p.Advance(ts); p.Sync() }
				closeProc = p.Close
			} else {
				p := serving.NewStreamProcessor(m, serving.NewKVStore())
				p.SetInferBatch(c.inferBatch)
				if err := p.SetPrecision(c.precision); err != nil {
					panic(err)
				}
				runner.onSession = p.OnSessionStart
				runner.onAccess = p.OnAccess
				runner.advance = p.Advance
				closeProc = p.Flush
			}
			runner.runRound() // warm states, scratch, and arena

			var best benchMeasurement
			for rep := 0; rep < reps; rep++ {
				r := benchmarkN(iters, runner.runRound)
				if rep == 0 || r.nsPerOp < best.nsPerOp {
					best = r
				}
			}
			closeProc()

			perSession := best.nsPerOp / float64(users)
			res := ServingBenchResult{
				Config:           c.name,
				HiddenDim:        d,
				Workers:          c.workers,
				InferBatch:       c.inferBatch,
				Precision:        c.precision.String(),
				Sessions:         users * iters,
				NsPerSession:     perSession,
				SessionsPerSec:   1e9 / perSession,
				AllocsPerSession: best.allocsPerOp / float64(users),
				BytesPerSession:  best.bytesPerOp / float64(users),
			}
			if c.name == "sequential" {
				scalarNs = perSession
			}
			if scalarNs > 0 {
				res.SpeedupVsScalar = scalarNs / perSession
			}
			suite.Results = append(suite.Results, res)
		}
	}
	return suite
}

// benchMeasurement is one fixed-count timing run.
type benchMeasurement struct {
	nsPerOp     float64
	allocsPerOp float64
	bytesPerOp  float64
}

// benchmarkN runs fn exactly n times and reports per-op time and
// allocation. The fixed iteration count keeps run-to-run work identical,
// which is what makes min-of-3 a meaningful noise filter.
func benchmarkN(n int, fn func()) benchMeasurement {
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	dur := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	return benchMeasurement{
		nsPerOp:     float64(dur.Nanoseconds()) / float64(n),
		allocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(n),
		bytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(n),
	}
}

// WriteJSON writes the suite to path (pretty-printed, trailing newline).
func (s *ServingBenchSuite) WriteJSON(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render formats the suite as the standard report table for stdout.
func (s *ServingBenchSuite) Render() string {
	r := &Report{
		ID:     "bench-serving",
		Title:  "Serving finalisation benchmark (replayed synthetic log)",
		Header: []string{"D", "CONFIG", "NS/SESSION", "SESSIONS/S", "ALLOCS/SESSION", "SPEEDUP"},
	}
	for _, b := range s.Results {
		r.Rows = append(r.Rows, []string{
			fint(b.HiddenDim), b.Config,
			fmt.Sprintf("%.0f", b.NsPerSession),
			fmt.Sprintf("%.0f", b.SessionsPerSec),
			fmt.Sprintf("%.1f", b.AllocsPerSession),
			fmt.Sprintf("%.2fx", b.SpeedupVsScalar),
		})
	}
	r.Notes = append(r.Notes, fmt.Sprintf("go %s %s/%s GOMAXPROCS=%d quick=%v",
		s.GoVersion, s.GOOS, s.GOARCH, s.GOMAXPROCS, s.Quick))
	return r.Render()
}
