package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/gbdt"
	"repro/internal/metrics"
)

// Table1Preview renders a short sample of MobileTab rows in the format of
// the paper's Table 1.
func (l *Lab) Table1Preview() *Report {
	d := l.Dataset(DataMobileTab)
	r := &Report{
		ID:     "table1",
		Title:  "Sample data for MobileTab",
		Header: []string{"TIMESTAMP", "ACCESS FLAG", "UNREAD", "ACTIVE TAB"},
	}
	for _, u := range d.Users {
		if len(u.Sessions) < 3 {
			continue
		}
		for _, s := range u.Sessions[:3] {
			flag := "0"
			if s.Access {
				flag = "1"
			}
			r.Rows = append(r.Rows, []string{
				fmt.Sprintf("%d", s.Timestamp), flag,
				fint(s.Cat[0]), fmt.Sprintf("tab#%d", s.Cat[1]),
			})
		}
		break
	}
	return r
}

// Table2 reproduces the dataset summary (positive rate, examples, users).
func (l *Lab) Table2() *Report {
	r := &Report{
		ID:     "table2",
		Title:  "Summary of each dataset (paper: 11.1%/60.8M/1M, 7.1%/38.5M/1M, 39.7%/2.34M/279)",
		Header: []string{"DATASET", "POSITIVE RATE", "EXAMPLES", "SESSIONS", "USERS"},
	}
	for _, name := range DatasetOrder {
		d := l.Dataset(name)
		r.Rows = append(r.Rows, []string{
			name, f1pc(d.PositiveRate()), fint(d.NumExamples()),
			fint(d.NumSessions()), fint(len(d.Users)),
		})
	}
	r.Notes = append(r.Notes, "populations scaled down from the paper's 1M-user production logs; rates match the paper's regime")
	return r
}

// Table3 reproduces the PR-AUC comparison across all models and datasets.
func (l *Lab) Table3() *Report {
	r := &Report{
		ID:     "table3",
		Title:  "Comparison of PR-AUC values (paper improvement over GBDT: +3.11%, +7.72%, +11.8%)",
		Header: append([]string{"MODEL"}, DatasetOrder...),
	}
	auc := map[string]map[string]float64{}
	for _, ds := range DatasetOrder {
		set := l.Models(ds)
		auc[ds] = map[string]float64{}
		for _, m := range ModelOrder {
			ev := set.Evals[m]
			auc[ds][m] = metrics.PRAUC(ev.Scores, ev.Labels)
		}
	}
	for _, m := range ModelOrder {
		row := []string{m}
		for _, ds := range DatasetOrder {
			row = append(row, f3(auc[ds][m]))
		}
		r.Rows = append(r.Rows, row)
	}
	imp := []string{"IMPROVEMENT"}
	for _, ds := range DatasetOrder {
		imp = append(imp, f1pc(auc[ds][ModelRNN]/auc[ds][ModelGBDT]-1))
	}
	r.Rows = append(r.Rows, imp)
	return r
}

// Table4 reproduces the recall at 50% precision comparison.
func (l *Lab) Table4() *Report {
	r := &Report{
		ID:     "table4",
		Title:  "Comparison of recalls at 50% precision (paper improvement: +4.22%, +18.8%, +6.54%)",
		Header: append([]string{"MODEL"}, DatasetOrder...),
	}
	rec := map[string]map[string]float64{}
	for _, ds := range DatasetOrder {
		set := l.Models(ds)
		rec[ds] = map[string]float64{}
		for _, m := range ModelOrder {
			ev := set.Evals[m]
			recall, _ := metrics.RecallAtPrecision(ev.Scores, ev.Labels, 0.5)
			rec[ds][m] = recall
		}
	}
	for _, m := range ModelOrder {
		row := []string{m}
		for _, ds := range DatasetOrder {
			row = append(row, f3(rec[ds][m]))
		}
		r.Rows = append(r.Rows, row)
	}
	imp := []string{"IMPROVEMENT"}
	for _, ds := range DatasetOrder {
		if rec[ds][ModelGBDT] > 0 {
			imp = append(imp, f1pc(rec[ds][ModelRNN]/rec[ds][ModelGBDT]-1))
		} else {
			imp = append(imp, "n/a")
		}
	}
	r.Rows = append(r.Rows, imp)
	return r
}

// Table5 reproduces the GBDT feature-engineering ablation on MPU:
// C (contextual only), E+C (plus elapsed), A+E+C (plus aggregations),
// against the RNN.
func (l *Lab) Table5() *Report {
	d := l.Dataset(DataMPU)
	main := l.Models(DataMPU)
	folds := dataset.KFold(d, l.Scale.MPUFolds, l.Scale.Seed*13+5)

	configs := []struct {
		name string
		set  features.FeatureSet
	}{
		{"C", features.FeatureSet{Context: true}},
		{"E + C", features.FeatureSet{Context: true, Elapsed: true}},
		{"A + E + C", features.FullFeatures()},
	}

	r := &Report{
		ID:     "table5",
		Title:  "GBDT feature ablation on MPU (paper PR-AUC: 0.588, 0.642, 0.686; RNN 0.767)",
		Header: []string{"FEATURES", "PR-AUC", "RECALL@50%"},
	}
	for _, cfg := range configs {
		var scores []float64
		var labels []bool
		for _, f := range folds {
			b := features.NewBuilder(d.Schema)
			b.Set = cfg.set
			b.MinTs = d.CutoffForLastDays(7)
			var trainX [][]float64
			var trainY []bool
			for _, exs := range b.BuildDataset(f.Train) {
				for _, ex := range exs {
					trainX = append(trainX, ex.Dense)
					trainY = append(trainY, ex.Label)
				}
			}
			gcfg := gbdt.DefaultConfig()
			gcfg.Rounds = l.Scale.GBDTRounds
			gcfg.MaxDepth = main.GBDTDepth // reuse the searched depth
			gcfg.Seed = l.Scale.Seed
			g := gbdt.Fit(gcfg, trainX, trainY)
			for _, exs := range b.BuildDataset(f.Test) {
				for _, ex := range exs {
					scores = append(scores, g.Predict(ex.Dense))
					labels = append(labels, ex.Label)
				}
			}
		}
		recall, _ := metrics.RecallAtPrecision(scores, labels, 0.5)
		r.Rows = append(r.Rows, []string{cfg.name, f3(metrics.PRAUC(scores, labels)), f3(recall)})
	}
	rnn := main.Evals[ModelRNN]
	recall, _ := metrics.RecallAtPrecision(rnn.Scores, rnn.Labels, 0.5)
	r.Rows = append(r.Rows, []string{"RNN", f3(metrics.PRAUC(rnn.Scores, rnn.Labels)), f3(recall)})
	r.Notes = append(r.Notes, "ablation reuses the depth found by the main GBDT search; paper re-searches per config")
	return r
}
