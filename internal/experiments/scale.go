// Package experiments contains one driver per table and figure of the
// paper's evaluation (§4, §8, §9), plus the ablations its design discussion
// calls for (§6.2, §6.3, §7.1). The drivers are shared by cmd/ppbench and
// the root-level benchmark suite; EXPERIMENTS.md records their output
// against the paper's numbers.
package experiments

import "repro/internal/dataset"

// Scale sizes the reproduction. The paper's datasets are 1M-user
// production logs; these defaults are chosen so the complete suite runs on
// a single core in tens of minutes while preserving every qualitative
// result. All counts can be raised.
type Scale struct {
	MobileTabUsers  int
	TimeshiftUsers  int
	MPUUsers        int
	MPUEventsPerDay float64

	// HiddenDim for the headline RNN runs (the paper uses 128; the
	// hidden-dim ablation sweeps this).
	HiddenDim int
	MLPHidden int

	// Epochs per dataset (§7.1: one epoch suffices for the large
	// datasets, MPU needs 8).
	MobileTabEpochs int
	TimeshiftEpochs int
	MPUEpochs       int
	// MPUFolds is the cross-validation fold count (4 in §7).
	MPUFolds int
	// BatchUsers is the minibatch size (10 in §7.1).
	BatchUsers int

	// GBDTRounds is the boosting budget for final fits; GBDTSearchRounds
	// bounds each depth-search candidate (§5.4 searches depths 1-10).
	GBDTRounds       int
	GBDTSearchRounds int
	DepthRange       []int

	// LREpochs bounds the logistic-regression optimizer.
	LREpochs int

	// RNNLR is the Adam learning rate. The paper uses 1e-3 with millions
	// of optimizer steps; scaled-down populations take far fewer steps per
	// epoch, so smaller scales compensate with a higher rate.
	RNNLR float64

	// AblationUsers sizes the ablation training runs (they repeat RNN
	// training several times, so they use a reduced population).
	AblationUsers  int
	AblationEpochs int

	Seed uint64
}

// DefaultScale is the EXPERIMENTS.md configuration: every experiment at a
// size a single core completes in tens of minutes.
func DefaultScale() Scale {
	return Scale{
		MobileTabUsers:   4000,
		TimeshiftUsers:   4000,
		MPUUsers:         120,
		MPUEventsPerDay:  30,
		HiddenDim:        64,
		MLPHidden:        128,
		MobileTabEpochs:  3,
		TimeshiftEpochs:  4,
		MPUEpochs:        6,
		MPUFolds:         4,
		BatchUsers:       10,
		GBDTRounds:       100,
		GBDTSearchRounds: 25,
		DepthRange:       depthRange(1, 10),
		LREpochs:         4,
		RNNLR:            2e-3,
		AblationUsers:    1200,
		AblationEpochs:   2,
		Seed:             1,
	}
}

// QuickScale is the test/bench configuration: every experiment in seconds.
func QuickScale() Scale {
	return Scale{
		MobileTabUsers:   300,
		TimeshiftUsers:   300,
		MPUUsers:         32,
		MPUEventsPerDay:  15,
		HiddenDim:        24,
		MLPHidden:        32,
		MobileTabEpochs:  6,
		TimeshiftEpochs:  3,
		MPUEpochs:        6,
		MPUFolds:         2,
		BatchUsers:       2,
		GBDTRounds:       40,
		GBDTSearchRounds: 10,
		DepthRange:       []int{2, 4, 6},
		LREpochs:         3,
		RNNLR:            3e-3,
		AblationUsers:    200,
		AblationEpochs:   2,
		Seed:             1,
	}
}

func depthRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for d := lo; d <= hi; d++ {
		out = append(out, d)
	}
	return out
}

// EvalLastDays is the evaluation window (§8: the last 7 days).
const EvalLastDays = 7

// evalCutoff returns the evaluation minimum timestamp for a dataset.
func evalCutoff(d *dataset.Dataset) int64 { return d.CutoffForLastDays(EvalLastDays) }
