package experiments

import (
	"fmt"
	"strings"
)

// Report is one experiment's rendered result: a titled table plus notes
// comparing against the paper's published numbers.
type Report struct {
	ID     string // e.g. "table3", "figure7"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the report as an aligned ASCII table.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	if len(r.Header) > 0 {
		writeRow(r.Header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f3 formats a float at 3 decimals.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// f1pc formats a ratio as a percentage with 2 decimals.
func f1pc(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

// fint formats an integer.
func fint(n int) string { return fmt.Sprintf("%d", n) }
