package experiments

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/serving"
)

// trainVariant trains one RNN configuration on the ablation population and
// returns its PR-AUC on held-out users (last 7 days).
func (l *Lab) trainVariant(cfg core.Config, tcMod func(*core.TrainConfig)) float64 {
	d := l.ablationDataset()
	split := dataset.SplitUsers(d, 0.2, l.Scale.Seed*31+7)
	m := core.New(d.Schema, cfg)
	tc := core.DefaultTrainConfig()
	tc.BatchUsers = l.Scale.BatchUsers
	tc.Epochs = l.Scale.AblationEpochs
	tc.Seed = l.Scale.Seed
	if l.Scale.RNNLR > 0 {
		tc.LR = l.Scale.RNNLR
	}
	if tcMod != nil {
		tcMod(&tc)
	}
	core.NewTrainer(m, tc).Train(split.Train)
	scores, labels := m.Evaluate(split.Test, evalCutoff(d))
	return metrics.PRAUC(scores, labels)
}

// baseAblationConfig is the reference model for ablations.
func (l *Lab) baseAblationConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.HiddenDim = l.Scale.HiddenDim
	cfg.MLPHidden = l.Scale.MLPHidden
	cfg.Seed = l.Scale.Seed
	return cfg
}

// Cells reproduces the §6.2 recurrent-unit comparison: the paper finds
// GRUs best, LSTMs comparable, tanh lagging.
func (l *Lab) Cells() *Report {
	r := &Report{
		ID:     "cells",
		Title:  "Recurrent cell ablation on MobileTab (paper: GRU best, tanh lags)",
		Header: []string{"CELL", "PR-AUC"},
	}
	for _, kind := range []nn.CellKind{nn.CellGRU, nn.CellLSTM, nn.CellTanh} {
		cfg := l.baseAblationConfig()
		cfg.Cell = kind
		r.Rows = append(r.Rows, []string{string(kind), f3(l.trainVariant(cfg, nil))})
	}
	return r
}

// LatentCross reproduces the §6.2 latent-cross ablation: the element-wise
// multiplication of the hidden state with a context-derived latent factor
// provides a meaningful improvement.
func (l *Lab) LatentCross() *Report {
	r := &Report{
		ID:     "latentcross",
		Title:  "Latent cross ablation on MobileTab (§6.2: cross helps)",
		Header: []string{"PREDICTOR", "PR-AUC"},
	}
	with := l.baseAblationConfig()
	without := l.baseAblationConfig()
	without.LatentCross = false
	r.Rows = append(r.Rows,
		[]string{"MLP + latent cross", f3(l.trainVariant(with, nil))},
		[]string{"MLP only", f3(l.trainVariant(without, nil))},
	)
	return r
}

// HiddenDim reproduces the §9 quality/storage trade-off: smaller hidden
// states trade model quality for a smaller per-user footprint.
func (l *Lab) HiddenDim() *Report {
	r := &Report{
		ID:     "hiddendim",
		Title:  "Hidden dimensionality vs quality and per-user state (§9)",
		Header: []string{"HIDDEN DIM", "PR-AUC", "STATE BYTES/USER"},
	}
	for _, d := range []int{16, 32, 64, 128} {
		cfg := l.baseAblationConfig()
		cfg.HiddenDim = d
		r.Rows = append(r.Rows, []string{
			fint(d), f3(l.trainVariant(cfg, nil)), fint(serving.HiddenValueBytes(d)),
		})
	}
	r.Notes = append(r.Notes, "the paper serves d=128 (512-byte vectors) and notes quantization can shrink this 4x further")
	return r
}

// LossWindow reproduces the §6.3 loss-window finding: training on the last
// 21 days beats both the full 30 days and the last 7.
func (l *Lab) LossWindow() *Report {
	r := &Report{
		ID:     "losswindow",
		Title:  "Training-loss window ablation (§6.3: last 21 days is best)",
		Header: []string{"LOSS WINDOW (DAYS)", "PR-AUC"},
	}
	for _, days := range []int{30, 21, 7} {
		cfg := l.baseAblationConfig()
		days := days
		auc := l.trainVariant(cfg, func(tc *core.TrainConfig) { tc.LossLastDays = days })
		r.Rows = append(r.Rows, []string{fint(days), f3(auc)})
	}
	return r
}

// All runs every experiment in DESIGN.md's index, returning rendered
// reports in presentation order.
func (l *Lab) All() []*Report {
	return []*Report{
		l.Table1Preview(),
		l.Table2(),
		l.Figure1(),
		l.Table3(),
		l.Table4(),
		l.Table5(),
		l.Figure4(),
		l.Figure5(),
		l.Figure6(),
		l.Figure7(),
		l.OnlineRecall(),
		l.ServingCost(),
		l.Parallelism(),
		l.Lifecycle(),
		l.Batching(),
		l.Cells(),
		l.LatentCross(),
		l.HiddenDim(),
		l.LossWindow(),
		l.Stacked(),
		l.Universal(),
		l.Retrain(),
		l.Quantization(),
	}
}

// ByID returns the named experiment's report, or nil.
func (l *Lab) ByID(id string) *Report {
	drivers := map[string]func() *Report{
		"table1":        l.Table1Preview,
		"table2":        l.Table2,
		"figure1":       l.Figure1,
		"table3":        l.Table3,
		"table4":        l.Table4,
		"table5":        l.Table5,
		"figure4":       l.Figure4,
		"figure5":       l.Figure5,
		"figure6":       l.Figure6,
		"figure7":       l.Figure7,
		"online-recall": l.OnlineRecall,
		"serving":       l.ServingCost,
		"parallel":      l.Parallelism,
		"lifecycle":     l.Lifecycle,
		"loadtest":      l.Loadtest,
		"cluster":       l.Cluster,
		"failover":      l.Failover,
		"chaos":         l.Chaos,
		"batching":      l.Batching,
		"cells":         l.Cells,
		"latentcross":   l.LatentCross,
		"hiddendim":     l.HiddenDim,
		"losswindow":    l.LossWindow,
		"stacked":       l.Stacked,
		"universal":     l.Universal,
		"retrain":       l.Retrain,
		"quantization":  l.Quantization,
	}
	if f, ok := drivers[id]; ok {
		return f()
	}
	return nil
}

// IDs lists all experiment identifiers in presentation order.
func IDs() []string {
	return []string{
		"table1", "table2", "figure1", "table3", "table4", "table5",
		"figure4", "figure5", "figure6", "figure7", "online-recall",
		"serving", "parallel", "lifecycle", "loadtest", "cluster", "failover", "chaos", "batching", "cells", "latentcross", "hiddendim", "losswindow",
		"stacked", "universal", "retrain", "quantization",
	}
}
