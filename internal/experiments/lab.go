package experiments

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/gbdt"
	"repro/internal/serving"
	"repro/internal/synth"
)

// Model identifiers, in the paper's presentation order.
const (
	ModelPct  = "PercentageBased"
	ModelLR   = "LR"
	ModelGBDT = "GBDT"
	ModelRNN  = "RNN"
)

// ModelOrder is the row order of Tables 3 and 4.
var ModelOrder = []string{ModelPct, ModelLR, ModelGBDT, ModelRNN}

// Dataset identifiers, in the paper's column order.
const (
	DataMobileTab = "MobileTab"
	DataTimeshift = "Timeshift"
	DataMPU       = "MPU"
)

// DatasetOrder is the column order of Tables 2-4.
var DatasetOrder = []string{DataMobileTab, DataTimeshift, DataMPU}

// Eval holds one model's test-set predictions.
type Eval struct {
	Scores []float64
	Labels []bool
}

// ModelSet holds everything trained on one dataset: test-set evaluations
// for the four models plus the fitted artifacts reused by the serving and
// online experiments.
type ModelSet struct {
	Evals map[string]Eval

	RNN       *core.Model
	GBDT      *gbdt.Model
	GBDTDepth int
	Builder   *features.Builder
	Split     dataset.Split
	// RNNCurve is the training loss curve (Figure 4 uses MPU's).
	RNNCurve []core.LossPoint
	// Timing per model, for the trade-off discussion in §9.
	TrainTime map[string]time.Duration
}

// Lab caches generated datasets and trained model sets so the experiment
// drivers can share them.
type Lab struct {
	Scale Scale
	// Verbose enables progress logging to stdout.
	Verbose bool

	datasets map[string]*dataset.Dataset
	sets     map[string]*ModelSet
	// online memoises the Figure 7 / §9 replay; ablation holds the reduced
	// population shared by the ablation drivers.
	online   *serving.OnlineResult
	ablation *dataset.Dataset
}

// NewLab returns an empty lab at the given scale.
func NewLab(s Scale) *Lab {
	return &Lab{Scale: s, datasets: map[string]*dataset.Dataset{}, sets: map[string]*ModelSet{}}
}

func (l *Lab) logf(format string, args ...any) {
	if l.Verbose {
		fmt.Printf("[lab] "+format+"\n", args...)
	}
}

// Dataset generates (and caches) one of the three synthetic datasets.
func (l *Lab) Dataset(name string) *dataset.Dataset {
	if d, ok := l.datasets[name]; ok {
		return d
	}
	l.logf("generating %s", name)
	var d *dataset.Dataset
	switch name {
	case DataMobileTab:
		cfg := synth.DefaultMobileTab()
		cfg.Users = l.Scale.MobileTabUsers
		cfg.Seed = l.Scale.Seed*1000 + 1
		d = synth.GenerateMobileTab(cfg)
	case DataTimeshift:
		cfg := synth.DefaultTimeshift()
		cfg.Users = l.Scale.TimeshiftUsers
		cfg.Seed = l.Scale.Seed*1000 + 2
		d = synth.GenerateTimeshift(cfg)
	case DataMPU:
		cfg := synth.DefaultMPU()
		cfg.Users = l.Scale.MPUUsers
		cfg.MeanEventsPerDay = l.Scale.MPUEventsPerDay
		cfg.Seed = l.Scale.Seed*1000 + 3
		d = synth.GenerateMPU(cfg)
	default:
		panic("experiments: unknown dataset " + name)
	}
	l.datasets[name] = d
	return d
}

// Models trains (and caches) the four models on one dataset, evaluated on
// the last 7 days of the held-out users (§8). MPU uses k-fold CV with
// combined out-of-fold predictions (§7).
func (l *Lab) Models(name string) *ModelSet {
	if s, ok := l.sets[name]; ok {
		return s
	}
	d := l.Dataset(name)
	var set *ModelSet
	if name == DataMPU {
		set = l.trainCV(d)
	} else {
		split := dataset.SplitUsers(d, 0.1, l.Scale.Seed*7+11)
		set = l.trainSplit(d, split.Train, split.Test)
		set.Split = split
	}
	l.sets[name] = set
	return set
}

// rnnEpochs returns the per-dataset epoch budget.
func (l *Lab) rnnEpochs(name string) int {
	switch name {
	case DataMobileTab:
		return l.Scale.MobileTabEpochs
	case DataTimeshift:
		return l.Scale.TimeshiftEpochs
	default:
		return l.Scale.MPUEpochs
	}
}

// trainSplit fits all four models on train and evaluates on test.
func (l *Lab) trainSplit(d, train, test *dataset.Dataset) *ModelSet {
	set := &ModelSet{Evals: map[string]Eval{}, TrainTime: map[string]time.Duration{}}
	cutoff := evalCutoff(d)

	// Percentage-based (§5.1).
	t0 := time.Now()
	pct := &baselines.PercentageModel{}
	pct.Fit(train)
	ps, pl := pct.Evaluate(test, cutoff)
	set.Evals[ModelPct] = Eval{Scores: ps, Labels: pl}
	set.TrainTime[ModelPct] = time.Since(t0)
	l.logf("%s: %%based done (%d preds)", d.Schema.Name, len(ps))

	// Engineered features for LR and GBDT: train on the last 7 days so the
	// aggregation features are warmed up (§5.3).
	builder := features.NewBuilder(d.Schema)
	builder.MinTs = d.CutoffForLastDays(7)
	set.Builder = builder

	var trainSparse []features.SparseVec
	var trainDense [][]float64
	var trainY []bool
	for _, exs := range builder.BuildDataset(train) {
		for _, ex := range exs {
			trainSparse = append(trainSparse, ex.Sparse)
			trainDense = append(trainDense, ex.Dense)
			trainY = append(trainY, ex.Label)
		}
	}
	var testSparse []features.SparseVec
	var testDense [][]float64
	var testY []bool
	for _, exs := range builder.BuildDataset(test) {
		for _, ex := range exs {
			testSparse = append(testSparse, ex.Sparse)
			testDense = append(testDense, ex.Dense)
			testY = append(testY, ex.Label)
		}
	}

	// Logistic regression (§5.3).
	t0 = time.Now()
	lr := baselines.NewLogisticRegression(builder.SparseDim())
	lr.Epochs = l.Scale.LREpochs
	lr.Fit(trainSparse, trainY)
	set.Evals[ModelLR] = Eval{Scores: lr.PredictAll(testSparse), Labels: testY}
	set.TrainTime[ModelLR] = time.Since(t0)
	l.logf("%s: LR done", d.Schema.Name)

	// GBDT with the §5.4 depth search: 10% of training users form the
	// validation split. (Here examples are already flattened; a 10% tail
	// of the user-ordered examples preserves the user-level split since
	// BuildDataset emits users contiguously.)
	t0 = time.Now()
	nVal := len(trainDense) / 10
	if nVal < 1 {
		nVal = 1
	}
	searchCfg := gbdt.DefaultConfig()
	searchCfg.Rounds = l.Scale.GBDTSearchRounds
	searchCfg.Seed = l.Scale.Seed
	depth, _ := gbdt.SearchDepth(searchCfg,
		trainDense[:len(trainDense)-nVal], trainY[:len(trainY)-nVal],
		trainDense[len(trainDense)-nVal:], trainY[len(trainY)-nVal:],
		l.Scale.DepthRange)
	cfg := gbdt.DefaultConfig()
	cfg.Rounds = l.Scale.GBDTRounds
	cfg.MaxDepth = depth
	cfg.Seed = l.Scale.Seed
	g := gbdt.Fit(cfg, trainDense, trainY)
	set.GBDT = g
	set.GBDTDepth = depth
	set.Evals[ModelGBDT] = Eval{Scores: g.PredictAll(testDense), Labels: testY}
	set.TrainTime[ModelGBDT] = time.Since(t0)
	l.logf("%s: GBDT done (depth %d)", d.Schema.Name, depth)

	// RNN (§6-7).
	t0 = time.Now()
	mcfg := core.DefaultConfig()
	mcfg.HiddenDim = l.Scale.HiddenDim
	mcfg.MLPHidden = l.Scale.MLPHidden
	mcfg.Timeshift = d.Schema.HasPeakWindows
	mcfg.Seed = l.Scale.Seed
	rnn := core.New(d.Schema, mcfg)
	tc := core.DefaultTrainConfig()
	tc.BatchUsers = l.Scale.BatchUsers
	tc.Epochs = l.rnnEpochs(d.Schema.Name)
	tc.Seed = l.Scale.Seed
	if l.Scale.RNNLR > 0 {
		tc.LR = l.Scale.RNNLR
	}
	tr := core.NewTrainer(rnn, tc)
	tr.Train(train)
	set.RNN = rnn
	set.RNNCurve = tr.Curve
	scores, labels := rnn.Evaluate(test, cutoff)
	set.Evals[ModelRNN] = Eval{Scores: scores, Labels: labels}
	set.TrainTime[ModelRNN] = time.Since(t0)
	l.logf("%s: RNN done", d.Schema.Name)
	return set
}

// trainCV runs the MPU protocol: k folds, metrics over combined
// out-of-fold predictions (§7). The retained RNN/GBDT artifacts come from
// fold 0.
func (l *Lab) trainCV(d *dataset.Dataset) *ModelSet {
	folds := dataset.KFold(d, l.Scale.MPUFolds, l.Scale.Seed*13+5)
	combined := &ModelSet{Evals: map[string]Eval{}, TrainTime: map[string]time.Duration{}}
	for fi, f := range folds {
		l.logf("MPU fold %d/%d", fi+1, len(folds))
		set := l.trainSplit(d, f.Train, f.Test)
		for name, ev := range set.Evals {
			c := combined.Evals[name]
			c.Scores = append(c.Scores, ev.Scores...)
			c.Labels = append(c.Labels, ev.Labels...)
			combined.Evals[name] = c
			combined.TrainTime[name] += set.TrainTime[name]
		}
		if fi == 0 {
			combined.RNN = set.RNN
			combined.GBDT = set.GBDT
			combined.GBDTDepth = set.GBDTDepth
			combined.Builder = set.Builder
			combined.RNNCurve = set.RNNCurve
			combined.Split = dataset.Split{Train: f.Train, Test: f.Test}
		}
	}
	return combined
}
