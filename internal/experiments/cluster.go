package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/serving"
	"repro/internal/synth"
)

// The cluster experiment is the end-to-end proof of the sharded serving
// tier, run at report scale: the deterministic cohort log is replayed
// (a) sequentially in one process and (b) over HTTP through a 3-replica
// consistent-hash cluster that reshards down to 2 replicas mid-replay via
// drain-and-handoff. The report shows how traffic and states spread across
// replicas and whether the aggregate digest stayed byte-identical to the
// sequential replay — the property that makes the cluster a drop-in
// replacement for the single process. (Throughput comparisons live in the
// loadtest experiment and BENCH_server.json; this driver runs the volatile
// store, so it also exercises the wire-format branch of the transfer
// endpoints that the durable parity tests don't.)

// Cluster replays the cohort through a resharding 3-replica cluster and
// reports per-replica traffic plus the parity outcome.
func (l *Lab) Cluster() *Report {
	users := l.Scale.MobileTabUsers / 10
	if users < 20 {
		users = 20
	}
	mcfg := core.DefaultConfig()
	mcfg.HiddenDim = 24
	mcfg.Seed = l.Scale.Seed
	m := core.New(synth.MobileTabSchema(), mcfg)
	log := server.ReplayLog(users, l.Scale.Seed)

	// Sequential baseline.
	seqStore := serving.NewKVStore()
	proc := serving.NewStreamProcessor(m, seqStore)
	for _, e := range log {
		proc.OnSessionStart(e.SID, e.User, e.Ts, e.Cat)
		if e.Access {
			proc.OnAccess(e.SID, e.Ts+30)
		}
	}
	proc.Flush()
	wantDigest, wantKeys := serving.StateDigest(seqStore)

	// 3-replica cluster (volatile stores — the wire-format transfer path).
	type member struct {
		srv   *server.Server
		store serving.Store
		ts    *httptest.Server
	}
	var members []member
	var urls []string
	for i := 0; i < 3; i++ {
		store := serving.NewShardedKVStore(8)
		srv := server.New(server.Options{
			Model: m, Store: store, Threshold: 0.5,
			Lanes: 2, MaxBatch: 16, MaxWait: time.Millisecond, LaneDepth: 1024,
		})
		ts := httptest.NewServer(srv.Handler())
		members = append(members, member{srv, store, ts})
		urls = append(urls, ts.URL)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, mem := range members {
			mem.srv.Shutdown(ctx)
			mem.ts.Close()
		}
	}()
	router, err := cluster.New(cluster.Options{Replicas: urls})
	if err != nil {
		panic(fmt.Sprintf("cluster experiment: %v", err))
	}
	rts := httptest.NewServer(router)
	defer rts.Close()

	runHalf := func(half []server.ReplayEvent, flush bool) *server.LoadReport {
		rep, err := server.RunLoad(server.LoadOptions{
			BaseURL: rts.URL, Concurrency: 4, EventsPerPost: 16, Flush: flush,
		}, half)
		if err != nil {
			panic(fmt.Sprintf("cluster experiment: %v", err))
		}
		return rep
	}
	t0 := time.Now()
	half := len(log) / 2
	r1 := runHalf(log[:half], false)
	moved, err := router.Reshard(urls[:2])
	if err != nil {
		panic(fmt.Sprintf("cluster experiment reshard: %v", err))
	}
	r2 := runHalf(log[half:], true)
	wall := time.Since(t0)

	_, gotDigest, err := server.Digest(rts.URL, nil)
	if err != nil {
		panic(fmt.Sprintf("cluster experiment digest: %v", err))
	}
	parity := "MATCH"
	if gotDigest != wantDigest {
		parity = "MISMATCH"
	}

	r := &Report{
		ID:     "cluster",
		Title:  "Sharded serving cluster: 3 replicas, mid-replay reshard to 2, digest vs sequential replay",
		Header: []string{"REPLICA", "EVENTS", "UPDATES", "KEYS", "SHED"},
	}
	for i, mem := range members {
		st := mem.srv.Stats()
		role := fmt.Sprintf("replica %d", i)
		if i == 2 {
			role += " (drained)"
		}
		r.Rows = append(r.Rows, []string{
			role, fmt.Sprintf("%d", st.Events), fmt.Sprintf("%d", st.UpdatesRun),
			fmt.Sprintf("%d", st.Store.Keys), fmt.Sprintf("%d", st.EventsShed),
		})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("%d sessions replayed in %s (%.0f sessions/s through the router), shed %d, errors %d",
			len(log), wall.Round(time.Millisecond),
			float64(len(log))/wall.Seconds(), r1.Shed+r2.Shed, r1.Errors+r2.Errors),
		fmt.Sprintf("mid-replay reshard moved %d states off replica 2 via drain-and-handoff", moved),
		fmt.Sprintf("cluster digest vs single-process sequential digest: %s (%d keys)", parity, wantKeys),
	)
	return r
}
