package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/replication"
	"repro/internal/server"
	"repro/internal/serving"
	"repro/internal/statestore"
	"repro/internal/synth"
)

// The chaos experiment drives the cluster through a seeded fault scenario
// and proves the hardened request path rides it out without losing a
// state. Topology: durable replicas A and B, a follower F shipping A's
// WAL, a router with the prober enabled fronting the ring. The cohort log
// replays in quarters:
//
//  1. steady — no faults; this quarter's p99 is the baseline the chaos
//     tail is judged against;
//  2. chaos — the scenario arms: B (the "slow replica") serves under
//     injected 50ms forward delays, predict forwards see injected
//     connection resets (absorbed in place by the router's retry
//     budget), and A→F replication frames are corrupted (the follower
//     drops the connection and re-bootstraps);
//  3. failover window — A is killed at replication lag zero; while the
//     prober converges on promoting F, A-owned predicts are answered
//     degraded (200 from a non-owner, flagged) instead of 502, and
//     B-owned traffic keeps flowing through the cutover. A-owned events
//     from this quarter are deferred, the way real clients would retry
//     them after the outage;
//  4. recovered — faults disarmed; the deferred traffic plus the final
//     quarter, with A's arcs now owned by the promoted follower.
//
// The final aggregate digest must equal the single-process sequential
// digest: every injected transport fault fires before the request is
// sent (so nothing half-applies), frame corruption is caught by the CRC
// and re-bootstrapped, and the kill happens at lag zero — chaos costs
// tail latency, never states.

// Chaos replays the cohort under the seeded fault scenario and reports
// per-phase latency, the degraded-predict accounting and the parity
// outcome.
func (l *Lab) Chaos() *Report {
	users := l.Scale.MobileTabUsers / 10
	if users < 20 {
		users = 20
	}
	mcfg := core.DefaultConfig()
	mcfg.HiddenDim = 24
	mcfg.Seed = l.Scale.Seed
	m := core.New(synth.MobileTabSchema(), mcfg)
	log := server.ReplayLog(users, l.Scale.Seed)

	// Sequential baseline digest — the zero-lost-states gate.
	seqStore := serving.NewKVStore()
	proc := serving.NewStreamProcessor(m, seqStore)
	for _, e := range log {
		proc.OnSessionStart(e.SID, e.User, e.Ts, e.Cat)
		if e.Access {
			proc.OnAccess(e.SID, e.Ts+30)
		}
	}
	proc.Flush()
	wantDigest, wantKeys := serving.StateDigest(seqStore)

	type member struct {
		srv   *server.Server
		state *statestore.Store
		ts    *httptest.Server
		dir   string
	}
	openState := func() (*statestore.Store, string) {
		dir, err := os.MkdirTemp("", "pp-chaos-*")
		if err != nil {
			panic(fmt.Sprintf("chaos experiment: %v", err))
		}
		ss, err := statestore.Open(statestore.Options{Dir: dir, Shards: 4})
		if err != nil {
			panic(fmt.Sprintf("chaos experiment: %v", err))
		}
		return ss, dir
	}
	start := func(follower *replication.Follower, ss *statestore.Store, dir string) member {
		srv := server.New(server.Options{
			Model: m, Store: ss, State: ss, Threshold: 0.5, Follower: follower,
			Lanes: 2, MaxBatch: 16, MaxWait: time.Millisecond, LaneDepth: 1024,
		})
		if follower != nil {
			follower.Start()
		}
		return member{srv, ss, httptest.NewServer(srv.Handler()), dir}
	}
	assA, dirA := openState()
	assB, dirB := openState()
	a, b := start(nil, assA, dirA), start(nil, assB, dirB)
	folState, folDir := openState()
	f := replication.NewFollower(folState, a.ts.URL)
	fm := start(f, folState, folDir)
	members := []member{a, b, fm}
	defer func() {
		faults.Disarm()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, mem := range members {
			mem.srv.Shutdown(ctx)
			mem.ts.Close()
			mem.state.Close() //pplint:allow walerrcheck
			os.RemoveAll(mem.dir)
		}
	}()

	router, err := cluster.New(cluster.Options{
		Replicas:      []string{a.ts.URL, b.ts.URL},
		Followers:     map[string]string{a.ts.URL: fm.ts.URL},
		ProbeInterval: 50 * time.Millisecond,
		ProbeFails:    3,
		DataTimeout:   5 * time.Second,
	})
	if err != nil {
		panic(fmt.Sprintf("chaos experiment: %v", err))
	}
	router.StartProber()
	defer router.StopProber()
	rts := httptest.NewServer(router)
	defer rts.Close()

	run := func(part []server.ReplayEvent, flush bool) *server.LoadReport {
		rep, err := server.RunLoad(server.LoadOptions{
			BaseURL: rts.URL, Concurrency: 4, EventsPerPost: 16, Flush: flush,
			PredictEvery: 8, PredictInterval: 5 * time.Millisecond,
			RetryFailed: 200, RetryBackoff: 10 * time.Millisecond,
		}, part)
		if err != nil {
			panic(fmt.Sprintf("chaos experiment: %v", err))
		}
		return rep
	}
	waitLagZero := func() {
		deadline := time.Now().Add(30 * time.Second)
		for f.Status().LastSeq < a.state.WALSeq() && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if f.Status().LastSeq < a.state.WALSeq() {
			panic("chaos experiment: follower never reached lag zero")
		}
	}

	quarter := len(log) / 4

	// Phase 1: steady baseline, no faults.
	rep1 := run(log[:quarter], true)

	// Phase 2: arm the seeded scenario. Why these rules survive the parity
	// gate: delays never fail a request; resets fire in the transport
	// *before* the request is sent, and are scoped to /predict (read-only,
	// retried in place by the router) so no event batch can half-apply and
	// be re-sent; frame corruption is caught by the replication CRC and
	// answered with a re-bootstrap.
	bHost := strings.TrimPrefix(b.ts.URL, "http://")
	plan := &faults.Plan{
		Seed: l.Scale.Seed,
		Rules: []faults.Rule{
			// The slow replica: a sprinkling of 50ms stalls on B's events.
			{Point: "router.forward", Match: bHost + "/event", Action: faults.ActDelay, Prob: 0.005, DelayMs: 50},
			// Transient predict resets, absorbed by the router's retry budget.
			{Point: "router.forward", Match: "/predict", Action: faults.ActReset, Prob: 0.05},
			// Corrupted replication frames on A's stream (bounded so the
			// follower re-bootstraps a handful of times, not continuously).
			{Point: "repl.conn.read", Match: a.ts.URL, Action: faults.ActCorrupt, Prob: 0.01, Count: 5},
		},
	}
	if err := faults.Arm(plan); err != nil {
		panic(fmt.Sprintf("chaos experiment: %v", err))
	}
	rep2 := run(log[quarter:2*quarter], true)
	waitLagZero()

	// Phase 3: kill A mid-window. B-owned traffic keeps flowing (injected
	// delays still armed); A-owned events are deferred; A-owned predicts
	// during the prober's convergence window are answered degraded.
	ring := router.Ring()
	var window, deferred []server.ReplayEvent
	for _, e := range log[2*quarter : 3*quarter] {
		if ring.OwnerOfUser(e.User) == b.ts.URL {
			window = append(window, e)
		} else {
			deferred = append(deferred, e)
		}
	}
	aUser := -1
	for u := 0; u < users*4 && aUser < 0; u++ {
		if ring.OwnerOfUser(u) == a.ts.URL {
			aUser = u
		}
	}
	if aUser < 0 {
		panic("chaos experiment: no user owned by replica A")
	}
	type killResult struct {
		degraded  int
		failovers int
		waited    time.Duration
	}
	killed := make(chan killResult, 1)
	go func() {
		time.Sleep(50 * time.Millisecond) // let the window load get going
		a.ts.CloseClientConnections()
		a.ts.Close()
		t0 := time.Now()
		body, _ := json.Marshal(server.PredictIn{User: aUser, Ts: 1 << 30, Cat: []int{0, 0}})
		res := killResult{}
		deadline := time.Now().Add(10 * time.Second)
		for router.Failovers() == 0 && time.Now().Before(deadline) {
			resp, err := http.Post(rts.URL+"/predict", "application/json", bytes.NewReader(body))
			if err == nil {
				var out server.PredictOut
				if resp.StatusCode == http.StatusOK &&
					json.NewDecoder(resp.Body).Decode(&out) == nil && out.Degraded {
					res.degraded++
				}
				resp.Body.Close()
			}
			time.Sleep(5 * time.Millisecond)
		}
		res.failovers = router.Failovers()
		res.waited = time.Since(t0)
		killed <- res
	}()
	rep3 := run(window, false)
	kr := <-killed
	if kr.failovers == 0 {
		panic("chaos experiment: prober never failed the dead primary over")
	}

	// Phase 4: disarm and recover — the deferred quarter plus the rest.
	// (Counters are snapshotted first: disarming drops the scenario.)
	counters := faults.Counters()
	faults.Disarm()
	rep4 := run(append(append([]server.ReplayEvent(nil), deferred...), log[3*quarter:]...), true)

	_, gotDigest, err := server.Digest(rts.URL, nil)
	if err != nil {
		panic(fmt.Sprintf("chaos experiment digest: %v", err))
	}
	parity := "MATCH"
	if gotDigest != wantDigest {
		parity = "MISMATCH"
	}

	reps := []*server.LoadReport{rep1, rep2, rep3, rep4}
	clientDegraded := kr.degraded
	totalRetries := 0
	for _, rep := range reps {
		clientDegraded += rep.DegradedPredicts
		totalRetries += rep.Retries
	}
	routerDegraded := int(router.DegradedPredicts())
	accounting := "accounted"
	if routerDegraded != clientDegraded {
		accounting = fmt.Sprintf("UNACCOUNTED (router %d != clients %d)", routerDegraded, clientDegraded)
	}
	p99Ratio := 0.0
	if rep1.EventLatency.P99Ms > 0 {
		p99Ratio = rep2.EventLatency.P99Ms / rep1.EventLatency.P99Ms
	}

	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fired := make([]string, 0, len(keys))
	for _, k := range keys {
		fired = append(fired, fmt.Sprintf("%s=%d", k, counters[k]))
	}

	r := &Report{
		ID:     "chaos",
		Title:  "Seeded chaos: injected delays, predict resets, corrupt replication frames and a mid-run crash",
		Header: []string{"PHASE", "SESSIONS", "EVENT p50 (ms)", "EVENT p99 (ms)", "RETRIES", "DEGRADED", "ERRORS"},
	}
	for _, row := range []struct {
		name string
		rep  *server.LoadReport
	}{
		{"steady", rep1},
		{"chaos", rep2},
		{"failover window", rep3},
		{"recovered", rep4},
	} {
		r.Rows = append(r.Rows, []string{
			row.name, fmt.Sprintf("%d", row.rep.Sessions),
			fmt.Sprintf("%.2f", row.rep.EventLatency.P50Ms),
			fmt.Sprintf("%.2f", row.rep.EventLatency.P99Ms),
			fmt.Sprintf("%d", row.rep.Retries),
			fmt.Sprintf("%d", row.rep.DegradedPredicts),
			fmt.Sprintf("%d", row.rep.Errors),
		})
	}
	fs := f.Status()
	r.Notes = append(r.Notes,
		fmt.Sprintf("scenario seed %d; faults fired: %s", plan.Seed, strings.Join(fired, ", ")),
		fmt.Sprintf("chaos-phase event p99 is %.2fx the steady baseline (gate: <= 3x)", p99Ratio),
		fmt.Sprintf("follower survived %d corrupt frames with %d bootstraps, then reached lag zero before the kill", fs.CorruptFrames, fs.Bootstraps),
		fmt.Sprintf("prober promoted the follower %s after the kill; %d A-owned predicts answered degraded meanwhile, %d event-post retries total", kr.waited.Round(time.Millisecond), kr.degraded, totalRetries),
		fmt.Sprintf("degraded predicts: router served %d, clients observed %d — %s", routerDegraded, clientDegraded, accounting),
		fmt.Sprintf("final cluster digest vs single-process sequential digest: %s (%d keys) — chaos lost zero states", parity, wantKeys),
	)
	return r
}
