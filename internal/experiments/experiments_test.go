package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// quickLab is shared across tests in this package (model training is the
// expensive part; the Lab caches it).
var quickLab = NewLab(QuickScale())

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func findRow(rows [][]string, name string) []string {
	for _, r := range rows {
		if r[0] == name {
			return r
		}
	}
	return nil
}

func TestTable2Shape(t *testing.T) {
	r := quickLab.Table2()
	if len(r.Rows) != 3 {
		t.Fatalf("Table2 rows: %d", len(r.Rows))
	}
	// Positive rates in the paper's regime: MobileTab ≈11%, Timeshift
	// ≈7%, MPU ≈40% (generous bands).
	mt := parseCell(t, findRow(r.Rows, DataMobileTab)[1])
	ts := parseCell(t, findRow(r.Rows, DataTimeshift)[1])
	mpu := parseCell(t, findRow(r.Rows, DataMPU)[1])
	if mt < 5 || mt > 22 {
		t.Fatalf("MobileTab positive rate: %v%%", mt)
	}
	if ts < 2 || ts > 18 {
		t.Fatalf("Timeshift positive rate: %v%%", ts)
	}
	if mpu < 25 || mpu > 55 {
		t.Fatalf("MPU positive rate: %v%%", mpu)
	}
	if r.Render() == "" {
		t.Fatalf("empty render")
	}
}

func TestFigure1Shape(t *testing.T) {
	r := quickLab.Figure1()
	if len(r.Rows) == 0 {
		t.Fatalf("no rows")
	}
	// CDF at access rate 0 (zero-access users): MobileTab ≥ 25%,
	// Timeshift ≥ 30%, MPU ≈ 0.
	row0 := r.Rows[0]
	if parseCell(t, row0[1]) < 0.25 {
		t.Fatalf("MobileTab zero-access: %s", row0[1])
	}
	if parseCell(t, row0[2]) < 0.3 {
		t.Fatalf("Timeshift zero-access: %s", row0[2])
	}
	if parseCell(t, row0[3]) > 0.2 {
		t.Fatalf("MPU zero-access should be small: %s", row0[3])
	}
	// Last row must be CDF 1 everywhere.
	last := r.Rows[len(r.Rows)-1]
	for c := 1; c <= 3; c++ {
		if parseCell(t, last[c]) != 1 {
			t.Fatalf("CDF must end at 1: %v", last)
		}
	}
}

// TestTable3And4Ordering is the headline reproduction check: the model
// quality ordering of the paper must hold at quick scale for MobileTab
// (the dataset all §8/§9 detail discussion uses).
func TestTable3And4Ordering(t *testing.T) {
	r3 := quickLab.Table3()
	if len(r3.Rows) != 5 {
		t.Fatalf("Table3 rows: %d", len(r3.Rows))
	}
	col := 1 // MobileTab column
	pct := parseCell(t, findRow(r3.Rows, ModelPct)[col])
	lr := parseCell(t, findRow(r3.Rows, ModelLR)[col])
	gbdt := parseCell(t, findRow(r3.Rows, ModelGBDT)[col])
	rnn := parseCell(t, findRow(r3.Rows, ModelRNN)[col])
	t.Logf("MobileTab PR-AUC: pct=%.3f lr=%.3f gbdt=%.3f rnn=%.3f", pct, lr, gbdt, rnn)
	if !(pct < lr) {
		t.Errorf("%%based (%v) should trail LR (%v)", pct, lr)
	}
	if !(rnn > pct) {
		t.Errorf("RNN (%v) must beat %%based (%v)", rnn, pct)
	}
	if !(rnn > gbdt*0.95) {
		t.Errorf("RNN (%v) should be at least competitive with GBDT (%v)", rnn, gbdt)
	}

	r4 := quickLab.Table4()
	if len(r4.Rows) != 5 {
		t.Fatalf("Table4 rows: %d", len(r4.Rows))
	}
	for _, m := range ModelOrder {
		row := findRow(r4.Rows, m)
		for c := 1; c <= 3; c++ {
			v := parseCell(t, row[c])
			if v < 0 || v > 1 {
				t.Fatalf("recall out of range: %v", row)
			}
		}
	}
}

func TestTable5Ordering(t *testing.T) {
	r := quickLab.Table5()
	if len(r.Rows) != 4 {
		t.Fatalf("Table5 rows: %d", len(r.Rows))
	}
	c := parseCell(t, r.Rows[0][1])
	ec := parseCell(t, r.Rows[1][1])
	aec := parseCell(t, r.Rows[2][1])
	t.Logf("Table5 PR-AUC: C=%.3f E+C=%.3f A+E+C=%.3f RNN=%s", c, ec, aec, r.Rows[3][1])
	// The paper's ordering: C < E+C < A+E+C. Allow slack at quick scale
	// but the full-feature config must beat context-only clearly.
	if !(aec > c) {
		t.Errorf("A+E+C (%v) must beat C (%v)", aec, c)
	}
}

func TestFigure4Declines(t *testing.T) {
	r := quickLab.Figure4()
	if len(r.Rows) < 5 {
		t.Fatalf("Figure4 rows: %d", len(r.Rows))
	}
	first := parseCell(t, r.Rows[0][1])
	last := parseCell(t, r.Rows[len(r.Rows)-1][1])
	if !(last < first) {
		t.Errorf("training loss should decline: first %v, last %v", first, last)
	}
}

func TestFigure5LongTail(t *testing.T) {
	r := quickLab.Figure5()
	if len(r.Rows) != 10 {
		t.Fatalf("Figure5 rows: %d", len(r.Rows))
	}
	// Tail bins must be occupied far less than the head.
	head := parseCell(t, r.Rows[0][1]) + parseCell(t, r.Rows[1][1])
	tail := parseCell(t, r.Rows[8][1]) + parseCell(t, r.Rows[9][1])
	if !(head > tail) {
		t.Errorf("session counts should be long-tailed: head %v, tail %v", head, tail)
	}
}

func TestFigure6Monotone(t *testing.T) {
	r := quickLab.Figure6()
	if len(r.Rows) != 10 {
		t.Fatalf("Figure6 rows: %d", len(r.Rows))
	}
	// Precision at recall 0.1 must be ≥ precision at recall 1.0 for every
	// model (curves trend down).
	for c := 1; c <= 4; c++ {
		lo := r.Rows[0][c]
		hi := r.Rows[9][c]
		if lo == "-" || hi == "-" {
			continue
		}
		if parseCell(t, lo) < parseCell(t, hi)-1e-9 {
			t.Errorf("model %s: precision@0.1 (%s) < precision@1.0 (%s)", r.Header[c], lo, hi)
		}
	}
}

func TestFigure7AndOnlineRecall(t *testing.T) {
	r := quickLab.Figure7()
	if len(r.Rows) != 30 {
		t.Fatalf("Figure7 rows: %d", len(r.Rows))
	}
	rec := quickLab.OnlineRecall()
	if len(rec.Rows) != 3 {
		t.Fatalf("OnlineRecall rows: %d", len(rec.Rows))
	}
	rnnRecall := parseCell(t, rec.Rows[0][2])
	gbdtRecall := parseCell(t, rec.Rows[1][2])
	if rnnRecall < 0 || rnnRecall > 1 || gbdtRecall < 0 || gbdtRecall > 1 {
		t.Fatalf("recalls out of range: %v %v", rnnRecall, gbdtRecall)
	}
}

func TestServingCostShape(t *testing.T) {
	r := quickLab.ServingCost()
	row := findRow(r.Rows, "KV lookups / prediction")
	if row[1] != "1" || row[2] != "20" {
		t.Fatalf("lookup counts: %v", row)
	}
	ratioRow := findRow(r.Rows, "net serving reduction (GBDT/RNN)")
	ratio := parseCell(t, strings.TrimSuffix(ratioRow[1], "x"))
	if ratio < 3 {
		t.Fatalf("net serving reduction too small: %v", ratio)
	}
	mcr := findRow(r.Rows, "model compute ratio (RNN/GBDT)")
	if parseCell(t, strings.TrimSuffix(mcr[1], "x")) <= 1 {
		t.Fatalf("RNN model compute must exceed GBDT")
	}
}

func TestBatchingReport(t *testing.T) {
	r := quickLab.Batching()
	row := findRow(r.Rows, "step waste factor")
	waste := parseCell(t, strings.TrimSuffix(row[2], "x"))
	if waste <= 1 {
		t.Fatalf("padding must waste steps: %v", waste)
	}
}

func TestAblationReports(t *testing.T) {
	cells := quickLab.Cells()
	if len(cells.Rows) != 3 {
		t.Fatalf("Cells rows: %d", len(cells.Rows))
	}
	for _, row := range cells.Rows {
		v := parseCell(t, row[1])
		if v <= 0 || v > 1 {
			t.Fatalf("cell AUC out of range: %v", row)
		}
	}
	lc := quickLab.LatentCross()
	if len(lc.Rows) != 2 {
		t.Fatalf("LatentCross rows: %d", len(lc.Rows))
	}
	lw := quickLab.LossWindow()
	if len(lw.Rows) != 3 {
		t.Fatalf("LossWindow rows: %d", len(lw.Rows))
	}
}

func TestByIDAndIDsAgree(t *testing.T) {
	for _, id := range IDs() {
		if id == "hiddendim" {
			continue // slow (4 trainings); covered implicitly by driver map check below
		}
		_ = id
	}
	// Driver map must cover every ID.
	for _, id := range IDs() {
		switch id {
		case "hiddendim", "cells", "latentcross", "losswindow", "batching",
			"table5", "figure4", "figure7", "online-recall", "serving",
			"stacked", "universal", "retrain", "quantization", "loadtest",
			"cluster":
			// heavy drivers exercised in dedicated tests above
			continue
		}
		if r := quickLab.ByID(id); r == nil || r.ID != id {
			t.Fatalf("ByID(%q) failed", id)
		}
	}
	if quickLab.ByID("nonsense") != nil {
		t.Fatalf("unknown ID must return nil")
	}
}

func TestRenderAlignment(t *testing.T) {
	r := &Report{
		ID:     "x",
		Title:  "t",
		Header: []string{"A", "LONGCOL"},
		Rows:   [][]string{{"aaaa", "b"}, {"c", "dd"}},
		Notes:  []string{"n1"},
	}
	out := r.Render()
	if !strings.Contains(out, "== x — t ==") || !strings.Contains(out, "note: n1") {
		t.Fatalf("render missing parts:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("render line count: %d\n%s", len(lines), out)
	}
}

func TestEvalsAreValidProbabilities(t *testing.T) {
	set := quickLab.Models(DataMobileTab)
	for name, ev := range set.Evals {
		if len(ev.Scores) != len(ev.Labels) || len(ev.Scores) == 0 {
			t.Fatalf("%s: bad eval sizes", name)
		}
		for _, s := range ev.Scores {
			if s < 0 || s > 1 {
				t.Fatalf("%s: score %v out of [0,1]", name, s)
			}
		}
		if auc := metrics.PRAUC(ev.Scores, ev.Labels); auc <= 0 || auc > 1 {
			t.Fatalf("%s: AUC %v", name, auc)
		}
	}
}

func TestStackedReport(t *testing.T) {
	r := quickLab.Stacked()
	if len(r.Rows) != 2 {
		t.Fatalf("Stacked rows: %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		v := parseCell(t, row[1])
		if v <= 0 || v > 1 {
			t.Fatalf("stacked AUC out of range: %v", row)
		}
	}
}

func TestUniversalReport(t *testing.T) {
	r := quickLab.Universal()
	if len(r.Rows) != 2 {
		t.Fatalf("Universal rows: %d", len(r.Rows))
	}
	// The context-free model must beat the base rate in-distribution and
	// produce valid numbers zero-shot.
	inDist := parseCell(t, r.Rows[0][1])
	zeroShot := parseCell(t, r.Rows[1][1])
	if inDist <= 0.1 {
		t.Fatalf("in-distribution universal AUC too low: %v", inDist)
	}
	if zeroShot <= 0 || zeroShot > 1 {
		t.Fatalf("zero-shot AUC out of range: %v", zeroShot)
	}
}

func TestRetrainReport(t *testing.T) {
	r := quickLab.Retrain()
	if len(r.Rows) != 3 {
		t.Fatalf("Retrain rows: %d", len(r.Rows))
	}
	head := parseCell(t, r.Rows[1][1])
	full := parseCell(t, r.Rows[2][1])
	// Head-only retrain must recover a usable model (≥ 80% of a full
	// retrain's quality).
	if head < 0.8*full {
		t.Fatalf("head-only retrain too weak: %v vs full %v", head, full)
	}
}

func TestQuantizationReport(t *testing.T) {
	r := quickLab.Quantization()
	if len(r.Rows) != 2 {
		t.Fatalf("Quantization rows: %d", len(r.Rows))
	}
	f32 := parseCell(t, r.Rows[0][1])
	i8 := parseCell(t, r.Rows[1][1])
	// int8 round-trip must be nearly lossless (GRU hidden ∈ (−1,1)).
	if i8 < f32-0.02 {
		t.Fatalf("quantization cost too high: %v vs %v", i8, f32)
	}
	b32 := parseCell(t, r.Rows[0][2])
	b8 := parseCell(t, r.Rows[1][2])
	if b8 >= b32 {
		t.Fatalf("int8 must be smaller: %v vs %v", b8, b32)
	}
}

// TestLifecycleF32RecallDelta is the acceptance gate for the f32 compute
// tier: replayed through the fused float32 kernels, the precompute policy's
// recall shift vs the exact f64 store must stay inside the tolerance the
// int8 resident tier already established (the states are bounded-error,
// ≤2e-3 per dimension, where int8 loses up to 1/254 per dimension — a
// strictly larger perturbation).
func TestLifecycleF32RecallDelta(t *testing.T) {
	r := quickLab.Lifecycle()
	f32Row := findRow(r.Rows, "f32 tier")
	int8Row := findRow(r.Rows, "int8 tier")
	if f32Row == nil || int8Row == nil {
		t.Fatalf("lifecycle table missing tier rows: %v", r.Rows)
	}
	f32Delta := parseCell(t, f32Row[3])
	int8Delta := parseCell(t, int8Row[3])
	tol := math.Abs(int8Delta) + 0.02 // int8 tolerance plus quantisation-test slack
	if tol < 0.071 {
		tol = 0.071 // the int8 tier's full-scale delta from EXPERIMENTS.md
	}
	if math.Abs(f32Delta) > tol {
		t.Fatalf("f32 tier recall delta %+.3f outside int8-established tolerance %.3f", f32Delta, tol)
	}
	// No store-side side effects: the f32 tier neither evicts nor cold
	// starts more than the exact store does.
	if cold := parseCell(t, f32Row[4]); cold != parseCell(t, findRow(r.Rows, "exact")[4]) {
		t.Fatalf("f32 tier cold starts diverge from exact store: %v", f32Row)
	}
}
