package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/serving"
	"repro/internal/synth"
)

// The server benchmark suite is the tracked perf baseline of the online
// HTTP tier (BENCH_server.json): it starts a real server on a loopback
// listener per configuration, replays the deterministic cohort log through
// the load generator, and records throughput plus latency histograms. The
// headline comparison is micro-batched finalisation (max-batch > 1) vs the
// batch-size-1 server — the online analogue of PR 3's finaliser speedups,
// now with batches formed from traffic instead of replay lanes.

// ServerBenchResult is one (hidden-dim, batcher-configuration)
// measurement.
type ServerBenchResult struct {
	Config         string              `json:"config"`
	HiddenDim      int                 `json:"hidden_dim"`
	MaxBatch       int                 `json:"max_batch"`
	MaxWaitMs      float64             `json:"max_wait_ms"`
	Sessions       int                 `json:"sessions"`
	SessionsPerSec float64             `json:"sessions_per_sec"`
	MeanBatch      float64             `json:"mean_batch"`
	Shed           int                 `json:"shed"`
	Errors         int                 `json:"errors"`
	EventLatency   server.LatencyStats `json:"event_latency"`
	PredictLatency server.LatencyStats `json:"predict_latency"`
	// SpeedupVsBatch1 is relative to the batch-size-1 server at the same
	// hidden dim.
	SpeedupVsBatch1 float64 `json:"speedup_vs_batch1"`
	// Replicas > 0 marks a cluster row (that many replicas behind the
	// router); SpeedupVsSingle is then the router's throughput relative to
	// the single-replica server at the same hidden dim, batcher config and
	// transport (wire cluster rows compare against the wire single row).
	Replicas        int     `json:"replicas,omitempty"`
	SpeedupVsSingle float64 `json:"speedup_vs_single,omitempty"`
	// Wire marks a row driven over the binary wire protocol (events and
	// predicts; the control plane stays HTTP). The HTTP rows are retained
	// so the JSON tracks transport overhead directly.
	Wire bool `json:"wire,omitempty"`
}

// ServerBenchSuite is the JSON document written to BENCH_server.json.
type ServerBenchSuite struct {
	SchemaVersion int                 `json:"schema_version"`
	GeneratedAt   string              `json:"generated_at"`
	GoVersion     string              `json:"go_version"`
	GOOS          string              `json:"goos"`
	GOARCH        string              `json:"goarch"`
	GOMAXPROCS    int                 `json:"gomaxprocs"`
	Quick         bool                `json:"quick"`
	Users         int                 `json:"users"`
	Concurrency   int                 `json:"concurrency"`
	EventsPerPost int                 `json:"events_per_post"`
	Results       []ServerBenchResult `json:"results"`
}

// serverBenchConfig is one configuration of the suite. replicas > 0 runs
// the config as a cluster: that many in-process replicas behind a
// consistent-hash router, driven through the router's URL.
type serverBenchConfig struct {
	name     string
	d        int
	maxBatch int
	maxWait  time.Duration
	replicas int
	// wire drives the hot path over the binary protocol: a wire listener
	// per server, per-replica wire pools in the router, and the load
	// generator's -wire transport.
	wire bool
}

// RunServerBench measures online serving throughput and latency across
// micro-batcher configurations. Each configuration starts a fresh server
// (cold store) per repetition and keeps the best clean run — the
// min-of-short-windows estimator that survives the noisy shared box (see
// the 2-core benchmarking notes in EXPERIMENTS.md). Repetitions are
// interleaved rep-major (every config runs once, then again) so all
// configs sample the same noise windows: throttle episodes here last
// seconds-to-minutes, and config-major order would hand one config a
// quiet window and its comparator a loud one.
func RunServerBench(quick bool) *ServerBenchSuite {
	// Six interleaved repetitions: throttle windows on the shared box are
	// longer than one rep, so a config's best-of-6 reliably lands inside a
	// quiet window and the cross-config ratios stabilise.
	users, reps := 100, 6
	// Large posts amortise HTTP transport (expensive in sandboxed kernels)
	// so the measurement exercises the serving stack, not the socket.
	concurrency, eventsPerPost := 8, 256
	dims := []int{64, 128}
	if quick {
		users, reps = 50, 2
		dims = []int{64}
	}
	log := server.ReplayLog(users, 1)

	suite := &ServerBenchSuite{
		SchemaVersion: 1,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Quick:         quick,
		Users:         users,
		Concurrency:   concurrency,
		EventsPerPost: eventsPerPost,
	}

	var cfgs []serverBenchConfig
	for _, d := range dims {
		cfgs = append(cfgs, serverBenchConfig{"batch-1", d, 1, -1, 0, false})
		if !quick {
			cfgs = append(cfgs, serverBenchConfig{"batch-16-wait-2ms", d, 16, 2 * time.Millisecond, 0, false})
		}
		cfgs = append(cfgs, serverBenchConfig{"batch-32-wait-2ms", d, 32, 2 * time.Millisecond, 0, false})
		if !quick {
			cfgs = append(cfgs, serverBenchConfig{"batch-32-wait-8ms", d, 32, 8 * time.Millisecond, 0, false})
		}
		// The cluster row: the same batcher config behind a 3-replica
		// router, so the JSON tracks router-vs-single-replica throughput.
		// (On a 2-core box the replicas share the cores, so this measures
		// the router's forwarding overhead, not scale-out — the scale-out
		// claim needs real machines; the parity and handoff guarantees are
		// what CI pins.)
		cfgs = append(cfgs, serverBenchConfig{"router-3rep-batch-32", d, 32, 2 * time.Millisecond, 3, false})
		// The wire rows: the same batcher config with the hot path on the
		// binary protocol — single server, then the 3-replica router with
		// zero-copy splice fan-out. The perf gate compares wire-router-3rep
		// against wire-batch-32 (≥ 1.0x: splice fan-out must not cost
		// throughput vs one wire server on the same cores).
		cfgs = append(cfgs, serverBenchConfig{"wire-batch-32", d, 32, 2 * time.Millisecond, 0, true})
		cfgs = append(cfgs, serverBenchConfig{"wire-router-3rep-batch-32", d, 32, 2 * time.Millisecond, 3, true})
	}

	models := map[int]*core.Model{}
	for _, d := range dims {
		mcfg := core.DefaultConfig()
		mcfg.HiddenDim = d
		mcfg.MLPHidden = 64
		// Throughput does not depend on the weights, so an untrained model
		// keeps the suite train-free (like the parallel driver).
		models[d] = core.New(synth.MobileTabSchema(), mcfg)
	}

	best := make([]*server.LoadReport, len(cfgs))
	bestStats := make([]*server.Statz, len(cfgs))
	for rep := 0; rep < reps; rep++ {
		for i, c := range cfgs {
			r, st, err := runServerOnce(models[c.d], c, concurrency, eventsPerPost, log)
			if err != nil {
				panic(fmt.Sprintf("server bench %s d=%d: %v", c.name, c.d, err))
			}
			if betterRun(r, best[i]) {
				best[i], bestStats[i] = r, st
			}
		}
	}

	batch1 := map[int]float64{}       // hidden dim -> batch-1 sessions/s
	single32 := map[int]float64{}     // hidden dim -> single-replica HTTP batch-32 sessions/s
	wireSingle32 := map[int]float64{} // hidden dim -> single-replica wire batch-32 sessions/s
	for i, c := range cfgs {
		// The negative greedy-flush sentinel serialises as 0 (no wait).
		waitMs := float64(c.maxWait.Nanoseconds()) / 1e6
		if waitMs < 0 {
			waitMs = 0
		}
		res := ServerBenchResult{
			Config:         c.name,
			HiddenDim:      c.d,
			MaxBatch:       c.maxBatch,
			MaxWaitMs:      waitMs,
			Sessions:       best[i].Sessions,
			SessionsPerSec: best[i].SessionsPerSec,
			MeanBatch:      bestStats[i].MeanBatch,
			Shed:           best[i].Shed,
			Errors:         best[i].Errors,
			EventLatency:   best[i].EventLatency,
			PredictLatency: best[i].PredictLatency,
			Replicas:       c.replicas,
			Wire:           c.wire,
		}
		if c.replicas == 0 && c.maxBatch == 1 {
			batch1[c.d] = best[i].SessionsPerSec
		}
		if c.replicas == 0 && c.maxBatch == 32 && c.maxWait == 2*time.Millisecond {
			if c.wire {
				wireSingle32[c.d] = best[i].SessionsPerSec
			} else {
				single32[c.d] = best[i].SessionsPerSec
			}
		}
		if base := batch1[c.d]; base > 0 {
			res.SpeedupVsBatch1 = best[i].SessionsPerSec / base
		}
		if c.replicas > 0 {
			// Cluster rows compare against the single server on the same
			// transport: the wire gate is wire-router-3rep ≥ 1.0x the wire
			// single at the same dim.
			base := single32[c.d]
			if c.wire {
				base = wireSingle32[c.d]
			}
			if base > 0 {
				res.SpeedupVsSingle = best[i].SessionsPerSec / base
			}
		}
		suite.Results = append(suite.Results, res)
	}
	return suite
}

// betterRun ranks repetitions: a clean run (no shed, no errors) always
// beats a dirty one — a shedding run finishes its wall-clock window early
// and would otherwise post inflated sessions/s — and among equals the
// higher throughput wins (the min-of-windows noise filter).
func betterRun(r, cur *server.LoadReport) bool {
	if cur == nil {
		return true
	}
	rClean := r.Shed == 0 && r.PredictsShed == 0 && r.Errors == 0
	curClean := cur.Shed == 0 && cur.PredictsShed == 0 && cur.Errors == 0
	if rClean != curClean {
		return rClean
	}
	return r.SessionsPerSec > cur.SessionsPerSec
}

// runServerOnce starts a fresh server (or cluster) on loopback listeners,
// replays the log through the load generator, and tears everything down.
func runServerOnce(m *core.Model, c serverBenchConfig, concurrency, eventsPerPost int, log []server.ReplayEvent) (*server.LoadReport, *server.Statz, error) {
	if c.replicas > 0 {
		return runClusterOnce(m, c, concurrency, eventsPerPost, log)
	}
	srv := server.New(server.Options{
		Model:     m,
		Store:     serving.NewShardedKVStore(16),
		Threshold: 0.5,
		Lanes:     2,
		MaxBatch:  c.maxBatch,
		MaxWait:   c.maxWait,
		// Big posts dispatch dues in ~100-session bursts; a deeper lane
		// bound keeps the bench shed-free so configs stay comparable.
		LaneDepth: 1024,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()
	var wireAddr string
	if c.wire {
		wl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		go srv.ServeWire(wl)
		wireAddr = wl.Addr().String()
	}
	if err := server.WaitHealthy(base, 10*time.Second); err != nil {
		return nil, nil, err
	}
	rep, err := server.RunLoad(server.LoadOptions{
		BaseURL:       base,
		WireAddr:      wireAddr,
		Concurrency:   concurrency,
		EventsPerPost: eventsPerPost,
		PredictEvery:  16,
		// A gentle sampling rate: each predict is a full HTTP round trip
		// (~3ms of CPU in this sandbox), and the sampler must measure
		// latency, not become the load.
		PredictInterval: 40 * time.Millisecond,
		Flush:           true,
	}, log)
	if err != nil {
		return nil, nil, err
	}
	st, err := server.FetchStatz(base, nil)
	if err != nil {
		return nil, nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, nil, err
	}
	<-serveDone
	return rep, st, nil
}

// runClusterOnce starts c.replicas fresh servers behind a consistent-hash
// router and replays the log through the router. The aggregate /statz the
// router serves decodes as a single-replica Statz, so the caller's
// accounting is config-agnostic.
func runClusterOnce(m *core.Model, c serverBenchConfig, concurrency, eventsPerPost int, log []server.ReplayEvent) (*server.LoadReport, *server.Statz, error) {
	type member struct {
		srv *server.Server
		l   net.Listener
	}
	members := make([]member, 0, c.replicas)
	urls := make([]string, 0, c.replicas)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, mem := range members {
			mem.srv.Shutdown(ctx)
		}
	}()
	wireAddrs := map[string]string{}
	for i := 0; i < c.replicas; i++ {
		srv := server.New(server.Options{
			Model:     m,
			Store:     serving.NewShardedKVStore(16),
			Threshold: 0.5,
			Lanes:     2,
			MaxBatch:  c.maxBatch,
			MaxWait:   c.maxWait,
			LaneDepth: 1024,
		})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		go srv.Serve(l)
		members = append(members, member{srv, l})
		url := "http://" + l.Addr().String()
		urls = append(urls, url)
		if c.wire {
			wl, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, nil, err
			}
			go srv.ServeWire(wl)
			wireAddrs[url] = wl.Addr().String()
		}
	}
	router, err := cluster.New(cluster.Options{Replicas: urls, WireAddrs: wireAddrs})
	if err != nil {
		return nil, nil, err
	}
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	rsrv := &http.Server{Handler: router}
	serveDone := make(chan error, 1)
	go func() { serveDone <- rsrv.Serve(rl) }()
	base := "http://" + rl.Addr().String()
	var routerWire string
	if c.wire {
		wl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		go router.ServeWire(wl)
		defer router.CloseWire()
		routerWire = wl.Addr().String()
	}
	if err := server.WaitHealthy(base, 10*time.Second); err != nil {
		return nil, nil, err
	}
	rep, err := server.RunLoad(server.LoadOptions{
		BaseURL:         base,
		WireAddr:        routerWire,
		Concurrency:     concurrency,
		EventsPerPost:   eventsPerPost,
		PredictEvery:    16,
		PredictInterval: 40 * time.Millisecond,
		Flush:           true,
	}, log)
	if err != nil {
		return nil, nil, err
	}
	st, err := server.FetchStatz(base, nil)
	if err != nil {
		return nil, nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rsrv.Shutdown(ctx); err != nil {
		return nil, nil, err
	}
	<-serveDone
	return rep, st, nil
}

// WriteJSON writes the suite to path (pretty-printed, trailing newline).
func (s *ServerBenchSuite) WriteJSON(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// tableHeader/tableRows are the one rendering of the suite, shared by the
// tracked-bench table and the loadtest experiment so the two cannot
// drift.
func (s *ServerBenchSuite) tableHeader() []string {
	return []string{"D", "CONFIG", "SESSIONS/S", "MEAN BATCH", "EVENT P50/P99 MS", "PREDICT P50/P99 MS", "SPEEDUP", "VS SINGLE"}
}

func (s *ServerBenchSuite) tableRows() [][]string {
	var rows [][]string
	for _, b := range s.Results {
		vsSingle := "-"
		if b.SpeedupVsSingle > 0 {
			vsSingle = fmt.Sprintf("%.2fx", b.SpeedupVsSingle)
		}
		rows = append(rows, []string{
			fint(b.HiddenDim), b.Config,
			fmt.Sprintf("%.0f", b.SessionsPerSec),
			fmt.Sprintf("%.1f", b.MeanBatch),
			fmt.Sprintf("%.2f/%.2f", b.EventLatency.P50Ms, b.EventLatency.P99Ms),
			fmt.Sprintf("%.2f/%.2f", b.PredictLatency.P50Ms, b.PredictLatency.P99Ms),
			fmt.Sprintf("%.2fx", b.SpeedupVsBatch1),
			vsSingle,
		})
	}
	return rows
}

// Render formats the suite as the standard report table for stdout.
func (s *ServerBenchSuite) Render() string {
	r := &Report{
		ID:     "bench-server",
		Title:  "Online HTTP serving benchmark (micro-batched finalisation vs batch-1 server)",
		Header: s.tableHeader(),
		Rows:   s.tableRows(),
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"closed loop: %d connections, %d events/post, %d users' replay log; go %s %s/%s GOMAXPROCS=%d quick=%v",
		s.Concurrency, s.EventsPerPost, s.Users, s.GoVersion, s.GOOS, s.GOARCH, s.GOMAXPROCS, s.Quick))
	return r.Render()
}

// Loadtest is the experiment-driver wrapper: it runs the quick shape of
// the server bench (the tracked full-mode JSON comes from
// `ppbench -bench server`) and renders the table.
func (l *Lab) Loadtest() *Report {
	suite := RunServerBench(true)
	r := &Report{
		ID:     "loadtest",
		Title:  "Online HTTP serving load test (quick shape; full numbers in BENCH_server.json)",
		Header: suite.tableHeader(),
		Rows:   suite.tableRows(),
	}
	r.Notes = append(r.Notes,
		"micro-batched finalisation vs batch-size-1 server over real HTTP traffic; states stay byte-identical to sequential replay (parity gate)")
	return r
}
