package experiments

import (
	"fmt"
	"math"

	"repro/internal/metrics"
)

// Figure1 reproduces the CDF of per-user access rates. The paper's key
// observations: 36% (MobileTab) and 42% (Timeshift) of users have no
// accesses at all; MPU users almost all have some.
func (l *Lab) Figure1() *Report {
	r := &Report{
		ID:     "figure1",
		Title:  "CDF of access rates across users",
		Header: []string{"ACCESS RATE ≤", "MobileTab", "Timeshift", "MPU"},
	}
	grid := []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0}
	cdfAt := func(rates []float64, x float64) float64 {
		n := 0
		for _, v := range rates {
			if v <= x {
				n++
			}
		}
		if len(rates) == 0 {
			return 0
		}
		return float64(n) / float64(len(rates))
	}
	var all [][]float64
	for _, name := range DatasetOrder {
		all = append(all, l.Dataset(name).AccessRates())
	}
	for _, x := range grid {
		row := []string{fmt.Sprintf("%.2f", x)}
		for _, rates := range all {
			row = append(row, f3(cdfAt(rates, x)))
		}
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("zero-access user fraction: MobileTab %s (paper 36%%), Timeshift %s (paper 42%%)",
			f1pc(cdfAt(all[0], 0)), f1pc(cdfAt(all[1], 0))))
	return r
}

// Figure4 reproduces the MPU training-loss curve: log loss vs labelled
// examples processed across epochs.
func (l *Lab) Figure4() *Report {
	set := l.Models(DataMPU)
	r := &Report{
		ID:     "figure4",
		Title:  fmt.Sprintf("Training log loss vs examples processed (MPU, %d epochs)", l.Scale.MPUEpochs),
		Header: []string{"EXAMPLES", "LOG LOSS (smoothed)"},
	}
	curve := set.RNNCurve
	if len(curve) == 0 {
		r.Notes = append(r.Notes, "no curve recorded")
		return r
	}
	// Smooth over a window and downsample to ≈20 rows.
	const rows = 20
	step := (len(curve) + rows - 1) / rows
	for i := 0; i < len(curve); i += step {
		end := i + step
		if end > len(curve) {
			end = len(curve)
		}
		var sum float64
		for _, p := range curve[i:end] {
			sum += p.Loss
		}
		r.Rows = append(r.Rows, []string{
			fint(curve[end-1].ExamplesProcessed),
			fmt.Sprintf("%.4f", sum/float64(end-i)),
		})
	}
	first, last := curve[0].Loss, r.Rows[len(r.Rows)-1][1]
	r.Notes = append(r.Notes, fmt.Sprintf("loss declines from %.4f to %s; the paper's curve falls from ≈0.65 and flattens by the final epochs", first, last))
	return r
}

// Figure5 reproduces the MPU session-count distribution (long tail,
// capped at 20,000 in the paper).
func (l *Lab) Figure5() *Report {
	d := l.Dataset(DataMPU)
	counts := make([]float64, len(d.Users))
	maxC := 0.0
	for i, u := range d.Users {
		counts[i] = float64(len(u.Sessions))
		if counts[i] > maxC {
			maxC = counts[i]
		}
	}
	r := &Report{
		ID:     "figure5",
		Title:  "Distribution of MPU session counts",
		Header: []string{"SESSIONS", "USERS", ""},
	}
	bins := 10
	hist := metrics.Histogram(counts, bins, 0, maxC+1)
	maxCount := 0
	for _, b := range hist {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	for _, b := range hist {
		bar := ""
		if maxCount > 0 {
			n := b.Count * 30 / maxCount
			for i := 0; i < n; i++ {
				bar += "#"
			}
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.0f-%.0f", b.Lo, b.Hi), fint(b.Count), bar,
		})
	}
	mean := metrics.Mean(counts)
	r.Notes = append(r.Notes, fmt.Sprintf("mean %.0f sessions/user, max %.0f — long-tailed as in the paper (mean ≈8,000 at full scale)", mean, maxC))
	return r
}

// Figure6 reproduces the MobileTab precision-recall curves for all four
// models, sampled on a recall grid.
func (l *Lab) Figure6() *Report {
	set := l.Models(DataMobileTab)
	r := &Report{
		ID:     "figure6",
		Title:  "Precision-recall curves for MobileTab",
		Header: append([]string{"RECALL"}, ModelOrder...),
	}
	grid := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	curves := map[string][]metrics.PRPoint{}
	for _, m := range ModelOrder {
		ev := set.Evals[m]
		curves[m] = metrics.PRCurve(ev.Scores, ev.Labels)
	}
	precAt := func(curve []metrics.PRPoint, recall float64) float64 {
		// Highest precision among operating points with recall ≥ target.
		best := math.NaN()
		for _, p := range curve {
			if p.Recall >= recall {
				if math.IsNaN(best) || p.Precision > best {
					best = p.Precision
				}
			}
		}
		return best
	}
	for _, rec := range grid {
		row := []string{fmt.Sprintf("%.1f", rec)}
		for _, m := range ModelOrder {
			p := precAt(curves[m], rec)
			if math.IsNaN(p) {
				row = append(row, "-")
			} else {
				row = append(row, f3(p))
			}
		}
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes, "cell = best precision achievable at that recall; the paper's Figure 6 shows RNN dominating across the curve")
	return r
}
