package statestore

import (
	"encoding/binary"
	"math"

	"repro/internal/serving"
)

// Codec selects the resident (and persisted) representation of hidden
// states. The serving tier always speaks the wire format of
// serving.EncodeHidden — an 8-byte little-endian timestamp followed by
// 4 bytes per dimension of float32 — so the store transcodes at the Put/Get
// boundary and the processors and prediction service run unchanged.
type Codec int

const (
	// CodecFloat32 keeps values verbatim (4 bytes/dim + timestamp).
	CodecFloat32 Codec = iota
	// CodecInt8 holds warm states at 1 byte/dim using the §9 fixed-scale
	// int8 quantization (GRU hidden values live in (−1,1), so the code
	// loses at most 1/254 per dimension). This is the paper's own
	// suggestion for shrinking the per-user state 4×.
	CodecInt8
	// CodecF32 is the f32 compute tier's codec: values that parse as
	// hidden-state records are tagged tagF32 and stored payload-verbatim,
	// so the resident representation is exactly the float32 panel the f32
	// serving tier computes in — Get is tag-strip + copy, no per-dimension
	// transcode in either direction. Bytes that do not parse as hidden
	// records fall back to tagRaw, like every codec.
	CodecF32
)

func (c Codec) String() string {
	switch c {
	case CodecInt8:
		return "int8"
	case CodecF32:
		return "f32"
	default:
		return "float32"
	}
}

// ParseCodec maps the String() names (as accepted by the -quant and
// -precision serving flags) back to a Codec.
func ParseCodec(s string) (Codec, bool) {
	switch s {
	case "float32", "":
		return CodecFloat32, true
	case "int8":
		return CodecInt8, true
	case "f32":
		return CodecF32, true
	}
	return CodecFloat32, false
}

// Stored values are self-describing: a one-byte tag precedes the payload,
// so a store reopened with a different codec option still decodes every
// recovered entry by the entry's own tag.
const (
	tagRaw  byte = 0 // payload is the wire format verbatim
	tagInt8 byte = 1 // payload is [8B ts][1B/dim int8]
	tagF32  byte = 2 // payload is a well-formed hidden record, [8B ts][4B/dim f32]
)

// encodeStored transcodes a wire-format value into the tagged resident
// representation, appending to dst[:0]. Values that do not parse as
// hidden-state records (too short, or a vector length that is not a
// multiple of 4) are kept raw regardless of codec, so the store never
// destroys bytes it does not understand.
func encodeStored(dst []byte, c Codec, wire []byte) []byte {
	if c == CodecInt8 && len(wire) >= 8 && (len(wire)-8)%4 == 0 {
		n := (len(wire) - 8) / 4
		need := 1 + 8 + n
		if cap(dst) < need {
			dst = make([]byte, 0, need)
		}
		dst = dst[:need]
		dst[0] = tagInt8
		copy(dst[1:9], wire[:8])
		for i := 0; i < n; i++ {
			v := float64(math.Float32frombits(binary.LittleEndian.Uint32(wire[8+4*i:])))
			dst[9+i] = byte(serving.QuantizeSample(v))
		}
		return dst
	}
	tag := tagRaw
	if c == CodecF32 && len(wire) >= 8 && (len(wire)-8)%4 == 0 {
		// Same bytes as tagRaw, but the tag asserts "well-formed f32 hidden
		// record": replicas, transfers, and debugging tools can trust the
		// payload's shape without re-parsing, and the statestore's resident
		// width provably matches the f32 compute tier's.
		tag = tagF32
	}
	need := 1 + len(wire)
	if cap(dst) < need {
		dst = make([]byte, 0, need)
	}
	dst = dst[:need]
	dst[0] = tag
	copy(dst[1:], wire)
	return dst
}

// decodeWire reverses encodeStored into a freshly allocated wire-format
// value (Get must hand out caller-owned slices).
func decodeWire(stored []byte) []byte {
	if len(stored) == 0 {
		return nil
	}
	payload := stored[1:]
	if stored[0] != tagInt8 {
		out := make([]byte, len(payload))
		copy(out, payload)
		return out
	}
	if len(payload) < 8 {
		out := make([]byte, len(payload))
		copy(out, payload)
		return out
	}
	n := len(payload) - 8
	out := make([]byte, 8+4*n)
	copy(out[:8], payload[:8])
	for i := 0; i < n; i++ {
		v := serving.DequantizeSample(int8(payload[8+i]))
		binary.LittleEndian.PutUint32(out[8+4*i:], math.Float32bits(float32(v)))
	}
	return out
}

// storedTS extracts the record timestamp from a tagged value (both codecs
// keep it in the first 8 payload bytes). Returns 0 for malformed values.
func storedTS(stored []byte) int64 {
	if len(stored) < 9 {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(stored[1:9]))
}
