package statestore

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if any test leaks a goroutine: every store a
// test opens must be fully quiesced by Close — including tail subscribers
// parked on a wake channel and the churn/crash tests' worker pools.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
