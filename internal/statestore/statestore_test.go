package statestore

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"repro/internal/serving"
	"repro/internal/tensor"
)

// wireState builds a wire-format hidden state with deterministic contents.
func wireState(dim int, seed uint64, ts int64) []byte {
	rng := tensor.NewRNG(seed)
	h := tensor.NewVector(dim)
	rng.FillUniform(h, -1, 1)
	return serving.EncodeHidden(h, ts)
}

func TestVolatileRoundTrip(t *testing.T) {
	for _, codec := range []Codec{CodecFloat32, CodecInt8} {
		t.Run(codec.String(), func(t *testing.T) {
			s, err := Open(Options{Codec: codec})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			wire := wireState(16, 1, 5000)
			s.Put("h:1", wire)
			got, ok := s.Get("h:1")
			if !ok {
				t.Fatal("missing key")
			}
			if codec == CodecFloat32 {
				if !bytes.Equal(got, wire) {
					t.Fatalf("float32 store must be lossless")
				}
			} else {
				// The int8 tier must round-trip exactly like the serving
				// quantized codec: decode, quantize in float64, re-encode.
				h, ts, ok := serving.DecodeHidden(wire)
				if !ok {
					t.Fatal("bad wire value")
				}
				want := serving.EncodeHidden(serving.QuantizeRoundTrip(h), ts)
				if !bytes.Equal(got, want) {
					t.Fatalf("int8 tier disagrees with serving quantized codec")
				}
				st := s.Stats()
				if st.BytesStored >= int64(len(wire)) {
					t.Fatalf("int8 tier should shrink residency: %d vs wire %d", st.BytesStored, len(wire))
				}
			}
			if _, ok := s.Get("h:nope"); ok {
				t.Fatal("phantom key")
			}
			st := s.Stats()
			if st.Keys != 1 || st.Gets != 2 || st.Misses != 1 || st.Puts != 1 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

func TestStoreInterfaceSurface(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var iface serving.Store = s
	iface.Put("a", []byte{1, 2, 3})
	iface.Put("b", []byte{4})
	iface.Delete("a")
	iface.Delete("a") // idempotent
	keys := iface.Keys()
	if len(keys) != 1 || keys[0] != "b" {
		t.Fatalf("keys: %v", keys)
	}
	if got := iface.Stats().BytesStored; got != int64(1+1+1) { // "b" + tag + payload
		t.Fatalf("BytesStored = %d", got)
	}
}

func TestPutDoesNotRetainBuffer(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	wire := wireState(8, 2, 100)
	orig := append([]byte(nil), wire...)
	s.Put("h:1", wire)
	for i := range wire {
		wire[i] = 0xFF // caller reuses its encode buffer
	}
	got, _ := s.Get("h:1")
	if !bytes.Equal(got, orig) {
		t.Fatal("store retained the caller's buffer")
	}
}

func TestIdleEviction(t *testing.T) {
	s, err := Open(Options{EvictAfter: 100, SweepEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put("h:old", wireState(8, 1, 1000))
	s.Put("h:warm", wireState(8, 2, 1950))
	// Advance the virtual clock past the horizon for h:old and force a
	// sweep via Put volume (SweepEvery=4).
	for i := 0; i < 6; i++ {
		s.Put(fmt.Sprintf("h:new%d", i), wireState(8, 3, 2000))
	}
	if _, ok := s.Get("h:old"); ok {
		t.Fatal("idle state must be evicted (lastTS 1000 << vnow 2000 - 100)")
	}
	if _, ok := s.Get("h:warm"); !ok {
		t.Fatal("warm state must survive")
	}
	if ev := s.Lifecycle().IdleEvictions; ev != 1 {
		t.Fatalf("IdleEvictions = %d", ev)
	}
}

func TestEvictIdleExplicit(t *testing.T) {
	s, err := Open(Options{EvictAfter: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("h:%d", i), wireState(4, uint64(i), int64(100+i)))
	}
	// now=200: horizon 150, every state (ts 100..109) goes.
	if n := s.EvictIdle(200); n != 10 {
		t.Fatalf("evicted %d, want 10", n)
	}
	if st := s.Stats(); st.Keys != 0 || st.BytesStored != 0 {
		t.Fatalf("stats after full eviction: %+v", st)
	}
}

func TestBudgetSweepHoldsCeiling(t *testing.T) {
	const budget = 4 << 10
	s, err := Open(Options{MemBudget: budget, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 2000; i++ {
		s.Put(fmt.Sprintf("h:%d", i), wireState(16, uint64(i), int64(i)))
		if got := s.Stats().BytesStored; got > budget {
			t.Fatalf("put %d: BytesStored %d exceeds budget %d", i, got, budget)
		}
	}
	st := s.Stats()
	if st.Keys == 0 {
		t.Fatal("budget sweep evicted everything")
	}
	if s.Lifecycle().BudgetEvictions == 0 {
		t.Fatal("no budget evictions recorded")
	}
	// Recently referenced entries get a second chance: the newest key was
	// just written and must still be resident.
	if _, ok := s.Get("h:1999"); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestRecoveryRoundTripByteIdentical(t *testing.T) {
	dir := t.TempDir()
	// SnapshotEvery small enough that the run crosses several snapshot +
	// truncation cycles, so recovery exercises snapshot+tail, not just WAL.
	s, err := Open(Options{Dir: dir, SnapshotEvery: 32})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("h:%d", i%40) // overwrites exercise idempotent replay
		v := wireState(12, uint64(i), int64(1000+i))
		s.Put(k, v)
		want[k] = append([]byte(nil), v...)
	}
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("h:%d", i)
		s.Delete(k)
		delete(want, k)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ls := r.Lifecycle()
	if ls.ReplayedRecords == 0 {
		t.Fatalf("recovery replayed nothing: %+v", ls)
	}
	if ls.RecoveredKeys != len(want) {
		t.Fatalf("recovered %d keys, want %d", ls.RecoveredKeys, len(want))
	}
	keys := r.Keys()
	sort.Strings(keys)
	if len(keys) != len(want) {
		t.Fatalf("keys: %v", keys)
	}
	for k, v := range want {
		got, ok := r.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("key %s not byte-identical after recovery", k)
		}
	}
	// The deleted keys must stay deleted (the WAL logs deletions).
	for i := 0; i < 10; i++ {
		if _, ok := r.Get(fmt.Sprintf("h:%d", i)); ok {
			t.Fatalf("deleted key h:%d resurrected by recovery", i)
		}
	}
	// Incremental BytesStored must agree with a from-scratch recount.
	var recount int64
	for _, k := range keys {
		v, _ := r.Get(k)
		recount += int64(len(k) + 1 + len(v)) // tag byte + raw payload
	}
	if got := r.Stats().BytesStored; got != recount {
		t.Fatalf("BytesStored %d != recount %d", got, recount)
	}
}

func TestReopenWithDifferentCodec(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Codec: CodecFloat32})
	if err != nil {
		t.Fatal(err)
	}
	wire := wireState(8, 7, 123)
	s.Put("h:1", wire)
	s.Close()

	// Tagged values are self-describing: an int8 reopen still serves the
	// float32 entry losslessly, and new puts use the new tier.
	r, err := Open(Options{Dir: dir, Codec: CodecInt8})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, ok := r.Get("h:1")
	if !ok || !bytes.Equal(got, wire) {
		t.Fatal("pre-existing float32 entry must decode verbatim")
	}
	r.Put("h:2", wire)
	st := r.Stats()
	if st.Keys != 2 {
		t.Fatalf("keys: %d", st.Keys)
	}
}

func TestStatsIsIncremental(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put("k", []byte{1, 2}) // 1 + tag + 2
	if got := s.Stats().BytesStored; got != 4 {
		t.Fatalf("BytesStored = %d, want 4", got)
	}
	s.Put("k", []byte{1, 2, 3, 4}) // overwrite
	if got := s.Stats().BytesStored; got != 6 {
		t.Fatalf("BytesStored = %d, want 6", got)
	}
	s.Delete("k")
	if got := s.Stats().BytesStored; got != 0 {
		t.Fatalf("BytesStored = %d, want 0", got)
	}
}
