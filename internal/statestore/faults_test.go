package statestore

import (
	"bytes"
	"errors"
	"fmt"
	"syscall"
	"testing"

	"repro/internal/faults"
)

// WAL write-error coverage: an injected ENOSPC or short write at Put or
// Snapshot must (1) surface through Store.Err — never silent loss — and
// (2) leave the directory reopenable with every record appended before
// the failure intact.

func faultPut(s *Store, i int) { s.Put(fmt.Sprintf("user/%d/h", i), []byte{byte(i), 0x10, 0x20}) }

func checkRecovered(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		got, ok := s.Get(fmt.Sprintf("user/%d/h", i))
		if !ok {
			t.Fatalf("key %d lost after reopen", i)
		}
		if want := []byte{byte(i), 0x10, 0x20}; !bytes.Equal(got, want) {
			t.Fatalf("key %d corrupted: got % x want % x", i, got, want)
		}
	}
}

func TestPutWALWriteErrorSurfacesAndReopens(t *testing.T) {
	defer faults.Disarm()
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		faultPut(s, i)
	}
	if err := faults.Arm(&faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Point: "statestore.wal.write", Match: dir, Action: faults.ActError, Err: "enospc"},
	}}); err != nil {
		t.Fatal(err)
	}
	faultPut(s, 10)
	if serr := s.Err(); !errors.Is(serr, syscall.ENOSPC) || !errors.Is(serr, faults.ErrInjected) {
		t.Fatalf("ENOSPC not surfaced: %v", serr)
	}
	faults.Disarm()
	// The log is frozen at its last good prefix: later puts stay
	// memory-only (the error is already reported) rather than appending
	// after a potentially torn frame.
	faultPut(s, 11)
	if cerr := s.Close(); !errors.Is(cerr, syscall.ENOSPC) {
		t.Fatalf("Close did not return the first I/O error: %v", cerr)
	}

	r, err := Open(Options{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatalf("reopen after injected ENOSPC: %v", err)
	}
	defer r.Close()
	checkRecovered(t, r, 10)
	// The failing put and everything after it never reached disk — that
	// is the reported (not silent) loss window.
	if _, ok := r.Get("user/10/h"); ok {
		t.Fatal("the failed append reached disk")
	}
	if r.Err() != nil {
		t.Fatalf("reopened store starts dirty: %v", r.Err())
	}
}

func TestPutWALShortWriteTornTailRecovers(t *testing.T) {
	defer faults.Disarm()
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		faultPut(s, i)
	}
	// One short write: 7 bytes of the frame land, then io.ErrShortWrite.
	if err := faults.Arm(&faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Point: "statestore.wal.write", Match: dir, Action: faults.ActShortWrite, Short: 7, Count: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	faultPut(s, 10)
	if s.Err() == nil {
		t.Fatal("short write not surfaced")
	}
	faults.Disarm()
	s.Close() //pplint:allow walerrcheck (the injected error was already asserted above)

	r, err := Open(Options{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer r.Close()
	checkRecovered(t, r, 10)
	if _, ok := r.Get("user/10/h"); ok {
		t.Fatal("torn frame replayed as a record")
	}
	if r.Lifecycle().TornTailBytes == 0 {
		t.Fatal("recovery did not report the truncated torn tail")
	}
}

func TestSnapshotWriteErrorKeepsEveryRecord(t *testing.T) {
	defer faults.Disarm()
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		faultPut(s, i)
	}
	if err := faults.Arm(&faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Point: "statestore.snap.write", Match: dir, Action: faults.ActError, Err: "enospc", Count: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if serr := s.Snapshot(); !errors.Is(serr, syscall.ENOSPC) {
		t.Fatalf("snapshot error not surfaced: %v", serr)
	}
	faults.Disarm()
	// The WAL rotated before the failed scan: wal.old.log still holds
	// every record, and puts keep landing on the fresh log.
	for i := 20; i < 25; i++ {
		faultPut(s, i)
	}
	s.Close() //pplint:allow walerrcheck (the injected error was already asserted above)

	r, err := Open(Options{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatalf("reopen after failed snapshot: %v", err)
	}
	defer r.Close()
	checkRecovered(t, r, 25)
	if r.Err() != nil {
		t.Fatalf("reopened store starts dirty: %v", r.Err())
	}
	// Compaction works again once space is back.
	if err := r.Snapshot(); err != nil {
		t.Fatalf("snapshot after recovery: %v", err)
	}
}
