package statestore

import (
	"errors"
	"sync"
)

// Tail subscription seam: every committed mutation — puts, deletes, and
// snapshot markers — is also appended, under the owning shard's lock, to a
// bounded in-memory ring of sequence-numbered records. Replication tails
// this ring (internal/replication), never the WAL file itself: sequence
// numbers are stable across rotation, records alias the store's immutable
// stored bytes (zero copies on the hot path), and readers take only the
// tail's own leaf mutex — never a shard lock, and never across I/O.
//
// Sequence numbers start after the recovery replay: a store that reopened
// with N replayed records hands out seq N+1 first, so any subscriber
// holding a pre-restart position falls below the buffer's floor and is
// told to re-bootstrap (ErrTailTruncated) rather than silently missing
// the recovered state.

// Record kinds surfaced by TailFrom. RecPut/RecDelete/RecClock reuse the
// WAL's own op bytes; RecSnapshot exists only in the tail stream (the WAL
// encodes compaction as file rotation, not as a record) and tells a
// follower the primary just compacted — its Val is the 8-byte
// little-endian virtual clock the snapshot persisted.
const (
	RecPut      = opPut
	RecDelete   = opDelete
	RecClock    = opClock
	RecSnapshot = opSnapshot
)

const opSnapshot byte = 4

// defaultTailBuffer bounds the ring when Options.TailBuffer is unset.
const defaultTailBuffer = 8192

// ErrTailTruncated reports that the requested sequence number is no longer
// (or not yet) buffered; the subscriber must bootstrap from a full state
// export and then tail from the position the bootstrap names.
var ErrTailTruncated = errors.New("statestore: tail position truncated; bootstrap required")

// WALRecord is one committed mutation in tail order. Val aliases the
// store's immutable stored representation for puts (callers may retain but
// must never mutate it), is nil for deletes, and holds the 8-byte virtual
// clock for RecClock/RecSnapshot.
type WALRecord struct {
	Seq int64
	Op  byte
	Key string
	Val []byte
}

// tailBuf is the ring. Its mutex is a leaf: tailAppend runs under a shard
// lock (and, for durable stores, adjacent to walMu), so the tail must
// never take any other store lock.
type tailBuf struct {
	mu    sync.Mutex
	buf   []WALRecord
	first int64 // oldest buffered seq
	next  int64 // next seq to assign
	wake  chan struct{}
}

func (s *Store) tailInit(bufSize int, replayed int64) {
	if bufSize <= 0 {
		bufSize = defaultTailBuffer
	}
	s.tail.buf = make([]WALRecord, bufSize)
	s.tail.first = replayed + 1
	s.tail.next = replayed + 1
	s.tailSeq.Store(replayed)
}

// tailAppend assigns the next sequence number to one committed record and
// returns it. Callers mutating the map hold the owning shard lock, which
// is what keeps per-key tail order identical to map (and WAL) order.
func (s *Store) tailAppend(op byte, key string, val []byte) int64 {
	t := &s.tail
	t.mu.Lock()
	seq := t.next
	t.next++
	t.buf[seq%int64(len(t.buf))] = WALRecord{Seq: seq, Op: op, Key: key, Val: val}
	if t.next-t.first > int64(len(t.buf)) {
		t.first = t.next - int64(len(t.buf))
	}
	if t.wake != nil {
		close(t.wake)
		t.wake = nil
	}
	t.mu.Unlock()
	s.tailSeq.Store(seq)
	return seq
}

// TailFrom returns up to max records starting at sequence number from.
// When from is the next unassigned position, it returns no records and a
// wake channel that is closed by the next append — callers select on it
// (plus their own cancellation) instead of polling; the store never blocks
// them itself. When from has fallen off the ring (or names a position the
// store has not assigned yet — a stale subscriber from a previous
// incarnation), it returns ErrTailTruncated and the caller must bootstrap.
// Returned Val slices alias immutable stored bytes.
func (s *Store) TailFrom(from int64, max int) ([]WALRecord, <-chan struct{}, error) {
	t := &s.tail
	t.mu.Lock()
	defer t.mu.Unlock()
	if from < t.first || from > t.next {
		return nil, nil, ErrTailTruncated
	}
	if from == t.next {
		if t.wake == nil {
			t.wake = make(chan struct{})
		}
		return nil, t.wake, nil
	}
	n := t.next - from
	if int64(max) < n {
		n = int64(max)
	}
	out := make([]WALRecord, n)
	for i := int64(0); i < n; i++ {
		out[i] = t.buf[(from+i)%int64(len(t.buf))]
	}
	return out, nil, nil
}

// WALSeq is the sequence number of the newest committed record (0 before
// the first). The follower's applied position lagging the primary's WALSeq
// is the replication lag /statz exposes.
func (s *Store) WALSeq() int64 { return s.tailSeq.Load() }

// SnapSeq is the tail position of the last completed snapshot's marker
// record (0 before the first). WALSeq−SnapSeq is roughly how much log the
// next compaction will retire.
func (s *Store) SnapSeq() int64 { return s.snapSeq.Load() }

// Clock returns the store's virtual clock (the newest record timestamp
// observed).
func (s *Store) Clock() int64 { return s.vnow.Load() }

// SeedClock lifts the virtual clock to at least ts without writing any
// record. Replication heartbeats call it on the follower so idle-eviction
// horizons track the primary even when no states are flowing.
func (s *Store) SeedClock(ts int64) { maxInt64(&s.vnow, ts) }
