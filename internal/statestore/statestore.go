// Package statestore is the production-grade per-user hidden-state store of
// the §9 deployment: the serving.Store seam backed by durability (an
// append-only CRC-framed WAL with periodic snapshots and crash recovery),
// bounded residency (idle eviction by each state's own timestamp plus a
// byte-budget CLOCK sweep), and a storage tier that holds warm states int8-
// quantized at 1 byte per dimension. Evicted or lost users fall back to the
// h_0 cold start exactly as the paper prescribes, so boundedness trades a
// little recall for a hard memory ceiling — the lifecycle experiment
// quantifies the trade.
//
// The store drops under the stream processors and the prediction service
// unchanged, and is safe for concurrent use: keys are spread over
// power-of-two shards, WAL appends happen under the owning shard's lock (so
// the log's per-key order always matches the map's), and sweeps are
// amortised, single-flight, and allocation-lean.
package statestore

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/serving"
)

// Options configures a Store. The zero value is a volatile, unbounded,
// float32 store — behaviourally a ShardedKVStore.
type Options struct {
	// Dir enables durability: WAL + snapshots live here. "" keeps the
	// store memory-only.
	Dir string
	// Codec selects the resident representation (CodecFloat32, CodecInt8,
	// or CodecF32 — the f32 compute tier's transcode-free codec).
	Codec Codec
	// EvictAfter is the idle horizon in virtual seconds: a state whose
	// record timestamp lags the newest observed timestamp by more than
	// this is evicted at the next sweep. 0 disables idle eviction.
	EvictAfter int64
	// MemBudget caps resident bytes (keys + tagged values). When a Put
	// pushes the store over, a CLOCK sweep evicts
	// least-recently-referenced states down to the low watermark.
	// 0 means unbounded.
	MemBudget int64
	// Shards is rounded up to a power of two (<=0 selects
	// serving.DefaultShards).
	Shards int
	// SnapshotEvery triggers a snapshot + WAL truncation after this many
	// log records (<=0 selects 8192; ignored when Dir is "").
	SnapshotEvery int
	// SweepEvery is how many Puts pass between idle sweeps (<=0 selects
	// 1024). Budget sweeps are triggered by the budget itself.
	SweepEvery int
	// TailBuffer is how many committed records the in-memory tail ring
	// retains for TailFrom subscribers (<=0 selects 8192). A subscriber
	// that falls further behind than this must re-bootstrap.
	TailBuffer int
}

// entry is one resident state. ref is the CLOCK bit, set on Get and
// cleared by the sweep hand (atomic so reads stay under the shard RLock).
type entry struct {
	stored []byte
	lastTS int64
	ref    atomic.Bool
}

type shard struct {
	mu   sync.RWMutex
	data map[string]*entry
}

// Store implements serving.Store with durability, bounded residency, and
// codec tiering.
type Store struct {
	opts Options

	shards []shard
	mask   uint32

	gets, puts, misses  atomic.Int64
	bytesRead, bytesPut atomic.Int64
	bytesStored         atomic.Int64

	// vnow is the virtual clock: the newest record timestamp any Put has
	// carried. Idle eviction measures against it, so the store needs no
	// wall clock and replays deterministically.
	vnow atomic.Int64

	idleEvictions   atomic.Int64
	budgetEvictions atomic.Int64
	snapshots       atomic.Int64

	recovered       int
	replayedRecords int
	tornTailBytes   int64

	// walMu orders log appends and rotation; shard locks are always taken
	// before it (never the reverse), so holding a shard lock across an
	// append is deadlock-free.
	walMu            sync.Mutex
	wal              *wal
	recordsSinceSnap int

	snapMu sync.Mutex // one snapshot at a time

	// tail is the in-memory subscription ring (tail.go); tailSeq mirrors
	// its newest assigned sequence number and snapSeq the position of the
	// last completed snapshot, both atomically readable for Stats.
	tail    tailBuf
	tailSeq atomic.Int64
	snapSeq atomic.Int64

	sweepMu        sync.Mutex // single-flight sweeps
	putsSinceSweep atomic.Int64
	clockHand      int      // next shard the budget sweep visits; under sweepMu
	sweepScratch   []string // reusable eviction key batch; under sweepMu

	ioErr  atomic.Pointer[error]
	closed atomic.Bool
}

var _ serving.Store = (*Store)(nil)

// Open creates (or recovers) a store. With a non-empty Dir it loads the
// last snapshot, replays both log generations, truncates any torn tail,
// and resumes appending — recovered states are byte-identical to what the
// pre-crash store held (crash_test.go proves it at every truncation
// boundary).
func Open(opts Options) (*Store, error) {
	if opts.Shards <= 0 {
		opts.Shards = serving.DefaultShards
	}
	n := 1
	for n < opts.Shards {
		n <<= 1
	}
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = 8192
	}
	if opts.SweepEvery <= 0 {
		opts.SweepEvery = 1024
	}
	s := &Store{opts: opts, shards: make([]shard, n), mask: uint32(n - 1)}
	for i := range s.shards {
		s.shards[i].data = make(map[string]*entry)
	}
	if opts.Dir == "" {
		s.tailInit(opts.TailBuffer, 0)
		return s, nil
	}

	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	// Best-effort: a leftover tmp is never read, and writeSnapshot
	// recreates it with O_TRUNC, so a failed remove cannot corrupt state.
	os.Remove(fmt.Sprintf("%s/%s", opts.Dir, snapTmpName)) //pplint:allow walerrcheck (abandoned mid-snapshot tmp)
	apply := func(op byte, key string, val []byte) {
		switch op {
		case opDelete:
			s.applyRecovered(key, nil)
		case opClock:
			// Defensive: clock records live in snapshots, not the WAL, but a
			// future layout change must not replay one as a put.
			if len(val) == 8 {
				maxInt64(&s.vnow, int64(binary.LittleEndian.Uint64(val)))
			}
		default:
			s.applyRecovered(key, val)
		}
	}
	snapRecords, snapClock, err := loadSnapshot(opts.Dir, func(key string, val []byte) { s.applyRecovered(key, val) })
	if err != nil {
		return nil, err
	}
	// Re-seed the virtual clock from the snapshot's persisted clock as well
	// as from recovered entries' own timestamps (applyRecovered). Without
	// this, a store whose newest-timestamp entries were deleted before the
	// snapshot would reopen with an older clock and silently change its
	// idle-eviction semantics across the restart.
	maxInt64(&s.vnow, snapClock)
	oldRecords, _, err := replayFile(fmt.Sprintf("%s/%s", opts.Dir, walOldName), apply)
	if err != nil {
		return nil, err
	}
	liveRecords, torn, err := replayFile(fmt.Sprintf("%s/%s", opts.Dir, walName), apply)
	if err != nil {
		return nil, err
	}
	s.replayedRecords = snapRecords + oldRecords + liveRecords
	s.tornTailBytes = torn
	s.recordsSinceSnap = oldRecords + liveRecords
	for i := range s.shards {
		s.recovered += len(s.shards[i].data)
	}
	// Tail sequence numbering starts after the replay: a subscriber whose
	// position predates this incarnation falls below the ring's floor and
	// is forced to re-bootstrap instead of silently skipping recovered
	// records.
	s.tailInit(opts.TailBuffer, int64(s.replayedRecords))
	if s.wal, err = openWAL(opts.Dir); err != nil {
		return nil, err
	}
	if fileExists(fmt.Sprintf("%s/%s", opts.Dir, walOldName)) {
		// A wal.old.log on disk means the previous run crashed or failed
		// mid-snapshot. Compact it away now, while recovery is still
		// single-threaded: a later rotation renaming over it would destroy
		// records that exist nowhere else.
		if err := s.compactAtOpen(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// compactAtOpen snapshots the just-recovered state and resets the live
// log. Every crash window is safe because the snapshot already contains
// everything the leftover logs hold, and replay is idempotent.
func (s *Store) compactAtOpen() error {
	err := writeSnapshot(s.opts.Dir, s.vnow.Load(), func(emit func(key string, val []byte) error) error {
		for i := range s.shards {
			for k, e := range s.shards[i].data {
				if err := emit(k, e.stored); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := s.wal.retireOld(); err != nil {
		return err
	}
	if err := os.Truncate(fmt.Sprintf("%s/%s", s.opts.Dir, walName), 0); err != nil {
		return err
	}
	s.wal.size = 0
	s.recordsSinceSnap = 0
	s.snapshots.Add(1)
	s.snapSeq.Store(s.tailSeq.Load())
	return nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// applyRecovered installs one recovery record (val nil = delete) without
// touching the WAL. Single-goroutine, so no locks.
func (s *Store) applyRecovered(key string, val []byte) {
	sh := s.shard(key)
	if old, ok := sh.data[key]; ok {
		s.bytesStored.Add(-int64(len(key) + len(old.stored)))
		delete(sh.data, key)
	}
	if val == nil {
		return
	}
	e := &entry{stored: append([]byte(nil), val...), lastTS: storedTS(val)}
	sh.data[key] = e
	s.bytesStored.Add(int64(len(key) + len(e.stored)))
	maxInt64(&s.vnow, e.lastTS)
}

func (s *Store) shard(key string) *shard {
	return &s.shards[serving.KeyHash(key)&s.mask]
}

// Get returns a caller-owned wire-format copy of the stored state and
// marks the entry recently used.
func (s *Store) Get(key string) ([]byte, bool) {
	s.gets.Add(1)
	sh := s.shard(key)
	sh.mu.RLock()
	e, ok := sh.data[key]
	if !ok {
		sh.mu.RUnlock()
		s.misses.Add(1)
		return nil, false
	}
	out := decodeWire(e.stored)
	e.ref.Store(true)
	sh.mu.RUnlock()
	s.bytesRead.Add(int64(len(out)))
	return out, true
}

// Put transcodes and stores a copy of value, appends it to the WAL, and
// runs the amortised sweeps. The value slice is never retained.
func (s *Store) Put(key string, value []byte) {
	s.puts.Add(1)
	s.bytesPut.Add(int64(len(value)))
	e := &entry{stored: encodeStored(nil, s.opts.Codec, value)}
	e.lastTS = storedTS(e.stored)
	e.ref.Store(true)
	maxInt64(&s.vnow, e.lastTS)

	delta := int64(len(key) + len(e.stored))
	sh := s.shard(key)
	sh.mu.Lock()
	if old, ok := sh.data[key]; ok {
		delta -= int64(len(key) + len(old.stored))
	}
	sh.data[key] = e
	needSnap := s.logAppend(opPut, key, e.stored)
	sh.mu.Unlock()
	s.bytesStored.Add(delta)

	if needSnap {
		s.snapshot()
	}
	s.maybeSweep()
}

// Delete removes a key (and logs the removal, so recovery cannot
// resurrect it).
func (s *Store) Delete(key string) {
	sh := s.shard(key)
	sh.mu.Lock()
	old, ok := sh.data[key]
	var needSnap bool
	if ok {
		delete(sh.data, key)
		needSnap = s.logAppend(opDelete, key, nil)
	}
	sh.mu.Unlock()
	if ok {
		s.bytesStored.Add(-int64(len(key) + len(old.stored)))
	}
	if needSnap {
		s.snapshot()
	}
}

// Export streams every resident entry whose key matches, in the tagged
// stored representation — the state-transfer seam of a cluster handoff.
// Transferring stored bytes (rather than the wire format) means no
// transcoding on either side: the receiving Import installs them verbatim,
// so the moved states are byte-identical and the self-describing tag keeps
// them decodable even when source and destination run different codecs.
// Emitted slices alias the store's immutable entry storage: the callback
// may retain them but must never mutate them. Entries put concurrently
// with the export may or may not be included (handoff callers quiesce
// first).
func (s *Store) Export(match func(key string) bool, emit func(key string, stored []byte) error) error {
	type kv struct {
		k string
		v []byte
	}
	var batch []kv
	for i := range s.shards {
		sh := &s.shards[i]
		batch = batch[:0]
		sh.mu.RLock()
		for k, e := range sh.data {
			if match(k) {
				batch = append(batch, kv{k, e.stored})
			}
		}
		sh.mu.RUnlock()
		// Emit outside the lock: the callback typically does network or
		// disk I/O. Stored slices are immutable once installed, so they
		// stay valid after the lock is dropped.
		for _, it := range batch {
			if err := emit(it.k, it.v); err != nil {
				return err
			}
		}
	}
	return nil
}

// Import installs a tagged stored value verbatim — the receiving half of a
// state handoff. Like Put it logs to the WAL, seeds the virtual clock from
// the record's own timestamp, and respects the byte budget; unlike Put it
// performs no transcoding (the value keeps whatever codec its tag names)
// and does not advance the serving-traffic counters.
func (s *Store) Import(key string, stored []byte) {
	e := &entry{stored: append([]byte(nil), stored...)}
	e.lastTS = storedTS(e.stored)
	e.ref.Store(true)
	maxInt64(&s.vnow, e.lastTS)

	delta := int64(len(key) + len(e.stored))
	sh := s.shard(key)
	sh.mu.Lock()
	if old, ok := sh.data[key]; ok {
		delta -= int64(len(key) + len(old.stored))
	}
	sh.data[key] = e
	needSnap := s.logAppend(opPut, key, e.stored)
	sh.mu.Unlock()
	s.bytesStored.Add(delta)

	if needSnap {
		s.snapshot()
	}
	s.maybeSweep()
}

// DecodeStoredValue converts a tagged stored value (as emitted by Export)
// back to the wire format, allocating a fresh slice. It lets a volatile
// store ingest a statestore export without linking the codec internals.
func DecodeStoredValue(stored []byte) []byte { return decodeWire(stored) }

// Keys snapshots the resident keyset (per-shard consistent, unordered).
func (s *Store) Keys() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.data {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	return out
}

// logAppend writes one record under walMu (caller holds the shard lock,
// which is what keeps per-key log order identical to map order when a
// sweeper races a Put). Reports whether a snapshot is due; the caller must
// run it after releasing the shard lock.
func (s *Store) logAppend(op byte, key string, val []byte) bool {
	// Tail before the volatile early-return: subscribers see every commit
	// whether or not a WAL file backs it.
	s.tailAppend(op, key, val)
	if s.opts.Dir == "" {
		return false
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal == nil { // closed
		return false
	}
	if err := s.wal.append(op, key, val); err != nil {
		s.setErr(err)
		return false
	}
	s.recordsSinceSnap++
	if s.recordsSinceSnap >= s.opts.SnapshotEvery {
		s.recordsSinceSnap = 0
		return true
	}
	return false
}

// logDeleteBatch logs a sweep's evictions for one shard as a single
// write. Same contract as logAppend (caller holds the shard lock).
func (s *Store) logDeleteBatch(keys []string) bool {
	if len(keys) == 0 {
		return false
	}
	for _, k := range keys {
		s.tailAppend(opDelete, k, nil)
	}
	if s.opts.Dir == "" {
		return false
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal == nil {
		return false
	}
	if err := s.wal.appendDeletes(keys); err != nil {
		s.setErr(err)
		return false
	}
	s.recordsSinceSnap += len(keys)
	if s.recordsSinceSnap >= s.opts.SnapshotEvery {
		s.recordsSinceSnap = 0
		return true
	}
	return false
}

// snapshot compacts the log: rotate the WAL first (under walMu), then
// stream the shards to a tmp snapshot and rename it into place. Rotating
// before scanning makes every interleaving crash-safe: a record in the
// retired log is always reflected in the scan (map updates precede their
// append under the same shard lock), and a record in the fresh log is
// either in the snapshot too (replay is idempotent) or replayed on top of
// it — both converge to the pre-crash state.
func (s *Store) snapshot() {
	if s.opts.Dir == "" {
		return
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.walMu.Lock()
	if s.wal == nil {
		s.walMu.Unlock()
		return
	}
	err := s.wal.rotate()
	s.walMu.Unlock()
	if err != nil {
		s.setErr(err)
		return
	}
	err = writeSnapshot(s.opts.Dir, s.vnow.Load(), func(emit func(key string, val []byte) error) error {
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.RLock()
			for k, e := range sh.data {
				if err := emit(k, e.stored); err != nil {
					sh.mu.RUnlock()
					return err
				}
			}
			sh.mu.RUnlock()
		}
		return nil
	})
	if err != nil {
		s.setErr(err)
		return
	}
	// The snapshot covers everything the retired log held; drop it under
	// walMu, completing the rotation invariant rotate() opened.
	s.walMu.Lock()
	if s.wal != nil {
		err = s.wal.retireOld()
	}
	s.walMu.Unlock()
	if err != nil {
		s.setErr(err)
		return
	}
	s.snapshots.Add(1)
	// A snapshot marker in the tail tells followers the primary just
	// compacted, so they compact in (loose) lockstep instead of letting
	// their own logs grow unbounded. Its Val carries the snapshot's clock.
	var clock [8]byte
	binary.LittleEndian.PutUint64(clock[:], uint64(s.vnow.Load()))
	s.snapSeq.Store(s.tailAppend(opSnapshot, "", clock[:]))
}

// Snapshot forces a log compaction now — rotate the WAL, stream the
// resident state to disk, retire the old log. Graceful shutdown calls this
// so a clean reopen recovers from the snapshot alone; replay drivers and
// tests use it to pin compaction points deterministically. Returns the
// store's first observed I/O error (a volatile store is a no-op).
func (s *Store) Snapshot() error {
	if s.opts.Dir == "" {
		return nil
	}
	s.snapshot()
	return s.Err()
}

// maybeSweep runs the idle and budget sweeps when they are due. Sweeps are
// single-flight (TryLock): concurrent Puts never queue behind one.
func (s *Store) maybeSweep() {
	idleDue := s.opts.EvictAfter > 0 &&
		s.putsSinceSweep.Add(1) >= int64(s.opts.SweepEvery)
	budgetDue := s.opts.MemBudget > 0 && s.bytesStored.Load() > s.opts.MemBudget
	if !idleDue && !budgetDue {
		return
	}
	if !s.sweepMu.TryLock() {
		return
	}
	defer s.sweepMu.Unlock()
	if idleDue {
		s.putsSinceSweep.Store(0)
		s.evictIdleLocked(s.vnow.Load())
	}
	if s.opts.MemBudget > 0 {
		s.sweepBudgetLocked()
	}
}

// EvictIdle evicts every state whose record timestamp lags now by more
// than the idle horizon, and returns how many it removed. Exposed so
// replay drivers and tests can force a deterministic sweep; automatic
// sweeps use the store's own virtual clock.
func (s *Store) EvictIdle(now int64) int {
	if s.opts.EvictAfter <= 0 {
		return 0
	}
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	return s.evictIdleLocked(now)
}

func (s *Store) evictIdleLocked(now int64) int {
	horizon := now - s.opts.EvictAfter
	evicted := 0
	needSnap := false
	for i := range s.shards {
		sh := &s.shards[i]
		batch := s.sweepScratch[:0]
		sh.mu.Lock()
		var freed int64
		for k, e := range sh.data {
			if e.lastTS >= horizon {
				continue
			}
			delete(sh.data, k)
			freed += int64(len(k) + len(e.stored))
			batch = append(batch, k)
		}
		// One framed write logs the whole shard's evictions (still under
		// the shard lock, so per-key log order matches map order).
		needSnap = s.logDeleteBatch(batch) || needSnap
		sh.mu.Unlock()
		s.sweepScratch = batch
		s.bytesStored.Add(-freed)
		evicted += len(batch)
	}
	s.idleEvictions.Add(int64(evicted))
	if needSnap {
		s.snapshot()
	}
	return evicted
}

// sweepBudgetLocked is the CLOCK (second-chance) sweep: walk the shards
// from the persistent hand, skip-and-clear referenced entries, evict
// unreferenced ones, until resident bytes drop to the low watermark (90%
// of the budget, so steady-state churn does not sweep on every Put). Two
// passes bound the walk: after one full revolution every ref bit is clear.
func (s *Store) sweepBudgetLocked() {
	target := s.opts.MemBudget - s.opts.MemBudget/10
	if s.bytesStored.Load() <= s.opts.MemBudget {
		return
	}
	needSnap := false
	for pass := 0; pass < 2 && s.bytesStored.Load() > target; pass++ {
		for i := 0; i < len(s.shards) && s.bytesStored.Load() > target; i++ {
			sh := &s.shards[s.clockHand]
			s.clockHand = (s.clockHand + 1) % len(s.shards)
			batch := s.sweepScratch[:0]
			sh.mu.Lock()
			var freed int64
			for k, e := range sh.data {
				if s.bytesStored.Load()-freed <= target {
					break
				}
				if e.ref.Load() {
					e.ref.Store(false)
					continue
				}
				delete(sh.data, k)
				freed += int64(len(k) + len(e.stored))
				batch = append(batch, k)
			}
			needSnap = s.logDeleteBatch(batch) || needSnap
			sh.mu.Unlock()
			s.sweepScratch = batch
			s.bytesStored.Add(-freed)
			s.budgetEvictions.Add(int64(len(batch)))
		}
	}
	if needSnap {
		s.snapshot()
	}
}

// Stats implements the serving.Store accounting surface. BytesStored is
// the resident tagged footprint (so the int8 tier reports its real ~4×
// shrink), maintained incrementally — O(shards), not O(keys).
func (s *Store) Stats() serving.Stats {
	st := serving.Stats{
		Gets: s.gets.Load(), Puts: s.puts.Load(), Misses: s.misses.Load(),
		BytesRead: s.bytesRead.Load(), BytesPut: s.bytesPut.Load(),
		BytesStored: s.bytesStored.Load(),
		WALSeq:      s.tailSeq.Load(), SnapSeq: s.snapSeq.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		st.Keys += len(sh.data)
		sh.mu.RUnlock()
	}
	return st
}

// LifecycleStats reports the subsystem's own counters, beyond the
// serving.Stats surface.
type LifecycleStats struct {
	IdleEvictions   int64
	BudgetEvictions int64
	Snapshots       int64
	WALRecords      int64
	WALBytes        int64
	// Recovery facts from Open.
	RecoveredKeys   int
	ReplayedRecords int
	TornTailBytes   int64
	// VirtualNow is the newest record timestamp observed.
	VirtualNow int64
	// WALSeq is the newest committed tail sequence number; SnapSeq the
	// position of the last completed snapshot. Their difference is how
	// much log the next compaction will retire; a follower's applied
	// position against WALSeq is the replication lag.
	WALSeq  int64
	SnapSeq int64
}

// Lifecycle returns eviction/durability counters.
func (s *Store) Lifecycle() LifecycleStats {
	ls := LifecycleStats{
		IdleEvictions:   s.idleEvictions.Load(),
		BudgetEvictions: s.budgetEvictions.Load(),
		Snapshots:       s.snapshots.Load(),
		RecoveredKeys:   s.recovered,
		ReplayedRecords: s.replayedRecords,
		TornTailBytes:   s.tornTailBytes,
		VirtualNow:      s.vnow.Load(),
		WALSeq:          s.tailSeq.Load(),
		SnapSeq:         s.snapSeq.Load(),
	}
	s.walMu.Lock()
	if s.wal != nil {
		ls.WALRecords = s.wal.records
		ls.WALBytes = s.wal.bytes
	}
	s.walMu.Unlock()
	return ls
}

// Err surfaces the first I/O error the store swallowed on its non-erroring
// hot paths (serving.Store has no error returns by design).
func (s *Store) Err() error {
	if p := s.ioErr.Load(); p != nil {
		return *p
	}
	return nil
}

func (s *Store) setErr(err error) {
	s.ioErr.CompareAndSwap(nil, &err)
}

// Close syncs and closes the log. The resident map stays readable, but
// further mutations are no longer persisted; reopen with Open. Returns the
// first I/O error observed over the store's lifetime.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return s.Err()
	}
	s.walMu.Lock()
	if s.wal != nil {
		if err := s.wal.close(); err != nil {
			s.setErr(err)
		}
		s.wal = nil
	}
	s.walMu.Unlock()
	return s.Err()
}

// maxInt64 lifts a to at least v.
func maxInt64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
