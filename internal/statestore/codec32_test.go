package statestore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCodecF32Tagging pins the tagF32 encode rules: well-formed hidden
// records are tagged tagF32 with the payload stored verbatim (no
// transcode), malformed bytes fall back to tagRaw, and decode reverses both
// byte for byte.
func TestCodecF32Tagging(t *testing.T) {
	wire := wireState(12, 3, 4321)
	stored := encodeStored(nil, CodecF32, wire)
	if stored[0] != tagF32 {
		t.Fatalf("hidden record tagged %d, want tagF32", stored[0])
	}
	if !bytes.Equal(stored[1:], wire) {
		t.Fatal("tagF32 payload must be the wire bytes verbatim")
	}
	if got := decodeWire(stored); !bytes.Equal(got, wire) {
		t.Fatal("tagF32 decode not byte-identical")
	}
	if got := storedTS(stored); got != 4321 {
		t.Fatalf("storedTS = %d, want 4321", got)
	}

	// Bytes that do not parse as a hidden record (length not 8+4k) must
	// stay raw so the store never destroys what it does not understand.
	junk := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} // (10-8)%4 != 0
	stored = encodeStored(nil, CodecF32, junk)
	if stored[0] != tagRaw {
		t.Fatalf("malformed value tagged %d, want tagRaw", stored[0])
	}
	if got := decodeWire(stored); !bytes.Equal(got, junk) {
		t.Fatal("raw fallback decode not byte-identical")
	}
}

// TestCodecF32ReopenUnderDifferentCodec is the self-describing-tag
// property across codec changes: entries written under CodecF32 survive a
// reopen under CodecInt8 byte-identically (their own tag decodes them, not
// the store's option), new puts use the new codec, and a third reopen under
// CodecF32 still reads both generations correctly.
func TestCodecF32ReopenUnderDifferentCodec(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Codec: CodecF32, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("h:%d", i)
		v := wireState(16, uint64(i)+1, int64(1000+i))
		s.Put(k, v)
		want[k] = append([]byte(nil), v...)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Dir: dir, Codec: CodecInt8, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		got, ok := r.Get(k)
		if !ok {
			t.Fatalf("f32-written state %s lost under int8 reopen", k)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("f32-written state %s not byte-identical under int8 reopen", k)
		}
	}
	// A new put under the int8 codec quantizes (lossy): the stored bytes
	// shrink and the round trip is no longer exact for arbitrary floats.
	full := wireState(16, 99, 2000)
	r.Put("h:int8", full)
	got, _ := r.Get("h:int8")
	if bytes.Equal(got, full) {
		t.Fatal("int8 codec round trip unexpectedly exact — codec option ignored?")
	}
	want["h:int8"] = got
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Third generation: reopen under CodecF32 again. Both the f32 and int8
	// entries must decode by their own tags.
	r2, err := Open(Options{Dir: dir, Codec: CodecF32, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	for k, v := range want {
		got, ok := r2.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("state %s wrong after third-generation reopen", k)
		}
	}
}

// TestCodecF32CrashRecoveryTruncationBoundaries is the tagF32 analogue of
// TestCrashRecoveryEveryTruncationBoundary: for every byte boundary of the
// last WAL record, recovery must keep every earlier f32-tagged state
// byte-identical and apply the torn record all-or-nothing.
func TestCodecF32CrashRecoveryTruncationBoundaries(t *testing.T) {
	const n = 12
	const dim = 8
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Codec: CodecF32, SnapshotEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	var lastKey string
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("h:%d", i)
		v := wireState(dim, uint64(i)+1, int64(1000+i))
		s.Put(k, v)
		want[k] = append([]byte(nil), v...)
		lastKey = k
	}
	// Simulated crash: abandon without Close.
	full, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	// Tagged value is 1 (tag) + wire bytes — same framing as tagRaw.
	lastFrame := recordHeaderLen + len(lastKey) + (1 + len(want[lastKey])) + recordTrailerLen
	lastOff := len(full) - lastFrame
	if lastOff < 0 {
		t.Fatalf("frame arithmetic wrong: wal %dB, last frame %dB", len(full), lastFrame)
	}

	for cut := lastOff; cut <= len(full); cut++ {
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, walName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(Options{Dir: cutDir, Codec: CodecF32})
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		wantTorn := cut < len(full)
		for k, v := range want {
			got, ok := r.Get(k)
			if k == lastKey && wantTorn {
				if ok {
					t.Fatalf("cut=%d: torn record half-applied", cut)
				}
				continue
			}
			if !ok {
				t.Fatalf("cut=%d: surviving state %s lost", cut, k)
			}
			if !bytes.Equal(got, v) {
				t.Fatalf("cut=%d: state %s not byte-identical", cut, k)
			}
		}
		r.Close()
	}
}

// TestExportImportMixedTags moves entries from an f32-codec store and an
// int8-codec store into one destination: the self-describing tags must keep
// every imported entry decoding exactly as its source served it, across the
// destination's WAL reopen.
func TestExportImportMixedTags(t *testing.T) {
	f32Src, err := Open(Options{Codec: CodecF32, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	int8Src, err := Open(Options{Codec: CodecInt8, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("h:f32-%d", i)
		f32Src.Put(k, wireState(8, uint64(i)+1, int64(100+i)))
		want[k], _ = f32Src.Get(k)
	}
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("h:int8-%d", i)
		int8Src.Put(k, wireState(8, uint64(i)+21, int64(200+i)))
		want[k], _ = int8Src.Get(k)
	}

	dstDir := t.TempDir()
	dst, err := Open(Options{Dir: dstDir, Codec: CodecFloat32, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []*Store{f32Src, int8Src} {
		err := src.Export(
			func(key string) bool { return strings.HasPrefix(key, "h:") },
			func(key string, stored []byte) error {
				dst.Import(key, stored)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
	}
	for k, v := range want {
		got, ok := dst.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("imported state %s differs from its source's wire value", k)
		}
	}
	// DecodeStoredValue must handle the mixed tags too.
	err = dst.Export(
		func(string) bool { return true },
		func(key string, stored []byte) error {
			if !bytes.Equal(DecodeStoredValue(stored), want[key]) {
				return fmt.Errorf("DecodeStoredValue mismatch for %s", key)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}

	// The mixed-tag population must survive the destination's WAL.
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{Dir: dstDir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for k, v := range want {
		got, ok := re.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("mixed-tag state %s wrong after reopen", k)
		}
	}
}

// TestParseCodec pins the flag-name mapping.
func TestParseCodec(t *testing.T) {
	cases := []struct {
		in   string
		want Codec
		ok   bool
	}{
		{"float32", CodecFloat32, true},
		{"", CodecFloat32, true},
		{"int8", CodecInt8, true},
		{"f32", CodecF32, true},
		{"f64", CodecFloat32, false},
		{"int4", CodecFloat32, false},
	}
	for _, c := range cases {
		got, ok := ParseCodec(c.in)
		if got != c.want || ok != c.ok {
			t.Fatalf("ParseCodec(%q) = (%v, %v), want (%v, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
	for _, c := range []Codec{CodecFloat32, CodecInt8, CodecF32} {
		got, ok := ParseCodec(c.String())
		if !ok || got != c {
			t.Fatalf("ParseCodec(%q) did not round-trip", c.String())
		}
	}
}
