package statestore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestCrashRecoveryEveryTruncationBoundary is the crash-safety property
// test: write N states without closing (a crash leaves no clean shutdown),
// then for EVERY byte boundary of the last WAL record, truncate the log at
// that point, reopen, and require (a) recovery succeeds, (b) every state
// other than the torn one is byte-identical to what was written, and
// (c) the torn record either survives whole (cut at the frame end) or is
// dropped whole — never half-applied.
func TestCrashRecoveryEveryTruncationBoundary(t *testing.T) {
	const n = 20
	const dim = 10
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SnapshotEvery: 1 << 30}) // no snapshots: pure WAL
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	var lastKey string
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("h:%d", i)
		v := wireState(dim, uint64(i)+1, int64(1000+i))
		s.Put(k, v)
		want[k] = append([]byte(nil), v...)
		lastKey = k
	}
	// Simulated crash: abandon the store without Close (appends are
	// unbuffered, so the file already holds every frame).
	walPath := filepath.Join(dir, walName)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Frame size of the last record: header + key + tagged value + crc.
	lastFrame := recordHeaderLen + len(lastKey) + (1 + len(want[lastKey])) + recordTrailerLen
	lastOff := len(full) - lastFrame
	if lastOff < 0 {
		t.Fatalf("frame arithmetic wrong: wal %dB, last frame %dB", len(full), lastFrame)
	}

	for cut := lastOff; cut <= len(full); cut++ {
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, walName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(Options{Dir: cutDir})
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		wantTorn := cut < len(full)
		ls := r.Lifecycle()
		if wantTorn && ls.TornTailBytes != int64(cut-lastOff) {
			t.Fatalf("cut=%d: torn tail %dB, want %dB", cut, ls.TornTailBytes, cut-lastOff)
		}
		for k, v := range want {
			got, ok := r.Get(k)
			if k == lastKey && wantTorn {
				if ok {
					t.Fatalf("cut=%d: torn record half-applied", cut)
				}
				continue
			}
			if !ok {
				t.Fatalf("cut=%d: surviving state %s lost", cut, k)
			}
			if !bytes.Equal(got, v) {
				t.Fatalf("cut=%d: state %s not byte-identical", cut, k)
			}
		}
		// The truncated log must accept appends cleanly after recovery.
		r.Put("h:post", wireState(dim, 99, 5000))
		if err := r.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
		r2, err := Open(Options{Dir: cutDir})
		if err != nil {
			t.Fatalf("cut=%d: second recovery: %v", cut, err)
		}
		if _, ok := r2.Get("h:post"); !ok {
			t.Fatalf("cut=%d: post-recovery append lost", cut)
		}
		r2.Close()
	}
}

// TestCrashDuringSnapshotRotation covers the three crash windows of the
// snapshot protocol: after rotation but before the snapshot lands (wal.old
// + wal both present), and after the snapshot rename but before wal.old is
// retired (snapshot + stale wal.old + wal). Both must recover to the full
// pre-crash state.
func TestCrashDuringSnapshotRotation(t *testing.T) {
	build := func(t *testing.T) (dir string, want map[string][]byte) {
		dir = t.TempDir()
		s, err := Open(Options{Dir: dir, SnapshotEvery: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		want = map[string][]byte{}
		for i := 0; i < 12; i++ {
			k := fmt.Sprintf("h:%d", i)
			v := wireState(6, uint64(i)+1, int64(100+i))
			s.Put(k, v)
			want[k] = append([]byte(nil), v...)
		}
		// Crash: no Close.
		return dir, want
	}
	verify := func(t *testing.T, dir string, want map[string][]byte) {
		t.Helper()
		r, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		for k, v := range want {
			got, ok := r.Get(k)
			if !ok || !bytes.Equal(got, v) {
				t.Fatalf("state %s wrong after rotation crash", k)
			}
		}
		if got := len(r.Keys()); got != len(want) {
			t.Fatalf("keys: %d, want %d", got, len(want))
		}
	}

	t.Run("before-snapshot-lands", func(t *testing.T) {
		dir, want := build(t)
		// Crash window: WAL was rotated, snapshot never written.
		if err := os.Rename(filepath.Join(dir, walName), filepath.Join(dir, walOldName)); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walName), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		verify(t, dir, want)
	})
	t.Run("double-crash-after-interrupted-snapshot", func(t *testing.T) {
		dir, want := build(t)
		// Crash window 1: rotation done, snapshot never written.
		if err := os.Rename(filepath.Join(dir, walName), filepath.Join(dir, walOldName)); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walName), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		// Recovery must compact the leftover wal.old.log away: if it
		// survives, the next rotation would rename the fresh log over it
		// and destroy records that exist nowhere else.
		r1, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if fileExists(filepath.Join(dir, walOldName)) {
			t.Fatal("wal.old.log not compacted at Open")
		}
		if r1.Lifecycle().Snapshots == 0 {
			t.Fatal("compaction snapshot not recorded")
		}
		extra := wireState(6, 77, 999)
		r1.Put("h:extra", extra)
		// Crash window 2: no Close. Everything — the compacted state and
		// the post-recovery put — must survive a second recovery.
		r2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		defer r2.Close()
		for k, v := range want {
			got, ok := r2.Get(k)
			if !ok || !bytes.Equal(got, v) {
				t.Fatalf("state %s lost across double crash", k)
			}
		}
		if got, ok := r2.Get("h:extra"); !ok || !bytes.Equal(got, extra) {
			t.Fatal("post-recovery put lost across second crash")
		}
	})
	t.Run("before-old-wal-retired", func(t *testing.T) {
		dir, want := build(t)
		// Run a real snapshot, then resurrect wal.old as if the final
		// remove never happened: its records are all contained in the
		// snapshot, so replay must be idempotent.
		s, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		s.snapshot()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		src, err := os.ReadFile(filepath.Join(dir, snapName))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walOldName), src, 0o644); err != nil {
			t.Fatal(err)
		}
		verify(t, dir, want)
	})
}
