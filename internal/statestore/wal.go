package statestore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/faults"
)

// Durability layout (single-process, like the Redis analogue it models):
//
//	<dir>/wal.log      append-only log of puts/deletes since the last snapshot
//	<dir>/wal.old.log  the pre-rotation log, alive only while a snapshot is
//	                   being written (or after a crash mid-snapshot)
//	<dir>/state.snap   the last completed snapshot (written to a tmp file and
//	                   renamed into place, so it is always complete)
//
// Every record — in the WAL and the snapshot alike — is CRC-framed:
//
//	[1B op][4B keyLen][4B valLen][key][value][4B crc32/IEEE of all prior bytes]
//
// Values are stored in the tagged codec representation, so the log is
// self-describing across codec changes. Recovery loads state.snap, replays
// wal.old.log, then replays wal.log; replay is idempotent (records carry
// absolute values), which is what makes the rotation protocol crash-safe at
// every step. A torn tail — a crash mid-append — is detected by the CRC (or
// a short frame) and truncated away; every complete record survives.

const (
	opPut    byte = 1
	opDelete byte = 2
	// opClock persists the virtual clock: an empty key and an 8-byte
	// little-endian timestamp. Snapshots carry one as their first record so
	// recovery re-seeds vnow even when the newest-timestamp entries were
	// deleted before the snapshot (put records re-seed it for everything
	// else — maxInt64 keeps replay monotone either way). Without it, a
	// restart silently lowered the idle-eviction horizon.
	opClock byte = 3

	walName     = "wal.log"
	walOldName  = "wal.old.log"
	snapName    = "state.snap"
	snapTmpName = "state.snap.tmp"

	recordHeaderLen  = 9 // op + keyLen + valLen
	recordTrailerLen = 4 // crc32
)

// errTorn marks a record cut short by a crash; replay treats it as
// end-of-log rather than corruption.
var errTorn = errors.New("statestore: torn record")

// appendRecord frames one record into buf[:0] and returns the frame.
func appendRecord(buf []byte, op byte, key string, val []byte) []byte {
	need := recordHeaderLen + len(key) + len(val) + recordTrailerLen
	if cap(buf) < need {
		buf = make([]byte, 0, need)
	}
	buf = buf[:need]
	buf[0] = op
	binary.LittleEndian.PutUint32(buf[1:], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[5:], uint32(len(val)))
	copy(buf[recordHeaderLen:], key)
	copy(buf[recordHeaderLen+len(key):], val)
	crc := crc32.ChecksumIEEE(buf[:need-recordTrailerLen])
	binary.LittleEndian.PutUint32(buf[need-recordTrailerLen:], crc)
	return buf
}

// parseRecord reads one record from data, returning the consumed frame
// size. It returns errTorn when data holds only a prefix of a record and a
// hard error on a CRC mismatch (bit rot rather than a crash).
func parseRecord(data []byte) (op byte, key string, val []byte, frame int, err error) {
	if len(data) < recordHeaderLen {
		return 0, "", nil, 0, errTorn
	}
	op = data[0]
	kl := int(binary.LittleEndian.Uint32(data[1:]))
	vl := int(binary.LittleEndian.Uint32(data[5:]))
	if op != opPut && op != opDelete && op != opClock {
		return 0, "", nil, 0, fmt.Errorf("statestore: bad op %d", op)
	}
	frame = recordHeaderLen + kl + vl + recordTrailerLen
	if kl < 0 || vl < 0 || frame < recordHeaderLen || len(data) < frame {
		return 0, "", nil, 0, errTorn
	}
	want := binary.LittleEndian.Uint32(data[frame-recordTrailerLen:])
	if crc32.ChecksumIEEE(data[:frame-recordTrailerLen]) != want {
		return 0, "", nil, 0, fmt.Errorf("statestore: crc mismatch")
	}
	key = string(data[recordHeaderLen : recordHeaderLen+kl])
	val = data[recordHeaderLen+kl : recordHeaderLen+kl+vl]
	return op, key, val, frame, nil
}

// wal is the append side of the log. All methods are called under the
// store's walMu.
type wal struct {
	dir  string
	f    *os.File
	buf  []byte // reusable frame buffer (the hot path allocates nothing)
	size int64

	records int64
	bytes   int64

	// failed latches after a write error: the failing write may have left
	// a torn frame, and appending more records after it would turn a
	// recoverable torn tail into unrecoverable mid-log corruption. Once
	// set, the log is frozen at its last good prefix.
	failed bool

	// oldPresent tracks whether wal.old.log exists. It is the rotation
	// invariant, held under walMu end-to-end: rotate sets it before the
	// rename, retireOld clears it after the snapshot lands. Tracking it in
	// memory (seeded from a stat at open) makes the "refuse to clobber"
	// guard atomic — no stat-then-rename window in which a concurrent
	// snapshot could slip a fresh wal.old.log underneath the check.
	oldPresent bool
}

func openWAL(dir string) (*wal, error) {
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close() //pplint:allow walerrcheck (cleanup on an already-failing open; the Stat error is returned)
		return nil, err
	}
	w := &wal{dir: dir, f: f, size: st.Size()}
	if _, err := os.Stat(filepath.Join(dir, walOldName)); err == nil {
		w.oldPresent = true
	}
	return w, nil
}

// write lands one framed batch on the live log through the
// "statestore.wal.write" fault point (scope: the store directory). The
// disabled check is a single atomic load, so the pinned zero-allocation
// Put path is untouched; armed, a rule can fail the write outright
// (ENOSPC) or cut it short — the torn-tail shape recovery must survive.
func (w *wal) write(p []byte) (int, error) {
	if faults.Armed() {
		if out := faults.Hit("statestore.wal.write", w.dir); out.Err != nil {
			n := 0
			if out.Short > 0 && out.Short < len(p) {
				n, _ = w.f.Write(p[:out.Short]) //pplint:allow walerrcheck (injected torn tail: the injected error is returned)
			}
			return n, out.Err
		}
	}
	return w.f.Write(p)
}

func (w *wal) append(op byte, key string, val []byte) error {
	if w.failed {
		return nil // already reported; keep the torn tail at the tail
	}
	w.buf = appendRecord(w.buf, op, key, val)
	n, err := w.write(w.buf)
	w.size += int64(n)
	w.records++
	w.bytes += int64(n)
	if err != nil {
		w.failed = true
	}
	return err
}

// appendDeletes frames a batch of delete records into one buffer and
// issues a single write — mass evictions log one syscall per shard, not
// one per key (the caller holds the shard lock throughout).
func (w *wal) appendDeletes(keys []string) error {
	if w.failed || len(keys) == 0 {
		return nil
	}
	frames := w.buf[:0]
	var frame []byte
	for _, k := range keys {
		frame = appendRecord(frame, opDelete, k, nil)
		frames = append(frames, frame...)
	}
	w.buf = frames
	n, err := w.write(frames)
	w.size += int64(n)
	w.records += int64(len(keys))
	w.bytes += int64(n)
	if err != nil {
		w.failed = true
	}
	return err
}

// rotate moves the live log aside for an imminent snapshot and starts a
// fresh one. Called under walMu. It refuses to clobber an existing
// wal.old.log: that file only survives a failed or crashed snapshot, and
// renaming over it would destroy records that exist nowhere else (Open
// compacts it away, so this is pure defence in depth). The guard reads
// oldPresent — maintained under walMu across rotate/retireOld — so the
// invariant holds atomically from the check to the rename.
func (w *wal) rotate() error {
	if w.oldPresent {
		return fmt.Errorf("statestore: %s still present, refusing rotation", walOldName)
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(filepath.Join(w.dir, walName), filepath.Join(w.dir, walOldName)); err != nil {
		return err
	}
	w.oldPresent = true
	f, err := os.OpenFile(filepath.Join(w.dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.size = 0
	return nil
}

// retireOld removes the pre-rotation log once the snapshot that covers it
// has landed. Called under walMu (it completes the rotation invariant that
// rotate opened).
func (w *wal) retireOld() error {
	if err := os.Remove(filepath.Join(w.dir, walOldName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	w.oldPresent = false
	return nil
}

func (w *wal) close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close() //pplint:allow walerrcheck (the Sync error dominates; the close is cleanup)
		return err
	}
	return w.f.Close()
}

// replayFile feeds every complete record of path to apply, in order. A torn
// tail is tolerated and truncated in place (so subsequent appends continue
// from the last good frame); any other corruption is a hard error. Returns
// the number of records applied and the bytes discarded from the tail.
// A missing file replays as empty.
func replayFile(path string, apply func(op byte, key string, val []byte)) (records int, torn int64, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	off := 0
	for off < len(data) {
		op, key, val, frame, perr := parseRecord(data[off:])
		if perr != nil {
			if errors.Is(perr, errTorn) {
				break
			}
			return records, 0, fmt.Errorf("%s@%d: %w", filepath.Base(path), off, perr)
		}
		apply(op, key, val)
		off += frame
		records++
	}
	if off < len(data) {
		torn = int64(len(data) - off)
		if err := os.Truncate(path, int64(off)); err != nil {
			return records, torn, err
		}
	}
	return records, torn, nil
}

// writeSnapshot streams every resident entry to a tmp file and renames it
// into place. The caller guarantees the WAL was rotated before any shard
// is scanned (see Store.snapshot for why that ordering is crash-safe) and
// retires the pre-rotation log afterwards via wal.retireOld, under walMu.
func writeSnapshot(dir string, clock int64, scan func(emit func(key string, val []byte) error) error) error {
	tmp := filepath.Join(dir, snapTmpName)
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	// Snapshot writes cross the "statestore.snap.write" fault point above
	// the buffer: an armed error aborts the snapshot (tmp removed, wal.old
	// retained), which recovery must absorb without losing a record.
	out := snapFaultWriter{w: bw, dir: dir}
	var buf []byte
	// The clock record leads the snapshot: recovery must never compute an
	// idle horizon from a clock older than the one the snapshotting store
	// observed, even if every recent-timestamp entry was deleted before the
	// snapshot. (Entries scanned after concurrent puts may carry newer
	// timestamps; replay takes the max, so a slightly stale clock here can
	// only be caught up, never regress anything.)
	var ts [8]byte
	binary.LittleEndian.PutUint64(ts[:], uint64(clock))
	buf = appendRecord(buf, opClock, "", ts[:])
	if _, err := out.Write(buf); err != nil {
		f.Close()      //pplint:allow walerrcheck (cleanup: the write error is returned)
		os.Remove(tmp) //pplint:allow walerrcheck (cleanup: the tmp is recreated with O_TRUNC next attempt)
		return err
	}
	err = scan(func(key string, val []byte) error {
		buf = appendRecord(buf, opPut, key, val)
		_, werr := out.Write(buf)
		return werr
	})
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp) //pplint:allow walerrcheck (cleanup: the flush/sync/close error is returned)
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, snapName))
}

// snapFaultWriter is the snapshot-side injection seam: each record write
// consults "statestore.snap.write" (scope: the store directory) before
// reaching the buffered file.
type snapFaultWriter struct {
	w   io.Writer
	dir string
}

func (sw snapFaultWriter) Write(p []byte) (int, error) {
	if faults.Armed() {
		if out := faults.Hit("statestore.snap.write", sw.dir); out.Err != nil {
			n := 0
			if out.Short > 0 && out.Short < len(p) {
				n, _ = sw.w.Write(p[:out.Short]) //pplint:allow walerrcheck (injected torn write: the injected error is returned)
			}
			return n, out.Err
		}
	}
	return sw.w.Write(p)
}

// loadSnapshot feeds every snapshot record to apply and returns the
// persisted virtual clock (0 for pre-clock snapshots, which remain
// readable). Snapshots are written atomically, so a torn record here is
// real corruption, not a crash.
func loadSnapshot(dir string, apply func(key string, val []byte)) (records int, clock int64, err error) {
	data, err := os.ReadFile(filepath.Join(dir, snapName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	off := 0
	for off < len(data) {
		op, key, val, frame, perr := parseRecord(data[off:])
		if perr != nil {
			return records, clock, fmt.Errorf("statestore: corrupt snapshot at %d: %w", off, perr)
		}
		switch op {
		case opPut:
			apply(key, val)
			records++
		case opClock:
			if len(val) == 8 {
				if ts := int64(binary.LittleEndian.Uint64(val)); ts > clock {
					clock = ts
				}
			}
		}
		off += frame
	}
	return records, clock, nil
}
