package statestore

import (
	"strconv"
	"sync"
	"testing"
)

// TestConcurrentChurnRace hammers a persisted, budgeted, quantized store
// from many goroutines so the race detector sees every lock interaction:
// puts racing CLOCK sweeps racing snapshot rotation racing reads. Each
// goroutine owns a disjoint keyspace (the per-user-lane contract), but
// sweeps and snapshots cross all of them.
func TestConcurrentChurnRace(t *testing.T) {
	s, err := Open(Options{
		Dir:           t.TempDir(),
		Codec:         CodecInt8,
		MemBudget:     32 << 10,
		EvictAfter:    500,
		SweepEvery:    64,
		SnapshotEvery: 512,
		Shards:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 1500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wire := wireState(16, uint64(w)+1, 0)
			for i := 0; i < perWorker; i++ {
				k := "h:" + strconv.Itoa(w*perWorker+i)
				// Rewrite the timestamp so the virtual clock advances.
				for b := 0; b < 8; b++ {
					wire[b] = byte(i >> (8 * b))
				}
				s.Put(k, wire)
				if i%3 == 0 {
					s.Get(k)
				}
				if i%7 == 0 {
					s.Delete("h:" + strconv.Itoa(w*perWorker+i/2))
				}
				if i%97 == 0 {
					s.Stats()
					s.Keys()
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().BytesStored; got > 32<<10 {
		t.Fatalf("over budget after concurrent churn: %d", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
