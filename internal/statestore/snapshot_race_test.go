package statestore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestConcurrentSnapshotHammer drives forced snapshots from two goroutines
// while a third keeps writing. The rotation invariant ("wal.old.log exists
// only between rotate and retire") must hold under every interleaving:
// no snapshot may fail with the refusing-rotation error, no write may be
// lost, and after a clean close + reopen every state must come back
// byte-identical with no stale wal.old.log on disk.
func TestConcurrentSnapshotHammer(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Shards: 4, SnapshotEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}

	const keys = 800
	const snapsPerWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < snapsPerWorker; i++ {
				if err := s.Snapshot(); err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
			}
		}()
	}
	want := make(map[string][]byte, keys)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("h:%d", i)
			v := wireState(8, uint64(i)+1, int64(i)+1)
			s.Put(k, v)
			want[k] = v
		}
	}()
	wg.Wait()
	if err := s.Err(); err != nil {
		t.Fatalf("store error after hammer: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Every completed snapshot retired its pre-rotation log.
	if _, err := os.Stat(filepath.Join(dir, walOldName)); err == nil {
		t.Fatalf("%s left behind after snapshots completed", walOldName)
	}

	re, err := Open(Options{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	for k, v := range want {
		got, ok := re.Get(k)
		if !ok {
			t.Fatalf("key %s lost across snapshot hammer + reopen", k)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("key %s differs after reopen", k)
		}
	}
	if n := len(re.Keys()); n != keys {
		t.Fatalf("reopened store has %d keys, want %d", n, keys)
	}
}

// TestSnapshotVolatileNoop pins the contract that Snapshot on a volatile
// store is a safe no-op (graceful shutdown calls it unconditionally).
func TestSnapshotVolatileNoop(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put("h:1", wireState(8, 1, 1))
	if err := s.Snapshot(); err != nil {
		t.Fatalf("volatile Snapshot: %v", err)
	}
	if s.Lifecycle().Snapshots != 0 {
		t.Fatal("volatile store must not count snapshots")
	}
}
