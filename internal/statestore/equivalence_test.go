package statestore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/serving"
	"repro/internal/synth"
)

// TestEvictionEquivalentToColdStart is the §9 fallback contract: after a
// user's hidden state is evicted, their next prediction must be bit-for-bit
// the prediction a genuinely new user with the same context would get —
// eviction degrades to cold start, never to garbage.
func TestEvictionEquivalentToColdStart(t *testing.T) {
	data := synth.GenerateMobileTab(synth.MobileTabConfig{Users: 40, Days: 5, Seed: 3})
	cfg := core.DefaultConfig()
	cfg.HiddenDim = 12
	cfg.MLPHidden = 16
	m := core.New(data.Schema, cfg)
	tc := core.DefaultTrainConfig()
	tc.Epochs = 1
	tc.BatchUsers = 4
	core.NewTrainer(m, tc).Train(data)

	store, err := Open(Options{EvictAfter: 3600})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	proc := serving.NewStreamProcessor(m, store)
	svc := serving.NewPredictionService(m, store, 0.5)

	// Warm user 1: two finalised sessions give it a non-trivial state.
	base := int64(1_000_000)
	cat := []int{3, 1}
	proc.OnSessionStart("s1", 1, base, cat)
	proc.OnAccess("s1", base+30)
	proc.OnSessionStart("s2", 1, base+5000, cat)
	proc.Flush()
	if len(store.Keys()) != 1 {
		t.Fatalf("warmup stored %d states", len(store.Keys()))
	}

	// The warm prediction must differ from cold start (otherwise the test
	// proves nothing).
	predTS := base + 50_000
	warm := svc.OnSessionStart(1, predTS, cat)
	coldRef := svc.OnSessionStart(999, predTS, cat) // never-seen user
	if warm.Probability == coldRef.Probability {
		t.Fatal("warm state indistinguishable from cold start; test is vacuous")
	}

	// Evict user 1 and require the exact cold-start bits.
	if n := store.EvictIdle(predTS + store.opts.EvictAfter + 10_000); n != 1 {
		t.Fatalf("evicted %d states, want 1", n)
	}
	afterEvict := svc.OnSessionStart(1, predTS, cat)
	if afterEvict.Probability != coldRef.Probability || afterEvict.Precompute != coldRef.Precompute {
		t.Fatalf("evicted user's prediction %v != cold start %v", afterEvict, coldRef)
	}
	// And it must count as a cold start, not a decode failure.
	if svc.DecodeFailures.Load() != 0 {
		t.Fatalf("eviction produced decode failures: %d", svc.DecodeFailures.Load())
	}
}

// TestProcessorsByteIdenticalOnStateStore re-runs the PR-1 equivalence
// invariant with the new store underneath both processors: with
// persistence, eviction, and quantization off, the statestore must be
// behaviourally identical to the in-memory stores.
func TestProcessorsByteIdenticalOnStateStore(t *testing.T) {
	data := synth.GenerateMobileTab(synth.MobileTabConfig{Users: 60, Days: 6, Seed: 5})
	cfg := core.DefaultConfig()
	cfg.HiddenDim = 10
	m := core.New(data.Schema, cfg)

	run := func(store serving.Store, parallel bool) {
		var on func(sid string, u int, ts int64, cat []int)
		var acc func(sid string, ts int64)
		var fin func()
		if parallel {
			p := serving.NewParallelStreamProcessor(m, store, 4)
			on, acc, fin = p.OnSessionStart, p.OnAccess, p.Close
		} else {
			p := serving.NewStreamProcessor(m, store)
			on, acc, fin = p.OnSessionStart, p.OnAccess, p.Flush
		}
		sid := 0
		for _, u := range data.Users {
			for _, sess := range u.Sessions {
				sid++
				id := "s" + itoa(sid)
				on(id, u.ID, sess.Timestamp, sess.Cat)
				if sess.Access {
					acc(id, sess.Timestamp+30)
				}
			}
		}
		fin()
	}

	ref := serving.NewKVStore()
	run(ref, false)
	ss, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	run(ss, true)

	refKeys := ref.Keys()
	if len(refKeys) != len(ss.Keys()) {
		t.Fatalf("key counts differ: %d vs %d", len(refKeys), len(ss.Keys()))
	}
	for _, k := range refKeys {
		a, _ := ref.Get(k)
		b, ok := ss.Get(k)
		if !ok {
			t.Fatalf("statestore missing %s", k)
		}
		if string(a) != string(b) {
			t.Fatalf("state %s differs between KVStore and statestore", k)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
