package statestore

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/serving"
)

// TestChurnBudgetHeldAt100kUsers is the acceptance churn run: 100k
// synthetic users stream through a budgeted store and resident bytes must
// never exceed the configured ceiling, while evicted users read as misses
// (which the prediction service turns into a valid h_0 cold start — see
// TestEvictionEquivalentToColdStart).
func TestChurnBudgetHeldAt100kUsers(t *testing.T) {
	const (
		users  = 100_000
		dim    = 16
		budget = 512 << 10 // ~6.4k resident states of ~81B; forces heavy churn
	)
	s, err := Open(Options{MemBudget: budget, Shards: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	wire := wireState(dim, 1, 0)
	for u := 0; u < users; u++ {
		serving.EncodeHiddenInto(wire, make([]float64, dim), int64(u)) // fresh ts per user
		s.Put("h:"+strconv.Itoa(u), wire)
		if u%1024 == 0 {
			if got := s.Stats().BytesStored; got > budget {
				t.Fatalf("user %d: BytesStored %d over budget %d", u, got, budget)
			}
		}
	}
	st := s.Stats()
	if st.BytesStored > budget {
		t.Fatalf("final BytesStored %d over budget %d", st.BytesStored, budget)
	}
	if st.Keys == 0 || st.Keys == users {
		t.Fatalf("churn did not evict sensibly: %d keys resident", st.Keys)
	}
	ls := s.Lifecycle()
	if int(ls.BudgetEvictions)+st.Keys != users {
		t.Fatalf("accounting: %d evictions + %d resident != %d users", ls.BudgetEvictions, st.Keys, users)
	}
	// Early users must be long gone and read as clean misses (the CLOCK
	// sweep is randomised by map order, so assert on the cohort, not one
	// key: ≥90% of the first 10k users cannot fit in a ~6k-state budget).
	survivors := 0
	for u := 0; u < 10_000; u++ {
		if _, ok := s.Get("h:" + strconv.Itoa(u)); ok {
			survivors++
		}
	}
	if survivors > 1000 {
		t.Fatalf("%d of the first 10k users survived a ~6k-state budget", survivors)
	}
}

// TestChurnWithPersistenceRecoversUnderBudget drives churn through the WAL
// and snapshot cycle (evictions are logged as deletes), then recovers and
// checks the survivor set matches exactly.
func TestChurnWithPersistenceRecoversUnderBudget(t *testing.T) {
	const (
		users  = 10_000
		budget = 64 << 10
	)
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, MemBudget: budget, SnapshotEvery: 4096, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	wire := wireState(16, 1, 0)
	for u := 0; u < users; u++ {
		serving.EncodeHiddenInto(wire, make([]float64, 16), int64(u))
		s.Put("h:"+strconv.Itoa(u), wire)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	before := map[string]bool{}
	for _, k := range s.Keys() {
		before[k] = true
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Dir: dir, MemBudget: budget, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	after := r.Keys()
	if len(after) != len(before) {
		t.Fatalf("recovered %d keys, had %d before restart", len(after), len(before))
	}
	for _, k := range after {
		if !before[k] {
			t.Fatalf("recovery resurrected evicted key %s", k)
		}
	}
	if got := r.Stats().BytesStored; got > budget {
		t.Fatalf("recovered store over budget: %d > %d", got, budget)
	}
	if r.Lifecycle().Snapshots == 0 && s.Lifecycle().Snapshots == 0 {
		t.Fatal("churn at SnapshotEvery=4096 should have snapshotted")
	}
}

// BenchmarkChurn measures the eviction hot path: Puts into a store held at
// its budget, so every batch of writes pays for a CLOCK sweep. Run with
// -benchmem: the steady-state path should stay allocation-lean (one stored
// copy per Put, no garbage from the sweep itself).
func BenchmarkChurn(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"unbounded", Options{Shards: 32}},
		{"budget", Options{Shards: 32, MemBudget: 256 << 10}},
		{"budget-int8", Options{Shards: 32, MemBudget: 256 << 10, Codec: CodecInt8}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			s, err := Open(cfg.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			const dim = 64
			wire := wireState(dim, 1, 0)
			h := make([]float64, dim)
			keys := make([]string, 4096)
			for i := range keys {
				keys[i] = fmt.Sprintf("h:%d", i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				serving.EncodeHiddenInto(wire, h, int64(i))
				s.Put(keys[i%len(keys)], wire)
			}
		})
	}
}
