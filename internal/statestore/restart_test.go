package statestore

import (
	"fmt"
	"testing"
)

// TestRestartThenSweepUsesRecoveredClock is the restart-then-sweep
// regression test: a reopened store must re-seed its virtual clock (vnow)
// from the recovered entries' own timestamps, so the first post-restart
// sweep computes the same idle horizon the pre-crash store would have. With
// a zero clock the horizon goes negative and the idle state below would
// silently survive the sweep — eviction semantics differing across a
// restart.
func TestRestartThenSweepUsesRecoveredClock(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, EvictAfter: 100, SweepEvery: 4, Shards: 4}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("h:idle", wireState(8, 1, 1000))
	s.Put("h:warm", wireState(8, 2, 1950))
	s.Put("h:hot", wireState(8, 3, 2000))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Lifecycle().VirtualNow; got != 2000 {
		t.Fatalf("recovered VirtualNow = %d, want 2000 (max recovered lastTS)", got)
	}
	// Trigger the first post-restart automatic sweep with puts that do NOT
	// advance the clock past 2000: the sweep's horizon must come entirely
	// from the recovered clock.
	for i := 0; i < 6; i++ {
		re.Put(fmt.Sprintf("h:new%d", i), wireState(8, 4, 2000))
	}
	if _, ok := re.Get("h:idle"); ok {
		t.Fatal("post-restart sweep kept an idle state (lastTS 1000 < 2000-100) — vnow was not recovered")
	}
	if _, ok := re.Get("h:warm"); !ok {
		t.Fatal("post-restart sweep evicted a warm state")
	}
	if ev := re.Lifecycle().IdleEvictions; ev != 1 {
		t.Fatalf("IdleEvictions = %d, want 1", ev)
	}
}

// TestSnapshotPersistsClockPastDeletes pins the snapshot clock record: when
// the newest-timestamp entries are deleted before a snapshot, the snapshot
// holds no record carrying that timestamp — only the explicit clock record
// can restore vnow. Without it the reopened store would compute idle
// horizons from an older clock than the pre-restart store observed.
func TestSnapshotPersistsClockPastDeletes(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Shards: 2}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("h:a", wireState(8, 1, 500))
	s.Put("h:b", wireState(8, 2, 90000)) // advances the clock
	s.Delete("h:b")                      // ...then vanishes from the live set
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Lifecycle().VirtualNow; got != 90000 {
		t.Fatalf("reopened VirtualNow = %d, want 90000 (clock observed before the delete)", got)
	}
	if _, ok := re.Get("h:b"); ok {
		t.Fatal("deleted key resurrected")
	}
	if _, ok := re.Get("h:a"); !ok {
		t.Fatal("live key lost")
	}
}
