package statestore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"time"
)

// TestTailSequenceAndOrder checks the basic tail contract: every committed
// mutation gets the next sequence number, TailFrom returns them in order,
// and deletes ride the stream as RecDelete records.
func TestTailSequenceAndOrder(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.Put("a", wireState(4, 1, 100))
	s.Put("b", wireState(4, 2, 200))
	s.Delete("a")
	if got := s.WALSeq(); got != 3 {
		t.Fatalf("WALSeq = %d, want 3", got)
	}

	recs, wake, err := s.TailFrom(1, 100)
	if err != nil || wake != nil {
		t.Fatalf("TailFrom(1) = wake=%v err=%v", wake, err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	wantOps := []byte{RecPut, RecPut, RecDelete}
	wantKeys := []string{"a", "b", "a"}
	for i, r := range recs {
		if r.Seq != int64(i+1) || r.Op != wantOps[i] || r.Key != wantKeys[i] {
			t.Fatalf("record %d = {seq %d op %d key %s}, want {seq %d op %d key %s}",
				i, r.Seq, r.Op, r.Key, i+1, wantOps[i], wantKeys[i])
		}
	}
	if recs[2].Val != nil {
		t.Fatal("delete record carries a value")
	}
}

// TestTailWake checks the no-polling contract: a reader at the head gets a
// wake channel instead of records, and the next append closes it.
func TestTailWake(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	recs, wake, err := s.TailFrom(1, 10)
	if err != nil || recs != nil || wake == nil {
		t.Fatalf("TailFrom at head = recs=%v wake=%v err=%v, want armed wake", recs, wake, err)
	}
	select {
	case <-wake:
		t.Fatal("wake channel closed before any append")
	default:
	}
	s.Put("a", wireState(4, 1, 100))
	select {
	case <-wake:
	case <-time.After(time.Second):
		t.Fatal("append did not close the wake channel")
	}
	recs, _, err = s.TailFrom(1, 10)
	if err != nil || len(recs) != 1 {
		t.Fatalf("after wake: %d records, err %v", len(recs), err)
	}
}

// TestTailTruncation checks the bounded ring: positions that fell off the
// buffer (and positions not yet assigned) report ErrTailTruncated, while
// everything still buffered is readable.
func TestTailTruncation(t *testing.T) {
	s, err := Open(Options{TailBuffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%d", i), wireState(4, uint64(i)+1, int64(i)))
	}
	if _, _, err := s.TailFrom(1, 10); err != ErrTailTruncated {
		t.Fatalf("TailFrom(1) after overflow: err = %v, want ErrTailTruncated", err)
	}
	if _, _, err := s.TailFrom(s.WALSeq()+2, 10); err != ErrTailTruncated {
		t.Fatalf("TailFrom(future) err = %v, want ErrTailTruncated", err)
	}
	recs, _, err := s.TailFrom(7, 10)
	if err != nil || len(recs) != 4 {
		t.Fatalf("TailFrom(7) = %d records, err %v; want the 4 newest", len(recs), err)
	}
	for i, r := range recs {
		if r.Seq != int64(7+i) || r.Key != fmt.Sprintf("k%d", 6+i) {
			t.Fatalf("record %d = {seq %d key %s}", i, r.Seq, r.Key)
		}
	}
}

// TestTailSeqSurvivesRestart checks that a reopened store resumes sequence
// numbering after its replayed records, and that pre-restart positions are
// refused: a subscriber that was at seq 1 before the crash must be told to
// bootstrap, not handed records that silently skip the recovered state.
func TestTailSeqSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", wireState(4, 1, 100))
	s.Put("b", wireState(4, 2, 200))
	written := s.WALSeq()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.WALSeq(); got < written {
		t.Fatalf("reopened WALSeq = %d, want >= %d (seq must not restart at 0)", got, written)
	}
	if _, _, err := r.TailFrom(1, 10); err != ErrTailTruncated {
		t.Fatalf("pre-restart position readable after recovery: err = %v, want ErrTailTruncated", err)
	}
	before := r.WALSeq()
	r.Put("c", wireState(4, 3, 300))
	if got := r.WALSeq(); got != before+1 {
		t.Fatalf("post-restart append got seq %d, want %d", got, before+1)
	}
	recs, _, err := r.TailFrom(before+1, 10)
	if err != nil || len(recs) != 1 || recs[0].Key != "c" {
		t.Fatalf("TailFrom(%d) = %v, err %v", before+1, recs, err)
	}
}

// TestTailSnapshotMarker checks that a completed snapshot appends a
// RecSnapshot marker carrying the persisted virtual clock, and that
// SnapSeq/Stats expose the marker's position.
func TestTailSnapshotMarker(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SnapshotEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.Put("a", wireState(4, 1, 5000))
	if s.SnapSeq() != 0 {
		t.Fatalf("SnapSeq = %d before any snapshot", s.SnapSeq())
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	snapSeq := s.SnapSeq()
	if snapSeq == 0 || snapSeq != s.WALSeq() {
		t.Fatalf("SnapSeq = %d, WALSeq = %d; marker must be the newest record", snapSeq, s.WALSeq())
	}
	recs, _, err := s.TailFrom(snapSeq, 1)
	if err != nil || len(recs) != 1 {
		t.Fatalf("TailFrom(marker) = %d records, err %v", len(recs), err)
	}
	m := recs[0]
	if m.Op != RecSnapshot || len(m.Val) != 8 {
		t.Fatalf("marker = {op %d val %dB}, want {op RecSnapshot val 8B}", m.Op, len(m.Val))
	}
	if clock := int64(binary.LittleEndian.Uint64(m.Val)); clock != s.Clock() {
		t.Fatalf("marker clock %d, store clock %d", clock, s.Clock())
	}
	st := s.Stats()
	if st.WALSeq != s.WALSeq() || st.SnapSeq != snapSeq {
		t.Fatalf("Stats seq mismatch: {wal %d snap %d}, want {%d %d}",
			st.WALSeq, st.SnapSeq, s.WALSeq(), snapSeq)
	}
}

// TestTailValIsStoredRepresentation checks the replication contract: the
// tail record's Val is the tagged stored representation — byte-identical to
// what Export emits — so a follower Importing it holds the same bytes the
// primary does.
func TestTailValIsStoredRepresentation(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.Put("a", wireState(4, 9, 900))
	recs, _, err := s.TailFrom(1, 1)
	if err != nil || len(recs) != 1 {
		t.Fatal("tail read failed")
	}
	var exported []byte
	err = s.Export(func(string) bool { return true }, func(_ string, stored []byte) error {
		exported = append([]byte(nil), stored...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recs[0].Val, exported) {
		t.Fatal("tail Val is not the stored (Export) representation")
	}
}
