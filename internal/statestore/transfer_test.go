package statestore

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/serving"
)

// TestExportImportRoundTrip pins the state-transfer seam: exported stored
// bytes imported into another store (even one opened with a different
// codec) serve byte-identical wire values, survive the destination's WAL
// across a reopen, and seed the destination's virtual clock.
func TestExportImportRoundTrip(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src, err := Open(Options{Dir: srcDir, Codec: CodecInt8, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	want := map[string][]byte{}
	for i, key := range []string{"h:1", "h:2", "h:3", "h:4", "x:aux"} {
		src.Put(key, wireState(16, uint64(i+1), int64(1000*(i+1))))
		got, _ := src.Get(key)
		want[key] = got
	}

	// Export only the "h:" range — the handoff moves a key range, not the
	// whole store.
	dst, err := Open(Options{Dir: dstDir, Codec: CodecFloat32, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	err = src.Export(
		func(key string) bool { return strings.HasPrefix(key, "h:") },
		func(key string, stored []byte) error {
			dst.Import(key, stored)
			moved++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if moved != 4 {
		t.Fatalf("exported %d entries, want 4", moved)
	}

	if _, ok := dst.Get("x:aux"); ok {
		t.Fatal("unmatched key crossed the transfer")
	}
	if got := dst.Lifecycle().VirtualNow; got != 4000 {
		t.Fatalf("import did not seed the virtual clock: VirtualNow = %d, want 4000", got)
	}

	// Imported values must be durable on the destination: reopen and
	// compare every moved state byte for byte against the source's view.
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{Dir: dstDir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, key := range []string{"h:1", "h:2", "h:3", "h:4"} {
		got, ok := re.Get(key)
		if !ok {
			t.Fatalf("moved state %s lost across reopen", key)
		}
		if !bytes.Equal(got, want[key]) {
			t.Fatalf("moved state %s differs from the source's wire value", key)
		}
	}
}

// TestDecodeStoredValue pins the volatile-destination path: a statestore
// export can be transcoded to wire format and Put into any serving.Store.
func TestDecodeStoredValue(t *testing.T) {
	for _, codec := range []Codec{CodecFloat32, CodecInt8} {
		s, err := Open(Options{Codec: codec})
		if err != nil {
			t.Fatal(err)
		}
		s.Put("h:1", wireState(8, 9, 777))
		wantWire, _ := s.Get("h:1")
		dst := serving.NewKVStore()
		if err := s.Export(
			func(string) bool { return true },
			func(key string, stored []byte) error {
				dst.Put(key, DecodeStoredValue(stored))
				return nil
			}); err != nil {
			t.Fatal(err)
		}
		got, ok := dst.Get("h:1")
		if !ok || !bytes.Equal(got, wantWire) {
			t.Fatalf("codec %s: wire transcode mismatch", codec)
		}
		s.Close()
	}
}
