package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCheck encodes the locking discipline the PR-4/PR-5 shutdown and
// snapshot races were fixed under:
//
//  1. every Lock()/RLock() must be released on every return path of the
//     same function (an explicit Unlock on each path, or a defer), and
//  2. no blocking operation — channel send/receive, select without a
//     default, a net/http round-trip, an os.File write/sync — may run
//     while a mutex is held. A shard or WAL mutex guards a hot section;
//     blocking under it stalls every contender and is how the /flush
//     vs. SIGTERM send-on-closed-lane panic family starts.
//
// The analysis is intra-procedural and branch-sensitive but not
// interprocedural: a helper that locks on behalf of its caller (or
// blocks two calls deep) is not seen. Sites where holding a mutex
// across a call is the design — e.g. the WAL append path, where the
// walMu *is* the file-ordering mechanism — stay silent here because the
// file write happens one call down; truly intentional direct sites are
// annotated //pplint:allow lockcheck.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "locks released on every return path; no blocking ops while a mutex is held",
	Run:  runLockCheck,
}

func runLockCheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				sim := &lockSim{pass: pass}
				sim.checkFunc(fn.Body)
			}
		}
	}
}

// heldLock tracks one acquired mutex inside a function.
type heldLock struct {
	pos      token.Pos // position of the Lock/RLock call
	op       string    // "Lock" or "RLock"
	deferred bool      // a defer releases it at function exit
}

type lockState map[string]*heldLock

func (st lockState) clone() lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		c := *v
		out[k] = &c
	}
	return out
}

type lockSim struct {
	pass *Pass
}

// checkFunc simulates one function body. Function literals found inside
// are checked independently with an empty lock state (their bodies run
// on other goroutines or at defer time, not at the lexical point).
func (s *lockSim) checkFunc(body *ast.BlockStmt) {
	st := make(lockState)
	terminated := s.stmts(body.List, st)
	if terminated {
		return
	}
	for key, h := range st {
		if !h.deferred {
			s.pass.Reportf(body.End(),
				"function exits with %s still %sed (acquired at line %d); unlock on every path or defer the unlock",
				key, h.op, s.line(h.pos))
		}
	}
}

func (s *lockSim) line(pos token.Pos) int { return s.pass.Pkg.Fset.Position(pos).Line }

// stmts walks a statement list, mutating st, and reports whether the
// list definitely terminates (returns, panics, or exits).
func (s *lockSim) stmts(list []ast.Stmt, st lockState) bool {
	for _, stmt := range list {
		if s.stmt(stmt, st) {
			return true
		}
	}
	return false
}

func (s *lockSim) stmt(stmt ast.Stmt, st lockState) bool {
	switch n := stmt.(type) {
	case *ast.ExprStmt:
		s.expr(n.X, st)
		if call, ok := n.X.(*ast.CallExpr); ok {
			if s.applyLockOp(call, st) {
				return false
			}
			if isTerminalCall(s.pass, call) {
				return true
			}
		}
	case *ast.SendStmt:
		s.reportBlocking(n.Pos(), "channel send", st)
		s.expr(n.Chan, st)
		s.expr(n.Value, st)
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			s.expr(e, st)
		}
		for _, e := range n.Lhs {
			s.expr(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.expr(e, st)
					}
				}
			}
		}
	case *ast.DeferStmt:
		s.applyDefer(n, st)
	case *ast.GoStmt:
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			s.checkFunc(lit.Body)
		}
		for _, e := range n.Call.Args {
			s.expr(e, st)
		}
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			s.expr(e, st)
		}
		for key, h := range st {
			if !h.deferred {
				s.pass.Reportf(n.Pos(),
					"returns with %s still %sed (acquired at line %d); unlock on every path or defer the unlock",
					key, h.op, s.line(h.pos))
			}
		}
		return true
	case *ast.IfStmt:
		if n.Init != nil {
			s.stmt(n.Init, st)
		}
		s.expr(n.Cond, st)
		thenSt := st.clone()
		thenTerm := s.stmts(n.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if n.Else != nil {
			elseTerm = s.stmt(n.Else, elseSt)
		}
		mergeBranches(st, []branchExit{{thenSt, thenTerm}, {elseSt, elseTerm}})
		return thenTerm && elseTerm
	case *ast.BlockStmt:
		return s.stmts(n.List, st)
	case *ast.ForStmt:
		if n.Init != nil {
			s.stmt(n.Init, st)
		}
		if n.Cond != nil {
			s.expr(n.Cond, st)
		}
		bodySt := st.clone()
		s.stmts(n.Body.List, bodySt)
		if n.Post != nil {
			s.stmt(n.Post, bodySt)
		}
		mergeBranches(st, []branchExit{{bodySt, false}})
	case *ast.RangeStmt:
		s.expr(n.X, st)
		bodySt := st.clone()
		s.stmts(n.Body.List, bodySt)
		mergeBranches(st, []branchExit{{bodySt, false}})
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return s.switchStmt(n, st)
	case *ast.SelectStmt:
		return s.selectStmt(n, st)
	case *ast.LabeledStmt:
		return s.stmt(n.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto leave this lexical walk; treated as
		// terminating the current path (conservative, may miss a held
		// lock flowing around a loop edge).
		return true
	case *ast.IncDecStmt:
		s.expr(n.X, st)
	}
	return false
}

type branchExit struct {
	st         lockState
	terminated bool
}

// mergeBranches folds the exits of the non-terminated branches back
// into st: a lock is considered held after the merge if any live branch
// exits holding it (union — conservative on "forgot to unlock in one
// arm" at the cost of over-reporting never-taken paths).
func mergeBranches(st lockState, exits []branchExit) {
	for k := range st {
		delete(st, k)
	}
	for _, exit := range exits {
		if exit.terminated {
			continue
		}
		for k, h := range exit.st {
			if prev, ok := st[k]; ok {
				prev.deferred = prev.deferred || h.deferred
			} else {
				st[k] = h
			}
		}
	}
}

func (s *lockSim) switchStmt(stmt ast.Stmt, st lockState) bool {
	var body *ast.BlockStmt
	hasDefault := false
	switch n := stmt.(type) {
	case *ast.SwitchStmt:
		if n.Init != nil {
			s.stmt(n.Init, st)
		}
		if n.Tag != nil {
			s.expr(n.Tag, st)
		}
		body = n.Body
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			s.stmt(n.Init, st)
		}
		s.stmt(n.Assign, st)
		body = n.Body
	}
	var exits []branchExit
	for _, c := range body.List {
		clause := c.(*ast.CaseClause)
		if clause.List == nil {
			hasDefault = true
		}
		cs := st.clone()
		exits = append(exits, branchExit{cs, s.stmts(clause.Body, cs)})
	}
	if !hasDefault {
		exits = append(exits, branchExit{st.clone(), false})
	}
	allTerm := len(exits) > 0
	for _, e := range exits {
		if !e.terminated {
			allTerm = false
		}
	}
	mergeBranches(st, exits)
	return allTerm
}

func (s *lockSim) selectStmt(n *ast.SelectStmt, st lockState) bool {
	hasDefault := false
	for _, c := range n.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		s.reportBlocking(n.Pos(), "select without a default case", st)
	}
	var exits []branchExit
	for _, c := range n.Body.List {
		clause := c.(*ast.CommClause)
		cs := st.clone()
		// The comm operation itself is covered by the select-level
		// check above (a select with a default never blocks), so it is
		// deliberately not walked as a standalone send/receive here.
		exits = append(exits, branchExit{cs, s.stmts(clause.Body, cs)})
	}
	allTerm := len(exits) > 0
	for _, e := range exits {
		if !e.terminated {
			allTerm = false
		}
	}
	mergeBranches(st, exits)
	return allTerm
}

// applyDefer handles defer statements: a deferred Unlock (directly or
// inside a deferred closure) marks the lock as released-at-exit; any
// other deferred closure is lock-checked independently.
func (s *lockSim) applyDefer(n *ast.DeferStmt, st lockState) {
	if key, op, ok := mutexCall(s.pass, n.Call); ok && (op == "Unlock" || op == "RUnlock") {
		if h, held := st[key]; held {
			h.deferred = true
		}
		return
	}
	if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, op, ok := mutexCall(s.pass, call); ok && (op == "Unlock" || op == "RUnlock") {
				if h, held := st[key]; held {
					h.deferred = true
				}
			}
			return true
		})
		s.checkFunc(lit.Body)
	}
}

// applyLockOp updates st for a direct mutex call and reports whether
// the call was one.
func (s *lockSim) applyLockOp(call *ast.CallExpr, st lockState) bool {
	key, op, ok := mutexCall(s.pass, call)
	if !ok {
		return false
	}
	switch op {
	case "Lock", "RLock":
		st[key] = &heldLock{pos: call.Pos(), op: op}
	case "Unlock", "RUnlock":
		delete(st, key)
	}
	return true
}

// expr scans an expression for blocking operations performed in the
// current lock state. Function literals are checked as independent
// functions and not descended into here.
func (s *lockSim) expr(e ast.Expr, st lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.checkFunc(n.Body)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.reportBlocking(n.Pos(), "channel receive", st)
			}
		case *ast.CallExpr:
			if what, ok := blockingCall(s.pass, n); ok {
				s.reportBlocking(n.Pos(), what, st)
			}
		}
		return true
	})
}

func (s *lockSim) reportBlocking(pos token.Pos, what string, st lockState) {
	for key, h := range st {
		s.pass.Reportf(pos,
			"%s while holding %s (acquired at line %d); blocking under a mutex stalls every contender — move the operation outside the critical section",
			what, key, s.line(h.pos))
	}
}

// mutexCall recognizes E.Lock / E.RLock / E.Unlock / E.RUnlock where
// the method is sync.(*Mutex) or sync.(*RWMutex) (including through
// embedding) and returns the lock key (the printed receiver expression)
// and operation name.
func mutexCall(pass *Pass, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// blockingCall recognizes direct calls that can block indefinitely or
// perform I/O: net/http round-trips and os.File writes/syncs.
func blockingCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "net/http":
		return "net/http " + fn.Name() + " round-trip", true
	case "os":
		switch fn.Name() {
		case "Write", "WriteString", "WriteAt", "Sync", "ReadFrom", "Truncate":
			if recvIsOSFile(fn) {
				return "os.File " + fn.Name(), true
			}
		}
	}
	return "", false
}

func recvIsOSFile(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	return isNamed && named.Obj().Name() == "File" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "os"
}

// isTerminalCall reports calls that never return: panic, os.Exit,
// log.Fatal*, runtime.Goexit.
func isTerminalCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := pass.Pkg.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		fn, ok := pass.Pkg.Info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "log":
			return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln"
		case "runtime":
			return fn.Name() == "Goexit"
		}
	}
	return false
}
