package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatOrder flags floating-point accumulation whose order depends on
// Go map iteration: ranging over a map and folding float values with
// += / -= / *= / /= or sum = sum + v (directly, or one call deep into a
// function that accumulates floats into shared state). Map iteration
// order is deliberately randomized by the runtime, and float addition
// and multiplication are not associative (each op rounds), so such a
// fold produces a different bit pattern on every run — the canonical
// way this repo silently loses byte-identical digest parity between
// replay tiers. float32 folds round twice as coarsely as float64, so
// the f32 compute tier's accumulation paths are held to the same rule.
// The fix is to sort the keys (or accumulate into per-key slots) before
// folding.
var FloatOrder = &Analyzer{
	Name: "floatorder",
	Doc:  "flag float accumulation ordered by map iteration (breaks bit-exact digest parity)",
	Run:  runFloatOrder,
}

func runFloatOrder(pass *Pass) {
	decls := funcDeclIndex(pass.Pkg)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Pkg.Info.Types[rng.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rng, decls)
			return true
		})
	}
}

// funcDeclIndex maps the package's own function objects to their
// declarations, for the one-call-deep accumulation check.
func funcDeclIndex(pkg *Package) map[*types.Func]*ast.FuncDecl {
	idx := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
					idx[obj] = fn
				}
			}
		}
	}
	return idx
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, decls map[*types.Func]*ast.FuncDecl) {
	keyObj := rangeVarObj(pass, rng.Key)
	valObj := rangeVarObj(pass, rng.Value)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if lhs, ok := floatAccumTarget(pass, n); ok {
				// An indexed write keyed by the loop variable hits a
				// distinct slot per iteration (out[k] += v), so order
				// across iterations cannot change any slot's value.
				if keyObj != nil && indexedByVar(pass, lhs, keyObj) {
					return true
				}
				pass.Reportf(n.Pos(),
					"floating-point accumulation into %s is ordered by map iteration (range at line %d); float addition is not associative, so the result differs run to run — sort the keys before folding",
					exprString(lhs), pass.Pkg.Fset.Position(rng.Pos()).Line)
			}
		case *ast.CallExpr:
			checkCallDeepAccum(pass, rng, n, keyObj, valObj, decls)
		}
		return true
	})
}

func rangeVarObj(pass *Pass, e ast.Expr) types.Object {
	ident, ok := e.(*ast.Ident)
	if !ok || ident.Name == "_" {
		return nil
	}
	return pass.Pkg.Info.Defs[ident]
}

// floatAccumTarget reports whether the assignment folds a float into
// its left-hand side: x += v, x -= v, x *= v, x /= v, or the spelled-out
// x = x <op> v forms. Products are folds too — each multiply rounds, so
// reordering changes the bits just like addition does (the f32 tier's
// scale/normalisation paths fold this way).
func floatAccumTarget(pass *Pass, n *ast.AssignStmt) (ast.Expr, bool) {
	switch n.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(n.Lhs) == 1 && isFloat(pass, n.Lhs[0]) {
			return n.Lhs[0], true
		}
	case token.ASSIGN:
		if len(n.Lhs) != 1 || len(n.Rhs) != 1 || !isFloat(pass, n.Lhs[0]) {
			return nil, false
		}
		bin, ok := n.Rhs[0].(*ast.BinaryExpr)
		if !ok {
			return nil, false
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
		default:
			return nil, false
		}
		if sameIdentObj(pass, n.Lhs[0], bin.X) || sameIdentObj(pass, n.Lhs[0], bin.Y) {
			return n.Lhs[0], true
		}
	}
	return nil, false
}

func isFloat(pass *Pass, e ast.Expr) bool {
	t := pass.Pkg.Info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func sameIdentObj(pass *Pass, a, b ast.Expr) bool {
	ai, ok1 := a.(*ast.Ident)
	bi, ok2 := b.(*ast.Ident)
	if !ok1 || !ok2 {
		return false
	}
	ao := pass.Pkg.Info.Uses[ai]
	if ao == nil {
		ao = pass.Pkg.Info.Defs[ai]
	}
	bo := pass.Pkg.Info.Uses[bi]
	return ao != nil && ao == bo
}

// indexedByVar reports whether lhs is an index expression whose index
// mentions the given loop variable (a per-key slot).
func indexedByVar(pass *Pass, lhs ast.Expr, obj types.Object) bool {
	idx, ok := lhs.(*ast.IndexExpr)
	return ok && mentionsObj(pass, idx.Index, obj)
}

func mentionsObj(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok && pass.Pkg.Info.Uses[ident] == obj {
			found = true
		}
		return !found
	})
	return found
}

// checkCallDeepAccum flags calls, one level deep, that accumulate
// floats into state shared across iterations: the callee is declared in
// this package, an argument (or the method receiver) mentions a range
// variable, and the callee body folds floats into memory visible to the
// caller (a field, an element write not keyed per iteration, a pointer
// dereference, or a package-level variable).
func checkCallDeepAccum(pass *Pass, rng *ast.RangeStmt, call *ast.CallExpr, keyObj, valObj types.Object, decls map[*types.Func]*ast.FuncDecl) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return
	}
	decl, ok := decls[fn]
	if !ok || decl.Body == nil {
		return
	}
	carriesLoopData := false
	for _, arg := range call.Args {
		if (keyObj != nil && mentionsObj(pass, arg, keyObj)) || (valObj != nil && mentionsObj(pass, arg, valObj)) {
			carriesLoopData = true
			break
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && !carriesLoopData {
		carriesLoopData = (keyObj != nil && mentionsObj(pass, sel.X, keyObj)) ||
			(valObj != nil && mentionsObj(pass, sel.X, valObj))
	}
	if !carriesLoopData {
		return
	}
	if target, ok := accumulatesSharedFloats(pass, decl); ok {
		pass.Reportf(call.Pos(),
			"call to %s accumulates floats into %s, one call below a range over a map (line %d); iteration order changes the result — sort the keys before folding",
			fn.Name(), target, pass.Pkg.Fset.Position(rng.Pos()).Line)
	}
}

func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.Pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// accumulatesSharedFloats reports whether the function body contains a
// float fold whose target outlives one call: a selector (field), an
// index or star expression, or an identifier bound outside the function
// (package-level state).
func accumulatesSharedFloats(pass *Pass, decl *ast.FuncDecl) (string, bool) {
	target, found := "", false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		lhs, ok := floatAccumTarget(pass, assign)
		if !ok {
			return true
		}
		switch l := lhs.(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			target, found = exprString(lhs), true
		case *ast.Ident:
			if obj := pass.Pkg.Info.Uses[l]; obj != nil && obj.Parent() == pass.Pkg.Types.Scope() {
				target, found = exprString(lhs), true
			}
		}
		return !found
	})
	return target, found
}
