package analysis

import (
	"go/ast"
	"go/types"
)

// clockRestrictedPkgs are the package-path suffixes where wall-clock
// reads are forbidden. These are the packages on the deterministic
// replay path: state updates are driven by event timestamps (the
// virtual clock), so sequential, parallel, batched, HTTP and clustered
// replays of the same log produce byte-identical states and digests. A
// single time.Now() in one of them re-introduces wall-clock dependence
// and silently breaks that parity — or, in the statestore, breaks the
// virtual-clock eviction discipline (idle eviction must compare event
// time against event time, never against the host's clock).
var clockRestrictedPkgs = []string{
	"internal/serving",
	"internal/statestore",
	"internal/nn",
	"internal/tensor",
	"internal/cluster",
	"internal/replication",
	// The fault layer sits inside the replay-deterministic packages above;
	// a wall-clock read there (e.g. seeding a rule PRNG from time.Now)
	// would make chaos scenarios unreplayable. Delays use timers only.
	"internal/faults",
	// The wire protocol carries the replay-deterministic hot path between
	// processes; event time must come from the frames, never the host
	// clock. Timeouts use timers and watchdogs, not time.Now arithmetic.
	"internal/wire",
}

// clockFuncs are the forbidden time-package reads.
var clockFuncs = map[string]bool{"Now": true, "Since": true}

// VirtualClock forbids time.Now/time.Since in replay-deterministic
// packages except at annotated seams.
var VirtualClock = &Analyzer{
	Name: "virtualclock",
	Doc:  "forbid wall-clock reads (time.Now/time.Since) in replay-deterministic packages",
	Run:  runVirtualClock,
}

func runVirtualClock(pass *Pass) {
	restricted := false
	for _, suffix := range clockRestrictedPkgs {
		if pkgPathHasSuffix(pass.Pkg.PkgPath, suffix) {
			restricted = true
			break
		}
	}
	if !restricted {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !clockFuncs[sel.Sel.Name] {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Pkg.Info.Uses[ident].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(call.Pos(),
				"wall-clock read time.%s in replay-deterministic package %s; derive time from event timestamps (the virtual clock) or annotate a reviewed seam with //pplint:allow virtualclock",
				sel.Sel.Name, pass.Pkg.PkgPath)
			return true
		})
	}
}
