package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked, non-test package of the module under
// analysis. Test files are deliberately excluded: the invariants pplint
// encodes (virtual-clock discipline, digest-stable float order, lock
// hygiene, durability errors) guard production replay paths; tests use
// wall clocks and ad-hoc arithmetic legitimately.
type Package struct {
	// PkgPath is the full import path (e.g. "repro/internal/serving").
	PkgPath string
	// Dir is the absolute directory the package was loaded from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks the packages of a single module using
// only the standard library: module-internal imports are resolved
// recursively from source, standard-library imports go through the
// go/importer "source" compiler (no compiled export data needed, so it
// works on a bare toolchain with an empty build cache).
//
// This is the stdlib fallback for golang.org/x/tools/go/analysis: the
// sandbox this repo grows in cannot fetch external modules, so the
// analyzer suite runs on this loader instead of multichecker. The
// Analyzer/Pass surface mirrors the x/tools shape closely enough that a
// future PR with network access could swap the driver without touching
// the analyzer logic.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
	// loading guards against import cycles, which would otherwise
	// recurse forever; the go compiler rejects them anyway, so hitting
	// one here is a hard error.
	loading map[string]bool
}

// NewLoader opens the module rooted at dir (the directory containing
// go.mod) and prepares a loader for its packages.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: abs,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// LoadAll discovers every directory under the module root that holds at
// least one non-test .go file and loads it. Directories named testdata,
// hidden directories, and _-prefixed directories are skipped, matching
// the go tool's package discovery rules.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		importPath := l.ModulePath
		if rel != "." {
			importPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Load(importPath)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") && buildsHere(dir, name) {
			return true
		}
	}
	return false
}

// buildsHere reports whether the file participates in the build for the
// host configuration, honouring //go:build lines and _GOOS/_GOARCH
// filename suffixes exactly as `go build` does. Without this, paired
// files like gemm32_amd64.go / gemm32_noasm.go would both load and
// redeclare each other's symbols.
func buildsHere(dir, name string) bool {
	ok, err := build.Default.MatchFile(dir, name)
	return err == nil && ok
}

// Load parses and type-checks the module package with the given import
// path (memoized).
func (l *Loader) Load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !buildsHere(dir, name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importerFunc(func(path string) (*types.Package, error) {
		if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
			pkg, err := l.Load(path)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
		return l.std.Import(path)
	})}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		PkgPath: importPath,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// importerFunc adapts a function to the types.Importer interface.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
