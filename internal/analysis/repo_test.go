package analysis

import (
	"path/filepath"
	"testing"
)

// TestRepoIsClean is the meta-test behind the CI gate: the full
// analyzer suite over the real module must report nothing. Every
// invariant violation is either fixed or carries a reviewed
// //pplint:allow seam; a new finding here means a new wall-clock read,
// map-ordered float fold, lock leak or dropped durability error crept
// into the tree.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("opening module at %s: %v", root, err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages — loader is missing most of the module", len(pkgs))
	}
	diags := RunAnalyzers(pkgs, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("pplint over the real repo must be clean: %d finding(s)", len(diags))
	}
}

// TestLoaderResolvesModuleImports pins the loader's two import planes:
// module-internal packages come back type-checked against each other,
// and stdlib packages resolve through the source importer.
func TestLoaderResolvesModuleImports(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModulePath != "repro" {
		t.Fatalf("module path = %q, want repro", loader.ModulePath)
	}
	pkg, err := loader.Load("repro/internal/serving")
	if err != nil {
		t.Fatalf("loading internal/serving: %v", err)
	}
	if pkg.Types == nil || pkg.Types.Name() != "serving" {
		t.Fatalf("internal/serving type-checked as %v", pkg.Types)
	}
	// Loading again must hit the memo (same pointer).
	again, err := loader.Load("repro/internal/serving")
	if err != nil || again != pkg {
		t.Fatalf("memoization broken: %p vs %p (err %v)", pkg, again, err)
	}
}

// TestFloatOrderChecksTensorF32 pins the f32 kernel files inside the
// analyzer's checked set: the repo-clean gate only covers the f32
// accumulation paths if the loader actually parses them. A build-tag or
// loader regression that silently drops tensor32/gemm32 would otherwise
// leave the fast tier unchecked while the gate stays green.
func TestFloatOrderChecksTensorF32(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load("repro/internal/tensor")
	if err != nil {
		t.Fatalf("loading internal/tensor: %v", err)
	}
	want := map[string]bool{"tensor32.go": false, "gemm32.go": false, "arena32.go": false}
	for _, f := range pkg.Files {
		name := filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
		if _, ok := want[name]; ok {
			want[name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("f32 file %s missing from the floatorder checked set", name)
		}
	}
}
