package analysis

import (
	"go/ast"
	"go/types"
)

// WALErrCheck flags discarded error results on the durability surface.
// A dropped error from the statestore's append/snapshot/rotate/fsync
// path, or from an Export/Import/Snapshot seam, means state the caller
// believes is acknowledged may not survive a crash — the exact failure
// the WAL exists to prevent. Three rules:
//
//  1. any call into a package ending in internal/statestore or
//     internal/wire whose last result is an error must consume that
//     error (a dropped frame-write error is an acknowledged-but-lost
//     frame — the wire twin of a lost WAL append);
//  2. any call to a method named Snapshot, Export or Import returning
//     an error must consume it, whatever the receiver — this covers the
//     serving/server interface seams (e.g. server.Options.State) where
//     the static callee is an interface, not *statestore.Store;
//  3. inside internal/statestore itself, os-package file mutations
//     (Write/Sync/Close/Truncate/Rename/Remove/WriteFile/...) must
//     consume their errors: the fsync surface is the durability floor.
//
// Discarding covers expression statements, defer/go statements, and
// assigning the error position to the blank identifier. Best-effort
// sites must say so with //pplint:allow walerrcheck.
var WALErrCheck = &Analyzer{
	Name: "walerrcheck",
	Doc:  "no discarded errors from the statestore durability surface or Export/Import/Snapshot seams",
	Run:  runWALErrCheck,
}

// osDurabilityFuncs are the os-package calls rule 3 guards.
var osDurabilityFuncs = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true, "Sync": true,
	"Close": true, "Truncate": true, "Rename": true, "Remove": true,
	"RemoveAll": true, "Mkdir": true, "MkdirAll": true, "WriteFile": true,
}

// seamMethodNames are the cross-package durability seams of rule 2.
var seamMethodNames = map[string]bool{"Snapshot": true, "Export": true, "Import": true}

func runWALErrCheck(pass *Pass) {
	inStateStore := pkgPathHasSuffix(pass.Pkg.PkgPath, "internal/statestore")
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, guarded := guardedCall(pass, call, inStateStore); guarded {
						pass.Reportf(n.Pos(), "error result of %s discarded; a dropped durability error means acknowledged-but-lost state — handle it or annotate a best-effort site with //pplint:allow walerrcheck", name)
					}
				}
			case *ast.DeferStmt:
				if name, guarded := guardedCall(pass, n.Call, inStateStore); guarded {
					pass.Reportf(n.Pos(), "deferred %s discards its error; capture it (e.g. into a named return) or handle it inline", name)
				}
			case *ast.GoStmt:
				if name, guarded := guardedCall(pass, n.Call, inStateStore); guarded {
					pass.Reportf(n.Pos(), "go %s discards its error; collect it through a channel or errgroup-style wait", name)
				}
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, n, inStateStore)
			}
			return true
		})
	}
}

// checkBlankErrAssign flags `_ = guarded()` and `v, _ := guarded()`
// where the blank identifier sits at the error result position.
func checkBlankErrAssign(pass *Pass, n *ast.AssignStmt, inStateStore bool) {
	if len(n.Rhs) != 1 {
		return
	}
	call, ok := n.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, guarded := guardedCall(pass, call, inStateStore)
	if !guarded {
		return
	}
	// The error is the callee's last result; with the 1:1 tuple
	// assignment form the last LHS receives it.
	last := n.Lhs[len(n.Lhs)-1]
	if ident, ok := last.(*ast.Ident); ok && ident.Name == "_" {
		pass.Reportf(n.Pos(), "error result of %s assigned to _; handle it or annotate a reviewed discard with //pplint:allow walerrcheck", name)
	}
}

// guardedCall reports whether the call's error result is protected by
// the durability rules, returning a printable callee name.
func guardedCall(pass *Pass, call *ast.CallExpr, inStateStore bool) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !types.Identical(last, types.Universe.Lookup("error").Type()) {
		return "", false
	}
	name := types.ExprString(call.Fun)
	switch {
	case pkgPathHasSuffix(fn.Pkg().Path(), "internal/statestore"):
		return name, true
	// The wire protocol is a delivery surface with the same failure shape:
	// a dropped write/flush error means an acknowledged-but-lost frame.
	case pkgPathHasSuffix(fn.Pkg().Path(), "internal/wire"):
		return name, true
	case sig.Recv() != nil && seamMethodNames[fn.Name()]:
		return name, true
	case inStateStore && fn.Pkg().Path() == "os" && osDurabilityFuncs[fn.Name()]:
		return name, true
	}
	return "", false
}
