// Fixture: internal/serving is a replay-deterministic package, so
// wall-clock reads must flag unless a seam is annotated.
package serving

import "time"

// Bad: raw wall-clock read on a replay path.
func Bad() int64 {
	return time.Now().Unix() // want "wall-clock read time.Now"
}

// Bad: durations measured off the wall clock.
func BadSince(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // want "wall-clock read time.Since"
}

// GoodFuncLevel is a reviewed seam: the whole function is allowed via
// its doc comment.
//
//pplint:allow virtualclock
func GoodFuncLevel() int64 {
	return time.Now().Unix()
}

// GoodLineLevel allows a single read on the line above it.
func GoodLineLevel() int64 {
	//pplint:allow virtualclock
	return time.Now().Unix()
}

// GoodTrailing allows a single read with a trailing comment.
func GoodTrailing() int64 {
	return time.Now().Unix() //pplint:allow virtualclock
}

// GoodVirtual derives time from an event timestamp — the pattern the
// analyzer wants.
func GoodVirtual(eventTS int64) time.Time {
	return time.Unix(eventTS, 0)
}
