// Fixture: internal/experiments is not a replay-deterministic package,
// so wall-clock reads are free here.
package experiments

import "time"

// Free measures wall time legitimately (benchmark harness territory).
func Free() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}
