module fixvc

go 1.24
