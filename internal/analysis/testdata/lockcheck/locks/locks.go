// Fixture for lockcheck: leaked locks on return paths and blocking
// operations under a held mutex must flag; the disciplined patterns the
// repo actually uses must pass.
package locks

import (
	"errors"
	"net/http"
	"os"
	"sync"
)

var errSentinel = errors.New("boom")

// S carries one of everything the analyzer cares about.
type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	f  *os.File
	n  int
}

// LeakOnError forgets the unlock on the early-return path.
func (s *S) LeakOnError(fail bool) error {
	s.mu.Lock()
	if fail {
		return errSentinel // want "returns with s.mu still Locked"
	}
	s.mu.Unlock()
	return nil
}

// LeakRead leaks a read lock through the return.
func (s *S) LeakRead() int {
	s.rw.RLock()
	return s.n // want "returns with s.rw still RLocked"
}

// LeakNoReturn falls off the end still holding the mutex.
func (s *S) LeakNoReturn() {
	s.mu.Lock()
	s.n++
} // want "function exits with s.mu still Locked"

// SendUnderLock blocks on a channel send inside the critical section.
func (s *S) SendUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want "channel send while holding s.mu"
}

// RecvUnderLock blocks on a channel receive inside the critical section.
func (s *S) RecvUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "channel receive while holding s.mu"
}

// FetchUnderLock performs an HTTP round-trip under the mutex.
func (s *S) FetchUnderLock(c *http.Client, url string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := c.Get(url) // want "net/http Get round-trip while holding s.mu"
	return err
}

// WriteUnderLock writes a file under the mutex.
func (s *S) WriteUnderLock(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.f.Write(b) // want "os.File Write while holding s.mu"
	return err
}

// SelectUnderLock parks on a default-less select under the mutex.
func (s *S) SelectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select without a default case while holding s.mu"
	case v := <-s.ch:
		s.n = v
	}
}

// UnlockBothPaths releases explicitly on every return path; must pass.
func (s *S) UnlockBothPaths(fail bool) error {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return errSentinel
	}
	s.mu.Unlock()
	return nil
}

// DeferUnlock uses the deferred release; must pass.
func (s *S) DeferUnlock(fail bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fail {
		return errSentinel
	}
	return nil
}

// DeferClosureUnlock releases inside a deferred closure; must pass.
func (s *S) DeferClosureUnlock() {
	s.mu.Lock()
	defer func() {
		s.n++
		s.mu.Unlock()
	}()
	s.n++
}

// GuardedSend is the senders-hold-RLock / closer-holds-Lock idiom: the
// select has a default, so the send cannot block; must pass.
func (s *S) GuardedSend(v int) bool {
	s.rw.RLock()
	defer s.rw.RUnlock()
	select {
	case s.ch <- v:
		return true
	default:
		return false
	}
}

// SendAfterUnlock moves the blocking op outside the critical section;
// must pass.
func (s *S) SendAfterUnlock(v int) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- v
}

// PanicPath never returns normally while holding the lock; must pass.
func (s *S) PanicPath(fail bool) {
	s.mu.Lock()
	if fail {
		panic("boom")
	}
	s.mu.Unlock()
}

// AllowedRecv is an annotated drain seam (collect-under-read-lock by
// design); must pass.
func (s *S) AllowedRecv() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	//pplint:allow lockcheck
	return <-s.ch
}
