module fixlock

go 1.24
