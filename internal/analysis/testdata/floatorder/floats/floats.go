// Fixture for floatorder: float folds ordered by map iteration must
// flag; per-key slots, integer folds, sorted-key folds and annotated
// seams must pass.
package floats

import "sort"

// Acc accumulates into shared state one call below the range.
type Acc struct{ total float64 }

// Add folds v into the accumulator.
func (a *Acc) Add(v float64) { a.total += v }

// SumMap is the canonical parity-loser: a direct += fold in map order.
func SumMap(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "ordered by map iteration"
	}
	return sum
}

// SumMapExplicit spells the fold as sum = sum + v.
func SumMapExplicit(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want "ordered by map iteration"
	}
	return sum
}

// SumVia folds one call deep through an accumulator method.
func SumVia(m map[string]float64) float64 {
	var acc Acc
	for _, v := range m {
		acc.Add(v) // want "accumulates floats into"
	}
	return acc.total
}

// Rescale writes a distinct slot per key: order across iterations
// cannot change any slot, so it must pass.
func Rescale(m, out map[string]float64) {
	for k, v := range m {
		out[k] += v * 0.5
	}
}

// CountMap folds integers, which are associative; must pass.
func CountMap(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// SumSorted is the prescribed fix: sort the keys, fold over the slice.
func SumSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// SumTolerant is an annotated seam (an aggregate compared with a
// tolerance, never digested).
func SumTolerant(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //pplint:allow floatorder
	}
	return sum
}

// SumMap32 folds float32 in map order: the f32 compute tier's
// accumulators round twice as coarsely, so the same rule applies.
func SumMap32(m map[string]float32) float32 {
	var sum float32
	for _, v := range m {
		sum += v // want "ordered by map iteration"
	}
	return sum
}

// ProdMap32 folds a product; each multiply rounds, so order changes the
// bits exactly like addition.
func ProdMap32(m map[string]float32) float32 {
	prod := float32(1)
	for _, v := range m {
		prod *= v // want "ordered by map iteration"
	}
	return prod
}

// ScaleDown spells the quotient fold as scale = scale / v.
func ScaleDown(m map[string]float64) float64 {
	scale := 1.0
	for _, v := range m {
		scale = scale / v // want "ordered by map iteration"
	}
	return scale
}

// Rescale32 writes a distinct f32 slot per key; must pass.
func Rescale32(m, out map[string]float32) {
	for k, v := range m {
		out[k] *= v
	}
}
