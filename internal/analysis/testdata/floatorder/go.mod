module fixfloat

go 1.24
