module fixwal

go 1.24
