package statestore

import "os"

// cleanup discards os-surface errors inside the statestore package
// itself — the fsync surface is the durability floor, so both flag.
func cleanup(f *os.File, tmp string) {
	f.Close()      // want "error result of f.Close discarded"
	os.Remove(tmp) // want "error result of os.Remove discarded"
}

// goodCleanup propagates both; must pass.
func goodCleanup(f *os.File, tmp string) error {
	if err := f.Close(); err != nil {
		return err
	}
	return os.Remove(tmp)
}
