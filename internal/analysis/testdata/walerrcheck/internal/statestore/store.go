// Fixture: a miniature durability surface with the real statestore's
// API shape. Any caller discarding these errors must flag.
package statestore

// Store is the stand-in durable store.
type Store struct{}

// Open opens a store.
func Open(dir string) (*Store, error) { return &Store{}, nil }

// Close flushes and closes the WAL.
func (s *Store) Close() error { return nil }

// Snapshot forces a snapshot + WAL rotation.
func (s *Store) Snapshot() error { return nil }

// Export streams stored entries.
func (s *Store) Export(match func(string) bool, emit func(string, []byte) error) error {
	return nil
}

// Keys lists keys (no error: must never flag).
func (s *Store) Keys() []string { return nil }
