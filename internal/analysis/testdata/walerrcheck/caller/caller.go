// Fixture: callers of the durability surface, both through the
// concrete store and through an interface seam.
package caller

import (
	"fmt"

	"fixwal/internal/statestore"
)

// snapshotter mirrors the server.Options.State seam: the static callee
// is an interface method, not *statestore.Store.
type snapshotter interface {
	Snapshot() error
}

// Bad discards durability errors three ways.
func Bad(s *statestore.Store) {
	s.Snapshot()     // want "error result of s.Snapshot discarded"
	_ = s.Snapshot() // want "error result of s.Snapshot assigned to _"
	defer s.Close()  // want "deferred s.Close discards its error"
}

// BadSeam discards through the interface seam.
func BadSeam(s snapshotter) {
	s.Snapshot() // want "error result of s.Snapshot discarded"
}

// BadOpen blanks the error position of a statestore call.
func BadOpen() {
	_, _ = statestore.Open("dir") // want "error result of statestore.Open assigned to _"
}

// Good consumes every error; must pass.
func Good(s *statestore.Store) error {
	if err := s.Snapshot(); err != nil {
		return err
	}
	return s.Close()
}

// GoodDefer captures the deferred close into the named return; must
// pass.
func GoodDefer(s *statestore.Store) (err error) {
	defer func() {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return s.Snapshot()
}

// GoodAllowed is an annotated best-effort seam; must pass.
func GoodAllowed(s *statestore.Store) {
	s.Snapshot() //pplint:allow walerrcheck
}

// GoodUnguarded discards an error outside the durability surface; the
// analyzer must not fire on generic error-returning calls.
func GoodUnguarded() {
	fmt.Println("not a durability call")
}

// GoodKeys calls an error-free method; must pass.
func GoodKeys(s *statestore.Store) int { return len(s.Keys()) }
