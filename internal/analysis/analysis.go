// Package analysis implements pplint, a suite of project-specific static
// analyzers that encode this repo's serving and durability invariants:
//
//   - virtualclock — no wall-clock reads in replay-deterministic packages
//   - floatorder — no float accumulation ordered by Go map iteration
//   - lockcheck — every Lock has an Unlock on all return paths, and no
//     blocking operation runs while a shard/WAL mutex is held
//   - walerrcheck — no discarded errors on the durability surface
//
// The suite runs on a stdlib-only loader (see Loader) because the build
// sandbox cannot fetch golang.org/x/tools; the Analyzer/Pass shape
// mirrors x/tools/go/analysis so a multichecker driver could be swapped
// in later without rewriting the analyzers.
//
// Findings are suppressed at explicitly annotated seams with a
//
//	//pplint:allow <analyzer> [<analyzer>...]
//
// comment on the flagged line, on the line directly above it, or in the
// doc comment of the enclosing function declaration (which suppresses
// that analyzer for the whole function). An annotation is a claim that
// a human checked the site — e.g. a wall-clock read that only feeds an
// uptime gauge, never a replayed decision.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pass *Pass)
}

// A Diagnostic is one finding, already position-resolved.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
	allow *allowIndex
}

// Reportf records a finding unless an //pplint:allow seam covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.allow.covers(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{VirtualClock, FloatOrder, LockCheck, WALErrCheck}
}

// RunAnalyzers applies the given analyzers to the given packages and
// returns the findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow := buildAllowIndex(pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags, allow: allow}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// allowIndex records, per file, which lines and line ranges are covered
// by //pplint:allow annotations.
type allowIndex struct {
	// lines maps filename → line → analyzer names allowed on that line
	// and the line below it.
	lines map[string]map[int]map[string]bool
	// ranges covers whole function bodies whose doc comment carries an
	// annotation.
	ranges []allowRange
}

type allowRange struct {
	filename  string
	from, to  int
	analyzers map[string]bool
}

const allowPrefix = "pplint:allow"

// parseAllow extracts analyzer names from a "//pplint:allow a b" text.
func parseAllow(text string) map[string]bool {
	text = strings.TrimPrefix(strings.TrimPrefix(text, "//"), "/*")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, allowPrefix)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil
	}
	names := make(map[string]bool)
	for _, f := range strings.Fields(strings.TrimSuffix(rest, "*/")) {
		names[strings.TrimSuffix(f, ",")] = true
	}
	return names
}

func buildAllowIndex(pkg *Package) *allowIndex {
	idx := &allowIndex{lines: make(map[string]map[int]map[string]bool)}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				names := parseAllow(c.Text)
				if len(names) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := idx.lines[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					idx.lines[pos.Filename] = byLine
				}
				merge(byLine, pos.Line, names)
			}
		}
		// Function-level seams: an annotation anywhere in a FuncDecl's
		// doc comment covers the whole body.
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil || fn.Body == nil {
				continue
			}
			names := make(map[string]bool)
			for _, c := range fn.Doc.List {
				for n := range parseAllow(c.Text) {
					names[n] = true
				}
			}
			if len(names) == 0 {
				continue
			}
			from := pkg.Fset.Position(fn.Pos())
			to := pkg.Fset.Position(fn.Body.End())
			idx.ranges = append(idx.ranges, allowRange{
				filename:  from.Filename,
				from:      from.Line,
				to:        to.Line,
				analyzers: names,
			})
		}
	}
	return idx
}

func merge(byLine map[int]map[string]bool, line int, names map[string]bool) {
	if byLine[line] == nil {
		byLine[line] = make(map[string]bool)
	}
	for n := range names {
		byLine[line][n] = true
	}
}

func (idx *allowIndex) covers(pos token.Position, analyzer string) bool {
	if byLine := idx.lines[pos.Filename]; byLine != nil {
		// Same line (trailing comment) or the line directly above
		// (annotation on its own line).
		if byLine[pos.Line][analyzer] || byLine[pos.Line-1][analyzer] {
			return true
		}
	}
	for _, r := range idx.ranges {
		if r.filename == pos.Filename && r.from <= pos.Line && pos.Line <= r.to && r.analyzers[analyzer] {
			return true
		}
	}
	return false
}

// pkgPathHasSuffix reports whether pkgPath is exactly suffix or ends in
// "/"+suffix. Analyzers match packages by path suffix so the same rules
// apply to the real module ("repro/internal/serving") and to test
// fixture modules ("fixmod/internal/serving").
func pkgPathHasSuffix(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}
