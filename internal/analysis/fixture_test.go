package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Each fixture under testdata/ is a self-contained module seeded with
// known-bad code that must flag and known-good code (including
// //pplint:allow seams) that must pass. Expectations ride on the
// flagged lines as `// want "substring"` comments, analysistest-style:
// every want must be matched by exactly one diagnostic on that line,
// and every diagnostic must be claimed by a want.

func TestVirtualClockFixture(t *testing.T) {
	runFixture(t, "virtualclock", VirtualClock)
}

func TestFloatOrderFixture(t *testing.T) {
	runFixture(t, "floatorder", FloatOrder)
}

func TestLockCheckFixture(t *testing.T) {
	runFixture(t, "lockcheck", LockCheck)
}

func TestWALErrCheckFixture(t *testing.T) {
	runFixture(t, "walerrcheck", WALErrCheck)
}

type wantDiag struct {
	file string
	line int
	sub  string
}

var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

func runFixture(t *testing.T, name string, analyzer *Analyzer) {
	t.Helper()
	root := filepath.Join("testdata", name)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("opening fixture module: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("loading fixture packages: %v", err)
	}
	diags := RunAnalyzers(pkgs, []*Analyzer{analyzer})

	wants := collectWants(t, root)
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || filepath.Base(d.Pos.Filename) != w.file || d.Pos.Line != w.line {
				continue
			}
			if !strings.Contains(d.Message, w.sub) {
				t.Errorf("%s:%d: diagnostic %q does not contain want %q", w.file, w.line, d.Message, w.sub)
			}
			matched[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("%s:%d: want %q, got no diagnostic", w.file, w.line, w.sub)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// collectWants scans every fixture .go file for `// want "..."`
// markers.
func collectWants(t *testing.T, root string) []wantDiag {
	t.Helper()
	var wants []wantDiag
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				wants = append(wants, wantDiag{file: filepath.Base(path), line: i + 1, sub: m[1]})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning wants: %v", err)
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want markers", root)
	}
	return wants
}

// TestAllowFormats pins the annotation grammar the analyzers honour.
func TestAllowFormats(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//pplint:allow virtualclock", []string{"virtualclock"}},
		{"// pplint:allow lockcheck", []string{"lockcheck"}},
		{"//pplint:allow lockcheck walerrcheck", []string{"lockcheck", "walerrcheck"}},
		{"//pplint:allow virtualclock (uptime gauge only)", []string{"virtualclock"}},
		{"// a normal comment", nil},
		{"//pplint:allowother", nil},
	}
	for _, c := range cases {
		got := parseAllow(c.text)
		for _, name := range c.want {
			if !got[name] {
				t.Errorf("parseAllow(%q): missing %q (got %v)", c.text, name, got)
			}
		}
		if c.want == nil && len(got) != 0 {
			t.Errorf("parseAllow(%q): expected no names, got %v", c.text, got)
		}
	}
}

func ExampleDiagnostic() {
	d := Diagnostic{Analyzer: "virtualclock", Message: "wall-clock read"}
	d.Pos.Filename = "serving.go"
	d.Pos.Line, d.Pos.Column = 10, 2
	fmt.Println(d)
	// Output: serving.go:10:2: virtualclock: wall-clock read
}
