package nn

import "repro/internal/tensor"

// StackedCell composes recurrent cells vertically: the input feeds the
// bottom layer and each layer's hidden output feeds the next. §6.2 of the
// paper evaluates stacking GRU units and reports no meaningful improvement
// over a single unit (consistent with Beutel et al.); the stacked-cell
// ablation reproduces that comparison.
//
// The externally visible hidden vector is the *top* layer's hidden output;
// the full state is the concatenation of all layers' states.
type StackedCell struct {
	layers  []Cell
	offsets []int // state offset of each layer within the packed state
	total   int
}

// NewStackedCell stacks `layers` cells of the given kind. The bottom layer
// consumes inputSize; every other layer consumes the hidden output of the
// layer below.
func NewStackedCell(kind CellKind, inputSize, hiddenSize, layers int, rng *tensor.RNG) *StackedCell {
	if layers < 1 {
		panic("nn: NewStackedCell: need at least one layer")
	}
	s := &StackedCell{}
	in := inputSize
	for i := 0; i < layers; i++ {
		c := NewCell(kind, in, hiddenSize, rng)
		s.offsets = append(s.offsets, s.total)
		s.total += c.StateSize()
		s.layers = append(s.layers, c)
		in = hiddenSize
	}
	return s
}

// InputSize returns the bottom layer's input size.
func (s *StackedCell) InputSize() int { return s.layers[0].InputSize() }

// HiddenSize returns the top layer's hidden size.
func (s *StackedCell) HiddenSize() int { return s.layers[len(s.layers)-1].HiddenSize() }

// StateSize returns the packed state length across layers.
func (s *StackedCell) StateSize() int { return s.total }

// NumLayers returns the stack depth.
func (s *StackedCell) NumLayers() int { return len(s.layers) }

// Params returns all layers' parameters.
func (s *StackedCell) Params() Params {
	var ps Params
	for _, l := range s.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

type stackedCache struct {
	caches []StepCache
	// inputs[i] is the input fed to layer i (layer 0's input is the
	// external x, cached by the layer itself; upper layers consume lower
	// hidden outputs, needed to route gradients).
}

// layerState slices the packed state for layer i. The top layer is placed
// last so the visible hidden vector is the trailing HiddenSize components…
// — but Cell's contract exposes the *first* HiddenSize components. To
// honour it, the top layer's state is packed first.
func (s *StackedCell) layerState(state tensor.Vector, i int) tensor.Vector {
	// Layer order in the packed state: top layer first, then downwards.
	// packedIndex(layer i) = len-1-i.
	li := len(s.layers) - 1 - i
	start := s.offsets[li]
	return state[start : start+s.layers[i].StateSize()]
}

// Step advances all layers by one event.
func (s *StackedCell) Step(state, x tensor.Vector) (tensor.Vector, StepCache) {
	next := tensor.NewVector(s.total)
	cache := &stackedCache{caches: make([]StepCache, len(s.layers))}
	in := x
	for i, l := range s.layers {
		ns, c := l.Step(s.layerState(state, i), in)
		copy(s.layerState(next, i), ns)
		cache.caches[i] = c
		in = ns[:l.HiddenSize()]
	}
	return next, cache
}

// Backward propagates dNext through the stack (top layer first, feeding
// each layer's input gradient into the layer below's hidden gradient).
func (s *StackedCell) Backward(cache StepCache, dNext, dx, dPrev tensor.Vector) {
	cc := cache.(*stackedCache)
	n := len(s.layers)
	// Per-layer dNext views over a scratch copy so we can accumulate
	// inter-layer gradients without mutating the caller's dNext.
	scratch := dNext.Clone()
	var dPrevLayer []tensor.Vector
	if dPrev != nil {
		dPrevLayer = make([]tensor.Vector, n)
		for i := 0; i < n; i++ {
			dPrevLayer[i] = s.layerState(dPrev, i)
		}
	}
	for i := n - 1; i >= 0; i-- {
		l := s.layers[i]
		dNextI := s.layerState(scratch, i)
		var dxI tensor.Vector
		if i > 0 {
			dxI = tensor.NewVector(l.InputSize())
		} else if dx != nil {
			dxI = dx
		}
		var dPrevI tensor.Vector
		if dPrev != nil {
			dPrevI = dPrevLayer[i]
		}
		l.Backward(cc.caches[i], dNextI, dxI, dPrevI)
		if i > 0 {
			// The layer's input was the hidden output of layer i−1 at this
			// same timestep: fold its gradient into that layer's dNext.
			below := s.layerState(scratch, i-1)
			below[:s.layers[i-1].HiddenSize()].Add(dxI)
		}
	}
}
