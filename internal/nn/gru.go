package nn

import (
	"math"

	"repro/internal/tensor"
)

// GRUCell is a gated recurrent unit following the PyTorch nn.GRUCell
// equations and weight layout (gate order r, z, n):
//
//	r  = σ(W_ir·x + b_ir + W_hr·h + b_hr)
//	z  = σ(W_iz·x + b_iz + W_hz·h + b_hz)
//	n  = tanh(W_in·x + b_in + r ∘ (W_hn·h + b_hn))
//	h' = (1−z) ∘ n + z ∘ h
//
// This is the RNNupdate function of the paper (§6.1, eq. 1); the input x is
// the concatenation [f_i; A_i; T(Δt_i)].
type GRUCell struct {
	in, hidden int
	// Wih is (3·hidden)×in, Whh is (3·hidden)×hidden; rows [0,h) are the r
	// gate, [h,2h) the z gate, [2h,3h) the n gate.
	Wih, Whh, Bih, Bhh *Param

	// f32 holds the lazily built float32 shadow weights of the fast tier
	// (gru32.go). Built on first f32 use from the then-current f64 weights;
	// training updates after that point are not reflected — serving freezes
	// parameters before the fast tier is exercised.
	f32 gruF32
}

// NewGRUCell allocates a GRU cell with uniform(-1/√hidden, 1/√hidden)
// initialisation (the PyTorch default).
func NewGRUCell(inputSize, hiddenSize int, rng *tensor.RNG) *GRUCell {
	c := &GRUCell{
		in: inputSize, hidden: hiddenSize,
		Wih: NewMatrixParam("gru.Wih", 3*hiddenSize, inputSize),
		Whh: NewMatrixParam("gru.Whh", 3*hiddenSize, hiddenSize),
		Bih: NewVectorParam("gru.bih", 3*hiddenSize),
		Bhh: NewVectorParam("gru.bhh", 3*hiddenSize),
	}
	bound := 1 / math.Sqrt(float64(hiddenSize))
	c.Params().InitUniform(rng, bound)
	return c
}

// InputSize returns the per-step input length.
func (c *GRUCell) InputSize() int { return c.in }

// HiddenSize returns the hidden vector length.
func (c *GRUCell) HiddenSize() int { return c.hidden }

// StateSize equals HiddenSize for a GRU.
func (c *GRUCell) StateSize() int { return c.hidden }

// Params returns the cell's learnable parameters.
func (c *GRUCell) Params() Params { return Params{c.Wih, c.Whh, c.Bih, c.Bhh} }

type gruCache struct {
	x, hPrev   tensor.Vector
	r, z, n, q tensor.Vector // q = W_hn·h + b_hn, needed to route grads through r
}

// Step advances the hidden state by one session event.
func (c *GRUCell) Step(state, x tensor.Vector) (tensor.Vector, StepCache) {
	h := c.hidden
	gi := tensor.NewVector(3 * h) // W_ih·x + b_ih
	gh := tensor.NewVector(3 * h) // W_hh·h + b_hh
	c.Wih.Matrix().MulVec(gi, x)
	gi.Add(c.Bih.Value)
	c.Whh.Matrix().MulVec(gh, state)
	gh.Add(c.Bhh.Value)

	cache := &gruCache{
		x: x.Clone(), hPrev: state.Clone(),
		r: tensor.NewVector(h), z: tensor.NewVector(h),
		n: tensor.NewVector(h), q: tensor.NewVector(h),
	}
	next := tensor.NewVector(h)
	for i := 0; i < h; i++ {
		r := Sigmoid(gi[i] + gh[i])
		z := Sigmoid(gi[h+i] + gh[h+i])
		q := gh[2*h+i]
		n := math.Tanh(gi[2*h+i] + r*q)
		cache.r[i], cache.z[i], cache.n[i], cache.q[i] = r, z, n, q
		next[i] = (1-z)*n + z*state[i]
	}
	return next, cache
}

// ScratchSize returns the StepInfer scratch requirement (the two gate
// pre-activation vectors).
func (c *GRUCell) ScratchSize() int { return 6 * c.hidden }

// StepInfer advances the hidden state without recording a backprop cache,
// writing into dst. The gate math mirrors Step exactly, so the states are
// bit-identical; the only difference is that nothing is allocated.
func (c *GRUCell) StepInfer(dst, state, x, scratch tensor.Vector) {
	h := c.hidden
	gi := scratch[:3*h]
	gh := scratch[3*h : 6*h]
	// Inline weight views keep this path allocation-free (Param.Matrix's
	// returned header escapes — see StepInferBatch), and the hidden input
	// is dense after the first step, so its sparsity scan is skipped.
	wih := tensor.Matrix{Rows: 3 * h, Cols: c.in, Data: c.Wih.Value}
	whh := tensor.Matrix{Rows: 3 * h, Cols: h, Data: c.Whh.Value}
	wih.MulVec(gi, x)
	gi.Add(c.Bih.Value)
	whh.MulVecDense(gh, state)
	gh.Add(c.Bhh.Value)
	for i := 0; i < h; i++ {
		r := Sigmoid(gi[i] + gh[i])
		z := Sigmoid(gi[h+i] + gh[h+i])
		q := gh[2*h+i]
		n := math.Tanh(gi[2*h+i] + r*q)
		dst[i] = (1-z)*n + z*state[i]
	}
}

// Backward propagates dNext through one GRU step.
func (c *GRUCell) Backward(cache StepCache, dNext, dx, dPrev tensor.Vector) {
	cc := cache.(*gruCache)
	h := c.hidden
	// Per-gate pre-activation gradients, laid out like the weight rows.
	dai := tensor.NewVector(3 * h) // grads w.r.t. gi rows (r, z, n)
	dah := tensor.NewVector(3 * h) // grads w.r.t. gh rows (r, z, n-part q)
	dhLocal := tensor.NewVector(h)
	for i := 0; i < h; i++ {
		r, z, n, q := cc.r[i], cc.z[i], cc.n[i], cc.q[i]
		dh := dNext[i]
		dz := dh * (cc.hPrev[i] - n)
		dn := dh * (1 - z)
		dhLocal[i] = dh * z

		dan := dn * (1 - n*n) // grad w.r.t. a_n = gi_n + r*q
		dr := dan * q
		dq := dan * r
		dar := dr * r * (1 - r)
		daz := dz * z * (1 - z)

		dai[i], dai[h+i], dai[2*h+i] = dar, daz, dan
		dah[i], dah[h+i], dah[2*h+i] = dar, daz, dq
	}
	c.Wih.GradMatrix().RankOneAdd(1, dai, cc.x)
	c.Whh.GradMatrix().RankOneAdd(1, dah, cc.hPrev)
	c.Bih.Grad.Add(dai)
	c.Bhh.Grad.Add(dah)
	if dx != nil {
		c.Wih.Matrix().MulVecTAdd(dx, dai)
	}
	if dPrev != nil {
		c.Whh.Matrix().MulVecTAdd(dPrev, dah)
		dPrev.Add(dhLocal)
	}
}
