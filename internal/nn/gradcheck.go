package nn

import (
	"fmt"
	"math"
)

// GradCheck verifies analytic gradients against central finite differences.
//
// loss must be a deterministic function of the current parameter values
// (re-run any stochastic components with a fixed seed). compute must zero
// the gradients, run the forward+backward pass, and leave the analytic
// gradients accumulated in params. GradCheck perturbs every scalar
// parameter by ±eps and reports the worst relative error; it returns an
// error if that exceeds tol.
//
// This is the correctness backstop for the hand-derived GRU/LSTM backward
// passes that substitute for PyTorch autograd.
func GradCheck(params Params, loss func() float64, compute func(), eps, tol float64) error {
	compute()
	analytic := make([][]float64, len(params))
	for i, p := range params {
		analytic[i] = append([]float64(nil), p.Grad...)
	}

	worst := 0.0
	worstDesc := ""
	for i, p := range params {
		for j := range p.Value {
			orig := p.Value[j]
			p.Value[j] = orig + eps
			lPlus := loss()
			p.Value[j] = orig - eps
			lMinus := loss()
			p.Value[j] = orig

			numeric := (lPlus - lMinus) / (2 * eps)
			a := analytic[i][j]
			denom := math.Max(1, math.Max(math.Abs(a), math.Abs(numeric)))
			rel := math.Abs(a-numeric) / denom
			if rel > worst {
				worst = rel
				worstDesc = fmt.Sprintf("%s[%d]: analytic=%.8g numeric=%.8g", p.Name, j, a, numeric)
			}
		}
	}
	if worst > tol {
		return fmt.Errorf("nn: gradient check failed: worst relative error %.3g > %.3g (%s)", worst, tol, worstDesc)
	}
	return nil
}
