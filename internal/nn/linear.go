package nn

import (
	"math"

	"repro/internal/tensor"
)

// Linear is a fully connected layer: y = W·x + b with W of shape out×in.
type Linear struct {
	In, Out int
	W, B    *Param
}

// NewLinear allocates a Linear layer with Xavier/Glorot-uniform initialised
// weights and zero biases.
func NewLinear(name string, in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{
		In: in, Out: out,
		W: NewMatrixParam(name+".W", out, in),
		B: NewVectorParam(name+".b", out),
	}
	bound := math.Sqrt(6.0 / float64(in+out))
	rng.FillUniform(l.W.Value, -bound, bound)
	return l
}

// Params returns the layer's learnable parameters.
func (l *Linear) Params() Params { return Params{l.W, l.B} }

// Forward computes dst = W·x + b. dst must have length Out and must not
// alias x.
func (l *Linear) Forward(dst, x tensor.Vector) {
	l.W.Matrix().MulVec(dst, x)
	dst.Add(l.B.Value)
}

// Backward accumulates parameter gradients for the forward pass that
// consumed input x and produced output gradient dy, and accumulates the
// input gradient into dx (pass nil to skip input-gradient computation, e.g.
// at the first layer).
func (l *Linear) Backward(dx, x, dy tensor.Vector) {
	l.W.GradMatrix().RankOneAdd(1, dy, x)
	l.B.Grad.Add(dy)
	if dx != nil {
		l.W.Matrix().MulVecTAdd(dx, dy)
	}
}
