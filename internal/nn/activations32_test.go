package nn

import (
	"math"
	"testing"
)

// TestSigmoid32Accuracy sweeps the gate input range against the f64
// definition. The budget: polynomial truncation ≈ 1.2e-7 relative plus a
// few single-precision roundings — well under 3e-6 absolute on a function
// bounded by 1.
func TestSigmoid32Accuracy(t *testing.T) {
	var maxErr float64
	for x := float32(-30); x <= 30; x += 0.0013 {
		got := float64(Sigmoid32(x))
		want := 1 / (1 + math.Exp(-float64(x)))
		if err := math.Abs(got - want); err > maxErr {
			maxErr = err
		}
	}
	if maxErr > 3e-6 {
		t.Fatalf("Sigmoid32 max abs error %v, want <= 3e-6", maxErr)
	}
	if Sigmoid32(0) != 0.5 {
		t.Fatalf("Sigmoid32(0) = %v", Sigmoid32(0))
	}
	// Saturation: exactly 1 above the clamp; a tiny normal (not exactly 0,
	// the single-formula trade-off) below it.
	if Sigmoid32(100) != 1 {
		t.Fatalf("Sigmoid32(100) = %v", Sigmoid32(100))
	}
	if s := Sigmoid32(-100); s < 0 || s > 1e-36 {
		t.Fatalf("Sigmoid32(-100) = %v", s)
	}
}

// TestTanh32Accuracy sweeps the polynomial, mid, and saturated ranges
// against math.Tanh.
func TestTanh32Accuracy(t *testing.T) {
	var maxErr float64
	for x := float32(-12); x <= 12; x += 0.0007 {
		got := float64(Tanh32(x))
		want := math.Tanh(float64(x))
		if err := math.Abs(got - want); err > maxErr {
			maxErr = err
		}
	}
	if maxErr > 3e-6 {
		t.Fatalf("Tanh32 max abs error %v, want <= 3e-6", maxErr)
	}
	if Tanh32(0) != 0 || Tanh32(100) != 1 || Tanh32(-100) != -1 {
		t.Fatalf("edges: %v / %v / %v", Tanh32(0), Tanh32(100), Tanh32(-100))
	}
}

// TestExp32Accuracy sweeps e^x over the full clamp range, both signs, and
// pins the exact anchor values. The function is pure float32 arithmetic,
// so every output bit is the same on every platform — the property the f32
// replay-equivalence story rests on.
func TestExp32Accuracy(t *testing.T) {
	if exp32(0) != 1 {
		t.Fatalf("exp32(0) = %v", exp32(0))
	}
	if exp32(-1000) != exp32(-87) || exp32(1000) != exp32(87) {
		t.Fatalf("clamp: %v/%v vs %v/%v", exp32(-1000), exp32(1000), exp32(-87), exp32(87))
	}
	var maxRel float64
	for x := float32(-87); x <= 87; x += 0.0011 {
		got := float64(exp32(x))
		want := math.Exp(float64(x))
		if rel := math.Abs(got-want) / want; rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 2e-6 {
		t.Fatalf("exp32 max relative error %v, want <= 2e-6", maxRel)
	}
}
