package nn

import (
	"math"

	"repro/internal/tensor"
)

// LSTMCell is a long short-term memory unit following the PyTorch
// nn.LSTMCell equations and weight layout (gate order i, f, g, o):
//
//	i  = σ(W_ii·x + b_ii + W_hi·h + b_hi)
//	f  = σ(W_if·x + b_if + W_hf·h + b_hf)
//	g  = tanh(W_ig·x + b_ig + W_hg·h + b_hg)
//	o  = σ(W_io·x + b_io + W_ho·h + b_ho)
//	c' = f ∘ c + i ∘ g
//	h' = o ∘ tanh(c')
//
// The exported recurrent state is the concatenation [h; c], so the
// externally visible hidden vector (what the predictor reads) is the first
// HiddenSize components, matching the paper's ablation in §6.2.
type LSTMCell struct {
	in, hidden         int
	Wih, Whh, Bih, Bhh *Param
}

// NewLSTMCell allocates an LSTM cell with uniform(-1/√hidden, 1/√hidden)
// initialisation.
func NewLSTMCell(inputSize, hiddenSize int, rng *tensor.RNG) *LSTMCell {
	c := &LSTMCell{
		in: inputSize, hidden: hiddenSize,
		Wih: NewMatrixParam("lstm.Wih", 4*hiddenSize, inputSize),
		Whh: NewMatrixParam("lstm.Whh", 4*hiddenSize, hiddenSize),
		Bih: NewVectorParam("lstm.bih", 4*hiddenSize),
		Bhh: NewVectorParam("lstm.bhh", 4*hiddenSize),
	}
	bound := 1 / math.Sqrt(float64(hiddenSize))
	c.Params().InitUniform(rng, bound)
	return c
}

// InputSize returns the per-step input length.
func (c *LSTMCell) InputSize() int { return c.in }

// HiddenSize returns the externally visible hidden vector length.
func (c *LSTMCell) HiddenSize() int { return c.hidden }

// StateSize is 2·HiddenSize: the state is [h; c].
func (c *LSTMCell) StateSize() int { return 2 * c.hidden }

// Params returns the cell's learnable parameters.
func (c *LSTMCell) Params() Params { return Params{c.Wih, c.Whh, c.Bih, c.Bhh} }

type lstmCache struct {
	x, hPrev, cPrev tensor.Vector
	i, f, g, o, tc  tensor.Vector // tc = tanh(c')
}

// Step advances the state [h; c] by one event.
func (c *LSTMCell) Step(state, x tensor.Vector) (tensor.Vector, StepCache) {
	h := c.hidden
	hPrev := state[:h]
	cPrev := state[h:]
	gi := tensor.NewVector(4 * h)
	gh := tensor.NewVector(4 * h)
	c.Wih.Matrix().MulVec(gi, x)
	gi.Add(c.Bih.Value)
	c.Whh.Matrix().MulVec(gh, hPrev)
	gh.Add(c.Bhh.Value)

	cache := &lstmCache{
		x: x.Clone(), hPrev: hPrev.Clone(), cPrev: cPrev.Clone(),
		i: tensor.NewVector(h), f: tensor.NewVector(h),
		g: tensor.NewVector(h), o: tensor.NewVector(h),
		tc: tensor.NewVector(h),
	}
	next := tensor.NewVector(2 * h)
	for j := 0; j < h; j++ {
		ig := Sigmoid(gi[j] + gh[j])
		fg := Sigmoid(gi[h+j] + gh[h+j])
		gg := math.Tanh(gi[2*h+j] + gh[2*h+j])
		og := Sigmoid(gi[3*h+j] + gh[3*h+j])
		cNew := fg*cPrev[j] + ig*gg
		tc := math.Tanh(cNew)
		cache.i[j], cache.f[j], cache.g[j], cache.o[j], cache.tc[j] = ig, fg, gg, og, tc
		next[j] = og * tc
		next[h+j] = cNew
	}
	return next, cache
}

// Backward propagates dNext (gradient w.r.t. [h'; c']) through one step.
func (c *LSTMCell) Backward(cache StepCache, dNext, dx, dPrev tensor.Vector) {
	cc := cache.(*lstmCache)
	h := c.hidden
	da := tensor.NewVector(4 * h) // pre-activation grads shared by Wih/Whh rows
	dcPrev := tensor.NewVector(h)
	for j := 0; j < h; j++ {
		ig, fg, gg, og, tc := cc.i[j], cc.f[j], cc.g[j], cc.o[j], cc.tc[j]
		dh := dNext[j]
		dc := dNext[h+j] + dh*og*(1-tc*tc)
		do := dh * tc
		di := dc * gg
		df := dc * cc.cPrev[j]
		dg := dc * ig
		dcPrev[j] = dc * fg

		da[j] = di * ig * (1 - ig)
		da[h+j] = df * fg * (1 - fg)
		da[2*h+j] = dg * (1 - gg*gg)
		da[3*h+j] = do * og * (1 - og)
	}
	c.Wih.GradMatrix().RankOneAdd(1, da, cc.x)
	c.Whh.GradMatrix().RankOneAdd(1, da, cc.hPrev)
	c.Bih.Grad.Add(da)
	c.Bhh.Grad.Add(da)
	if dx != nil {
		c.Wih.Matrix().MulVecTAdd(dx, da)
	}
	if dPrev != nil {
		c.Whh.Matrix().MulVecTAdd(dPrev[:h], da)
		dPrev[h:].Add(dcPrev)
	}
}
