package nn

import (
	"testing"

	"repro/internal/tensor"
)

func TestStackedCellShapes(t *testing.T) {
	rng := tensor.NewRNG(1)
	s := NewStackedCell(CellGRU, 5, 4, 2, rng)
	if s.InputSize() != 5 || s.HiddenSize() != 4 {
		t.Fatalf("sizes: in=%d hidden=%d", s.InputSize(), s.HiddenSize())
	}
	if s.StateSize() != 8 {
		t.Fatalf("StateSize: %d", s.StateSize())
	}
	if s.NumLayers() != 2 {
		t.Fatalf("NumLayers: %d", s.NumLayers())
	}
	// LSTM stack: state = 2 layers × 2·hidden.
	ls := NewStackedCell(CellLSTM, 5, 4, 2, rng)
	if ls.StateSize() != 16 {
		t.Fatalf("LSTM stack StateSize: %d", ls.StateSize())
	}
	if n := len(s.Params()); n != 8 { // 2 layers × 4 params per GRU
		t.Fatalf("param count: %d", n)
	}
}

func TestStackedCellPanicsOnZeroLayers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewStackedCell(CellGRU, 3, 4, 0, tensor.NewRNG(1))
}

func TestStackedSingleLayerMatchesPlainCell(t *testing.T) {
	// A 1-layer stack must behave exactly like the underlying cell when
	// given the same weights.
	rng1 := tensor.NewRNG(7)
	plain := NewGRUCell(3, 4, rng1)
	rng2 := tensor.NewRNG(7)
	stack := NewStackedCell(CellGRU, 3, 4, 1, rng2)

	x := tensor.NewVector(3)
	tensor.NewRNG(9).FillNormal(x, 1)
	state := tensor.NewVector(4)

	hp, _ := plain.Step(state, x)
	hs, _ := stack.Step(state, x)
	for i := range hp {
		if hp[i] != hs[i] {
			t.Fatalf("1-layer stack diverges from plain cell: %v vs %v", hp, hs)
		}
	}
}

// TestStackedVisibleHiddenIsTopLayer verifies the Cell contract: the first
// HiddenSize components of the state are the top layer's hidden output.
func TestStackedVisibleHiddenIsTopLayer(t *testing.T) {
	rng := tensor.NewRNG(11)
	s := NewStackedCell(CellGRU, 3, 4, 2, rng)
	x := tensor.NewVector(3)
	rng.FillNormal(x, 1)
	state := tensor.NewVector(s.StateSize())
	next, _ := s.Step(state, x)

	// Manually: bottom layer from zero state on x; top layer from zero
	// state on bottom's hidden.
	bottom := s.layers[0]
	top := s.layers[1]
	hBot, _ := bottom.Step(tensor.NewVector(4), x)
	hTop, _ := top.Step(tensor.NewVector(4), hBot[:4])
	for i := 0; i < 4; i++ {
		if next[i] != hTop[i] {
			t.Fatalf("visible hidden must be the top layer's output")
		}
	}
}

func TestStackedGradCheck(t *testing.T) {
	rng := tensor.NewRNG(42)
	const inSize, hidSize, steps = 3, 3, 3
	cell := NewStackedCell(CellGRU, inSize, hidSize, 2, rng)

	xs := make([]tensor.Vector, steps)
	for i := range xs {
		xs[i] = tensor.NewVector(inSize)
		rng.FillNormal(xs[i], 1)
	}
	loss := func() float64 {
		state := tensor.NewVector(cell.StateSize())
		var s float64
		for i := 0; i < steps; i++ {
			state, _ = cell.Step(state, xs[i])
			for _, h := range state[:cell.HiddenSize()] {
				s += 0.5 * h * h
			}
		}
		return s
	}
	compute := func() {
		cell.Params().ZeroGrad()
		state := tensor.NewVector(cell.StateSize())
		states := make([]tensor.Vector, steps)
		caches := make([]StepCache, steps)
		for i := 0; i < steps; i++ {
			state, caches[i] = cell.Step(state, xs[i])
			states[i] = state
		}
		dState := tensor.NewVector(cell.StateSize())
		for i := steps - 1; i >= 0; i-- {
			for j := 0; j < cell.HiddenSize(); j++ {
				dState[j] += states[i][j]
			}
			dPrev := tensor.NewVector(cell.StateSize())
			cell.Backward(caches[i], dState, nil, dPrev)
			dState = dPrev
		}
	}
	if err := GradCheck(cell.Params(), loss, compute, 1e-6, 2e-5); err != nil {
		t.Fatal(err)
	}
}

func TestStackedInputGradCheck(t *testing.T) {
	rng := tensor.NewRNG(13)
	cell := NewStackedCell(CellGRU, 3, 3, 2, rng)
	x := tensor.NewVector(3)
	rng.FillNormal(x, 1)
	state0 := tensor.NewVector(cell.StateSize())
	rng.FillNormal(state0, 0.5)

	loss := func() float64 {
		next, _ := cell.Step(state0, x)
		var s float64
		for _, h := range next {
			s += 0.5 * h * h
		}
		return s
	}
	cell.Params().ZeroGrad()
	next, cache := cell.Step(state0, x)
	dNext := next.Clone()
	dx := tensor.NewVector(3)
	dPrev := tensor.NewVector(cell.StateSize())
	cell.Backward(cache, dNext, dx, dPrev)

	const eps = 1e-6
	base := loss()
	_ = base
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		lp := loss()
		x[i] = orig - eps
		lm := loss()
		x[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if diff := numeric - dx[i]; diff > 2e-5 || diff < -2e-5 {
			t.Fatalf("dx[%d]: analytic %v, numeric %v", i, dx[i], numeric)
		}
	}
	for i := range state0 {
		orig := state0[i]
		state0[i] = orig + eps
		lp := loss()
		state0[i] = orig - eps
		lm := loss()
		state0[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if diff := numeric - dPrev[i]; diff > 2e-5 || diff < -2e-5 {
			t.Fatalf("dPrev[%d]: analytic %v, numeric %v", i, dPrev[i], numeric)
		}
	}
}
