package nn

import (
	"testing"

	"repro/internal/tensor"
)

// TestGRUStepInferMatchesStep requires the allocation-free inference step
// to produce bit-identical states to Step across many random (state, x)
// pairs — the serving tier's scratch path must not drift from training.
func TestGRUStepInferMatchesStep(t *testing.T) {
	rng := tensor.NewRNG(42)
	c := NewGRUCell(13, 24, rng)
	if c.ScratchSize() != 6*24 {
		t.Fatalf("ScratchSize: %d", c.ScratchSize())
	}
	scratch := tensor.NewVector(c.ScratchSize())
	state := tensor.NewVector(c.StateSize())
	x := tensor.NewVector(c.InputSize())
	dst := tensor.NewVector(c.StateSize())
	for trial := 0; trial < 50; trial++ {
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		// Dirty the scratch to prove StepInfer fully overwrites it.
		for i := range scratch {
			scratch[i] = 1e9
		}
		next, _ := c.Step(state, x)
		c.StepInfer(dst, state, x, scratch)
		for i := range next {
			if dst[i] != next[i] {
				t.Fatalf("trial %d dim %d: StepInfer %v vs Step %v", trial, i, dst[i], next[i])
			}
		}
		copy(state, next) // chain states so trials cover realistic magnitudes
	}
}

// TestInferenceCellFallback documents which cells have the fast path.
func TestInferenceCellFallback(t *testing.T) {
	rng := tensor.NewRNG(1)
	if _, ok := Cell(NewGRUCell(4, 4, rng)).(InferenceCell); !ok {
		t.Fatalf("GRU must implement InferenceCell")
	}
}
