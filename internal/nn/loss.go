package nn

import "math"

// lossEps keeps log-loss finite when a model emits a hard 0 or 1.
const lossEps = 1e-12

// BCELoss returns the binary cross-entropy ("log loss", §6.3) of predicted
// probability p against label y ∈ {0, 1}:
//
//	−[y·log(p) + (1−y)·log(1−p)]
func BCELoss(p, y float64) float64 {
	p = clampProb(p)
	if y >= 0.5 {
		return -math.Log(p)
	}
	return -math.Log(1 - p)
}

// BCELossGrad returns dLoss/dp for BCELoss.
func BCELossGrad(p, y float64) float64 {
	p = clampProb(p)
	if y >= 0.5 {
		return -1 / p
	}
	return 1 / (1 - p)
}

// BCEWithLogits returns the loss and dLoss/dlogit for a sigmoid output unit
// in one numerically stable computation. Backpropagating through the logit
// (dL/ds = σ(s) − y) avoids the catastrophic cancellation of composing
// BCELossGrad with the sigmoid derivative, so the model's output layer uses
// this form.
func BCEWithLogits(logit, y float64) (loss, dLogit float64) {
	p := Sigmoid(logit)
	// loss = max(s,0) − s·y + log(1+exp(−|s|)) — the standard stable form.
	loss = math.Max(logit, 0) - logit*y + math.Log1p(math.Exp(-math.Abs(logit)))
	return loss, p - y
}

func clampProb(p float64) float64 {
	if p < lossEps {
		return lossEps
	}
	if p > 1-lossEps {
		return 1 - lossEps
	}
	return p
}
