package nn

import (
	"math"

	"repro/internal/tensor"
)

// TanhCell is the basic recurrent unit evaluated in §6.2:
//
//	h' = tanh(W_ih·x + b_ih + W_hh·h + b_hh)
//
// The paper reports its quality lagging behind GRU/LSTM, consistent with
// Chung et al. (2014); it is included for the cell-architecture ablation.
type TanhCell struct {
	in, hidden         int
	Wih, Whh, Bih, Bhh *Param
}

// NewTanhCell allocates a tanh recurrent cell with
// uniform(-1/√hidden, 1/√hidden) initialisation.
func NewTanhCell(inputSize, hiddenSize int, rng *tensor.RNG) *TanhCell {
	c := &TanhCell{
		in: inputSize, hidden: hiddenSize,
		Wih: NewMatrixParam("tanh.Wih", hiddenSize, inputSize),
		Whh: NewMatrixParam("tanh.Whh", hiddenSize, hiddenSize),
		Bih: NewVectorParam("tanh.bih", hiddenSize),
		Bhh: NewVectorParam("tanh.bhh", hiddenSize),
	}
	bound := 1 / math.Sqrt(float64(hiddenSize))
	c.Params().InitUniform(rng, bound)
	return c
}

// InputSize returns the per-step input length.
func (c *TanhCell) InputSize() int { return c.in }

// HiddenSize returns the hidden vector length.
func (c *TanhCell) HiddenSize() int { return c.hidden }

// StateSize equals HiddenSize for a tanh cell.
func (c *TanhCell) StateSize() int { return c.hidden }

// Params returns the cell's learnable parameters.
func (c *TanhCell) Params() Params { return Params{c.Wih, c.Whh, c.Bih, c.Bhh} }

type tanhCache struct {
	x, hPrev, hNew tensor.Vector
}

// Step advances the hidden state by one event.
func (c *TanhCell) Step(state, x tensor.Vector) (tensor.Vector, StepCache) {
	a := tensor.NewVector(c.hidden)
	c.Wih.Matrix().MulVec(a, x)
	a.Add(c.Bih.Value)
	c.Whh.Matrix().MulVecAdd(a, state)
	a.Add(c.Bhh.Value)
	for i, v := range a {
		a[i] = math.Tanh(v)
	}
	return a, &tanhCache{x: x.Clone(), hPrev: state.Clone(), hNew: a.Clone()}
}

// Backward propagates dNext through one step.
func (c *TanhCell) Backward(cache StepCache, dNext, dx, dPrev tensor.Vector) {
	cc := cache.(*tanhCache)
	da := tensor.NewVector(c.hidden)
	for i, h := range cc.hNew {
		da[i] = dNext[i] * (1 - h*h)
	}
	c.Wih.GradMatrix().RankOneAdd(1, da, cc.x)
	c.Whh.GradMatrix().RankOneAdd(1, da, cc.hPrev)
	c.Bih.Grad.Add(da)
	c.Bhh.Grad.Add(da)
	if dx != nil {
		c.Wih.Matrix().MulVecTAdd(dx, da)
	}
	if dPrev != nil {
		c.Whh.Matrix().MulVecTAdd(dPrev, da)
	}
}
