// Package nn implements the neural-network building blocks needed by the
// paper's model: linear layers, activations, dropout, and recurrent cells
// (tanh RNN, GRU, LSTM) with hand-derived backward passes. It stands in for
// PyTorch 1.1, which the paper used; the model is small enough (hidden
// dimension 128) that explicit backpropagation is practical and fast.
//
// Conventions:
//   - Every layer exposes Forward (optionally returning a cache of the
//     intermediate values needed by the chain rule) and Backward, which
//     accumulates parameter gradients and returns/accumulates input
//     gradients. Gradients always *accumulate* so that backpropagation
//     through time can sum contributions across timesteps; call
//     Params.ZeroGrad between optimization steps.
//   - Recurrent cells follow the PyTorch GRUCell/LSTMCell weight layout and
//     gate equations so the paper's Figure 3 reference code maps 1:1.
package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Param is a single learnable tensor: a flat value buffer plus an
// accumulated gradient buffer of the same length. Matrices view the flat
// buffer row-major through the Rows/Cols shape.
type Param struct {
	Name       string
	Rows, Cols int // Cols == 0 means a bias/vector parameter of length Rows
	Value      tensor.Vector
	Grad       tensor.Vector
}

// NewMatrixParam allocates a rows×cols matrix parameter.
func NewMatrixParam(name string, rows, cols int) *Param {
	return &Param{
		Name: name, Rows: rows, Cols: cols,
		Value: tensor.NewVector(rows * cols),
		Grad:  tensor.NewVector(rows * cols),
	}
}

// NewVectorParam allocates a length-n vector parameter.
func NewVectorParam(name string, n int) *Param {
	return &Param{
		Name: name, Rows: n, Cols: 0,
		Value: tensor.NewVector(n),
		Grad:  tensor.NewVector(n),
	}
}

// Matrix returns a tensor.Matrix view over the parameter's values.
// Mutating the view mutates the parameter.
func (p *Param) Matrix() *tensor.Matrix {
	if p.Cols == 0 {
		panic(fmt.Sprintf("nn: param %q is a vector, not a matrix", p.Name))
	}
	return &tensor.Matrix{Rows: p.Rows, Cols: p.Cols, Data: p.Value}
}

// GradMatrix returns a tensor.Matrix view over the parameter's gradient.
func (p *Param) GradMatrix() *tensor.Matrix {
	if p.Cols == 0 {
		panic(fmt.Sprintf("nn: param %q is a vector, not a matrix", p.Name))
	}
	return &tensor.Matrix{Rows: p.Rows, Cols: p.Cols, Data: p.Grad}
}

// Len returns the number of scalar values in the parameter.
func (p *Param) Len() int { return len(p.Value) }

// Params is the ordered set of parameters of a model.
type Params []*Param

// ZeroGrad clears all accumulated gradients.
func (ps Params) ZeroGrad() {
	for _, p := range ps {
		p.Grad.Zero()
	}
}

// NumScalars returns the total number of scalar parameters.
func (ps Params) NumScalars() int {
	n := 0
	for _, p := range ps {
		n += p.Len()
	}
	return n
}

// GradNorm returns the global L2 norm of all gradients.
func (ps Params) GradNorm() float64 {
	var s float64
	for _, p := range ps {
		for _, g := range p.Grad {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// ClipGradNorm scales all gradients so the global L2 norm does not exceed
// maxNorm. It returns the pre-clipping norm. A maxNorm <= 0 disables
// clipping.
func (ps Params) ClipGradNorm(maxNorm float64) float64 {
	norm := ps.GradNorm()
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / (norm + 1e-12)
		for _, p := range ps {
			p.Grad.Scale(scale)
		}
	}
	return norm
}

// AddGrads accumulates the gradients of other (same shapes, same order) into
// ps. This is how per-user worker gradients are merged during the paper's
// "custom parallelism" minibatch scheme (§7.1).
func (ps Params) AddGrads(other Params) {
	if len(ps) != len(other) {
		panic("nn: Params.AddGrads: parameter count mismatch")
	}
	for i, p := range ps {
		p.Grad.Add(other[i].Grad)
	}
}

// ScaleGrads multiplies every gradient by a (e.g. 1/batchSize).
func (ps Params) ScaleGrads(a float64) {
	for _, p := range ps {
		p.Grad.Scale(a)
	}
}

// CopyValuesTo copies parameter values into dst, which must have identical
// shapes. Used to clone models for worker replicas and snapshots.
func (ps Params) CopyValuesTo(dst Params) {
	if len(ps) != len(dst) {
		panic("nn: Params.CopyValuesTo: parameter count mismatch")
	}
	for i, p := range ps {
		if p.Len() != dst[i].Len() {
			panic(fmt.Sprintf("nn: Params.CopyValuesTo: size mismatch for %q", p.Name))
		}
		copy(dst[i].Value, p.Value)
	}
}

// Flatten returns a copy of all parameter values as one vector, in order.
func (ps Params) Flatten() tensor.Vector {
	out := tensor.NewVector(0)
	for _, p := range ps {
		out = append(out, p.Value...)
	}
	return out
}

// LoadFlat restores parameter values from a vector previously produced by
// Flatten.
func (ps Params) LoadFlat(flat tensor.Vector) {
	off := 0
	for _, p := range ps {
		if off+p.Len() > len(flat) {
			panic("nn: Params.LoadFlat: vector too short")
		}
		copy(p.Value, flat[off:off+p.Len()])
		off += p.Len()
	}
	if off != len(flat) {
		panic("nn: Params.LoadFlat: vector too long")
	}
}

// InitUniform fills all parameters with Uniform(-bound, bound) values, the
// PyTorch default for recurrent cells (bound = 1/sqrt(hiddenSize)).
func (ps Params) InitUniform(rng *tensor.RNG, bound float64) {
	for _, p := range ps {
		rng.FillUniform(p.Value, -bound, bound)
	}
}
