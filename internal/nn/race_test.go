//go:build race

package nn

// Under the race detector sync.Pool deliberately drops a fraction of
// Put items to shake out lifecycle races, so pooled buffers reallocate
// and steady-state allocation pins are meaningless.
const raceEnabled = true
