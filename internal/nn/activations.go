package nn

import (
	"math"

	"repro/internal/tensor"
)

// Sigmoid returns σ(x) = 1/(1+e^(-x)), computed in a numerically stable
// branch for large |x|.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// SigmoidVec writes σ(x) element-wise into dst (dst may alias x).
func SigmoidVec(dst, x tensor.Vector) {
	for i, v := range x {
		dst[i] = Sigmoid(v)
	}
}

// TanhVec writes tanh(x) element-wise into dst (dst may alias x).
func TanhVec(dst, x tensor.Vector) {
	for i, v := range x {
		dst[i] = math.Tanh(v)
	}
}

// ReLUVec writes max(0, x) element-wise into dst (dst may alias x).
func ReLUVec(dst, x tensor.Vector) {
	for i, v := range x {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// ReLUBackward accumulates dx += dy ∘ 1[y > 0], where y is the ReLU output
// (using the output rather than the input avoids keeping both).
func ReLUBackward(dx, y, dy tensor.Vector) {
	for i, v := range y {
		if v > 0 {
			dx[i] += dy[i]
		}
	}
}

// SigmoidBackwardFromOutput accumulates dx += dy ∘ s ∘ (1−s) where s is the
// sigmoid output.
func SigmoidBackwardFromOutput(dx, s, dy tensor.Vector) {
	for i, si := range s {
		dx[i] += dy[i] * si * (1 - si)
	}
}

// TanhBackwardFromOutput accumulates dx += dy ∘ (1−t²) where t is the tanh
// output.
func TanhBackwardFromOutput(dx, t, dy tensor.Vector) {
	for i, ti := range t {
		dx[i] += dy[i] * (1 - ti*ti)
	}
}

// Dropout implements inverted dropout: at training time each element is
// zeroed with probability Rate and survivors are scaled by 1/(1-Rate) so
// that inference needs no rescaling. The paper sets Rate = 0.2 in the middle
// of the prediction MLP (§7, Figure 3).
type Dropout struct {
	Rate float64
}

// Forward applies dropout to x in place when train is true, recording the
// kept/scaled mask into mask (same length as x; a zero entry means dropped,
// a non-zero entry holds the applied scale). When train is false it fills
// mask with ones and leaves x unchanged.
func (d Dropout) Forward(x, mask tensor.Vector, train bool, rng *tensor.RNG) {
	if !train || d.Rate <= 0 {
		mask.Fill(1)
		return
	}
	keep := 1 - d.Rate
	scale := 1 / keep
	for i := range x {
		if rng.Float64() < keep {
			mask[i] = scale
			x[i] *= scale
		} else {
			mask[i] = 0
			x[i] = 0
		}
	}
}

// Backward accumulates dx += dy ∘ mask.
func (d Dropout) Backward(dx, mask, dy tensor.Vector) {
	for i, m := range mask {
		dx[i] += dy[i] * m
	}
}
