package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); s != 0.5 {
		t.Fatalf("Sigmoid(0) = %v, want 0.5", s)
	}
	if s := Sigmoid(100); s <= 0.999 {
		t.Fatalf("Sigmoid(100) = %v, want ≈1", s)
	}
	if s := Sigmoid(-100); s >= 0.001 {
		t.Fatalf("Sigmoid(-100) = %v, want ≈0", s)
	}
	// Stability: no NaN at extremes.
	for _, x := range []float64{-1e6, 1e6, -745, 745} {
		if s := Sigmoid(x); math.IsNaN(s) || s < 0 || s > 1 {
			t.Fatalf("Sigmoid(%v) = %v", x, s)
		}
	}
}

func TestSigmoidSymmetry(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 50)
		return math.Abs(Sigmoid(x)+Sigmoid(-x)-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestVecActivations(t *testing.T) {
	x := tensor.Vector{-2, 0, 3}
	dst := tensor.NewVector(3)
	ReLUVec(dst, x)
	if dst[0] != 0 || dst[1] != 0 || dst[2] != 3 {
		t.Fatalf("ReLUVec: %v", dst)
	}
	TanhVec(dst, x)
	if math.Abs(dst[2]-math.Tanh(3)) > 1e-15 || dst[1] != 0 {
		t.Fatalf("TanhVec: %v", dst)
	}
	SigmoidVec(dst, x)
	if dst[1] != 0.5 {
		t.Fatalf("SigmoidVec: %v", dst)
	}
}

func TestBCELoss(t *testing.T) {
	if l := BCELoss(0.5, 1); math.Abs(l-math.Ln2) > 1e-12 {
		t.Fatalf("BCELoss(0.5, 1) = %v, want ln2", l)
	}
	if l := BCELoss(0.5, 0); math.Abs(l-math.Ln2) > 1e-12 {
		t.Fatalf("BCELoss(0.5, 0) = %v, want ln2", l)
	}
	// Perfect predictions have ≈0 loss, wrong-confident predictions are
	// large but finite.
	if l := BCELoss(1, 1); l > 1e-10 {
		t.Fatalf("BCELoss(1,1) = %v", l)
	}
	if l := BCELoss(0, 1); math.IsInf(l, 0) || l < 10 {
		t.Fatalf("BCELoss(0,1) = %v, want large finite", l)
	}
}

func TestBCEWithLogitsMatchesComposition(t *testing.T) {
	f := func(logit, label float64) bool {
		if math.IsNaN(logit) || math.IsInf(logit, 0) {
			return true
		}
		// Stay away from the clamp region of BCELoss (|logit| < 20 keeps
		// probabilities well above lossEps).
		logit = math.Mod(logit, 20)
		y := 0.0
		if label > 0 {
			y = 1.0
		}
		loss, dLogit := BCEWithLogits(logit, y)
		p := Sigmoid(logit)
		wantLoss := BCELoss(p, y)
		wantGrad := p - y
		return math.Abs(loss-wantLoss) < 1e-6 && math.Abs(dLogit-wantGrad) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearForward(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewLinear("fc", 3, 2, rng)
	// Overwrite with known weights.
	copy(l.W.Value, []float64{1, 0, -1, 2, 2, 2})
	copy(l.B.Value, []float64{0.5, -0.5})
	out := tensor.NewVector(2)
	l.Forward(out, tensor.Vector{1, 2, 3})
	if out[0] != 1-3+0.5 || out[1] != 12-0.5 {
		t.Fatalf("Linear.Forward: %v", out)
	}
}

func TestLinearGradCheck(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := NewLinear("fc", 4, 3, rng)
	x := tensor.NewVector(4)
	rng.FillNormal(x, 1)
	target := tensor.Vector{0.3, -0.2, 0.9}

	loss := func() float64 {
		out := tensor.NewVector(3)
		l.Forward(out, x)
		var s float64
		for i := range out {
			d := out[i] - target[i]
			s += 0.5 * d * d
		}
		return s
	}
	compute := func() {
		l.Params().ZeroGrad()
		out := tensor.NewVector(3)
		l.Forward(out, x)
		dy := tensor.NewVector(3)
		for i := range out {
			dy[i] = out[i] - target[i]
		}
		l.Backward(nil, x, dy)
	}
	if err := GradCheck(l.Params(), loss, compute, 1e-6, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestLinearInputGradient(t *testing.T) {
	rng := tensor.NewRNG(3)
	l := NewLinear("fc", 3, 2, rng)
	x := tensor.Vector{0.5, -1, 2}
	dy := tensor.Vector{1, -2}
	dx := tensor.NewVector(3)
	l.Backward(dx, x, dy)
	// dx = Wᵀ dy
	want := tensor.NewVector(3)
	l.W.Matrix().MulVecT(want, dy)
	for i := range want {
		if math.Abs(dx[i]-want[i]) > 1e-12 {
			t.Fatalf("input grad: got %v, want %v", dx, want)
		}
	}
}

// cellLossSetup builds a deterministic scalar loss over a short unrolled
// sequence for a cell, exercising backprop through time across 3 steps.
func cellGradCheck(t *testing.T, kind CellKind) {
	t.Helper()
	rng := tensor.NewRNG(42)
	const inSize, hidSize, steps = 3, 4, 3
	cell := NewCell(kind, inSize, hidSize, rng)

	xs := make([]tensor.Vector, steps)
	for i := range xs {
		xs[i] = tensor.NewVector(inSize)
		rng.FillNormal(xs[i], 1)
	}
	// Loss: sum over steps of squared hidden output (first HiddenSize comps).
	loss := func() float64 {
		state := tensor.NewVector(cell.StateSize())
		var s float64
		for i := 0; i < steps; i++ {
			state, _ = cell.Step(state, xs[i])
			for _, h := range state[:cell.HiddenSize()] {
				s += 0.5 * h * h
			}
		}
		return s
	}
	compute := func() {
		cell.Params().ZeroGrad()
		state := tensor.NewVector(cell.StateSize())
		states := make([]tensor.Vector, steps)
		caches := make([]StepCache, steps)
		for i := 0; i < steps; i++ {
			state, caches[i] = cell.Step(state, xs[i])
			states[i] = state
		}
		dState := tensor.NewVector(cell.StateSize())
		for i := steps - 1; i >= 0; i-- {
			for j := 0; j < cell.HiddenSize(); j++ {
				dState[j] += states[i][j]
			}
			dPrev := tensor.NewVector(cell.StateSize())
			cell.Backward(caches[i], dState, nil, dPrev)
			dState = dPrev
		}
	}
	if err := GradCheck(cell.Params(), loss, compute, 1e-6, 2e-5); err != nil {
		t.Fatal(err)
	}
}

func TestGRUGradCheck(t *testing.T)  { cellGradCheck(t, CellGRU) }
func TestLSTMGradCheck(t *testing.T) { cellGradCheck(t, CellLSTM) }
func TestTanhGradCheck(t *testing.T) { cellGradCheck(t, CellTanh) }

// Input gradients must also be exact: perturb an input element and compare.
func cellInputGradCheck(t *testing.T, kind CellKind) {
	t.Helper()
	rng := tensor.NewRNG(7)
	const inSize, hidSize = 3, 4
	cell := NewCell(kind, inSize, hidSize, rng)
	x := tensor.NewVector(inSize)
	rng.FillNormal(x, 1)
	state0 := tensor.NewVector(cell.StateSize())
	rng.FillNormal(state0, 0.5)

	loss := func(xv, sv tensor.Vector) float64 {
		next, _ := cell.Step(sv, xv)
		var s float64
		for _, h := range next {
			s += 0.5 * h * h
		}
		return s
	}
	// Analytic.
	cell.Params().ZeroGrad()
	next, cache := cell.Step(state0, x)
	dNext := next.Clone()
	dx := tensor.NewVector(inSize)
	dPrev := tensor.NewVector(cell.StateSize())
	cell.Backward(cache, dNext, dx, dPrev)

	const eps = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		lp := loss(x, state0)
		x[i] = orig - eps
		lm := loss(x, state0)
		x[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dx[i]) > 2e-5*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("%s dx[%d]: analytic %v, numeric %v", kind, i, dx[i], numeric)
		}
	}
	for i := range state0 {
		orig := state0[i]
		state0[i] = orig + eps
		lp := loss(x, state0)
		state0[i] = orig - eps
		lm := loss(x, state0)
		state0[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dPrev[i]) > 2e-5*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("%s dPrev[%d]: analytic %v, numeric %v", kind, i, dPrev[i], numeric)
		}
	}
}

func TestGRUInputGradCheck(t *testing.T)  { cellInputGradCheck(t, CellGRU) }
func TestLSTMInputGradCheck(t *testing.T) { cellInputGradCheck(t, CellLSTM) }
func TestTanhInputGradCheck(t *testing.T) { cellInputGradCheck(t, CellTanh) }

func TestCellShapes(t *testing.T) {
	rng := tensor.NewRNG(5)
	for _, kind := range []CellKind{CellGRU, CellLSTM, CellTanh} {
		cell := NewCell(kind, 6, 8, rng)
		if cell.InputSize() != 6 || cell.HiddenSize() != 8 {
			t.Fatalf("%s: wrong sizes", kind)
		}
		wantState := 8
		if kind == CellLSTM {
			wantState = 16
		}
		if cell.StateSize() != wantState {
			t.Fatalf("%s: StateSize = %d, want %d", kind, cell.StateSize(), wantState)
		}
		state := tensor.NewVector(cell.StateSize())
		x := tensor.NewVector(6)
		next, _ := cell.Step(state, x)
		if len(next) != cell.StateSize() {
			t.Fatalf("%s: Step returned state of length %d", kind, len(next))
		}
	}
}

func TestCellStepDoesNotMutateInputs(t *testing.T) {
	rng := tensor.NewRNG(6)
	for _, kind := range []CellKind{CellGRU, CellLSTM, CellTanh} {
		cell := NewCell(kind, 3, 4, rng)
		state := tensor.NewVector(cell.StateSize())
		rng.FillNormal(state, 1)
		x := tensor.NewVector(3)
		rng.FillNormal(x, 1)
		stateCopy := state.Clone()
		xCopy := x.Clone()
		cell.Step(state, x)
		for i := range state {
			if state[i] != stateCopy[i] {
				t.Fatalf("%s: Step mutated state", kind)
			}
		}
		for i := range x {
			if x[i] != xCopy[i] {
				t.Fatalf("%s: Step mutated input", kind)
			}
		}
	}
}

func TestGRUHiddenStaysBounded(t *testing.T) {
	// GRU hidden values are convex combinations of tanh outputs and the
	// previous hidden, so from h₀=0 they must remain in (-1, 1) forever.
	rng := tensor.NewRNG(8)
	cell := NewGRUCell(4, 8, rng)
	state := tensor.NewVector(8)
	x := tensor.NewVector(4)
	for step := 0; step < 200; step++ {
		rng.FillNormal(x, 3)
		state, _ = cell.Step(state, x)
		for _, h := range state {
			if h <= -1 || h >= 1 || math.IsNaN(h) {
				t.Fatalf("GRU hidden escaped (-1,1): %v at step %d", h, step)
			}
		}
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := tensor.NewRNG(9)
	d := Dropout{Rate: 0.5}
	x := tensor.NewVector(10000)
	x.Fill(1)
	mask := tensor.NewVector(len(x))
	d.Forward(x, mask, true, rng)

	zeros, kept := 0, 0
	for i := range x {
		switch x[i] {
		case 0:
			zeros++
		case 2: // 1/(1-0.5) scaling
			kept++
		default:
			t.Fatalf("dropout produced unexpected value %v", x[i])
		}
	}
	if zeros+kept != len(x) {
		t.Fatalf("zeros+kept != n")
	}
	frac := float64(zeros) / float64(len(x))
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("dropout rate: got %v, want ≈0.5", frac)
	}

	// Eval mode: identity.
	x2 := tensor.NewVector(100)
	x2.Fill(3)
	mask2 := tensor.NewVector(100)
	d.Forward(x2, mask2, false, rng)
	for i := range x2 {
		if x2[i] != 3 || mask2[i] != 1 {
			t.Fatalf("eval-mode dropout must be identity")
		}
	}
}

func TestDropoutExpectationPreserved(t *testing.T) {
	rng := tensor.NewRNG(10)
	d := Dropout{Rate: 0.2}
	const n = 200000
	x := tensor.NewVector(n)
	x.Fill(1)
	mask := tensor.NewVector(n)
	d.Forward(x, mask, true, rng)
	if mean := x.Sum() / n; math.Abs(mean-1) > 0.01 {
		t.Fatalf("inverted dropout must preserve expectation: mean %v", mean)
	}
}

func TestDropoutBackward(t *testing.T) {
	d := Dropout{Rate: 0.5}
	mask := tensor.Vector{2, 0, 2}
	dy := tensor.Vector{1, 1, 1}
	dx := tensor.NewVector(3)
	d.Backward(dx, mask, dy)
	if dx[0] != 2 || dx[1] != 0 || dx[2] != 2 {
		t.Fatalf("dropout backward: %v", dx)
	}
}

func TestParamsHelpers(t *testing.T) {
	rng := tensor.NewRNG(11)
	l1 := NewLinear("a", 2, 3, rng)
	l2 := NewLinear("b", 3, 1, rng)
	ps := append(l1.Params(), l2.Params()...)

	if n := ps.NumScalars(); n != 2*3+3+3*1+1 {
		t.Fatalf("NumScalars: got %d", n)
	}

	for _, p := range ps {
		p.Grad.Fill(2)
	}
	norm := ps.GradNorm()
	want := 2 * math.Sqrt(float64(ps.NumScalars()))
	if math.Abs(norm-want) > 1e-9 {
		t.Fatalf("GradNorm: got %v, want %v", norm, want)
	}

	pre := ps.ClipGradNorm(1)
	if math.Abs(pre-want) > 1e-9 {
		t.Fatalf("ClipGradNorm must return pre-clip norm")
	}
	if after := ps.GradNorm(); math.Abs(after-1) > 1e-9 {
		t.Fatalf("post-clip norm: got %v, want 1", after)
	}

	ps.ZeroGrad()
	if ps.GradNorm() != 0 {
		t.Fatalf("ZeroGrad failed")
	}
}

func TestParamsFlattenRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(12)
	l := NewLinear("a", 4, 5, rng)
	ps := l.Params()
	flat := ps.Flatten()
	// Mutate then restore.
	saved := flat.Clone()
	for _, p := range ps {
		p.Value.Zero()
	}
	ps.LoadFlat(saved)
	restored := ps.Flatten()
	for i := range saved {
		if restored[i] != saved[i] {
			t.Fatalf("Flatten/LoadFlat round trip failed at %d", i)
		}
	}
}

func TestParamsCopyValuesAndAddGrads(t *testing.T) {
	rng := tensor.NewRNG(13)
	a := NewGRUCell(3, 4, rng)
	b := NewGRUCell(3, 4, rng)
	a.Params().CopyValuesTo(b.Params())
	fa, fb := a.Params().Flatten(), b.Params().Flatten()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("CopyValuesTo mismatch at %d", i)
		}
	}

	for _, p := range a.Params() {
		p.Grad.Fill(1)
	}
	for _, p := range b.Params() {
		p.Grad.Fill(2)
	}
	a.Params().AddGrads(b.Params())
	for _, p := range a.Params() {
		for _, g := range p.Grad {
			if g != 3 {
				t.Fatalf("AddGrads: got %v", g)
			}
		}
	}
	a.Params().ScaleGrads(0.5)
	for _, p := range a.Params() {
		for _, g := range p.Grad {
			if g != 1.5 {
				t.Fatalf("ScaleGrads: got %v", g)
			}
		}
	}
}

func TestMatrixParamPanicsOnVector(t *testing.T) {
	p := NewVectorParam("v", 3)
	defer func() {
		if recover() == nil {
			t.Fatalf("Matrix() on vector param must panic")
		}
	}()
	p.Matrix()
}
