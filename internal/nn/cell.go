package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Cell abstracts the recurrent units compared in §6.2 of the paper: a basic
// tanh unit, a gated recurrent unit (GRU) and a long short-term memory
// (LSTM) unit. The paper selects the GRU after finding it performs best.
//
// A cell maps (state, input) → new state. The externally visible hidden
// vector — what the predictor reads and what the serving tier stores per
// user — is the first HiddenSize() components of the state. For GRU and
// tanh cells the state is exactly the hidden vector; for the LSTM the state
// is [h; c] and StateSize() == 2·HiddenSize().
type Cell interface {
	// InputSize is the length of the per-step input vector.
	InputSize() int
	// HiddenSize is the length of the externally visible hidden vector.
	HiddenSize() int
	// StateSize is the length of the full recurrent state.
	StateSize() int
	// Params returns all learnable parameters of the cell.
	Params() Params
	// Step computes the next state from the previous state and the input,
	// returning an opaque cache holding the intermediates required by
	// Backward. Step must not retain or mutate its arguments.
	Step(state, x tensor.Vector) (next tensor.Vector, cache StepCache)
	// Backward propagates dNext (gradient w.r.t. the state returned by
	// Step) through the step that produced cache, accumulating parameter
	// gradients and accumulating input/state gradients into dx and dPrev.
	// Either dx or dPrev may be nil to skip that computation.
	Backward(cache StepCache, dNext, dx, dPrev tensor.Vector)
}

// StepCache holds per-step intermediates for backpropagation through time.
type StepCache any

// InferenceCell is implemented by cells that can advance the state without
// recording a backprop cache — the serving hot path, where per-update
// allocations turn into GC pressure that caps multi-core throughput.
type InferenceCell interface {
	// StepInfer writes the next state into dst (length StateSize) using
	// scratch (length ScratchSize) for intermediates. It must produce
	// bit-identical states to Step. dst must not alias state or x.
	StepInfer(dst, state, x, scratch tensor.Vector)
	// ScratchSize is the required scratch length for StepInfer.
	ScratchSize() int
}

// PrecisionTier selects the numeric tier of the serving compute path. The
// f64 tier is the reference: bit-identical to training-time Step, and the
// digest the replication/replay machinery compares against. The f32 tier is
// the fast path — half the memory traffic and packed kernels — with its own
// internally consistent accumulation contract (see tensor.Matrix32): f32
// batched and f32 sequential replay agree bit-for-bit with each other,
// while f32 vs f64 agreement is bounded-error only.
type PrecisionTier int

const (
	// TierF64 runs inference through the float64 reference kernels.
	TierF64 PrecisionTier = iota
	// TierF32 runs inference through the float32 fused kernels.
	TierF32
)

// String returns the flag spelling of the tier.
func (t PrecisionTier) String() string {
	switch t {
	case TierF64:
		return "f64"
	case TierF32:
		return "f32"
	default:
		return fmt.Sprintf("PrecisionTier(%d)", int(t))
	}
}

// ParsePrecision parses a -precision flag value.
func ParsePrecision(s string) (PrecisionTier, error) {
	switch s {
	case "f64":
		return TierF64, nil
	case "f32":
		return TierF32, nil
	default:
		return TierF64, fmt.Errorf("unknown precision %q (want f64 or f32)", s)
	}
}

// InferenceCell32 is implemented by cells that can advance the state in
// float32 — the serving fast tier. Implementations follow the f32
// accumulation contract of the tensor package, so any two f32 paths over
// the same inputs (scalar vs batched, replica vs replay) produce
// bit-identical states; agreement with the f64 Step/StepInfer path is
// bounded-error, pinned by the cross-tier tests.
type InferenceCell32 interface {
	// InputSize32 is the padded per-step input length the f32 paths expect:
	// InputSize rounded up to a multiple of 4 (the packed-kernel reduction
	// width), with the tail columns zero.
	InputSize32() int
	// StepInfer32 writes the next state into dst (length StateSize) from
	// state (length StateSize) and the padded input x (length InputSize32),
	// using scratch (length ScratchSize32). dst must not alias state or x.
	StepInfer32(dst, state, x, scratch tensor.Vector32)
	// ScratchSize32 is the required scratch length for StepInfer32.
	ScratchSize32() int
}

// BatchInferenceCell32 is the float32 twin of BatchInferenceCell: advance B
// states in one call, with the gate epilogue fused into the GEMM
// write-back. Row b of dst must be bit-identical to StepInfer32 on row b.
type BatchInferenceCell32 interface {
	// StepInferBatch32 writes the next states into dst (B × StateSize) from
	// states (B × StateSize) and padded inputs xs (B × InputSize32),
	// allocating intermediates from arena (reset by the caller between
	// batches). dst must not alias states or xs.
	StepInferBatch32(dst, states, xs *tensor.Matrix32, arena *tensor.Arena32)
	// BatchScratchSize32 returns the arena demand (float32s) of one
	// StepInferBatch32 call at batch size B.
	BatchScratchSize32(B int) int
}

// CellKind names a recurrent cell architecture.
type CellKind string

// Supported cell architectures (§6.2).
const (
	CellGRU  CellKind = "gru"
	CellLSTM CellKind = "lstm"
	CellTanh CellKind = "tanh"
)

// NewCell constructs a cell of the given kind with PyTorch-default
// uniform(-1/√hidden, 1/√hidden) initialisation.
func NewCell(kind CellKind, inputSize, hiddenSize int, rng *tensor.RNG) Cell {
	switch kind {
	case CellGRU:
		return NewGRUCell(inputSize, hiddenSize, rng)
	case CellLSTM:
		return NewLSTMCell(inputSize, hiddenSize, rng)
	case CellTanh:
		return NewTanhCell(inputSize, hiddenSize, rng)
	default:
		panic("nn: unknown cell kind " + string(kind))
	}
}
