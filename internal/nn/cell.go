package nn

import "repro/internal/tensor"

// Cell abstracts the recurrent units compared in §6.2 of the paper: a basic
// tanh unit, a gated recurrent unit (GRU) and a long short-term memory
// (LSTM) unit. The paper selects the GRU after finding it performs best.
//
// A cell maps (state, input) → new state. The externally visible hidden
// vector — what the predictor reads and what the serving tier stores per
// user — is the first HiddenSize() components of the state. For GRU and
// tanh cells the state is exactly the hidden vector; for the LSTM the state
// is [h; c] and StateSize() == 2·HiddenSize().
type Cell interface {
	// InputSize is the length of the per-step input vector.
	InputSize() int
	// HiddenSize is the length of the externally visible hidden vector.
	HiddenSize() int
	// StateSize is the length of the full recurrent state.
	StateSize() int
	// Params returns all learnable parameters of the cell.
	Params() Params
	// Step computes the next state from the previous state and the input,
	// returning an opaque cache holding the intermediates required by
	// Backward. Step must not retain or mutate its arguments.
	Step(state, x tensor.Vector) (next tensor.Vector, cache StepCache)
	// Backward propagates dNext (gradient w.r.t. the state returned by
	// Step) through the step that produced cache, accumulating parameter
	// gradients and accumulating input/state gradients into dx and dPrev.
	// Either dx or dPrev may be nil to skip that computation.
	Backward(cache StepCache, dNext, dx, dPrev tensor.Vector)
}

// StepCache holds per-step intermediates for backpropagation through time.
type StepCache any

// InferenceCell is implemented by cells that can advance the state without
// recording a backprop cache — the serving hot path, where per-update
// allocations turn into GC pressure that caps multi-core throughput.
type InferenceCell interface {
	// StepInfer writes the next state into dst (length StateSize) using
	// scratch (length ScratchSize) for intermediates. It must produce
	// bit-identical states to Step. dst must not alias state or x.
	StepInfer(dst, state, x, scratch tensor.Vector)
	// ScratchSize is the required scratch length for StepInfer.
	ScratchSize() int
}

// CellKind names a recurrent cell architecture.
type CellKind string

// Supported cell architectures (§6.2).
const (
	CellGRU  CellKind = "gru"
	CellLSTM CellKind = "lstm"
	CellTanh CellKind = "tanh"
)

// NewCell constructs a cell of the given kind with PyTorch-default
// uniform(-1/√hidden, 1/√hidden) initialisation.
func NewCell(kind CellKind, inputSize, hiddenSize int, rng *tensor.RNG) Cell {
	switch kind {
	case CellGRU:
		return NewGRUCell(inputSize, hiddenSize, rng)
	case CellLSTM:
		return NewLSTMCell(inputSize, hiddenSize, rng)
	case CellTanh:
		return NewTanhCell(inputSize, hiddenSize, rng)
	default:
		panic("nn: unknown cell kind " + string(kind))
	}
}
