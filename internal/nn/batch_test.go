package nn

import (
	"testing"

	"repro/internal/tensor"
)

// TestGRUStepInferBatchMatchesStepInfer requires the batched GEMM path to
// produce bit-identical states to the per-session scratch path, across
// chained steps (realistic state magnitudes), sparse one-hot-ish inputs
// (the update-input shape), and batch sizes around the 4×4 tile edges.
func TestGRUStepInferBatchMatchesStepInfer(t *testing.T) {
	rng := tensor.NewRNG(42)
	c := NewGRUCell(17, 24, rng)
	arena := tensor.NewArena(0)
	scratch := tensor.NewVector(c.ScratchSize())
	want := tensor.NewVector(c.StateSize())

	for _, B := range []int{1, 2, 4, 5, 8, 13} {
		states := tensor.NewMatrix(B, c.StateSize())
		xs := tensor.NewMatrix(B, c.InputSize())
		dst := tensor.NewMatrix(B, c.StateSize())
		for step := 0; step < 10; step++ {
			xs.Zero()
			for b := 0; b < B; b++ {
				row := xs.Row(b)
				if step%2 == 0 { // sparse one-hot-ish input
					row[rng.Intn(len(row))] = 1
					row[rng.Intn(len(row))] = 1
				} else { // dense input
					for i := range row {
						row[i] = rng.NormFloat64()
					}
				}
			}
			arena.Reset()
			c.StepInferBatch(dst, states, xs, arena)
			for b := 0; b < B; b++ {
				c.StepInfer(want, states.Row(b), xs.Row(b), scratch)
				for i, w := range want {
					if got := dst.At(b, i); got != w {
						t.Fatalf("B=%d step %d row %d dim %d: batch %v vs scalar %v", B, step, b, i, got, w)
					}
				}
			}
			// Chain: next step starts from the batched states.
			copy(states.Data, dst.Data)
		}
	}
}

// TestStackedStepInferBatchMatchesStep checks the stacked batched path
// (GRU layers batched, state gather/scatter) against the sequential Step
// path the stacked cell uses today.
func TestStackedStepInferBatchMatchesStep(t *testing.T) {
	for _, kind := range []CellKind{CellGRU, CellLSTM} {
		rng := tensor.NewRNG(7)
		s := NewStackedCell(kind, 11, 9, 2, rng)
		arena := tensor.NewArena(0)
		const B = 6
		states := tensor.NewMatrix(B, s.StateSize())
		xs := tensor.NewMatrix(B, s.InputSize())
		dst := tensor.NewMatrix(B, s.StateSize())
		for step := 0; step < 6; step++ {
			for b := 0; b < B; b++ {
				row := xs.Row(b)
				for i := range row {
					row[i] = rng.NormFloat64()
				}
			}
			arena.Reset()
			s.StepInferBatch(dst, states, xs, arena)
			for b := 0; b < B; b++ {
				want, _ := s.Step(states.Row(b), xs.Row(b))
				for i, w := range want {
					if got := dst.At(b, i); got != w {
						t.Fatalf("%s step %d row %d dim %d: batch %v vs Step %v", kind, step, b, i, got, w)
					}
				}
			}
			copy(states.Data, dst.Data)
		}
	}
}

// TestBatchInferenceCellImplementations documents which cells batch.
func TestBatchInferenceCellImplementations(t *testing.T) {
	rng := tensor.NewRNG(1)
	if _, ok := Cell(NewGRUCell(4, 4, rng)).(BatchInferenceCell); !ok {
		t.Fatalf("GRU must implement BatchInferenceCell")
	}
	if _, ok := Cell(NewStackedCell(CellGRU, 4, 4, 2, rng)).(BatchInferenceCell); !ok {
		t.Fatalf("stacked cell must implement BatchInferenceCell")
	}
}

// TestGRUStepInferBatchSteadyStateAllocs pins the zero-alloc claim: after
// the first batch at a given shape, the batched step allocates nothing.
func TestGRUStepInferBatchSteadyStateAllocs(t *testing.T) {
	rng := tensor.NewRNG(3)
	c := NewGRUCell(30, 32, rng)
	const B = 16
	arena := tensor.NewArena(0)
	states := tensor.NewMatrix(B, c.StateSize())
	xs := tensor.NewMatrix(B, c.InputSize())
	dst := tensor.NewMatrix(B, c.StateSize())
	for b := 0; b < B; b++ {
		xs.Row(b)[b%30] = 1
	}
	arena.Reset()
	c.StepInferBatch(dst, states, xs, arena) // warm the arena
	if allocs := testing.AllocsPerRun(20, func() {
		arena.Reset()
		c.StepInferBatch(dst, states, xs, arena)
	}); allocs != 0 {
		t.Fatalf("StepInferBatch steady state: %v allocs/op, want 0", allocs)
	}
}
