package nn

import (
	"sync"

	"repro/internal/tensor"
)

// Float32 fast-tier GRU: the same PyTorch gate equations as gru.go, run
// entirely in float32 with the gate epilogue fused into the matmul
// write-back. Two structural differences from the f64 path:
//
//   - The scalar step never materialises the recurrent pre-activation
//     vector gh: each element's three recurrent dots (r, z, n rows of Whh)
//     are computed right before its gates are applied, so the values go
//     straight from registers into σ/tanh.
//   - The batched step computes gh in small row blocks (ghBlockRows) and
//     runs the gate epilogue on each block while it is still L1-hot,
//     instead of the f64 path's full-panel GEMM followed by a second full
//     pass. The input side is routed row by row through giRow: sparse rows
//     (the serving one-hot case) take the transposed-axpy product, dense
//     rows the 4-lane matvec — the same per-row decision in scalar and
//     batched form, so the routes can never diverge a replay.
//
// Both paths spell the gate expressions identically and share Sigmoid32/
// Tanh32 and the 4-lane dot contract, so batched and scalar f32 states are
// bit-for-bit equal (pinned by TestGRUStepInferBatch32MatchesStepInfer32).
// Weight matrices are padded with zero columns to a multiple of 4 for the
// packed kernels; padding is exact (±0 lane terms).

// pad4 rounds n up to the packed-kernel reduction width.
func pad4(n int) int { return (n + 3) &^ 3 }

// ghBlockRows is the row-block size of the batched recurrent product: 8
// rows × 3h gate columns of float32 stay L1-resident at the paper's hidden
// sizes, so the fused epilogue reads them back before they spill.
const ghBlockRows = 8

// gruF32 holds the float32 shadow of a GRUCell's weights, padded to the
// kernel contract, built once on first use.
type gruF32 struct {
	once        sync.Once
	inPad, hPad int
	wih, whh    *tensor.Matrix32 // 3h × inPad, 3h × hPad
	wihT        *tensor.Matrix32 // inPad × 3h: transposed copy for sparse inputs
	bih, bhh    tensor.Vector32  // 3h
}

// giRow computes the input-side pre-activations for one padded input row,
// routing sparse rows (the serving case: a handful of one-hot features)
// through the transposed-axpy product and dense rows through the 4-lane
// matvec. Scalar and batched steps both come through here, so a row's
// route — and therefore its bits — never depends on which path ran it.
func (w *gruF32) giRow(gi, x tensor.Vector32) {
	if !w.wihT.MulVecT(gi, x) {
		w.wih.MulVecDense(gi, x)
	}
}

// weights32 returns the f32 shadow, building it on first call.
func (c *GRUCell) weights32() *gruF32 {
	w := &c.f32
	w.once.Do(func() {
		h3 := 3 * c.hidden
		w.inPad, w.hPad = pad4(c.in), pad4(c.hidden)
		w.wih = tensor.NewMatrix32(h3, w.inPad)
		w.whh = tensor.NewMatrix32(h3, w.hPad)
		for r := 0; r < h3; r++ {
			w.wih.Row(r)[:c.in].CopyFromF64(c.Wih.Value[r*c.in : (r+1)*c.in])
			w.whh.Row(r)[:c.hidden].CopyFromF64(c.Whh.Value[r*c.hidden : (r+1)*c.hidden])
		}
		w.wihT = tensor.NewMatrix32(w.inPad, h3)
		for j := 0; j < c.in; j++ {
			for r := 0; r < h3; r++ {
				w.wihT.Set(j, r, w.wih.At(r, j))
			}
		}
		w.bih = tensor.NewVector32(h3)
		w.bhh = tensor.NewVector32(h3)
		w.bih.CopyFromF64(c.Bih.Value)
		w.bhh.CopyFromF64(c.Bhh.Value)
	})
	return w
}

// InputSize32 returns the padded input length of the f32 paths.
func (c *GRUCell) InputSize32() int { return pad4(c.in) }

// ScratchSize32 returns the StepInfer32 scratch requirement: the input-side
// pre-activations plus the padded hidden copy.
func (c *GRUCell) ScratchSize32() int { return 3*c.hidden + pad4(c.hidden) }

// StepInfer32 advances one state in float32 with the recurrent product
// fused into the gate loop: gi comes from one routed matvec (giRow), and
// each element's three Whh row dots feed σ/tanh directly — gh is never
// written to memory. Biases are added at gate time, in the same expression
// shape as the batched epilogue.
func (c *GRUCell) StepInfer32(dst, state, x, scratch tensor.Vector32) {
	w := c.weights32()
	h := c.hidden
	gi := scratch[:3*h]
	hp := scratch[3*h : 3*h+w.hPad]
	copy(hp, state)
	for i := h; i < w.hPad; i++ {
		hp[i] = 0
	}
	w.giRow(gi, x)
	bih, bhh := w.bih, w.bhh
	for i := 0; i < h; i++ {
		ghr := dot4lanesRow(w.whh, i, hp)
		ghz := dot4lanesRow(w.whh, h+i, hp)
		ghn := dot4lanesRow(w.whh, 2*h+i, hp)
		r := Sigmoid32((gi[i] + bih[i]) + (ghr + bhh[i]))
		z := Sigmoid32((gi[h+i] + bih[h+i]) + (ghz + bhh[h+i]))
		q := ghn + bhh[2*h+i]
		n := Tanh32((gi[2*h+i] + bih[2*h+i]) + r*q)
		dst[i] = (1-z)*n + z*state[i]
	}
}

// dot4lanesRow is tensor.Dot4Lanes over row r of m — a tiny wrapper that
// keeps the row slicing in one place.
func dot4lanesRow(m *tensor.Matrix32, r int, x tensor.Vector32) float32 {
	return tensor.Dot4Lanes(m.Row(r), x)
}

// BatchScratchSize32 returns the arena demand of StepInferBatch32: the gi
// panel, the padded state panel, and one gh row block.
func (c *GRUCell) BatchScratchSize32(B int) int {
	return 3*c.hidden*B + pad4(c.hidden)*B + ghBlockRows*3*c.hidden
}

// StepInferBatch32 advances B states in float32. The input side is giRow
// per row (the same routing as the scalar step); the recurrent side runs in
// ghBlockRows-row blocks
// with the gate epilogue applied to each block straight after its GEMM,
// while the pre-activations are still cache-hot. Row b is bit-identical to
// StepInfer32 on row b.
func (c *GRUCell) StepInferBatch32(dst, states, xs *tensor.Matrix32, arena *tensor.Arena32) {
	w := c.weights32()
	h := c.hidden
	B := xs.Rows
	gi := arena.Matrix(B, 3*h)
	for b := 0; b < B; b++ {
		w.giRow(gi.Row(b), xs.Row(b))
	}
	// Padded copy of the state panel for the packed kernels; the pad
	// columns must be zero (arena contents are unspecified).
	hs := arena.Matrix(B, w.hPad)
	for b := 0; b < B; b++ {
		hr := hs.Row(b)
		copy(hr, states.Row(b))
		for i := h; i < w.hPad; i++ {
			hr[i] = 0
		}
	}
	ghBlock := arena.Matrix(ghBlockRows, 3*h)
	bih, bhh := w.bih, w.bhh
	for b0 := 0; b0 < B; b0 += ghBlockRows {
		nb := B - b0
		if nb > ghBlockRows {
			nb = ghBlockRows
		}
		blk := tensor.Matrix32{Rows: nb, Cols: w.hPad, Data: hs.Data[b0*w.hPad : (b0+nb)*w.hPad]}
		gh := tensor.Matrix32{Rows: nb, Cols: 3 * h, Data: ghBlock.Data[:nb*3*h]}
		blk.MulMatT(&gh, w.whh)
		for b := b0; b < b0+nb; b++ {
			gib, ghb := gi.Row(b), gh.Row(b-b0)
			st, db := states.Row(b), dst.Row(b)
			for i := 0; i < h; i++ {
				r := Sigmoid32((gib[i] + bih[i]) + (ghb[i] + bhh[i]))
				z := Sigmoid32((gib[h+i] + bih[h+i]) + (ghb[h+i] + bhh[h+i]))
				q := ghb[2*h+i] + bhh[2*h+i]
				n := Tanh32((gib[2*h+i] + bih[2*h+i]) + r*q)
				db[i] = (1-z)*n + z*st[i]
			}
		}
	}
}
