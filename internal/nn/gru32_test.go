package nn

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/tensor"
)

// fillPadded32 writes a random padded f32 input row: real values in
// [:in], zeros in the pad tail. sparse=true mimics the serving update
// input (a handful of one-hot features), which routes the sparse matvec.
func fillPadded32(rng *tensor.RNG, row tensor.Vector32, in int, sparse bool) {
	row.Zero()
	if sparse {
		row[rng.Intn(in)] = 1
		row[rng.Intn(in)] = 1
		row[in-1] = float32(rng.NormFloat64())
		return
	}
	for i := 0; i < in; i++ {
		row[i] = float32(rng.NormFloat64())
	}
}

// TestGRUStepInferBatch32MatchesStepInfer32 pins the fused-tier parity
// property: every row of the batched f32 step is bit-identical to the
// scalar f32 step, across padded (odd) and aligned hidden sizes, sparse
// and dense input routing, and ragged tail blocks.
func TestGRUStepInferBatch32MatchesStepInfer32(t *testing.T) {
	for _, tc := range []struct {
		in, hidden, B int
		sparse        bool
	}{
		{13, 19, 13, false}, // everything padded + ragged 8-row tail
		{300, 64, 21, true}, // serving shape: one-hot input, sparse route
		{37, 128, 8, false}, // aligned hidden, single full block
		{5, 6, 3, false},    // below the GEMM tile, edge kernels only
	} {
		rng := tensor.NewRNG(uint64(100 + tc.hidden))
		c := NewGRUCell(tc.in, tc.hidden, rng)
		inPad := c.InputSize32()
		xs := tensor.NewMatrix32(tc.B, inPad)
		states := tensor.NewMatrix32(tc.B, tc.hidden)
		for b := 0; b < tc.B; b++ {
			fillPadded32(rng, xs.Row(b), tc.in, tc.sparse)
			for i := range states.Row(b) {
				states.Row(b)[i] = float32(rng.NormFloat64())
			}
		}
		arena := tensor.NewArena32(0)
		arena.Reset()
		dst := tensor.NewMatrix32(tc.B, tc.hidden)
		c.StepInferBatch32(dst, states, xs, arena)

		scratch := tensor.NewVector32(c.ScratchSize32())
		for i := range scratch {
			scratch[i] = 1e9 // dirty: StepInfer32 must fully overwrite
		}
		row := tensor.NewVector32(tc.hidden)
		for b := 0; b < tc.B; b++ {
			c.StepInfer32(row, states.Row(b), xs.Row(b), scratch)
			for i := range row {
				if math.Float32bits(row[i]) != math.Float32bits(dst.At(b, i)) {
					t.Fatalf("in=%d h=%d B=%d row %d dim %d: scalar %v vs batch %v",
						tc.in, tc.hidden, tc.B, b, i, row[i], dst.At(b, i))
				}
			}
		}
	}
}

// TestGRUStepInfer32CloseToF64 chains 30 f32 steps next to the f64
// reference from identical (rounded) inputs and requires the state drift
// to stay inside the fast tier's bounded-error budget.
func TestGRUStepInfer32CloseToF64(t *testing.T) {
	rng := tensor.NewRNG(7)
	const in, hidden = 31, 64
	c := NewGRUCell(in, hidden, rng)

	st64 := tensor.NewVector(hidden)
	dst64 := tensor.NewVector(hidden)
	scratch64 := tensor.NewVector(c.ScratchSize())
	x64 := tensor.NewVector(in)

	st32 := tensor.NewVector32(hidden)
	dst32 := tensor.NewVector32(hidden)
	scratch32 := tensor.NewVector32(c.ScratchSize32())
	x32 := tensor.NewVector32(c.InputSize32())

	var maxErr float64
	for step := 0; step < 30; step++ {
		for i := range x64 {
			x32[i] = float32(rng.NormFloat64())
			x64[i] = float64(x32[i]) // both tiers see the same rounded input
		}
		c.StepInfer(dst64, st64, x64, scratch64)
		c.StepInfer32(dst32, st32, x32, scratch32)
		copy(st64, dst64)
		copy(st32, dst32)
		for i := range dst64 {
			if err := math.Abs(float64(dst32[i]) - dst64[i]); err > maxErr {
				maxErr = err
			}
		}
	}
	if maxErr > 2e-3 {
		t.Fatalf("f32/f64 state drift %v after 30 steps, want <= 2e-3", maxErr)
	}
	if maxErr == 0 {
		t.Fatalf("suspicious exact agreement — f32 path probably not exercised")
	}
}

// TestGRUStepInfer32SteadyStateAllocs pins the scalar fast path at zero
// allocations once the shadow weights exist.
func TestGRUStepInfer32SteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts, so the nzPool buffer reallocates")
	}
	rng := tensor.NewRNG(8)
	c := NewGRUCell(300, 64, rng)
	x := tensor.NewVector32(c.InputSize32())
	fillPadded32(rng, x, 300, true)
	st := tensor.NewVector32(c.StateSize())
	dst := tensor.NewVector32(c.StateSize())
	scratch := tensor.NewVector32(c.ScratchSize32())
	c.StepInfer32(dst, st, x, scratch) // builds the shadow, warms the pool
	if allocs := testing.AllocsPerRun(20, func() { c.StepInfer32(dst, st, x, scratch) }); allocs != 0 {
		t.Fatalf("StepInfer32: %v allocs/op, want 0", allocs)
	}
}

// TestGRUStepInferBatch32SteadyStateAllocs pins the batched fast path at
// zero allocations once the arena has grown to demand.
func TestGRUStepInferBatch32SteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts, so the nzPool buffer reallocates")
	}
	rng := tensor.NewRNG(9)
	const B = 32
	c := NewGRUCell(300, 64, rng)
	xs := tensor.NewMatrix32(B, c.InputSize32())
	states := tensor.NewMatrix32(B, c.StateSize())
	dst := tensor.NewMatrix32(B, c.StateSize())
	for b := 0; b < B; b++ {
		fillPadded32(rng, xs.Row(b), 300, true)
	}
	arena := tensor.NewArena32(c.BatchScratchSize32(B))
	arena.Reset()
	c.StepInferBatch32(dst, states, xs, arena)
	arena.Reset()
	if allocs := testing.AllocsPerRun(10, func() {
		arena.Reset()
		c.StepInferBatch32(dst, states, xs, arena)
	}); allocs != 0 {
		t.Fatalf("StepInferBatch32: %v allocs/op, want 0", allocs)
	}
}

// TestInferenceCell32Implementations documents which cells carry the fast
// tier: the GRU (the paper's selected cell) does; the rest fall back to
// f64 via the tier-selection seam.
func TestInferenceCell32Implementations(t *testing.T) {
	rng := tensor.NewRNG(1)
	gru := NewGRUCell(4, 4, rng)
	if _, ok := Cell(gru).(InferenceCell32); !ok {
		t.Fatalf("GRU must implement InferenceCell32")
	}
	if _, ok := Cell(gru).(BatchInferenceCell32); !ok {
		t.Fatalf("GRU must implement BatchInferenceCell32")
	}
	if _, ok := Cell(NewLSTMCell(4, 4, rng)).(InferenceCell32); ok {
		t.Fatalf("LSTM unexpectedly implements InferenceCell32 — update the tier fallback docs")
	}
}

// BenchmarkGRUStepInferBatch measures the fused f32 batched step against
// the f64 baseline at the serving shape.
func BenchmarkGRUStepInferBatch(b *testing.B) {
	rng := tensor.NewRNG(10)
	for _, h := range []int{64, 128} {
		const B, in = 64, 300
		c := NewGRUCell(in, h, rng)
		xs32 := tensor.NewMatrix32(B, c.InputSize32())
		states32 := tensor.NewMatrix32(B, h)
		dst32 := tensor.NewMatrix32(B, h)
		for bb := 0; bb < B; bb++ {
			fillPadded32(rng, xs32.Row(bb), in, true)
		}
		arena32 := tensor.NewArena32(c.BatchScratchSize32(B))
		b.Run("f32-d"+strconv.Itoa(h), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				arena32.Reset()
				c.StepInferBatch32(dst32, states32, xs32, arena32)
			}
		})
		xs := tensor.NewMatrix(B, in)
		states := tensor.NewMatrix(B, h)
		dst := tensor.NewMatrix(B, h)
		for bb := 0; bb < B; bb++ {
			xs.Row(bb)[rng.Intn(in)] = 1
		}
		arena := tensor.NewArena(c.BatchScratchSize(B))
		b.Run("f64-d"+strconv.Itoa(h), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				arena.Reset()
				c.StepInferBatch(dst, states, xs, arena)
			}
		})
	}
}
