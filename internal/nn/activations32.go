package nn

import "math"

// Float32 activations for the serving fast tier. The f64 path goes through
// math.Exp/math.Tanh; here both gates are computed in pure float32
// arithmetic — every operation is an exactly-rounded IEEE-754 single op, so
// the results are bit-identical on every platform and the f32 scalar and
// batched GRU paths (which share these functions) stay replay-equivalent.
//
// The formulations are deliberately branch-free on the hot range: the gate
// epilogue evaluates these on thousands of random pre-activations per
// batch, where a 50/50 data-dependent branch (like the f64 Sigmoid's sign
// split) mispredicts constantly and costs more than the whole polynomial.
// Only the saturation clamp in exp32 branches, and it is almost never
// taken. Accuracy is a few 1e-7 absolute against the f64 functions (pinned
// by TestSigmoid32Accuracy / TestTanh32Accuracy) — the gates only need
// absolute accuracy, since σ and tanh outputs are O(1); far inside the f32
// tier's bounded-error budget.

const (
	log2ef = 1.44269504088896340735992468100189214
	// Two-part ln2 for the Cephes-style argument reduction: expC1 has only
	// 9 significant bits, so n·expC1 is exact in float32 for every exponent
	// n in range, and the reduced argument g = (x − n·expC1) − n·expC2
	// avoids the large-|x| rounding that a single x·log2e split would pick
	// up from the ulp of the product.
	expC1 = 0.693359375
	expC2 = -2.12194440e-4
	// expClamp keeps e^x inside the float32 normal range (e^±87 ≈ 6e±37);
	// beyond it the gates are saturated anyway.
	expClamp = 87.0
	// round32 is the classic 1.5·2^23 magic constant: adding and
	// subtracting it rounds a float32 in [-2^22, 2^22] to the nearest
	// integer (ties to even) with no branch and no float64 excursion.
	round32 = 1 << 23 * 1.5
)

// exp32 computes e^x in float32, with x clamped to ±expClamp: n is the
// nearest integer to x·log2e, the reduced argument g = x − n·ln2 ∈
// [−ln2/2, ln2/2] comes from the split constants above, e^g is its
// degree-6 Taylor polynomial (the degree-7 term is ≈1.2e-7 relative on
// this interval), and 2^n is applied by exponent-field construction.
func exp32(x float32) float32 {
	if x > expClamp {
		x = expClamp
	}
	if x < -expClamp {
		x = -expClamp
	}
	nf := (x*log2ef + round32) - round32
	n := int32(nf)
	g := (x - nf*expC1) - nf*expC2
	p := float32(1.0 / 720)
	p = p*g + 1.0/120
	p = p*g + 1.0/24
	p = p*g + 1.0/6
	p = p*g + 0.5
	p = p*g + 1
	p = p*g + 1
	return p * math.Float32frombits(uint32(n+127)<<23)
}

// Sigmoid32 returns σ(x) = 1/(1+e^(−x)) in float32. One formula for both
// signs: the clamp in exp32 keeps e^(−x) finite, and for saturated-negative
// inputs the result is a tiny normal rather than the f64 branch's exact
// relative accuracy — the gates only need absolute accuracy.
func Sigmoid32(x float32) float32 {
	return 1 / (1 + exp32(-x))
}

// Tanh32 returns tanh(x) = (e^(2x)−1)/(e^(2x)+1) in float32. Near zero the
// subtraction cancels — which costs relative accuracy of a tiny result but
// at most one ulp of 1 in absolute terms; at the clamp both ratios round
// to ±1 exactly.
func Tanh32(x float32) float32 {
	e := exp32(2 * x)
	return (e - 1) / (e + 1)
}
