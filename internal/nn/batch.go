package nn

import (
	"math"

	"repro/internal/tensor"
)

// BatchInferenceCell is implemented by cells that can advance many hidden
// states in one call. The serving tier's batch finaliser packs the inputs
// [x_1 … x_B] and states [h_1 … h_B] of B due sessions into row-major
// panels (row b = session b, i.e. column b of the math-view column-major
// panel) and computes all gate pre-activations as two GEMMs per step, so
// the 3h×d weight matrices are streamed from memory once per batch instead
// of once per session.
type BatchInferenceCell interface {
	// StepInferBatch writes the next states into dst (B × StateSize), given
	// states (B × StateSize) and inputs xs (B × InputSize), allocating any
	// intermediates from arena (which the caller resets between batches —
	// panels already carved from the same arena remain valid). Row b of dst
	// must be bit-identical to the sequential path (StepInfer, and
	// therefore Step) on row b of states/xs. dst must not alias states or
	// xs.
	StepInferBatch(dst, states, xs *tensor.Matrix, arena *tensor.Arena)
	// BatchScratchSize returns the arena demand (float64s) of one
	// StepInferBatch call at batch size B, so callers can presize the
	// arena and keep the steady state allocation-free from the first
	// batch.
	BatchScratchSize(B int) int
}

// BatchScratchSize returns the gate-panel demand of StepInferBatch.
func (c *GRUCell) BatchScratchSize(B int) int { return 6 * c.hidden * B }

// StepInferBatch advances B GRU states in one call: the gate
// pre-activation panels Gi and Gh come from the batched products
// Xs·Wihᵀ and Hs·Whhᵀ, and the per-row gate math then mirrors StepInfer
// expression for expression. The GEMM kernels accumulate each element in
// the same strict k-order as MulVec, so the resulting states are
// bit-identical to the per-session path (pinned by
// TestGRUStepInferBatchMatchesStepInfer and the serving equivalence
// tests).
func (c *GRUCell) StepInferBatch(dst, states, xs *tensor.Matrix, arena *tensor.Arena) {
	h := c.hidden
	B := xs.Rows
	gi := arena.Matrix(B, 3*h)
	gh := arena.Matrix(B, 3*h)
	// Weight views are built inline: Param.Matrix is not inlinable (its
	// panic path formats), so its header would escape — one heap hit per
	// batch that the zero-alloc contract of this path forbids.
	wih := tensor.Matrix{Rows: 3 * h, Cols: c.in, Data: c.Wih.Value}
	whh := tensor.Matrix{Rows: 3 * h, Cols: h, Data: c.Whh.Value}
	// The input side is routed by panel density: session update inputs are
	// mostly one-hot (≈6 nonzeros in a ~300-dim MobileTab input), where the
	// sparse matrix-vector path does ~50× less work than a dense GEMM.
	// Dense panels — e.g. a stacked upper layer fed by the hidden outputs
	// below — take the GEMM and its weight-reuse win. Both routes are
	// bit-identical (±0 terms never move an IEEE-754 running sum).
	if xs.MostlySparse() {
		for b := 0; b < B; b++ {
			wih.MulVec(gi.Row(b), xs.Row(b))
		}
	} else {
		xs.MulMatT(gi, &wih)
	}
	// The recurrent side is dense after the first step — this GEMM is the
	// batching win: Whh is streamed once per batch instead of once per row.
	states.MulMatT(gh, &whh)
	bih, bhh := c.Bih.Value, c.Bhh.Value
	for b := 0; b < B; b++ {
		gib, ghb := gi.Row(b), gh.Row(b)
		gib.Add(bih)
		ghb.Add(bhh)
		st, db := states.Row(b), dst.Row(b)
		for i := 0; i < h; i++ {
			r := Sigmoid(gib[i] + ghb[i])
			z := Sigmoid(gib[h+i] + ghb[h+i])
			q := ghb[2*h+i]
			n := math.Tanh(gib[2*h+i] + r*q)
			db[i] = (1-z)*n + z*st[i]
		}
	}
}

// BatchScratchSize sums the per-layer panel demand of the stacked batched
// step: each layer gathers/scatters B×StateSize panels, batched layers add
// their own scratch, and narrower-than-state hidden outputs need a hand-off
// panel.
func (s *StackedCell) BatchScratchSize(B int) int {
	n := 0
	for i, l := range s.layers {
		n += 2 * l.StateSize() * B
		if bl, ok := l.(BatchInferenceCell); ok {
			n += bl.BatchScratchSize(B)
		}
		if i < len(s.layers)-1 && l.HiddenSize() != l.StateSize() {
			n += l.HiddenSize() * B
		}
	}
	return n
}

// StepInferBatch advances B packed stacked states: each layer's state
// columns are gathered into a contiguous panel, advanced through the
// layer's batched path (or row-by-row Step for cells without one, which is
// exactly what the sequential stacked path runs), and scattered back. The
// hidden prefix of each layer's new state feeds the layer above, mirroring
// StackedCell.Step.
func (s *StackedCell) StepInferBatch(dst, states, xs *tensor.Matrix, arena *tensor.Arena) {
	B := xs.Rows
	in := xs
	for i, l := range s.layers {
		size := l.StateSize()
		ls := arena.Matrix(B, size)
		ld := arena.Matrix(B, size)
		for b := 0; b < B; b++ {
			copy(ls.Row(b), s.layerState(states.Row(b), i))
		}
		if bl, ok := l.(BatchInferenceCell); ok {
			bl.StepInferBatch(ld, ls, in, arena)
		} else {
			for b := 0; b < B; b++ {
				next, _ := l.Step(ls.Row(b), in.Row(b))
				copy(ld.Row(b), next)
			}
		}
		for b := 0; b < B; b++ {
			copy(s.layerState(dst.Row(b), i), ld.Row(b))
		}
		if i < len(s.layers)-1 {
			if hs := l.HiddenSize(); hs == size {
				in = ld
			} else {
				hin := arena.Matrix(B, hs)
				for b := 0; b < B; b++ {
					copy(hin.Row(b), ld.Row(b)[:hs])
				}
				in = hin
			}
		}
	}
}
