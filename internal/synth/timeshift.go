package synth

import (
	"repro/internal/dataset"
	"repro/internal/tensor"
)

// TimeshiftConfig parameterises the Timeshift generator (§4.2): during
// off-peak hours, predict whether the user will need a data-query result in
// a session during the next day's peak window. One labelled example per
// user per day.
type TimeshiftConfig struct {
	Users int
	Days  int
	Seed  uint64
	Start int64
	// NeverAccessFrac is the fraction of users with zero accesses
	// (Figure 1 shows ≈42% in production).
	NeverAccessFrac float64
	// PeakStartHour/PeakEndHour bound the daily peak window in UTC hours.
	PeakStartHour, PeakEndHour int
}

// DefaultTimeshift returns a single-core-scaled configuration.
func DefaultTimeshift() TimeshiftConfig {
	return TimeshiftConfig{
		Users:           4000,
		Days:            dataset.ObservationDays,
		Seed:            2,
		Start:           DefaultStart,
		NeverAccessFrac: 0.25,
		PeakStartHour:   17,
		PeakEndHour:     21,
	}
}

// TimeshiftSchema returns the context schema: only the session timestamp
// and a peak-hours flag are recorded (§4.2 — "any additional context
// quickly loses relevance by prediction time").
func TimeshiftSchema(peakStart, peakEnd int) *dataset.Schema {
	return &dataset.Schema{
		Name:          "Timeshift",
		SessionLength: 20 * 60,
		Cat: []dataset.CatFeature{
			{Name: "is_peak", Cardinality: 2},
		},
		HasPeakWindows: true,
		PeakStartHour:  peakStart,
		PeakEndHour:    peakEnd,
	}
}

// GenerateTimeshift produces a synthetic Timeshift dataset: website
// sessions with a peak-hours flag, plus one PeakWindow example per user per
// day whose label is whether any session in the window used the data query.
//
// Mechanisms: whether the user needs the query during a given peak window
// depends on a weekly rhythm (weekday vs weekend), a multi-day engagement
// streak (users who needed it recently need it again), and overall
// engagement level — learnable from timestamps and past labels alone, which
// is all the timeshift problem provides at prediction time (§3.2.1, eq. 3).
func GenerateTimeshift(cfg TimeshiftConfig) *dataset.Dataset {
	if cfg.Start == 0 {
		cfg.Start = DefaultStart
	}
	if cfg.PeakEndHour == 0 {
		cfg.PeakStartHour, cfg.PeakEndHour = 17, 21
	}
	schema := TimeshiftSchema(cfg.PeakStartHour, cfg.PeakEndHour)
	d := &dataset.Dataset{
		Schema: schema,
		Start:  cfg.Start,
		End:    cfg.Start + int64(cfg.Days)*dataset.Day,
		Users:  make([]*dataset.User, cfg.Users),
	}
	root := tensor.NewRNG(cfg.Seed)

	for ui := 0; ui < cfg.Users; ui++ {
		rng := root.Fork(uint64(ui))
		p := sampleProfile(rng, cfg.NeverAccessFrac)
		// Peak hours are peak hours *because* most users browse then: bias
		// the majority of users' primary diurnal bump into the peak window
		// so the population-level load curve has the evening peak the
		// timeshift problem exists to smooth (§3.2.1).
		if rng.Bernoulli(0.7) {
			p.peakHour1 = float64(cfg.PeakStartHour) +
				float64(cfg.PeakEndHour-cfg.PeakStartHour)*rng.Float64()
		}
		// Weekday preference: some users need the query for work (weekday
		// peak), others socially (weekend peak).
		weekdayUser := rng.Bernoulli(0.65)
		// Multi-day streak state: analogous to the session-level
		// engagement chain but at day granularity.
		streak := false

		u := &dataset.User{ID: ui}
		times := sampleSessionTimes(rng, p, cfg.Start, cfg.Days)
		u.Sessions = make([]dataset.Session, 0, len(times))
		u.Windows = make([]dataset.PeakWindow, 0, cfg.Days)

		// Peak windows are anchored to UTC calendar days; the observation
		// window may start mid-day, so one extra day index can appear at
		// the tail (sessions there feed history but have no window).
		anchor := cfg.Start - cfg.Start%dataset.Day
		needByDay := make([]bool, cfg.Days+1)
		for day := 0; day <= cfg.Days; day++ {
			dayStart := anchor + int64(day)*dataset.Day
			dow := dayOfWeek(dayStart)
			isWeekend := dow == 5 || dow == 6
			logit := p.bias + 1.55 // day-level events are rarer per unit but aggregated over a window
			if streak {
				logit += 1.7
			}
			if weekdayUser != isWeekend {
				logit += 0.8
			} else {
				logit -= 0.8
			}
			need := !p.neverAccess && rng.Bernoulli(logistic(logit))
			needByDay[day] = need
			// Streak persists with 85%, re-ignites with the day's outcome.
			if need {
				streak = true
			} else if streak && rng.Bernoulli(0.5) {
				streak = false
			}
		}

		peakStartSec := int64(cfg.PeakStartHour) * 3600
		peakEndSec := int64(cfg.PeakEndHour) * 3600
		accessedByDay := make([]bool, cfg.Days+1)
		for _, ts := range times {
			day := int((ts - anchor) / dataset.Day)
			secOfDay := ts % dataset.Day
			isPeak := secOfDay >= peakStartSec && secOfDay < peakEndSec
			access := false
			if isPeak && needByDay[day] {
				// The query is used in most peak sessions on "need" days.
				access = rng.Bernoulli(0.75)
			} else if !isPeak && needByDay[day] {
				// The query also gets used off-peak on "need" days — the
				// morning sessions of a need day are a same-day signal
				// visible to the hidden state at prediction time (6 h
				// before the window) but invisible to day-granularity
				// baselines.
				access = rng.Bernoulli(0.22)
			}
			if isPeak && access {
				accessedByDay[day] = true
			}
			flag := 0
			if isPeak {
				flag = 1
			}
			u.Sessions = append(u.Sessions, dataset.Session{
				Timestamp: ts,
				Access:    access,
				Cat:       []int{flag},
			})
		}
		for day := 0; day < cfg.Days; day++ {
			dayStart := anchor + int64(day)*dataset.Day
			ws, we := dayStart+peakStartSec, dayStart+peakEndSec
			if ws < cfg.Start {
				// The first partial day has no complete peak window.
				continue
			}
			u.Windows = append(u.Windows, dataset.PeakWindow{
				Day:      day,
				Start:    ws,
				End:      we,
				Accessed: accessedByDay[day],
			})
		}
		d.Users[ui] = u
	}
	return d
}

// PeakWindowPositiveRate returns the fraction of peak windows with an
// access; exposed for calibration tests.
func PeakWindowPositiveRate(d *dataset.Dataset) float64 {
	pos, total := 0, 0
	for _, u := range d.Users {
		for _, w := range u.Windows {
			total++
			if w.Accessed {
				pos++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(pos) / float64(total)
}

// meanSessionsPerUser is used by calibration tests.
func meanSessionsPerUser(d *dataset.Dataset) float64 {
	if len(d.Users) == 0 {
		return 0
	}
	return float64(d.NumSessions()) / float64(len(d.Users))
}
