// Package synth generates the three evaluation datasets of the paper (§4)
// synthetically. The originals are Facebook production logs (MobileTab,
// Timeshift) and the Mobile Phone Use dataset of Pielot et al.; none is
// available here, so each generator reproduces the *statistical mechanisms*
// the paper attributes to its dataset:
//
//   - Sessions arrive with a per-user diurnal rhythm and power-law
//     inter-arrival gaps (§6.1 notes Δt is power-law distributed).
//   - A large fraction of users never access the activity at all
//     (Figure 1: 36% for MobileTab, 42% for Timeshift).
//   - Access behaviour depends on (a) a per-user latent engagement state
//     that evolves as a Markov chain and decays over long gaps — the
//     history signal an RNN hidden state can track but fixed aggregations
//     summarise only coarsely; (b) session context such as the unread badge
//     count and active tab (MobileTab) or notification app and screen state
//     (MPU); and (c) time-of-day/day-of-week rhythm.
//
// Every generator is deterministic given its config seed: users are
// generated from forked, order-independent RNG streams.
package synth

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

// DefaultStart is the default observation-window start (2019-08-01 07:00
// UTC, the era of the paper's logs). Chosen so day boundaries don't align
// with midnight UTC for any "round" reason; nothing depends on it.
const DefaultStart int64 = 1564642800

// hashMod97 maps a raw identifier to the paper's hashed categorical range
// (§5.2: hash and take the remainder modulo 97).
func hashMod97(raw int) int {
	h := uint64(raw) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	return int(h % 97)
}

// userProfile holds the latent per-user parameters shared by the
// generators.
type userProfile struct {
	// neverAccess marks users with zero accesses over the window.
	neverAccess bool
	// bias is the user's base access logit.
	bias float64
	// dailyRate is the expected number of sessions per day.
	dailyRate float64
	// peakHour1/peakHour2 are the centres of the user's two diurnal usage
	// bumps; width is their spread in hours.
	peakHour1, peakHour2 float64
	width                float64
	// hourAffinity is the hour (0-23) at which the user is most likely to
	// access the activity, independent of when they use the app.
	hourAffinity float64
	// engageDecayHours is the engagement half-life: long gaps between
	// sessions decay the latent engaged state.
	engageDecayHours float64
	// pEngage is the per-session probability of (re-)entering the engaged
	// state when idle.
	pEngage float64
	// engagedBoost is the logit boost while engaged.
	engagedBoost float64
}

func sampleProfile(rng *tensor.RNG, neverFrac float64) userProfile {
	return userProfile{
		neverAccess:      rng.Bernoulli(neverFrac),
		bias:             -3.7 + 0.9*rng.NormFloat64(),
		dailyRate:        rng.LogNormal(0.6, 0.7), // median ≈ 1.8 sessions/day, long tail
		peakHour1:        24 * rng.Float64(),
		peakHour2:        24 * rng.Float64(),
		width:            1.5 + 2*rng.Float64(),
		hourAffinity:     24 * rng.Float64(),
		engageDecayHours: 12 + 60*rng.Float64(),
		pEngage:          0.04 + 0.08*rng.Float64(),
		engagedBoost:     1.6 + 0.6*rng.NormFloat64(),
	}
}

// hourOfDay returns the UTC hour (with fraction) of ts.
func hourOfDay(ts int64) float64 {
	return float64(ts%dataset.Day) / 3600.0
}

// dayOfWeek returns 0..6 for ts (day 0 of the epoch is a Thursday; the
// exact phase is irrelevant, only the 7-day period matters).
func dayOfWeek(ts int64) int {
	return int((ts / dataset.Day) % 7)
}

// circularHourDist returns the circular distance in hours between a and b.
func circularHourDist(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 12 {
		d = 24 - d
	}
	return d
}

// sampleSessionTimes draws session start timestamps for one user across the
// observation window. Counts per day are Poisson around the user's daily
// rate (weekends scaled), and times within a day follow the user's
// two-bump diurnal rhythm. A Pareto jitter is added so inter-arrival gaps
// are power-law distributed, matching §6.1.
func sampleSessionTimes(rng *tensor.RNG, p userProfile, start int64, days int) []int64 {
	var times []int64
	end := start + int64(days)*dataset.Day
	// Anchor days at UTC midnight so sampled hours agree with HourOfDay
	// (the observation window may begin mid-day).
	anchor := start - start%dataset.Day
	for day := 0; day <= days; day++ {
		dayStart := anchor + int64(day)*dataset.Day
		rate := p.dailyRate
		if dow := dayOfWeek(dayStart); dow == 5 || dow == 6 {
			rate *= 1.25 // weekend bump
		}
		n := rng.Poisson(rate)
		for i := 0; i < n; i++ {
			// Pick one of the two diurnal bumps, sample an hour around it.
			centre := p.peakHour1
			if rng.Bernoulli(0.4) {
				centre = p.peakHour2
			}
			h := centre + p.width*rng.NormFloat64()
			h = math.Mod(math.Mod(h, 24)+24, 24)
			// Power-law jitter in seconds keeps sub-hour gaps heavy-tailed.
			jitter := rng.Pareto(1, 1.2)
			if jitter > 1800 {
				jitter = 1800
			}
			ts := dayStart + int64(h*3600) + int64(jitter)
			if ts < start || ts >= end {
				continue
			}
			times = append(times, ts)
		}
	}
	sortInt64(times)
	// Enforce strictly increasing timestamps with a minimum 30 s gap so a
	// "session" is a distinct app start.
	out := times[:0]
	var prev int64 = math.MinInt64 / 2
	for _, ts := range times {
		if ts < prev+30 {
			ts = prev + 30
		}
		if ts >= start+int64(days)*dataset.Day {
			break
		}
		out = append(out, ts)
		prev = ts
	}
	return out
}

func sortInt64(a []int64) {
	// Insertion-free: use sort via interface-free shell sort to avoid an
	// import cycle on sort for a hot path. Gaps from Ciura's sequence.
	gaps := []int{701, 301, 132, 57, 23, 10, 4, 1}
	for _, gap := range gaps {
		for i := gap; i < len(a); i++ {
			tmp := a[i]
			j := i
			for ; j >= gap && a[j-gap] > tmp; j -= gap {
				a[j] = a[j-gap]
			}
			a[j] = tmp
		}
	}
}

// engagement tracks the latent engaged/idle Markov state across sessions,
// with gap-dependent decay: the longer the user has been away, the more
// likely the engaged state has lapsed.
type engagement struct {
	engaged bool
	lastTS  int64
}

func (e *engagement) step(rng *tensor.RNG, p userProfile, ts int64) bool {
	if e.lastTS != 0 {
		gapHours := float64(ts-e.lastTS) / 3600
		if e.engaged {
			pStay := math.Exp(-gapHours / p.engageDecayHours)
			// Even back-to-back sessions lapse occasionally.
			pStay *= 0.97
			if !rng.Bernoulli(pStay) {
				e.engaged = false
			}
		}
	}
	if !e.engaged && rng.Bernoulli(p.pEngage) {
		e.engaged = true
	}
	e.lastTS = ts
	return e.engaged
}

// logistic is the generator's label link function.
func logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
