package synth

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

func smallMobileTab(seed uint64) *dataset.Dataset {
	cfg := DefaultMobileTab()
	cfg.Users = 400
	cfg.Seed = seed
	return GenerateMobileTab(cfg)
}

func smallTimeshift(seed uint64) *dataset.Dataset {
	cfg := DefaultTimeshift()
	cfg.Users = 400
	cfg.Seed = seed
	return GenerateTimeshift(cfg)
}

func smallMPU(seed uint64) *dataset.Dataset {
	cfg := DefaultMPU()
	cfg.Users = 30
	cfg.MeanEventsPerDay = 20
	cfg.Seed = seed
	return GenerateMPU(cfg)
}

func TestMobileTabValid(t *testing.T) {
	d := smallMobileTab(1)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(d.Users) != 400 {
		t.Fatalf("user count: %d", len(d.Users))
	}
	if d.NumSessions() < 5000 {
		t.Fatalf("too few sessions: %d", d.NumSessions())
	}
}

func TestMobileTabPositiveRateBand(t *testing.T) {
	d := smallMobileTab(1)
	pr := d.PositiveRate()
	// Paper: 11.1%. Accept a generous band around it.
	if pr < 0.06 || pr > 0.20 {
		t.Fatalf("MobileTab positive rate %v outside [0.06, 0.20]", pr)
	}
}

func TestMobileTabNeverAccessFraction(t *testing.T) {
	d := smallMobileTab(2)
	zero := 0
	for _, u := range d.Users {
		if u.AccessCount() == 0 {
			zero++
		}
	}
	frac := float64(zero) / float64(len(d.Users))
	// Config sets 36% structurally-never users; random non-accessors in 30
	// days push the observed value a bit higher.
	if frac < 0.25 || frac > 0.55 {
		t.Fatalf("never-access fraction %v outside [0.25, 0.55]", frac)
	}
}

func TestMobileTabDeterminism(t *testing.T) {
	a, b := smallMobileTab(7), smallMobileTab(7)
	if a.NumSessions() != b.NumSessions() {
		t.Fatalf("same seed, different session counts")
	}
	for i := range a.Users {
		as, bs := a.Users[i].Sessions, b.Users[i].Sessions
		if len(as) != len(bs) {
			t.Fatalf("user %d: session count differs", i)
		}
		for j := range as {
			if as[j].Timestamp != bs[j].Timestamp || as[j].Access != bs[j].Access ||
				as[j].Cat[0] != bs[j].Cat[0] || as[j].Cat[1] != bs[j].Cat[1] {
				t.Fatalf("user %d session %d differs", i, j)
			}
		}
	}
	c := smallMobileTab(8)
	if c.NumSessions() == a.NumSessions() && c.PositiveRate() == a.PositiveRate() {
		t.Fatalf("different seeds should differ")
	}
}

func TestMobileTabContextPredictive(t *testing.T) {
	// The unread count must carry signal: access rate for unread ≥ 5 should
	// exceed access rate for unread == 0 by a wide margin.
	d := smallMobileTab(3)
	var hiPos, hiTot, loPos, loTot int
	for _, u := range d.Users {
		for _, s := range u.Sessions {
			if s.Cat[0] >= 5 {
				hiTot++
				if s.Access {
					hiPos++
				}
			} else if s.Cat[0] == 0 {
				loTot++
				if s.Access {
					loPos++
				}
			}
		}
	}
	hi := float64(hiPos) / float64(hiTot)
	lo := float64(loPos) / float64(loTot)
	if hi < lo*1.5 {
		t.Fatalf("unread badge not predictive: hi=%v lo=%v", hi, lo)
	}
}

func TestMobileTabHistoryPredictive(t *testing.T) {
	// Recency signal: sessions whose previous session had an access should
	// themselves access far more often (latent engagement).
	d := smallMobileTab(4)
	var afterPos, afterTot, coldPos, coldTot int
	for _, u := range d.Users {
		for i := 1; i < len(u.Sessions); i++ {
			if u.Sessions[i-1].Access {
				afterTot++
				if u.Sessions[i].Access {
					afterPos++
				}
			} else {
				coldTot++
				if u.Sessions[i].Access {
					coldPos++
				}
			}
		}
	}
	after := float64(afterPos) / float64(afterTot)
	cold := float64(coldPos) / float64(coldTot)
	if after < 2*cold {
		t.Fatalf("history not predictive: after=%v cold=%v", after, cold)
	}
}

func TestMobileTabGapsHeavyTailed(t *testing.T) {
	d := smallMobileTab(5)
	var gaps []float64
	for _, u := range d.Users {
		for i := 1; i < len(u.Sessions); i++ {
			gaps = append(gaps, float64(u.Sessions[i].Timestamp-u.Sessions[i-1].Timestamp))
		}
	}
	if len(gaps) < 1000 {
		t.Skip("not enough gaps")
	}
	// Heavy tail: the 99th percentile should exceed the median by >20x.
	med := quantile(gaps, 0.5)
	p99 := quantile(gaps, 0.99)
	if p99 < 20*med {
		t.Fatalf("gaps not heavy-tailed: median %v, p99 %v", med, p99)
	}
}

func quantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	// insertion-free quickselect substitute: simple sort.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

func TestTimeshiftValid(t *testing.T) {
	d := smallTimeshift(1)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !d.Schema.HasPeakWindows {
		t.Fatalf("timeshift must have peak windows")
	}
	for _, u := range d.Users {
		if len(u.Windows) != DefaultTimeshift().Days {
			t.Fatalf("user must have one window per day; got %d", len(u.Windows))
		}
	}
}

func TestTimeshiftPositiveRateBand(t *testing.T) {
	d := smallTimeshift(1)
	pr := PeakWindowPositiveRate(d)
	// Paper: 7.1% over peak windows. Accept a band.
	if pr < 0.03 || pr > 0.16 {
		t.Fatalf("Timeshift positive rate %v outside [0.03, 0.16]", pr)
	}
	if d.PositiveRate() != pr {
		t.Fatalf("Dataset.PositiveRate must use windows for timeshift")
	}
}

func TestTimeshiftLabelsConsistentWithSessions(t *testing.T) {
	// A window labelled accessed=true must contain at least one
	// access-session inside its bounds, and vice versa.
	d := smallTimeshift(2)
	for _, u := range d.Users {
		inWindow := make(map[int]bool)
		for _, s := range u.Sessions {
			if !s.Access {
				continue
			}
			for wi, w := range u.Windows {
				if s.Timestamp >= w.Start && s.Timestamp < w.End {
					inWindow[wi] = true
					break
				}
			}
		}
		for wi, w := range u.Windows {
			if w.Accessed != inWindow[wi] {
				t.Fatalf("user %d day %d: label %v but sessions say %v",
					u.ID, w.Day, w.Accessed, inWindow[wi])
			}
		}
	}
}

func TestTimeshiftStreaky(t *testing.T) {
	// Day-level streaks: P(access day d | access day d-1) must be much
	// larger than the base rate — the sequence signal for the RNN.
	d := smallTimeshift(3)
	var afterPos, afterTot, basePos, baseTot int
	for _, u := range d.Users {
		for i := 1; i < len(u.Windows); i++ {
			baseTot++
			if u.Windows[i].Accessed {
				basePos++
			}
			if u.Windows[i-1].Accessed {
				afterTot++
				if u.Windows[i].Accessed {
					afterPos++
				}
			}
		}
	}
	after := float64(afterPos) / float64(afterTot)
	base := float64(basePos) / float64(baseTot)
	if after < 3*base {
		t.Fatalf("timeshift not streaky: after=%v base=%v", after, base)
	}
}

func TestMPUValid(t *testing.T) {
	d := smallMPU(1)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestMPUPositiveRateBand(t *testing.T) {
	d := smallMPU(1)
	pr := d.PositiveRate()
	// Paper: 39.7%.
	if pr < 0.25 || pr > 0.55 {
		t.Fatalf("MPU positive rate %v outside [0.25, 0.55]", pr)
	}
}

func TestMPULongHistories(t *testing.T) {
	d := smallMPU(2)
	mean := meanSessionsPerUser(d)
	if mean < 200 {
		t.Fatalf("MPU should have long histories; mean %v", mean)
	}
	// Long tail: max should well exceed the mean.
	maxN := 0
	for _, u := range d.Users {
		if len(u.Sessions) > maxN {
			maxN = len(u.Sessions)
		}
	}
	if float64(maxN) < 2*mean {
		t.Fatalf("MPU session counts should be long-tailed: mean %v max %d", mean, maxN)
	}
}

func TestMPUScreenStatePredictive(t *testing.T) {
	d := smallMPU(3)
	var byState [numScreenStates]struct{ pos, tot int }
	for _, u := range d.Users {
		for _, s := range u.Sessions {
			st := s.Cat[0]
			byState[st].tot++
			if s.Access {
				byState[st].pos++
			}
		}
	}
	unlocked := float64(byState[ScreenUnlocked].pos) / float64(byState[ScreenUnlocked].tot)
	off := float64(byState[ScreenOff].pos) / float64(byState[ScreenOff].tot)
	if unlocked < off*1.3 {
		t.Fatalf("screen state not predictive: unlocked=%v off=%v", unlocked, off)
	}
}

func TestMPUAppAffinityVaries(t *testing.T) {
	// Per-app open rates for a single user should be spread out, since
	// per-app affinity is the dominant signal.
	d := smallMPU(4)
	u := d.Users[0]
	pos := map[int]int{}
	tot := map[int]int{}
	for _, s := range u.Sessions {
		app := s.Cat[1]
		tot[app]++
		if s.Access {
			pos[app]++
		}
	}
	var lo, hi = 1.0, 0.0
	for app, n := range tot {
		if n < 30 {
			continue
		}
		r := float64(pos[app]) / float64(n)
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi-lo < 0.25 {
		t.Fatalf("per-app open rates should vary widely: lo=%v hi=%v", lo, hi)
	}
}

func TestHashMod97(t *testing.T) {
	seen := map[int]bool{}
	for raw := 0; raw < 1000; raw++ {
		h := hashMod97(raw)
		if h < 0 || h >= 97 {
			t.Fatalf("hashMod97 out of range: %d", h)
		}
		seen[h] = true
	}
	if len(seen) < 90 {
		t.Fatalf("hashMod97 poorly distributed: %d distinct of 97", len(seen))
	}
	if hashMod97(5) != hashMod97(5) {
		t.Fatalf("hash must be deterministic")
	}
}

func TestSampleSessionTimesOrderedAndBounded(t *testing.T) {
	rng := tensor.NewRNG(5)
	p := sampleProfile(rng, 0)
	p.dailyRate = 10
	start := DefaultStart
	times := sampleSessionTimes(rng, p, start, 10)
	end := start + 10*dataset.Day
	var prev int64 = -1
	for _, ts := range times {
		if ts <= prev {
			t.Fatalf("times must be strictly increasing")
		}
		if ts < start || ts >= end {
			t.Fatalf("time outside window")
		}
		prev = ts
	}
	if len(times) < 50 {
		t.Fatalf("expected ≈100 sessions, got %d", len(times))
	}
}

func TestEngagementDecaysOverGaps(t *testing.T) {
	// With enormous gaps the engaged state should almost always lapse.
	rng := tensor.NewRNG(6)
	p := sampleProfile(rng, 0)
	p.pEngage = 0 // never re-engage
	p.engageDecayHours = 10
	e := engagement{engaged: true, lastTS: 1000}
	e.step(rng, p, 1000+100*3600) // 100h gap, 10h half-life-scale
	if e.engaged {
		t.Fatalf("engagement should lapse after a 100h gap")
	}
}

func TestCircularHourDist(t *testing.T) {
	if d := circularHourDist(23, 1); d != 2 {
		t.Fatalf("wraparound distance: got %v", d)
	}
	if d := circularHourDist(6, 18); d != 12 {
		t.Fatalf("opposite hours: got %v", d)
	}
	if d := circularHourDist(5, 5); d != 0 {
		t.Fatalf("same hour: got %v", d)
	}
}

func TestSortInt64(t *testing.T) {
	a := []int64{5, 3, 9, 1, 1, 7, -2}
	sortInt64(a)
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			t.Fatalf("not sorted: %v", a)
		}
	}
	sortInt64(nil) // must not panic
	big := make([]int64, 3000)
	rng := tensor.NewRNG(9)
	for i := range big {
		big[i] = int64(rng.Uint64() % 100000)
	}
	sortInt64(big)
	for i := 1; i < len(big); i++ {
		if big[i-1] > big[i] {
			t.Fatalf("large sort failed at %d", i)
		}
	}
}

func TestDayOfWeekPeriod(t *testing.T) {
	for d := int64(0); d < 14; d++ {
		if dayOfWeek(d*dataset.Day+100) != int(d%7) {
			t.Fatalf("dayOfWeek period broken at day %d", d)
		}
	}
}

func TestLogisticRange(t *testing.T) {
	for _, x := range []float64{-50, -1, 0, 1, 50} {
		p := logistic(x)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("logistic(%v) = %v", x, p)
		}
	}
	if logistic(0) != 0.5 {
		t.Fatalf("logistic(0) != 0.5")
	}
}
