package synth

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

// MobileTabConfig parameterises the MobileTab generator (§4.1): prefetching
// a tab of the mobile app at startup. Context: unread badge count (0-99)
// and the active tab at startup (hashed mod 97).
type MobileTabConfig struct {
	Users int
	Days  int
	Seed  uint64
	Start int64
	// NeverAccessFrac is the fraction of users with zero accesses in the
	// window (Figure 1 shows ≈36% in production).
	NeverAccessFrac float64
}

// DefaultMobileTab returns a configuration scaled for a single-core box;
// raise Users for higher-fidelity runs.
func DefaultMobileTab() MobileTabConfig {
	return MobileTabConfig{
		Users:           4000,
		Days:            dataset.ObservationDays,
		Seed:            1,
		Start:           DefaultStart,
		NeverAccessFrac: 0.36,
	}
}

// mobileTabTabs is the number of distinct raw tab identifiers before
// hashing. Tab 0 is "home"; higher tabs are progressively rarer.
const mobileTabTabs = 8

// MobileTabSchema returns the context schema of the MobileTab dataset.
func MobileTabSchema() *dataset.Schema {
	return &dataset.Schema{
		Name:          "MobileTab",
		SessionLength: 20 * 60,
		Cat: []dataset.CatFeature{
			{Name: "unread", Cardinality: 100},
			{Name: "active_tab", Cardinality: 97},
		},
	}
}

// GenerateMobileTab produces a synthetic MobileTab dataset.
//
// Mechanisms (per session): the unread badge count grows with the gap since
// the previous session and with latent engagement; the access probability is
// a logistic of user bias + engagement + log(1+unread) + active-tab effect +
// hour-of-day affinity. The latent engagement chain is the history signal
// that rewards sequence models.
func GenerateMobileTab(cfg MobileTabConfig) *dataset.Dataset {
	if cfg.Start == 0 {
		cfg.Start = DefaultStart
	}
	schema := MobileTabSchema()
	d := &dataset.Dataset{
		Schema: schema,
		Start:  cfg.Start,
		End:    cfg.Start + int64(cfg.Days)*dataset.Day,
		Users:  make([]*dataset.User, cfg.Users),
	}
	root := tensor.NewRNG(cfg.Seed)
	// Per-tab access boost: starting in some tabs (e.g. adjacent surface)
	// makes access much likelier; tab index 1 is the target tab itself.
	tabBoost := [mobileTabTabs]float64{0, 2.0, 0.7, 0.3, -0.4, -0.8, 0.1, -0.2}

	for ui := 0; ui < cfg.Users; ui++ {
		rng := root.Fork(uint64(ui))
		p := sampleProfile(rng, cfg.NeverAccessFrac)
		u := &dataset.User{ID: ui}
		times := sampleSessionTimes(rng, p, cfg.Start, cfg.Days)
		u.Sessions = make([]dataset.Session, 0, len(times))

		var eng engagement
		var lastSession int64
		var lastAccess int64
		prevUnread, prevAccess := 0, false
		for _, ts := range times {
			engaged := eng.step(rng, p, ts)

			// Unread badge: accumulates with gap and engagement, clears
			// partially when the user accessed recently.
			gapHours := 6.0
			if lastSession != 0 {
				gapHours = float64(ts-lastSession) / 3600
			}
			lambda := 0.4 * gapHours
			if engaged {
				lambda += 2.5
			}
			if lastAccess != 0 && ts-lastAccess < 2*3600 {
				lambda *= 0.3
			}
			unread := rng.Poisson(lambda)
			if unread > 99 {
				unread = 99
			}

			// Active tab: engaged users more often start on high-affinity
			// surfaces.
			tab := sampleTab(rng, engaged)

			access := false
			if !p.neverAccess {
				logit := p.bias + 0.38*math.Log1p(float64(unread)) + tabBoost[tab]
				if engaged {
					logit += p.engagedBoost
				}
				// Hour-of-day affinity: closeness of the current hour to the
				// user's preferred access hour.
				hd := circularHourDist(hourOfDay(ts), p.hourAffinity)
				logit += 0.9 * (1 - hd/12) // in [−0.9·0, +0.9]
				// Deferred consumption: a user who saw a large unread badge
				// last session but did not act on it tends to catch up in
				// the next session. This depends on the *previous session's
				// exact (context, access) pair* — directly visible to a
				// sequence model, only coarsely approximated by windowed
				// aggregations.
				if lastSession != 0 && prevUnread >= 3 && !prevAccess && ts-lastSession < 12*3600 {
					logit += 1.4
				}
				access = rng.Bernoulli(logistic(logit))
			}
			if access {
				lastAccess = ts
			}
			lastSession = ts
			prevUnread, prevAccess = unread, access
			u.Sessions = append(u.Sessions, dataset.Session{
				Timestamp: ts,
				Access:    access,
				Cat:       []int{unread, hashMod97(tab)},
			})
		}
		d.Users[ui] = u
	}
	return d
}

// sampleTab draws a raw tab identifier; tab popularity is roughly Zipfian
// with "home" (0) dominant, and engaged sessions skew toward the target
// surface (1).
func sampleTab(rng *tensor.RNG, engaged bool) int {
	r := rng.Float64()
	if engaged && r < 0.25 {
		return 1
	}
	// Zipf-ish over the 8 tabs.
	cum := 0.0
	weights := [mobileTabTabs]float64{0.45, 0.08, 0.12, 0.10, 0.09, 0.06, 0.06, 0.04}
	for i, w := range weights {
		cum += w
		if r < cum {
			return i
		}
	}
	return mobileTabTabs - 1
}
