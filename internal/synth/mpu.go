package synth

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

// MPUConfig parameterises the Mobile Phone Use generator (§4.3): few users,
// very long per-user histories of notification events. A session starts
// when a notification appears (10-minute window); the label is whether the
// user opened the associated app.
type MPUConfig struct {
	Users int
	Days  int
	Seed  uint64
	Start int64
	// MeanEventsPerDay controls history length; the real dataset averages
	// ≈300 notifications/day/user, scaled down here by default.
	MeanEventsPerDay float64
}

// DefaultMPU returns a single-core-scaled configuration (the real dataset
// has 279 usable users and 2.34M events).
func DefaultMPU() MPUConfig {
	return MPUConfig{
		Users:            160,
		Days:             dataset.ObservationDays,
		Seed:             3,
		Start:            DefaultStart,
		MeanEventsPerDay: 50,
	}
}

// Screen states recorded at notification time (§4.3).
const (
	ScreenOff = iota
	ScreenOn
	ScreenUnlocked
	numScreenStates
)

// mpuApps is the number of distinct raw application identifiers before
// hashing mod 97.
const mpuApps = 40

// MPUSchema returns the context schema of the MPU dataset: screen state,
// notification app ID and last-opened app ID (both hashed mod 97).
func MPUSchema() *dataset.Schema {
	return &dataset.Schema{
		Name:          "MPU",
		SessionLength: 10 * 60,
		Cat: []dataset.CatFeature{
			{Name: "screen_state", Cardinality: numScreenStates},
			{Name: "app_id", Cardinality: 97},
			{Name: "last_app", Cardinality: 97},
		},
	}
}

// GenerateMPU produces a synthetic Mobile Phone Use dataset.
//
// Mechanisms: each user has a Zipf-like app mix and per-app open
// affinities; notifications arriving while the phone is unlocked are far
// more likely to be attended; an attention Markov state (bursts of phone
// use) raises open rates and decays over gaps; repeated notifications from
// the same app within a short span fatigue the user.
func GenerateMPU(cfg MPUConfig) *dataset.Dataset {
	if cfg.Start == 0 {
		cfg.Start = DefaultStart
	}
	if cfg.MeanEventsPerDay == 0 {
		cfg.MeanEventsPerDay = 50
	}
	schema := MPUSchema()
	d := &dataset.Dataset{
		Schema: schema,
		Start:  cfg.Start,
		End:    cfg.Start + int64(cfg.Days)*dataset.Day,
		Users:  make([]*dataset.User, cfg.Users),
	}
	root := tensor.NewRNG(cfg.Seed)

	// Global per-app open affinity, shared across users: which kinds of
	// apps are worth attending to is mostly a property of the app
	// (messaging vs promotional), refined per user below. This population
	// structure is what lets models generalise across users.
	globalAffinity := make([]float64, mpuApps)
	gRng := root.Fork(0xa99)
	for a := range globalAffinity {
		globalAffinity[a] = -1.4 + 1.2*gRng.NormFloat64()
	}

	for ui := 0; ui < cfg.Users; ui++ {
		rng := root.Fork(uint64(ui))
		p := sampleProfile(rng, 0) // essentially every user opens some apps
		// Per-user notification volume has a long tail (Figure 5).
		eventsPerDay := cfg.MeanEventsPerDay * rng.LogNormal(0, 0.9)
		// Per-app open affinity: the global app effect plus a personal
		// deviation (some users love an app most people ignore).
		affinity := make([]float64, mpuApps)
		for a := range affinity {
			affinity[a] = globalAffinity[a] + 0.6*rng.NormFloat64()
		}
		// App popularity (which apps notify this user), Zipf-ish.
		appWeight := make([]float64, mpuApps)
		total := 0.0
		for a := range appWeight {
			appWeight[a] = 1 / math.Pow(float64(a+1), 1.1)
			total += appWeight[a]
		}
		// Randomly permute which apps are popular for this user.
		perm := rng.Perm(mpuApps)

		u := &dataset.User{ID: ui}
		var eng engagement
		lastApp := 0
		lastNotifByApp := make([]int64, mpuApps)
		var lastNotifTS int64
		lastOpened := false
		var ts int64 = cfg.Start
		endTS := cfg.Start + int64(cfg.Days)*dataset.Day
		meanGap := float64(dataset.Day) / eventsPerDay
		for {
			// Notification arrivals: power-law gaps around the mean.
			gap := rng.Pareto(meanGap/3, 1.3)
			if gap > 20*meanGap {
				gap = 20 * meanGap
			}
			ts += int64(gap) + 1
			if ts >= endTS {
				break
			}
			// Night-time damping: fewer notifications attended 1-6 am; also
			// fewer generated (devices silent).
			h := hourOfDay(ts)
			if h >= 1 && h < 6 && rng.Bernoulli(0.6) {
				continue
			}

			attentive := eng.step(rng, p, ts)

			// Screen state correlates with attention.
			var screen int
			switch {
			case attentive && rng.Bernoulli(0.7):
				screen = ScreenUnlocked
			case rng.Bernoulli(0.3):
				screen = ScreenOn
			default:
				screen = ScreenOff
			}

			app := perm[sampleWeighted(rng, appWeight, total)]

			logit := 0.1 + affinity[app]
			if screen == ScreenUnlocked {
				logit += 1.3
			} else if screen == ScreenOn {
				logit += 0.4
			}
			if attentive {
				logit += 1.4
			}
			// Fatigue: repeated notifications from one app within 30 min.
			if lastNotifByApp[app] != 0 && ts-lastNotifByApp[app] < 1800 {
				logit -= 1.2
			}
			// Continuity: notifications from the app in use get attended.
			// (An equality interaction between two categorical context
			// variables — natural for the latent-cross predictor, awkward
			// for axis-aligned tree splits.)
			if app == lastApp {
				logit += 1.2
			}
			// Short-horizon autocorrelation: a user who recently acted on
			// (or ignored) the previous notification tends to repeat the
			// reaction — an event-level sequence effect that window counts
			// only smear. The 40-minute horizon exceeds the update delay δ,
			// so a sequence model genuinely observes the prior outcome.
			if lastNotifTS != 0 && ts-lastNotifTS < 2400 {
				if lastOpened {
					logit += 1.1
				} else {
					logit -= 1.5
				}
			}
			open := rng.Bernoulli(logistic(logit))
			lastNotifByApp[app] = ts
			lastNotifTS = ts
			lastOpened = open

			u.Sessions = append(u.Sessions, dataset.Session{
				Timestamp: ts,
				Access:    open,
				Cat:       []int{screen, hashMod97(app), hashMod97(lastApp)},
			})
			if open {
				lastApp = app
			}
		}
		d.Users[ui] = u
	}
	return d
}

// sampleWeighted draws an index proportional to weights (whose sum is
// total).
func sampleWeighted(rng *tensor.RNG, weights []float64, total float64) int {
	r := rng.Float64() * total
	cum := 0.0
	for i, w := range weights {
		cum += w
		if r < cum {
			return i
		}
	}
	return len(weights) - 1
}
