package tensor

// Cache-blocked GEMM kernels for the batched inference path.
//
// The serving tier batches B session finalisations into matrix-matrix
// products so the 3h×d GRU weight matrices are streamed from memory once
// per step instead of once per session — the classic fix for the
// memory-bound matrix-vector regime. Two kernel families are provided:
//
//   - MulMat / MulMatAdd:   dst = (+=) m · other        (NN)
//   - MulMatT / MulMatTAdd: dst = (+=) m · otherᵀ       (NT)
//
// The NT form is the serving workhorse: weights are stored row-major as
// (out × in), and a row-major (B × in) panel of packed inputs times the
// transposed weight gives a (B × out) panel of gate pre-activations with
// fully contiguous inner loops on both operands.
//
// Bit-exactness contract: every output element is accumulated strictly in
// ascending k with a single accumulator chain, exactly like MulVec's inner
// loop. Cache blocking over k spills the running partial sum to dst between
// blocks — a float64 round-trip through memory is exact — and the 4×4
// register-tiled micro-kernel keeps one independent accumulator per output
// element, never a split/pairwise reduction. Batched GRU states are
// therefore bit-identical to the per-session MulVec path, which the serving
// equivalence tests pin down.

// Blocking parameters. The k and column blocks are sized so one weight
// panel (kc × nc float64s ≈ 2·10⁵ B) stays L2-resident while row panels
// stream through; the 4×4 micro-tile keeps 16 accumulators live, which is
// comfortably within the 16 SSE2/NEON callee registers Go allocates.
const (
	gemmMC = 64  // row cache block
	gemmKC = 256 // k-dimension cache block
	gemmNC = 128 // column cache block
)

// MostlySparse reports whether the rows of m clear the sparse-path
// threshold of MulVec (row length ≥ sparseCutoff, panel density < 1/4).
// The batched GRU uses it to route input panels: packed one-hot update
// inputs go row-by-row through the sparse matrix-vector path, dense panels
// through the GEMM — both bit-identical, very different work.
func (m *Matrix) MostlySparse() bool {
	if m.Cols < sparseCutoff {
		return false
	}
	nz := 0
	limit := len(m.Data) / 4
	for _, v := range m.Data {
		if v != 0 {
			nz++
			if nz >= limit {
				return false
			}
		}
	}
	return true
}

// MulMat computes dst = m · other. dst must be m.Rows × other.Cols and is
// overwritten; it must not alias m or other.
func (m *Matrix) MulMat(dst, other *Matrix) {
	checkLen("Matrix.MulMat inner", m.Cols, other.Rows)
	checkLen("Matrix.MulMat rows", dst.Rows, m.Rows)
	checkLen("Matrix.MulMat cols", dst.Cols, other.Cols)
	dst.Zero()
	gemmNN(dst, m, other)
}

// MulMatAdd computes dst += m · other.
func (m *Matrix) MulMatAdd(dst, other *Matrix) {
	checkLen("Matrix.MulMatAdd inner", m.Cols, other.Rows)
	checkLen("Matrix.MulMatAdd rows", dst.Rows, m.Rows)
	checkLen("Matrix.MulMatAdd cols", dst.Cols, other.Cols)
	gemmNN(dst, m, other)
}

// MulMatT computes dst = m · otherᵀ. dst must be m.Rows × other.Rows and is
// overwritten; it must not alias m or other. Both operands are traversed
// row-contiguously, so this is the preferred form when the right-hand side
// is a row-major (out × in) weight matrix.
func (m *Matrix) MulMatT(dst, other *Matrix) {
	checkLen("Matrix.MulMatT inner", m.Cols, other.Cols)
	checkLen("Matrix.MulMatT rows", dst.Rows, m.Rows)
	checkLen("Matrix.MulMatT cols", dst.Cols, other.Rows)
	dst.Zero()
	gemmNT(dst, m, other)
}

// MulMatTAdd computes dst += m · otherᵀ.
func (m *Matrix) MulMatTAdd(dst, other *Matrix) {
	checkLen("Matrix.MulMatTAdd inner", m.Cols, other.Cols)
	checkLen("Matrix.MulMatTAdd rows", dst.Rows, m.Rows)
	checkLen("Matrix.MulMatTAdd cols", dst.Cols, other.Rows)
	gemmNT(dst, m, other)
}

// gemmNN accumulates dst += a · b with cache blocking and a 4×4
// register-tiled micro-kernel.
func gemmNN(dst, a, b *Matrix) {
	M, K, N := a.Rows, a.Cols, b.Cols
	for jc := 0; jc < N; jc += gemmNC {
		nc := min(gemmNC, N-jc)
		for kc := 0; kc < K; kc += gemmKC {
			kb := min(gemmKC, K-kc)
			for ic := 0; ic < M; ic += gemmMC {
				mc := min(gemmMC, M-ic)
				gemmNNBlock(dst, a, b, ic, jc, kc, mc, nc, kb)
			}
		}
	}
}

// gemmNNBlock computes dst[ic:ic+mc, jc:jc+nc] += a[ic:, kc:kc+kb] · b[kc:, jc:].
func gemmNNBlock(dst, a, b *Matrix, ic, jc, kc, mc, nc, kb int) {
	i := 0
	for ; i+4 <= mc; i += 4 {
		j := 0
		for ; j+4 <= nc; j += 4 {
			microNN4x4(dst, a, b, ic+i, jc+j, kc, kb)
		}
		if j < nc {
			gemmNNEdge(dst, a, b, ic+i, 4, jc+j, nc-j, kc, kb)
		}
	}
	if i < mc {
		gemmNNEdge(dst, a, b, ic+i, mc-i, jc, nc, kc, kb)
	}
}

// microNN4x4 computes the 4×4 tile dst[i0:i0+4, j0:j0+4] += Σ_k a·b over
// k ∈ [kc, kc+kb). The 16 accumulators are loaded from dst so the per-element
// accumulation chain stays strictly k-ordered across k-blocks.
func microNN4x4(dst, a, b *Matrix, i0, j0, kc, kb int) {
	ld, la, lb := dst.Cols, a.Cols, b.Cols
	d0 := dst.Data[(i0+0)*ld+j0 : (i0+0)*ld+j0+4 : (i0+0)*ld+j0+4]
	d1 := dst.Data[(i0+1)*ld+j0 : (i0+1)*ld+j0+4 : (i0+1)*ld+j0+4]
	d2 := dst.Data[(i0+2)*ld+j0 : (i0+2)*ld+j0+4 : (i0+2)*ld+j0+4]
	d3 := dst.Data[(i0+3)*ld+j0 : (i0+3)*ld+j0+4 : (i0+3)*ld+j0+4]
	c00, c01, c02, c03 := d0[0], d0[1], d0[2], d0[3]
	c10, c11, c12, c13 := d1[0], d1[1], d1[2], d1[3]
	c20, c21, c22, c23 := d2[0], d2[1], d2[2], d2[3]
	c30, c31, c32, c33 := d3[0], d3[1], d3[2], d3[3]
	a0 := a.Data[(i0+0)*la+kc : (i0+0)*la+kc+kb : (i0+0)*la+kc+kb]
	a1 := a.Data[(i0+1)*la+kc : (i0+1)*la+kc+kb : (i0+1)*la+kc+kb]
	a2 := a.Data[(i0+2)*la+kc : (i0+2)*la+kc+kb : (i0+2)*la+kc+kb]
	a3 := a.Data[(i0+3)*la+kc : (i0+3)*la+kc+kb : (i0+3)*la+kc+kb]
	for k := 0; k < kb; k++ {
		brow := b.Data[(kc+k)*lb+j0 : (kc+k)*lb+j0+4 : (kc+k)*lb+j0+4]
		b0, b1, b2, b3 := brow[0], brow[1], brow[2], brow[3]
		av := a0[k]
		c00 += av * b0
		c01 += av * b1
		c02 += av * b2
		c03 += av * b3
		av = a1[k]
		c10 += av * b0
		c11 += av * b1
		c12 += av * b2
		c13 += av * b3
		av = a2[k]
		c20 += av * b0
		c21 += av * b1
		c22 += av * b2
		c23 += av * b3
		av = a3[k]
		c30 += av * b0
		c31 += av * b1
		c32 += av * b2
		c33 += av * b3
	}
	d0[0], d0[1], d0[2], d0[3] = c00, c01, c02, c03
	d1[0], d1[1], d1[2], d1[3] = c10, c11, c12, c13
	d2[0], d2[1], d2[2], d2[3] = c20, c21, c22, c23
	d3[0], d3[1], d3[2], d3[3] = c30, c31, c32, c33
}

// gemmNNEdge handles the ragged rows/columns a 4×4 tile cannot cover, with
// the same single-accumulator k-order per element.
func gemmNNEdge(dst, a, b *Matrix, i0, ni, j0, nj, kc, kb int) {
	for i := i0; i < i0+ni; i++ {
		arow := a.Data[i*a.Cols+kc : i*a.Cols+kc+kb]
		drow := dst.Data[i*dst.Cols+j0 : i*dst.Cols+j0+nj]
		for j := range drow {
			acc := drow[j]
			for k, av := range arow {
				acc += av * b.Data[(kc+k)*b.Cols+j0+j]
			}
			drow[j] = acc
		}
	}
}

// gemmNT accumulates dst += a · bᵀ (a: M×K, b: N×K, dst: M×N) with cache
// blocking and a 4×4 micro-kernel of contiguous dot products.
func gemmNT(dst, a, b *Matrix) {
	M, K, N := a.Rows, a.Cols, b.Rows
	for kc := 0; kc < K; kc += gemmKC {
		kb := min(gemmKC, K-kc)
		for jc := 0; jc < N; jc += gemmNC {
			nc := min(gemmNC, N-jc)
			for ic := 0; ic < M; ic += gemmMC {
				mc := min(gemmMC, M-ic)
				gemmNTBlock(dst, a, b, ic, jc, kc, mc, nc, kb)
			}
		}
	}
}

func gemmNTBlock(dst, a, b *Matrix, ic, jc, kc, mc, nc, kb int) {
	i := 0
	for ; i+4 <= mc; i += 4 {
		j := 0
		for ; j+4 <= nc; j += 4 {
			microNT4x4(dst, a, b, ic+i, jc+j, kc, kb)
		}
		if j < nc {
			gemmNTEdge(dst, a, b, ic+i, 4, jc+j, nc-j, kc, kb)
		}
	}
	if i < mc {
		gemmNTEdge(dst, a, b, ic+i, mc-i, jc, nc, kc, kb)
	}
}

// microNT4x4 computes dst[i0:i0+4, j0:j0+4] += a[i0:i0+4, kc:kc+kb] ·
// b[j0:j0+4, kc:kc+kb]ᵀ — sixteen simultaneous dot products over four
// contiguous a-rows and four contiguous b-rows.
func microNT4x4(dst, a, b *Matrix, i0, j0, kc, kb int) {
	la, lb, ld := a.Cols, b.Cols, dst.Cols
	a0 := a.Data[(i0+0)*la+kc : (i0+0)*la+kc+kb : (i0+0)*la+kc+kb]
	a1 := a.Data[(i0+1)*la+kc : (i0+1)*la+kc+kb : (i0+1)*la+kc+kb]
	a2 := a.Data[(i0+2)*la+kc : (i0+2)*la+kc+kb : (i0+2)*la+kc+kb]
	a3 := a.Data[(i0+3)*la+kc : (i0+3)*la+kc+kb : (i0+3)*la+kc+kb]
	b0 := b.Data[(j0+0)*lb+kc : (j0+0)*lb+kc+kb : (j0+0)*lb+kc+kb]
	b1 := b.Data[(j0+1)*lb+kc : (j0+1)*lb+kc+kb : (j0+1)*lb+kc+kb]
	b2 := b.Data[(j0+2)*lb+kc : (j0+2)*lb+kc+kb : (j0+2)*lb+kc+kb]
	b3 := b.Data[(j0+3)*lb+kc : (j0+3)*lb+kc+kb : (j0+3)*lb+kc+kb]
	d0 := dst.Data[(i0+0)*ld+j0 : (i0+0)*ld+j0+4 : (i0+0)*ld+j0+4]
	d1 := dst.Data[(i0+1)*ld+j0 : (i0+1)*ld+j0+4 : (i0+1)*ld+j0+4]
	d2 := dst.Data[(i0+2)*ld+j0 : (i0+2)*ld+j0+4 : (i0+2)*ld+j0+4]
	d3 := dst.Data[(i0+3)*ld+j0 : (i0+3)*ld+j0+4 : (i0+3)*ld+j0+4]
	c00, c01, c02, c03 := d0[0], d0[1], d0[2], d0[3]
	c10, c11, c12, c13 := d1[0], d1[1], d1[2], d1[3]
	c20, c21, c22, c23 := d2[0], d2[1], d2[2], d2[3]
	c30, c31, c32, c33 := d3[0], d3[1], d3[2], d3[3]
	for k := 0; k < kb; k++ {
		w0, w1, w2, w3 := b0[k], b1[k], b2[k], b3[k]
		av := a0[k]
		c00 += av * w0
		c01 += av * w1
		c02 += av * w2
		c03 += av * w3
		av = a1[k]
		c10 += av * w0
		c11 += av * w1
		c12 += av * w2
		c13 += av * w3
		av = a2[k]
		c20 += av * w0
		c21 += av * w1
		c22 += av * w2
		c23 += av * w3
		av = a3[k]
		c30 += av * w0
		c31 += av * w1
		c32 += av * w2
		c33 += av * w3
	}
	d0[0], d0[1], d0[2], d0[3] = c00, c01, c02, c03
	d1[0], d1[1], d1[2], d1[3] = c10, c11, c12, c13
	d2[0], d2[1], d2[2], d2[3] = c20, c21, c22, c23
	d3[0], d3[1], d3[2], d3[3] = c30, c31, c32, c33
}

func gemmNTEdge(dst, a, b *Matrix, i0, ni, j0, nj, kc, kb int) {
	for i := i0; i < i0+ni; i++ {
		arow := a.Data[i*a.Cols+kc : i*a.Cols+kc+kb]
		drow := dst.Data[i*dst.Cols+j0 : i*dst.Cols+j0+nj]
		for j := range drow {
			brow := b.Data[(j0+j)*b.Cols+kc : (j0+j)*b.Cols+kc+kb]
			acc := drow[j]
			for k, av := range arow {
				acc += av * brow[k]
			}
			drow[j] = acc
		}
	}
}
