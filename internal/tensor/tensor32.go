package tensor

// Float32 twin of the core vector/matrix surface, for the serving fast
// tier. The f64 types stay the training substrate and the bit-exact parity
// reference; Vector32/Matrix32 carry only the inference-time operations the
// fused GRU path needs (matvec with the sparse fast path, the NT GEMM in
// gemm32.go, and an arena in arena32.go).
//
// f32 accumulation contract: every dot product in this tier — sparse or
// dense, matvec or GEMM, assembly or pure Go — accumulates into four
// independent lane chains, where the term at index k lands in lane k%4 in
// ascending k order, and the lanes combine as (l0+l2)+(l1+l3). That is the
// natural shape of a 4-wide packed SSE reduction, so the amd64 kernel can
// use the vector units while every other path (scalar replay, edge tiles,
// non-amd64 builds) reproduces its results bit-for-bit. The f64 tier's
// single-chain contract does not apply here; cross-tier agreement is
// bounded-error, not bit-exact, and is pinned by the serving equivalence
// tests.

// Vector32 is a dense float32 vector.
type Vector32 []float32

// NewVector32 returns a zero vector of length n.
func NewVector32(n int) Vector32 { return make(Vector32, n) }

// Clone returns a copy of v.
func (v Vector32) Clone() Vector32 {
	out := make(Vector32, len(v))
	copy(out, v)
	return out
}

// Zero sets every element of v to 0.
func (v Vector32) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// CopyFromF64 rounds src into v element-wise. Panics if lengths differ.
func (v Vector32) CopyFromF64(src Vector) {
	checkLen("Vector32.CopyFromF64", len(v), len(src))
	for i, x := range src {
		v[i] = float32(x)
	}
}

// ToF64 widens v into dst element-wise (exact: every float32 is a float64).
func (v Vector32) ToF64(dst Vector) {
	checkLen("Vector32.ToF64", len(v), len(dst))
	for i, x := range v {
		dst[i] = float64(x)
	}
}

// Matrix32 is a dense row-major float32 matrix.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// NewMatrix32 returns a zero Rows×Cols matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		lenPanic("tensor.NewMatrix32", rows, cols)
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix32) Set(i, j int, x float32) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a mutable slice view.
func (m *Matrix32) Row(i int) Vector32 { return Vector32(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Zero sets every element of m to 0.
func (m *Matrix32) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// gatherNonzeros32 is gatherNonzeros for float32 vectors: it fills buf with
// the indices of x's nonzero entries, returning nil when a dense pass is
// preferable. Same thresholds as the f64 path, so a row routes the same way
// in either tier. Unlike the f64 version this collects in a single pass
// (append until the density limit), because on the f32 hot path the scan
// itself shows up: the batched GRU gathers every input row of every batch.
func gatherNonzeros32(buf *[]int32, x Vector32) []int32 {
	if len(x) < sparseCutoff {
		return nil
	}
	limit := len(x) / 4
	idx := (*buf)[:0]
	for j, v := range x {
		if v != 0 {
			if len(idx)+1 >= limit {
				*buf = idx
				return nil
			}
			idx = append(idx, int32(j))
		}
	}
	*buf = idx
	return idx
}

// MulVec computes dst = m · x with the sparse fast path. The sparse pass
// keeps the lane contract by routing the term at column j into lane j%4, so
// its results are bit-identical to the dense pass (skipped zero terms
// contribute ±0 per lane, with the same sign-of-zero caveat the f64 tier
// documents on MulVecDense).
func (m *Matrix32) MulVec(dst, x Vector32) {
	checkLen("Matrix32.MulVec x", m.Cols, len(x))
	checkLen("Matrix32.MulVec dst", m.Rows, len(dst))
	if len(x) >= sparseCutoff {
		buf := nzPool.Get().(*[]int32)
		if idx := gatherNonzeros32(buf, x); idx != nil {
			for i := 0; i < m.Rows; i++ {
				row := m.Data[i*m.Cols : (i+1)*m.Cols]
				var lanes [4]float32
				for _, j := range idx {
					lanes[j&3] += row[j] * x[j]
				}
				dst[i] = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3])
			}
			nzPool.Put(buf)
			return
		}
		nzPool.Put(buf)
	}
	m.MulVecDense(dst, x)
}

// MulVecDense is MulVec without the sparsity scan: four lane chains per
// row in ascending k, combined as (l0+l2)+(l1+l3).
func (m *Matrix32) MulVecDense(dst, x Vector32) {
	checkLen("Matrix32.MulVecDense x", m.Cols, len(x))
	checkLen("Matrix32.MulVecDense dst", m.Rows, len(dst))
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var l0, l1, l2, l3 float32
		k := 0
		for ; k+4 <= len(row); k += 4 {
			l0 += row[k] * x[k]
			l1 += row[k+1] * x[k+1]
			l2 += row[k+2] * x[k+2]
			l3 += row[k+3] * x[k+3]
		}
		for ; k < len(row); k++ {
			switch k & 3 {
			case 0:
				l0 += row[k] * x[k]
			case 1:
				l1 += row[k] * x[k]
			case 2:
				l2 += row[k] * x[k]
			default:
				l3 += row[k] * x[k]
			}
		}
		dst[i] = (l0 + l2) + (l1 + l3)
	}
}

// MulVecT computes dst = mᵀ · x (m: len(x) × len(dst)) when x routes
// sparse, as an accumulation of x's nonzero rows of m: dst is zeroed, then
// for each nonzero j in ascending order, dst += x[j] · m.Row(j). Returns
// false — leaving dst untouched — when x is dense by the MulVec thresholds;
// the caller falls back to the 4-lane dense path with the untransposed
// matrix.
//
// This is the fast shape for the GRU input side: each nonzero touches one
// contiguous row instead of one scattered element per output row. The
// accumulation contract here is per-element single chains in ascending
// nonzero order — NOT the 4-lane contract — so results differ bitwise from
// MulVec on the same operands. That is sound because routing is a
// deterministic function of x alone: every f32 path (scalar and batched)
// makes the same sparse-or-dense decision for the same row and therefore
// lands in the same contract.
func (m *Matrix32) MulVecT(dst, x Vector32) bool {
	checkLen("Matrix32.MulVecT x", m.Rows, len(x))
	checkLen("Matrix32.MulVecT dst", m.Cols, len(dst))
	if len(x) < sparseCutoff {
		return false
	}
	buf := nzPool.Get().(*[]int32)
	idx := gatherNonzeros32(buf, x)
	if idx == nil {
		nzPool.Put(buf)
		return false
	}
	dst.Zero()
	for _, j := range idx {
		xj := x[j]
		row := m.Data[int(j)*m.Cols : (int(j)+1)*m.Cols]
		for i, w := range row {
			dst[i] += xj * w
		}
	}
	nzPool.Put(buf)
	return true
}

// MostlySparse reports whether the rows of m clear the sparse-path
// threshold of MulVec (row length ≥ sparseCutoff, panel density < 1/4),
// with the same thresholds as the f64 Matrix.
func (m *Matrix32) MostlySparse() bool {
	if m.Cols < sparseCutoff {
		return false
	}
	nz := 0
	limit := len(m.Data) / 4
	for _, v := range m.Data {
		if v != 0 {
			nz++
			if nz >= limit {
				return false
			}
		}
	}
	return true
}
