//go:build amd64

#include "textflag.h"

// func gemmNT4xNf32(dst *float32, ldd int, a *float32, lda int, b *float32, ldb int, k, n int)
//
// Packed-SSE NT micro-kernel: 4 input rows × n weight rows (n even) over a
// full K reduction (K % 4 == 0, no tail). Per j-pair it holds an 8×4
// accumulator tile — 4 rows × 2 weight rows × 4 packed k-lanes — in
// X0..X7, with X8/X9 carrying the two weight quads and X10/X11 as temps.
// Baseline amd64 (SSE) only: no feature detection, so every amd64 machine
// reduces in the same order. The reduction per element is the 4-lane
// contract of dot4lanes: lane = k%4, combined as (l0+l2)+(l1+l3), which is
// what the MOVHLPS/SHUFPS epilogue computes — pure-Go paths match it
// bit-for-bit.
//
// Accumulator layout per j-pair:
//   X0 = row0·b0   X1 = row0·b1
//   X2 = row1·b0   X3 = row1·b1
//   X4 = row2·b0   X5 = row2·b1
//   X6 = row3·b0   X7 = row3·b1
TEXT ·gemmNT4xNf32(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), DI
	MOVQ ldd+8(FP), R8
	SHLQ $2, R8            // dst row stride, bytes

	MOVQ a+16(FP), SI
	MOVQ lda+24(FP), R9
	SHLQ $2, R9            // a row stride, bytes
	MOVQ SI, R11           // a row 0
	LEAQ (SI)(R9*1), R12   // a row 1
	LEAQ (SI)(R9*2), R13   // a row 2
	LEAQ (R12)(R9*2), R14  // a row 3

	MOVQ b+32(FP), R15     // b row j+0
	MOVQ ldb+40(FP), DX
	SHLQ $2, DX            // b row stride, bytes
	LEAQ (R15)(DX*1), BX   // b row j+1
	SHLQ $1, DX            // advance: two b rows, bytes

	MOVQ k+48(FP), R9
	SHLQ $2, R9            // K, bytes
	MOVQ n+56(FP), CX
	SHRQ $1, CX            // j-pair count

jloop:
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7
	XORQ  AX, AX
	CMPQ  AX, R9
	JGE   combine

kloop:
	MOVUPS (R15)(AX*1), X8  // b0[k:k+4]
	MOVUPS (BX)(AX*1), X9   // b1[k:k+4]

	MOVUPS (R11)(AX*1), X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X0
	MULPS  X9, X11
	ADDPS  X11, X1

	MOVUPS (R12)(AX*1), X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X2
	MULPS  X9, X11
	ADDPS  X11, X3

	MOVUPS (R13)(AX*1), X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X4
	MULPS  X9, X11
	ADDPS  X11, X5

	MOVUPS (R14)(AX*1), X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X6
	MULPS  X9, X11
	ADDPS  X11, X7

	ADDQ $16, AX
	CMPQ AX, R9
	JL   kloop

combine:
	// Per accumulator: lane0' = l0+l2, lane1' = l1+l3 (MOVHLPS+ADDPS),
	// then scalar add lane1' into lane0' — exactly (l0+l2)+(l1+l3).
	MOVHLPS X0, X10
	ADDPS   X0, X10
	MOVAPS  X10, X11
	SHUFPS  $1, X11, X11
	ADDSS   X11, X10
	MOVSS   X10, (DI)

	MOVHLPS X1, X10
	ADDPS   X1, X10
	MOVAPS  X10, X11
	SHUFPS  $1, X11, X11
	ADDSS   X11, X10
	MOVSS   X10, 4(DI)

	MOVHLPS X2, X10
	ADDPS   X2, X10
	MOVAPS  X10, X11
	SHUFPS  $1, X11, X11
	ADDSS   X11, X10
	MOVSS   X10, (DI)(R8*1)

	MOVHLPS X3, X10
	ADDPS   X3, X10
	MOVAPS  X10, X11
	SHUFPS  $1, X11, X11
	ADDSS   X11, X10
	MOVSS   X10, 4(DI)(R8*1)

	MOVHLPS X4, X10
	ADDPS   X4, X10
	MOVAPS  X10, X11
	SHUFPS  $1, X11, X11
	ADDSS   X11, X10
	MOVSS   X10, (DI)(R8*2)

	MOVHLPS X5, X10
	ADDPS   X5, X10
	MOVAPS  X10, X11
	SHUFPS  $1, X11, X11
	ADDSS   X11, X10
	MOVSS   X10, 4(DI)(R8*2)

	LEAQ (DI)(R8*2), AX    // row 3 = row 2 + stride

	MOVHLPS X6, X10
	ADDPS   X6, X10
	MOVAPS  X10, X11
	SHUFPS  $1, X11, X11
	ADDSS   X11, X10
	MOVSS   X10, (AX)(R8*1)

	MOVHLPS X7, X10
	ADDPS   X7, X10
	MOVAPS  X10, X11
	SHUFPS  $1, X11, X11
	ADDSS   X11, X10
	MOVSS   X10, 4(AX)(R8*1)

	ADDQ $8, DI            // two dst columns
	ADDQ DX, R15           // two b rows
	ADDQ DX, BX
	DECQ CX
	JNZ  jloop
	RET
