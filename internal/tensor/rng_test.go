package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed must produce identical streams (step %d)", i)
		}
	}
	c := NewRNG(124)
	same := 0
	a = NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds should diverge; %d collisions", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	distinct := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		distinct[r.Uint64()] = true
	}
	if len(distinct) < 99 {
		t.Fatalf("seed 0 produced a degenerate stream: %d distinct of 100", len(distinct))
	}
}

func TestForkIndependence(t *testing.T) {
	base := NewRNG(7)
	f1 := base.Fork(1)
	f2 := base.Fork(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams should be independent; %d collisions", same)
	}
}

func TestForkDeterministicGivenOrder(t *testing.T) {
	a := NewRNG(9).Fork(5)
	b := NewRNG(9).Fork(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("fork must be deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", x)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean too far from 0.5: %v", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(17)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) should hit all 7 values in 1000 draws; got %d", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Intn(0) must panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(19)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean too far from 0: %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance too far from 1: %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(23)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("exponential must be non-negative: %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean too far from 1: %v", mean)
	}
}

func TestParetoProperties(t *testing.T) {
	r := NewRNG(29)
	const n = 100000
	below := 0
	for i := 0; i < n; i++ {
		x := r.Pareto(2, 1.5)
		if x < 2 {
			t.Fatalf("Pareto below xm: %v", x)
		}
		// P(X <= 4) = 1 - (2/4)^1.5 ≈ 0.6464
		if x <= 4 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.6464) > 0.01 {
		t.Fatalf("Pareto CDF at 4: got %v, want ≈0.6464", frac)
	}
}

func TestGammaMean(t *testing.T) {
	r := NewRNG(31)
	for _, shape := range []float64{0.5, 1, 2.5, 8} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			x := r.Gamma(shape)
			if x < 0 {
				t.Fatalf("gamma must be non-negative")
			}
			sum += x
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.06*math.Max(1, shape) {
			t.Fatalf("Gamma(%v) mean: got %v", shape, mean)
		}
	}
}

func TestBetaRangeAndMean(t *testing.T) {
	r := NewRNG(37)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Beta(2, 5)
		if x < 0 || x > 1 {
			t.Fatalf("Beta out of [0,1]: %v", x)
		}
		sum += x
	}
	// Mean of Beta(2,5) = 2/7 ≈ 0.2857.
	if mean := sum / n; math.Abs(mean-2.0/7) > 0.01 {
		t.Fatalf("Beta(2,5) mean: got %v", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(41)
	for _, mean := range []float64{0.5, 3, 12, 60} {
		const n = 30000
		var sum float64
		for i := 0; i < n; i++ {
			k := r.Poisson(mean)
			if k < 0 {
				t.Fatalf("Poisson must be non-negative")
			}
			sum += float64(k)
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*math.Max(1, mean) {
			t.Fatalf("Poisson(%v) mean: got %v", mean, got)
		}
	}
	if NewRNG(1).Poisson(0) != 0 {
		t.Fatalf("Poisson(0) must be 0")
	}
	if NewRNG(1).Poisson(-1) != 0 {
		t.Fatalf("Poisson(negative) must be 0")
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := NewRNG(43)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatalf("Bernoulli(0) must never fire")
		}
		if !r.Bernoulli(1) {
			t.Fatalf("Bernoulli(1) must always fire")
		}
	}
}

func TestFillHelpers(t *testing.T) {
	r := NewRNG(47)
	v := NewVector(1000)
	r.FillUniform(v, -2, 3)
	for _, x := range v {
		if x < -2 || x >= 3 {
			t.Fatalf("FillUniform out of range: %v", x)
		}
	}
	r.FillNormal(v, 0.01)
	var maxAbs float64
	for _, x := range v {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs > 0.1 {
		t.Fatalf("FillNormal(std=0.01) produced implausibly large value %v", maxAbs)
	}
}
