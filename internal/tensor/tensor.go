// Package tensor provides the dense linear-algebra primitives used by the
// neural-network stack in this repository. It implements just enough of a
// BLAS-like surface (vector ops, matrix-vector and matrix-matrix products,
// rank-1 updates) for hand-written forward and backward passes, using only
// the standard library.
//
// All values are float64. Matrices are dense and row-major. The package is
// deliberately allocation-transparent: every routine that produces a result
// has an "into destination" form so hot loops can reuse buffers.
package tensor

import (
	"fmt"
	"math"
	"sync"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Zero sets every element of v to 0.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Add accumulates other into v element-wise. Panics if lengths differ.
func (v Vector) Add(other Vector) {
	checkLen("Vector.Add", len(v), len(other))
	for i, x := range other {
		v[i] += x
	}
}

// Sub subtracts other from v element-wise.
func (v Vector) Sub(other Vector) {
	checkLen("Vector.Sub", len(v), len(other))
	for i, x := range other {
		v[i] -= x
	}
}

// Scale multiplies every element of v by a.
func (v Vector) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// AXPY computes v += a*x.
func (v Vector) AXPY(a float64, x Vector) {
	checkLen("Vector.AXPY", len(v), len(x))
	for i, xi := range x {
		v[i] += a * xi
	}
}

// MulElem multiplies v element-wise by other.
func (v Vector) MulElem(other Vector) {
	checkLen("Vector.MulElem", len(v), len(other))
	for i, x := range other {
		v[i] *= x
	}
}

// Dot returns the inner product of v and other.
func (v Vector) Dot(other Vector) float64 {
	checkLen("Vector.Dot", len(v), len(other))
	var s float64
	for i, x := range other {
		s += v[i] * x
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Max returns the maximum element of v; -Inf for an empty vector.
func (v Vector) Max() float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMax returns the index of the maximum element, or -1 for empty v.
func (v Vector) ArgMax() int {
	idx, m := -1, math.Inf(-1)
	for i, x := range v {
		if x > m {
			m, idx = x, i
		}
	}
	return idx
}

// Concat returns the concatenation of the given vectors as a new vector.
func Concat(vs ...Vector) Vector {
	n := 0
	for _, v := range vs {
		n += len(v)
	}
	out := make(Vector, 0, n)
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: NewMatrix(%d, %d): negative dimension", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all share one length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		checkLen("tensor.FromRows", cols, len(r))
		copy(m.Row(i), r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a mutable slice view.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element of m to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Scale multiplies every element of m by a.
func (m *Matrix) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// Add accumulates other into m. Panics if shapes differ.
func (m *Matrix) Add(other *Matrix) {
	m.checkShape("Matrix.Add", other)
	for i, x := range other.Data {
		m.Data[i] += x
	}
}

// AXPY computes m += a*x.
func (m *Matrix) AXPY(a float64, x *Matrix) {
	m.checkShape("Matrix.AXPY", x)
	for i, xi := range x.Data {
		m.Data[i] += a * xi
	}
}

// sparseCutoff gates the sparse fast paths: for vectors at least this long
// whose nonzero fraction is below 1/4, gathering the nonzero indices first
// is cheaper than streaming the zeros. The neural models in this repository
// feed mostly one-hot inputs (a handful of ones in a ~300-dim vector), so
// this path dominates training cost.
const sparseCutoff = 64

// nzPool recycles the nonzero-index buffers of the sparse fast paths. The
// buffers never escape the routine that gathered them, so a pool makes the
// hot loops allocation-free at steady state (the old per-call make was the
// last allocation in the serving finalisation path).
var nzPool = sync.Pool{New: func() any { return new([]int32) }}

// gatherNonzeros fills buf with the indices of x's nonzero entries,
// returning nil when a dense pass is preferable. The returned slice aliases
// buf's storage; callers own buf and must return it to nzPool when done.
func gatherNonzeros(buf *[]int32, x Vector) []int32 {
	if len(x) < sparseCutoff {
		return nil
	}
	nz := 0
	limit := len(x) / 4
	for _, v := range x {
		if v != 0 {
			nz++
			if nz >= limit {
				return nil
			}
		}
	}
	idx := (*buf)[:0]
	for j, v := range x {
		if v != 0 {
			idx = append(idx, int32(j))
		}
	}
	*buf = idx
	return idx
}

// MulVec computes dst = m · x where x has length Cols and dst length Rows.
// dst is overwritten. It must not alias x.
func (m *Matrix) MulVec(dst, x Vector) {
	checkLen("Matrix.MulVec x", m.Cols, len(x))
	checkLen("Matrix.MulVec dst", m.Rows, len(dst))
	if len(x) >= sparseCutoff {
		buf := nzPool.Get().(*[]int32)
		if idx := gatherNonzeros(buf, x); idx != nil {
			for i := 0; i < m.Rows; i++ {
				row := m.Data[i*m.Cols : (i+1)*m.Cols]
				var s float64
				for _, j := range idx {
					s += row[j] * x[j]
				}
				dst[i] = s
			}
			nzPool.Put(buf)
			return
		}
		nzPool.Put(buf)
	}
	m.MulVecDense(dst, x)
}

// MulVecDense is MulVec without the sparsity scan, for callers that know x
// is dense (e.g. a GRU hidden state after the first step). Results are
// bit-identical to MulVec: skipped zero terms contribute ±0, which never
// changes an IEEE-754 running sum that is not itself −0, and a running sum
// of products can only be −0 before any nonzero term has been added.
func (m *Matrix) MulVecDense(dst, x Vector) {
	checkLen("Matrix.MulVecDense x", m.Cols, len(x))
	checkLen("Matrix.MulVecDense dst", m.Rows, len(dst))
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] = s
	}
}

// MulVecAdd computes dst += m · x, taking the same sparse fast path as
// MulVec (on zeroed dst the two are bit-identical — see the property test).
func (m *Matrix) MulVecAdd(dst, x Vector) {
	checkLen("Matrix.MulVecAdd x", m.Cols, len(x))
	checkLen("Matrix.MulVecAdd dst", m.Rows, len(dst))
	if len(x) >= sparseCutoff {
		buf := nzPool.Get().(*[]int32)
		if idx := gatherNonzeros(buf, x); idx != nil {
			for i := 0; i < m.Rows; i++ {
				row := m.Data[i*m.Cols : (i+1)*m.Cols]
				var s float64
				for _, j := range idx {
					s += row[j] * x[j]
				}
				dst[i] += s
			}
			nzPool.Put(buf)
			return
		}
		nzPool.Put(buf)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] += s
	}
}

// MulVecT computes dst = mᵀ · x where x has length Rows and dst length Cols.
// dst is overwritten. It must not alias x.
func (m *Matrix) MulVecT(dst, x Vector) {
	checkLen("Matrix.MulVecT x", m.Rows, len(x))
	checkLen("Matrix.MulVecT dst", m.Cols, len(dst))
	for j := range dst {
		dst[j] = 0
	}
	m.MulVecTAdd(dst, x)
}

// MulVecTAdd computes dst += mᵀ · x.
func (m *Matrix) MulVecTAdd(dst, x Vector) {
	checkLen("Matrix.MulVecTAdd x", m.Rows, len(x))
	checkLen("Matrix.MulVecTAdd dst", m.Cols, len(dst))
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			dst[j] += xi * w
		}
	}
}

// RankOneAdd computes m += a · u·vᵀ (outer-product accumulate), with u of
// length Rows and v of length Cols. Used for weight-gradient accumulation,
// where v is frequently a mostly-one-hot input vector.
func (m *Matrix) RankOneAdd(a float64, u, v Vector) {
	checkLen("Matrix.RankOneAdd u", m.Rows, len(u))
	checkLen("Matrix.RankOneAdd v", m.Cols, len(v))
	if len(v) >= sparseCutoff {
		buf := nzPool.Get().(*[]int32)
		if idx := gatherNonzeros(buf, v); idx != nil {
			for i := 0; i < m.Rows; i++ {
				s := a * u[i]
				if s == 0 {
					continue
				}
				row := m.Data[i*m.Cols : (i+1)*m.Cols]
				for _, j := range idx {
					row[j] += s * v[j]
				}
			}
			nzPool.Put(buf)
			return
		}
		nzPool.Put(buf)
	}
	for i := 0; i < m.Rows; i++ {
		s := a * u[i]
		if s == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, vj := range v {
			row[j] += s * vj
		}
	}
}

// MatMul computes dst = m · other. dst must be Rows×other.Cols and is
// overwritten; it must not alias m or other. It is the historical name for
// MulMat, which supplies the cache-blocked kernels.
func (m *Matrix) MatMul(dst, other *Matrix) { m.MulMat(dst, other) }

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, x := range m.Data {
		s += x * x
	}
	return math.Sqrt(s)
}

func (m *Matrix) checkShape(op string, other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("tensor: %s: shape mismatch %dx%d vs %dx%d",
			op, m.Rows, m.Cols, other.Rows, other.Cols))
	}
}

func checkLen(op string, want, got int) {
	if want != got {
		lenPanic(op, want, got)
	}
}

// lenPanic is kept out of line so that inlining checkLen into the
// MulVec*/GEMM hot paths does not drag the Sprintf interface
// conversions (and their heap escapes) into functions pinned by the
// ppescape gate. The fast path of checkLen is a compare and a branch.
//
//go:noinline
func lenPanic(op string, want, got int) {
	panic(fmt.Sprintf("tensor: %s: length mismatch: want %d, got %d", op, want, got))
}
