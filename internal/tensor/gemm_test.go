package tensor

import (
	"fmt"
	"testing"
)

// refMulMat is the k-ordered reference GEMM: one accumulator per element,
// terms added in ascending k — the exact contract the blocked kernels
// promise, so the comparison below is for bit equality, not tolerance.
func refMulMat(dst, a, b *Matrix) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			dst.Set(i, j, s)
		}
	}
}

func randMatrix(rng *RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// gemmShapes covers tile-aligned, ragged, tiny, and block-crossing shapes
// (K > gemmKC exercises the partial-sum spill between k-blocks).
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1}, {3, 5, 2}, {4, 4, 4}, {5, 7, 3}, {8, 16, 8},
	{17, 33, 9}, {64, 300, 12}, {7, 260, 5}, {130, 13, 70},
}

func TestMulMatBitIdenticalToReference(t *testing.T) {
	rng := NewRNG(7)
	for _, sh := range gemmShapes {
		a := randMatrix(rng, sh.m, sh.k)
		b := randMatrix(rng, sh.k, sh.n)
		want := NewMatrix(sh.m, sh.n)
		refMulMat(want, a, b)
		got := NewMatrix(sh.m, sh.n)
		a.MulMat(got, b)
		for i, w := range want.Data {
			if got.Data[i] != w {
				t.Fatalf("%dx%dx%d: element %d: got %v want %v", sh.m, sh.k, sh.n, i, got.Data[i], w)
			}
		}
	}
}

func TestMulMatTBitIdenticalToMulVec(t *testing.T) {
	rng := NewRNG(8)
	for _, sh := range gemmShapes {
		// dst = a · wᵀ: row i of dst must match w.MulVec(row i of a).
		a := randMatrix(rng, sh.m, sh.k)
		w := randMatrix(rng, sh.n, sh.k)
		got := NewMatrix(sh.m, sh.n)
		a.MulMatT(got, w)
		want := NewVector(sh.n)
		for i := 0; i < sh.m; i++ {
			w.MulVec(want, a.Row(i))
			for j, x := range want {
				if got.At(i, j) != x {
					t.Fatalf("%dx%dx%d: row %d col %d: got %v want %v", sh.m, sh.k, sh.n, i, j, got.At(i, j), x)
				}
			}
		}
	}
}

func TestMulMatAddAccumulates(t *testing.T) {
	rng := NewRNG(9)
	a := randMatrix(rng, 9, 21)
	b := randMatrix(rng, 21, 6)
	base := randMatrix(rng, 9, 6)

	// The accumulate contract folds each product term into the existing dst
	// value in ascending k (not dst + full-product, which differs in the
	// last ulp): mirror that chain in the reference.
	want := base.Clone()
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			acc := want.At(i, j)
			for k := 0; k < a.Cols; k++ {
				acc += a.At(i, k) * b.At(k, j)
			}
			want.Set(i, j, acc)
		}
	}

	got := base.Clone()
	a.MulMatAdd(got, b)
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d: got %v want %v", i, got.Data[i], want.Data[i])
		}
	}

	gotT := base.Clone()
	bT := NewMatrix(6, 21)
	for i := 0; i < 21; i++ {
		for j := 0; j < 6; j++ {
			bT.Set(j, i, b.At(i, j))
		}
	}
	a.MulMatTAdd(gotT, bT)
	for i := range gotT.Data {
		if gotT.Data[i] != want.Data[i] {
			t.Fatalf("NT element %d: got %v want %v", i, gotT.Data[i], want.Data[i])
		}
	}
}

func TestMulMatShapePanics(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(4, 2) // inner mismatch
	dst := NewMatrix(2, 2)
	for _, fn := range []func(){
		func() { a.MulMat(dst, b) },
		func() { a.MulMatAdd(dst, b) },
		func() { a.MulMatT(NewMatrix(2, 5), NewMatrix(5, 4)) }, // inner mismatch (4 != 3)
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("shape mismatch must panic")
				}
			}()
			fn()
		}()
	}
}

// TestMulVecAddMatchesMulVec is the property test pinning the sparse fast
// path: MulVecAdd on a zeroed destination must be bit-identical to MulVec,
// across dense, sparse (one-hot-like), and empty inputs.
func TestMulVecAddMatchesMulVec(t *testing.T) {
	rng := NewRNG(10)
	for trial := 0; trial < 40; trial++ {
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(400)
		m := randMatrix(rng, rows, cols)
		x := NewVector(cols)
		switch trial % 3 {
		case 0: // dense
			for i := range x {
				x[i] = rng.NormFloat64()
			}
		case 1: // sparse one-hot-ish (the GRU update-input shape)
			for i := 0; i < 1+rng.Intn(4); i++ {
				x[rng.Intn(cols)] = 1
			}
		case 2: // all zero
		}
		want := NewVector(rows)
		m.MulVec(want, x)
		got := NewVector(rows)
		m.MulVecAdd(got, x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (%dx%d) row %d: MulVecAdd %v vs MulVec %v", trial, rows, cols, i, got[i], want[i])
			}
		}
		// And accumulation: a second MulVecAdd must add the product again.
		m.MulVecAdd(got, x)
		for i := range want {
			if got[i] != want[i]+want[i] {
				t.Fatalf("trial %d row %d: accumulate %v vs %v", trial, i, got[i], want[i]+want[i])
			}
		}
	}
}

func TestMulVecDenseMatchesMulVec(t *testing.T) {
	rng := NewRNG(11)
	m := randMatrix(rng, 24, 96)
	x := NewVector(96)
	x[3], x[90] = 1, 2.5 // sparse: MulVec takes the gather path
	want := NewVector(24)
	m.MulVec(want, x)
	got := NewVector(24)
	m.MulVecDense(got, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: dense %v vs sparse %v", i, got[i], want[i])
		}
	}
}

// TestMulVecSteadyStateAllocs pins the gatherNonzeros pool fix: sparse
// matrix-vector products must not allocate per call.
func TestMulVecSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts, so the nzPool buffer reallocates")
	}
	rng := NewRNG(12)
	m := randMatrix(rng, 48, 300)
	x := NewVector(300)
	x[5], x[120], x[299] = 1, 1, 1
	dst := NewVector(48)
	m.MulVec(dst, x) // warm the pool
	for name, fn := range map[string]func(){
		"MulVec":     func() { m.MulVec(dst, x) },
		"MulVecAdd":  func() { m.MulVecAdd(dst, x) },
		"RankOneAdd": func() { m.RankOneAdd(0.5, dst, x) },
	} {
		if allocs := testing.AllocsPerRun(20, fn); allocs != 0 {
			t.Fatalf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

func TestArenaReuse(t *testing.T) {
	a := NewArena(0)
	a.Reset()
	m1 := a.Matrix(4, 8)
	v1 := a.Vector(16)
	if m1.Rows != 4 || m1.Cols != 8 || len(m1.Data) != 32 || len(v1) != 16 {
		t.Fatalf("arena shapes wrong: %dx%d len %d / %d", m1.Rows, m1.Cols, len(m1.Data), len(v1))
	}
	m1.Data[0] = 42
	a.Reset()
	// Same demand → same backing storage, no allocation.
	allocs := testing.AllocsPerRun(10, func() {
		a.Reset()
		m := a.Matrix(4, 8)
		_ = a.Vector(16)
		m.Data[0] = 1
	})
	if allocs != 0 {
		t.Fatalf("steady-state arena allocs: %v, want 0", allocs)
	}
	// Growth: a bigger cycle is satisfied (from the heap at first, from the
	// regrown slab afterwards).
	a.Reset()
	big := a.Matrix(64, 64)
	big.Data[4095] = 7
	a.Reset()
	if got := testing.AllocsPerRun(10, func() {
		a.Reset()
		_ = a.Matrix(64, 64)
	}); got != 0 {
		t.Fatalf("post-growth arena allocs: %v, want 0", got)
	}
}

// BenchmarkGEMM measures the blocked kernels at the batched-GRU shapes:
// a (B × d) panel against the (3h × d) gate weights.
func BenchmarkGEMM(b *testing.B) {
	rng := NewRNG(13)
	for _, d := range []int{32, 64, 128} {
		for _, batch := range []int{8, 32} {
			x := randMatrix(rng, batch, d)
			w := randMatrix(rng, 3*d, d)
			dst := NewMatrix(batch, 3*d)
			b.Run(fmt.Sprintf("NT-d%d-B%d", d, batch), func(b *testing.B) {
				b.SetBytes(int64(8 * (batch*d + 3*d*d + batch*3*d)))
				for i := 0; i < b.N; i++ {
					x.MulMatT(dst, w)
				}
			})
		}
	}
}

// BenchmarkMulVecVsGEMM contrasts B MulVecs against one GEMM at the same
// total work — the weight-reuse win the batched finaliser banks on.
func BenchmarkMulVecVsGEMM(b *testing.B) {
	rng := NewRNG(14)
	const d, batch = 64, 32
	w := randMatrix(rng, 3*d, d)
	x := randMatrix(rng, batch, d)
	dstV := NewVector(3 * d)
	dstM := NewMatrix(batch, 3*d)
	b.Run("mulvec-x32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r := 0; r < batch; r++ {
				w.MulVec(dstV, x.Row(r))
			}
		}
	})
	b.Run("gemm-32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x.MulMatT(dstM, w)
		}
	})
}
