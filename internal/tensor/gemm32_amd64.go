//go:build amd64

package tensor

// gemmNT32Tile computes dst[i0:i0+4, 0:n] = a[i0:i0+4, :] · b[0:n, :]ᵀ for
// an even n, through the packed SSE micro-kernel. The kernel implements
// exactly the 4-lane contract of Dot4Lanes, so this block is bit-identical
// to gemmNT32Edge over the same elements.
func gemmNT32Tile(dst, a, b *Matrix32, i0, n int) {
	gemmNT4xNf32(
		&dst.Data[i0*dst.Cols], dst.Cols,
		&a.Data[i0*a.Cols], a.Cols,
		&b.Data[0], b.Cols,
		a.Cols, n,
	)
}

// gemmNT4xNf32 is the assembly micro-kernel (gemm32_amd64.s): 4 input rows
// × n weight rows (n even) over a full K reduction (K % 4 == 0), holding an
// 8×4 accumulator tile — 4 rows × 2 weight rows × 4 packed k-lanes — in
// XMM registers. Strides are in elements.
//
//go:noescape
func gemmNT4xNf32(dst *float32, ldd int, a *float32, lda int, b *float32, ldb int, k, n int)
