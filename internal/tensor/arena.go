package tensor

// Arena is a bump allocator for the inference hot path: the batched
// serving tier carves its per-batch panels (packed inputs, hidden states,
// gate pre-activations) out of one slab, calls Reset between batches, and
// after the first batch at a given shape allocates nothing at all.
//
// Returned buffers are valid until the next Reset and their contents are
// unspecified (callers overwrite every element; MulMat and friends zero
// their destinations themselves). Matrix headers are pooled alongside the
// float64 slab, so Arena.Matrix is allocation-free at steady state too.
//
// An Arena is not safe for concurrent use; give each worker its own, like
// the serving tier's per-lane update scratch.
type Arena struct {
	slab []float64
	off  int
	// need accumulates the current cycle's total demand; when it outgrows
	// the slab, overflow requests fall back to make and Reset reallocates
	// the slab once at the high-water mark.
	need int

	hdrs []*Matrix
	hu   int
}

// NewArena returns an arena with capacity for n float64s (0 is valid: the
// slab grows to the observed demand after the first Reset cycle).
func NewArena(n int) *Arena {
	return &Arena{slab: make([]float64, n)}
}

// Reset recycles every allocation handed out since the previous Reset.
func (a *Arena) Reset() {
	if a.need > len(a.slab) {
		a.slab = make([]float64, a.need)
	}
	a.off, a.need, a.hu = 0, 0, 0
}

// alloc returns n float64s of unspecified content.
func (a *Arena) alloc(n int) []float64 {
	a.need += n
	if a.off+n <= len(a.slab) {
		s := a.slab[a.off : a.off+n : a.off+n]
		a.off += n
		return s
	}
	// Slab exhausted this cycle; satisfy from the heap now and grow the
	// slab to the new high-water mark at the next Reset.
	return make([]float64, n)
}

// Vector returns an arena-backed vector of length n (contents unspecified).
func (a *Arena) Vector(n int) Vector { return Vector(a.alloc(n)) }

// Matrix returns an arena-backed rows×cols matrix (contents unspecified).
func (a *Arena) Matrix(rows, cols int) *Matrix {
	var m *Matrix
	if a.hu < len(a.hdrs) {
		m = a.hdrs[a.hu]
	} else {
		m = new(Matrix)
		a.hdrs = append(a.hdrs, m)
	}
	a.hu++
	m.Rows, m.Cols = rows, cols
	m.Data = a.alloc(rows * cols)
	return m
}
