package tensor

import (
	"fmt"
	"math"
	"testing"
)

func randMatrix32(rng *RNG, rows, cols int) *Matrix32 {
	m := NewMatrix32(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

// refMulMatT32 is the portable definition of the f32 NT product: one
// 4-lane dot per element, spelled with the shared Dot4Lanes helper. The
// kernels (assembly included) must match it bit-for-bit.
func refMulMatT32(dst, a, b *Matrix32) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			dst.Set(i, j, Dot4Lanes(a.Row(i), b.Row(j)))
		}
	}
}

// gemm32Shapes covers tile-aligned, ragged-row, odd-weight-row, and tiny
// shapes; K is always a multiple of 4 (the kernel contract — callers pad).
var gemm32Shapes = []struct{ m, k, n int }{
	{1, 4, 1}, {4, 4, 4}, {3, 8, 2}, {4, 8, 3}, {5, 12, 7},
	{8, 128, 96}, {17, 64, 9}, {64, 128, 384}, {6, 92, 13}, {1, 92, 384},
}

func TestMulMatT32BitIdenticalToReference(t *testing.T) {
	rng := NewRNG(71)
	for _, sh := range gemm32Shapes {
		a := randMatrix32(rng, sh.m, sh.k)
		b := randMatrix32(rng, sh.n, sh.k)
		want := NewMatrix32(sh.m, sh.n)
		refMulMatT32(want, a, b)
		got := NewMatrix32(sh.m, sh.n)
		for i := range got.Data {
			got.Data[i] = 999 // overwrite semantics: stale dst must not leak
		}
		a.MulMatT(got, b)
		for i, w := range want.Data {
			if math.Float32bits(got.Data[i]) != math.Float32bits(w) {
				t.Fatalf("%dx%dx%d: element %d: got %v want %v", sh.m, sh.k, sh.n, i, got.Data[i], w)
			}
		}
	}
}

// TestMulMatT32MatchesMulVec32 pins the serving parity property: a batched
// panel row equals the scalar matvec of that row, bit for bit, so batched
// and per-session f32 finalisation store identical states.
func TestMulMatT32MatchesMulVec32(t *testing.T) {
	rng := NewRNG(72)
	for _, sh := range gemm32Shapes {
		a := randMatrix32(rng, sh.m, sh.k)
		w := randMatrix32(rng, sh.n, sh.k)
		dst := NewMatrix32(sh.m, sh.n)
		a.MulMatT(dst, w)
		row := NewVector32(sh.n)
		for i := 0; i < sh.m; i++ {
			w.MulVecDense(row, a.Row(i))
			for j, want := range row {
				if math.Float32bits(dst.At(i, j)) != math.Float32bits(want) {
					t.Fatalf("%dx%dx%d row %d col %d: GEMM %v vs MulVec %v", sh.m, sh.k, sh.n, i, j, dst.At(i, j), want)
				}
			}
		}
	}
}

// TestMulVec32SparseMatchesDense pins the lane contract across routing:
// the sparse fast path (lane = column index % 4) must equal the dense
// pass bit-for-bit, so panel-level and row-level routing decisions can
// never diverge a replay.
func TestMulVec32SparseMatchesDense(t *testing.T) {
	rng := NewRNG(73)
	m := randMatrix32(rng, 48, 92)
	x := NewVector32(92)
	x[3], x[37], x[64], x[91] = 1, 0.5, -2, 1 // sparse: 4/92 < 1/4
	sparse := NewVector32(48)
	dense := NewVector32(48)
	m.MulVec(sparse, x)
	m.MulVecDense(dense, x)
	for i := range sparse {
		if math.Float32bits(sparse[i]) != math.Float32bits(dense[i]) {
			t.Fatalf("row %d: sparse %v dense %v", i, sparse[i], dense[i])
		}
	}
	// Dense vector must route dense and still agree (trivially).
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	m.MulVec(sparse, x)
	m.MulVecDense(dense, x)
	for i := range sparse {
		if math.Float32bits(sparse[i]) != math.Float32bits(dense[i]) {
			t.Fatalf("dense row %d: %v vs %v", i, sparse[i], dense[i])
		}
	}
}

// TestMulVecT32 pins the transposed sparse product: bit-exact against its
// own contract (ascending-nonzero single-chain accumulation), and a clean
// refusal — dst untouched — when x routes dense or is below the cutoff.
func TestMulVecT32(t *testing.T) {
	rng := NewRNG(78)
	m := randMatrix32(rng, 92, 48) // inputs × outputs, transposed-weight layout
	x := NewVector32(92)
	x[3], x[37], x[64], x[91] = 1, 0.5, -2, 1
	dst := NewVector32(48)
	for i := range dst {
		dst[i] = 999 // MulVecT must fully overwrite on the sparse route
	}
	if !m.MulVecT(dst, x) {
		t.Fatal("sparse x must take the transposed route")
	}
	want := NewVector32(48)
	for _, j := range []int{3, 37, 64, 91} {
		for i := range want {
			want[i] += x[j] * m.At(j, i)
		}
	}
	for i := range want {
		if math.Float32bits(dst[i]) != math.Float32bits(want[i]) {
			t.Fatalf("element %d: got %v want %v", i, dst[i], want[i])
		}
	}
	// A dense x must decline and leave dst alone.
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	before := dst.Clone()
	if m.MulVecT(dst, x) {
		t.Fatal("dense x must decline the transposed route")
	}
	for i := range dst {
		if dst[i] != before[i] {
			t.Fatalf("dst modified on declined route at %d", i)
		}
	}
	short := NewMatrix32(8, 48)
	if short.MulVecT(dst, NewVector32(8)) {
		t.Fatal("below-cutoff x must decline")
	}
}

// TestMulMatT32CloseToF64 checks the f32 product against the f64 kernels
// within float32 tolerance — the cross-tier bounded-error property.
func TestMulMatT32CloseToF64(t *testing.T) {
	rng := NewRNG(74)
	const m, k, n = 16, 128, 96
	a64 := randMatrix(rng, m, k)
	b64 := randMatrix(rng, n, k)
	a32, b32 := NewMatrix32(m, k), NewMatrix32(n, k)
	for i, v := range a64.Data {
		a32.Data[i] = float32(v)
		a64.Data[i] = float64(a32.Data[i]) // compare from the same rounded inputs
	}
	for i, v := range b64.Data {
		b32.Data[i] = float32(v)
		b64.Data[i] = float64(b32.Data[i])
	}
	want := NewMatrix(m, n)
	a64.MulMatT(want, b64)
	got := NewMatrix32(m, n)
	a32.MulMatT(got, b32)
	for i := range got.Data {
		diff := math.Abs(float64(got.Data[i]) - want.Data[i])
		scale := math.Abs(want.Data[i]) + float64(k)
		if diff > 1e-5*scale {
			t.Fatalf("element %d: f32 %v vs f64 %v (diff %v)", i, got.Data[i], want.Data[i], diff)
		}
	}
}

func TestMulMatT32RejectsUnpaddedK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("K %% 4 != 0 must panic")
		}
	}()
	a := NewMatrix32(4, 6)
	b := NewMatrix32(4, 6)
	dst := NewMatrix32(4, 4)
	a.MulMatT(dst, b)
}

func TestMulVec32SteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts, so the nzPool buffer reallocates")
	}
	rng := NewRNG(75)
	m := randMatrix32(rng, 48, 300)
	x := NewVector32(300)
	x[5], x[120], x[299] = 1, 1, 1
	dst := NewVector32(48)
	m.MulVec(dst, x) // warm the pool
	if allocs := testing.AllocsPerRun(20, func() { m.MulVec(dst, x) }); allocs != 0 {
		t.Fatalf("MulVec32: %v allocs/op, want 0", allocs)
	}
}

func TestMulMatT32SteadyStateAllocs(t *testing.T) {
	rng := NewRNG(76)
	a := randMatrix32(rng, 64, 128)
	b := randMatrix32(rng, 384, 128)
	dst := NewMatrix32(64, 384)
	if allocs := testing.AllocsPerRun(10, func() { a.MulMatT(dst, b) }); allocs != 0 {
		t.Fatalf("MulMatT32: %v allocs/op, want 0", allocs)
	}
}

func TestArena32Reuse(t *testing.T) {
	a := NewArena32(0)
	a.Reset()
	m1 := a.Matrix(4, 8)
	v1 := a.Vector(16)
	if m1.Rows != 4 || m1.Cols != 8 || len(m1.Data) != 32 || len(v1) != 16 {
		t.Fatalf("arena shapes wrong: %dx%d len %d / %d", m1.Rows, m1.Cols, len(m1.Data), len(v1))
	}
	a.Reset()
	if allocs := testing.AllocsPerRun(10, func() {
		a.Reset()
		m := a.Matrix(4, 8)
		_ = a.Vector(16)
		m.Data[0] = 1
	}); allocs != 0 {
		t.Fatalf("steady-state arena32 allocs: %v, want 0", allocs)
	}
}

func TestVector32Conversions(t *testing.T) {
	src := Vector{1.5, -2.25, 1e-40, 3}
	v := NewVector32(4)
	v.CopyFromF64(src)
	back := NewVector(4)
	v.ToF64(back)
	for i := range src {
		if back[i] != float64(float32(src[i])) {
			t.Fatalf("round trip %d: %v -> %v", i, src[i], back[i])
		}
	}
}

// BenchmarkGEMM32 measures the packed f32 kernel at the batched-GRU gate
// shape next to the f64 baseline (see BenchmarkGEMM).
func BenchmarkGEMM32(b *testing.B) {
	rng := NewRNG(77)
	for _, d := range []int{64, 128} {
		const batch = 64
		x := randMatrix32(rng, batch, d)
		w := randMatrix32(rng, 3*d, d)
		dst := NewMatrix32(batch, 3*d)
		b.Run(fmt.Sprintf("NT32-d%d-B%d", d, batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x.MulMatT(dst, w)
			}
		})
		x64 := randMatrix(rng, batch, d)
		w64 := randMatrix(rng, 3*d, d)
		dst64 := NewMatrix(batch, 3*d)
		b.Run(fmt.Sprintf("NT64-d%d-B%d", d, batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x64.MulMatT(dst64, w64)
			}
		})
	}
}
