package tensor

// Float32 NT GEMM for the serving fast tier: dst = a · bᵀ with a row-major
// (B × K) input panel and a row-major (N × K) weight matrix — the same
// serving workhorse shape as the f64 MulMatT, at half the memory width.
//
// Unlike the f64 kernels (strict single-accumulator ascending-k chains, the
// bit-exact parity reference), the f32 tier uses the 4-lane accumulation
// contract documented in tensor32.go: term k lands in lane k%4, lanes
// combine as (l0+l2)+(l1+l3). That contract is what lets the amd64
// micro-kernel (gemm32_amd64.s) run the reduction on the packed SSE units —
// baseline amd64 instructions, no feature detection, so every amd64 machine
// produces identical bits — while the pure-Go paths here reproduce the same
// results bit-for-bit: the edge rows below, the !amd64 fallback, the
// sparse/dense matvec paths, and the fused scalar GRU step all share it.
//
// The micro-kernel holds an 8×4 accumulator tile in registers: 4 input
// rows × 2 weight rows × 4 packed k-lanes = 32 independent multiply-add
// chains in 8 XMM registers, against the f64 kernel's 16 scalar chains.
// There is no k-blocking: K is the hidden/input dimension (at most a few
// hundred here), so a 4-row input block and a 2-row weight block stay
// L1-resident across the whole reduction, and lane sums never need to
// spill mid-chain. The kernel requires K % 4 == 0; the nn layer pads its
// f32 weight copies and panels to that boundary (zero columns are exact:
// they contribute ±0 to a lane, with the sign-of-zero caveat the f64 tier
// already documents).

// MulMatT computes dst = m · otherᵀ (m: M×K, other: N×K, dst: M×N). dst is
// fully overwritten (no pre-zeroing pass is needed); it must not alias m or
// other. K must be a multiple of 4 — pad with zero columns on both
// operands, which leaves every lane sum unchanged.
func (m *Matrix32) MulMatT(dst, other *Matrix32) {
	checkLen("Matrix32.MulMatT inner", m.Cols, other.Cols)
	checkLen("Matrix32.MulMatT rows", dst.Rows, m.Rows)
	checkLen("Matrix32.MulMatT cols", dst.Cols, other.Rows)
	if m.Cols&3 != 0 {
		lenPanic("Matrix32.MulMatT inner %4", (m.Cols+3)&^3, m.Cols)
	}
	gemmNT32(dst, m, other)
}

// gemmNT32 tiles the panel: full 4-row blocks go through the packed
// micro-kernel (gemmNT32Tile, assembly on amd64), ragged rows and a ragged
// trailing weight row through the pure-Go edge — bit-identical by the lane
// contract.
func gemmNT32(dst, a, b *Matrix32) {
	M, N := a.Rows, b.Rows
	i := 0
	for ; i+4 <= M; i += 4 {
		if n2 := N &^ 1; n2 > 0 {
			gemmNT32Tile(dst, a, b, i, n2)
		}
		if N&1 != 0 {
			gemmNT32Edge(dst, a, b, i, 4, N-1, 1)
		}
	}
	if i < M {
		gemmNT32Edge(dst, a, b, i, M-i, 0, N)
	}
}

// Dot4Lanes is the scalar spelling of the packed reduction: four
// independent ascending-k lane chains combined as (l0+l2)+(l1+l3). a and b
// must have equal length. Exported because the fused f32 GRU step computes
// its recurrent dots element-by-element with this exact contract, which is
// what keeps it bit-identical to the batched GEMM path.
func Dot4Lanes(a, b Vector32) float32 {
	var l0, l1, l2, l3 float32
	k := 0
	for ; k+4 <= len(a); k += 4 {
		l0 += a[k] * b[k]
		l1 += a[k+1] * b[k+1]
		l2 += a[k+2] * b[k+2]
		l3 += a[k+3] * b[k+3]
	}
	for ; k < len(a); k++ {
		switch k & 3 {
		case 0:
			l0 += a[k] * b[k]
		case 1:
			l1 += a[k] * b[k]
		case 2:
			l2 += a[k] * b[k]
		default:
			l3 += a[k] * b[k]
		}
	}
	return (l0 + l2) + (l1 + l3)
}

// gemmNT32Edge computes dst[i0:i0+ni, j0:j0+nj] = a · bᵀ over those rows
// and weight rows, one 4-lane dot per element.
func gemmNT32Edge(dst, a, b *Matrix32, i0, ni, j0, nj int) {
	K := a.Cols
	for i := i0; i < i0+ni; i++ {
		arow := Vector32(a.Data[i*a.Cols : i*a.Cols+K])
		drow := dst.Data[i*dst.Cols+j0 : i*dst.Cols+j0+nj]
		for j := range drow {
			brow := Vector32(b.Data[(j0+j)*b.Cols : (j0+j)*b.Cols+K])
			drow[j] = Dot4Lanes(arow, brow)
		}
	}
}
