//go:build !amd64

package tensor

// gemmNT32Tile without the assembly kernel: the pure-Go edge path computes
// the same 4-lane reduction, so non-amd64 builds produce bit-identical
// results (the lane contract is the portable definition; the SSE kernel is
// an implementation of it).
func gemmNT32Tile(dst, a, b *Matrix32, i0, n int) {
	gemmNT32Edge(dst, a, b, i0, 4, 0, n)
}
