package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**). Every stochastic component in this repository takes an
// explicit *RNG so runs are reproducible from a single seed, and so that
// per-user generators can be forked cheaply without lock contention.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, which is the
// recommended way to initialise xoshiro state (it guarantees a non-zero
// state for any seed, including 0).
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Fork returns an independent generator derived from r's stream and the
// given stream identifier. Forks with distinct ids are statistically
// independent, which lets per-user simulation run in any order while
// producing identical data.
func (r *RNG) Fork(id uint64) *RNG {
	return NewRNG(r.Uint64() ^ (id * 0x9e3779b97f4a7c15) ^ 0xd1b54a32d192ed03)
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn: n must be positive")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place (Fisher–Yates).
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// NormFloat64 returns a standard normal variate (Box–Muller, polar form).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// LogNormal returns a log-normal variate with the given log-space mean and
// standard deviation.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// Pareto returns a Pareto (power-law) variate with minimum xm and shape
// alpha. Inter-session gaps in the synthetic datasets use this distribution,
// matching the paper's observation that Δt is power-law distributed.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// Beta returns a Beta(a, b) variate (via Jöhnk's algorithm for small
// parameters and gamma ratio otherwise).
func (r *RNG) Beta(a, b float64) float64 {
	x := r.Gamma(a)
	y := r.Gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Gamma returns a Gamma(shape, 1) variate using Marsaglia–Tsang.
func (r *RNG) Gamma(shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u == 0 {
			continue
		}
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}

// Poisson returns a Poisson variate with the given mean (Knuth for small
// means, normal approximation above 30 where exact sampling is needless).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for p > l {
		k++
		p *= r.Float64()
	}
	return k - 1
}

// FillNormal fills v with N(0, std²) values.
func (r *RNG) FillNormal(v Vector, std float64) {
	for i := range v {
		v[i] = std * r.NormFloat64()
	}
}

// FillUniform fills v with Uniform(lo, hi) values.
func (r *RNG) FillUniform(v Vector, lo, hi float64) {
	for i := range v {
		v[i] = lo + (hi-lo)*r.Float64()
	}
}
