package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorBasicOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}

	got := v.Clone()
	got.Add(w)
	want := Vector{5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Add: got %v, want %v", got, want)
		}
	}

	got = v.Clone()
	got.Sub(w)
	want = Vector{-3, -3, -3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sub: got %v, want %v", got, want)
		}
	}

	got = v.Clone()
	got.Scale(2)
	want = Vector{2, 4, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scale: got %v, want %v", got, want)
		}
	}

	got = v.Clone()
	got.AXPY(0.5, w)
	want = Vector{3, 4.5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AXPY: got %v, want %v", got, want)
		}
	}

	got = v.Clone()
	got.MulElem(w)
	want = Vector{4, 10, 18}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulElem: got %v, want %v", got, want)
		}
	}

	if d := v.Dot(w); d != 32 {
		t.Fatalf("Dot: got %v, want 32", d)
	}
	if s := v.Sum(); s != 6 {
		t.Fatalf("Sum: got %v, want 6", s)
	}
	if n := (Vector{3, 4}).Norm2(); n != 5 {
		t.Fatalf("Norm2: got %v, want 5", n)
	}
	if m := w.Max(); m != 6 {
		t.Fatalf("Max: got %v, want 6", m)
	}
	if i := w.ArgMax(); i != 2 {
		t.Fatalf("ArgMax: got %v, want 2", i)
	}
}

func TestVectorZeroAndFill(t *testing.T) {
	v := Vector{1, 2, 3}
	v.Fill(7)
	for _, x := range v {
		if x != 7 {
			t.Fatalf("Fill: got %v", v)
		}
	}
	v.Zero()
	for _, x := range v {
		if x != 0 {
			t.Fatalf("Zero: got %v", v)
		}
	}
}

func TestVectorEmptyEdgeCases(t *testing.T) {
	var v Vector
	if v.Sum() != 0 {
		t.Errorf("empty Sum != 0")
	}
	if !math.IsInf(v.Max(), -1) {
		t.Errorf("empty Max should be -Inf")
	}
	if v.ArgMax() != -1 {
		t.Errorf("empty ArgMax should be -1")
	}
	if v.Norm2() != 0 {
		t.Errorf("empty Norm2 != 0")
	}
}

func TestConcat(t *testing.T) {
	got := Concat(Vector{1, 2}, Vector{}, Vector{3})
	want := Vector{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Concat length: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Concat: got %v, want %v", got, want)
		}
	}
}

func TestVectorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on length mismatch")
		}
	}()
	v := Vector{1, 2}
	v.Add(Vector{1, 2, 3})
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	m.Set(1, 2, 7)
	if m.At(0, 1) != 5 || m.At(1, 2) != 7 {
		t.Fatalf("Set/At mismatch: %v", m.Data)
	}
	row := m.Row(1)
	row[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatalf("Row must be a mutable view")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape: got %dx%d", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1): got %v", m.At(2, 1))
	}
	empty := FromRows(nil)
	if empty.Rows != 0 || empty.Cols != 0 {
		t.Fatalf("empty FromRows: got %dx%d", empty.Rows, empty.Cols)
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	x := Vector{1, 0, -1}
	dst := NewVector(2)
	m.MulVec(dst, x)
	if dst[0] != -2 || dst[1] != -2 {
		t.Fatalf("MulVec: got %v", dst)
	}
	m.MulVecAdd(dst, x)
	if dst[0] != -4 || dst[1] != -4 {
		t.Fatalf("MulVecAdd: got %v", dst)
	}
}

func TestMulVecT(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	x := Vector{1, -1}
	dst := NewVector(3)
	m.MulVecT(dst, x)
	want := Vector{-3, -3, -3}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecT: got %v, want %v", dst, want)
		}
	}
}

// MulVecT must agree with an explicit transpose followed by MulVec.
func TestMulVecTMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(42)
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewMatrix(rows, cols)
		rng.FillNormal(m.Data, 1)
		x := NewVector(rows)
		rng.FillNormal(x, 1)

		viaT := NewVector(cols)
		m.MulVecT(viaT, x)

		mt := NewMatrix(cols, rows)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				mt.Set(j, i, m.At(i, j))
			}
		}
		direct := NewVector(cols)
		mt.MulVec(direct, x)

		for j := 0; j < cols; j++ {
			if !almostEq(viaT[j], direct[j], 1e-12) {
				t.Fatalf("trial %d: MulVecT disagrees with transpose: %v vs %v", trial, viaT, direct)
			}
		}
	}
}

func TestRankOneAdd(t *testing.T) {
	m := NewMatrix(2, 3)
	m.RankOneAdd(2, Vector{1, -1}, Vector{1, 2, 3})
	want := [][]float64{{2, 4, 6}, {-2, -4, -6}}
	for i := range want {
		for j := range want[i] {
			if m.At(i, j) != want[i][j] {
				t.Fatalf("RankOneAdd: got %v", m.Data)
			}
		}
	}
}

func TestMatMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	dst := NewMatrix(2, 2)
	a.MatMul(dst, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if dst.At(i, j) != want[i][j] {
				t.Fatalf("MatMul: got %v, want %v", dst.Data, want)
			}
		}
	}
}

func TestMatrixAddScaleClone(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := a.Clone()
	b.Scale(2)
	a.Add(b)
	if a.At(1, 1) != 12 {
		t.Fatalf("Add/Scale: got %v", a.Data)
	}
	b.Zero()
	if b.FrobeniusNorm() != 0 {
		t.Fatalf("Zero: got %v", b.Data)
	}
	c := FromRows([][]float64{{3, 4}})
	if n := c.FrobeniusNorm(); n != 5 {
		t.Fatalf("FrobeniusNorm: got %v", n)
	}
}

func TestMatrixShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on shape mismatch")
		}
	}()
	NewMatrix(2, 2).Add(NewMatrix(2, 3))
}

// Property: dot product is symmetric and linear in its first argument.
func TestDotProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 1 + rng.Intn(16)
		a, b, c := NewVector(n), NewVector(n), NewVector(n)
		rng.FillNormal(a, 1)
		rng.FillNormal(b, 1)
		rng.FillNormal(c, 1)
		alpha := rng.NormFloat64()

		if !almostEq(a.Dot(b), b.Dot(a), 1e-9) {
			return false
		}
		// (a + alpha*c)·b == a·b + alpha*(c·b)
		lhs := a.Clone()
		lhs.AXPY(alpha, c)
		return almostEq(lhs.Dot(b), a.Dot(b)+alpha*c.Dot(b), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: MulVec distributes over vector addition.
func TestMulVecLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		m := NewMatrix(rows, cols)
		rng.FillNormal(m.Data, 1)
		x, y := NewVector(cols), NewVector(cols)
		rng.FillNormal(x, 1)
		rng.FillNormal(y, 1)

		xy := x.Clone()
		xy.Add(y)
		sum := NewVector(rows)
		m.MulVec(sum, xy)

		mx, my := NewVector(rows), NewVector(rows)
		m.MulVec(mx, x)
		m.MulVec(my, y)
		mx.Add(my)

		for i := range sum {
			if !almostEq(sum[i], mx[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RankOneAdd then MulVec equals original MulVec plus a*(v·x)*u.
func TestRankOneAddConsistentWithMulVec(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewMatrix(rows, cols)
		rng.FillNormal(m.Data, 1)
		u, v, x := NewVector(rows), NewVector(cols), NewVector(cols)
		rng.FillNormal(u, 1)
		rng.FillNormal(v, 1)
		rng.FillNormal(x, 1)
		a := rng.NormFloat64()

		before := NewVector(rows)
		m.MulVec(before, x)
		m2 := m.Clone()
		m2.RankOneAdd(a, u, v)
		after := NewVector(rows)
		m2.MulVec(after, x)

		s := a * v.Dot(x)
		for i := range after {
			if !almostEq(after[i], before[i]+s*u[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
