package tensor

// Arena32 is the float32 twin of Arena: a bump allocator for the f32
// inference hot path, with the same need-tracking growth (overflow falls
// back to the heap, Reset reallocates once at the high-water mark) and
// pooled Matrix32 headers. Not safe for concurrent use.
type Arena32 struct {
	slab []float32
	off  int
	need int

	hdrs []*Matrix32
	hu   int
}

// NewArena32 returns an arena with capacity for n float32s (0 is valid:
// the slab grows to the observed demand after the first Reset cycle).
func NewArena32(n int) *Arena32 {
	return &Arena32{slab: make([]float32, n)}
}

// Reset recycles every allocation handed out since the previous Reset.
func (a *Arena32) Reset() {
	if a.need > len(a.slab) {
		a.slab = make([]float32, a.need)
	}
	a.off, a.need, a.hu = 0, 0, 0
}

// alloc returns n float32s of unspecified content.
func (a *Arena32) alloc(n int) []float32 {
	a.need += n
	if a.off+n <= len(a.slab) {
		s := a.slab[a.off : a.off+n : a.off+n]
		a.off += n
		return s
	}
	return make([]float32, n)
}

// Vector returns an arena-backed vector of length n (contents unspecified).
func (a *Arena32) Vector(n int) Vector32 { return Vector32(a.alloc(n)) }

// Matrix returns an arena-backed rows×cols matrix (contents unspecified).
func (a *Arena32) Matrix(rows, cols int) *Matrix32 {
	var m *Matrix32
	if a.hu < len(a.hdrs) {
		m = a.hdrs[a.hu]
	} else {
		m = new(Matrix32)
		a.hdrs = append(a.hdrs, m)
	}
	a.hu++
	m.Rows, m.Cols = rows, cols
	m.Data = a.alloc(rows * cols)
	return m
}
