package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestDetectsDeliberateLeak parks a goroutine on a channel, confirms
// diff reports it against a pre-leak baseline, then releases it and
// confirms the report drains.
func TestDetectsDeliberateLeak(t *testing.T) {
	baseline := snapshot()
	stop := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-stop
	}()
	<-started

	leaked := diff(snapshot(), baseline)
	if len(leaked) == 0 {
		t.Fatal("deliberately parked goroutine not reported")
	}
	found := false
	for _, g := range leaked {
		if strings.Contains(g, "TestDetectsDeliberateLeak") {
			found = true
		}
	}
	if !found {
		t.Errorf("leak report does not name the leaking test:\n%s", strings.Join(leaked, "\n\n"))
	}

	close(stop)
	deadline := time.Now().Add(settleTimeout)
	for {
		if leaked := diff(snapshot(), baseline); len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("released goroutine still reported after %v", settleTimeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBodyStripsHeader(t *testing.T) {
	g := "goroutine 7 [chan receive]:\nmain.worker()\n\t/src/main.go:10 +0x20"
	want := "main.worker()\n\t/src/main.go:10 +0x20"
	if got := body(g); got != want {
		t.Errorf("body = %q, want %q", got, want)
	}
	if got := body("headerless"); got != "headerless" {
		t.Errorf("body without newline = %q", got)
	}
}

// TestDiffMatchesAsMultiset pins that N identical baseline workers
// cover exactly N identical current workers — the N+1th is a leak.
func TestDiffMatchesAsMultiset(t *testing.T) {
	worker := "goroutine %d [select]:\nmain.pool()\n\t/src/pool.go:5 +0x10"
	baseline := []string{
		"goroutine 1 [running]:\nmain.main()\n\t/src/main.go:1 +0x1",
		strings.Replace(worker, "%d", "2", 1),
		strings.Replace(worker, "%d", "3", 1),
	}
	now := append([]string(nil), baseline...)
	if leaked := diff(now, baseline); len(leaked) != 0 {
		t.Fatalf("identical snapshots reported leaks: %v", leaked)
	}
	now = append(now, strings.Replace(worker, "%d", "9", 1))
	leaked := diff(now, baseline)
	if len(leaked) != 1 || !strings.Contains(leaked[0], "goroutine 9") {
		t.Fatalf("extra worker not reported exactly once: %v", leaked)
	}
}

func TestIgnoredFiltersHarness(t *testing.T) {
	if !ignored("repro/internal/leakcheck.snapshot()\n\t/src/leakcheck.go:70") {
		t.Error("own frames must be ignored")
	}
	if ignored("repro/internal/leakcheck.TestDetectsDeliberateLeak.func1()\n\t/src/leakcheck_test.go:17") {
		t.Error("goroutines merely declared in this package must not be ignored")
	}
	if !ignored("testing.(*M).Run()\n\t/go/testing.go:1") {
		t.Error("testing harness must be ignored")
	}
	if ignored("repro/internal/server.(*Server).loop()\n\t/src/server.go:1") {
		t.Error("server goroutines must not be ignored")
	}
}
