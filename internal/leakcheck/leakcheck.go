// Package leakcheck is a stdlib-only goroutine-leak detector for
// TestMain. The server and cluster packages spawn goroutines on every
// code path the shutdown work in PR-4/PR-5 hardened — HTTP serving
// loops, micro-batcher drains, reshard transfer workers — so their
// test mains wrap m.Run with Main: it snapshots the goroutine set
// before the tests, lets everything the tests started settle, and
// fails the package with a stack-trace diff if a goroutine outlives
// the run. A leak here is a real bug: it means Shutdown/Close left a
// worker behind, exactly the class of hang the drain-and-handoff
// protocol exists to prevent.
package leakcheck

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// settleTimeout bounds how long Main waits for test-started goroutines
// to exit after m.Run returns. Shutdown paths in this repo are bounded
// by much shorter deadlines, so anything still alive after this is
// leaked, not slow.
const settleTimeout = 5 * time.Second

// Main runs the package's tests, then fails the binary (exit 1) if any
// goroutine started during the run is still alive once the settle
// window expires. Use from TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
func Main(m *testing.M) {
	os.Exit(run(m))
}

func run(m *testing.M) int {
	baseline := snapshot()
	code := m.Run()
	if code != 0 {
		// The tests already failed; a leak report would bury the real
		// failure.
		return code
	}
	deadline := time.Now().Add(settleTimeout)
	for {
		// Keep-alive connections from test HTTP clients park a
		// readLoop/writeLoop pair per idle conn; they are cleanup work,
		// not leaks.
		if t, ok := http.DefaultTransport.(*http.Transport); ok {
			t.CloseIdleConnections()
		}
		leaked := diff(snapshot(), baseline)
		if len(leaked) == 0 {
			return code
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) still running %v after the tests finished:\n\n%s\n",
				len(leaked), settleTimeout, strings.Join(leaked, "\n\n"))
			return 1
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// snapshot captures the stack of every user goroutine, split into one
// string per goroutine.
func snapshot() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return strings.Split(strings.TrimSpace(string(buf[:n])), "\n\n")
		}
		buf = make([]byte, 2*len(buf))
	}
}

// diff returns the goroutines in now that were not present at baseline
// and are not on the ignore list. Goroutines are matched by stack body
// (the frames below the "goroutine N [state]:" header), as a multiset:
// two identical workers at baseline cover two identical workers now.
func diff(now, baseline []string) []string {
	base := make(map[string]int)
	for _, g := range baseline {
		base[body(g)]++
	}
	var leaked []string
	for _, g := range now {
		b := body(g)
		if base[b] > 0 {
			base[b]--
			continue
		}
		if ignored(b) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

// body strips the "goroutine N [state]:" header so that matching is
// insensitive to goroutine IDs and wait states.
func body(g string) string {
	if i := strings.Index(g, "\n"); i >= 0 {
		return g[i+1:]
	}
	return g
}

// ignored filters goroutines that legitimately differ between the two
// snapshots: this package's own caller (its line numbers move between
// the before and after snapshot), the testing harness, and runtime
// plumbing that starts lazily on first use.
func ignored(body string) bool {
	for _, sub := range []string{
		"internal/leakcheck.snapshot",
		"testing.(*M).",
		"testing.runTests",
		"os/signal.",
		"runtime.ensureSigM",
		"runtime.ReadTrace",
	} {
		if strings.Contains(body, sub) {
			return true
		}
	}
	return false
}
