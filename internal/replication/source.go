package replication

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serving"
	"repro/internal/statestore"
)

const (
	// defaultWindow is the in-flight window in records: the source stops
	// sending when this many records are unacknowledged, so a stalled
	// follower applies backpressure instead of ballooning socket buffers.
	defaultWindow = 4096
	// tailBatch bounds how many records one TailFrom call drains before
	// the writer flushes.
	tailBatch = 512
	// heartbeatEvery is how often an idle source tells the follower it is
	// alive (and ships the virtual clock forward).
	heartbeatEvery = 200 * time.Millisecond
)

// Source is the primary side: it serves replication sessions over
// hijacked connections, streaming the store's tail to each subscriber.
// One Source serves any number of concurrent subscribers (the production
// topology uses one follower; re-replication after a failover briefly
// adds a second).
type Source struct {
	st     *statestore.Store
	epoch  string
	window int

	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool
}

// subscriber is one live session, tracked for status and shutdown.
type subscriber struct {
	conn  net.Conn
	addr  string
	sent  atomic.Int64
	acked atomic.Int64
	// ackNote wakes the writer when an ack opens the window; buffered so
	// the reader never blocks on it.
	ackNote chan struct{}
	done    chan struct{} // closed when the ack reader exits
}

// SubscriberStatus is one session's progress for /replicate/status.
type SubscriberStatus struct {
	Addr  string `json:"addr"`
	Sent  int64  `json:"sent"`
	Acked int64  `json:"acked"`
}

// SourceStatus is the primary-side half of /replicate/status.
type SourceStatus struct {
	Epoch       string             `json:"epoch"`
	WALSeq      int64              `json:"wal_seq"`
	SnapSeq     int64              `json:"snap_seq"`
	Subscribers []SubscriberStatus `json:"subscribers"`
}

// NewSource wraps a store for serving. The epoch is random per
// incarnation: a follower position issued under any other epoch is
// re-bootstrapped, which fences sequence-number collisions across primary
// restarts.
func NewSource(st *statestore.Store) *Source {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("replication: reading random epoch: " + err.Error())
	}
	return &Source{
		st:     st,
		epoch:  hex.EncodeToString(b[:]),
		window: defaultWindow,
		subs:   make(map[*subscriber]struct{}),
	}
}

// Epoch returns the source's incarnation fence.
func (s *Source) Epoch() string { return s.epoch }

// Status snapshots the source's progress and its live subscribers.
func (s *Source) Status() SourceStatus {
	st := SourceStatus{
		Epoch:   s.epoch,
		WALSeq:  s.st.WALSeq(),
		SnapSeq: s.st.SnapSeq(),
	}
	s.mu.Lock()
	for sub := range s.subs {
		st.Subscribers = append(st.Subscribers, SubscriberStatus{
			Addr: sub.addr, Sent: sub.sent.Load(), Acked: sub.acked.Load(),
		})
	}
	s.mu.Unlock()
	return st
}

// Close terminates every live session (their handler goroutines return)
// and refuses new ones.
func (s *Source) Close() {
	s.mu.Lock()
	s.closed = true
	subs := make([]*subscriber, 0, len(s.subs))
	for sub := range s.subs {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	for _, sub := range subs {
		sub.conn.Close()
	}
}

func (s *Source) register(sub *subscriber) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.subs[sub] = struct{}{}
	return true
}

func (s *Source) unregister(sub *subscriber) {
	s.mu.Lock()
	delete(s.subs, sub)
	s.mu.Unlock()
}

// Serve runs one replication session on a hijacked connection until the
// peer disappears or the source closes. It always closes conn before
// returning.
func (s *Source) Serve(conn net.Conn, rw *bufio.ReadWriter) error {
	defer conn.Close()
	sub := &subscriber{
		conn:    conn,
		addr:    conn.RemoteAddr().String(),
		ackNote: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	if !s.register(sub) {
		return errors.New("replication: source closed")
	}
	defer s.unregister(sub)

	typ, payload, err := readFrame(rw.Reader, nil)
	if err != nil {
		return err
	}
	if typ != fSubscribe {
		return errors.New("replication: expected subscribe frame")
	}
	var req subscribeReq
	if err := json.Unmarshal(payload, &req); err != nil {
		return err
	}

	// From here the reader goroutine owns rw.Reader (acks only) and this
	// goroutine owns the writer. The reader closing done (peer gone) is
	// the session's cancellation signal.
	go s.readAcks(rw.Reader, sub)

	err = s.stream(rw.Writer, sub, req)
	// Unblock the reader (it is parked in a Read) and wait for it so the
	// handler goroutine owns the full session lifetime.
	conn.Close()
	<-sub.done
	return err
}

// stream writes the session: an optional bootstrap, then the tail. A tail
// position that falls off the ring mid-session (the follower stalled for
// longer than the buffer retains) restarts with a fresh bootstrap on the
// same connection.
func (s *Source) stream(w *bufio.Writer, sub *subscriber, req subscribeReq) error {
	fw := &frameWriter{w: w}
	next := req.Seq
	if req.Epoch != s.epoch {
		// Positions from another incarnation (or none) are meaningless
		// here; force a bootstrap below by making the probe fail.
		next = -1
	}
	hb := time.NewTimer(heartbeatEvery)
	defer hb.Stop()
	started := false
	for {
		var recs []statestore.WALRecord
		var wake <-chan struct{}
		var err error
		if next >= 0 {
			recs, wake, err = s.st.TailFrom(next, tailBatch)
		} else {
			err = statestore.ErrTailTruncated
		}
		if err != nil {
			if next, err = s.bootstrap(fw, req.Arcs); err != nil {
				return err
			}
			started = true
			continue
		}
		if !started {
			if err := fw.writeJSON(fTailStart, hello{Epoch: s.epoch}); err != nil {
				return err
			}
			started = true
		}
		if len(recs) == 0 {
			if err := w.Flush(); err != nil {
				return err
			}
			if !hb.Stop() {
				select {
				case <-hb.C:
				default:
				}
			}
			hb.Reset(heartbeatEvery)
			select {
			case <-wake:
			case <-hb.C:
				if err := fw.writeHeartbeat(next-1, s.st.Clock()); err != nil {
					return err
				}
				if err := w.Flush(); err != nil {
					return err
				}
			case <-sub.done:
				return errors.New("replication: subscriber gone")
			}
			continue
		}
		for _, rec := range recs {
			if len(req.Arcs) > 0 && rec.Key != "" && !arcsContain(req.Arcs, serving.KeyHash(rec.Key)) {
				continue
			}
			if err := fw.writeRecord(rec.Seq, rec.Op, rec.Key, rec.Val); err != nil {
				return err
			}
		}
		next = recs[len(recs)-1].Seq + 1
		sub.sent.Store(next - 1)
		if err := w.Flush(); err != nil {
			return err
		}
		if err := s.waitWindow(sub, next-1); err != nil {
			return err
		}
	}
}

// waitWindow blocks while the in-flight window is full. The reader's ack
// notifications (or its exit) wake it.
func (s *Source) waitWindow(sub *subscriber, sent int64) error {
	for sent-sub.acked.Load() >= int64(s.window) {
		select {
		case <-sub.ackNote:
		case <-sub.done:
			return errors.New("replication: subscriber gone")
		}
	}
	return nil
}

// bootstrap streams the full (arc-filtered) state through the Export seam
// and names the tail position that follows it. Records committed while
// the export runs may be both in the export and re-delivered by the tail;
// replay is idempotent (absolute values), so the follower converges
// either way.
func (s *Source) bootstrap(fw *frameWriter, arcs []Arc) (next int64, err error) {
	from := s.st.WALSeq() + 1
	if err := fw.writeJSON(fBootStart, hello{Epoch: s.epoch}); err != nil {
		return 0, err
	}
	match := func(string) bool { return true }
	if len(arcs) > 0 {
		match = func(key string) bool { return arcsContain(arcs, serving.KeyHash(key)) }
	}
	err = s.st.Export(match, func(key string, stored []byte) error {
		return fw.writeBootEntry(key, stored)
	})
	if err != nil {
		return 0, err
	}
	if err := fw.writeSeq(fBootEnd, from); err != nil {
		return 0, err
	}
	return from, fw.w.Flush()
}

// readAcks drains follower frames, publishing ack positions. Any read
// error (including the peer closing) ends the session via done.
func (s *Source) readAcks(r *bufio.Reader, sub *subscriber) {
	defer close(sub.done)
	var buf []byte
	for {
		typ, payload, err := readFrame(r, buf)
		if err != nil {
			return
		}
		buf = payload[:0]
		if typ != fAck {
			return
		}
		seq, err := parseSeq(payload)
		if err != nil {
			return
		}
		if seq > sub.acked.Load() {
			sub.acked.Store(seq)
		}
		select {
		case sub.ackNote <- struct{}{}:
		default:
		}
	}
}
