// Package replication ships a primary statestore's committed records to a
// follower over one persistent connection, so a router can promote the
// follower when the primary dies without losing acknowledged state.
//
// The primary side (Source) tails the statestore's in-memory subscription
// ring (statestore.TailFrom): puts, deletes, and snapshot markers stream
// in commit order with stable sequence numbers, inside a bounded in-flight
// window opened by the follower's acks. A follower that joins late — or
// falls further behind than the ring retains — is bootstrapped through the
// Export seam (tagged stored bytes, moved verbatim) and then tails from
// the position the bootstrap names. The follower side (Follower) owns a
// statestore of its own, applies puts through the Import seam so entries
// land byte-identical (the additive state digest then proves equivalence
// without quiescing anyone), and reconnects with backoff when the link
// drops.
//
// Transport: the follower POSTs /replicate/subscribe with an Upgrade
// header; the server hijacks the connection and both sides switch to
// length-prefixed binary frames — follower→primary carries the subscribe
// request and acks, primary→follower everything else. Epochs (random per
// Source incarnation) fence stale positions across primary restarts: a
// subscriber naming an unknown epoch is re-bootstrapped, never tailed.
package replication

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// UpgradeProtocol names the connection upgrade in the HTTP handshake.
const UpgradeProtocol = "pp-replicate"

// Frame types. Each frame is [1B type][4B little-endian payload length]
// [payload][4B little-endian CRC-32 (IEEE) over type+length+payload].
// The trailer lets either side detect a flipped bit on the wire instead
// of applying a corrupted record; a mismatch surfaces as ErrFrameCorrupt
// and the follower drops the connection and re-bootstraps.
const (
	// fSubscribe (follower→primary) opens a session: a JSON subscribe
	// payload naming the last seen epoch, the first wanted sequence
	// number, and an optional arc filter.
	fSubscribe byte = 1
	// fTailStart (primary→follower) accepts the requested position;
	// records follow from it. JSON hello payload.
	fTailStart byte = 2
	// fBootStart (primary→follower) begins a snapshot bootstrap; the
	// follower must clear its state and ingest the entries that follow.
	// JSON hello payload.
	fBootStart byte = 3
	// fBootEntry is one bootstrapped state: [4B keyLen][key][stored].
	fBootEntry byte = 4
	// fBootEnd closes a bootstrap: [8B seq] — the first sequence number
	// the tail will deliver next (the bootstrap covers everything before
	// it).
	fBootEnd byte = 5
	// fRecord is one committed record: [8B seq][1B op][4B keyLen][key][val].
	fRecord byte = 6
	// fHeartbeat (primary→follower) is sent when the tail is idle:
	// [8B seq][8B clock] — the primary's newest sequence number and
	// virtual clock.
	fHeartbeat byte = 7
	// fAck (follower→primary) reports the highest applied sequence
	// number: [8B seq]. Opens the primary's in-flight window.
	fAck byte = 8
)

// maxFramePayload bounds a frame so a corrupt length prefix cannot ask
// either side to allocate unbounded memory. States are a few hundred
// bytes; 64 MiB is generous for any future batch framing.
const maxFramePayload = 64 << 20

var errFrameTooLarge = errors.New("replication: frame exceeds size limit")

// ErrFrameCorrupt reports a frame whose CRC trailer does not match its
// bytes. The connection cannot be trusted past this point — the reader's
// position within the stream may be wrong — so the follower closes it and
// forces a fresh bootstrap.
var ErrFrameCorrupt = errors.New("replication: frame CRC mismatch")

var crcTable = crc32.IEEETable

// Arc is a closed interval [Lo, Hi] of the 32-bit key-hash ring, matching
// the server's transfer arcs (wrapping ranges are split by the caller).
type Arc struct {
	Lo uint32 `json:"lo"`
	Hi uint32 `json:"hi"`
}

func arcsContain(arcs []Arc, pos uint32) bool {
	for _, a := range arcs {
		if pos >= a.Lo && pos <= a.Hi {
			return true
		}
	}
	return false
}

// subscribeReq is the fSubscribe payload. Seq is the first sequence
// number wanted (last applied + 1); Epoch the source epoch it was
// assigned under ("" forces a bootstrap). Empty Arcs subscribes to every
// key the primary owns.
type subscribeReq struct {
	Epoch string `json:"epoch"`
	Seq   int64  `json:"seq"`
	Arcs  []Arc  `json:"arcs,omitempty"`
}

// hello is the fTailStart / fBootStart payload.
type hello struct {
	Epoch string `json:"epoch"`
}

// frameWriter frames outbound messages onto one buffered writer, keeping
// a running CRC from the frame header through the payload so the trailer
// costs no extra pass over the bytes.
type frameWriter struct {
	w       *bufio.Writer
	scratch []byte
	crc     uint32
}

func (fw *frameWriter) frame(typ byte, payloadLen int) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(payloadLen))
	fw.crc = crc32.Update(0, crcTable, hdr[:])
	_, err := fw.w.Write(hdr[:])
	return err
}

// body writes payload bytes, folding them into the frame's CRC.
func (fw *frameWriter) body(p []byte) error {
	fw.crc = crc32.Update(fw.crc, crcTable, p)
	_, err := fw.w.Write(p)
	return err
}

// trailer closes the frame with the accumulated CRC.
func (fw *frameWriter) trailer() error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], fw.crc)
	_, err := fw.w.Write(b[:])
	return err
}

func (fw *frameWriter) writeJSON(typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if err := fw.frame(typ, len(payload)); err != nil {
		return err
	}
	if err := fw.body(payload); err != nil {
		return err
	}
	return fw.trailer()
}

// writeRecord frames one tail record.
func (fw *frameWriter) writeRecord(seq int64, op byte, key string, val []byte) error {
	if err := fw.frame(fRecord, 8+1+4+len(key)+len(val)); err != nil {
		return err
	}
	b := fw.scratch[:0]
	b = binary.LittleEndian.AppendUint64(b, uint64(seq))
	b = append(b, op)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(key)))
	b = append(b, key...)
	fw.scratch = b
	if err := fw.body(b); err != nil {
		return err
	}
	if err := fw.body(val); err != nil {
		return err
	}
	return fw.trailer()
}

// writeBootEntry frames one bootstrapped state.
func (fw *frameWriter) writeBootEntry(key string, stored []byte) error {
	if err := fw.frame(fBootEntry, 4+len(key)+len(stored)); err != nil {
		return err
	}
	b := fw.scratch[:0]
	b = binary.LittleEndian.AppendUint32(b, uint32(len(key)))
	b = append(b, key...)
	fw.scratch = b
	if err := fw.body(b); err != nil {
		return err
	}
	if err := fw.body(stored); err != nil {
		return err
	}
	return fw.trailer()
}

// writeSeq frames a bare-sequence message (fBootEnd, fAck).
func (fw *frameWriter) writeSeq(typ byte, seq int64) error {
	if err := fw.frame(typ, 8); err != nil {
		return err
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seq))
	if err := fw.body(b[:]); err != nil {
		return err
	}
	return fw.trailer()
}

// writeHeartbeat frames an idle heartbeat.
func (fw *frameWriter) writeHeartbeat(seq, clock int64) error {
	if err := fw.frame(fHeartbeat, 16); err != nil {
		return err
	}
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(seq))
	binary.LittleEndian.PutUint64(b[8:], uint64(clock))
	if err := fw.body(b[:]); err != nil {
		return err
	}
	return fw.trailer()
}

// readFrame reads one frame, reusing buf when it is large enough, and
// verifies the CRC trailer before handing the payload back.
func readFrame(r *bufio.Reader, buf []byte) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFramePayload {
		return 0, nil, errFrameTooLarge
	}
	if int(n) > cap(buf) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	var tb [4]byte
	if _, err := io.ReadFull(r, tb[:]); err != nil {
		return 0, nil, err
	}
	crc := crc32.Update(0, crcTable, hdr[:])
	crc = crc32.Update(crc, crcTable, buf)
	if binary.LittleEndian.Uint32(tb[:]) != crc {
		return 0, nil, fmt.Errorf("%w (type %d, %d bytes)", ErrFrameCorrupt, hdr[0], n)
	}
	return hdr[0], buf, nil
}

// parseRecord decodes an fRecord payload. key and val alias the payload
// buffer; callers copy what they retain.
func parseRecordFrame(p []byte) (seq int64, op byte, key string, val []byte, err error) {
	if len(p) < 13 {
		return 0, 0, "", nil, fmt.Errorf("replication: short record frame (%d bytes)", len(p))
	}
	seq = int64(binary.LittleEndian.Uint64(p))
	op = p[8]
	kl := int(binary.LittleEndian.Uint32(p[9:]))
	if 13+kl > len(p) {
		return 0, 0, "", nil, fmt.Errorf("replication: record key length %d overruns frame", kl)
	}
	return seq, op, string(p[13 : 13+kl]), p[13+kl:], nil
}

// parseBootEntry decodes an fBootEntry payload; key and stored alias it.
func parseBootEntry(p []byte) (key string, stored []byte, err error) {
	if len(p) < 4 {
		return "", nil, fmt.Errorf("replication: short bootstrap entry (%d bytes)", len(p))
	}
	kl := int(binary.LittleEndian.Uint32(p))
	if 4+kl > len(p) {
		return "", nil, fmt.Errorf("replication: bootstrap key length %d overruns frame", kl)
	}
	return string(p[4 : 4+kl]), p[4+kl:], nil
}

func parseSeq(p []byte) (int64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("replication: bad sequence frame length %d", len(p))
	}
	return int64(binary.LittleEndian.Uint64(p)), nil
}

func parseHeartbeat(p []byte) (seq, clock int64, err error) {
	if len(p) != 16 {
		return 0, 0, fmt.Errorf("replication: bad heartbeat frame length %d", len(p))
	}
	return int64(binary.LittleEndian.Uint64(p[:8])), int64(binary.LittleEndian.Uint64(p[8:])), nil
}
