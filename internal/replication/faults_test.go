package replication_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/replication"
	"repro/internal/statestore"
)

// TestFollowerSurvivesCorruptFrame flips a bit on the follower's wire via
// the fault layer: the frame CRC must catch it, the follower must drop the
// connection and clear its epoch (forcing a fresh bootstrap — the stream
// position past a corrupt frame cannot be trusted), and the session after
// that must converge byte-identically.
func TestFollowerSurvivesCorruptFrame(t *testing.T) {
	defer faults.Disarm()
	p := startPrimary(t, statestore.Options{})
	defer p.stop(t)
	for i := 0; i < 30; i++ {
		p.ss.Put(fmt.Sprintf("h:%d", i), wireState(8, uint64(i)+1, int64(1000+i)))
	}

	fss, err := statestore.Open(statestore.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer fss.Close()
	f := replication.NewFollower(fss, p.ts.URL)
	f.Start()
	defer f.Stop()
	waitCaughtUp(t, f, p)
	bootstrapsBefore := f.Status().Bootstraps

	// One corrupted read on this follower's link. The reader is idle
	// between frames, so the flipped bit lands on the next frame's bytes
	// and the CRC trailer must reject it.
	if err := faults.Arm(&faults.Plan{Seed: 3, Rules: []faults.Rule{
		{Point: "repl.conn.read", Match: p.ts.URL, Action: faults.ActCorrupt, Count: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p.ss.Put(fmt.Sprintf("h:%d", 100+i), wireState(8, uint64(i)+51, int64(2000+i)))
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if f.Status().CorruptFrames >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := f.Status()
	if st.CorruptFrames == 0 {
		t.Fatalf("corrupt frame never detected: %+v (counters %v)", st, faults.Counters())
	}
	faults.Disarm()

	waitCaughtUp(t, f, p)
	assertSameStates(t, p.ss, fss)
	if got := f.Status(); got.Bootstraps <= bootstrapsBefore {
		t.Fatalf("follower resumed a tainted stream without re-bootstrapping: %+v", got)
	}
}
