package replication

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/statestore"
)

const (
	// ackEvery is how many applied records pass between acks (plus one at
	// every bootstrap end and heartbeat, so the window reopens promptly
	// even on trickle traffic).
	ackEvery = 256
	// dialTimeout bounds one connection attempt.
	dialTimeout = 2 * time.Second
	// backoffMin/backoffMax bound the reconnect backoff. The cap stays
	// low because a promotion may be waiting on the run loop to notice it.
	backoffMin = 25 * time.Millisecond
	backoffMax = 500 * time.Millisecond
)

// Follower tails a primary into a local store. It reconnects with backoff
// until promoted (or stopped), re-bootstrapping whenever the primary no
// longer recognises its position. All puts land through the Import seam,
// so the follower's entries are byte-identical to the primary's and the
// additive digest can prove convergence.
type Follower struct {
	st *statestore.Store

	mu            sync.Mutex
	primary       string
	epoch         string
	lastSeq       int64 // highest applied sequence number under epoch
	conn          net.Conn
	connected     bool
	promoted      bool
	lastErr       string
	bootstraps    int64
	reconnects    int64
	corruptFrames int64

	promoteCh   chan struct{}
	stopCh      chan struct{}
	startOnce   sync.Once
	promoteOnce sync.Once
	stopOnce    sync.Once
	wg          sync.WaitGroup
}

// FollowerStatus is the follower half of /replicate/status. LastSeq vs
// the primary's WALSeq (from its /statz) is the replication lag.
type FollowerStatus struct {
	Primary    string `json:"primary"`
	Connected  bool   `json:"connected"`
	Promoted   bool   `json:"promoted"`
	Epoch      string `json:"epoch"`
	LastSeq    int64  `json:"last_seq"`
	LastErr    string `json:"last_err,omitempty"`
	Bootstraps int64  `json:"bootstraps"`
	Reconnects int64  `json:"reconnects"`
	// CorruptFrames counts frames rejected for a CRC mismatch or a
	// mid-frame cut; each one dropped the connection and cleared the
	// epoch so the next session re-bootstraps from a trusted snapshot.
	CorruptFrames int64 `json:"corrupt_frames,omitempty"`
}

// NewFollower prepares a follower applying into st. primary may be ""
// (a standby: it idles until Retarget names one). Call Start to begin.
func NewFollower(st *statestore.Store, primary string) *Follower {
	return &Follower{
		st:        st,
		primary:   strings.TrimRight(primary, "/"),
		promoteCh: make(chan struct{}),
		stopCh:    make(chan struct{}),
	}
}

// Start launches the replication loop. Safe to call once; Stop or
// Promote ends it.
func (f *Follower) Start() {
	f.startOnce.Do(func() {
		f.wg.Add(1)
		go f.run()
	})
}

// Status snapshots the follower's progress.
func (f *Follower) Status() FollowerStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FollowerStatus{
		Primary: f.primary, Connected: f.connected, Promoted: f.promoted,
		Epoch: f.epoch, LastSeq: f.lastSeq, LastErr: f.lastErr,
		Bootstraps: f.bootstraps, Reconnects: f.reconnects,
		CorruptFrames: f.corruptFrames,
	}
}

// Retarget points the follower at a new primary (re-replication after a
// failover: the fresh follower tails the promoted replica). The current
// session is dropped; the next connect bootstraps because the new
// primary's epoch cannot match.
func (f *Follower) Retarget(primary string) {
	f.mu.Lock()
	f.primary = strings.TrimRight(primary, "/")
	if f.conn != nil {
		f.conn.Close()
	}
	f.mu.Unlock()
}

// Promote permanently stops replication so the local store can take
// writes as a primary. It returns the last applied sequence number after
// the apply loop has fully exited — once Promote returns, no replicated
// record will land anymore.
func (f *Follower) Promote() int64 {
	f.mu.Lock()
	f.promoted = true
	if f.conn != nil {
		f.conn.Close()
	}
	f.mu.Unlock()
	f.promoteOnce.Do(func() { close(f.promoteCh) })
	f.wg.Wait()
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastSeq
}

// Stop ends replication without promoting (shutdown path).
func (f *Follower) Stop() {
	f.mu.Lock()
	if f.conn != nil {
		f.conn.Close()
	}
	f.mu.Unlock()
	f.stopOnce.Do(func() { close(f.stopCh) })
	f.wg.Wait()
}

func (f *Follower) stopped() bool {
	select {
	case <-f.stopCh:
		return true
	case <-f.promoteCh:
		return true
	default:
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.promoted
	}
}

func (f *Follower) noteErr(err error) {
	f.mu.Lock()
	f.lastErr = err.Error()
	f.mu.Unlock()
}

// run is the reconnect loop: dial, subscribe, consume until the link (or
// the primary) dies, back off, repeat.
func (f *Follower) run() {
	defer f.wg.Done()
	backoff := backoffMin
	for !f.stopped() {
		f.mu.Lock()
		primary := f.primary
		epoch := f.epoch
		seq := f.lastSeq
		f.mu.Unlock()
		if primary == "" {
			// Standby without a primary yet: wait for Retarget.
			if f.sleep(backoffMax) {
				return
			}
			continue
		}
		conn, r, w, err := dialSubscribe(primary, epoch, seq+1)
		if err != nil {
			f.noteErr(err)
			if f.sleep(backoff) {
				return
			}
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
			continue
		}
		f.mu.Lock()
		if f.promoted || f.isStopped() {
			f.mu.Unlock()
			conn.Close()
			return
		}
		f.conn = conn
		f.connected = true
		f.reconnects++
		f.mu.Unlock()

		applied, err := f.consume(r, w)
		if err != nil {
			f.noteErr(err)
		}

		f.mu.Lock()
		f.conn = nil
		f.connected = false
		if errors.Is(err, ErrFrameCorrupt) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, errFrameTooLarge) {
			// A corrupt or torn frame means the stream position cannot be
			// trusted: resuming the tail at lastSeq+1 could re-apply or skip
			// records. Dropping the epoch makes the next subscribe look
			// stale, which forces the primary to re-bootstrap us from a
			// consistent snapshot.
			f.corruptFrames++
			f.epoch = ""
		}
		f.mu.Unlock()
		conn.Close()
		if applied > 0 {
			backoff = backoffMin
		}
	}
}

func (f *Follower) isStopped() bool {
	select {
	case <-f.stopCh:
		return true
	default:
		return false
	}
}

// sleep waits d or until stop/promote; true means the loop must exit.
func (f *Follower) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-f.stopCh:
		return true
	case <-f.promoteCh:
		return true
	case <-t.C:
		return false
	}
}

// consume applies one session's frames. It returns how many records it
// applied (any progress resets the reconnect backoff).
func (f *Follower) consume(r *bufio.Reader, w *bufio.Writer) (applied int64, err error) {
	fw := &frameWriter{w: w}
	ack := func(seq int64) error {
		if err := fw.writeSeq(fAck, seq); err != nil {
			return err
		}
		return w.Flush()
	}
	var buf []byte
	sinceAck := 0
	for {
		typ, payload, ferr := readFrame(r, buf)
		if ferr != nil {
			return applied, ferr
		}
		buf = payload
		switch typ {
		case fTailStart, fBootStart:
			var h hello
			if err := json.Unmarshal(payload, &h); err != nil {
				return applied, err
			}
			f.mu.Lock()
			f.epoch = h.Epoch
			if typ == fBootStart {
				f.bootstraps++
			}
			f.mu.Unlock()
			if typ == fBootStart {
				// The bootstrap replaces the whole local state: deletions
				// that happened on the primary while we were away must not
				// survive as ghosts here.
				for _, k := range f.st.Keys() {
					f.st.Delete(k)
				}
			}
		case fBootEntry:
			key, stored, perr := parseBootEntry(payload)
			if perr != nil {
				return applied, perr
			}
			f.st.Import(key, stored)
		case fBootEnd:
			from, perr := parseSeq(payload)
			if perr != nil {
				return applied, perr
			}
			f.mu.Lock()
			f.lastSeq = from - 1
			f.mu.Unlock()
			applied++
			if err := ack(from - 1); err != nil {
				return applied, err
			}
			sinceAck = 0
		case fRecord:
			seq, op, key, val, perr := parseRecordFrame(payload)
			if perr != nil {
				return applied, perr
			}
			f.apply(op, key, val)
			f.mu.Lock()
			f.lastSeq = seq
			f.mu.Unlock()
			applied++
			if sinceAck++; sinceAck >= ackEvery {
				if err := ack(seq); err != nil {
					return applied, err
				}
				sinceAck = 0
			}
		case fHeartbeat:
			_, clock, perr := parseHeartbeat(payload)
			if perr != nil {
				return applied, perr
			}
			f.st.SeedClock(clock)
			f.mu.Lock()
			last := f.lastSeq
			f.mu.Unlock()
			if err := ack(last); err != nil {
				return applied, err
			}
			sinceAck = 0
		default:
			return applied, fmt.Errorf("replication: unexpected frame type %d", typ)
		}
	}
}

// apply installs one replicated record. Puts go through Import (verbatim
// tagged bytes — byte-identical to the primary's entry); a snapshot
// marker triggers a local compaction so the follower's log does not grow
// unbounded relative to its primary's.
func (f *Follower) apply(op byte, key string, val []byte) {
	switch op {
	case statestore.RecPut:
		f.st.Import(key, val)
	case statestore.RecDelete:
		f.st.Delete(key)
	case statestore.RecClock:
		if len(val) == 8 {
			f.st.SeedClock(int64(binary.LittleEndian.Uint64(val)))
		}
	case statestore.RecSnapshot:
		if len(val) == 8 {
			f.st.SeedClock(int64(binary.LittleEndian.Uint64(val)))
		}
		if err := f.st.Snapshot(); err != nil {
			f.noteErr(err)
		}
	}
}

// dialSubscribe opens the replication link: a raw TCP connection, an
// HTTP/1.1 Upgrade handshake on /replicate/subscribe, then the subscribe
// frame. The returned reader may hold bytes the server sent immediately
// after the 101 response.
func dialSubscribe(primary, epoch string, seq int64) (net.Conn, *bufio.Reader, *bufio.Writer, error) {
	u, err := url.Parse(primary)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("replication: parsing primary URL %q: %w", primary, err)
	}
	if u.Scheme != "http" || u.Host == "" {
		return nil, nil, nil, fmt.Errorf("replication: primary URL %q must be http://host:port", primary)
	}
	conn, err := net.DialTimeout("tcp", u.Host, dialTimeout)
	if err != nil {
		return nil, nil, nil, err
	}
	// The fault layer sits under the buffered reader/writer so injected
	// corruption and drops hit the raw framed bytes, exactly like a bad
	// link would.
	conn = faults.WrapConn("repl.conn", primary, conn)
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	fmt.Fprintf(w, "POST /replicate/subscribe HTTP/1.1\r\nHost: %s\r\nContent-Length: 0\r\nConnection: Upgrade\r\nUpgrade: %s\r\n\r\n",
		u.Host, UpgradeProtocol)
	if err := w.Flush(); err != nil {
		conn.Close()
		return nil, nil, nil, err
	}
	status, err := r.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, nil, nil, err
	}
	if !strings.Contains(status, " 101 ") {
		conn.Close()
		return nil, nil, nil, fmt.Errorf("replication: subscribe rejected: %s", strings.TrimSpace(status))
	}
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			conn.Close()
			return nil, nil, nil, err
		}
		if line == "\r\n" || line == "\n" {
			break
		}
	}
	fw := &frameWriter{w: w}
	if err := fw.writeJSON(fSubscribe, subscribeReq{Epoch: epoch, Seq: seq}); err != nil {
		conn.Close()
		return nil, nil, nil, err
	}
	if err := w.Flush(); err != nil {
		conn.Close()
		return nil, nil, nil, err
	}
	return conn, r, w, nil
}
