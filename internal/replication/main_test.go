package replication_test

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if any test leaks a goroutine: every source
// session, ack reader and follower loop must be gone once the stores shut
// down.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
