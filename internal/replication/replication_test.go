// Tests live in an external package so they can mount the real HTTP
// handler (internal/server imports replication; importing it back here
// would cycle). Everything below drives the production path: POST
// /replicate/subscribe, hijack, upgrade, frames.
package replication_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/replication"
	"repro/internal/server"
	"repro/internal/serving"
	"repro/internal/statestore"
	"repro/internal/synth"
	"repro/internal/tensor"
)

func testModel(t *testing.T) *core.Model {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.HiddenDim = 8
	cfg.Seed = 7
	return core.New(synth.MobileTabSchema(), cfg)
}

func wireState(dim int, seed uint64, ts int64) []byte {
	rng := tensor.NewRNG(seed)
	h := tensor.NewVector(dim)
	rng.FillUniform(h, -1, 1)
	return serving.EncodeHidden(h, ts)
}

// primary is one replication source mounted on the real server handler.
type primary struct {
	ss *statestore.Store
	ts *httptest.Server
	sv *server.Server
}

func startPrimary(t *testing.T, opts statestore.Options) *primary {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	ss, err := statestore.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	sv := server.New(server.Options{
		Model: testModel(t), Store: ss, State: ss, Threshold: 0.5,
		Lanes: 1, MaxBatch: 4, MaxWait: time.Millisecond,
	})
	return &primary{ss: ss, ts: httptest.NewServer(sv.Handler()), sv: sv}
}

func (p *primary) stop(t *testing.T) {
	t.Helper()
	p.ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.sv.Shutdown(ctx); err != nil {
		t.Fatalf("primary shutdown: %v", err)
	}
	if err := p.ss.Close(); err != nil {
		t.Fatal(err)
	}
}

// exportAll snapshots a store's full stored-representation contents.
func exportAll(t *testing.T, s *statestore.Store) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	err := s.Export(func(string) bool { return true }, func(key string, stored []byte) error {
		out[key] = append([]byte(nil), stored...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// waitCaughtUp polls until the follower's applied position reaches the
// primary's newest committed record.
func waitCaughtUp(t *testing.T, f *replication.Follower, p *primary) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := f.Status(); st.LastSeq >= p.ss.WALSeq() && st.Connected {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower never caught up: follower %+v, primary wal-seq %d",
		f.Status(), p.ss.WALSeq())
}

// sameStates reports whether two stores hold byte-identical entries.
func sameStates(t *testing.T, p, f *statestore.Store) bool {
	t.Helper()
	want, got := exportAll(t, p), exportAll(t, f)
	if len(want) != len(got) {
		return false
	}
	for k, v := range want {
		if g, ok := got[k]; !ok || !bytes.Equal(v, g) {
			return false
		}
	}
	return true
}

// waitSameStates polls until the follower's contents equal the (quiesced)
// primary's — the convergence wait for tests whose follower position is
// not monotonic across the scenario (retargeting resets it).
func waitSameStates(t *testing.T, p, f *statestore.Store) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if sameStates(t, p, f) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("follower never converged to the primary's states")
}

// assertSameStates requires the two stores to hold byte-identical entries —
// the property the Import-seam replication path guarantees.
func assertSameStates(t *testing.T, p *statestore.Store, f *statestore.Store) {
	t.Helper()
	want, got := exportAll(t, p), exportAll(t, f)
	if len(want) != len(got) {
		t.Fatalf("follower holds %d states, primary %d", len(got), len(want))
	}
	for k, v := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("state %s missing from the follower", k)
		}
		if !bytes.Equal(v, g) {
			t.Fatalf("state %s not byte-identical on the follower", k)
		}
	}
}

// TestFollowerBootstrapThenTail is the basic session shape: a late joiner
// bootstraps the existing states, then tails live puts and deletes to
// byte-identical convergence.
func TestFollowerBootstrapThenTail(t *testing.T) {
	p := startPrimary(t, statestore.Options{})
	defer p.stop(t)
	for i := 0; i < 50; i++ {
		p.ss.Put(fmt.Sprintf("h:%d", i), wireState(8, uint64(i)+1, int64(1000+i)))
	}

	fss, err := statestore.Open(statestore.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer fss.Close()
	f := replication.NewFollower(fss, p.ts.URL)
	f.Start()
	defer f.Stop()
	waitCaughtUp(t, f, p)
	if st := f.Status(); st.Bootstraps == 0 {
		t.Fatal("late joiner did not bootstrap")
	}
	assertSameStates(t, p.ss, fss)

	// Live tail: new puts, overwrites, and deletes all flow through.
	for i := 0; i < 30; i++ {
		p.ss.Put(fmt.Sprintf("h:%d", 100+i), wireState(8, uint64(i)+77, int64(2000+i)))
	}
	p.ss.Put("h:0", wireState(8, 999, 3000))
	p.ss.Delete("h:1")
	waitCaughtUp(t, f, p)
	assertSameStates(t, p.ss, fss)
}

// TestFollowerEveryJoinBoundary is the replication analogue of the WAL
// crash test TestCrashRecoveryEveryTruncationBoundary: a follower joining
// at EVERY position of the primary's write sequence — before the first
// record, mid-stream, straddling snapshot rotations, after a tail-ring
// overflow — must converge to byte-identical state. The tiny tail buffer
// forces some joins through the bootstrap path and lets others tail
// directly, and SnapshotEvery=8 rotates the WAL repeatedly mid-session.
func TestFollowerEveryJoinBoundary(t *testing.T) {
	const n = 24
	for join := 0; join <= n; join++ {
		t.Run(fmt.Sprintf("join=%d", join), func(t *testing.T) {
			p := startPrimary(t, statestore.Options{
				SnapshotEvery: 8, TailBuffer: 4,
			})
			defer p.stop(t)
			put := func(i int) {
				p.ss.Put(fmt.Sprintf("h:%d", i%10), wireState(8, uint64(i)+1, int64(1000+i)))
			}
			for i := 0; i < join; i++ {
				put(i)
			}

			fss, err := statestore.Open(statestore.Options{Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			defer fss.Close()
			f := replication.NewFollower(fss, p.ts.URL)
			f.Start()
			defer f.Stop()

			for i := join; i < n; i++ {
				put(i)
			}
			p.ss.Delete("h:3")
			waitCaughtUp(t, f, p)
			assertSameStates(t, p.ss, fss)
		})
	}
}

// TestFollowerRetargetAcrossPrimaries is the re-replication path: a
// follower whose primary is replaced (new incarnation, new epoch) must
// detect the epoch change, re-bootstrap, and drop states the old primary
// had that the new one does not — no ghosts.
func TestFollowerRetargetAcrossPrimaries(t *testing.T) {
	p1 := startPrimary(t, statestore.Options{})
	for i := 0; i < 20; i++ {
		p1.ss.Put(fmt.Sprintf("h:%d", i), wireState(8, uint64(i)+1, int64(1000+i)))
	}

	fss, err := statestore.Open(statestore.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer fss.Close()
	f := replication.NewFollower(fss, p1.ts.URL)
	f.Start()
	defer f.Stop()
	waitCaughtUp(t, f, p1)

	// The new primary holds a DIFFERENT keyset: h:100.. only.
	p2 := startPrimary(t, statestore.Options{})
	defer p2.stop(t)
	for i := 0; i < 10; i++ {
		p2.ss.Put(fmt.Sprintf("h:%d", 100+i), wireState(8, uint64(i)+50, int64(5000+i)))
	}
	p1.stop(t)
	f.Retarget(p2.ts.URL)
	waitSameStates(t, p2.ss, fss)
	assertSameStates(t, p2.ss, fss)
	if st := f.Status(); st.Bootstraps < 2 {
		t.Fatalf("epoch change must force a re-bootstrap (bootstraps=%d)", st.Bootstraps)
	}
}

// TestPromoteStopsReplication is the failover cutover contract: once
// Promote returns, no replicated record lands, so writes the new ring
// routes at the promoted follower cannot interleave with the dead
// primary's tail.
func TestPromoteStopsReplication(t *testing.T) {
	p := startPrimary(t, statestore.Options{})
	defer p.stop(t)
	for i := 0; i < 10; i++ {
		p.ss.Put(fmt.Sprintf("h:%d", i), wireState(8, uint64(i)+1, int64(1000+i)))
	}

	fss, err := statestore.Open(statestore.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer fss.Close()
	f := replication.NewFollower(fss, p.ts.URL)
	f.Start()
	waitCaughtUp(t, f, p)

	last := f.Promote()
	if st := f.Status(); !st.Promoted {
		t.Fatal("status must report promoted")
	}
	if last != f.Status().LastSeq {
		t.Fatal("Promote must return the final applied position")
	}
	frozen := exportAll(t, fss)

	p.ss.Put("h:999", wireState(8, 999, 9000))
	time.Sleep(100 * time.Millisecond) // would be plenty for a live tail
	if got := exportAll(t, fss); len(got) != len(frozen) {
		t.Fatal("a replicated record landed after Promote returned")
	}
	f.Stop()
}

// TestSourceStatusTracksSubscriber checks the observability half: the
// source reports its epoch, wal position and the subscriber's ack
// progress; the follower reports its lag inputs.
func TestSourceStatusTracksSubscriber(t *testing.T) {
	p := startPrimary(t, statestore.Options{})
	defer p.stop(t)
	for i := 0; i < 5; i++ {
		p.ss.Put(fmt.Sprintf("h:%d", i), wireState(8, uint64(i)+1, int64(1000+i)))
	}
	fss, err := statestore.Open(statestore.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer fss.Close()
	f := replication.NewFollower(fss, p.ts.URL)
	f.Start()
	defer f.Stop()
	waitCaughtUp(t, f, p)

	resp, err := http.Get(p.ts.URL + "/replicate/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Source *replication.SourceStatus `json:"source"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Source == nil || status.Source.Epoch == "" {
		t.Fatal("source status missing")
	}
	if status.Source.WALSeq != p.ss.WALSeq() {
		t.Fatalf("source wal_seq %d, store %d", status.Source.WALSeq, p.ss.WALSeq())
	}
	if len(status.Source.Subscribers) != 1 {
		t.Fatalf("%d subscribers, want 1", len(status.Source.Subscribers))
	}
	if st := f.Status(); st.Epoch != status.Source.Epoch {
		t.Fatalf("follower epoch %s, source %s", st.Epoch, status.Source.Epoch)
	}
}
