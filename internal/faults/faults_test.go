package faults

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestDisarmedIsZero pins the nil-op contract: with nothing armed, every
// point returns the zero Outcome.
func TestDisarmedIsZero(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("Armed() true with no scenario")
	}
	if out := Hit("statestore.wal.write", "/tmp/x"); out != (Outcome{}) {
		t.Fatalf("disarmed Hit returned %+v", out)
	}
	if err := Fire("server.event", ""); err != nil {
		t.Fatalf("disarmed Fire returned %v", err)
	}
}

// TestHitSemantics covers after/count/match bounds and action outcomes.
func TestHitSemantics(t *testing.T) {
	defer Disarm()
	err := Arm(&Plan{Seed: 7, Rules: []Rule{
		{Point: "p.err", Action: ActError, Err: "enospc", After: 2, Count: 1},
		{Point: "p.short", Action: ActShortWrite, Short: 5},
		{Point: "p.scoped", Match: "replica-b", Action: ActReset},
	}})
	if err != nil {
		t.Fatal(err)
	}

	// After=2 skips the first two hits; Count=1 fires exactly once.
	for i := 0; i < 2; i++ {
		if out := Hit("p.err", ""); out.Err != nil {
			t.Fatalf("hit %d fired inside the After window", i)
		}
	}
	out := Hit("p.err", "")
	if !errors.Is(out.Err, ErrInjected) || !errors.Is(out.Err, syscall.ENOSPC) {
		t.Fatalf("want injected ENOSPC, got %v", out.Err)
	}
	if out := Hit("p.err", ""); out.Err != nil {
		t.Fatal("rule fired past its Count")
	}

	out = Hit("p.short", "")
	if !errors.Is(out.Err, io.ErrShortWrite) || out.Short != 5 {
		t.Fatalf("want short-write 5, got %+v", out)
	}

	if out := Hit("p.scoped", "http://replica-a:1"); out.Err != nil {
		t.Fatal("scoped rule fired on a non-matching scope")
	}
	if out := Hit("p.scoped", "http://replica-b:1"); !errors.Is(out.Err, syscall.ECONNRESET) {
		t.Fatalf("scoped rule missed its scope: %+v", out)
	}

	c := Counters()
	if c["p.err/error"] != 1 || c["p.short/short-write"] != 1 || c["p.scoped/reset"] != 1 {
		t.Fatalf("counters %v", c)
	}
}

// TestDeterministicReplay pins the seeded-PRNG contract: the same plan
// over the same hit sequence fires the same subset, and a different seed
// fires a different one.
func TestDeterministicReplay(t *testing.T) {
	defer Disarm()
	run := func(seed uint64) []bool {
		if err := Arm(&Plan{Seed: seed, Rules: []Rule{
			{Point: "p", Action: ActDelay, Prob: 0.3, DelayMs: 0},
		}}); err != nil {
			t.Fatal(err)
		}
		fired := make([]bool, 200)
		var prev int64
		for i := range fired {
			Hit("p", "")
			now := Counters()["p/delay"]
			fired[i] = now > prev
			prev = now
		}
		return fired
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical firing patterns")
	}
}

// TestLoadFile round-trips a scenario file through Load/Arm.
func TestLoadFile(t *testing.T) {
	defer Disarm()
	path := filepath.Join(t.TempDir(), "faults.json")
	spec := `{"seed": 9, "faults": [
		{"point": "router.forward", "match": "/event", "action": "delay", "prob": 0.5, "delay_ms": 10}
	]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 || len(p.Rules) != 1 || p.Rules[0].DelayMs != 10 {
		t.Fatalf("loaded plan %+v", p)
	}
	if err := Arm(p); err != nil {
		t.Fatal(err)
	}
	if !Armed() {
		t.Fatal("not armed after Arm")
	}
}

// TestArmRejectsBadRules pins validation.
func TestArmRejectsBadRules(t *testing.T) {
	defer Disarm()
	if err := Arm(&Plan{Rules: []Rule{{Point: "p", Action: "explode"}}}); err == nil {
		t.Fatal("unknown action accepted")
	}
	if err := Arm(&Plan{Rules: []Rule{{Action: ActDelay}}}); err == nil {
		t.Fatal("empty point accepted")
	}
}

// TestWrapTransport covers the HTTP fault shapes: reset fails the round
// trip, drop runs into the context deadline, delay slows the request.
func TestWrapTransport(t *testing.T) {
	defer Disarm()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	client := &http.Client{Transport: WrapTransport("t.fwd", nil)}

	// Disarmed: transparent.
	resp, err := client.Get(ts.URL + "/ok")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("disarmed round trip: %v %v", err, resp)
	}
	resp.Body.Close()

	if err := Arm(&Plan{Seed: 1, Rules: []Rule{
		{Point: "t.fwd", Match: "/reset", Action: ActReset},
		{Point: "t.fwd", Match: "/drop", Action: ActDrop},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get(ts.URL + "/reset"); !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("want injected reset, got %v", err)
	}
	// A drop without a deadline must fail fast rather than hang.
	if _, err := client.Get(ts.URL + "/drop"); err == nil {
		t.Fatal("deadline-free drop did not error")
	}
	// A drop under a client timeout runs into it.
	short := &http.Client{Transport: WrapTransport("t.fwd", nil), Timeout: 50 * time.Millisecond}
	t0 := time.Now()
	if _, err := short.Get(ts.URL + "/drop"); err == nil {
		t.Fatal("dropped request succeeded")
	}
	if time.Since(t0) > 2*time.Second {
		t.Fatal("drop ignored the deadline")
	}
	// The untouched route still works.
	resp, err = client.Get(ts.URL + "/ok")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("clean route under armed scenario: %v", err)
	}
	resp.Body.Close()
}

// TestWrapConnCorrupt pins the bit-flip shape: the reader sees modified
// bytes, which a framed protocol's CRC must catch.
func TestWrapConnCorrupt(t *testing.T) {
	defer Disarm()
	if err := Arm(&Plan{Seed: 1, Rules: []Rule{
		{Point: "t.conn.read", Action: ActCorrupt, Count: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	defer server.Close()
	go func() {
		server.Write([]byte{0x01, 0x02})
		server.Write([]byte{0x03})
	}()
	fc := WrapConn("t.conn", "peer", client)
	buf := make([]byte, 2)
	if _, err := io.ReadFull(fc, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x81 {
		t.Fatalf("first read not corrupted: % x", buf)
	}
	one := make([]byte, 1)
	if _, err := io.ReadFull(fc, one); err != nil {
		t.Fatal(err)
	}
	if one[0] != 0x03 {
		t.Fatalf("count=1 rule kept firing: % x", one)
	}
	fc.Close()
}
