// Package faults is the deterministic fault-injection layer. Named fault
// points are threaded through the stack — the router's forwarding client,
// the replication protocol's framed connection, the statestore WAL and
// snapshot seams, the server's request handlers — and nil-op by default:
// every point starts with one atomic load (Armed), so the disabled cost on
// the hot path is unmeasurable and allocation-free (the escape gate pins
// the statestore Put path that crosses one of these points).
//
// A scenario arms the layer: a seed plus a list of rules, each naming a
// fault point, an action (delay, error, short-write, drop, reset, corrupt,
// stall, panic), a firing probability and optional count/after bounds.
// Every rule draws from its own splitmix64 PRNG seeded from the scenario
// seed and the rule's identity, so two runs of the same scenario over the
// same call sequence inject the same faults — chaos runs replay.
//
// Fault points in the tree (scope in parentheses):
//
//	router.forward   (host+path)  router → replica forwards, incl. retries
//	router.probe     (host+path)  the router's health prober
//	repl.conn.read   (primary)    follower's framed replication connection
//	repl.conn.write  (primary)    follower → primary acks
//	statestore.wal.write  (dir)   one WAL append (error / short-write)
//	statestore.snap.write (dir)   one snapshot write
//	wire.read        (addr)       inbound bytes on a wire-protocol conn
//	wire.write       (addr)       outbound bytes on a wire-protocol conn
//	server.event / server.predict (""/"wire")  handler entry per transport
//	server.flush     ("")         handler entry
//
// The package is on the deterministic replay path (pplint's clock-
// restricted set): it never reads the wall clock — delays use timers only.
package faults

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Actions a rule can take at its fault point.
const (
	// ActDelay sleeps DelayMs before the operation proceeds.
	ActDelay = "delay"
	// ActError fails the operation with an injected error (Err selects
	// which: "enospc", "reset", or a literal message).
	ActError = "error"
	// ActShortWrite writes only Short bytes, then fails with
	// io.ErrShortWrite — a torn tail on disk, a cut frame on the wire.
	ActShortWrite = "short-write"
	// ActDrop black-holes the operation: a transport blocks until the
	// caller's deadline, a connection closes silently.
	ActDrop = "drop"
	// ActReset fails immediately with ECONNRESET (and closes the
	// connection at conn points).
	ActReset = "reset"
	// ActCorrupt flips a bit in the bytes crossing a connection point —
	// the CRC-mismatch case the replication follower must survive.
	ActCorrupt = "corrupt"
	// ActStall sleeps DelayMs at a process point (alias of delay, named
	// for handler points).
	ActStall = "stall"
	// ActPanic panics at the point (net/http recovers a handler panic by
	// killing the connection — the no-response crash shape).
	ActPanic = "panic"
)

// ErrInjected marks every synthetic failure so handlers and tests can
// tell injected faults from real ones.
var ErrInjected = errors.New("faults: injected")

// Rule arms one fault: at Point, when Match is a substring of the hit's
// scope (empty matches all), perform Action with probability Prob
// (<=0 or >=1 means always), skipping the first After matching hits and
// firing at most Count times (0 = unlimited).
type Rule struct {
	Point   string  `json:"point"`
	Match   string  `json:"match,omitempty"`
	Action  string  `json:"action"`
	Prob    float64 `json:"prob,omitempty"`
	After   int64   `json:"after,omitempty"`
	Count   int64   `json:"count,omitempty"`
	DelayMs int64   `json:"delay_ms,omitempty"`
	Short   int     `json:"short,omitempty"`
	Err     string  `json:"err,omitempty"`
}

// Plan is a complete scenario: the PRNG seed plus the rule list, the
// shape `-faults file.json` loads.
type Plan struct {
	Seed  uint64 `json:"seed"`
	Rules []Rule `json:"faults"`
}

// Outcome is what one Hit decided. The zero Outcome means "proceed
// normally" — it is what every call gets while the layer is disarmed.
type Outcome struct {
	Delay   time.Duration // sleep this long first
	Err     error         // fail the operation with this error
	Short   int           // with Err: bytes to write before failing
	Drop    bool          // black-hole (block / close silently)
	Corrupt bool          // flip a bit in the payload
	Panic   bool          // panic at the point
}

// armedRule is a Rule plus its runtime state.
type armedRule struct {
	Rule
	mu    sync.Mutex
	rng   uint64
	seen  int64
	fired int64
}

// scenario is an armed plan, indexed by point.
type scenario struct {
	rules map[string][]*armedRule
	all   []*armedRule
}

var (
	armed  atomic.Bool
	active atomic.Pointer[scenario]
)

// Armed reports whether a scenario is live. It is the package-level
// disabled check: one atomic load, no allocation — cheap enough to guard
// every fault point on the hot path.
func Armed() bool { return armed.Load() }

// Arm installs a plan, replacing any previous one (and resetting its
// counters). An empty plan disarms.
func Arm(p *Plan) error {
	if p == nil || len(p.Rules) == 0 {
		Disarm()
		return nil
	}
	sc := &scenario{rules: make(map[string][]*armedRule)}
	for i, r := range p.Rules {
		if r.Point == "" || r.Action == "" {
			return fmt.Errorf("faults: rule %d needs point and action", i)
		}
		switch r.Action {
		case ActDelay, ActError, ActShortWrite, ActDrop, ActReset, ActCorrupt, ActStall, ActPanic:
		default:
			return fmt.Errorf("faults: rule %d: unknown action %q", i, r.Action)
		}
		ar := &armedRule{Rule: r, rng: ruleSeed(p.Seed, r.Point, r.Action, i)}
		sc.rules[r.Point] = append(sc.rules[r.Point], ar)
		sc.all = append(sc.all, ar)
	}
	active.Store(sc)
	armed.Store(true)
	return nil
}

// Disarm removes the scenario; every point nil-ops again.
func Disarm() {
	armed.Store(false)
	active.Store(nil)
}

// Load reads a scenario file (the -faults flag).
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faults: parsing %s: %w", path, err)
	}
	return &p, nil
}

// Hit consults the armed scenario at a named point. Rules are evaluated
// in plan order; the first that fires wins. Disarmed, it returns the zero
// Outcome after one atomic load.
func Hit(point, scope string) Outcome {
	if !armed.Load() {
		return Outcome{}
	}
	sc := active.Load()
	if sc == nil {
		return Outcome{}
	}
	for _, r := range sc.rules[point] {
		if out, ok := r.eval(scope); ok {
			return out
		}
	}
	return Outcome{}
}

// Fire applies a process-point outcome in place: it sleeps a delay/stall,
// panics on an injected panic, and returns the injected error (nil when
// nothing fired). Handlers call it at their entry points.
func Fire(point, scope string) error {
	out := Hit(point, scope)
	if out.Delay > 0 {
		time.Sleep(out.Delay)
	}
	if out.Panic {
		panic(fmt.Sprintf("faults: injected panic at %s", point))
	}
	return out.Err
}

// Counters reports how many times each armed rule has fired, keyed
// "point/action". The chaos experiment uses it to account for every
// injected fault in its report.
func Counters() map[string]int64 {
	sc := active.Load()
	if sc == nil {
		return nil
	}
	out := make(map[string]int64)
	for _, r := range sc.all {
		r.mu.Lock()
		out[r.Point+"/"+r.Action] += r.fired
		r.mu.Unlock()
	}
	return out
}

// CounterKeys returns the Counters keys sorted, for stable report output.
func CounterKeys(c map[string]int64) []string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// eval decides whether this rule fires for one hit.
func (r *armedRule) eval(scope string) (Outcome, bool) {
	if r.Match != "" && !strings.Contains(scope, r.Match) {
		return Outcome{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seen++
	if r.seen <= r.After {
		return Outcome{}, false
	}
	if r.Count > 0 && r.fired >= r.Count {
		return Outcome{}, false
	}
	if r.Prob > 0 && r.Prob < 1 {
		if randFloat(&r.rng) >= r.Prob {
			return Outcome{}, false
		}
	}
	r.fired++
	return r.outcome(), true
}

// outcome materialises the rule's action.
func (r *armedRule) outcome() Outcome {
	switch r.Action {
	case ActDelay, ActStall:
		return Outcome{Delay: time.Duration(r.DelayMs) * time.Millisecond}
	case ActError:
		return Outcome{Err: r.errValue()}
	case ActShortWrite:
		return Outcome{Err: fmt.Errorf("%w: %w", ErrInjected, io.ErrShortWrite), Short: r.Short}
	case ActDrop:
		return Outcome{Drop: true}
	case ActReset:
		return Outcome{Err: fmt.Errorf("%w: %w", ErrInjected, syscall.ECONNRESET)}
	case ActCorrupt:
		return Outcome{Corrupt: true}
	case ActPanic:
		return Outcome{Panic: true}
	}
	return Outcome{}
}

// errValue picks the injected error for ActError rules.
func (r *armedRule) errValue() error {
	switch r.Err {
	case "enospc":
		return fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)
	case "reset":
		return fmt.Errorf("%w: %w", ErrInjected, syscall.ECONNRESET)
	case "":
		return ErrInjected
	default:
		return fmt.Errorf("%w: %s", ErrInjected, r.Err)
	}
}

// ruleSeed derives a rule-private splitmix64 seed from the scenario seed
// and the rule's identity, so rules draw independent, replayable streams.
func ruleSeed(seed uint64, point, action string, idx int) uint64 {
	h := seed ^ 0x9e3779b97f4a7c15
	for _, s := range []string{point, action} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 0x100000001b3
		}
	}
	h ^= uint64(idx) * 0x2545f4914f6cdd1d
	return h
}

// splitmix64 advances the rule's PRNG.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e9b5
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// randFloat draws a uniform float64 in [0, 1).
func randFloat(s *uint64) float64 {
	return float64(splitmix64(s)>>11) / (1 << 53)
}
