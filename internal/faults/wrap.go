package faults

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// WrapTransport threads a network fault point through an HTTP transport.
// Each round trip hits the point with scope "host/path" (so a scenario
// can target one replica, one route, or one replica's route). Disarmed,
// the wrapper is one atomic load ahead of the inner transport.
//
// Actions: delay sleeps before dialing (respecting the request context —
// a per-route deadline turns a long delay into a clean timeout); drop
// black-holes the request until its context expires (requests without a
// deadline get the injected reset instead of hanging forever); error and
// reset fail the round trip outright.
func WrapTransport(point string, inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &transport{point: point, inner: inner}
}

type transport struct {
	point string
	inner http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if !Armed() {
		return t.inner.RoundTrip(req)
	}
	out := Hit(t.point, req.URL.Host+req.URL.Path)
	if out.Panic {
		panic(fmt.Sprintf("faults: injected panic at %s", t.point))
	}
	ctx := req.Context()
	if out.Delay > 0 {
		timer := time.NewTimer(out.Delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
	if out.Drop {
		if _, hasDeadline := ctx.Deadline(); !hasDeadline {
			return nil, fmt.Errorf("%w: dropped request to %s", ErrInjected, req.URL.Host)
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if out.Err != nil {
		return nil, out.Err
	}
	return t.inner.RoundTrip(req)
}

// WrapConn threads fault points through a network connection; reads hit
// "<point>.read" and writes "<point>.write", both with the given scope.
// Actions: delay sleeps before the I/O; corrupt flips the top bit of the
// first byte moved (a framed peer sees a CRC mismatch); reset/error close
// the connection and fail the call; drop closes it silently (the peer
// observes a cut mid-frame).
func WrapConn(point, scope string, c net.Conn) net.Conn {
	return &conn{Conn: c, point: point, scope: scope}
}

type conn struct {
	net.Conn
	point, scope string
}

func (c *conn) Read(p []byte) (int, error) {
	if !Armed() {
		return c.Conn.Read(p)
	}
	out := Hit(c.point+".read", c.scope)
	if out.Delay > 0 {
		time.Sleep(out.Delay)
	}
	switch {
	case out.Err != nil:
		c.Conn.Close()
		return 0, out.Err
	case out.Drop:
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection dropped", ErrInjected)
	case out.Corrupt:
		n, err := c.Conn.Read(p)
		if n > 0 {
			p[0] ^= 0x80
		}
		return n, err
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	if !Armed() {
		return c.Conn.Write(p)
	}
	out := Hit(c.point+".write", c.scope)
	if out.Delay > 0 {
		time.Sleep(out.Delay)
	}
	switch {
	case out.Err != nil:
		// A short-write rule cuts the frame mid-payload before the close —
		// the torn-frame-on-the-wire shape.
		n := 0
		if out.Short > 0 && out.Short < len(p) {
			n, _ = c.Conn.Write(p[:out.Short])
		}
		c.Conn.Close()
		return n, out.Err
	case out.Drop:
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection dropped", ErrInjected)
	case out.Corrupt:
		if len(p) > 0 {
			// Corrupt a copy: the caller's buffer may be reused.
			q := make([]byte, len(p))
			copy(q, p)
			q[0] ^= 0x80
			return c.Conn.Write(q)
		}
	}
	return c.Conn.Write(p)
}
