package gbdt

// growTree builds one regression tree by greedy histogram-based split
// search over the given rows, using the XGBoost gain criterion.
func growTree(cfg Config, binned [][]uint8, edges [][]float64, grad, hess []float64, rows []int32) *Tree {
	t := &Tree{}
	var build func(rows []int32, depth int) int32
	build = func(rows []int32, depth int) int32 {
		var sumG, sumH float64
		for _, r := range rows {
			sumG += grad[r]
			sumH += hess[r]
		}
		leafValue := -cfg.LearningRate * sumG / (sumH + cfg.Lambda)

		idx := int32(len(t.nodes))
		t.nodes = append(t.nodes, node{left: -1, right: -1, value: leafValue})
		if depth >= cfg.MaxDepth || len(rows) < 2 {
			return idx
		}

		feat, bin, gain := bestSplit(cfg, binned, grad, hess, rows, sumG, sumH)
		if feat < 0 || gain <= cfg.Gamma {
			return idx
		}

		// Partition rows in place by the winning split.
		col := binned[feat]
		lo, hi := 0, len(rows)
		for lo < hi {
			if col[rows[lo]] <= uint8(bin) {
				lo++
			} else {
				hi--
				rows[lo], rows[hi] = rows[hi], rows[lo]
			}
		}
		left := build(rows[:lo], depth+1)
		right := build(rows[lo:], depth+1)
		t.nodes[idx].feature = int32(feat)
		t.nodes[idx].splitBin = uint8(bin)
		t.nodes[idx].threshold = edges[feat][bin]
		t.nodes[idx].left = left
		t.nodes[idx].right = right
		return idx
	}
	all := make([]int32, len(rows))
	copy(all, rows)
	build(all, 0)
	return t
}

// bestSplit scans every feature's histogram for the highest-gain split.
// Returns (-1, 0, 0) when no split satisfies the constraints.
func bestSplit(cfg Config, binned [][]uint8, grad, hess []float64, rows []int32, sumG, sumH float64) (feat, bin int, gain float64) {
	feat = -1
	parentScore := sumG * sumG / (sumH + cfg.Lambda)
	var histG [256]float64
	var histH [256]float64

	for f := range binned {
		col := binned[f]
		maxBin := 0
		for i := range histG {
			histG[i], histH[i] = 0, 0
		}
		for _, r := range rows {
			b := col[r]
			histG[b] += grad[r]
			histH[b] += hess[r]
			if int(b) > maxBin {
				maxBin = int(b)
			}
		}
		var leftG, leftH float64
		for b := 0; b < maxBin; b++ {
			leftG += histG[b]
			leftH += histH[b]
			rightG := sumG - leftG
			rightH := sumH - leftH
			if leftH < cfg.MinChildWeight || rightH < cfg.MinChildWeight {
				continue
			}
			g := leftG*leftG/(leftH+cfg.Lambda) + rightG*rightG/(rightH+cfg.Lambda) - parentScore
			if g > gain {
				gain, feat, bin = g, f, b
			}
		}
	}
	return feat, bin, gain
}
