package gbdt

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// xorData is non-linear: label = (x0 > 0.5) XOR (x1 > 0.5) with noise;
// a depth-1 model cannot learn it, depth ≥ 2 can.
func xorData(n int, seed uint64) ([][]float64, []bool) {
	rng := tensor.NewRNG(seed)
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := range X {
		a, b := rng.Float64(), rng.Float64()
		noise := rng.Float64()
		X[i] = []float64{a, b, noise}
		label := (a > 0.5) != (b > 0.5)
		if rng.Bernoulli(0.1) {
			label = !label
		}
		y[i] = label
	}
	return X, y
}

func TestGBDTLearnsXOR(t *testing.T) {
	X, y := xorData(4000, 1)
	cfg := DefaultConfig()
	cfg.Rounds = 40
	cfg.MaxDepth = 3
	m := Fit(cfg, X, y)
	preds := m.PredictAll(X)
	correct := 0
	for i, p := range preds {
		if (p > 0.5) == y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(y))
	if acc < 0.85 {
		t.Fatalf("GBDT failed to learn XOR: accuracy %v", acc)
	}
}

func TestGBDTDepth1CannotLearnXOR(t *testing.T) {
	X, y := xorData(4000, 2)
	cfg := DefaultConfig()
	cfg.Rounds = 40
	cfg.MaxDepth = 1
	m := Fit(cfg, X, y)
	ll1 := metrics.LogLoss(m.PredictAll(X), y)

	cfg.MaxDepth = 3
	m3 := Fit(cfg, X, y)
	ll3 := metrics.LogLoss(m3.PredictAll(X), y)
	if ll3 >= ll1-0.05 {
		t.Fatalf("depth-3 (%v) should beat depth-1 (%v) on XOR", ll3, ll1)
	}
}

func TestGBDTBaseScoreMatchesRate(t *testing.T) {
	// With zero rounds, predictions equal the smoothed base rate.
	rng := tensor.NewRNG(3)
	X := make([][]float64, 500)
	y := make([]bool, 500)
	for i := range X {
		X[i] = []float64{rng.Float64()}
		y[i] = i%5 == 0 // 20%
	}
	cfg := DefaultConfig()
	cfg.Rounds = 0
	m := Fit(cfg, X, y)
	p := m.Predict([]float64{0.3})
	if math.Abs(p-0.2) > 0.01 {
		t.Fatalf("base prediction: got %v, want ≈0.2", p)
	}
}

func TestGBDTMonotonicImprovement(t *testing.T) {
	X, y := xorData(2000, 4)
	cfg := DefaultConfig()
	cfg.MaxDepth = 3
	var prev float64 = math.Inf(1)
	for _, rounds := range []int{1, 5, 20, 60} {
		cfg.Rounds = rounds
		m := Fit(cfg, X, y)
		ll := metrics.LogLoss(m.PredictAll(X), y)
		if ll > prev+0.02 {
			t.Fatalf("training loss should not increase with rounds: %v after %v", ll, prev)
		}
		prev = ll
	}
}

func TestGBDTDeterministic(t *testing.T) {
	X, y := xorData(500, 5)
	cfg := DefaultConfig()
	cfg.Rounds = 10
	a := Fit(cfg, X, y)
	b := Fit(cfg, X, y)
	for i := 0; i < 50; i++ {
		x := X[i]
		if a.Predict(x) != b.Predict(x) {
			t.Fatalf("training must be deterministic")
		}
	}
}

func TestGBDTSubsample(t *testing.T) {
	X, y := xorData(2000, 6)
	cfg := DefaultConfig()
	cfg.Rounds = 30
	cfg.MaxDepth = 3
	cfg.Subsample = 0.5
	m := Fit(cfg, X, y)
	preds := m.PredictAll(X)
	correct := 0
	for i, p := range preds {
		if (p > 0.5) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(y)); acc < 0.8 {
		t.Fatalf("subsampled GBDT accuracy: %v", acc)
	}
}

func TestGBDTEmptyAndEdgeCases(t *testing.T) {
	m := Fit(DefaultConfig(), nil, nil)
	if len(m.Trees) != 0 {
		t.Fatalf("empty fit must produce no trees")
	}

	// Constant labels: predictions should be extreme but finite.
	rng := tensor.NewRNG(7)
	X := make([][]float64, 100)
	y := make([]bool, 100)
	for i := range X {
		X[i] = []float64{rng.Float64()}
		y[i] = true
	}
	cfg := DefaultConfig()
	cfg.Rounds = 5
	m = Fit(cfg, X, y)
	p := m.Predict([]float64{0.5})
	if math.IsNaN(p) || p < 0.9 {
		t.Fatalf("all-positive data: prediction %v", p)
	}
}

func TestGBDTConstantFeature(t *testing.T) {
	// A constant feature can never split; label depends on the other.
	rng := tensor.NewRNG(8)
	X := make([][]float64, 1000)
	y := make([]bool, 1000)
	for i := range X {
		v := rng.Float64()
		X[i] = []float64{7, v}
		y[i] = v > 0.6
	}
	cfg := DefaultConfig()
	cfg.Rounds = 20
	cfg.MaxDepth = 2
	m := Fit(cfg, X, y)
	if p := m.Predict([]float64{7, 0.9}); p < 0.8 {
		t.Fatalf("high-feature prediction: %v", p)
	}
	if p := m.Predict([]float64{7, 0.1}); p > 0.2 {
		t.Fatalf("low-feature prediction: %v", p)
	}
}

func TestGBDTPredictDimPanics(t *testing.T) {
	X, y := xorData(100, 9)
	cfg := DefaultConfig()
	cfg.Rounds = 2
	m := Fit(cfg, X, y)
	defer func() {
		if recover() == nil {
			t.Fatalf("wrong dimension must panic")
		}
	}()
	m.Predict([]float64{1})
}

func TestGBDTFitMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("mismatched rows/labels must panic")
		}
	}()
	Fit(DefaultConfig(), make([][]float64, 3), make([]bool, 2))
}

func TestBinOf(t *testing.T) {
	edges := []float64{1, 3, 7}
	cases := map[float64]int{0: 0, 1: 0, 2: 1, 3: 1, 5: 2, 7: 2, 100: 3}
	for v, want := range cases {
		if got := binOf(v, edges); got != want {
			t.Fatalf("binOf(%v) = %d, want %d", v, got, want)
		}
	}
	if binOf(5, nil) != 0 {
		t.Fatalf("no edges → single bin")
	}
}

func TestBuildBinsMonotoneEdges(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 50 + rng.Intn(500)
		X := make([][]float64, n)
		for i := range X {
			X[i] = []float64{rng.NormFloat64(), math.Floor(rng.Float64() * 4)}
		}
		edges := buildBins(X, 16)
		for _, e := range edges {
			for i := 1; i < len(e); i++ {
				if e[i] <= e[i-1] {
					return false
				}
			}
			if len(e) > 15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBinnedPredictMatchesRawPredict(t *testing.T) {
	// The binned fast path and the raw traversal must agree on training
	// rows (thresholds are bin upper edges).
	X, y := xorData(800, 10)
	cfg := DefaultConfig()
	cfg.Rounds = 10
	cfg.MaxDepth = 4
	edges := buildBins(X, cfg.Bins)
	binned := binRows(X, edges)

	m := Fit(cfg, X, y)
	for i, x := range X {
		var rawScore, binScore float64 = m.Base, m.Base
		for _, tr := range m.Trees {
			rawScore += tr.predictRaw(x)
			binScore += tr.predictBinned(binned, i)
		}
		if math.Abs(rawScore-binScore) > 1e-9 {
			t.Fatalf("row %d: raw %v vs binned %v", i, rawScore, binScore)
		}
	}
}

func TestSearchDepthFindsXORDepth(t *testing.T) {
	trainX, trainY := xorData(3000, 11)
	valX, valY := xorData(1000, 12)
	cfg := DefaultConfig()
	cfg.Rounds = 20
	best, losses := SearchDepth(cfg, trainX, trainY, valX, valY, []int{1, 2, 3})
	if best < 2 {
		t.Fatalf("XOR needs depth ≥ 2, search chose %d (losses %v)", best, losses)
	}
	if len(losses) != 3 {
		t.Fatalf("losses length: %d", len(losses))
	}
	if losses[0] <= losses[best-1] {
		t.Fatalf("depth-1 loss should exceed best: %v", losses)
	}
}

func TestSearchDepthEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("empty depth range must panic")
		}
	}()
	SearchDepth(DefaultConfig(), nil, nil, nil, nil, nil)
}

func TestTotalNodesPositive(t *testing.T) {
	X, y := xorData(500, 13)
	cfg := DefaultConfig()
	cfg.Rounds = 5
	m := Fit(cfg, X, y)
	if m.TotalNodes() < 5 {
		t.Fatalf("TotalNodes: %d", m.TotalNodes())
	}
}

// Property: predictions are always valid probabilities.
func TestGBDTPredictionsAreProbabilities(t *testing.T) {
	X, y := xorData(1000, 14)
	cfg := DefaultConfig()
	cfg.Rounds = 30
	m := Fit(cfg, X, y)
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) ||
			math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(c, 0) {
			return true
		}
		p := m.Predict([]float64{a, b, c})
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
