package gbdt

import "repro/internal/metrics"

// DefaultDepthRange is the paper's exhaustive search space for the tree
// depth hyperparameter (§5.4: "all possible depths in the range [1, 10]").
func DefaultDepthRange() []int {
	depths := make([]int, 10)
	for i := range depths {
		depths[i] = i + 1
	}
	return depths
}

// SearchDepth trains one model per candidate depth on (trainX, trainY) and
// returns the depth minimising log loss on the validation split, together
// with the per-depth validation losses (index-aligned with depths). The
// caller typically refits at the winning depth on the full training set.
//
// searchCfg controls the per-candidate training budget; the paper uses full
// training runs, which is affordable for XGBoost but not for an exhaustive
// pure-Go search, so experiment drivers pass a reduced Rounds/Subsample
// here and refit the final model with the full budget.
func SearchDepth(searchCfg Config, trainX [][]float64, trainY []bool,
	valX [][]float64, valY []bool, depths []int) (bestDepth int, losses []float64) {

	if len(depths) == 0 {
		panic("gbdt: SearchDepth: empty depth range")
	}
	losses = make([]float64, len(depths))
	best := -1
	for i, d := range depths {
		cfg := searchCfg
		cfg.MaxDepth = d
		m := Fit(cfg, trainX, trainY)
		losses[i] = metrics.LogLoss(m.PredictAll(valX), valY)
		if best < 0 || losses[i] < losses[best] {
			best = i
		}
	}
	return depths[best], losses
}
