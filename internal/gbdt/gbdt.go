// Package gbdt implements gradient-boosted decision trees for binary
// classification, standing in for XGBoost 0.90 (§5.4). It follows the
// XGBoost formulation: second-order boosting of the logistic loss,
// histogram-based split finding, L2-regularised leaf weights
// (gain = G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)), and the paper's tuning
// protocol — an exhaustive tree-depth search on a held-out validation
// split.
package gbdt

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Config holds the boosting hyperparameters. Defaults (via DefaultConfig)
// mirror XGBoost 0.90's: eta 0.3, λ 1, 100 rounds, "mostly default
// settings, except for the tree depth" (§5.4).
type Config struct {
	Rounds         int
	LearningRate   float64
	MaxDepth       int
	Lambda         float64 // L2 on leaf weights
	Gamma          float64 // minimum gain to split
	MinChildWeight float64 // minimum hessian sum per child
	Bins           int     // histogram bins per feature
	Subsample      float64 // row subsampling per tree (1 = off)
	Seed           uint64
}

// DefaultConfig returns XGBoost-0.90-like defaults.
func DefaultConfig() Config {
	return Config{
		Rounds:         100,
		LearningRate:   0.3,
		MaxDepth:       6,
		Lambda:         1,
		Gamma:          0,
		MinChildWeight: 1,
		Bins:           64,
		Subsample:      1,
		Seed:           1,
	}
}

// node is one tree node in a flat array layout.
type node struct {
	feature   int32
	splitBin  uint8   // go left if bin <= splitBin
	threshold float64 // raw-value threshold equivalent of splitBin
	left      int32   // index of left child; -1 for leaf
	right     int32
	value     float64 // leaf output (already scaled by learning rate)
}

// Tree is one regression tree over binned features.
type Tree struct {
	nodes []node
}

// predictRaw traverses the tree on raw feature values.
func (t *Tree) predictRaw(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.left < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// NumNodes returns the node count (used by the serving cost model).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// Model is a fitted GBDT classifier.
type Model struct {
	Config Config
	// Base is the initial log-odds score.
	Base  float64
	Trees []*Tree
	// dim is the feature dimension seen at fit time.
	dim int
}

// Fit trains the model on dense features and binary labels.
func Fit(cfg Config, X [][]float64, y []bool) *Model {
	if len(X) != len(y) {
		panic(fmt.Sprintf("gbdt: Fit: %d rows vs %d labels", len(X), len(y)))
	}
	m := &Model{Config: cfg}
	if len(X) == 0 {
		return m
	}
	m.dim = len(X[0])
	n := len(X)

	// Base score: log-odds of the positive rate.
	pos := 0
	for _, v := range y {
		if v {
			pos++
		}
	}
	rate := (float64(pos) + 0.5) / (float64(n) + 1)
	m.Base = math.Log(rate / (1 - rate))

	// Quantile binning per feature.
	edges := buildBins(X, cfg.Bins)
	binned := binRows(X, edges)

	scores := make([]float64, n)
	for i := range scores {
		scores[i] = m.Base
	}
	grad := make([]float64, n)
	hess := make([]float64, n)
	rows := make([]int32, n)
	rng := tensor.NewRNG(cfg.Seed)

	for round := 0; round < cfg.Rounds; round++ {
		for i := 0; i < n; i++ {
			p := nn.Sigmoid(scores[i])
			t := 0.0
			if y[i] {
				t = 1
			}
			grad[i] = p - t
			hess[i] = p * (1 - p)
		}
		rows = rows[:0]
		if cfg.Subsample < 1 {
			for i := 0; i < n; i++ {
				if rng.Bernoulli(cfg.Subsample) {
					rows = append(rows, int32(i))
				}
			}
			if len(rows) == 0 {
				rows = append(rows, int32(rng.Intn(n)))
			}
		} else {
			for i := 0; i < n; i++ {
				rows = append(rows, int32(i))
			}
		}
		tree := growTree(cfg, binned, edges, grad, hess, rows)
		m.Trees = append(m.Trees, tree)
		for i := 0; i < n; i++ {
			scores[i] += tree.predictBinned(binned, i)
		}
	}
	return m
}

// predictBinned traverses using the pre-binned matrix (training fast path).
func (t *Tree) predictBinned(binned [][]uint8, row int) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.left < 0 {
			return n.value
		}
		if binned[n.feature][row] <= n.splitBin {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Predict returns P(positive) for one raw feature vector.
func (m *Model) Predict(x []float64) float64 {
	return nn.Sigmoid(m.PredictRawScore(x))
}

// PredictRawScore returns the log-odds margin for one feature vector.
func (m *Model) PredictRawScore(x []float64) float64 {
	if len(x) != m.dim && m.dim != 0 {
		panic(fmt.Sprintf("gbdt: Predict: got %d features, model fitted on %d", len(x), m.dim))
	}
	s := m.Base
	for _, t := range m.Trees {
		s += t.predictRaw(x)
	}
	return s
}

// PredictAll returns probabilities for a batch.
func (m *Model) PredictAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}

// TotalNodes returns the summed node count across trees; the §9 compute
// comparison uses depth×rounds traversal cost.
func (m *Model) TotalNodes() int {
	n := 0
	for _, t := range m.Trees {
		n += t.NumNodes()
	}
	return n
}

// buildBins computes per-feature quantile bin edges. edges[f] has at most
// bins-1 thresholds; bin b holds values ≤ edges[b] (last bin unbounded).
func buildBins(X [][]float64, bins int) [][]float64 {
	if bins < 2 {
		bins = 2
	}
	if bins > 256 {
		bins = 256
	}
	dim := len(X[0])
	edges := make([][]float64, dim)
	// Sample rows for quantile estimation to bound cost on large datasets.
	step := 1
	if len(X) > 100000 {
		step = len(X) / 100000
	}
	vals := make([]float64, 0, len(X)/step+1)
	for f := 0; f < dim; f++ {
		vals = vals[:0]
		for i := 0; i < len(X); i += step {
			vals = append(vals, X[i][f])
		}
		sort.Float64s(vals)
		var e []float64
		for b := 1; b < bins; b++ {
			q := vals[b*len(vals)/bins]
			if len(e) == 0 || q > e[len(e)-1] {
				e = append(e, q)
			}
		}
		edges[f] = e
	}
	return edges
}

// binRows maps raw values to bin indices; layout is feature-major for
// cache-friendly histogram building.
func binRows(X [][]float64, edges [][]float64) [][]uint8 {
	dim := len(edges)
	out := make([][]uint8, dim)
	for f := 0; f < dim; f++ {
		col := make([]uint8, len(X))
		e := edges[f]
		for i, row := range X {
			col[i] = uint8(binOf(row[f], e))
		}
		out[f] = col
	}
	return out
}

// binOf returns the bin index of v given sorted edges (bin b ⇔ v ≤
// edges[b], last bin for v above all edges).
func binOf(v float64, edges []float64) int {
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
