package server

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if any test leaks a goroutine: every
// serving loop, micro-batcher and drain worker started by these tests
// must be gone once Shutdown returns.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
