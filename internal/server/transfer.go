package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/serving"
	"repro/internal/statestore"
)

// The state-transfer endpoints are the replica half of the cluster's
// drain-and-handoff protocol: POST /export streams the hidden states whose
// key hashes fall inside the requested ring arcs, POST /import installs
// such a stream, and POST /drop removes a handed-off range from its old
// owner. The router quiesces traffic and flushes the source before calling
// them; export and drop refuse (409) while sessions are pending or
// finalisations are in flight, because a range snapshot taken mid-traffic
// matches no consistent store state.

// Arc is a closed interval [Lo, Hi] of the 32-bit key-hash ring
// (serving.KeyHash positions). Wrapping intervals are expressed as two
// arcs by the caller.
type Arc struct {
	Lo uint32 `json:"lo"`
	Hi uint32 `json:"hi"`
}

// Contains reports whether the arc covers ring position pos.
func (a Arc) Contains(pos uint32) bool { return pos >= a.Lo && pos <= a.Hi }

// ArcsContain reports whether any arc covers pos.
func ArcsContain(arcs []Arc, pos uint32) bool {
	for _, a := range arcs {
		if a.Contains(pos) {
			return true
		}
	}
	return false
}

// ArcsRequest is the POST /export and /drop request body.
type ArcsRequest struct {
	Arcs []Arc `json:"arcs"`
}

// TransferEntry is one hidden state in flight between replicas. Stored
// marks Val as tagged statestore bytes (moved verbatim, no transcoding);
// otherwise Val is the wire format.
type TransferEntry struct {
	Key    string `json:"key"`
	Val    []byte `json:"val"`
	Stored bool   `json:"stored,omitempty"`
}

// TransferPayload is the POST /import body and the /export response.
type TransferPayload struct {
	Entries []TransferEntry `json:"entries"`
}

// quiesced reports whether no session is buffered and no finalisation is
// in flight (the precondition for a consistent range snapshot).
func (s *Server) quiesced() (pending, inflight int, ok bool) {
	s.mu.Lock()
	pending = s.proc.Pending()
	s.mu.Unlock()
	s.inflightMu.Lock()
	inflight = s.inflight
	s.inflightMu.Unlock()
	return pending, inflight, pending == 0 && inflight == 0
}

// decodeArcs parses an ArcsRequest, rejecting empty or inverted arcs.
func decodeArcs(w http.ResponseWriter, r *http.Request) ([]Arc, bool) {
	var req ArcsRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding arcs: "+err.Error())
		return nil, false
	}
	if len(req.Arcs) == 0 {
		writeErr(w, http.StatusBadRequest, "no arcs")
		return nil, false
	}
	for _, a := range req.Arcs {
		if a.Lo > a.Hi {
			writeErr(w, http.StatusBadRequest, "inverted arc (split wrapping ranges)")
			return nil, false
		}
	}
	return req.Arcs, true
}

// handleExport streams the states owned by the requested arcs. With a
// durable statestore behind the server the entries carry tagged stored
// bytes (byte-identical transfer across any codec); a volatile store
// exports the wire format.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	arcs, ok := decodeArcs(w, r)
	if !ok {
		return
	}
	if pending, inflight, ok := s.quiesced(); !ok {
		writeErr(w, http.StatusConflict, fmt.Sprintf(
			"%d sessions pending, %d finalisations in flight — POST /flush first", pending, inflight))
		return
	}
	var out TransferPayload
	if s.opts.State != nil {
		err := s.opts.State.Export(
			func(key string) bool { return ArcsContain(arcs, serving.KeyHash(key)) },
			func(key string, stored []byte) error {
				out.Entries = append(out.Entries, TransferEntry{Key: key, Val: append([]byte(nil), stored...), Stored: true})
				return nil
			})
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "export: "+err.Error())
			return
		}
	} else {
		for _, key := range s.opts.Store.Keys() {
			if !ArcsContain(arcs, serving.KeyHash(key)) {
				continue
			}
			if v, ok := s.opts.Store.Get(key); ok {
				out.Entries = append(out.Entries, TransferEntry{Key: key, Val: v})
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleImport installs a transfer stream. Stored entries go through the
// statestore's verbatim Import seam when one is present; everything else
// lands via the ordinary Put path.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	var in TransferPayload
	if err := json.Unmarshal(body, &in); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding entries: "+err.Error())
		return
	}
	for _, e := range in.Entries {
		if e.Key == "" {
			writeErr(w, http.StatusBadRequest, "entry with empty key")
			return
		}
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	s.mu.Unlock()
	for _, e := range in.Entries {
		switch {
		case e.Stored && s.opts.State != nil:
			s.opts.State.Import(e.Key, e.Val)
		case e.Stored:
			s.opts.Store.Put(e.Key, statestore.DecodeStoredValue(e.Val))
		default:
			s.opts.Store.Put(e.Key, e.Val)
		}
	}
	writeJSON(w, http.StatusOK, map[string]int{"imported": len(in.Entries)})
}

// handleDrop deletes the states owned by the requested arcs — the final
// step of a handoff, after the new owner confirmed its import.
func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	arcs, ok := decodeArcs(w, r)
	if !ok {
		return
	}
	if pending, inflight, ok := s.quiesced(); !ok {
		writeErr(w, http.StatusConflict, fmt.Sprintf(
			"%d sessions pending, %d finalisations in flight — POST /flush first", pending, inflight))
		return
	}
	dropped := 0
	for _, key := range s.opts.Store.Keys() {
		if ArcsContain(arcs, serving.KeyHash(key)) {
			s.opts.Store.Delete(key)
			dropped++
		}
	}
	writeJSON(w, http.StatusOK, map[string]int{"dropped": dropped})
}
