package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serving"
	"repro/internal/synth"
)

// TestShutdownHammer races ingest and flush handlers against Shutdown (run
// it with -race; CI does). The regression it pins: /flush used to dispatch
// due sessions into the finalisation lanes without checking the draining
// latch, so a flush racing SIGTERM panicked a handler with a send on a
// closed channel. Every request during the race must complete with a clean
// status — 202/200 before the latch, 503 after — and everything admitted
// must still finalise.
func TestShutdownHammer(t *testing.T) {
	for round := 0; round < 3; round++ {
		m := testModel(t, 8)
		srv := New(Options{
			Model: m, Store: serving.NewKVStore(), Threshold: 0.5,
			Lanes: 2, MaxBatch: 4, MaxWait: time.Millisecond, LaneDepth: 64,
		})
		ts := httptest.NewServer(srv.Handler())

		window := m.Schema.SessionLength + core.DefaultEpsilon
		base := synth.DefaultStart
		var wg sync.WaitGroup
		var accepted atomic.Int64
		stop := make(chan struct{})

		// Ingest hammers: each poster walks its own users forward in time so
		// every accepted start also fires earlier timers (lane dispatches).
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					ev := Event{
						Type: "start", Session: fmt.Sprintf("g%d-s%d", g, i),
						User: g*1000 + i, Ts: base + int64(i)*(window+10), Cat: []int{0, 0},
					}
					body, _ := json.Marshal(ev)
					resp, err := http.Post(ts.URL+"/event", "application/json", bytes.NewReader(body))
					if err != nil {
						return // server closed mid-request; shutdown won the race
					}
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusAccepted:
						accepted.Add(1)
					case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					default:
						t.Errorf("event status %d", resp.StatusCode)
						return
					}
				}
			}(g)
		}
		// Flush hammer: the handler that used to panic.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/flush", "application/json", nil)
				if err != nil {
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("flush status %d", resp.StatusCode)
					return
				}
			}
		}()

		// Let the hammer build a backlog, then shut down mid-traffic.
		time.Sleep(20 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
		cancel()
		close(stop)
		wg.Wait()
		ts.Close()

		// Post-shutdown requests keep getting clean 503s (mux still mounted).
		ts2 := httptest.NewServer(srv.Handler())
		resp, err := http.Post(ts2.URL+"/flush", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("post-shutdown flush: status %d, want 503", resp.StatusCode)
		}
		ts2.Close()

		// No admitted session may be lost: Shutdown's final Flush fires every
		// outstanding timer and the lane drain finalises them all.
		if got := srv.Stats().UpdatesRun; got != accepted.Load() {
			t.Fatalf("round %d: updates run %d, want %d (accepted)", round, got, accepted.Load())
		}
	}
}
