package server

import (
	"bytes"
	"context"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serving"
	"repro/internal/wire"
)

// startWireListener attaches a wire listener to srv and returns its
// address. The listener is closed by srv.Shutdown.
func startWireListener(t *testing.T, srv *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.ServeWire(l)
	return l.Addr().String()
}

// TestWireReplayMatchesSequential is the wire-path parity gate, the
// binary twin of TestHTTPReplayMatchesSequential: replaying the same log
// over the wire protocol (events and predicts both) stores hidden states
// byte-identical to sequential in-process replay, and the /digest
// endpoint agrees. The control plane (flush, digest) stays on HTTP, as in
// production.
func TestWireReplayMatchesSequential(t *testing.T) {
	m := testModel(t, 24)
	log := ReplayLog(30, 3)
	seq := seqReplay(m, log)

	store := serving.NewShardedKVStore(8)
	srv := New(Options{
		Model: m, Store: store, Threshold: 0.5,
		Lanes: 3, MaxBatch: 8, MaxWait: time.Millisecond, LaneDepth: 64,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	wireAddr := startWireListener(t, srv)

	rep, err := RunLoad(LoadOptions{
		BaseURL:       ts.URL,
		WireAddr:      wireAddr,
		Concurrency:   4,
		EventsPerPost: 5,
		PredictEvery:  3,
		Flush:         true,
	}, log)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed != 0 || rep.PredictsShed != 0 || rep.Errors != 0 {
		t.Fatalf("parity run must be clean: %+v", rep)
	}
	if rep.Predicts == 0 || rep.PredictLatency.Count == 0 {
		t.Fatalf("no predictions served over wire: %+v", rep)
	}
	if rep.EventsPerPostMean <= 0 {
		t.Fatalf("events-per-post not recorded: %+v", rep)
	}

	n := assertStatesEqual(t, seq, store)
	t.Logf("wire replay parity: %d hidden states byte-identical across %d sessions (%.1f events/post)",
		n, len(log), rep.EventsPerPostMean)

	_, dg, err := Digest(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := serving.StateDigest(seq); dg != want {
		t.Fatalf("/digest %s, want %s", dg, want)
	}

	// Wire predictions must agree with direct in-process predictions over
	// the (now identical) state — probability bits and precompute flag.
	wcl := wire.NewClient(wireAddr, wire.ClientOptions{})
	defer wcl.Close()
	svc := serving.NewPredictionService(m, seq, 0.5)
	for i := 0; i < 10; i++ {
		e := log[(i*37)%len(log)]
		want := svc.OnSessionStart(e.User, e.Ts, e.Cat)
		pr, err := wcl.SendPredict(0, wire.AppendPredict(nil, e.User, e.Ts, e.Cat), 0)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Status != wire.StatusOK || pr.Probability != want.Probability || pr.Precompute != want.Precompute {
			t.Fatalf("wire predict mismatch for user %d: got %+v, want %+v", e.User, pr, want)
		}
	}

	st := srv.Stats()
	if st.UpdatesRun != int64(len(log)) {
		t.Fatalf("updates run %d, want %d", st.UpdatesRun, len(log))
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestWireValidationAndDraining covers the wire error statuses: malformed
// event batches get a BadRequest ack without mutating state, and a
// shut-down server answers Draining instead of hanging.
func TestWireValidationAndDraining(t *testing.T) {
	m := testModel(t, 16)
	store := serving.NewKVStore()
	srv := New(Options{
		Model: m, Store: store, Threshold: 0.5,
		Lanes: 2, MaxBatch: 4, MaxWait: time.Millisecond, LaneDepth: 16,
	})
	wireAddr := startWireListener(t, srv)

	wcl := wire.NewClient(wireAddr, wire.ClientOptions{})
	defer wcl.Close()

	// Invalid event (ts <= 0) inside a batch: BadRequest, nothing applied.
	bad := wire.AppendStart(nil, 1, 0, "s-bad", nil)
	ack, err := wcl.SendEvents(0, 1, bad)
	if err != nil {
		t.Fatalf("SendEvents: %v", err)
	}
	if ack.Status != wire.StatusBadRequest {
		t.Fatalf("invalid event ack: %+v", ack)
	}
	if len(store.Keys()) != 0 {
		t.Fatal("invalid batch mutated state")
	}

	// Valid batch applies cleanly.
	good := wire.AppendStart(nil, 7, 100, "s-1", []int{1, 2})
	good = wire.AppendAccess(good, 7, 130, "s-1")
	ack, err = wcl.SendEvents(0, 2, good)
	if err != nil {
		t.Fatalf("SendEvents: %v", err)
	}
	if ack.Status != wire.StatusOK || ack.Accepted != 2 {
		t.Fatalf("valid batch ack: %+v", ack)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// After shutdown the listener is closed; a fresh listener on a
	// draining server must answer Draining. Re-attach one to exercise the
	// draining ack path.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.ServeWire(l)
	wcl2 := wire.NewClient(l.Addr().String(), wire.ClientOptions{DialTimeout: 2 * time.Second, CallTimeout: 2 * time.Second})
	defer wcl2.Close()
	ack, err = wcl2.SendEvents(0, 2, bytes.Clone(good))
	if err == nil && ack.Status != wire.StatusDraining {
		t.Fatalf("post-shutdown ack: %+v (err %v)", ack, err)
	}
}
