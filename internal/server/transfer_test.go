package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serving"
	"repro/internal/synth"
)

// TestTransferEndpointGuards pins the handoff preconditions: /export and
// /drop refuse with 409 while sessions are pending (a mid-traffic range
// snapshot matches no consistent state), /import refuses with 503 once the
// server is draining, and a quiesced export→import round trip moves the
// matching states and only them.
func TestTransferEndpointGuards(t *testing.T) {
	m := testModel(t, 8)
	store := serving.NewKVStore()
	srv := New(Options{Model: m, Store: store, Threshold: 0.5, Lanes: 1, MaxWait: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path string, v any) *http.Response {
		body, _ := json.Marshal(v)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	allArcs := ArcsRequest{Arcs: []Arc{{Lo: 0, Hi: ^uint32(0)}}}

	// A buffered session (timer not yet fired) blocks export and drop.
	ev := Event{Type: "start", Session: "s1", User: 1, Ts: synth.DefaultStart, Cat: []int{0, 0}}
	if resp := post("/event", ev); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("event: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	for _, path := range []string{"/export", "/drop"} {
		resp := post(path, allArcs)
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("%s with pending sessions: %d, want 409", path, resp.StatusCode)
		}
	}

	// Flush, then a real round trip: export everything, import into a
	// second server, drop from the first.
	if resp := post("/flush", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	resp := post("/export", allArcs)
	var payload TransferPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(payload.Entries) != 1 || payload.Entries[0].Key != serving.HiddenKey(1) {
		t.Fatalf("export payload: %+v", payload)
	}

	store2 := serving.NewKVStore()
	srv2 := New(Options{Model: m, Store: store2, Threshold: 0.5, Lanes: 1, MaxWait: -1})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	body, _ := json.Marshal(payload)
	resp2, err := http.Post(ts2.URL+"/import", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("import: %d", resp2.StatusCode)
	}
	want, _ := store.Get(serving.HiddenKey(1))
	got, ok := store2.Get(serving.HiddenKey(1))
	if !ok || !bytes.Equal(got, want) {
		t.Fatal("imported state differs from exported state")
	}

	if resp := post("/drop", allArcs); resp.StatusCode != http.StatusOK {
		t.Fatalf("drop: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if keys := store.Keys(); len(keys) != 0 {
		t.Fatalf("drop left %d keys", len(keys))
	}

	// Arc matching is exact: an arc that excludes the key's hash moves
	// nothing.
	pos := serving.KeyHash(serving.HiddenKey(1))
	miss := ArcsRequest{Arcs: []Arc{{Lo: pos + 1, Hi: pos + 1}}}
	resp3 := post("/export", ArcsRequest{Arcs: miss.Arcs})
	var empty TransferPayload
	if err := json.NewDecoder(resp3.Body).Decode(&empty); err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if len(empty.Entries) != 0 {
		t.Fatalf("non-matching arc exported %d entries", len(empty.Entries))
	}

	// Draining refuses imports.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp4, err := http.Post(ts2.URL+"/import", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("import while draining: %d, want 503", resp4.StatusCode)
	}

	// Malformed arcs are 400s.
	for _, bad := range []ArcsRequest{{}, {Arcs: []Arc{{Lo: 5, Hi: 1}}}} {
		resp := post("/export", bad)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad arcs %+v: %d, want 400", bad, resp.StatusCode)
		}
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
