package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/serving"
	"repro/internal/statestore"
	"repro/internal/synth"
)

func testModel(t *testing.T, hidden int) *core.Model {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.HiddenDim = hidden
	cfg.Seed = 7
	return core.New(synth.MobileTabSchema(), cfg)
}

// seqReplay replays the log through the sequential in-process path — the
// parity baseline every HTTP test compares against.
func seqReplay(m *core.Model, log []ReplayEvent) *serving.KVStore {
	st := serving.NewKVStore()
	p := serving.NewStreamProcessor(m, st)
	for _, e := range log {
		p.OnSessionStart(e.SID, e.User, e.Ts, e.Cat)
		if e.Access {
			p.OnAccess(e.SID, e.Ts+30)
		}
	}
	p.Flush()
	return st
}

// assertStatesEqual compares every hidden state of want against got, byte
// for byte, and returns how many it compared.
func assertStatesEqual(t *testing.T, want, got serving.Store) int {
	t.Helper()
	wantKeys := want.Keys()
	if len(wantKeys) == 0 {
		t.Fatal("baseline stored no states")
	}
	if gk := got.Keys(); len(gk) != len(wantKeys) {
		t.Fatalf("key count differs: got %d, want %d", len(gk), len(wantKeys))
	}
	for _, k := range wantKeys {
		w, ok1 := want.Get(k)
		g, ok2 := got.Get(k)
		if !ok1 || !ok2 {
			t.Fatalf("key %s missing (want %v, got %v)", k, ok1, ok2)
		}
		if !bytes.Equal(w, g) {
			t.Fatalf("state %s differs between paths", k)
		}
	}
	return len(wantKeys)
}

// TestHTTPReplayMatchesSequential is the parity gate: replaying an event
// log over the HTTP API through the micro-batcher stores hidden states
// byte-identical to sequential in-process replay of the same log — every
// state compared, plus the /digest endpoint agreeing with the in-process
// digest.
func TestHTTPReplayMatchesSequential(t *testing.T) {
	m := testModel(t, 24)
	log := ReplayLog(30, 3)
	if len(log) == 0 {
		t.Fatal("empty replay log")
	}
	seq := seqReplay(m, log)

	store := serving.NewShardedKVStore(8)
	srv := New(Options{
		Model: m, Store: store, Threshold: 0.5,
		Lanes: 3, MaxBatch: 8, MaxWait: time.Millisecond, LaneDepth: 64,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := RunLoad(LoadOptions{
		BaseURL:       ts.URL,
		Concurrency:   4,
		EventsPerPost: 5,
		PredictEvery:  3,
		Flush:         true,
	}, log)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed != 0 || rep.PredictsShed != 0 || rep.Errors != 0 {
		t.Fatalf("parity run must be clean: %+v", rep)
	}
	if rep.Predicts == 0 || rep.PredictLatency.Count == 0 {
		t.Fatalf("no predictions served: %+v", rep)
	}

	n := assertStatesEqual(t, seq, store)
	t.Logf("HTTP replay parity: %d hidden states byte-identical across %d sessions", n, len(log))

	_, dg, err := Digest(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := serving.StateDigest(seq); dg != want {
		t.Fatalf("/digest %s, want %s", dg, want)
	}

	// Batched predictions must agree with direct in-process predictions
	// over the (now identical) state.
	svc := serving.NewPredictionService(m, seq, 0.5)
	for i := 0; i < 10; i++ {
		e := log[(i*37)%len(log)]
		want := svc.OnSessionStart(e.User, e.Ts, e.Cat)
		body, _ := json.Marshal(PredictIn{User: e.User, Ts: e.Ts, Cat: e.Cat})
		resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out PredictOut
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if out.Probability != want.Probability || out.Precompute != want.Precompute {
			t.Fatalf("predict mismatch for user %d: got %+v, want %+v", e.User, out, want)
		}
	}

	st := srv.Stats()
	if st.UpdatesRun != int64(len(log)) {
		t.Fatalf("updates run %d, want %d", st.UpdatesRun, len(log))
	}
	if st.Batches <= 0 || st.MeanBatch < 1 {
		t.Fatalf("batcher stats look wrong: %+v", st)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestGracefulShutdownDrainsAndSnapshots covers the SIGTERM path: a
// server with parked micro-batches (long max-wait) must, on Shutdown,
// drain in-flight work, fire outstanding timers, and force a final
// statestore snapshot such that a clean reopen recovers every hidden
// state byte-identically.
func TestGracefulShutdownDrainsAndSnapshots(t *testing.T) {
	m := testModel(t, 16)
	log := ReplayLog(20, 5)
	dir := t.TempDir()
	ss, err := statestore.Open(statestore.Options{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{
		Model: m, Store: ss, State: ss, Threshold: 0.5,
		// A long max-wait parks partial batches: Shutdown must not lose
		// them.
		Lanes: 2, MaxBatch: 64, MaxWait: 300 * time.Millisecond, LaneDepth: 128,
	})
	ts := httptest.NewServer(srv.Handler())

	rep, err := RunLoad(LoadOptions{
		BaseURL:       ts.URL,
		Concurrency:   2,
		EventsPerPost: 4,
		Flush:         false, // leave timers outstanding and batches parked
	}, log)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed != 0 || rep.Errors != 0 {
		t.Fatalf("ingest must be clean: %+v", rep)
	}

	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Shutdown fires all outstanding timers, so the drained server equals
	// a full sequential replay + flush.
	seq := seqReplay(m, log)
	assertStatesEqual(t, seq, ss)

	if srv.Stats().UpdatesRun != int64(len(log)) {
		t.Fatalf("shutdown lost updates: ran %d, want %d", srv.Stats().UpdatesRun, len(log))
	}
	if ss.Lifecycle().Snapshots < 1 {
		t.Fatal("graceful shutdown must force a snapshot")
	}
	if _, err := os.Stat(filepath.Join(dir, "state.snap")); err != nil {
		t.Fatalf("final snapshot missing: %v", err)
	}

	// Reopen: every pre-shutdown state must come back byte-identical.
	pre := make(map[string][]byte)
	for _, k := range ss.Keys() {
		v, ok := ss.Get(k)
		if !ok {
			t.Fatalf("key %s unreadable before close", k)
		}
		pre[k] = v
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := statestore.Open(statestore.Options{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Lifecycle().RecoveredKeys != len(pre) {
		t.Fatalf("recovered %d states, want %d", re.Lifecycle().RecoveredKeys, len(pre))
	}
	for k, v := range pre {
		got, ok := re.Get(k)
		if !ok {
			t.Fatalf("state %s lost across shutdown + reopen", k)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("state %s differs after reopen", k)
		}
	}
}

// slowStore delays every Put, backing the finalisation pipeline up so
// admission control has something to shed.
type slowStore struct {
	serving.Store
	delay time.Duration
}

func (s *slowStore) Put(k string, v []byte) {
	time.Sleep(s.delay)
	s.Store.Put(k, v)
}

// TestBackpressureSheds pins the bounded-queue contract: when the
// finalisation backlog reaches Lanes*LaneDepth, POST /event returns 429
// and the shed counter advances — the server degrades by shedding, not by
// growing its queues without bound.
func TestBackpressureSheds(t *testing.T) {
	m := testModel(t, 16)
	slow := &slowStore{Store: serving.NewKVStore(), delay: 20 * time.Millisecond}
	srv := New(Options{
		Model: m, Store: slow, Threshold: 0.5,
		Lanes: 1, LaneDepth: 2, MaxBatch: 1, MaxWait: -1,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	window := m.Schema.SessionLength + core.DefaultEpsilon
	base := synth.DefaultStart
	var accepted, shed int
	for i := 0; i < 60; i++ {
		// Each start's timestamp fires the previous session's timer, so
		// the backlog grows as fast as the slow store falls behind.
		ev := Event{
			Type: "start", Session: fmt.Sprintf("s%d", i),
			User: i, Ts: base + int64(i)*(window+10), Cat: []int{0, 0},
		}
		body, _ := json.Marshal(ev)
		resp, err := http.Post(ts.URL+"/event", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if shed == 0 {
		t.Fatal("overloaded server never shed — queues are not bounded")
	}
	if accepted == 0 {
		t.Fatal("server shed everything — admission control too aggressive")
	}
	st := srv.Stats()
	if st.EventsShed != int64(shed) {
		t.Fatalf("shed counter %d, want %d", st.EventsShed, shed)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Everything admitted must eventually finalise (no lost updates).
	if got := srv.Stats().UpdatesRun; got != int64(accepted) {
		t.Fatalf("updates run %d, want %d (admitted)", got, accepted)
	}
}

// TestMicroBatchFlushPolicies pins the two flush triggers: a full batch
// flushes immediately (one GEMM group), and a partial batch flushes after
// max-wait without any further traffic.
func TestMicroBatchFlushPolicies(t *testing.T) {
	m := testModel(t, 16)
	store := serving.NewKVStore()
	srv := New(Options{
		Model: m, Store: store, Threshold: 0.5,
		Lanes: 1, MaxBatch: 4, MaxWait: 40 * time.Millisecond, LaneDepth: 64,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	window := m.Schema.SessionLength + core.DefaultEpsilon
	base := synth.DefaultStart
	post := func(evs []Event) {
		body, _ := json.Marshal(evs)
		resp, err := http.Post(ts.URL+"/event", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}

	// Four sessions, then a clock advance that makes all four due in one
	// dispatch burst: they must ride one max-batch flush.
	evs := make([]Event, 0, 5)
	for u := 0; u < 4; u++ {
		evs = append(evs, Event{Type: "start", Session: fmt.Sprintf("a%d", u), User: u, Ts: base + int64(u), Cat: []int{0, 0}})
	}
	post(evs)
	post([]Event{{Type: "start", Session: "tick", User: 99, Ts: base + window + 100, Cat: []int{0, 0}}})
	waitFor(t, func() bool { return srv.Stats().UpdatesRun == 4 })
	if st := srv.Stats(); st.Batches != 1 {
		t.Fatalf("4 concurrent dues should flush as one batch, got %d batches", st.Batches)
	}

	// Two more dues with no further traffic: the max-wait timer must flush
	// the partial batch on its own.
	post([]Event{
		{Type: "start", Session: "b0", User: 201, Ts: base + window + 200, Cat: []int{0, 0}},
		{Type: "start", Session: "b1", User: 202, Ts: base + window + 201, Cat: []int{0, 0}},
		{Type: "start", Session: "tick2", User: 203, Ts: base + 3*window, Cat: []int{0, 0}},
	})
	waitFor(t, func() bool { return srv.Stats().UpdatesRun == 7 })
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEventValidation pins the API's 400 behaviour.
func TestEventValidation(t *testing.T) {
	m := testModel(t, 8)
	srv := New(Options{Model: m, Store: serving.NewKVStore(), Threshold: 0.5, Lanes: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"type":"nonsense","session":"x","ts":5}`,
		`{"type":"start","ts":5,"cat":[0,0]}`,                         // no session
		`{"type":"start","session":"x","cat":[0,0]}`,                  // no ts
		`{"type":"access","ts":5}`,                                    // no session
		`{"type":"start","session":"x","user":-1,"ts":5,"cat":[0,0]}`, // bad user
		`{"type":"start","session":"x","ts":5}`,                       // missing cat
		`{"type":"start","session":"x","ts":5,"cat":[9999,0]}`,        // cat out of range
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/event", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPReplayF32TierParity runs the micro-batched HTTP path with the
// f32 finaliser tier and compares against the f32 sequential in-process
// replay: the f32 accumulation contract makes every hidden state
// byte-identical across the two paths, exactly like the f64 parity gate.
// /statz must surface the active tier.
func TestHTTPReplayF32TierParity(t *testing.T) {
	m := testModel(t, 24)
	log := ReplayLog(30, 3)

	seq := serving.NewKVStore()
	p := serving.NewStreamProcessor(m, seq)
	if err := p.SetPrecision(nn.TierF32); err != nil {
		t.Fatal(err)
	}
	for _, e := range log {
		p.OnSessionStart(e.SID, e.User, e.Ts, e.Cat)
		if e.Access {
			p.OnAccess(e.SID, e.Ts+30)
		}
	}
	p.Flush()

	store := serving.NewShardedKVStore(8)
	srv := New(Options{
		Model: m, Store: store, Threshold: 0.5,
		Lanes: 3, MaxBatch: 8, MaxWait: time.Millisecond, LaneDepth: 64,
		Precision: nn.TierF32,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := RunLoad(LoadOptions{
		BaseURL:       ts.URL,
		Concurrency:   4,
		EventsPerPost: 5,
		Flush:         true,
	}, log)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed != 0 || rep.Errors != 0 {
		t.Fatalf("parity run must be clean: %+v", rep)
	}
	n := assertStatesEqual(t, seq, store)
	t.Logf("f32 HTTP replay parity: %d hidden states byte-identical", n)

	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var stz Statz
	if err := json.NewDecoder(resp.Body).Decode(&stz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stz.Precision != "f32" {
		t.Fatalf("/statz precision = %q, want f32", stz.Precision)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestServerRejectsUnsupportedF32 pins the constructor gate: a cell
// without an f32 inference tier must refuse the f32 option loudly at
// startup, not corrupt states at the first finalisation.
func TestServerRejectsUnsupportedF32(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.HiddenDim = 8
	cfg.Cell = nn.CellLSTM
	m := core.New(synth.MobileTabSchema(), cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted f32 precision for an LSTM model")
		}
	}()
	New(Options{Model: m, Store: serving.NewKVStore(), Threshold: 0.5, Precision: nn.TierF32})
}
