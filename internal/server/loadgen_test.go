package server

import (
	"math/rand"
	"testing"
)

// seq returns [1, 2, ..., n] — with these inputs the nearest-rank quantile
// Q(p) is simply ceil(p*n), which makes every expectation below readable.
func seq(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

// TestSummarizeNearestRank pins the quantile definition: Q(p) is the sorted
// sample at rank ceil(p·n) (1-based), with n=0 and n=1 handled deliberately.
// The P90 rows with n not a multiple of 10 are the regression cases for the
// old rounding indexing, which read one rank low whenever frac(p·n) < 0.5.
func TestSummarizeNearestRank(t *testing.T) {
	cases := []struct {
		name                     string
		lat                      []float64
		count                    int
		p50, p90, p95, p99, max1 float64
	}{
		{"empty", nil, 0, 0, 0, 0, 0, 0},
		{"single", []float64{7.5}, 1, 7.5, 7.5, 7.5, 7.5, 7.5},
		{"two", seq(2), 2, 1, 2, 2, 2, 2},
		{"ten", seq(10), 10, 5, 9, 10, 10, 10},
		// n=24: p90·n=21.6 → rank 22 (old rounding read rank 21),
		// p95·n=22.8 → rank 23, p99·n=23.76 → rank 24.
		{"twentyfour", seq(24), 24, 12, 22, 23, 24, 24},
		// n=100: exact ranks 50/90/95/99.
		{"hundred", seq(100), 100, 50, 90, 95, 99, 100},
		// n=101: p50·n=50.5 → rank 51 (the median of an odd-length sample
		// is its middle element, which rounding also got right; ceil keeps it).
		{"hundredone", seq(101), 101, 51, 91, 96, 100, 101},
	}
	for _, c := range cases {
		// summarize sorts in place; feed it a shuffled copy so the test also
		// covers the sort.
		shuffled := append([]float64(nil), c.lat...)
		rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got := summarize(shuffled)
		if got.Count != c.count {
			t.Fatalf("%s: count %d, want %d", c.name, got.Count, c.count)
		}
		check := func(what string, got, want float64) {
			if got != want {
				t.Errorf("%s: %s = %v, want %v", c.name, what, got, want)
			}
		}
		check("p50", got.P50Ms, c.p50)
		check("p90", got.P90Ms, c.p90)
		check("p95", got.P95Ms, c.p95)
		check("p99", got.P99Ms, c.p99)
		check("max", got.MaxMs, c.max1)
	}
}
