// Binary transport for the hot path. ServeWire accepts persistent
// connections speaking the internal/wire protocol and feeds decoded
// events into the same ingest lock, admission control, and batcher lanes
// as the HTTP handlers — the two transports are different spellings of
// one contract, which is what keeps the digest parity gate meaningful
// across them. Everything cold (flush, statz, digest, admin, replication)
// stays HTTP-only.

package server

import (
	"bufio"
	"encoding/binary"
	"net"
	"sync"

	"repro/internal/faults"
	"repro/internal/serving"
	"repro/internal/wire"
)

// ServeWire serves the binary event/predict protocol on l until Shutdown.
// Run it alongside Serve/ListenAndServe; any number of listeners may be
// active.
func (s *Server) ServeWire(l net.Listener) error {
	if !s.registerWireListener(l) {
		l.Close()
		return nil
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.shutdown.Load() {
				return nil
			}
			return err
		}
		if !s.registerWireConn(conn) {
			conn.Close()
			return nil
		}
		go s.serveWireConn(conn)
	}
}

func (s *Server) registerWireListener(l net.Listener) bool {
	s.wireMu.Lock()
	defer s.wireMu.Unlock()
	if s.shutdown.Load() {
		return false
	}
	s.wireListeners[l] = struct{}{}
	return true
}

// registerWireConn adds a connection to the shutdown registry. The
// WaitGroup add happens under wireMu with the shutdown check, so it
// cannot race Shutdown's Wait.
func (s *Server) registerWireConn(c net.Conn) bool {
	s.wireMu.Lock()
	defer s.wireMu.Unlock()
	if s.shutdown.Load() {
		return false
	}
	s.wireConns[c] = struct{}{}
	s.wireWG.Add(1)
	return true
}

func (s *Server) dropWireConn(c net.Conn) {
	s.wireMu.Lock()
	delete(s.wireConns, c)
	s.wireMu.Unlock()
	c.Close()
}

// closeWire stops the binary listeners and cuts live connections; called
// once from Shutdown.
func (s *Server) closeWire() {
	s.wireMu.Lock()
	defer s.wireMu.Unlock()
	for l := range s.wireListeners {
		l.Close()
		delete(s.wireListeners, l)
	}
	for c := range s.wireConns {
		c.Close()
		delete(s.wireConns, c)
	}
}

// serveWireConn runs one connection: version handshake, then a frame
// loop. Event batches are validated whole, then applied whole under one
// ingest-lock hold (the same all-or-nothing contract as POST /event, and
// what keeps a start/access pair atomic). Predicts park in the batcher
// queue and are answered out of band so a slow predict never blocks the
// read loop. Any malformed frame — bad CRC, bad type, truncated batch —
// drops the connection: the stream position cannot be trusted, and the
// client's reconnect is transparent.
func (s *Server) serveWireConn(conn net.Conn) {
	defer s.wireWG.Done()
	defer s.dropWireConn(conn)

	br := bufio.NewReaderSize(conn, 64<<10)
	fw := wire.NewWriter(bufio.NewWriterSize(conn, 64<<10))
	var wmu sync.Mutex // serializes ack writes with async predict replies

	typ, p, err := wire.ReadFrame(br, nil)
	if err != nil || wire.CheckHello(typ, p) != nil {
		return
	}
	if err := fw.WriteHello(); err != nil || fw.Flush() != nil {
		return
	}

	buf := p[:cap(p)]
	var er wire.EventReader
	var ev wire.Event
	for {
		typ, p, err := wire.ReadFrame(br, buf)
		if err != nil {
			return
		}
		buf = p[:cap(p)]
		if len(p) < 8 {
			return
		}
		reqID := binary.LittleEndian.Uint64(p)
		switch typ {
		case wire.FEvents:
			status, accepted, msg := s.ingestWire(&er, &ev, p[8:])
			wmu.Lock()
			err = fw.WriteAck(reqID, status, accepted, msg)
			if err == nil {
				err = fw.Flush()
			}
			wmu.Unlock()
			if err != nil {
				return
			}
		case wire.FPredict:
			if !s.parkWirePredict(conn, fw, &wmu, reqID, p[8:]) {
				return
			}
		default:
			return
		}
	}
}

// ingestWire applies one event batch with POST /event semantics: validate
// every event first, shed or reject the whole batch, then apply it under
// one ingest-lock hold.
func (s *Server) ingestWire(er *wire.EventReader, ev *wire.Event, batch []byte) (status byte, accepted int, msg string) {
	if err := faults.Fire("server.event", "wire"); err != nil {
		return wire.StatusError, 0, err.Error()
	}
	// Validation pass. Decoding is a varint walk — cheaper than holding
	// the ingest lock across validation, and it keeps the all-or-nothing
	// contract: nothing applies unless every event is well formed.
	n := 0
	if err := er.Reset(batch); err != nil {
		return wire.StatusBadRequest, 0, "decoding events: " + err.Error()
	}
	for er.More() {
		if err := er.Next(ev); err != nil {
			return wire.StatusBadRequest, 0, "decoding events: " + err.Error()
		}
		if len(ev.Sid) == 0 || ev.Ts <= 0 {
			return wire.StatusBadRequest, 0, "event needs session and ts > 0"
		}
		if ev.Start {
			if err := s.checkCat(ev.Cat); err != nil {
				return wire.StatusBadRequest, 0, "start event: " + err.Error()
			}
		}
		n++
	}
	if s.overloaded() {
		s.eventsShed.Add(int64(n))
		return wire.StatusShed, 0, "finalisation backlog full, event shed"
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return wire.StatusDraining, 0, "server draining"
	}
	// The decode errors below are unreachable — the validation pass just
	// proved the batch well formed — but they are consumed, not dropped,
	// and fail loudly if the two passes ever diverge.
	if err := er.Reset(batch); err != nil {
		s.mu.Unlock()
		return wire.StatusError, 0, "re-decoding validated batch: " + err.Error()
	}
	for er.More() {
		if err := er.Next(ev); err != nil {
			s.mu.Unlock()
			return wire.StatusError, 0, "re-decoding validated batch: " + err.Error()
		}
		if ev.Start {
			s.proc.OnSessionStart(string(ev.Sid), ev.User, ev.Ts, ev.Cat)
		} else {
			s.proc.OnAccess(string(ev.Sid), ev.Ts)
		}
	}
	s.mu.Unlock()
	s.events.Add(int64(n))
	return wire.StatusOK, n, ""
}

// parkWirePredict validates and parks one predict request, answering out
// of band when the micro-batched decision lands. Returns false when the
// connection must drop (malformed payload).
func (s *Server) parkWirePredict(conn net.Conn, fw *wire.Writer, wmu *sync.Mutex, reqID uint64, payload []byte) bool {
	replyStatus := func(status byte, msg string) bool {
		wmu.Lock()
		err := fw.WritePredictReply(reqID, wire.PredictReply{Status: status, Msg: msg})
		if err == nil {
			err = fw.Flush()
		}
		wmu.Unlock()
		return err == nil
	}
	if err := faults.Fire("server.predict", "wire"); err != nil {
		return replyStatus(wire.StatusError, err.Error())
	}
	pr, _, err := wire.ParsePredict(payload, nil)
	if err != nil {
		return false
	}
	if pr.Ts <= 0 {
		return replyStatus(wire.StatusBadRequest, "predict needs user >= 0 and ts > 0")
	}
	if err := s.checkCat(pr.Cat); err != nil {
		return replyStatus(wire.StatusBadRequest, "predict: "+err.Error())
	}
	it := predictItem{
		// Cat is copied: it aliases the read buffer, which the next frame
		// overwrites while this request is still parked.
		req: serving.PredictRequest{UserID: pr.User, Ts: pr.Ts, Cat: append([]int(nil), pr.Cat...)},
		ch:  make(chan serving.Decision, 1),
	}
	s.predictMu.RLock()
	if s.predictClosed {
		s.predictMu.RUnlock()
		return replyStatus(wire.StatusDraining, "server draining")
	}
	select {
	case s.predictQ <- it:
		s.predictMu.RUnlock()
	default:
		s.predictMu.RUnlock()
		s.predictsShed.Add(1)
		return replyStatus(wire.StatusShed, "predict queue full, request shed")
	}
	s.wireMu.Lock()
	if s.shutdown.Load() {
		s.wireMu.Unlock()
		// Shutdown is racing this park; the flusher still answers the
		// item, but the reply goroutine must not join a WaitGroup that
		// may already be draining. Answer inline instead.
		dec := <-it.ch
		return writeWireDecision(fw, wmu, reqID, dec)
	}
	s.wireWG.Add(1)
	s.wireMu.Unlock()
	go func() {
		defer s.wireWG.Done()
		dec := <-it.ch
		writeWireDecision(fw, wmu, reqID, dec)
	}()
	return true
}

func writeWireDecision(fw *wire.Writer, wmu *sync.Mutex, reqID uint64, dec serving.Decision) bool {
	wmu.Lock()
	defer wmu.Unlock()
	if err := fw.WritePredictReply(reqID, wire.PredictReply{
		Status:      wire.StatusOK,
		Probability: dec.Probability,
		Precompute:  dec.Precompute,
	}); err != nil {
		return false
	}
	return fw.Flush() == nil
}
